// Fig. 15: CDN cache hit ratios — per-object hit-ratio CDFs for image and
// video objects, aggregate ratios, and the popularity/hit-ratio correlation.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace atlas;
  bench::BenchEnv env;
  if (!bench::SetUpStudy(env, argc, argv, "Fig. 15: CDN cache hit ratios")) {
    return 0;
  }
  const auto results = bench::PerSite<analysis::CachingResult>(
      env, [](const trace::TraceBuffer& t, const std::string& name) {
        return analysis::ComputeCaching(t, name);
      });
  std::cout << "=== Fig. 15: cache hit ratios (" << env.flags.GetString("policy")
            << " edges), scale=" << env.scale << " ===\n";
  analysis::RenderCaching(results, std::cout);
  std::cout << "\npaper: image objects cache better than video chunks; "
               "popularity/hit-ratio correlation > 0.9;\n       aggregate "
               "hit ratios 80-90%\n";
  return 0;
}
