// Fig. 6: content popularity CDFs — long-tailed request-count distributions
// for every site, plus the skewness summaries.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace atlas;
  bench::BenchEnv env;
  if (!bench::SetUpStudy(env, argc, argv, "Fig. 6: content popularity CDFs")) {
    return 0;
  }
  const auto results = bench::PerSite<analysis::PopularityResult>(
      env, [](const trace::TraceBuffer& t, const std::string& name) {
        return analysis::ComputePopularity(t, name);
      });
  std::cout << "=== Fig. 6: content popularity, scale=" << env.scale
            << " ===\n";
  analysis::RenderPopularity(results, std::cout);
  std::cout << "\npaper: long-tail distributions for all adult websites — a "
               "small fraction of objects is very popular\n";
  return 0;
}
