// Cost of crash consistency: what does checkpointing the simulation add?
//
// Runs the paper study three ways — uninterrupted, snapshotting every
// --every epochs, and killed-then-resumed — and reports the checkpoint
// file size, the average per-snapshot cost (derived from the run-time
// delta), the restore-open latency (snapshot CRC scan + torn-trace
// recovery), and the total overhead versus the no-checkpoint run. Lands
// in BENCH_ckpt.json (override the path with ATLAS_BENCH_CKPT_JSON; set
// it empty to skip).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.h"
#include "cdn/engine.h"
#include "cdn/scenario.h"
#include "ckpt/checkpoint.h"
#include "synth/site_profile.h"
#include "trace/sink.h"
#include "trace/stream.h"

namespace {

using namespace atlas;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::uint64_t FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return 0;
  return static_cast<std::uint64_t>(in.tellg());
}

}  // namespace

int main(int argc, char** argv) {
  bench::AblationEnv env;
  env.flags.DefineInt("every", 1, "epochs between snapshots");
  if (!bench::SetUpAblation(env, argc, argv,
                            "Checkpoint/restore cost: snapshot size, save "
                            "and restore latency, run-time overhead")) {
    return 0;
  }
  const auto every = static_cast<std::uint64_t>(env.flags.GetInt("every"));
  const int threads = static_cast<int>(env.flags.GetInt("threads"));

  const auto profiles = synth::SiteProfile::PaperAdultSites(env.scale);
  cdn::SimulatorConfig config;
  config.peer_fill = true;
  config.push.enabled = true;
  config.push.top_n = 100;

  const std::string trace_path = "ckpt_bench_trace.v2.bin";
  const std::string ckpt_path = "ckpt_bench.ckpt";

  // Phase 1: uninterrupted run, no checkpointing.
  std::uint64_t records = 0;
  double baseline_ms = 0.0;
  {
    std::ofstream out(trace_path, std::ios::binary);
    trace::TraceWriter writer(out);
    trace::WriterSink sink(writer);
    const auto start = std::chrono::steady_clock::now();
    cdn::StreamScenario(profiles, config, env.seed, sink, threads);
    writer.Finish();
    baseline_ms = MsSince(start);
    records = writer.written();
  }

  // Phase 2: the same run snapshotting every `every` epochs.
  std::uint64_t saves = 0;
  double checkpointed_ms = 0.0;
  {
    std::ofstream out(trace_path, std::ios::binary);
    trace::TraceWriter writer(out);
    trace::WriterSink sink(writer);
    cdn::CheckpointOptions opts;
    opts.every_epochs = every;
    opts.path = ckpt_path;
    opts.save_extra = [&](ckpt::Writer& w) { writer.SaveState(w); };
    opts.after_save = [&saves](std::uint64_t) {
      ++saves;
      return true;
    };
    const auto start = std::chrono::steady_clock::now();
    cdn::StreamScenario(profiles, config, env.seed, sink, threads, opts);
    writer.Finish();
    checkpointed_ms = MsSince(start);
  }
  const std::uint64_t checkpoint_bytes = FileBytes(ckpt_path);
  const double overhead_ms = checkpointed_ms - baseline_ms;
  const double save_ms_avg =
      saves > 0 ? overhead_ms / static_cast<double>(saves) : 0.0;
  const double overhead_percent =
      baseline_ms > 0.0 ? 100.0 * overhead_ms / baseline_ms : 0.0;

  // Phase 3: die halfway through, then time the restore path — snapshot
  // CRC scan plus torn-trace recovery — and finish the resumed run.
  const std::uint64_t kill_barrier = saves > 1 ? saves / 2 : 1;
  {
    std::ofstream out(trace_path, std::ios::binary);
    trace::TraceWriter writer(out);
    trace::WriterSink sink(writer);
    cdn::CheckpointOptions opts;
    opts.every_epochs = every;
    opts.path = ckpt_path;
    opts.save_extra = [&](ckpt::Writer& w) { writer.SaveState(w); };
    opts.after_save = [kill_barrier](std::uint64_t done) {
      return done < kill_barrier;
    };
    cdn::StreamScenario(profiles, config, env.seed, sink, threads, opts);
    // No Finish(): the run "crashed" here.
  }
  double restore_open_ms = 0.0;
  double resumed_ms = 0.0;
  {
    const auto open_start = std::chrono::steady_clock::now();
    auto snapshot = ckpt::ReadCheckpointFile(ckpt_path);
    trace::ResumedTraceFile resumed(trace_path, snapshot);
    restore_open_ms = MsSince(open_start);
    trace::WriterSink sink(resumed.writer());
    cdn::CheckpointOptions opts;
    opts.resume = &snapshot;
    const auto run_start = std::chrono::steady_clock::now();
    cdn::StreamScenario(profiles, config, env.seed, sink, threads, opts);
    resumed.writer().Finish();
    resumed_ms = MsSince(run_start);
    if (resumed.writer().written() != records) std::abort();  // not resumed
  }
  std::remove(trace_path.c_str());
  std::remove(ckpt_path.c_str());

  std::cout << "records: " << records << ", snapshots: " << saves
            << " (every " << every << " epochs)\n"
            << "checkpoint size:   " << checkpoint_bytes << " bytes\n"
            << "baseline run:      " << baseline_ms << " ms\n"
            << "checkpointed run:  " << checkpointed_ms << " ms ("
            << overhead_percent << "% overhead, " << save_ms_avg
            << " ms/snapshot)\n"
            << "restore open:      " << restore_open_ms << " ms\n"
            << "resumed half-run:  " << resumed_ms << " ms\n";

  std::string json_path = "BENCH_ckpt.json";
  if (const char* override_path = std::getenv("ATLAS_BENCH_CKPT_JSON")) {
    json_path = override_path;
  }
  if (json_path.empty()) return 0;
  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "cannot write " << json_path << "\n";
    return 1;
  }
  out << "{\n  \"bench\": \"ckpt\",\n  "
      << bench::BenchMetaJson(bench::MetaFromFlags(env.flags, "paper_study"))
      << ",\n  \"records\": " << records
      << ",\n  \"snapshots\": " << saves << ",\n  \"every_epochs\": " << every
      << ",\n  \"checkpoint_bytes\": " << checkpoint_bytes
      << ",\n  \"baseline_ms\": " << baseline_ms
      << ",\n  \"checkpointed_ms\": " << checkpointed_ms
      << ",\n  \"overhead_percent\": " << overhead_percent
      << ",\n  \"save_ms_avg\": " << save_ms_avg
      << ",\n  \"restore_open_ms\": " << restore_open_ms
      << ",\n  \"resumed_half_run_ms\": " << resumed_ms << "\n}\n";
  std::cout << "wrote " << json_path << "\n";
  return 0;
}
