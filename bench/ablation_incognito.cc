// Ablation: incognito browsing vs. browser-cache utility.
//
// §V: adult publishers "cannot rely on browser cache to store locally
// popular content because of prevalent use of incognito/private web
// browsing" (contrast: Facebook serves >65% of photo requests from browser
// caches). Sweep the incognito rate and measure what the browser layer
// absorbs, how many 304s appear, and what load reaches the CDN.
#include <iostream>

#include "bench_common.h"
#include "cdn/simulator.h"
#include "energy/model.h"
#include "synth/site_profile.h"
#include "util/str.h"
#include "util/time.h"

int main(int argc, char** argv) {
  using namespace atlas;
  bench::AblationEnv env;
  if (!bench::SetUpAblation(env, argc, argv,
                            "Incognito rate vs. browser-cache utility (P-1)")) {
    return 0;
  }
  const double scale = env.scale;
  const auto seed = env.seed;

  std::cout << "=== Ablation: incognito rate vs. browser-cache utility "
               "(P-1, scale=" << scale << ") ===\n";
  std::cout << util::PadRight("incognito", 11) << util::PadLeft("absorbed", 10)
            << util::PadLeft("304s", 8) << util::PadLeft("cdn-reqs", 10)
            << util::PadLeft("edge-hit%", 11) << util::PadLeft("kWh", 9)
            << util::PadLeft("USD", 9) << '\n';
  std::cout << std::string(68, '-') << '\n';
  const energy::EnergyModel energy_model{cdn::EnergySpec{}};
  for (double rate : {0.0, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    synth::SiteProfile profile = synth::SiteProfile::P1(scale);
    profile.incognito_rate = rate;
    // Give repeats a chance so browser caches can matter at all.
    profile.repeat_request_prob = 0.25;
    profile.favorite_adopt_prob = 0.4;
    cdn::SimulatorConfig config;
    config.topology.edge_capacity_bytes =
        static_cast<std::uint64_t>(20e9 * scale);
    const auto result = cdn::SimulateSite(profile, 0, config, seed);
    std::cout << util::PadRight(util::FormatPercent(rate, 0), 11)
              << util::PadLeft(util::FormatCount(static_cast<double>(
                                   result.browser_fresh_hits)),
                               10)
              << util::PadLeft(
                     util::FormatCount(static_cast<double>(result.revalidations)),
                     8)
              << util::PadLeft(
                     util::FormatCount(static_cast<double>(result.trace.size())),
                     10)
              << util::PadLeft(
                     util::FormatPercent(result.edge_stats.HitRatio(), 1), 11);
    const auto bill =
        energy_model.FromResult(result, util::kMillisPerWeek).total;
    std::cout << util::PadLeft(util::FormatDouble(bill.TotalKwh(), 1), 9)
              << util::PadLeft(util::FormatDouble(bill.TotalUsd(), 2), 9)
              << '\n';
  }
  std::cout << "\npaper's claim under test: as incognito usage rises, "
               "browser-cache absorption and 304 revalidations\ncollapse, "
               "pushing the full request load onto the CDN — and the CDN's "
               "weekly kWh/USD bill rises with it\n";
  return 0;
}
