// Streaming vs. in-memory trace pipeline: throughput and peak memory.
//
// Generates a study trace, writes it as a v2 block file, then runs the full
// AnalysisSuite twice — once through TraceFileReader (bounded memory), once
// through a materialized TraceBuffer — and a raw v2 scan for the format's
// ceiling. Records/sec and peak RSS per phase land in BENCH_stream.json
// (override the path with ATLAS_BENCH_STREAM_JSON; set it empty to skip).
// Peak RSS is reset between phases via /proc/self/clear_refs where the
// kernel allows it; the JSON notes when it does not.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>

#include "analysis/suite.h"
#include "bench_common.h"
#include "trace/sink.h"
#include "trace/stream.h"
#include "util/mem.h"

namespace {

using namespace atlas;

struct PhaseSample {
  double records_per_s = 0.0;
  std::uint64_t peak_rss_bytes = 0;
};

// Runs fn() once with the peak-RSS watermark freshly reset; `records` sets
// the rate denominator.
PhaseSample MeasurePhase(std::uint64_t records, const std::function<void()>& fn,
                         bool& rss_reset_ok) {
  rss_reset_ok = util::ResetPeakRss() && rss_reset_ok;
  const auto start = std::chrono::steady_clock::now();
  fn();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  PhaseSample s;
  s.records_per_s =
      seconds > 0.0 ? static_cast<double>(records) / seconds : 0.0;
  s.peak_rss_bytes = util::PeakRssBytes();
  return s;
}

void AppendPhase(std::ostream& out, const char* name, const PhaseSample& s,
                 bool last = false) {
  out << "    \"" << name << "\": {\"records_per_s\": "
      << static_cast<std::uint64_t>(s.records_per_s)
      << ", \"peak_rss_bytes\": " << s.peak_rss_bytes << "}"
      << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchEnv env;
  env.flags.DefineInt("block-records",
                      static_cast<std::int64_t>(trace::kDefaultBlockRecords),
                      "records per v2 block");
  env.flags.DefineBool("trend", false,
                       "run DTW trend clustering inside the suite (dominates "
                       "runtime; off to measure the record pipeline)");
  if (!bench::SetUpStudy(env, argc, argv,
                         "Streaming vs in-memory pipeline throughput")) {
    return 0;
  }
  const auto block_records =
      static_cast<std::size_t>(env.flags.GetInt("block-records"));

  analysis::SuiteConfig suite_config;
  suite_config.run_trend_clusters = env.flags.GetBool("trend");
  suite_config.threads = static_cast<int>(env.flags.GetInt("threads"));

  const std::string v2_path = "stream_bench_trace.v2.bin";
  std::uint64_t records = 0;
  trace::PublisherRegistry registry;
  {
    registry = env.scenario->registry();
    std::ofstream stream(v2_path, std::ios::binary);
    trace::TraceWriter writer(stream, block_records);
    trace::WriterSink sink(writer);
    env.scenario->StreamMerged(sink);
    writer.Finish();
    records = writer.written();
    // The generation scenario dies here so the streaming phase's peak RSS
    // reflects the pipeline, not the generator (no merged copy was built).
    env.scenario.reset();
  }

  bool rss_reset_ok = true;

  // Raw v2 scan: decode + CRC ceiling, no analysis.
  const PhaseSample scan = MeasurePhase(
      records,
      [&] {
        trace::TraceFileReader source(v2_path, block_records);
        std::uint64_t n = 0;
        for (auto chunk = source.NextChunk(); !chunk.empty();
             chunk = source.NextChunk()) {
          n += chunk.size();
        }
        if (n != records) std::abort();  // corrupt bench artifact
      },
      rss_reset_ok);

  // Full suite, streaming from disk through the per-record path (one AoS
  // record per accumulator call) — the differential baseline.
  const PhaseSample streamed = MeasurePhase(
      records,
      [&] {
        trace::TraceFileReader source(v2_path, block_records);
        analysis::AnalysisSuite suite(static_cast<trace::RecordSource&>(source),
                                      registry, suite_config);
        if (suite.sites().empty()) std::abort();
      },
      rss_reset_ok);

  // Same suite on the SoA block path (the default streaming pipeline).
  const PhaseSample streamed_batch = MeasurePhase(
      records,
      [&] {
        trace::TraceFileReader source(v2_path, block_records);
        analysis::AnalysisSuite suite(static_cast<trace::BlockSource&>(source),
                                      registry, suite_config);
        if (suite.sites().empty()) std::abort();
      },
      rss_reset_ok);

  // Full suite over a materialized buffer (the pre-streaming architecture),
  // file read included so both phases cover disk-to-report.
  const PhaseSample in_memory = MeasurePhase(
      records,
      [&] {
        const auto buffer = trace::ReadAnyBinaryFile(v2_path);
        analysis::AnalysisSuite suite(buffer, registry, suite_config);
        if (suite.sites().empty()) std::abort();
      },
      rss_reset_ok);

  std::remove(v2_path.c_str());

  std::cout << "records: " << records << "\n"
            << "scan_v2:         " << static_cast<std::uint64_t>(scan.records_per_s)
            << " rec/s, peak RSS " << scan.peak_rss_bytes / 1024 / 1024 << " MB\n"
            << "suite_stream:    "
            << static_cast<std::uint64_t>(streamed.records_per_s)
            << " rec/s, peak RSS " << streamed.peak_rss_bytes / 1024 / 1024
            << " MB\n"
            << "suite_stream_batch: "
            << static_cast<std::uint64_t>(streamed_batch.records_per_s)
            << " rec/s, peak RSS " << streamed_batch.peak_rss_bytes / 1024 / 1024
            << " MB\n"
            << "suite_in_memory: "
            << static_cast<std::uint64_t>(in_memory.records_per_s)
            << " rec/s, peak RSS " << in_memory.peak_rss_bytes / 1024 / 1024
            << " MB\n";
  if (!rss_reset_ok) {
    std::cout << "note: peak-RSS reset unavailable; RSS columns are "
                 "process-lifetime watermarks\n";
  }

  std::string json_path = "BENCH_stream.json";
  if (const char* override_path = std::getenv("ATLAS_BENCH_STREAM_JSON")) {
    json_path = override_path;
  }
  if (json_path.empty()) return 0;
  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "cannot write " << json_path << "\n";
    return 1;
  }
  out << "{\n  \"bench\": \"stream\",\n  "
      << bench::BenchMetaJson(bench::MetaFromFlags(env.flags, "paper_study"))
      << ",\n  \"records\": " << records
      << ",\n  \"block_records\": " << block_records
      << ",\n  \"rss_reset_supported\": " << (rss_reset_ok ? "true" : "false")
      << ",\n  \"results\": {\n";
  AppendPhase(out, "scan_v2", scan);
  AppendPhase(out, "suite_stream", streamed);
  AppendPhase(out, "suite_stream_batch", streamed_batch);
  AppendPhase(out, "suite_in_memory", in_memory, /*last=*/true);
  out << "  }\n}\n";
  std::cout << "wrote " << json_path << "\n";
  return 0;
}
