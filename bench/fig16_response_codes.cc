// Fig. 16: HTTP response codes — per-class counts of 200/204/206/304/403/416.
// 304s are rare for adult sites: incognito browsing discards the local
// caches that would otherwise revalidate.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace atlas;
  bench::BenchEnv env;
  if (!bench::SetUpStudy(env, argc, argv, "Fig. 16: HTTP response codes")) {
    return 0;
  }
  const auto results = bench::PerSite<analysis::CachingResult>(
      env, [](const trace::TraceBuffer& t, const std::string& name) {
        return analysis::ComputeCaching(t, name);
      });
  std::cout << "=== Fig. 16: HTTP response codes, scale=" << env.scale
            << " ===\n";
  analysis::RenderResponseCodes(results, std::cout);
  std::cout << "\npaper: 200 and 206 dominate; 304 responses are a small "
               "fraction (incognito/private browsing)\n";
  return 0;
}
