// Fig. 8: DTW clustering dendrograms — cluster shares with shape labels for
// V-2 (video) and P-2 (image), the two panels the paper shows.
#include "bench_common.h"

#include "analysis/trend_cluster.h"
#include "util/str.h"

int main(int argc, char** argv) {
  using namespace atlas;
  bench::BenchEnv env;
  env.flags.DefineInt("k", 5, "number of flat clusters to cut");
  env.flags.DefineInt("min-requests", 30, "min requests per clustered object");
  if (!bench::SetUpStudy(env, argc, argv,
                         "Fig. 8: DTW dendrograms / cluster shares")) {
    return 0;
  }
  analysis::TrendClusterConfig config;
  config.k = static_cast<std::size_t>(env.flags.GetInt("k"));
  config.min_requests =
      static_cast<std::uint64_t>(env.flags.GetInt("min-requests"));

  std::cout << "=== Fig. 8: popularity-trend clusters, scale=" << env.scale
            << " ===\n\n";
  const struct {
    const char* site;
    trace::ContentClass cls;
  } kPanels[] = {{"V-2", trace::ContentClass::kVideo},
                 {"P-2", trace::ContentClass::kImage}};
  for (const auto& panel : kPanels) {
    for (const auto& run : env.scenario->runs()) {
      if (run.profile.name != panel.site) continue;
      config.content_class = panel.cls;
      const auto result = analysis::ComputeTrendClusters(
          run.result.trace, run.profile.name, config);
      analysis::RenderTrendClusters(result, std::cout);
      std::cout << "member-level shapes: ";
      for (int p = 0; p < synth::kNumPatternTypes; ++p) {
        const auto type = static_cast<synth::PatternType>(p);
        std::cout << synth::ToString(type) << "="
                  << util::FormatPercent(result.MemberShareOf(type), 0) << " ";
      }
      std::cout << "\n\n";
    }
  }
  std::cout << "paper: (a) V-2 video: 22%+11% diurnal, 20% long-lived, 14% "
               "short-lived, 33% outliers\n       (b) P-2 image: 61% diurnal, "
               "25% long-lived, 14% flash-crowd\n";
  return 0;
}
