// Fig. 14: CDF of repeated content access — requests per user per object;
// >= 10% of video objects exceed 10 requests/user, < 1% of image objects.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace atlas;
  bench::BenchEnv env;
  if (!bench::SetUpStudy(env, argc, argv,
                         "Fig. 14: requests-per-user CDFs")) {
    return 0;
  }
  const auto results = bench::PerSite<analysis::EngagementResult>(
      env, [](const trace::TraceBuffer& t, const std::string& name) {
        return analysis::ComputeEngagement(t, name);
      });
  std::cout << "=== Fig. 14: requests per user, scale=" << env.scale
            << " ===\n";
  analysis::RenderEngagement(results, std::cout);
  std::cout << "\npaper: >= 10% of video objects get > 10 requests per unique "
               "user; < 1% of image objects do\n";
  return 0;
}
