// Fig. 4: device type composition — share of unique users on Desktop /
// Android / iOS / Misc per site, recovered by re-parsing user-agent strings.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace atlas;
  bench::BenchEnv env;
  if (!bench::SetUpStudy(env, argc, argv,
                         "Fig. 4: device type composition")) {
    return 0;
  }
  const auto results = bench::PerSite<analysis::DeviceComposition>(
      env, [](const trace::TraceBuffer& t, const std::string& name) {
        return analysis::ComputeDeviceComposition(t, name);
      });
  std::cout << "=== Fig. 4: device type composition, scale=" << env.scale
            << " ===\n";
  analysis::RenderDeviceComposition(results, std::cout);
  std::cout << "\npaper: desktop dominates everywhere; V-2 > 95% desktop; "
               "S-1 > 1/3 smartphone+misc\n";
  return 0;
}
