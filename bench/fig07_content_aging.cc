// Fig. 7: content injection & aging — fraction of objects requested at each
// age (days); ~20% go silent after day 3, ~10% stay requested all week.
#include "bench_common.h"

#include <fstream>

#include "analysis/csv_export.h"

int main(int argc, char** argv) {
  using namespace atlas;
  bench::BenchEnv env;
  env.flags.DefineString("csv", "", "write the aging series to this CSV file");
  if (!bench::SetUpStudy(env, argc, argv, "Fig. 7: content aging")) {
    return 0;
  }
  const auto results = bench::PerSite<analysis::AgingResult>(
      env, [](const trace::TraceBuffer& t, const std::string& name) {
        return analysis::ComputeAging(t, name);
      });
  std::cout << "=== Fig. 7: content aging, scale=" << env.scale << " ===\n";
  analysis::RenderAging(results, std::cout);
  std::cout << "\npaper: declining fraction requested with age; ~20% of "
               "objects not requested after 3 days;\n       ~10% requested "
               "throughout the week\n";
  if (const std::string path = env.flags.GetString("csv"); !path.empty()) {
    std::ofstream csv(path);
    analysis::WriteAgingCsv(results, csv);
    std::cout << "series written to " << path << '\n';
  }
  return 0;
}
