// Ablation: accounting for adult traffic in forecasting models.
//
// §V: "it is important to separately account for adult traffic in the
// traffic forecasting models and network resource allocation." Four models
// predict the last 2 days of hourly volume from the first 5:
//   (a) canonical template  — the operator practice the paper warns about:
//       assume ALL traffic follows the non-adult hour-of-day profile;
//   (b) per-stream templates — adult-aware profiles, predictions summed;
//   (c,d) Holt-Winters pooled/separated — a generic seasonal learner as the
//       reference (it learns the mixed profile, so pooling is fine there).
#include <cmath>
#include <iostream>

#include "analysis/forecast.h"
#include "bench_common.h"
#include "cdn/scenario.h"
#include "cdn/simulator.h"
#include "energy/model.h"
#include "util/str.h"
#include "util/time.h"

namespace {

using namespace atlas;

// Hourly request-count series (UTC) for a trace.
stats::TimeSeries HourlySeries(const trace::TraceBuffer& trace) {
  stats::TimeSeries ts(util::kMillisPerHour, util::kHoursPerWeek);
  for (const auto& r : trace.records()) ts.Accumulate(r.timestamp_ms);
  return ts;
}

}  // namespace

int main(int argc, char** argv) {
  bench::AblationEnv env;
  env.flags.DefineInt("train-days", 5, "training window in days");
  if (!bench::SetUpAblation(env, argc, argv,
                            "Adult-aware vs. pooled traffic forecasting")) {
    return 0;
  }
  const double scale = env.scale;
  const auto seed = env.seed;
  const auto train =
      static_cast<std::size_t>(env.flags.GetInt("train-days")) * 24;

  cdn::SimulatorConfig config;
  cdn::Scenario scenario = cdn::Scenario::PaperStudy(scale, config, seed);
  // The non-adult stream carries the classic evening diurnal phase and
  // dominates real mixes; weight it 3x the adult aggregate.
  synth::SiteProfile background = synth::SiteProfile::NonAdult(scale);
  background.total_requests *= 3;
  const auto non_adult = cdn::SimulateSite(background, 99, config, seed + 7);

  std::vector<stats::TimeSeries> components;
  stats::TimeSeries adult(util::kMillisPerHour, util::kHoursPerWeek);
  for (const auto& run : scenario.runs()) {
    const auto ts = HourlySeries(run.result.trace);
    for (std::size_t h = 0; h < ts.size(); ++h) adult[h] += ts[h];
  }
  components.push_back(adult);
  components.push_back(HourlySeries(non_adult.trace));

  const auto& non_adult_ts = components[1];
  stats::TimeSeries pooled(util::kMillisPerHour, util::kHoursPerWeek);
  for (const auto& c : components) {
    for (std::size_t h = 0; h < pooled.size(); ++h) pooled[h] += c[h];
  }

  std::cout << "=== Ablation: forecasting adult traffic (scale=" << scale
            << ", train " << env.flags.GetInt("train-days") << "d, test "
            << 7 - env.flags.GetInt("train-days") << "d) ===\n\n";
  std::cout << util::PadRight("model", 38) << util::PadLeft("MAE", 10)
            << util::PadLeft("RMSE", 10) << util::PadLeft("MAPE", 9)
            << util::PadLeft("waste-kWh", 11) << util::PadLeft("waste-USD", 11)
            << '\n';
  std::cout << std::string(89, '-') << '\n';

  // Price forecast error as misprovisioned delivery: every mispredicted
  // request is a request the allocation plan placed on the wrong tier, so
  // its bytes move at origin-fetch rates instead of edge rates. Average
  // bytes/request comes from the same traces the series were built from.
  std::uint64_t total_bytes = 0, total_requests = 0;
  for (const auto& run : scenario.runs()) {
    total_requests += run.result.trace.size();
    for (const auto& r : run.result.trace.records()) total_bytes += r.response_bytes;
  }
  total_requests += non_adult.trace.size();
  for (const auto& r : non_adult.trace.records()) total_bytes += r.response_bytes;
  const double bytes_per_request =
      total_requests > 0
          ? static_cast<double>(total_bytes) / static_cast<double>(total_requests)
          : 0.0;
  const double test_hours =
      static_cast<double>(util::kHoursPerWeek) - static_cast<double>(train);
  const energy::EnergyModel energy_model{cdn::EnergySpec{}};
  const auto row = [&](const char* label, const analysis::ForecastResult& f) {
    energy::DcCounters waste;
    waste.origin_bytes =
        static_cast<std::uint64_t>(f.mae * test_hours * bytes_per_request);
    // span 0: no server idle floor — only the per-byte tier prices apply.
    const auto bill = energy_model.Cost(waste, 0);
    std::cout << util::PadRight(label, 38)
              << util::PadLeft(util::FormatDouble(f.mae, 1), 10)
              << util::PadLeft(util::FormatDouble(f.rmse, 1), 10)
              << util::PadLeft(util::FormatPercent(f.mape, 1), 9)
              << util::PadLeft(util::FormatDouble(bill.TotalKwh(), 2), 11)
              << util::PadLeft(util::FormatDouble(bill.TotalUsd(), 2), 11)
              << '\n';
  };

  // (a) The operator model: apply the canonical non-adult daily profile to
  // everything — the practice the paper warns against.
  const auto canonical = analysis::HourProfile(non_adult_ts, train);
  row("canonical (non-adult) template",
      analysis::TemplateForecast(pooled, train, canonical));
  // (b) Adult-aware templates: each stream forecast with its own profile.
  {
    analysis::ForecastResult separated;
    separated.predictions.assign(pooled.size() - train, 0.0);
    for (const auto& c : components) {
      const auto f =
          analysis::TemplateForecast(c, train, analysis::HourProfile(c, train));
      for (std::size_t h = 0; h < f.predictions.size(); ++h) {
        separated.predictions[h] += f.predictions[h];
      }
    }
    // Score against the pooled actuals.
    double abs_sum = 0, sq = 0, pct = 0;
    std::size_t pct_n = 0;
    for (std::size_t h = 0; h < separated.predictions.size(); ++h) {
      const double actual = pooled[train + h];
      const double err = separated.predictions[h] - actual;
      abs_sum += std::abs(err);
      sq += err * err;
      if (actual > 0) {
        pct += std::abs(err) / actual;
        ++pct_n;
      }
    }
    const auto n = static_cast<double>(separated.predictions.size());
    separated.mae = abs_sum / n;
    separated.rmse = std::sqrt(sq / n);
    separated.mape = pct_n ? pct / static_cast<double>(pct_n) : 0.0;
    row("per-stream templates (adult-aware)", separated);
  }
  // (c) Reference: generic seasonal learners, pooled vs separated.
  const auto cmp = analysis::ComparePooledVsSeparated(components, train);
  row("Holt-Winters, pooled", cmp.pooled);
  row("Holt-Winters, separated", cmp.separated);

  std::cout << "\npaper's claim under test: forecasting models tuned to the "
               "canonical web profile misallocate for adult\ntraffic "
               "(off-phase peaks); adult-aware profiles fix it. A generic "
               "seasonal learner (Holt-Winters)\nabsorbs the mixed profile "
               "either way — separation matters when models assume a shape.\n"
               "waste-kWh/USD: mispredicted requests priced as origin-tier "
               "bytes under the default [energy] spec —\nthe provisioning "
               "cost of trusting the canonical profile\n";
  return 0;
}
