// Fig. 9: cluster medoids for the V-2 adult website — normalized request
// count time series (Sat..Fri) of each cluster's most central video object,
// with point-wise standard deviations.
#include "bench_common.h"

#include "analysis/trend_cluster.h"

int main(int argc, char** argv) {
  using namespace atlas;
  bench::BenchEnv env;
  env.flags.DefineInt("k", 5, "number of flat clusters to cut");
  if (!bench::SetUpStudy(env, argc, argv, "Fig. 9: V-2 cluster medoids")) {
    return 0;
  }
  analysis::TrendClusterConfig config;
  config.k = static_cast<std::size_t>(env.flags.GetInt("k"));
  config.content_class = trace::ContentClass::kVideo;
  for (const auto& run : env.scenario->runs()) {
    if (run.profile.name != "V-2") continue;
    const auto result =
        analysis::ComputeTrendClusters(run.result.trace, "V-2", config);
    std::cout << "=== Fig. 9: V-2 video cluster medoids, scale=" << env.scale
              << " ===\n";
    analysis::RenderClusterMedoids(result, std::cout);
  }
  std::cout << "\npaper: diurnal-A medoid oscillates all week; long-lived "
               "peaks day 1 and decays diurnally over days;\n       "
               "short-lived peaks on arrival and dies within hours\n";
  return 0;
}
