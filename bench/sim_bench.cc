// Sharded simulation engine: throughput and peak memory vs. thread count.
//
// Generates the five-site study workload once, then runs the sharded
// engine (cdn::StreamScenario-equivalent core via RunSharded) over the same
// pre-generated events at 1, 2, and 8 worker threads, plus a sequential
// baseline that simulates the sites one after another — the pre-sharding
// architecture. Records are discarded through a CountingSink so the numbers
// measure the engine, not a sink. Every configuration emits byte-identical
// traces (see tests/engine_test.cc); only the wall clock moves. A second
// sweep drives the BlockSink overload (records leave the engine packed as
// SoA RecordBlocks) and lands as `batch_threads_N` in the JSON.
//
// Results land in BENCH_sim.json (override the path with
// ATLAS_BENCH_SIM_JSON; set it empty to skip). Peak RSS is reset between
// phases via /proc/self/clear_refs where the kernel allows it.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <vector>

#include "bench_common.h"
#include "cdn/engine.h"
#include "synth/site_profile.h"
#include "trace/sink.h"
#include "util/mem.h"
#include "util/rng.h"
#include "util/str.h"

namespace {

using namespace atlas;

struct PhaseSample {
  double records_per_s = 0.0;
  std::uint64_t peak_rss_bytes = 0;
  std::uint64_t records = 0;
};

PhaseSample MeasurePhase(const std::function<std::uint64_t()>& fn,
                         bool& rss_reset_ok) {
  rss_reset_ok = util::ResetPeakRss() && rss_reset_ok;
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t records = fn();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  PhaseSample s;
  s.records = records;
  s.records_per_s =
      seconds > 0.0 ? static_cast<double>(records) / seconds : 0.0;
  s.peak_rss_bytes = util::PeakRssBytes();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  bench::AblationEnv env;
  if (!bench::SetUpAblation(
          env, argc, argv,
          "Sharded simulation engine throughput vs. thread count")) {
    return 0;
  }

  cdn::SimulatorConfig config;
  config.topology.edge_capacity_bytes =
      static_cast<std::uint64_t>(64e9 * env.scale) + (1ULL << 30);

  // Generate the workload once, outside every timed region: the bench
  // measures the simulation engine, not the generator.
  auto profiles = synth::SiteProfile::PaperAdultSites(env.scale);
  util::Rng seeder(env.seed);
  std::vector<std::unique_ptr<synth::WorkloadGenerator>> generators;
  std::vector<std::vector<synth::RequestEvent>> events;
  std::vector<cdn::SiteJob> jobs;
  generators.reserve(profiles.size());
  events.reserve(profiles.size());
  jobs.reserve(profiles.size());
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const auto& profile = profiles[i];
    const std::uint64_t site_seed = seeder.Next();
    generators.push_back(
        std::make_unique<synth::WorkloadGenerator>(profile, site_seed));
    const double inflation =
        generators.back()->EstimateRecordsPerRequest(config.chunk_bytes);
    const auto budget = static_cast<std::uint64_t>(std::max(
        1.0, static_cast<double>(profile.total_requests) / inflation));
    events.push_back(generators.back()->Generate(budget));
    jobs.push_back({generators.back().get(), &events.back(),
                    static_cast<std::uint32_t>(i)});
  }

  bool rss_reset_ok = true;

  // Sequential baseline: each site simulated on its own, one thread — the
  // pre-sharding architecture (per-site work was already concurrent before,
  // so the honest baseline is the single-threaded engine per site).
  const PhaseSample sequential = MeasurePhase(
      [&] {
        std::uint64_t total = 0;
        for (const auto& job : jobs) {
          trace::CountingSink sink;
          cdn::RunSharded({&job, 1}, config, sink, /*threads=*/1);
          total += sink.records();
        }
        return total;
      },
      rss_reset_ok);

  std::vector<std::pair<int, PhaseSample>> threaded;
  for (int threads : {1, 2, 8}) {
    threaded.emplace_back(
        threads, MeasurePhase(
                     [&] {
                       trace::CountingSink sink;
                       cdn::RunSharded(jobs, config, sink, threads);
                       return sink.records();
                     },
                     rss_reset_ok));
  }

  // Batch variant: the merged stream leaves the engine as SoA RecordBlocks
  // (BlockSink overload); same byte sequence, block framing on the way out.
  std::vector<std::pair<int, PhaseSample>> batch;
  for (int threads : {1, 2, 8}) {
    batch.emplace_back(
        threads, MeasurePhase(
                     [&] {
                       trace::BlockCountingSink sink;
                       cdn::RunSharded(jobs, config, sink, threads);
                       return sink.records();
                     },
                     rss_reset_ok));
  }

  std::cout << "records: " << sequential.records << "\n"
            << "sequential:  "
            << static_cast<std::uint64_t>(sequential.records_per_s)
            << " rec/s, peak RSS " << sequential.peak_rss_bytes / 1024 / 1024
            << " MB\n";
  for (const auto& [threads, s] : threaded) {
    std::cout << "threads=" << threads << (threads < 10 ? ":   " : ":  ")
              << static_cast<std::uint64_t>(s.records_per_s)
              << " rec/s, peak RSS " << s.peak_rss_bytes / 1024 / 1024
              << " MB (" << util::FormatDouble(
                     sequential.records_per_s > 0.0
                         ? s.records_per_s / sequential.records_per_s
                         : 0.0,
                     2)
              << "x sequential)\n";
  }
  for (const auto& [threads, s] : batch) {
    std::cout << "batch_threads=" << threads << ": "
              << static_cast<std::uint64_t>(s.records_per_s)
              << " rec/s, peak RSS " << s.peak_rss_bytes / 1024 / 1024
              << " MB\n";
  }
  if (!rss_reset_ok) {
    std::cout << "note: peak-RSS reset unavailable; RSS columns are "
                 "process-lifetime watermarks\n";
  }

  std::string json_path = "BENCH_sim.json";
  if (const char* override_path = std::getenv("ATLAS_BENCH_SIM_JSON")) {
    json_path = override_path;
  }
  if (json_path.empty()) return 0;
  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "cannot write " << json_path << "\n";
    return 1;
  }
  out << "{\n  \"bench\": \"sim\",\n  \"records\": " << sequential.records
      << ",\n  \"scale\": " << env.scale
      << ",\n  \"rss_reset_supported\": " << (rss_reset_ok ? "true" : "false")
      << ",\n  \"results\": {\n";
  const auto append = [&](const std::string& name, const PhaseSample& s,
                          bool last) {
    out << "    \"" << name << "\": {\"records_per_s\": "
        << static_cast<std::uint64_t>(s.records_per_s)
        << ", \"peak_rss_bytes\": " << s.peak_rss_bytes << "}"
        << (last ? "\n" : ",\n");
  };
  append("sequential", sequential, false);
  for (const auto& [threads, s] : threaded) {
    append("threads_" + std::to_string(threads), s, false);
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    append("batch_threads_" + std::to_string(batch[i].first), batch[i].second,
           i + 1 == batch.size());
  }
  out << "  }\n}\n";
  std::cout << "wrote " << json_path << "\n";
  return 0;
}
