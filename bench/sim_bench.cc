// Sharded simulation engine: throughput and peak memory vs. thread count.
//
// Generates the five-site study workload once, then runs the sharded
// engine (cdn::StreamScenario-equivalent core via RunSharded) over the same
// pre-generated events at 1, 2, and 8 worker threads, plus a sequential
// baseline that simulates the sites one after another — the pre-sharding
// architecture. Records are discarded through a CountingSink so the numbers
// measure the engine, not a sink. Every configuration emits byte-identical
// traces (see tests/engine_test.cc); only the wall clock moves. A second
// sweep drives the BlockSink overload (records leave the engine packed as
// SoA RecordBlocks) and lands as `batch_threads_N` in the JSON.
//
// Results land in BENCH_sim.json (override the path with
// ATLAS_BENCH_SIM_JSON; set it empty to skip). Peak RSS is reset between
// phases via /proc/self/clear_refs where the kernel allows it.
//
// --scale-sweep "0.05,1.0,5.0" switches to the scale-hardening sweep
// instead: for each scale it times workload generation and the sharded
// simulation separately (rec/s + peak RSS each) and writes
// BENCH_scale.json (override with ATLAS_BENCH_SCALE_JSON). Scale 1.0 is
// the paper-sized study; the sweep is how the README's scale >= 1.0
// workflow documents its memory envelope.
//
// --spec "scenarios/a.toml,scenarios/b.toml" switches to the scenario
// bench instead: each file is parsed as a ScenarioSpec and run end to end
// through cdn::StreamScenario (generation + simulation + merge, records
// discarded) and the per-scenario rec/s and peak RSS land in
// BENCH_scenario.json (override with ATLAS_BENCH_SCENARIO_JSON).
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <vector>

#include "bench_common.h"
#include "cdn/engine.h"
#include "cdn/scenario.h"
#include "cdn/scenario_spec.h"
#include "synth/site_profile.h"
#include "trace/sink.h"
#include "util/mem.h"
#include "util/rng.h"
#include "util/str.h"

namespace {

using namespace atlas;

struct PhaseSample {
  double records_per_s = 0.0;
  std::uint64_t peak_rss_bytes = 0;
  std::uint64_t records = 0;
};

PhaseSample MeasurePhase(const std::function<std::uint64_t()>& fn,
                         bool& rss_reset_ok) {
  rss_reset_ok = util::ResetPeakRss() && rss_reset_ok;
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t records = fn();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  PhaseSample s;
  s.records = records;
  s.records_per_s =
      seconds > 0.0 ? static_cast<double>(records) / seconds : 0.0;
  s.peak_rss_bytes = util::PeakRssBytes();
  return s;
}

struct SweepPoint {
  double scale = 0.0;
  PhaseSample generate;
  PhaseSample simulate;
};

// One sweep point: build the five-site study at `scale` and time the
// generator and the engine separately. Everything is torn down before the
// next point so peak-RSS watermarks do not bleed across scales.
SweepPoint RunSweepPoint(double scale, std::uint64_t seed, int threads,
                         bool& rss_reset_ok) {
  cdn::SimulatorConfig config;
  config.topology.edge_capacity_bytes =
      static_cast<std::uint64_t>(64e9 * scale) + (1ULL << 30);

  auto profiles = synth::SiteProfile::PaperAdultSites(scale);
  util::Rng seeder(seed);
  std::vector<std::unique_ptr<synth::WorkloadGenerator>> generators;
  std::vector<std::vector<synth::RequestEvent>> events;
  std::vector<cdn::SiteJob> jobs;
  // jobs holds pointers into `events`; reserve so growth never reallocates.
  generators.reserve(profiles.size());
  events.reserve(profiles.size());
  jobs.reserve(profiles.size());

  SweepPoint point;
  point.scale = scale;
  point.generate = MeasurePhase(
      [&] {
        std::uint64_t total_events = 0;
        for (std::size_t i = 0; i < profiles.size(); ++i) {
          const auto& profile = profiles[i];
          const std::uint64_t site_seed = seeder.Next();
          generators.push_back(
              std::make_unique<synth::WorkloadGenerator>(profile, site_seed));
          const double inflation =
              generators.back()->EstimateRecordsPerRequest(config.chunk_bytes);
          const auto budget = static_cast<std::uint64_t>(std::max(
              1.0, static_cast<double>(profile.total_requests) / inflation));
          events.push_back(generators.back()->Generate(budget));
          total_events += events.back().size();
          jobs.push_back({generators.back().get(), &events.back(),
                          static_cast<std::uint32_t>(i)});
        }
        return total_events;
      },
      rss_reset_ok);
  point.simulate = MeasurePhase(
      [&] {
        trace::CountingSink sink;
        cdn::RunSharded(jobs, config, sink, threads);
        return sink.records();
      },
      rss_reset_ok);
  return point;
}

int RunScaleSweep(const std::string& spec, std::uint64_t seed, int threads,
                  bench::BenchRunMeta meta) {
  if (threads <= 0) threads = util::DefaultThreads();
  std::vector<double> scales;
  for (const auto& field : util::Split(spec, ',')) {
    scales.push_back(util::ParseDouble(field));
  }
  bool rss_reset_ok = true;
  std::vector<SweepPoint> points;
  for (const double scale : scales) {
    points.push_back(RunSweepPoint(scale, seed, threads, rss_reset_ok));
    const auto& p = points.back();
    std::cout << "scale=" << util::FormatDouble(scale, 2) << ": generate "
              << static_cast<std::uint64_t>(p.generate.records_per_s)
              << " ev/s (peak RSS " << p.generate.peak_rss_bytes / 1024 / 1024
              << " MB), simulate "
              << static_cast<std::uint64_t>(p.simulate.records_per_s)
              << " rec/s (peak RSS " << p.simulate.peak_rss_bytes / 1024 / 1024
              << " MB), " << p.simulate.records << " records\n";
  }
  if (!rss_reset_ok) {
    std::cout << "note: peak-RSS reset unavailable; RSS columns are "
                 "process-lifetime watermarks\n";
  }

  std::string json_path = "BENCH_scale.json";
  if (const char* override_path = std::getenv("ATLAS_BENCH_SCALE_JSON")) {
    json_path = override_path;
  }
  if (json_path.empty()) return 0;
  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "cannot write " << json_path << "\n";
    return 1;
  }
  meta.scale = 0.0;  // each result row carries its own scale
  out << "{\n  \"bench\": \"scale\",\n  " << bench::BenchMetaJson(meta)
      << ",\n  \"threads\": " << threads
      << ",\n  \"rss_reset_supported\": " << (rss_reset_ok ? "true" : "false")
      << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    out << "    {\"scale\": " << util::FormatDouble(p.scale, 3)
        << ", \"records\": " << p.simulate.records
        << ", \"generate_events_per_s\": "
        << static_cast<std::uint64_t>(p.generate.records_per_s)
        << ", \"generate_peak_rss_bytes\": " << p.generate.peak_rss_bytes
        << ", \"simulate_records_per_s\": "
        << static_cast<std::uint64_t>(p.simulate.records_per_s)
        << ", \"simulate_peak_rss_bytes\": " << p.simulate.peak_rss_bytes
        << "}" << (i + 1 == points.size() ? "\n" : ",\n");
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << json_path << "\n";
  return 0;
}

// One timed run per scenario file: parse, then stream the whole scenario
// (generation + simulation + k-way merge) into a CountingSink. Unlike the
// thread bench above, generation is inside the timed region — a scenario
// file describes a complete run, so the bench reports what a user of
// `atlas-trace simulate --spec` actually pays per record.
int RunScenarioBench(const std::string& spec_list, int threads,
                     bench::BenchRunMeta meta) {
  if (threads <= 0) threads = util::DefaultThreads();
  struct ScenarioPoint {
    std::string file;
    std::string name;
    PhaseSample run;
  };
  bool rss_reset_ok = true;
  std::vector<ScenarioPoint> points;
  for (const auto& field : util::Split(spec_list, ',')) {
    const std::string path(field);
    const auto spec = cdn::ScenarioSpec::ParseFile(path);
    ScenarioPoint point;
    point.file = path;
    point.name = spec.name;
    point.run = MeasurePhase(
        [&] {
          trace::CountingSink sink;
          cdn::StreamScenario(spec, sink, threads);
          return sink.records();
        },
        rss_reset_ok);
    std::cout << spec.name << ": "
              << static_cast<std::uint64_t>(point.run.records_per_s)
              << " rec/s, peak RSS " << point.run.peak_rss_bytes / 1024 / 1024
              << " MB, " << point.run.records << " records\n";
    points.push_back(std::move(point));
  }
  if (!rss_reset_ok) {
    std::cout << "note: peak-RSS reset unavailable; RSS columns are "
                 "process-lifetime watermarks\n";
  }

  std::string json_path = "BENCH_scenario.json";
  if (const char* override_path = std::getenv("ATLAS_BENCH_SCENARIO_JSON")) {
    json_path = override_path;
  }
  if (json_path.empty()) return 0;
  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "cannot write " << json_path << "\n";
    return 1;
  }
  meta.scenario = spec_list;
  meta.scale = 0.0;  // each scenario file pins its own scale
  out << "{\n  \"bench\": \"scenario\",\n  " << bench::BenchMetaJson(meta)
      << ",\n  \"threads\": " << threads
      << ",\n  \"rss_reset_supported\": " << (rss_reset_ok ? "true" : "false")
      << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    out << "    {\"file\": \"" << p.file << "\", \"name\": \"" << p.name
        << "\", \"records\": " << p.run.records << ", \"records_per_s\": "
        << static_cast<std::uint64_t>(p.run.records_per_s)
        << ", \"peak_rss_bytes\": " << p.run.peak_rss_bytes << "}"
        << (i + 1 == points.size() ? "\n" : ",\n");
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << json_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::AblationEnv env;
  env.flags.DefineString(
      "scale-sweep", "",
      "comma-separated scales (e.g. 0.05,1.0,5.0): run the scale sweep "
      "(generation + simulation rec/s and peak RSS per scale) and write "
      "BENCH_scale.json instead of the thread-count bench");
  env.flags.DefineString(
      "spec", "",
      "comma-separated scenario files: run each declarative scenario end to "
      "end and write BENCH_scenario.json instead of the thread-count bench");
  if (!bench::SetUpAblation(
          env, argc, argv,
          "Sharded simulation engine throughput vs. thread count")) {
    return 0;
  }
  const auto meta = bench::MetaFromFlags(env.flags, "paper_study");
  const std::string sweep = env.flags.GetString("scale-sweep");
  if (!sweep.empty()) {
    return RunScaleSweep(sweep, env.seed,
                         static_cast<int>(env.flags.GetInt("threads")), meta);
  }
  const std::string spec_list = env.flags.GetString("spec");
  if (!spec_list.empty()) {
    return RunScenarioBench(
        spec_list, static_cast<int>(env.flags.GetInt("threads")), meta);
  }

  cdn::SimulatorConfig config;
  config.topology.edge_capacity_bytes =
      static_cast<std::uint64_t>(64e9 * env.scale) + (1ULL << 30);

  // Generate the workload once, outside every timed region: the bench
  // measures the simulation engine, not the generator.
  auto profiles = synth::SiteProfile::PaperAdultSites(env.scale);
  util::Rng seeder(env.seed);
  std::vector<std::unique_ptr<synth::WorkloadGenerator>> generators;
  std::vector<std::vector<synth::RequestEvent>> events;
  std::vector<cdn::SiteJob> jobs;
  generators.reserve(profiles.size());
  events.reserve(profiles.size());
  jobs.reserve(profiles.size());
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const auto& profile = profiles[i];
    const std::uint64_t site_seed = seeder.Next();
    generators.push_back(
        std::make_unique<synth::WorkloadGenerator>(profile, site_seed));
    const double inflation =
        generators.back()->EstimateRecordsPerRequest(config.chunk_bytes);
    const auto budget = static_cast<std::uint64_t>(std::max(
        1.0, static_cast<double>(profile.total_requests) / inflation));
    events.push_back(generators.back()->Generate(budget));
    jobs.push_back({generators.back().get(), &events.back(),
                    static_cast<std::uint32_t>(i)});
  }

  bool rss_reset_ok = true;

  // Sequential baseline: each site simulated on its own, one thread — the
  // pre-sharding architecture (per-site work was already concurrent before,
  // so the honest baseline is the single-threaded engine per site).
  const PhaseSample sequential = MeasurePhase(
      [&] {
        std::uint64_t total = 0;
        for (const auto& job : jobs) {
          trace::CountingSink sink;
          cdn::RunSharded({&job, 1}, config, sink, /*threads=*/1);
          total += sink.records();
        }
        return total;
      },
      rss_reset_ok);

  std::vector<std::pair<int, PhaseSample>> threaded;
  for (int threads : {1, 2, 8}) {
    threaded.emplace_back(
        threads, MeasurePhase(
                     [&] {
                       trace::CountingSink sink;
                       cdn::RunSharded(jobs, config, sink, threads);
                       return sink.records();
                     },
                     rss_reset_ok));
  }

  // Batch variant: the merged stream leaves the engine as SoA RecordBlocks
  // (BlockSink overload); same byte sequence, block framing on the way out.
  std::vector<std::pair<int, PhaseSample>> batch;
  for (int threads : {1, 2, 8}) {
    batch.emplace_back(
        threads, MeasurePhase(
                     [&] {
                       trace::BlockCountingSink sink;
                       cdn::RunSharded(jobs, config, sink, threads);
                       return sink.records();
                     },
                     rss_reset_ok));
  }

  std::cout << "records: " << sequential.records << "\n"
            << "sequential:  "
            << static_cast<std::uint64_t>(sequential.records_per_s)
            << " rec/s, peak RSS " << sequential.peak_rss_bytes / 1024 / 1024
            << " MB\n";
  for (const auto& [threads, s] : threaded) {
    std::cout << "threads=" << threads << (threads < 10 ? ":   " : ":  ")
              << static_cast<std::uint64_t>(s.records_per_s)
              << " rec/s, peak RSS " << s.peak_rss_bytes / 1024 / 1024
              << " MB (" << util::FormatDouble(
                     sequential.records_per_s > 0.0
                         ? s.records_per_s / sequential.records_per_s
                         : 0.0,
                     2)
              << "x sequential)\n";
  }
  for (const auto& [threads, s] : batch) {
    std::cout << "batch_threads=" << threads << ": "
              << static_cast<std::uint64_t>(s.records_per_s)
              << " rec/s, peak RSS " << s.peak_rss_bytes / 1024 / 1024
              << " MB\n";
  }
  if (!rss_reset_ok) {
    std::cout << "note: peak-RSS reset unavailable; RSS columns are "
                 "process-lifetime watermarks\n";
  }

  std::string json_path = "BENCH_sim.json";
  if (const char* override_path = std::getenv("ATLAS_BENCH_SIM_JSON")) {
    json_path = override_path;
  }
  if (json_path.empty()) return 0;
  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "cannot write " << json_path << "\n";
    return 1;
  }
  out << "{\n  \"bench\": \"sim\",\n  " << bench::BenchMetaJson(meta)
      << ",\n  \"records\": " << sequential.records
      << ",\n  \"scale\": " << env.scale
      << ",\n  \"rss_reset_supported\": " << (rss_reset_ok ? "true" : "false")
      << ",\n  \"results\": {\n";
  const auto append = [&](const std::string& name, const PhaseSample& s,
                          bool last) {
    out << "    \"" << name << "\": {\"records_per_s\": "
        << static_cast<std::uint64_t>(s.records_per_s)
        << ", \"peak_rss_bytes\": " << s.peak_rss_bytes << "}"
        << (last ? "\n" : ",\n");
  };
  append("sequential", sequential, false);
  for (const auto& [threads, s] : threaded) {
    append("threads_" + std::to_string(threads), s, false);
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    append("batch_threads_" + std::to_string(batch[i].first), batch[i].second,
           i + 1 == batch.size());
  }
  out << "  }\n}\n";
  std::cout << "wrote " << json_path << "\n";
  return 0;
}
