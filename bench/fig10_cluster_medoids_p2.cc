// Fig. 10: cluster medoids for the P-2 adult website — image-object panel.
#include "bench_common.h"

#include "analysis/trend_cluster.h"

int main(int argc, char** argv) {
  using namespace atlas;
  bench::BenchEnv env;
  env.flags.DefineInt("k", 5, "number of flat clusters to cut");
  if (!bench::SetUpStudy(env, argc, argv, "Fig. 10: P-2 cluster medoids")) {
    return 0;
  }
  analysis::TrendClusterConfig config;
  config.k = static_cast<std::size_t>(env.flags.GetInt("k"));
  config.content_class = trace::ContentClass::kImage;
  for (const auto& run : env.scenario->runs()) {
    if (run.profile.name != "P-2") continue;
    const auto result =
        analysis::ComputeTrendClusters(run.result.trace, "P-2", config);
    std::cout << "=== Fig. 10: P-2 image cluster medoids, scale=" << env.scale
              << " ===\n";
    analysis::RenderClusterMedoids(result, std::cout);
  }
  std::cout << "\npaper: P-2 images split into diurnal, long-lived and "
               "flash-crowd medoids\n";
  return 0;
}
