// Fig. 2: traffic composition — request counts (a) and delivered bytes (b)
// per content class; video dominates byte volume wherever it exists.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace atlas;
  bench::BenchEnv env;
  if (!bench::SetUpStudy(env, argc, argv,
                         "Fig. 2: traffic composition (requests and bytes)")) {
    return 0;
  }
  const auto results = bench::PerSite<analysis::CompositionResult>(
      env, [](const trace::TraceBuffer& t, const std::string& name) {
        return analysis::ComputeComposition(t, name);
      });
  std::cout << "=== Fig. 2: traffic composition, scale=" << env.scale
            << " ===\n";
  analysis::RenderTrafficComposition(results, std::cout);
  std::cout << "\npaper: V-1 3.1M video requests (99%); V-2 359K video vs "
               "657K image requests;\n       video bytes dominate (V-1 video "
               "alone: 258 GB)\n";
  return 0;
}
