// Ablation: pattern-aware revalidation schedules.
//
// §IV-B/§V: revalidate diurnal and long-lived objects rarely (daily-scale
// expiry) and short-lived objects often. The closed loop: run the study,
// classify per-object temporal shapes from the trace itself, feed the
// classifications into a RevalidationOracle, and replay the trace through
// (a) uniform-short TTL, (b) uniform-long TTL, and (c) oracle-driven TTL
// caches. The oracle should match the long TTL's hit ratio while keeping
// short-lived objects on an hourly revalidation schedule.
#include <iostream>
#include <memory>

#include "analysis/trend_cluster.h"
#include "bench_common.h"
#include "cdn/policies.h"
#include "cdn/revalidation.h"
#include "cdn/scenario.h"
#include "cluster/shape.h"
#include "energy/model.h"
#include "util/str.h"
#include "util/time.h"

namespace {

using namespace atlas;

struct ReplayStats {
  cdn::CacheStats cache;
  std::uint64_t expired = 0;
};

// Replays the scenario's merged trace through `cache`, streamed chunk by
// chunk (no materialized combined copy).
ReplayStats Replay(cdn::Cache& cache, const cdn::Scenario& scenario) {
  cdn::MergedTraceSource source(scenario);
  for (auto chunk = source.NextChunk(); !chunk.empty();
       chunk = source.NextChunk()) {
    for (const auto& r : chunk) {
      if (r.response_code != trace::kHttpOk &&
          r.response_code != trace::kHttpPartialContent) {
        continue;
      }
      cache.Access(r.url_hash, r.object_size, r.timestamp_ms);
    }
  }
  ReplayStats out;
  out.cache = cache.stats();
  if (auto* oracle_cache = dynamic_cast<cdn::OracleTtlCache*>(&cache)) {
    out.expired = oracle_cache->expired_lookups();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::AblationEnv env;
  env.flags.DefineDouble("capacity-gb", 2.0, "replay cache capacity (GB)");
  if (!bench::SetUpAblation(env, argc, argv,
                            "Pattern-aware revalidation schedules")) {
    return 0;
  }
  const double scale = env.scale;

  cdn::SimulatorConfig config;
  cdn::Scenario scenario = cdn::Scenario::PaperStudy(scale, config, env.seed);

  // Classify object shapes from the trace (per site, both classes) and feed
  // the oracle — the analysis->delivery closed loop.
  cdn::RevalidationOracle oracle;
  for (const auto& run : scenario.runs()) {
    for (const auto cls :
         {trace::ContentClass::kVideo, trace::ContentClass::kImage}) {
      analysis::TrendClusterConfig tc;
      tc.use_class = true;
      tc.content_class = cls;
      tc.min_requests = 20;
      const auto series =
          analysis::BuildObjectHourlySeries(run.result.trace, tc);
      for (const auto& [hash, s] : series) {
        oracle.Classify(hash, cluster::ClassifyShape(s));
      }
    }
  }

  const auto capacity = static_cast<std::uint64_t>(
      env.flags.GetDouble("capacity-gb") * 1e9 * scale * 20);
  std::cout << "=== Ablation: revalidation schedules (scale=" << scale
            << ", capacity "
            << util::FormatBytes(static_cast<double>(capacity))
            << ", " << oracle.classified_count()
            << " objects classified) ===\n\n";
  std::cout << util::PadRight("schedule", 26) << util::PadLeft("hit%", 8)
            << util::PadLeft("expired-miss", 14)
            << util::PadLeft("origin fetches", 16) << util::PadLeft("kWh", 9)
            << util::PadLeft("USD", 9) << '\n';
  std::cout << std::string(82, '-') << '\n';

  const energy::EnergyModel energy_model{cdn::EnergySpec{}};
  const auto report = [&](const char* label, ReplayStats stats) {
    // Weekly bill for the replay: hits serve at the edge tier, every miss
    // (including expiry-induced ones) is an origin fetch plus the 304
    // revalidation round-trips the schedule forces.
    energy::DcCounters c;
    c.hits = stats.cache.hits;
    c.misses = stats.cache.misses;
    c.hit_bytes = stats.cache.hit_bytes;
    c.miss_bytes = stats.cache.miss_bytes;
    c.origin_fetches = stats.cache.misses;
    c.origin_bytes = stats.cache.miss_bytes;
    c.revalidations = stats.expired;
    const auto bill = energy_model.Cost(c, util::kMillisPerWeek);
    std::cout << util::PadRight(label, 26)
              << util::PadLeft(util::FormatPercent(stats.cache.HitRatio(), 1), 8)
              << util::PadLeft(
                     stats.expired > 0
                         ? util::FormatCount(static_cast<double>(stats.expired))
                         : std::string("-"),
                     14)
              << util::PadLeft(
                     util::FormatCount(static_cast<double>(stats.cache.misses)),
                     16)
              << util::PadLeft(util::FormatDouble(bill.TotalKwh(), 1), 9)
              << util::PadLeft(util::FormatDouble(bill.TotalUsd(), 2), 9)
              << '\n';
  };

  {
    cdn::TtlLruCache uniform_short(capacity, 3600 * 1000LL);
    report("uniform TTL = 1 h", Replay(uniform_short, scenario));
  }
  {
    cdn::TtlLruCache uniform_long(capacity, 24 * 3600 * 1000LL);
    report("uniform TTL = 24 h", Replay(uniform_long, scenario));
  }
  {
    cdn::OracleTtlCache oracle_cache(
        capacity, [&](std::uint64_t key) { return oracle.TtlFor(key); });
    report("pattern-aware oracle", Replay(oracle_cache, scenario));
  }

  std::cout << "\npaper's claim under test: long expiry for diurnal/"
               "long-lived objects recovers the uniform-24h hit ratio\n"
               "while unclassified/short-lived objects keep conservative "
               "freshness (bounded staleness).\nkWh/USD: weekly bill under "
               "the default [energy] spec — needless expiry turns edge-tier "
               "bytes into\norigin-tier bytes, which is where the dollars "
               "go\n";
  return 0;
}
