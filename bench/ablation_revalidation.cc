// Ablation: pattern-aware revalidation schedules.
//
// §IV-B/§V: revalidate diurnal and long-lived objects rarely (daily-scale
// expiry) and short-lived objects often. The closed loop: run the study,
// classify per-object temporal shapes from the trace itself, feed the
// classifications into a RevalidationOracle, and replay the trace through
// (a) uniform-short TTL, (b) uniform-long TTL, and (c) oracle-driven TTL
// caches. The oracle should match the long TTL's hit ratio while keeping
// short-lived objects on an hourly revalidation schedule.
#include <iostream>
#include <memory>

#include "analysis/trend_cluster.h"
#include "cdn/policies.h"
#include "cdn/revalidation.h"
#include "cdn/scenario.h"
#include "cluster/shape.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/str.h"

namespace {

using namespace atlas;

struct ReplayStats {
  cdn::CacheStats cache;
  std::uint64_t expired = 0;
};

ReplayStats Replay(cdn::Cache& cache, const trace::TraceBuffer& trace) {
  for (const auto& r : trace.records()) {
    if (r.response_code != trace::kHttpOk &&
        r.response_code != trace::kHttpPartialContent) {
      continue;
    }
    cache.Access(r.url_hash, r.object_size, r.timestamp_ms);
  }
  ReplayStats out;
  out.cache = cache.stats();
  if (auto* oracle_cache = dynamic_cast<cdn::OracleTtlCache*>(&cache)) {
    out.expired = oracle_cache->expired_lookups();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.DefineDouble("scale", 0.05, "population scale in (0, 1]");
  flags.DefineInt("seed", 42, "RNG seed");
  flags.DefineDouble("capacity-gb", 2.0, "replay cache capacity (GB)");
  try {
    flags.Parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n" << flags.Usage(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.Usage(argv[0]);
    return 0;
  }
  util::SetLogLevel(util::LogLevel::kWarn);
  const double scale = flags.GetDouble("scale");

  cdn::SimulatorConfig config;
  cdn::Scenario scenario = cdn::Scenario::PaperStudy(
      scale, config, static_cast<std::uint64_t>(flags.GetInt("seed")));
  const trace::TraceBuffer merged = scenario.MergedTrace();

  // Classify object shapes from the trace (per site, both classes) and feed
  // the oracle — the analysis->delivery closed loop.
  cdn::RevalidationOracle oracle;
  for (const auto& run : scenario.runs()) {
    for (const auto cls :
         {trace::ContentClass::kVideo, trace::ContentClass::kImage}) {
      analysis::TrendClusterConfig tc;
      tc.use_class = true;
      tc.content_class = cls;
      tc.min_requests = 20;
      const auto series =
          analysis::BuildObjectHourlySeries(run.result.trace, tc);
      for (const auto& [hash, s] : series) {
        oracle.Classify(hash, cluster::ClassifyShape(s));
      }
    }
  }

  const auto capacity = static_cast<std::uint64_t>(
      flags.GetDouble("capacity-gb") * 1e9 * scale * 20);
  std::cout << "=== Ablation: revalidation schedules (scale=" << scale
            << ", capacity "
            << util::FormatBytes(static_cast<double>(capacity))
            << ", " << oracle.classified_count()
            << " objects classified) ===\n\n";
  std::cout << util::PadRight("schedule", 26) << util::PadLeft("hit%", 8)
            << util::PadLeft("expired-miss", 14)
            << util::PadLeft("origin fetches", 16) << '\n';
  std::cout << std::string(64, '-') << '\n';

  const auto report = [&](const char* label, ReplayStats stats) {
    std::cout << util::PadRight(label, 26)
              << util::PadLeft(util::FormatPercent(stats.cache.HitRatio(), 1), 8)
              << util::PadLeft(
                     stats.expired > 0
                         ? util::FormatCount(static_cast<double>(stats.expired))
                         : std::string("-"),
                     14)
              << util::PadLeft(
                     util::FormatCount(static_cast<double>(stats.cache.misses)),
                     16)
              << '\n';
  };

  {
    cdn::TtlLruCache uniform_short(capacity, 3600 * 1000LL);
    report("uniform TTL = 1 h", Replay(uniform_short, merged));
  }
  {
    cdn::TtlLruCache uniform_long(capacity, 24 * 3600 * 1000LL);
    report("uniform TTL = 24 h", Replay(uniform_long, merged));
  }
  {
    cdn::OracleTtlCache oracle_cache(
        capacity, [&](std::uint64_t key) { return oracle.TtlFor(key); });
    report("pattern-aware oracle", Replay(oracle_cache, merged));
  }

  std::cout << "\npaper's claim under test: long expiry for diurnal/"
               "long-lived objects recovers the uniform-24h hit ratio\n"
               "while unclassified/short-lived objects keep conservative "
               "freshness (bounded staleness)\n";
  return 0;
}
