// Ablation: cooperative (peer) cache fill across the CDN footprint.
//
// Extends §V's "push copies of popular adult objects closer to end-users":
// instead of proactively pushing, let an edge miss be filled from a sibling
// data center that already holds the object, falling back to the origin.
// Sweep edge capacity and report how much origin egress peering removes —
// most valuable exactly when edges are small and the long tail churns.
#include <iostream>

#include "bench_common.h"
#include "cdn/scenario.h"
#include "energy/model.h"
#include "util/str.h"
#include "util/time.h"

int main(int argc, char** argv) {
  using namespace atlas;
  bench::AblationEnv env;
  if (!bench::SetUpAblation(env, argc, argv,
                            "Cooperative peer-fill sweep (five sites)")) {
    return 0;
  }
  const double scale = env.scale;
  const auto seed = env.seed;

  std::cout << "=== Ablation: cooperative peer fill (five sites, scale="
            << scale << ") ===\n";
  std::cout << util::PadRight("per-DC capacity", 17)
            << util::PadRight("peering", 9) << util::PadLeft("hit%", 8)
            << util::PadLeft("peer fills", 12) << util::PadLeft("origin", 11)
            << util::PadLeft("origin cut", 12) << util::PadLeft("kWh", 9)
            << util::PadLeft("USD", 9) << '\n';
  std::cout << std::string(87, '-') << '\n';
  const energy::EnergyModel energy_model{cdn::EnergySpec{}};
  for (double gb_at_full : {8.0, 24.0, 64.0}) {
    std::uint64_t baseline_origin = 0;
    for (bool peering : {false, true}) {
      cdn::SimulatorConfig config;
      config.topology.edge_capacity_bytes =
          static_cast<std::uint64_t>(gb_at_full * 1e9 * scale) + (64ULL << 20);
      config.peer_fill = peering;
      cdn::Scenario scenario = cdn::Scenario::PaperStudy(scale, config, seed);
      cdn::CacheStats edge;
      std::uint64_t origin_bytes = 0, peer_fetches = 0;
      energy::EnergyBreakdown bill;
      for (const auto& run : scenario.runs()) {
        edge.Merge(run.result.edge_stats);
        origin_bytes += run.result.origin.bytes;
        peer_fetches += run.result.peer_fetches;
        bill.Add(
            energy_model.FromResult(run.result, util::kMillisPerWeek).total);
      }
      if (!peering) baseline_origin = origin_bytes;
      const double cut =
          baseline_origin > 0
              ? 1.0 - static_cast<double>(origin_bytes) /
                          static_cast<double>(baseline_origin)
              : 0.0;
      std::cout << util::PadRight(
                       util::FormatBytes(static_cast<double>(
                           config.topology.edge_capacity_bytes)),
                       17)
                << util::PadRight(peering ? "on" : "off", 9)
                << util::PadLeft(util::FormatPercent(edge.HitRatio(), 1), 8)
                << util::PadLeft(
                       util::FormatCount(static_cast<double>(peer_fetches)), 12)
                << util::PadLeft(
                       util::FormatBytes(static_cast<double>(origin_bytes)), 11)
                << util::PadLeft(
                       peering ? util::FormatPercent(cut, 1) : std::string("-"),
                       12)
                << util::PadLeft(util::FormatDouble(bill.TotalKwh(), 1), 9)
                << util::PadLeft(util::FormatDouble(bill.TotalUsd(), 2), 9)
                << '\n';
    }
  }
  std::cout << "\ninterpretation: sibling copies absorb fills for objects "
               "popular in one region and warm in another;\nthe origin cut "
               "shrinks as edges grow large enough to hold the working set "
               "themselves.\nkWh/USD: weekly fleet bill under the default "
               "[energy] spec — peer fills move bytes from the expensive\n"
               "origin tier to the cheaper peer tier, so the savings show up "
               "in dollars, not just hit ratio\n";
  return 0;
}
