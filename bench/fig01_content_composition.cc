// Fig. 1: content composition of five adult websites — distinct objects per
// class (video / image / other) stored on the CDN.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace atlas;
  bench::BenchEnv env;
  if (!bench::SetUpStudy(env, argc, argv,
                         "Fig. 1: content composition (objects by class)")) {
    return 0;
  }
  const auto results = bench::PerSite<analysis::CompositionResult>(
      env, [](const trace::TraceBuffer& t, const std::string& name) {
        return analysis::ComputeComposition(t, name);
      });
  std::cout << "=== Fig. 1: content composition, scale=" << env.scale
            << " ===\n";
  analysis::RenderContentComposition(results, std::cout);
  std::cout << "\npaper: V-1 98% video | V-2 84% image / 15% video | "
               "P-1, P-2, S-1 ~99% image\n";
  return 0;
}
