// Shared scaffolding for the figure-regeneration benches.
//
// Every fig* binary accepts the same flags (--scale, --seed, --capacity-gb,
// --policy, --csv) and regenerates one paper figure from a fresh synthetic
// five-site study. --scale 1.0 reproduces the paper-sized populations;
// the default keeps each bench under a few seconds.
#pragma once

#include <cstdint>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "analysis/report.h"
#include "cdn/scenario.h"
#include "synth/site_profile.h"
#include "trace/trace_io.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/par.h"

namespace atlas::bench {

struct BenchEnv {
  util::Flags flags;
  double scale = 0.1;
  std::uint64_t seed = 42;
  cdn::SimulatorConfig config;
  std::unique_ptr<cdn::Scenario> scenario;

  const trace::PublisherRegistry& registry() const {
    return scenario->registry();
  }
};

inline cdn::PolicyKind PolicyFromName(const std::string& name) {
  for (int k = 0; k < cdn::kNumPolicyKinds; ++k) {
    const auto kind = static_cast<cdn::PolicyKind>(k);
    if (name == cdn::ToString(kind)) return kind;
  }
  throw std::invalid_argument("unknown cache policy: " + name +
                              " (use LRU, FIFO, LFU, GDSF, S4LRU, TTL-LRU)");
}

// Parses flags and runs the five-site study. Returns false (after printing
// usage) if --help was requested. Extra flags can be defined on env.flags
// before calling.
inline bool SetUpStudy(BenchEnv& env, int argc, char** argv,
                       const char* description) {
  env.flags.DefineDouble("scale", 0.1,
                         "population scale in (0, 16]; 1.0 is the paper-sized "
                         "study, >1 extrapolates past it");
  env.flags.DefineInt("seed", 42, "RNG seed");
  env.flags.DefineDouble("capacity-gb", 0.0,
                         "edge cache capacity per DC in GB (0 = auto-scale)");
  env.flags.DefineString("policy", "LRU", "edge cache policy");
  env.flags.DefineInt("threads", 0,
                      "worker threads (0 = hardware concurrency); results "
                      "are identical at any value");
  try {
    env.flags.Parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n" << env.flags.Usage(argv[0]);
    std::exit(1);
  }
  if (env.flags.help_requested()) {
    std::cout << description << "\n\n" << env.flags.Usage(argv[0]);
    return false;
  }
  util::SetLogLevel(util::LogLevel::kWarn);
  util::SetDefaultThreads(static_cast<int>(env.flags.GetInt("threads")));
  env.scale = env.flags.GetDouble("scale");
  env.seed = static_cast<std::uint64_t>(env.flags.GetInt("seed"));
  env.config.topology.edge_policy =
      PolicyFromName(env.flags.GetString("policy"));
  const double capacity_gb = env.flags.GetDouble("capacity-gb");
  env.config.topology.edge_capacity_bytes =
      capacity_gb > 0.0
          ? static_cast<std::uint64_t>(capacity_gb * 1e9)
          : static_cast<std::uint64_t>(64e9 * env.scale) + (1ULL << 30);
  env.scenario = std::make_unique<cdn::Scenario>(
      cdn::Scenario::PaperStudy(env.scale, env.config, env.seed));
  return true;
}

// Shared flag scaffolding for the ablation benches: --scale / --seed /
// --threads parsing, log level, and the worker-thread default in one place.
// Unlike SetUpStudy this does not run a scenario — each ablation builds its
// own sweep of configs. Extra flags can be defined on env.flags before the
// call. Returns false (after printing usage) if --help was requested.
struct AblationEnv {
  util::Flags flags;
  double scale = 0.05;
  std::uint64_t seed = 42;
};

inline bool SetUpAblation(AblationEnv& env, int argc, char** argv,
                          const char* description) {
  env.flags.DefineDouble("scale", 0.05,
                         "population scale in (0, 16]; 1.0 is the paper-sized "
                         "study, >1 extrapolates past it");
  env.flags.DefineInt("seed", 42, "RNG seed");
  env.flags.DefineInt("threads", 0,
                      "worker threads (0 = hardware concurrency); results "
                      "are identical at any value");
  try {
    env.flags.Parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n" << env.flags.Usage(argv[0]);
    std::exit(1);
  }
  if (env.flags.help_requested()) {
    std::cout << description << "\n\n" << env.flags.Usage(argv[0]);
    return false;
  }
  util::SetLogLevel(util::LogLevel::kWarn);
  util::SetDefaultThreads(static_cast<int>(env.flags.GetInt("threads")));
  env.scale = env.flags.GetDouble("scale");
  env.seed = static_cast<std::uint64_t>(env.flags.GetInt("seed"));
  return true;
}

// Run metadata stamped into every BENCH_*.json (the "meta" object) so a
// number in the perf trajectory is attributable without replaying the run:
// which scenario/workload produced it, at what population scale, under
// which --threads flag (0 = hardware concurrency), and with what synth
// table budget in force. A scale of 0 means the file's result rows carry
// their own scales (sweep-style benches).
struct BenchRunMeta {
  std::string scenario = "paper_study";
  double scale = 0.0;
  int threads = 0;
  std::uint64_t synth_budget_bytes =
      synth::SiteProfile{}.synth_table_budget_bytes;
};

// The `"meta": {...}` fragment (no surrounding comma/newline) for the
// handwritten JSON writers.
inline std::string BenchMetaJson(const BenchRunMeta& meta) {
  std::ostringstream os;
  os << "\"meta\": {\"scenario\": \"" << meta.scenario
     << "\", \"scale\": " << meta.scale << ", \"threads\": " << meta.threads
     << ", \"synth_budget_bytes\": " << meta.synth_budget_bytes << "}";
  return os.str();
}

// Meta pre-filled from the shared --scale/--threads flags.
inline BenchRunMeta MetaFromFlags(const util::Flags& flags,
                                  const std::string& scenario) {
  BenchRunMeta meta;
  meta.scenario = scenario;
  meta.scale = flags.GetDouble("scale");
  meta.threads = static_cast<int>(flags.GetInt("threads"));
  return meta;
}

// Collects one analysis result per site, in paper order.
template <typename Result, typename Fn>
std::vector<Result> PerSite(const BenchEnv& env, Fn&& compute) {
  std::vector<Result> results;
  for (const auto& run : env.scenario->runs()) {
    results.push_back(compute(run.result.trace, run.profile.name));
  }
  return results;
}

}  // namespace atlas::bench
