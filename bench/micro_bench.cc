// Micro-benchmarks (google-benchmark) for the performance-critical library
// pieces: DTW, cache policies, Zipf sampling, catalog sampling, UA parsing,
// and end-to-end generation throughput — serial and parallel.
//
// Besides the google-benchmark suite, the binary times the two parallelized
// hot paths (workload generation, pairwise DTW) at 1, 2, and N threads and
// writes records/sec + speedup to BENCH_parallel.json (override the path
// with ATLAS_BENCH_PARALLEL_JSON; set it empty to skip).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <thread>

#include "bench_common.h"
#include "cdn/cache.h"
#include "cluster/dtw.h"
#include "stats/sampler.h"
#include "synth/workload.h"
#include "trace/useragent.h"
#include "util/logging.h"
#include "util/par.h"
#include "util/rng.h"

namespace {

using namespace atlas;

std::vector<double> RandomSeries(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.NextDouble();
  return v;
}

void BM_DtwDistance(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = RandomSeries(n, 1);
  const auto b = RandomSeries(n, 2);
  const auto band = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::DtwDistance(a, b, band));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DtwDistance)
    ->Args({168, 0})
    ->Args({168, 12})
    ->Args({672, 0})
    ->Args({672, 24});

void BM_CachePolicy(benchmark::State& state) {
  const auto kind = static_cast<cdn::PolicyKind>(state.range(0));
  util::Rng rng(7);
  // Pre-generate a Zipf-ish access stream.
  stats::ZipfSampler zipf(20000, 0.9);
  std::vector<std::uint64_t> keys(1 << 16);
  for (auto& k : keys) k = zipf.Sample(rng);
  auto cache = cdn::CreateCache(kind, 64ULL << 20);
  std::size_t i = 0;
  for (auto _ : state) {
    cache->Access(keys[i & (keys.size() - 1)], 4096,
                  static_cast<std::int64_t>(i));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(cdn::ToString(kind));
}
BENCHMARK(BM_CachePolicy)->DenseRange(0, cdn::kNumPolicyKinds - 1);

void BM_ZipfSample(benchmark::State& state) {
  util::Rng rng(3);
  stats::ZipfSampler zipf(static_cast<std::uint64_t>(state.range(0)), 0.9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(100000)->Arg(10000000);

void BM_AliasTableSample(benchmark::State& state) {
  util::Rng rng(3);
  std::vector<double> weights(static_cast<std::size_t>(state.range(0)));
  for (auto& w : weights) w = rng.NextDouble() + 0.01;
  stats::AliasTable alias(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(alias.Sample(rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AliasTableSample)->Arg(1000)->Arg(100000);

void BM_CatalogSampleObject(benchmark::State& state) {
  util::SetLogLevel(util::LogLevel::kWarn);
  util::Rng rng(5);
  synth::Catalog catalog(synth::SiteProfile::V2(0.05), rng);
  std::int64_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(catalog.SampleObject(t, rng));
    t = (t + 61234) % util::kMillisPerWeek;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CatalogSampleObject);

void BM_ParseUserAgent(benchmark::State& state) {
  const auto& bank = trace::UaBank::Instance();
  std::uint16_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trace::ParseUserAgent(bank.String(i++ % bank.size())));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ParseUserAgent);

void BM_WorkloadGenerate(benchmark::State& state) {
  util::SetLogLevel(util::LogLevel::kWarn);
  const auto requests = static_cast<std::uint64_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  synth::WorkloadGenerator gen(synth::SiteProfile::P1(0.02), 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Generate(requests, threads));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(requests));
  state.SetLabel(std::to_string(threads) + " threads");
}
BENCHMARK(BM_WorkloadGenerate)
    ->Args({10000, 1})
    ->Args({50000, 1})
    ->Args({50000, 2})
    ->Args({50000, 0});  // 0 = hardware concurrency

void BM_PairwiseDtw(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  std::vector<std::vector<double>> series;
  series.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    series.push_back(RandomSeries(168, i + 1));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::PairwiseDtw(series, 12, threads));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count * (count - 1) / 2));
  state.SetLabel(std::to_string(threads) + " threads");
}
BENCHMARK(BM_PairwiseDtw)
    ->Args({64, 1})
    ->Args({64, 2})
    ->Args({64, 0});

// --- BENCH_parallel.json: parallel-path throughput + speedup record -------

double SecondsOf(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct ParallelSample {
  int threads = 1;
  double records_per_s = 0.0;
  double speedup = 1.0;
};

// Times fn(threads) (returning a unit count) at each thread count; speedup
// is relative to the 1-thread run of the same workload.
std::vector<ParallelSample> MeasureAtThreadCounts(
    const std::vector<int>& thread_counts,
    const std::function<std::uint64_t(int)>& fn) {
  std::vector<ParallelSample> samples;
  double serial_rate = 0.0;
  for (const int threads : thread_counts) {
    std::uint64_t units = 0;
    // Warm once (first-touch allocations), then take the best of 3.
    fn(threads);
    double best = 1e100;
    for (int rep = 0; rep < 3; ++rep) {
      best = std::min(best, SecondsOf([&] { units = fn(threads); }));
    }
    ParallelSample s;
    s.threads = threads;
    s.records_per_s = static_cast<double>(units) / best;
    if (threads == 1) serial_rate = s.records_per_s;
    s.speedup = serial_rate > 0.0 ? s.records_per_s / serial_rate : 1.0;
    samples.push_back(s);
  }
  return samples;
}

void AppendSamples(std::ostream& out, const char* name,
                   const std::vector<ParallelSample>& samples) {
  out << "    \"" << name << "\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    out << "      {\"threads\": " << s.threads
        << ", \"records_per_s\": " << static_cast<std::uint64_t>(s.records_per_s)
        << ", \"speedup\": " << s.speedup << "}"
        << (i + 1 < samples.size() ? "," : "") << "\n";
  }
  out << "    ]";
}

void WriteParallelReport(const std::string& path) {
  util::SetLogLevel(util::LogLevel::kWarn);
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  std::vector<int> thread_counts = {1, 2};
  if (hw > 2) thread_counts.push_back(hw);

  // Workload generation: one generator, repeated weeks (events/sec).
  synth::WorkloadGenerator gen(synth::SiteProfile::P1(0.02), 11);
  const auto gen_samples =
      MeasureAtThreadCounts(thread_counts, [&](int threads) -> std::uint64_t {
        constexpr std::uint64_t kEvents = 60000;
        benchmark::DoNotOptimize(gen.Generate(kEvents, threads));
        return kEvents;
      });

  // Pairwise DTW over week-length series (cell computations/sec).
  std::vector<std::vector<double>> series;
  for (std::size_t i = 0; i < 96; ++i) series.push_back(RandomSeries(168, i + 1));
  const auto dtw_samples =
      MeasureAtThreadCounts(thread_counts, [&](int threads) -> std::uint64_t {
        benchmark::DoNotOptimize(cluster::PairwiseDtw(series, 12, threads));
        return series.size() * (series.size() - 1) / 2;
      });

  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return;
  }
  // No flags here (google-benchmark owns argv): the workloads are the fixed
  // synthetic micro inputs above, generated at P-1 scale 0.02.
  bench::BenchRunMeta meta;
  meta.scenario = "micro_synthetic";
  meta.scale = 0.02;
  out << "{\n  \"bench\": \"parallel\",\n  " << bench::BenchMetaJson(meta)
      << ",\n  \"hardware_threads\": " << hw << ",\n  \"results\": {\n";
  AppendSamples(out, "workload_generate", gen_samples);
  out << ",\n";
  AppendSamples(out, "pairwise_dtw", dtw_samples);
  out << "\n  }\n}\n";
  std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::string json_path = "BENCH_parallel.json";
  if (const char* override_path = std::getenv("ATLAS_BENCH_PARALLEL_JSON")) {
    json_path = override_path;
  }
  if (!json_path.empty()) WriteParallelReport(json_path);
  return 0;
}
