// Micro-benchmarks (google-benchmark) for the performance-critical library
// pieces: DTW, cache policies, Zipf sampling, catalog sampling, UA parsing,
// and end-to-end generation throughput.
#include <benchmark/benchmark.h>

#include "cdn/cache.h"
#include "cluster/dtw.h"
#include "stats/sampler.h"
#include "synth/workload.h"
#include "trace/useragent.h"
#include "util/logging.h"
#include "util/rng.h"

namespace {

using namespace atlas;

std::vector<double> RandomSeries(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.NextDouble();
  return v;
}

void BM_DtwDistance(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = RandomSeries(n, 1);
  const auto b = RandomSeries(n, 2);
  const auto band = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::DtwDistance(a, b, band));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DtwDistance)
    ->Args({168, 0})
    ->Args({168, 12})
    ->Args({672, 0})
    ->Args({672, 24});

void BM_CachePolicy(benchmark::State& state) {
  const auto kind = static_cast<cdn::PolicyKind>(state.range(0));
  util::Rng rng(7);
  // Pre-generate a Zipf-ish access stream.
  stats::ZipfSampler zipf(20000, 0.9);
  std::vector<std::uint64_t> keys(1 << 16);
  for (auto& k : keys) k = zipf.Sample(rng);
  auto cache = cdn::CreateCache(kind, 64ULL << 20);
  std::size_t i = 0;
  for (auto _ : state) {
    cache->Access(keys[i & (keys.size() - 1)], 4096,
                  static_cast<std::int64_t>(i));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(cdn::ToString(kind));
}
BENCHMARK(BM_CachePolicy)->DenseRange(0, cdn::kNumPolicyKinds - 1);

void BM_ZipfSample(benchmark::State& state) {
  util::Rng rng(3);
  stats::ZipfSampler zipf(static_cast<std::uint64_t>(state.range(0)), 0.9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(100000)->Arg(10000000);

void BM_AliasTableSample(benchmark::State& state) {
  util::Rng rng(3);
  std::vector<double> weights(static_cast<std::size_t>(state.range(0)));
  for (auto& w : weights) w = rng.NextDouble() + 0.01;
  stats::AliasTable alias(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(alias.Sample(rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AliasTableSample)->Arg(1000)->Arg(100000);

void BM_CatalogSampleObject(benchmark::State& state) {
  util::SetLogLevel(util::LogLevel::kWarn);
  util::Rng rng(5);
  synth::Catalog catalog(synth::SiteProfile::V2(0.05), rng);
  std::int64_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(catalog.SampleObject(t, rng));
    t = (t + 61234) % util::kMillisPerWeek;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CatalogSampleObject);

void BM_ParseUserAgent(benchmark::State& state) {
  const auto& bank = trace::UaBank::Instance();
  std::uint16_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trace::ParseUserAgent(bank.String(i++ % bank.size())));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ParseUserAgent);

void BM_WorkloadGenerate(benchmark::State& state) {
  util::SetLogLevel(util::LogLevel::kWarn);
  const auto requests = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    synth::WorkloadGenerator gen(synth::SiteProfile::P1(0.02), 11);
    benchmark::DoNotOptimize(gen.Generate(requests));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(requests));
}
BENCHMARK(BM_WorkloadGenerate)->Arg(10000)->Arg(50000);

}  // namespace

BENCHMARK_MAIN();
