// Fig. 12: user session length CDFs (10-minute inactivity timeout) — adult
// engagement is short-lived; medians around a minute for the video sites.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace atlas;
  bench::BenchEnv env;
  env.flags.DefineInt("timeout-min", 10, "session inactivity timeout, minutes");
  if (!bench::SetUpStudy(env, argc, argv, "Fig. 12: session length CDFs")) {
    return 0;
  }
  const std::int64_t timeout_ms = env.flags.GetInt("timeout-min") * 60 * 1000;
  const auto results = bench::PerSite<analysis::SessionResult>(
      env, [timeout_ms](const trace::TraceBuffer& t, const std::string& name) {
        return analysis::ComputeSessions(t, name, timeout_ms);
      });
  std::cout << "=== Fig. 12: session lengths (timeout "
            << env.flags.GetInt("timeout-min") << " min), scale=" << env.scale
            << " ===\n";
  analysis::RenderSessions(results, std::cout);
  std::cout << "\npaper: median session lengths around one minute — far "
               "shorter than YouTube-style engagement\n";
  return 0;
}
