// claims_check — does this build still reproduce the paper?
//
// Runs the five-site study, the full analysis suite, and every encoded
// paper claim; prints one PASS/FAIL line per claim. Non-zero exit code on
// any failure, so it slots into CI.
#include "bench_common.h"

#include "analysis/claims.h"
#include "analysis/suite.h"

int main(int argc, char** argv) {
  using namespace atlas;
  bench::BenchEnv env;
  if (!bench::SetUpStudy(env, argc, argv,
                         "Verify every encoded paper claim (PASS/FAIL)")) {
    return 0;
  }
  analysis::SuiteConfig suite_config;
  suite_config.run_trend_clusters = false;  // Figs. 8-10 have their own bench
  cdn::MergedTraceSource source(*env.scenario);
  analysis::AnalysisSuite suite(source, env.registry(), suite_config);
  std::cout << "=== Paper-claim verification, scale=" << env.scale
            << ", seed=" << env.seed << " ===\n\n";
  const auto claims = analysis::VerifyPaperClaims(suite);
  return analysis::RenderClaims(claims, std::cout) == 0 ? 0 : 1;
}
