// Ablation: unified vs. split caching platforms.
//
// §IV-B: "ISPs/CDNs can employ separate caching platforms to optimally
// serve small and large sized objects. The caching platform for small
// objects can be optimized for high-throughput I/O; whereas, the caching
// platform for large objects can be optimized for more storage capacity."
//
// This bench replays one generated trace through (a) one unified LRU of
// capacity C and (b) a small-object LRU + large-object LRU whose capacities
// sum to C, across split points and small:large capacity ratios.
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "cdn/cache.h"
#include "cdn/scenario.h"
#include "energy/model.h"
#include "util/str.h"
#include "util/time.h"

namespace {

using namespace atlas;

struct ReplayResult {
  cdn::CacheStats small;
  cdn::CacheStats large;
  cdn::CacheStats Total() const {
    cdn::CacheStats t = small;
    t.Merge(large);
    return t;
  }
};

// Replays object-level accesses (content-bearing responses only), streamed
// from the scenario's merged trace chunk by chunk — no combined copy.
ReplayResult Replay(const cdn::Scenario& scenario,
                    std::uint64_t small_capacity,
                    std::uint64_t large_capacity,
                    std::uint64_t split_bytes) {
  auto small_cache = cdn::CreateCache(cdn::PolicyKind::kLru, small_capacity);
  auto large_cache = large_capacity > 0
                         ? cdn::CreateCache(cdn::PolicyKind::kLru, large_capacity)
                         : nullptr;
  ReplayResult result;
  cdn::MergedTraceSource source(scenario);
  for (auto chunk = source.NextChunk(); !chunk.empty();
       chunk = source.NextChunk()) {
    for (const auto& r : chunk) {
      if (r.response_code != trace::kHttpOk &&
          r.response_code != trace::kHttpPartialContent) {
        continue;
      }
      if (large_cache != nullptr && r.object_size > split_bytes) {
        large_cache->Access(r.url_hash, r.object_size, r.timestamp_ms);
      } else {
        small_cache->Access(r.url_hash, r.object_size, r.timestamp_ms);
      }
    }
  }
  result.small = small_cache->stats();
  if (large_cache != nullptr) result.large = large_cache->stats();
  return result;
}

// Weekly bill for a replayed cache: hits serve from the edge tier, every
// miss is an origin fetch (the replay has no peers to fill from).
energy::EnergyBreakdown Bill(const energy::EnergyModel& model,
                             const cdn::CacheStats& stats) {
  energy::DcCounters c;
  c.hits = stats.hits;
  c.misses = stats.misses;
  c.hit_bytes = stats.hit_bytes;
  c.miss_bytes = stats.miss_bytes;
  c.origin_fetches = stats.misses;
  c.origin_bytes = stats.miss_bytes;
  return model.Cost(c, util::kMillisPerWeek);
}

}  // namespace

int main(int argc, char** argv) {
  bench::AblationEnv env;
  env.flags.DefineDouble("capacity-gb", 0.0, "total capacity (0 = auto)");
  if (!bench::SetUpAblation(env, argc, argv,
                            "Unified vs. split small/large cache platforms")) {
    return 0;
  }
  const double scale = env.scale;

  cdn::SimulatorConfig config;
  cdn::Scenario scenario = cdn::Scenario::PaperStudy(scale, config, env.seed);

  const double cap_flag = env.flags.GetDouble("capacity-gb");
  const auto total_capacity = static_cast<std::uint64_t>(
      cap_flag > 0.0 ? cap_flag * 1e9 : 40e9 * scale);

  std::cout << "=== Ablation: split small/large cache platforms (scale="
            << scale << ", total capacity "
            << util::FormatBytes(static_cast<double>(total_capacity))
            << ") ===\n";
  std::cout << util::PadRight("config", 30) << util::PadLeft("hit%", 8)
            << util::PadLeft("small-hit%", 12) << util::PadLeft("large-hit%", 12)
            << util::PadLeft("kWh", 9) << util::PadLeft("USD", 9) << '\n';
  std::cout << std::string(80, '-') << '\n';
  const energy::EnergyModel energy_model{cdn::EnergySpec{}};

  // Baseline: one unified cache.
  const auto unified = Replay(scenario, total_capacity, 0, 0);
  const auto unified_bill = Bill(energy_model, unified.Total());
  std::cout << util::PadRight("unified LRU", 30)
            << util::PadLeft(util::FormatPercent(unified.Total().HitRatio(), 1), 8)
            << util::PadLeft("-", 12) << util::PadLeft("-", 12)
            << util::PadLeft(util::FormatDouble(unified_bill.TotalKwh(), 1), 9)
            << util::PadLeft(util::FormatDouble(unified_bill.TotalUsd(), 2), 9)
            << '\n';

  // Splits: threshold 1 MB (the paper's image/video size boundary) with
  // different capacity ratios for the small platform.
  for (double small_frac : {0.05, 0.1, 0.2, 0.4}) {
    const auto small_cap =
        static_cast<std::uint64_t>(small_frac * static_cast<double>(total_capacity));
    const auto split =
        Replay(scenario, small_cap, total_capacity - small_cap, 1 << 20);
    char label[64];
    std::snprintf(label, sizeof(label), "split@1MB, %2.0f%% small",
                  small_frac * 100);
    const auto split_bill = Bill(energy_model, split.Total());
    std::cout << util::PadRight(label, 30)
              << util::PadLeft(util::FormatPercent(split.Total().HitRatio(), 1), 8)
              << util::PadLeft(util::FormatPercent(split.small.HitRatio(), 1), 12)
              << util::PadLeft(util::FormatPercent(split.large.HitRatio(), 1), 12)
              << util::PadLeft(util::FormatDouble(split_bill.TotalKwh(), 1), 9)
              << util::PadLeft(util::FormatDouble(split_bill.TotalUsd(), 2), 9)
              << '\n';
  }
  std::cout << "\nInterpretation: a small dedicated platform keeps the "
               "many-small-objects hit ratio high while the\nbulk capacity "
               "serves large objects — the paper's separate-platform "
               "recommendation quantified.\nkWh/USD: weekly bill under the "
               "default [energy] spec with every replay miss priced as an "
               "origin fetch.\n";
  return 0;
}
