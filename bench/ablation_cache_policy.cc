// Ablation: which edge cache policy wins on adult traffic mixes?
//
// Replays the same generated workload through every policy at a range of
// capacities, for the video-heavy (V-1) and image-heavy (P-1) sites. §V's
// implication under test: small-object-friendly policies (GDSF) shine on
// image mixes; recency/frequency policies matter for chunked video.
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "cdn/simulator.h"
#include "energy/model.h"
#include "synth/site_profile.h"
#include "util/str.h"
#include "util/time.h"

int main(int argc, char** argv) {
  using namespace atlas;
  bench::AblationEnv env;
  if (!bench::SetUpAblation(env, argc, argv,
                            "Edge cache policy sweep (V-1 and P-1)")) {
    return 0;
  }
  const double scale = env.scale;
  const auto seed = env.seed;

  const std::vector<synth::SiteProfile> profiles = {
      synth::SiteProfile::V1(scale), synth::SiteProfile::P1(scale)};
  const std::vector<double> capacities_gb = {0.25, 0.5, 1.0, 2.0};

  std::cout << "=== Ablation: edge cache policy sweep (scale=" << scale
            << ") ===\n";
  std::cout << util::PadRight("site", 6) << util::PadRight("policy", 9)
            << util::PadLeft("cap(GB)", 9) << util::PadLeft("hit%", 8)
            << util::PadLeft("byte-hit%", 11) << util::PadLeft("origin", 10)
            << util::PadLeft("evictions", 11) << util::PadLeft("kWh", 9)
            << util::PadLeft("USD", 9) << '\n';
  std::cout << std::string(82, '-') << '\n';
  const energy::EnergyModel energy_model{cdn::EnergySpec{}};
  for (const auto& profile : profiles) {
    for (double cap_gb : capacities_gb) {
      for (int k = 0; k < cdn::kNumPolicyKinds; ++k) {
        cdn::SimulatorConfig config;
        config.topology.edge_policy = static_cast<cdn::PolicyKind>(k);
        config.topology.edge_capacity_bytes =
            static_cast<std::uint64_t>(cap_gb * 1e9 * scale * 20);
        const auto result = cdn::SimulateSite(profile, 0, config, seed);
        std::cout << util::PadRight(profile.name, 6)
                  << util::PadRight(
                         cdn::ToString(static_cast<cdn::PolicyKind>(k)), 9)
                  << util::PadLeft(util::FormatDouble(cap_gb, 2), 9)
                  << util::PadLeft(
                         util::FormatPercent(result.edge_stats.HitRatio(), 1), 8)
                  << util::PadLeft(util::FormatPercent(
                                       result.edge_stats.ByteHitRatio(), 1),
                                   11)
                  << util::PadLeft(
                         util::FormatBytes(static_cast<double>(result.origin.bytes)),
                         10)
                  << util::PadLeft(
                         util::FormatCount(
                             static_cast<double>(result.edge_stats.evictions)),
                         11);
        const auto bill =
            energy_model.FromResult(result, util::kMillisPerWeek).total;
        std::cout << util::PadLeft(util::FormatDouble(bill.TotalKwh(), 1), 9)
                  << util::PadLeft(util::FormatDouble(bill.TotalUsd(), 2), 9)
                  << '\n';
      }
    }
    std::cout << '\n';
  }
  return 0;
}
