// §III dataset summary: the synthetic stand-in for "323 TB from 80 million
// users over one week" — per-site records, users, objects, bytes, span.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace atlas;
  bench::BenchEnv env;
  if (!bench::SetUpStudy(env, argc, argv, "Dataset summary (paper SS III)")) {
    return 0;
  }
  const auto summaries = bench::PerSite<analysis::DatasetSummary>(
      env, [](const trace::TraceBuffer& t, const std::string& name) {
        return analysis::ComputeDatasetSummary(t, name);
      });
  std::cout << "=== Dataset summary (paper SS III), scale=" << env.scale
            << " ===\n";
  analysis::RenderDatasetSummaries(summaries, std::cout);

  // Aggregate row.
  analysis::DatasetSummary total;
  total.label = "all";
  for (const auto& s : summaries) {
    total.records += s.records;
    total.users += s.users;  // users are per-site unique, like the paper's 80M
    total.objects += s.objects;
    total.bytes += s.bytes;
    total.end_ms = std::max(total.end_ms, s.end_ms);
  }
  std::cout << '\n';
  analysis::RenderDatasetSummaries({total}, std::cout);
  return 0;
}
