// Ablation: pushing popular adult objects closer to end-users.
//
// §V: "content delivery networks can improve performance and reduce network
// traffic by pushing copies of popular adult objects to locations closer to
// their end-users", specifically diurnal and long-lived objects. Sweep the
// push budget and pattern selection; report hit ratio, origin traffic, and
// the week's energy/dollar bill under the default EnergySpec — the y-axis
// §V actually argues about.
#include <iostream>

#include "bench_common.h"
#include "cdn/simulator.h"
#include "energy/model.h"
#include "synth/site_profile.h"
#include "util/str.h"
#include "util/time.h"

int main(int argc, char** argv) {
  using namespace atlas;
  bench::AblationEnv env;
  if (!bench::SetUpAblation(env, argc, argv,
                            "Push/prefetch strategy sweep on V-2")) {
    return 0;
  }
  const double scale = env.scale;
  const auto seed = env.seed;
  const auto profile = synth::SiteProfile::V2(scale);

  struct Variant {
    const char* label;
    bool enabled;
    std::size_t top_n;
    bool diurnal;
    bool long_lived;
    bool short_lived;
  };
  const Variant kVariants[] = {
      {"no push (baseline)", false, 0, false, false, false},
      {"push top-50 diurnal+long", true, 50, true, true, false},
      {"push top-200 diurnal+long", true, 200, true, true, false},
      {"push top-800 diurnal+long", true, 800, true, true, false},
      {"push top-200 diurnal only", true, 200, true, false, false},
      {"push top-200 long only", true, 200, false, true, false},
      {"push top-200 short-lived", true, 200, false, false, true},
  };

  std::cout << "=== Ablation: push/prefetch strategies on V-2 (scale=" << scale
            << ") ===\n";
  std::cout << util::PadRight("variant", 28) << util::PadLeft("hit%", 8)
            << util::PadLeft("origin", 11) << util::PadLeft("pushed", 9)
            << util::PadLeft("push-bytes", 12) << util::PadLeft("kWh", 9)
            << util::PadLeft("USD", 9) << '\n';
  std::cout << std::string(86, '-') << '\n';
  const energy::EnergyModel energy_model{cdn::EnergySpec{}};
  for (const auto& v : kVariants) {
    cdn::SimulatorConfig config;
    config.topology.edge_capacity_bytes =
        static_cast<std::uint64_t>(30e9 * scale);
    config.push.enabled = v.enabled;
    config.push.top_n = v.top_n;
    config.push.include_diurnal = v.diurnal;
    config.push.include_long_lived = v.long_lived;
    config.push.include_short_lived = v.short_lived;
    const auto result = cdn::SimulateSite(profile, 0, config, seed);
    std::cout << util::PadRight(v.label, 28)
              << util::PadLeft(
                     util::FormatPercent(result.edge_stats.HitRatio(), 1), 8)
              << util::PadLeft(
                     util::FormatBytes(static_cast<double>(result.origin.bytes)),
                     11)
              << util::PadLeft(util::FormatCount(
                                   static_cast<double>(result.pushed_objects)),
                               9)
              << util::PadLeft(
                     util::FormatBytes(static_cast<double>(result.pushed_bytes)),
                     12);
    const auto bill =
        energy_model.FromResult(result, util::kMillisPerWeek).total;
    std::cout << util::PadLeft(util::FormatDouble(bill.TotalKwh(), 1), 9)
              << util::PadLeft(util::FormatDouble(bill.TotalUsd(), 2), 9)
              << '\n';
  }
  std::cout << "\npaper's claim under test: pushing diurnal/long-lived "
               "objects raises hit ratio and cuts origin traffic;\npushing "
               "short-lived objects is the wrong spend (they die before the "
               "copies pay off)\nkWh/USD: week-long bill under the default "
               "[energy] spec — origin bytes price at the expensive tier,\n"
               "so the push variants that cut origin egress cut dollars\n";
  return 0;
}
