// Fig. 5: content size CDFs — video objects mostly > 1 MB, image objects
// < 1 MB with bimodal thumbnail/full-resolution populations.
#include "bench_common.h"

#include <fstream>

#include "analysis/csv_export.h"

int main(int argc, char** argv) {
  using namespace atlas;
  bench::BenchEnv env;
  env.flags.DefineString("csv", "", "write the CDF series to this CSV file");
  if (!bench::SetUpStudy(env, argc, argv, "Fig. 5: content size CDFs")) {
    return 0;
  }
  const auto results = bench::PerSite<analysis::SizeDistributions>(
      env, [](const trace::TraceBuffer& t, const std::string& name) {
        return analysis::ComputeSizeDistributions(t, name);
      });
  std::cout << "=== Fig. 5: content size distributions, scale=" << env.scale
            << " ===\n";
  analysis::RenderSizeDistributions(results, std::cout);
  std::cout << "\npaper: video objects mostly > 1 MB (P-2 largest); image "
               "objects < 1 MB, bimodal\n";
  if (const std::string path = env.flags.GetString("csv"); !path.empty()) {
    std::vector<std::pair<std::string, const stats::Ecdf*>> named;
    for (const auto& s : results) {
      named.emplace_back(s.site + "/video", &s.video);
      named.emplace_back(s.site + "/image", &s.image);
    }
    std::ofstream csv(path);
    analysis::WriteCdfCsv(named, csv);
    std::cout << "series written to " << path << '\n';
  }
  return 0;
}
