// Fig. 13: repeated access of objects — requests vs. unique users per
// object; points far above the diagonal are addiction-driven.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace atlas;
  bench::BenchEnv env;
  if (!bench::SetUpStudy(env, argc, argv,
                         "Fig. 13: repeated access (requests vs users)")) {
    return 0;
  }
  const auto results = bench::PerSite<analysis::EngagementResult>(
      env, [](const trace::TraceBuffer& t, const std::string& name) {
        return analysis::ComputeEngagement(t, name);
      });
  std::cout << "=== Fig. 13: repeated access, scale=" << env.scale << " ===\n";
  for (const auto& r : results) {
    analysis::RenderRepeatedAccess(r, std::cout);
    std::cout << '\n';
  }
  std::cout << "paper: some video objects draw two orders of magnitude more "
               "requests than unique users (addiction);\n       image "
               "objects sit on the diagonal (viral-only popularity)\n";
  return 0;
}
