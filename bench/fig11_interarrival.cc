// Fig. 11: user request inter-arrival time CDFs — video sites have much
// shorter IATs (median < 10 min) than image-heavy sites (median > 1 h).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace atlas;
  bench::BenchEnv env;
  if (!bench::SetUpStudy(env, argc, argv,
                         "Fig. 11: request inter-arrival time CDFs")) {
    return 0;
  }
  const auto results = bench::PerSite<analysis::SessionResult>(
      env, [](const trace::TraceBuffer& t, const std::string& name) {
        return analysis::ComputeSessions(t, name);
      });
  std::cout << "=== Figs. 11-12 source: sessions, scale=" << env.scale
            << " ===\n";
  analysis::RenderSessions(results, std::cout);
  std::cout << "\npaper: video-site median IAT < 10 min; image-heavy sites "
               "> 1 h\n";
  return 0;
}
