// Energy accounting bench: runs a declarative scenario end to end with the
// EnergyAccumulator attached (cdn::StreamScenario + the epoch observer) and
// reports wall throughput plus the full joule/dollar breakdown per DC.
//
// Results land in BENCH_energy.json (override the path with
// ATLAS_BENCH_ENERGY_JSON; set it empty to skip). The energy numbers come
// from the scenario's [energy] table (or its documented defaults), so the
// file doubles as the golden source for the scenario energy assertions.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.h"
#include "cdn/scenario_spec.h"
#include "energy/run.h"
#include "trace/sink.h"
#include "util/str.h"

namespace {

using namespace atlas;

void AppendBreakdown(std::ostream& out, const energy::EnergyBreakdown& e) {
  out << "\"server_j\": " << e.server_j << ", \"network_j\": " << e.network_j
      << ", \"storage_j\": " << e.storage_j << ", \"kwh\": " << e.TotalKwh()
      << ", \"electricity_usd\": " << e.electricity_usd
      << ", \"transit_usd\": " << e.transit_usd
      << ", \"usd\": " << e.TotalUsd();
}

}  // namespace

int main(int argc, char** argv) {
  bench::AblationEnv env;
  env.flags.DefineString("spec", "scenarios/paper_study.toml",
                         "declarative scenario file to run");
  if (!bench::SetUpAblation(env, argc, argv,
                            "Scenario run with energy accounting: throughput "
                            "plus the per-DC joule/dollar breakdown")) {
    return 0;
  }
  const std::string spec_path = env.flags.GetString("spec");
  auto spec = cdn::ScenarioSpec::ParseFile(spec_path);
  if (env.flags.Provided("scale")) spec.scale = env.flags.GetDouble("scale");
  if (env.flags.Provided("seed")) spec.seed = env.seed;
  spec.Validate();
  const int threads = static_cast<int>(env.flags.GetInt("threads"));

  trace::CountingSink sink;
  const auto start = std::chrono::steady_clock::now();
  const auto run = energy::StreamScenarioWithEnergy(spec, sink, threads);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const std::uint64_t records = sink.records();
  const double records_per_s =
      seconds > 0.0 ? static_cast<double>(records) / seconds : 0.0;
  const auto& report = run.report;

  std::cout << spec.name << ": " << records << " records, "
            << static_cast<std::uint64_t>(records_per_s) << " rec/s, "
            << report.epochs << " epochs\n";
  for (const auto& dc : report.dcs) {
    std::cout << "dc" << dc.dc << ": "
              << util::FormatBytes(static_cast<double>(dc.served_bytes))
              << " served, duty " << util::FormatPercent(dc.duty, 1) << ", "
              << util::FormatDouble(dc.energy.TotalKwh(), 2) << " kWh, $"
              << util::FormatDouble(dc.energy.TotalUsd(), 2) << "\n";
  }
  std::cout << "total: " << util::FormatDouble(report.total.TotalKwh(), 2)
            << " kWh, $" << util::FormatDouble(report.total.TotalUsd(), 2)
            << " ($" << util::FormatDouble(report.total.electricity_usd, 2)
            << " electricity + $"
            << util::FormatDouble(report.total.transit_usd, 2)
            << " transit)\n";

  std::string json_path = "BENCH_energy.json";
  if (const char* override_path = std::getenv("ATLAS_BENCH_ENERGY_JSON")) {
    json_path = override_path;
  }
  if (json_path.empty()) return 0;
  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "cannot write " << json_path << "\n";
    return 1;
  }
  auto meta = bench::MetaFromFlags(env.flags, spec.name);
  meta.scale = spec.scale;
  out << "{\n  \"bench\": \"energy\",\n  " << bench::BenchMetaJson(meta)
      << ",\n  \"spec\": \"" << spec_path << "\",\n  \"records\": " << records
      << ",\n  \"records_per_s\": "
      << static_cast<std::uint64_t>(records_per_s)
      << ",\n  \"epochs\": " << report.epochs
      << ",\n  \"span_ms\": " << report.span_ms << ",\n  \"total\": {";
  AppendBreakdown(out, report.total);
  out << "},\n  \"dcs\": [\n";
  for (std::size_t i = 0; i < report.dcs.size(); ++i) {
    const auto& dc = report.dcs[i];
    out << "    {\"dc\": " << dc.dc
        << ", \"served_bytes\": " << dc.served_bytes
        << ", \"duty\": " << dc.duty << ", ";
    AppendBreakdown(out, dc.energy);
    out << "}" << (i + 1 == report.dcs.size() ? "\n" : ",\n");
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << json_path << "\n";
  return 0;
}
