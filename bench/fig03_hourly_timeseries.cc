// Fig. 3: hourly traffic volume timeseries in users' local time. Adult
// sites deviate from the classic 7-11pm web peak; V-1 peaks late-night.
#include "bench_common.h"

#include <fstream>

#include "analysis/csv_export.h"
#include "cdn/simulator.h"

int main(int argc, char** argv) {
  using namespace atlas;
  bench::BenchEnv env;
  env.flags.DefineString("csv", "", "write the figure series to this CSV file");
  if (!bench::SetUpStudy(env, argc, argv,
                         "Fig. 3: hourly traffic volume (local time)")) {
    return 0;
  }
  auto results = bench::PerSite<analysis::HourlyVolume>(
      env, [](const trace::TraceBuffer& t, const std::string& name) {
        return analysis::ComputeHourlyVolume(t, name);
      });
  // Contrast series: the non-adult control with the classic evening peak.
  const auto control = cdn::SimulateSite(synth::SiteProfile::NonAdult(env.scale),
                                         99, env.config, env.seed + 1);
  results.push_back(analysis::ComputeHourlyVolume(control.trace, "N-1"));

  std::cout << "=== Fig. 3: hourly traffic volume (% of weekly, local time), "
               "scale=" << env.scale << " ===\n";
  analysis::RenderHourlyVolume(results, std::cout);
  std::cout << "\npaper: V-1 peaks late-night/early-morning, opposite the "
               "typical 7-11pm diurnal peak;\n       other adult sites vary "
               "less but still differ from classic diurnal patterns\n";
  if (const std::string path = env.flags.GetString("csv"); !path.empty()) {
    std::ofstream csv(path);
    analysis::WriteHourlyVolumeCsv(results, csv);
    std::cout << "series written to " << path << '\n';
  }
  return 0;
}
