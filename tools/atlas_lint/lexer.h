// atlas-lint phase-0 lexer: comment/string-aware scrubbing.
//
// Scrub() splits a C++ source file into two parallel per-line views:
//   code[i]     line i with comments and string/char-literal bodies blanked
//               out by spaces (so token regexes never match inside them);
//               column positions are preserved exactly.
//   comment[i]  the comment text on line i (where allow() pragmas live).
//
// Lexical subtleties the scrubber must get right (each has a regression
// fixture under tests/lint_corpus/):
//   - Raw string literals R"delim(...)delim", including the prefixed forms
//     u8R / uR / UR / LR. An identifier that merely *ends* in R (kFOUR"...")
//     is an ordinary string, not a raw one.
//   - Backslash line continuations. A spliced line keeps its physical line
//     break (line numbers must stay aligned with the file on disk) but the
//     lexical state carries over: a `// comment \` continues commenting the
//     next physical line, and a string may span the splice.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace atlas::lint {

struct ScrubbedFile {
  std::vector<std::string> code;     // [0] unused; lines are 1-based
  std::vector<std::string> comment;  // comment text per line
};

ScrubbedFile Scrub(const std::string& content);

// Parses suppression pragmas — "allow(rule-a, rule-b)" after the tool
// prefix — out of comment text.
std::set<std::string> ParseAllows(const std::string& comment);

// All allow pragmas in a scrubbed file, keyed by 1-based line.
std::map<std::size_t, std::set<std::string>> CollectAllows(
    const ScrubbedFile& scrubbed);

}  // namespace atlas::lint
