// SARIF 2.1.0 emission for atlas-lint findings, for GitHub code-scanning
// upload. The output is a pure, byte-stable function of the finding list:
// no timestamps, no absolute paths, fixed field order.
#pragma once

#include <string>
#include <vector>

#include "atlas_lint/diagnostics.h"

namespace atlas::lint {

// The tool version stamped into the SARIF run (kept explicit so the
// golden-file test never drifts with unrelated changes).
inline constexpr const char* kLintVersion = "2.0.0";

// Serializes findings (already sorted) as a SARIF 2.1.0 log with one run.
// Every rule in the catalog is listed under tool.driver.rules; results
// reference rules by id + index.
std::string ToSarif(const std::vector<Finding>& findings);

}  // namespace atlas::lint
