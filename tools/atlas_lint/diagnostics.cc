#include "atlas_lint/diagnostics.h"

#include <algorithm>
#include <tuple>

#include "atlas_lint/index.h"

namespace atlas::lint {

bool FindingBefore(const Finding& a, const Finding& b) {
  return std::tie(a.file, a.line, a.col, a.rule) <
         std::tie(b.file, b.line, b.col, b.rule);
}

std::string FormatFinding(const Finding& f) {
  std::string out = f.file + ":" + std::to_string(f.line);
  if (f.col > 0) out += ":" + std::to_string(f.col);
  out += ": [" + f.rule + "] " + f.message;
  return out;
}

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo> kRules = {
      {"ckpt-unversioned-blob",
       "SaveState implementations must serialize through ckpt::Writer's "
       "typed, versioned section API, never raw stream writes"},
      {"fp-accumulation-order",
       "floating-point +=/-= reductions inside ParallelFor/ForEach lambdas "
       "depend on evaluation order and threaten golden-digest determinism"},
      {"layer-dag",
       "includes must follow the architectural DAG util -> {stats, trace} "
       "-> synth -> {cdn, cluster} -> {analysis, energy} -> ckpt"},
      {"lock-order",
       "the global lock-acquisition-order graph must stay acyclic; a cycle "
       "is a potential deadlock"},
      {"missing-pragma-once", "every header starts with #pragma once"},
      {"mutex-unannotated",
       "every Mutex must guard something via ATLAS_GUARDED_BY/REQUIRES"},
      {"narrow-byte-counter",
       "byte/size counters in cdn/analysis must be 64-bit unsigned"},
      {"nondet-rand", "rand()/srand() are banned; use util::Rng"},
      {"nondet-random-device",
       "std::random_device is nondeterministic; seed util::Rng explicitly"},
      {"nondet-system-clock",
       "wall-clock reads are banned in library code outside util/time"},
      {"nondet-time", "wall-clock time() is banned in library code"},
      {"perrecord-in-hotpath",
       "hot analysis/cdn layers stream SoA RecordBlocks, not per-record "
       "NextRecord()/PushRecord() adapter calls"},
      {"raw-new-delete",
       "no raw new/delete; use containers or std::unique_ptr"},
      {"raw-std-mutex",
       "raw std synchronization types are invisible to -Wthread-safety; "
       "use util::Mutex/MutexLock/CondVar"},
      {"stale-baseline",
       "a .lint-baseline entry no longer matches any live finding; "
       "regenerate the baseline with --write-baseline"},
      {"tracebuffer-in-cdn",
       "the simulator streams through trace::RecordSink; no materialized "
       "TraceBuffer members/returns in src/cdn/"},
      {"unchecked-index-cast",
       "static_cast<uint32_t> in the synth layer wraps silently; use "
       "util::CheckedIndexU32"},
      {"unguarded-parallel-write",
       "a mutable field written inside a parallel-region lambda needs "
       "ATLAS_GUARDED_BY, an atomic type, or a justified allow"},
      {"unordered-iter",
       "accumulating over unordered-container iteration order must be "
       "proven order-insensitive and annotated"},
      {"unused-suppression",
       "an atlas-lint allow() pragma that no longer suppresses anything is "
       "stale and must be deleted"},
  };
  return kRules;
}

std::vector<std::string> RuleNames() {
  std::vector<std::string> names;
  names.reserve(Rules().size());
  for (const RuleInfo& r : Rules()) names.emplace_back(r.name);
  return names;
}

bool IsKnownRule(const std::string& rule) {
  for (const RuleInfo& r : Rules()) {
    if (rule == r.name) return true;
  }
  return false;
}

std::size_t Sink::AllowLineFor(std::size_t line,
                               const std::string& rule) const {
  const auto at = [&](std::size_t l) {
    const auto it = file_.allows.find(l);
    return it != file_.allows.end() && it->second.count(rule) > 0;
  };
  if (at(line)) return line;
  // A multi-line justification may carry the allow() on its first line:
  // walk up through the contiguous block of comment-only lines directly
  // above the finding.
  for (std::size_t l = line; l > 1;) {
    --l;
    if (l >= file_.scrubbed.code.size()) break;
    const bool comment_only =
        file_.scrubbed.code[l].find_first_not_of(" \t") ==
            std::string::npos &&
        !file_.scrubbed.comment[l].empty();
    if (!comment_only) break;
    if (at(l)) return l;
  }
  return 0;
}

void Sink::Report(std::size_t line, std::size_t col, const std::string& rule,
                  const std::string& message) {
  if (const std::size_t allow_line = AllowLineFor(line, rule)) {
    used_allows_.insert({allow_line, rule});
    return;
  }
  findings_.push_back({file_.path, line, col, rule, message});
}

}  // namespace atlas::lint
