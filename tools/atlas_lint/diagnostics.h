// atlas-lint diagnostics layer: findings with line/column spans, the rule
// catalog (id + summary, shared by --list-rules and SARIF rule metadata),
// and the suppression-tracking sink every rule reports through.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace atlas::lint {

struct Finding {
  std::string file;      // repo-relative path, '/'-separated
  std::size_t line = 0;  // 1-based
  std::size_t col = 0;   // 1-based; 0 when the rule has no column info
  std::string rule;
  std::string message;

  bool operator==(const Finding&) const = default;
};

// Sorts by (file, line, col, rule) — the canonical output order.
bool FindingBefore(const Finding& a, const Finding& b);

// "path:line:col: [rule] message" (col omitted when 0) — clickable form.
std::string FormatFinding(const Finding& f);

struct RuleInfo {
  const char* name;
  const char* summary;  // one line; becomes the SARIF shortDescription
};

// The full catalog, sorted by name. Includes the engine-level rules
// (unused-suppression, stale-baseline) alongside the analysis rules.
const std::vector<RuleInfo>& Rules();

// Catalog names, in catalog order.
std::vector<std::string> RuleNames();

bool IsKnownRule(const std::string& rule);

struct FileIndex;  // index.h

// Collects findings for one file, honoring per-line allow(rule) pragmas
// (same line, or in the contiguous comment block directly above)
// and recording which pragmas actually suppressed something — the
// unused-suppression rule consumes that record.
class Sink {
 public:
  explicit Sink(const FileIndex& file) : file_(file) {}

  void Report(std::size_t line, std::size_t col, const std::string& rule,
              const std::string& message);

  const std::vector<Finding>& findings() const { return findings_; }
  // (allow line, rule) pairs that suppressed at least one finding.
  const std::set<std::pair<std::size_t, std::string>>& used_allows() const {
    return used_allows_;
  }

 private:
  // Returns the line of the allow pragma covering (line, rule), or 0.
  std::size_t AllowLineFor(std::size_t line, const std::string& rule) const;

  const FileIndex& file_;
  std::vector<Finding> findings_;
  std::set<std::pair<std::size_t, std::string>> used_allows_;
};

}  // namespace atlas::lint
