#include "atlas_lint/lint.h"

#include <algorithm>
#include <chrono>

#include "atlas_lint/index.h"
#include "atlas_lint/rules_file.h"
#include "atlas_lint/rules_project.h"
#include "util/par.h"

namespace atlas::lint {
namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::vector<Finding> RunRules(const ProjectIndex& index, int threads) {
  std::vector<Sink> sinks;
  sinks.reserve(index.files.size());
  for (const FileIndex& f : index.files) sinks.emplace_back(f);
  // Per-file rules are independent; fan out. Each shard writes only its
  // own sink, so the result is a pure function of the file list.
  util::ParallelFor(
      index.files.size(),
      [&](std::size_t i) { RunFileRules(index.files[i], sinks[i]); },
      threads);
  // Cross-TU rules run sequentially over the whole index (they are cheap
  // relative to phase 1 and need global state: the include graph, the
  // lock-order graph, the suppression-usage record).
  RunProjectRules(index, sinks);
  std::vector<Finding> findings;
  for (const Sink& sink : sinks) {
    findings.insert(findings.end(), sink.findings().begin(),
                    sink.findings().end());
  }
  std::sort(findings.begin(), findings.end(), FindingBefore);
  return findings;
}

}  // namespace

ProjectReport LintIndexedProject(const ProjectIndex& index) {
  ProjectReport report;
  report.files_indexed = index.files.size();
  const auto start = std::chrono::steady_clock::now();
  report.findings = RunRules(index, 1);
  report.rules_ms = MsSince(start);
  return report;
}

ProjectReport LintProject(const std::string& root, int threads) {
  ProjectReport report;
  report.threads = util::ResolveThreads(threads);
  const auto t0 = std::chrono::steady_clock::now();
  const ProjectIndex index = BuildProjectIndex(root, threads);
  report.index_ms = MsSince(t0);
  report.files_indexed = index.files.size();
  const auto t1 = std::chrono::steady_clock::now();
  report.findings = RunRules(index, threads);
  report.rules_ms = MsSince(t1);
  return report;
}

std::vector<Finding> LintFile(const std::string& path,
                              const std::string& content,
                              const std::string& decl_context) {
  ProjectIndex index;
  index.files.push_back(BuildFileIndex(path, content, decl_context));
  index.by_path.emplace(path, 0);
  std::vector<Sink> sinks;
  sinks.emplace_back(index.files[0]);
  RunFileRules(index.files[0], sinks[0]);
  RunProjectRules(index, sinks);
  std::vector<Finding> findings = sinks[0].findings();
  std::sort(findings.begin(), findings.end(), FindingBefore);
  return findings;
}

std::vector<Finding> LintTree(const std::string& root) {
  return LintProject(root).findings;
}

}  // namespace atlas::lint
