#include "atlas_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

namespace atlas::lint {
namespace {

// ---------------------------------------------------------------------------
// Lexing: split a file into per-line "code" (comments and string/char
// literal bodies blanked out with spaces, so token regexes never match
// inside them) and per-line comment text (where allow() pragmas live).
// ---------------------------------------------------------------------------

struct ScrubbedFile {
  std::vector<std::string> code;      // [0] unused; lines are 1-based
  std::vector<std::string> comment;   // comment text per line
};

ScrubbedFile Scrub(const std::string& content) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar,
                     kRawString };
  ScrubbedFile out;
  out.code.emplace_back();
  out.comment.emplace_back();
  std::string code_line, comment_line;
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  const std::size_t n = content.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = content[i];
    const char next = i + 1 < n ? content[i + 1] : '\0';
    if (c == '\n') {
      out.code.push_back(code_line);
      out.comment.push_back(comment_line);
      code_line.clear();
      comment_line.clear();
      if (state == State::kLineComment) state = State::kCode;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          code_line += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          code_line += "  ";
          ++i;
        } else if (c == '"' && i > 0 && content[i - 1] == 'R') {
          // Raw string literal: R"delim( ... )delim"
          state = State::kRawString;
          raw_delim.clear();
          code_line += '"';
          for (++i; i < n && content[i] != '('; ++i) raw_delim += content[i];
          // leave i at '('; the loop's ++i moves past it
        } else if (c == '"') {
          state = State::kString;
          code_line += '"';
        } else if (c == '\'') {
          state = State::kChar;
          code_line += '\'';
        } else {
          code_line += c;
        }
        break;
      case State::kLineComment:
        comment_line += c;
        code_line += ' ';
        break;
      case State::kBlockComment:
        comment_line += c;
        code_line += ' ';
        if (c == '*' && next == '/') {
          state = State::kCode;
          code_line += ' ';
          comment_line += '/';
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\') {
          code_line += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          code_line += '"';
        } else {
          code_line += ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          code_line += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          code_line += '\'';
        } else {
          code_line += ' ';
        }
        break;
      case State::kRawString: {
        const std::string close = ")" + raw_delim + "\"";
        if (content.compare(i, close.size(), close) == 0) {
          state = State::kCode;
          code_line += '"';
          i += close.size() - 1;
        } else {
          code_line += ' ';
        }
        break;
      }
    }
  }
  out.code.push_back(code_line);
  out.comment.push_back(comment_line);
  return out;
}

// Parses "atlas-lint: allow(rule-a, rule-b)" pragmas out of comment text.
std::set<std::string> ParseAllows(const std::string& comment) {
  std::set<std::string> allowed;
  static const std::string kTag = "atlas-lint: allow(";
  std::size_t pos = comment.find(kTag);
  while (pos != std::string::npos) {
    const std::size_t open = pos + kTag.size();
    const std::size_t close = comment.find(')', open);
    if (close == std::string::npos) break;
    std::stringstream list(comment.substr(open, close - open));
    std::string rule;
    while (std::getline(list, rule, ',')) {
      const auto b = rule.find_first_not_of(" \t");
      const auto e = rule.find_last_not_of(" \t");
      if (b != std::string::npos) allowed.insert(rule.substr(b, e - b + 1));
    }
    pos = comment.find(kTag, close);
  }
  return allowed;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsHeader(const std::string& path) {
  return EndsWith(path, ".h") || EndsWith(path, ".hpp");
}

bool InLibrary(const std::string& path) { return StartsWith(path, "src/"); }

bool InLibraryOrTools(const std::string& path) {
  return StartsWith(path, "src/") || StartsWith(path, "tools/");
}

// ---------------------------------------------------------------------------
// Rule context and helpers.
// ---------------------------------------------------------------------------

class FileLinter {
 public:
  FileLinter(const std::string& path, const std::string& content,
             const std::string& decl_context)
      : path_(path), scrubbed_(Scrub(content)) {
    for (std::size_t i = 1; i < scrubbed_.comment.size(); ++i) {
      auto allows = ParseAllows(scrubbed_.comment[i]);
      if (!allows.empty()) allows_[i] = std::move(allows);
    }
    // Flattened code view for multi-line constructs (range-fors, template
    // declarations). Newlines become spaces; line_of_ maps positions back.
    for (std::size_t i = 1; i < scrubbed_.code.size(); ++i) {
      for (char c : scrubbed_.code[i]) {
        flat_ += c;
        line_of_.push_back(i);
      }
      flat_ += ' ';
      line_of_.push_back(i);
    }
    if (!decl_context.empty()) {
      const ScrubbedFile ctx = Scrub(decl_context);
      for (const std::string& line : ctx.code) {
        decl_flat_ += line;
        decl_flat_ += ' ';
      }
    }
  }

  std::vector<Finding> Run();

 private:
  bool AllowedAt(std::size_t line, const std::string& rule) const {
    auto it = allows_.find(line);
    return it != allows_.end() && it->second.count(rule) > 0;
  }

  bool Allowed(std::size_t line, const std::string& rule) const {
    if (AllowedAt(line, rule)) return true;
    // A multi-line justification may carry the allow() on its first line:
    // walk up through the contiguous block of comment-only lines directly
    // above the finding.
    for (std::size_t l = line; l > 1;) {
      --l;
      if (l >= scrubbed_.code.size()) break;
      const bool comment_only =
          scrubbed_.code[l].find_first_not_of(" \t") == std::string::npos &&
          !scrubbed_.comment[l].empty();
      if (!comment_only) break;
      if (AllowedAt(l, rule)) return true;
    }
    return false;
  }

  void Report(std::size_t line, const std::string& rule,
              const std::string& message) {
    if (Allowed(line, rule)) return;
    findings_.push_back({path_, line, rule, message});
  }

  // Applies `re` to every code line, reporting `rule` on match.
  void ForbidPattern(const std::regex& re, const std::string& rule,
                     const std::string& message) {
    for (std::size_t i = 1; i < scrubbed_.code.size(); ++i) {
      if (std::regex_search(scrubbed_.code[i], re)) Report(i, rule, message);
    }
  }

  void CheckNondeterminism();
  void CheckRawNewDelete();
  void CheckNarrowByteCounter();
  void CheckRawStdMutex();
  void CheckMutexAnnotations();
  void CheckPragmaOnce();
  void CheckUnorderedIteration();
  void CheckUncheckedIndexCast();
  void CheckTraceBufferInCdn();
  void CheckPerRecordInHotPath();
  void CheckCkptUnversionedBlob();

  std::string path_;
  ScrubbedFile scrubbed_;
  std::map<std::size_t, std::set<std::string>> allows_;
  std::string flat_;
  std::string decl_flat_;  // sibling-header code, declarations only
  std::vector<std::size_t> line_of_;
  std::vector<Finding> findings_;
};

void FileLinter::CheckNondeterminism() {
  if (!InLibrary(path_)) return;
  static const std::regex kRandomDevice(R"(\brandom_device\b)");
  static const std::regex kRand(R"((^|[^\w:.>])s?rand\s*\()");
  static const std::regex kTime(R"(\btime\s*\(\s*(nullptr|NULL|0)\s*\))");
  static const std::regex kSystemClock(R"(\bsystem_clock\b)");
  ForbidPattern(kRandomDevice, "nondet-random-device",
                "std::random_device is nondeterministic; seed util::Rng / "
                "util::ShardedRng from an explicit seed");
  ForbidPattern(kRand, "nondet-rand",
                "rand()/srand() are banned; use util::Rng");
  ForbidPattern(kTime, "nondet-time",
                "wall-clock time() is banned in library code; timestamps "
                "come from the trace");
  if (path_ != "src/util/time.h" && path_ != "src/util/time.cc") {
    ForbidPattern(kSystemClock, "nondet-system-clock",
                  "std::chrono::system_clock is banned outside util/time; "
                  "library results must not depend on wall-clock reads");
  }
}

void FileLinter::CheckRawNewDelete() {
  if (!InLibraryOrTools(path_)) return;
  static const std::regex kNew(R"(\bnew\b)");
  static const std::regex kDelete(R"(\bdelete\b)");
  for (std::size_t i = 1; i < scrubbed_.code.size(); ++i) {
    const std::string& line = scrubbed_.code[i];
    if (std::regex_search(line, kNew)) {
      Report(i, "raw-new-delete",
             "raw new is banned; use std::make_unique or a container");
    }
    std::smatch m;
    if (std::regex_search(line, m, kDelete)) {
      // `= delete` (deleted special members) is fine. The '=' may sit at
      // the end of the previous line.
      std::string before =
          line.substr(0, static_cast<std::size_t>(m.position(0)));
      if (before.find_last_not_of(" \t") == std::string::npos && i > 1) {
        before = scrubbed_.code[i - 1];
      }
      const std::size_t last_pos = before.find_last_not_of(" \t");
      const char last =
          last_pos == std::string::npos ? '\0' : before[last_pos];
      if (last != '=') {
        Report(i, "raw-new-delete",
               "raw delete is banned; use std::unique_ptr or a container");
      }
    }
  }
}

void FileLinter::CheckNarrowByteCounter() {
  if (!StartsWith(path_, "src/cdn/") && !StartsWith(path_, "src/analysis/")) {
    return;
  }
  // Narrow or signed arithmetic types followed by an identifier whose name
  // says it holds bytes or a size. 64-bit unsigned types (std::uint64_t,
  // std::size_t, unsigned long long) pass.
  static const std::regex kNarrowDecl(
      R"re((?:^|[^\w:])()re"
      R"re(unsigned\s+short|unsigned\s+char|unsigned\s+int|unsigned|signed|)re"
      R"re(short|long\s+long|long|int|)re"
      R"re((?:std::)?u?int(?:8|16|32)_t)re"
      R"re()\s+(?:const\s+)?([A-Za-z_]\w*)\s*(?=[;,=){\[]))re");
  static const std::regex kCounterName(R"([Bb]ytes|[Ss]ize)");
  for (std::size_t i = 1; i < scrubbed_.code.size(); ++i) {
    const std::string& line = scrubbed_.code[i];
    auto begin = std::sregex_iterator(line.begin(), line.end(), kNarrowDecl);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      const std::string type = (*it)[1].str();
      const std::string name = (*it)[2].str();
      // `unsigned long` / `unsigned long long` are 64-bit unsigned on LP64;
      // the regex can match their trailing `long (long)` alone, so check
      // the word right before the matched type.
      static const std::regex kUnsignedTail(R"(\bunsigned\s*$)");
      const std::string prefix =
          line.substr(0, static_cast<std::size_t>(it->position(1)));
      if (std::regex_search(prefix, kUnsignedTail)) continue;
      if (std::regex_search(name, kCounterName)) {
        Report(i, "narrow-byte-counter",
               "byte/size counter '" + name + "' declared as '" + type +
                   "'; byte accounting must use std::uint64_t (or "
                   "std::size_t for in-memory sizes)");
      }
    }
  }
}

void FileLinter::CheckRawStdMutex() {
  if (!InLibraryOrTools(path_)) return;
  if (path_ == "src/util/mutex.h") return;
  static const std::regex kStdSync(
      R"(std::(mutex|shared_mutex|recursive_mutex|timed_mutex|)"
      R"(condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock)\b)");
  ForbidPattern(kStdSync, "raw-std-mutex",
                "raw std synchronization types are invisible to Clang "
                "-Wthread-safety; use util::Mutex / util::MutexLock / "
                "util::CondVar from util/mutex.h");
}

void FileLinter::CheckMutexAnnotations() {
  if (!InLibraryOrTools(path_)) return;
  if (path_ == "src/util/mutex.h") return;
  // A Mutex declaration (member or namespace-scope). `MutexLock lock(...)`
  // does not match: \b requires the token to be exactly `Mutex`.
  static const std::regex kMutexDecl(R"(\bMutex\s+([A-Za-z_]\w*)\s*[;={])");
  for (std::size_t i = 1; i < scrubbed_.code.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(scrubbed_.code[i], m, kMutexDecl)) continue;
    const std::string name = m[1].str();
    const std::regex annotated(
        R"(ATLAS_(GUARDED_BY|PT_GUARDED_BY|REQUIRES|ACQUIRE|RELEASE|)"
        R"(EXCLUDES)\s*\([^)]*\b)" +
        name + R"(\b[^)]*\))");
    if (!std::regex_search(flat_, annotated)) {
      Report(i, "mutex-unannotated",
             "Mutex '" + name +
                 "' guards nothing: annotate the state it protects with "
                 "ATLAS_GUARDED_BY(" +
                 name + ") (see util/thread_annotations.h)");
    }
  }
}

void FileLinter::CheckPragmaOnce() {
  if (!IsHeader(path_)) return;
  static const std::regex kPragmaOnce(R"(^\s*#\s*pragma\s+once\b)");
  for (std::size_t i = 1; i < scrubbed_.code.size(); ++i) {
    if (std::regex_search(scrubbed_.code[i], kPragmaOnce)) return;
  }
  Report(1, "missing-pragma-once", "header is missing #pragma once");
}

void FileLinter::CheckUncheckedIndexCast() {
  // Population sizes in src/synth/ are validated against the uint32 index
  // range, but intermediate products (shard offsets, scaled counts, sampled
  // indices) are 64-bit: a silent static_cast<uint32_t> truncates exactly
  // when a scale-up makes it matter. util::CheckedIndexU32 (util/checked.h)
  // is the loud equivalent.
  if (!StartsWith(path_, "src/synth/")) return;
  static const std::regex kNarrowCast(
      R"(static_cast<\s*(?:std::)?uint32_t\s*>)");
  ForbidPattern(kNarrowCast, "unchecked-index-cast",
                "silent narrowing cast to uint32_t in the synth layer; use "
                "util::CheckedIndexU32 (util/checked.h) so an over-scaled "
                "population throws instead of wrapping");
}

void FileLinter::CheckTraceBufferInCdn() {
  if (!StartsWith(path_, "src/cdn/")) return;
  // A TraceBuffer declaration (member, local, global) or by-value return
  // type in the simulator materializes a whole trace in RAM — the sharded
  // engine's contract is that records stream through trace::RecordSink.
  // References and pointers (read-only views of caller-owned buffers) are
  // fine and do not match.
  static const std::regex kDeclOrReturn(
      R"(\bTraceBuffer\s+[A-Za-z_][A-Za-z0-9_:]*\s*[;={(])");
  ForbidPattern(kDeclOrReturn, "tracebuffer-in-cdn",
                "trace::TraceBuffer members/returns are banned in src/cdn/; "
                "emit records through trace::RecordSink (trace/sink.h) "
                "instead of materializing a buffer");
}

void FileLinter::CheckUnorderedIteration() {
  if (!InLibrary(path_)) return;
  // Pass 1: names declared with an unordered container type anywhere in
  // this file or its sibling header (members, locals, globals).
  std::set<std::string> unordered_names;
  static const std::regex kUnorderedType(
      R"(std::unordered_(map|set|multimap|multiset)\s*<)");
  for (const std::string* source : {&flat_, &decl_flat_}) {
    const std::string& text = *source;
    for (auto it = std::sregex_iterator(text.begin(), text.end(),
                                        kUnorderedType);
         it != std::sregex_iterator(); ++it) {
      // Balance the template angle brackets, then read the declared name.
      std::size_t pos = static_cast<std::size_t>(it->position(0)) +
                        static_cast<std::size_t>(it->length(0));
      int depth = 1;
      while (pos < text.size() && depth > 0) {
        if (text[pos] == '<') ++depth;
        if (text[pos] == '>') --depth;
        ++pos;
      }
      while (pos < text.size() &&
             (std::isspace(static_cast<unsigned char>(text[pos])) != 0 ||
              text[pos] == '&' || text[pos] == '*')) {
        ++pos;
      }
      if (text.compare(pos, 6, "const ") == 0) pos += 6;
      std::string name;
      while (pos < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[pos])) != 0 ||
              text[pos] == '_')) {
        name += text[pos++];
      }
      while (pos < text.size() &&
             std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
        ++pos;
      }
      // `std::unordered_map<...> Foo(` is a function decl, not state.
      if (!name.empty() && (pos >= text.size() || text[pos] != '(')) {
        unordered_names.insert(name);
      }
    }
  }
  if (unordered_names.empty()) return;

  // Pass 2: range-based for loops whose range resolves to one of those
  // names and whose body accumulates.
  static const std::regex kFor(R"(\bfor\s*\()");
  for (auto it = std::sregex_iterator(flat_.begin(), flat_.end(), kFor);
       it != std::sregex_iterator(); ++it) {
    std::size_t pos = static_cast<std::size_t>(it->position(0)) +
                      it->length(0);
    const std::size_t for_line =
        line_of_[static_cast<std::size_t>(it->position(0))];
    // Find the range-for ':' at paren depth 1 (skipping '::').
    int depth = 1;
    std::size_t colon = std::string::npos;
    std::size_t close = std::string::npos;
    for (std::size_t p = pos; p < flat_.size(); ++p) {
      const char c = flat_[p];
      if (c == '(') ++depth;
      if (c == ')') {
        --depth;
        if (depth == 0) {
          close = p;
          break;
        }
      }
      if (c == ';') break;  // classic for loop
      if (c == ':' && depth == 1 && colon == std::string::npos &&
          (p + 1 >= flat_.size() || flat_[p + 1] != ':') &&
          (p == 0 || flat_[p - 1] != ':')) {
        colon = p;
      }
    }
    if (colon == std::string::npos || close == std::string::npos) continue;
    std::string range = flat_.substr(colon + 1, close - colon - 1);
    range.erase(std::remove_if(range.begin(), range.end(),
                               [](unsigned char c) {
                                 return std::isspace(c) != 0;
                               }),
                range.end());
    if (range.empty() || range.back() == ')') continue;  // call expression
    // Last component of a member/scope chain.
    const std::size_t cut = range.find_last_of(".>:");
    const std::string base =
        cut == std::string::npos ? range : range.substr(cut + 1);
    if (unordered_names.count(base) == 0) continue;
    // Loop body: braces (or single statement) after the closing paren.
    std::size_t body_begin = close + 1;
    while (body_begin < flat_.size() &&
           std::isspace(static_cast<unsigned char>(flat_[body_begin])) != 0) {
      ++body_begin;
    }
    std::size_t body_end = body_begin;
    if (body_begin < flat_.size() && flat_[body_begin] == '{') {
      int braces = 1;
      for (body_end = body_begin + 1;
           body_end < flat_.size() && braces > 0; ++body_end) {
        if (flat_[body_end] == '{') ++braces;
        if (flat_[body_end] == '}') --braces;
      }
    } else {
      body_end = flat_.find(';', body_begin);
      if (body_end == std::string::npos) body_end = flat_.size();
    }
    const std::string body = flat_.substr(body_begin, body_end - body_begin);
    static const std::regex kAccumulate(
        R"(\+=|\bpush_back\s*\(|\bemplace_back\s*\()");
    if (std::regex_search(body, kAccumulate)) {
      Report(for_line, "unordered-iter",
             "iteration over unordered container '" + base +
                 "' accumulates in implementation-defined order; sort the "
                 "keys first or prove order-insensitivity and annotate "
                 "with // atlas-lint: allow(unordered-iter)");
    }
  }
}

void FileLinter::CheckPerRecordInHotPath() {
  if (!StartsWith(path_, "src/analysis/") && !StartsWith(path_, "src/cdn/")) {
    return;
  }
  // A member call on the one-record-at-a-time adapters from trace/block.h.
  // Requiring `.` or `->` before the name keeps declarations and free
  // functions that merely share the name out of scope; matching on the
  // flattened view catches calls split across lines.
  static const std::regex kPerRecordCall(
      R"((\.|->)\s*(NextRecord|PushRecord)\s*\()");
  for (auto it =
           std::sregex_iterator(flat_.begin(), flat_.end(), kPerRecordCall);
       it != std::sregex_iterator(); ++it) {
    const std::size_t at = static_cast<std::size_t>(it->position(2));
    Report(line_of_[at], "perrecord-in-hotpath",
           "per-record adapter call '" + (*it)[2].str() +
               "()' in a hot-path layer; stream whole SoA RecordBlocks "
               "(BlockSource::NextBlock / BlockSink::WriteBlock, "
               "trace/block.h) — compatibility shims annotate with "
               "// atlas-lint: allow(perrecord-in-hotpath)");
  }
}

void FileLinter::CheckCkptUnversionedBlob() {
  if (!InLibrary(path_)) return;
  // The codec itself is the one place allowed to touch raw bytes.
  if (StartsWith(path_, "src/ckpt/")) return;
  // A SaveState-family *definition*: match the name, balance the parameter
  // list, then skip trailing specifiers (const/final/override/noexcept) to
  // the body '{'. Declarations and call sites end in ';', ',' or ')' and
  // are skipped. Raw stream writes inside the body bypass the Writer's
  // CRC-stamped, versioned section framing — a checkpoint written that way
  // restores wrong-but-plausible after any layout change.
  static const std::regex kSaveFn(R"(\bSave\w*State\s*\()");
  static const std::regex kRawWrite(
      R"((\.|->)\s*write\s*\(|\bfwrite\s*\()");
  for (auto it = std::sregex_iterator(flat_.begin(), flat_.end(), kSaveFn);
       it != std::sregex_iterator(); ++it) {
    std::size_t pos = static_cast<std::size_t>(it->position(0)) +
                      static_cast<std::size_t>(it->length(0));
    int depth = 1;
    while (pos < flat_.size() && depth > 0) {
      if (flat_[pos] == '(') ++depth;
      if (flat_[pos] == ')') --depth;
      ++pos;
    }
    while (pos < flat_.size() && flat_[pos] != '{' && flat_[pos] != ';' &&
           flat_[pos] != '=' && flat_[pos] != ',' && flat_[pos] != ')') {
      ++pos;
    }
    if (pos >= flat_.size() || flat_[pos] != '{') continue;
    const std::size_t body_begin = pos + 1;
    int braces = 1;
    std::size_t body_end = body_begin;
    while (body_end < flat_.size() && braces > 0) {
      if (flat_[body_end] == '{') ++braces;
      if (flat_[body_end] == '}') --braces;
      ++body_end;
    }
    const std::string body = flat_.substr(body_begin, body_end - body_begin);
    for (auto w = std::sregex_iterator(body.begin(), body.end(), kRawWrite);
         w != std::sregex_iterator(); ++w) {
      const std::size_t at =
          body_begin + static_cast<std::size_t>(w->position(0));
      Report(line_of_[at], "ckpt-unversioned-blob",
             "raw stream write inside a SaveState implementation; checkpoint "
             "blobs must go through ckpt::Writer's typed, versioned section "
             "API (see ckpt/checkpoint.h)");
    }
  }
}

std::vector<Finding> FileLinter::Run() {
  CheckNondeterminism();
  CheckRawNewDelete();
  CheckNarrowByteCounter();
  CheckRawStdMutex();
  CheckMutexAnnotations();
  CheckPragmaOnce();
  CheckUnorderedIteration();
  CheckUncheckedIndexCast();
  CheckTraceBufferInCdn();
  CheckPerRecordInHotPath();
  CheckCkptUnversionedBlob();
  std::sort(findings_.begin(), findings_.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return std::move(findings_);
}

}  // namespace

std::vector<Finding> LintFile(const std::string& path,
                              const std::string& content,
                              const std::string& decl_context) {
  return FileLinter(path, content, decl_context).Run();
}

std::vector<Finding> LintTree(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const char* top : {"src", "tools"}) {
    const fs::path dir = fs::path(root) / top;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".hpp" && ext != ".cc" && ext != ".cpp") {
        continue;
      }
      files.push_back(
          fs::relative(entry.path(), root).generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  const auto slurp = [](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  std::vector<Finding> findings;
  for (const std::string& rel : files) {
    std::string context;
    if (EndsWith(rel, ".cc") || EndsWith(rel, ".cpp")) {
      const fs::path header =
          fs::path(root) / fs::path(rel).replace_extension(".h");
      if (fs::exists(header)) context = slurp(header);
    }
    auto file_findings = LintFile(rel, slurp(fs::path(root) / rel), context);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }
  return findings;
}

std::vector<std::string> RuleNames() {
  return {"nondet-random-device", "nondet-rand", "nondet-time",
          "nondet-system-clock", "raw-new-delete", "narrow-byte-counter",
          "raw-std-mutex", "mutex-unannotated", "missing-pragma-once",
          "unordered-iter", "unchecked-index-cast", "tracebuffer-in-cdn",
          "perrecord-in-hotpath", "ckpt-unversioned-blob"};
}

std::string FormatFinding(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
         f.message;
}

}  // namespace atlas::lint
