// atlas-lint CLI.
//
//   atlas-lint --root <repo>            lint src/, tools/ and bench/
//   atlas-lint --baseline <file>        freeze pre-existing findings: only
//                                       findings beyond the baseline (or
//                                       stale baseline entries) fail
//   atlas-lint --write-baseline <file>  snapshot current findings
//   atlas-lint --sarif <file>           emit SARIF 2.1.0 (code scanning)
//   atlas-lint --threads <n>            index/rule fan-out (0 = hardware)
//   atlas-lint --list-rules             print the rule catalog
//
// Exit status: 0 clean, 1 findings, 2 usage/IO error. Wired into ctest as
// the `lint` label: `ctest -L lint`.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "atlas_lint/lint.h"

namespace {

int Usage() {
  std::cerr << "usage: atlas-lint [--root <repo>] [--baseline <file>]\n"
               "                  [--write-baseline <file>] [--sarif <file>]\n"
               "                  [--threads <n>] [--list-rules]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string baseline_path;
  std::string write_baseline_path;
  std::string sarif_path;
  int threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& rule : atlas::lint::Rules()) {
        std::cout << rule.name << "  " << rule.summary << '\n';
      }
      return 0;
    }
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--write-baseline" && i + 1 < argc) {
      write_baseline_path = argv[++i];
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::stoi(argv[++i]);
    } else {
      return Usage();
    }
  }

  const atlas::lint::ProjectReport report =
      atlas::lint::LintProject(root, threads);
  std::cerr << "atlas-lint: indexed " << report.files_indexed << " files in "
            << report.index_ms << " ms; rules in " << report.rules_ms
            << " ms (" << report.threads << " threads)\n";

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary);
    out << atlas::lint::SerializeBaseline(report.findings);
    if (!out) {
      std::cerr << "atlas-lint: cannot write " << write_baseline_path << '\n';
      return 2;
    }
    std::cerr << "atlas-lint: baseline with " << report.findings.size()
              << " finding(s) written to " << write_baseline_path << '\n';
    return 0;
  }

  // The failing set: everything, or — with a baseline — only findings
  // beyond the frozen counts plus stale baseline entries.
  std::vector<atlas::lint::Finding> failures = report.findings;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    if (!in) {
      std::cerr << "atlas-lint: cannot read baseline " << baseline_path
                << '\n';
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::vector<std::string> errors;
    const atlas::lint::Baseline baseline =
        atlas::lint::ParseBaseline(buf.str(), &errors);
    for (const std::string& e : errors) std::cerr << "atlas-lint: " << e
                                                  << '\n';
    if (!errors.empty()) return 2;
    auto result = atlas::lint::ApplyBaseline(report.findings, baseline);
    const std::size_t frozen = report.findings.size() - result.fresh.size();
    if (frozen > 0) {
      std::cerr << "atlas-lint: " << frozen
                << " finding(s) frozen by the baseline\n";
    }
    failures = std::move(result.fresh);
    failures.insert(failures.end(), result.stale.begin(),
                    result.stale.end());
    std::sort(failures.begin(), failures.end(), atlas::lint::FindingBefore);
  }

  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    out << atlas::lint::ToSarif(failures);
    if (!out) {
      std::cerr << "atlas-lint: cannot write " << sarif_path << '\n';
      return 2;
    }
  }

  for (const auto& f : failures) {
    std::cerr << atlas::lint::FormatFinding(f) << '\n';
  }
  if (!failures.empty()) {
    std::cerr << failures.size() << " atlas-lint finding(s)\n";
    return 1;
  }
  return 0;
}
