// atlas-lint CLI.
//
//   atlas-lint --root <repo>     lint src/ and tools/ under <repo>
//   atlas-lint --list-rules      print the rule catalog
//
// Exit status: 0 clean, 1 findings, 2 usage error. Wired into ctest as the
// `lint` label: `ctest -L lint`.
#include <iostream>
#include <string>

#include "atlas_lint/lint.h"

int main(int argc, char** argv) {
  std::string root = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& rule : atlas::lint::RuleNames()) {
        std::cout << rule << '\n';
      }
      return 0;
    }
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
      continue;
    }
    std::cerr << "usage: atlas-lint [--root <repo>] [--list-rules]\n";
    return 2;
  }
  const auto findings = atlas::lint::LintTree(root);
  for (const auto& f : findings) {
    std::cerr << atlas::lint::FormatFinding(f) << '\n';
  }
  if (!findings.empty()) {
    std::cerr << findings.size() << " atlas-lint finding(s)\n";
    return 1;
  }
  return 0;
}
