// .lint-baseline support: freeze pre-existing violations so that only
// *new* findings fail the build, while the frozen debt stays visible and
// ratchets down.
//
// Format (one entry per line, sorted, '#' comments allowed):
//
//   <file> <rule> <count>
//
// Counts — not line numbers — key the entries, so unrelated edits that
// shift a frozen finding up or down a few lines do not invalidate the
// baseline. ApplyBaseline splits live findings into:
//   fresh  findings beyond the baselined count for their (file, rule) —
//          these fail the build;
//   stale  synthetic stale-baseline findings for entries whose count
//          exceeds the live findings — the debt shrank, so the baseline
//          must be regenerated (the ratchet only ever tightens).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "atlas_lint/diagnostics.h"

namespace atlas::lint {

struct Baseline {
  // (file, rule) -> frozen finding count.
  std::map<std::pair<std::string, std::string>, std::size_t> counts;
};

// Parses baseline text. Malformed lines are reported into `errors`.
Baseline ParseBaseline(const std::string& text,
                       std::vector<std::string>* errors = nullptr);

// Serializes findings as baseline text (sorted, stable).
std::string SerializeBaseline(const std::vector<Finding>& findings);

struct BaselineResult {
  std::vector<Finding> fresh;  // beyond the baseline: new violations
  std::vector<Finding> stale;  // stale-baseline entries: over-frozen debt
};

// `findings` must be sorted (FindingBefore). When a (file, rule) bucket
// exceeds its baselined count, the *last* findings in the bucket are
// reported fresh — deterministic, and biased toward the bottom of the
// file where fresh code usually lands.
BaselineResult ApplyBaseline(const std::vector<Finding>& findings,
                             const Baseline& baseline);

}  // namespace atlas::lint
