#include "atlas_lint/sarif.h"

#include <cstddef>
#include <map>

namespace atlas::lint {
namespace {

// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string ToSarif(const std::vector<Finding>& findings) {
  std::map<std::string, std::size_t> rule_index;
  std::string rules;
  const auto& catalog = Rules();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    rule_index[catalog[i].name] = i;
    if (i > 0) rules += ",";
    rules += "{\"id\":\"" + JsonEscape(catalog[i].name) +
             "\",\"shortDescription\":{\"text\":\"" +
             JsonEscape(catalog[i].summary) +
             "\"},\"defaultConfiguration\":{\"level\":\"error\"}}";
  }
  std::string results;
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i > 0) results += ",";
    results += "{\"ruleId\":\"" + JsonEscape(f.rule) + "\"";
    const auto idx = rule_index.find(f.rule);
    if (idx != rule_index.end()) {
      results += ",\"ruleIndex\":" + std::to_string(idx->second);
    }
    results +=
        ",\"level\":\"error\",\"message\":{\"text\":\"" +
        JsonEscape(f.message) +
        "\"},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":"
        "{\"uri\":\"" +
        JsonEscape(f.file) +
        "\",\"uriBaseId\":\"SRCROOT\"},\"region\":{\"startLine\":" +
        std::to_string(f.line > 0 ? f.line : 1) +
        ",\"startColumn\":" + std::to_string(f.col > 0 ? f.col : 1) +
        "}}}]}";
  }
  std::string out;
  out +=
      "{\"$schema\":"
      "\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
      "Schemata/sarif-schema-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{"
      "\"tool\":{\"driver\":{\"name\":\"atlas-lint\",\"version\":\"";
  out += kLintVersion;
  out +=
      "\",\"informationUri\":"
      "\"https://example.invalid/atlas/tools/atlas_lint\",\"rules\":[";
  out += rules;
  out += "]}},\"columnKind\":\"utf16CodeUnits\",\"results\":[";
  out += results;
  out += "]}]}\n";
  return out;
}

}  // namespace atlas::lint
