#include "atlas_lint/lexer.h"

#include <sstream>

namespace atlas::lint {
namespace {

bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

// True when the '"' at content[i] opens a raw string literal: the character
// before it is the R of one of the raw-literal spellings (R, uR, UR, LR,
// u8R) and that spelling is not the tail of a longer identifier.
bool OpensRawString(const std::string& content, std::size_t i) {
  if (i == 0 || content[i - 1] != 'R') return false;
  std::size_t prefix = i - 1;  // first char of the encoding prefix
  if (prefix > 0) {
    const char p = content[prefix - 1];
    if (p == 'u' || p == 'U' || p == 'L') {
      prefix -= 1;
    } else if (p == '8' && prefix > 1 && content[prefix - 2] == 'u') {
      prefix -= 2;
    }
  }
  return prefix == 0 || !IsIdentChar(content[prefix - 1]);
}

}  // namespace

ScrubbedFile Scrub(const std::string& content) {
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  ScrubbedFile out;
  out.code.emplace_back();
  out.comment.emplace_back();
  std::string code_line, comment_line;
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  const std::size_t n = content.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = content[i];
    const char next = i + 1 < n ? content[i + 1] : '\0';
    // A backslash line continuation splices the next physical line onto
    // this one *lexically* (the comment or string keeps going) while the
    // physical line break remains: emit the break so line numbers stay
    // aligned with the file, but do not touch the lexical state. Raw
    // strings are the exception — inside them a backslash is literal text.
    if (c == '\\' && next == '\n' && state != State::kRawString) {
      out.code.push_back(code_line);
      out.comment.push_back(comment_line);
      code_line.clear();
      comment_line.clear();
      ++i;  // consume the newline together with the backslash
      continue;
    }
    if (c == '\n') {
      out.code.push_back(code_line);
      out.comment.push_back(comment_line);
      code_line.clear();
      comment_line.clear();
      if (state == State::kLineComment) state = State::kCode;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          code_line += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          code_line += "  ";
          ++i;
        } else if (c == '"' && OpensRawString(content, i)) {
          // Raw string literal: R"delim( ... )delim". No escapes apply
          // inside; only the exact )delim" closer ends it.
          state = State::kRawString;
          raw_delim.clear();
          code_line += '"';
          for (++i; i < n && content[i] != '(' && content[i] != '\n'; ++i) {
            raw_delim += content[i];
          }
          if (i < n && content[i] == '\n') --i;  // malformed; resync on '\n'
          // leave i at '('; the loop's ++i moves past it
        } else if (c == '"') {
          state = State::kString;
          code_line += '"';
        } else if (c == '\'') {
          state = State::kChar;
          code_line += '\'';
        } else {
          code_line += c;
        }
        break;
      case State::kLineComment:
        comment_line += c;
        code_line += ' ';
        break;
      case State::kBlockComment:
        comment_line += c;
        code_line += ' ';
        if (c == '*' && next == '/') {
          state = State::kCode;
          code_line += ' ';
          comment_line += '/';
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\') {
          code_line += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          code_line += '"';
        } else {
          code_line += ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          code_line += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          code_line += '\'';
        } else {
          code_line += ' ';
        }
        break;
      case State::kRawString: {
        const std::string close = ")" + raw_delim + "\"";
        if (content.compare(i, close.size(), close) == 0) {
          state = State::kCode;
          code_line += '"';
          i += close.size() - 1;
        } else {
          code_line += ' ';
        }
        break;
      }
    }
  }
  out.code.push_back(code_line);
  out.comment.push_back(comment_line);
  return out;
}

std::set<std::string> ParseAllows(const std::string& comment) {
  std::set<std::string> allowed;
  static const std::string kTag = "atlas-lint: allow(";
  std::size_t pos = comment.find(kTag);
  while (pos != std::string::npos) {
    const std::size_t open = pos + kTag.size();
    const std::size_t close = comment.find(')', open);
    if (close == std::string::npos) break;
    std::stringstream list(comment.substr(open, close - open));
    std::string rule;
    while (std::getline(list, rule, ',')) {
      const auto b = rule.find_first_not_of(" \t");
      const auto e = rule.find_last_not_of(" \t");
      if (b != std::string::npos) allowed.insert(rule.substr(b, e - b + 1));
    }
    pos = comment.find(kTag, close);
  }
  return allowed;
}

std::map<std::size_t, std::set<std::string>> CollectAllows(
    const ScrubbedFile& scrubbed) {
  std::map<std::size_t, std::set<std::string>> allows;
  for (std::size_t i = 1; i < scrubbed.comment.size(); ++i) {
    auto rules = ParseAllows(scrubbed.comment[i]);
    if (!rules.empty()) allows[i] = std::move(rules);
  }
  return allows;
}

}  // namespace atlas::lint
