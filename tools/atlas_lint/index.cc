#include "atlas_lint/index.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <utility>

#include "util/par.h"

namespace atlas::lint {
namespace {

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Last [A-Za-z0-9_]+ run in `expr` — "other.mu_" -> "mu_", "*mu" -> "mu".
std::string LastIdentifier(const std::string& expr) {
  std::size_t end = expr.size();
  while (end > 0 && !(std::isalnum(static_cast<unsigned char>(expr[end - 1])) ||
                      expr[end - 1] == '_')) {
    --end;
  }
  std::size_t begin = end;
  while (begin > 0 && (std::isalnum(static_cast<unsigned char>(
                           expr[begin - 1])) ||
                       expr[begin - 1] == '_')) {
    --begin;
  }
  return expr.substr(begin, end - begin);
}

// Quoted includes. Directive detection runs on the scrubbed code (so a
// commented-out #include never matches) but the path itself is read from
// the raw line — Scrub blanks string bodies, and the include path *is* a
// string body.
std::vector<IncludeEdge> ExtractIncludes(const std::string& content,
                                         const ScrubbedFile& scrubbed) {
  std::vector<IncludeEdge> out;
  static const std::regex kDirective(R"(^\s*#\s*include\s*")");
  static const std::regex kRawPath(R"re(#\s*include\s*"([^"\n]+)")re");
  std::vector<std::string> raw_lines;
  raw_lines.emplace_back();  // [0] unused
  std::istringstream in(content);
  for (std::string line; std::getline(in, line);) raw_lines.push_back(line);
  for (std::size_t i = 1; i < scrubbed.code.size() && i < raw_lines.size();
       ++i) {
    if (!std::regex_search(scrubbed.code[i], kDirective)) continue;
    std::smatch m;
    if (std::regex_search(raw_lines[i], m, kRawPath)) {
      out.push_back({i, m[1].str()});
    }
  }
  return out;
}

void CollectNames(const std::string& text, FileIndex& idx) {
  // `Mutex name` declarations (members, locals, globals). MutexLock does
  // not match: \b requires the token to be exactly `Mutex`.
  static const std::regex kMutexDecl(R"(\bMutex\s+([A-Za-z_]\w*)\s*[;={])");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), kMutexDecl);
       it != std::sregex_iterator(); ++it) {
    idx.mutex_decls.insert((*it)[1].str());
  }
  // Names inside thread-safety annotations: both the guarded field (the
  // identifier directly before the macro) and the mutexes referenced in
  // the argument list.
  static const std::regex kAnnotation(
      R"(([A-Za-z_]\w*)\s*ATLAS_(?:PT_)?GUARDED_BY\s*\(([^)]*)\))");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), kAnnotation);
       it != std::sregex_iterator(); ++it) {
    idx.guarded_fields.insert((*it)[1].str());
  }
  // std::atomic<...> name / std::atomic_uint name.
  static const std::regex kAtomic(
      R"(\batomic(?:_\w+)?\s*(?:<[^;{}]*?>)?\s+([A-Za-z_]\w*)\s*[;={(])");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), kAtomic);
       it != std::sregex_iterator(); ++it) {
    idx.atomic_fields.insert((*it)[1].str());
  }
  // float/double declarations. Conservative aliasing: any identifier ever
  // declared floating counts everywhere in the file.
  static const std::regex kFp(
      R"(\b(?:double|float)\s+(?:const\s+)?([A-Za-z_]\w*)\s*([;={,)\[]|\+=|-=))");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), kFp);
       it != std::sregex_iterator(); ++it) {
    idx.fp_names.insert((*it)[1].str());
  }
}

// Finds call-argument ranges of `re` matches: the range spans from the
// opening '(' (exclusive) to its balanced ')' (exclusive).
void CollectCallRanges(const std::string& flat, const std::regex& re,
                       std::vector<FlatRange>& out) {
  for (auto it = std::sregex_iterator(flat.begin(), flat.end(), re);
       it != std::sregex_iterator(); ++it) {
    std::size_t pos = static_cast<std::size_t>(it->position(0)) +
                      static_cast<std::size_t>(it->length(0));
    // position is just past the '(' matched by the regex tail.
    const std::size_t begin = pos;
    int depth = 1;
    while (pos < flat.size() && depth > 0) {
      if (flat[pos] == '(') ++depth;
      if (flat[pos] == ')') --depth;
      ++pos;
    }
    out.push_back({begin, pos > begin ? pos - 1 : begin});
  }
}

void CollectLocks(FileIndex& idx) {
  static const std::regex kAcquire(
      R"(\bMutexLock\s+[A-Za-z_]\w*\s*\(\s*([^();]*)\))");
  struct Site {
    std::size_t pos;
    std::string mutex;
  };
  std::vector<Site> sites;
  for (auto it = std::sregex_iterator(idx.flat.begin(), idx.flat.end(),
                                      kAcquire);
       it != std::sregex_iterator(); ++it) {
    const std::string mutex = LastIdentifier((*it)[1].str());
    if (mutex.empty()) continue;
    sites.push_back({static_cast<std::size_t>(it->position(0)), mutex});
  }
  for (const Site& s : sites) {
    idx.lock_sites.push_back(
        {s.mutex, idx.line_of[s.pos], idx.col_of[s.pos]});
  }
  // One pass over flat, tracking brace depth; a lock lives until the brace
  // block containing its declaration closes. Every acquisition made while
  // other locks are live yields a nesting edge.
  struct Held {
    std::string mutex;
    int depth;
    std::size_t line;
  };
  std::vector<Held> held;
  std::size_t next_site = 0;
  int depth = 0;
  for (std::size_t p = 0; p < idx.flat.size(); ++p) {
    if (next_site < sites.size() && sites[next_site].pos == p) {
      const Site& s = sites[next_site++];
      for (const Held& h : held) {
        idx.lock_nestings.push_back(
            {h.mutex, h.line, s.mutex, idx.line_of[p], idx.col_of[p]});
      }
      held.push_back({s.mutex, depth, idx.line_of[p]});
    }
    if (idx.flat[p] == '{') ++depth;
    if (idx.flat[p] == '}') {
      --depth;
      while (!held.empty() && held.back().depth > depth) held.pop_back();
    }
  }
}

}  // namespace

bool FileIndex::InParallelRegion(std::size_t flat_pos) const {
  for (const FlatRange& r : parallel_regions) {
    if (flat_pos >= r.begin && flat_pos < r.end) return true;
  }
  return false;
}

bool FileIndex::InForEachRegion(std::size_t flat_pos) const {
  for (const FlatRange& r : foreach_regions) {
    if (flat_pos >= r.begin && flat_pos < r.end) return true;
  }
  return false;
}

FileIndex BuildFileIndex(const std::string& path, const std::string& content,
                         const std::string& decl_context) {
  FileIndex idx;
  idx.path = path;
  idx.scrubbed = Scrub(content);
  idx.allows = CollectAllows(idx.scrubbed);
  for (std::size_t i = 1; i < idx.scrubbed.code.size(); ++i) {
    std::size_t col = 1;
    for (char c : idx.scrubbed.code[i]) {
      idx.flat += c;
      idx.line_of.push_back(i);
      idx.col_of.push_back(col++);
    }
    idx.flat += ' ';
    idx.line_of.push_back(i);
    idx.col_of.push_back(col);
  }
  if (!decl_context.empty()) {
    const ScrubbedFile ctx = Scrub(decl_context);
    for (const std::string& line : ctx.code) {
      idx.decl_flat += line;
      idx.decl_flat += ' ';
    }
  }
  idx.includes = ExtractIncludes(content, idx.scrubbed);
  CollectNames(idx.flat, idx);
  if (!idx.decl_flat.empty()) CollectNames(idx.decl_flat, idx);
  static const std::regex kParallel(R"(\bParallel(?:For|Reduce)\s*\()");
  static const std::regex kForEach(R"(\bForEach\s*\()");
  CollectCallRanges(idx.flat, kParallel, idx.parallel_regions);
  CollectCallRanges(idx.flat, kForEach, idx.foreach_regions);
  CollectLocks(idx);
  return idx;
}

const FileIndex* ProjectIndex::Find(const std::string& path) const {
  const auto it = by_path.find(path);
  return it == by_path.end() ? nullptr : &files[it->second];
}

const FileIndex* ProjectIndex::Resolve(const std::string& from,
                                       const std::string& target) const {
  if (const FileIndex* f = Find(target)) return f;
  for (const char* top : {"src/", "tools/", "bench/"}) {
    if (const FileIndex* f = Find(top + target)) return f;
  }
  const std::size_t slash = from.find_last_of('/');
  if (slash != std::string::npos) {
    if (const FileIndex* f = Find(from.substr(0, slash + 1) + target)) {
      return f;
    }
  }
  return nullptr;
}

namespace {

ProjectIndex BuildFromContents(
    std::vector<std::pair<std::string, std::string>> sources, int threads) {
  std::sort(sources.begin(), sources.end());
  std::map<std::string, std::size_t> source_at;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    source_at[sources[i].first] = i;
  }
  ProjectIndex index;
  index.files.resize(sources.size());
  util::ParallelFor(
      sources.size(),
      [&](std::size_t i) {
        const std::string& path = sources[i].first;
        std::string decl_context;
        if (EndsWith(path, ".cc") || EndsWith(path, ".cpp")) {
          const std::string header =
              path.substr(0, path.find_last_of('.')) + ".h";
          const auto it = source_at.find(header);
          if (it != source_at.end()) decl_context = sources[it->second].second;
        }
        index.files[i] = BuildFileIndex(path, sources[i].second, decl_context);
      },
      threads);
  for (std::size_t i = 0; i < index.files.size(); ++i) {
    const std::string& path = index.files[i].path;
    index.by_path.emplace(path, i);
    // src-relative alias: how in-tree code spells its includes.
    for (const char* top : {"src/", "tools/", "bench/"}) {
      const std::string prefix = top;
      if (path.compare(0, prefix.size(), prefix) == 0) {
        index.by_path.emplace(path.substr(prefix.size()), i);
      }
    }
  }
  return index;
}

}  // namespace

ProjectIndex BuildProjectIndex(const std::string& root, int threads) {
  namespace fs = std::filesystem;
  std::vector<std::pair<std::string, std::string>> sources;
  for (const char* top : {"src", "tools", "bench"}) {
    const fs::path dir = fs::path(root) / top;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".hpp" && ext != ".cc" && ext != ".cpp") {
        continue;
      }
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      sources.emplace_back(fs::relative(entry.path(), root).generic_string(),
                           buf.str());
    }
  }
  return BuildFromContents(std::move(sources), threads);
}

ProjectIndex IndexSources(
    const std::vector<std::pair<std::string, std::string>>& sources,
    int threads) {
  return BuildFromContents(sources, threads);
}

}  // namespace atlas::lint
