#include "atlas_lint/baseline.h"

#include <sstream>

namespace atlas::lint {

Baseline ParseBaseline(const std::string& text,
                       std::vector<std::string>* errors) {
  Baseline out;
  std::istringstream in(text);
  std::size_t lineno = 0;
  for (std::string line; std::getline(in, line);) {
    ++lineno;
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    std::string file, rule;
    std::size_t count = 0;
    if (!(fields >> file >> rule >> count) || count == 0) {
      if (errors != nullptr) {
        errors->push_back("baseline line " + std::to_string(lineno) +
                          ": expected '<file> <rule> <count>', got '" + line +
                          "'");
      }
      continue;
    }
    out.counts[{file, rule}] += count;
  }
  return out;
}

std::string SerializeBaseline(const std::vector<Finding>& findings) {
  std::map<std::pair<std::string, std::string>, std::size_t> counts;
  for (const Finding& f : findings) ++counts[{f.file, f.rule}];
  std::string out =
      "# atlas-lint baseline: frozen pre-existing findings, one\n"
      "# '<file> <rule> <count>' per line. Regenerate with\n"
      "#   atlas-lint --root . --write-baseline .lint-baseline\n"
      "# and justify any count increase in the PR that makes it.\n";
  for (const auto& [key, count] : counts) {
    out += key.first + " " + key.second + " " + std::to_string(count) + "\n";
  }
  return out;
}

BaselineResult ApplyBaseline(const std::vector<Finding>& findings,
                             const Baseline& baseline) {
  BaselineResult result;
  // Findings are sorted, so each (file, rule) bucket is contiguous in
  // line order; count the bucket's prefix against the frozen allowance.
  std::map<std::pair<std::string, std::string>, std::size_t> seen;
  for (const Finding& f : findings) {
    const auto key = std::make_pair(f.file, f.rule);
    const std::size_t already = seen[key]++;
    const auto it = baseline.counts.find(key);
    const std::size_t allowance =
        it == baseline.counts.end() ? 0 : it->second;
    if (already >= allowance) result.fresh.push_back(f);
  }
  for (const auto& [key, count] : baseline.counts) {
    const auto it = seen.find(key);
    const std::size_t live = it == seen.end() ? 0 : it->second;
    if (live < count) {
      result.stale.push_back(
          {key.first, 1, 1, "stale-baseline",
           "baseline freezes " + std::to_string(count) + " '" + key.second +
               "' finding(s) in this file but only " + std::to_string(live) +
               " remain — the debt shrank; regenerate the baseline "
               "(--write-baseline) so the ratchet tightens"});
    }
  }
  return result;
}

}  // namespace atlas::lint
