// atlas-lint: project-invariant static analysis for the ATLAS tree.
//
// A lightweight lexer (comment/string-aware, no libclang) plus a catalog of
// ATLAS-specific rules. The rules defend the two properties the project
// depends on: byte-exact determinism of the analysis pipeline at any thread
// count, and correct 64-bit byte accounting in the CDN simulator.
//
// Rule catalog (scopes are repo-relative path prefixes):
//
//   nondet-random-device  src/            std::random_device is banned;
//                                         seed Rng/ShardedRng explicitly.
//   nondet-rand           src/            rand()/srand() are banned.
//   nondet-time           src/            time(nullptr/NULL/0) is banned.
//   nondet-system-clock   src/ except     wall-clock reads are banned in
//                         util/time.*     library code.
//   raw-new-delete        src/, tools/    no raw new/delete; use containers
//                                         or std::unique_ptr.
//   narrow-byte-counter   src/cdn/,       byte/size counters must be 64-bit
//                         src/analysis/   unsigned (no int/long/u32 fields
//                                         or locals named *bytes*/*size*).
//   raw-std-mutex         src/, tools/    use util::Mutex / util::MutexLock /
//                         except          util::CondVar so Clang
//                         util/mutex.h    -Wthread-safety sees the locking.
//   mutex-unannotated     src/, tools/    every Mutex must be referenced by
//                                         at least one ATLAS_GUARDED_BY /
//                                         ATLAS_REQUIRES / ... in its file.
//   missing-pragma-once   all headers     every header starts with
//                                         #pragma once.
//   unordered-iter        src/            range-for over an unordered
//                                         container that accumulates
//                                         (+=, push_back) in the loop body:
//                                         iteration order is
//                                         implementation-defined, so the
//                                         accumulation must be proven
//                                         order-insensitive and annotated.
//   unchecked-index-cast  src/synth/      static_cast<uint32_t> is banned
//                                         in the synth layer; population
//                                         indices narrow through
//                                         util::CheckedIndexU32
//                                         (util/checked.h), which throws on
//                                         overflow instead of wrapping.
//   tracebuffer-in-cdn    src/cdn/        trace::TraceBuffer declarations
//                                         and by-value returns are banned
//                                         in the simulator: records stream
//                                         through trace::RecordSink, never
//                                         through a materialized buffer
//                                         (references/pointers are fine).
//   perrecord-in-hotpath  src/analysis/,  calls to the one-record-at-a-time
//                         src/cdn/        adapters (NextRecord / PushRecord,
//                                         trace/block.h) are banned in the
//                                         hot analysis/simulation layers:
//                                         records move as SoA RecordBlocks
//                                         (BlockSource / BlockSink) there;
//                                         compatibility shims annotate.
//   ckpt-unversioned-blob src/ except     SaveState implementations must
//                         src/ckpt/       serialize through ckpt::Writer's
//                                         typed, versioned section API; raw
//                                         .write()/fwrite() bypasses the
//                                         CRC + version framing and restores
//                                         wrong-but-plausible after layout
//                                         changes.
//
// Suppression: append `// atlas-lint: allow(<rule>[, <rule>...])  <reason>`
// on the offending line or in the comment block directly above it.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace atlas::lint {

struct Finding {
  std::string file;  // repo-relative path, '/'-separated
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;

  bool operator==(const Finding&) const = default;
};

// Lints a single file. `path` is the repo-relative path ('/'-separated); it
// selects which rules apply. `content` is the file's full text.
// `decl_context` is optional extra source whose declarations count when
// resolving names (LintTree passes the sibling header of each .cc, so
// `for (auto& kv : member_)` sees members declared in the header).
std::vector<Finding> LintFile(const std::string& path,
                              const std::string& content,
                              const std::string& decl_context = "");

// Walks src/ and tools/ under `root` (sorted, deterministic) and lints every
// .h/.cc file. Returns findings sorted by (file, line, rule).
std::vector<Finding> LintTree(const std::string& root);

// All rule identifiers, for --list-rules and test coverage checks.
std::vector<std::string> RuleNames();

// "path:line: [rule] message" — the clickable single-line form.
std::string FormatFinding(const Finding& f);

}  // namespace atlas::lint
