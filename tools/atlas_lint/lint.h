// atlas-lint: project-invariant static analysis for the ATLAS tree.
//
// A two-phase project analyzer (no libclang):
//
//   phase 1  BuildProjectIndex (index.h) walks src/, tools/ and bench/
//            and indexes every TU — scrubbed token view, #include edges,
//            declared symbols, mutex declarations and MutexLock nesting
//            sites, parallel-region lambdas — under util::ParallelFor,
//            byte-stable at any thread count.
//   phase 2  per-file rules (rules_file.h) and cross-TU project rules
//            (rules_project.h: layer-dag, lock-order,
//            unguarded-parallel-write, fp-accumulation-order,
//            unused-suppression) run over the index.
//
// Diagnostics carry line/column spans (diagnostics.h), serialize to SARIF
// 2.1.0 for GitHub code scanning (sarif.h), and can be frozen with a
// checked-in .lint-baseline so only new violations fail (baseline.h).
//
// The rule catalog lives in diagnostics.cc (Rules()); scopes and the
// architectural layer DAG are documented in DESIGN.md §6.
//
// Suppression: append an allow pragma — `allow(<rule>)` after the tool
// prefix in a comment, followed by a reason — on the offending line or in
// the comment block directly above it. An
// allow that stops suppressing anything becomes an unused-suppression
// finding itself, so stale escapes cannot accumulate.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "atlas_lint/baseline.h"
#include "atlas_lint/diagnostics.h"
#include "atlas_lint/index.h"
#include "atlas_lint/sarif.h"

namespace atlas::lint {

struct ProjectReport {
  std::vector<Finding> findings;  // sorted by (file, line, col, rule)
  std::size_t files_indexed = 0;
  double index_ms = 0;  // phase-1 wall time
  double rules_ms = 0;  // phase-2 wall time
  int threads = 1;
};

// Lints every .h/.cc under root/{src,tools,bench}. threads <= 0 means
// util::DefaultThreads(). Output is byte-identical at any thread count.
ProjectReport LintProject(const std::string& root, int threads = 0);

// Lints an already-indexed project (fixture trees in tests).
ProjectReport LintIndexedProject(const ProjectIndex& index);

// Lints a single file. `path` is the repo-relative path ('/'-separated); it
// selects which rules apply. `decl_context` is optional extra source whose
// declarations count when resolving names (the sibling header of a .cc).
// Cross-TU rules run degraded to single-file scope (layer-dag still checks
// the file's own include edges; lock-order sees this file's nestings).
std::vector<Finding> LintFile(const std::string& path,
                              const std::string& content,
                              const std::string& decl_context = "");

// Compatibility wrapper: LintProject(root).findings.
std::vector<Finding> LintTree(const std::string& root);

}  // namespace atlas::lint
