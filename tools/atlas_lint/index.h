// atlas-lint phase 1: the project index.
//
// BuildProjectIndex walks src/, tools/ and bench/ under the repo root and
// builds one FileIndex per translation unit (deterministically, in sorted
// path order; the per-file work runs under util::ParallelFor and is a pure
// function of the file contents, so the index is byte-stable at any thread
// count). Phase 2 rules — per-file (rules_file.h) and cross-TU
// (rules_project.h) — run over these facts and never re-read the tree.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "atlas_lint/lexer.h"

namespace atlas::lint {

// A `#include "..."` edge (quoted includes only; system headers carry no
// layering or declaration information we use).
struct IncludeEdge {
  std::size_t line = 0;
  std::string target;  // as written, e.g. "util/par.h"
};

// One `util::MutexLock lock(expr);` acquisition site.
struct LockSite {
  std::string mutex;     // last identifier of the locked expression
  std::size_t line = 0;
  std::size_t col = 0;
};

// An acquisition observed while another lock is held in an enclosing scope
// of the same function body: the raw material of the lock-order graph.
struct LockNesting {
  std::string held;           // outer mutex name
  std::size_t held_line = 0;
  std::string acquired;       // inner mutex name
  std::size_t line = 0;       // acquisition line of the inner lock
  std::size_t col = 0;
};

// A half-open [begin, end) range into FileIndex::flat.
struct FlatRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};

struct FileIndex {
  std::string path;  // repo-relative, '/'-separated

  ScrubbedFile scrubbed;
  std::map<std::size_t, std::set<std::string>> allows;

  // Flattened code view for multi-line constructs: newlines become spaces;
  // line_of/col_of map flat positions back to 1-based line/column.
  std::string flat;
  std::vector<std::size_t> line_of;
  std::vector<std::size_t> col_of;

  // Sibling-header code (declarations context), flattened. Empty for
  // headers. Name sets below already merge the context's declarations.
  std::string decl_flat;

  std::vector<IncludeEdge> includes;

  // Declared `Mutex name` members/globals (file + declaration context).
  std::set<std::string> mutex_decls;
  // Names referenced by an ATLAS_GUARDED_BY/REQUIRES/... annotation.
  std::set<std::string> guarded_fields;
  // Names declared with a std::atomic type.
  std::set<std::string> atomic_fields;
  // Names declared float/double (conservative: any declaration counts).
  std::set<std::string> fp_names;

  std::vector<LockSite> lock_sites;
  std::vector<LockNesting> lock_nestings;

  // Argument ranges of ParallelFor/ParallelReduce calls (parallel regions)
  // and of .ForEach(...) calls (unordered-iteration regions), in flat.
  std::vector<FlatRange> parallel_regions;
  std::vector<FlatRange> foreach_regions;

  bool InParallelRegion(std::size_t flat_pos) const;
  bool InForEachRegion(std::size_t flat_pos) const;
};

// Indexes one file. `decl_context` is optional extra source whose
// declarations count when resolving names (the sibling header of a .cc).
FileIndex BuildFileIndex(const std::string& path, const std::string& content,
                         const std::string& decl_context = "");

struct ProjectIndex {
  std::vector<FileIndex> files;  // sorted by path
  // Path -> index into files. Keys include both the repo-relative path and
  // its src/-relative alias (how in-tree code spells its includes).
  std::map<std::string, std::size_t> by_path;

  const FileIndex* Find(const std::string& path) const;
  // Resolves an include target as seen from `from` to an indexed file, or
  // nullptr (system/vendored headers).
  const FileIndex* Resolve(const std::string& from,
                           const std::string& target) const;
};

// Builds the index over every .h/.hpp/.cc/.cpp file under root/{src,tools,
// bench}. File contents are read sequentially (sorted order); per-file
// indexing fans out over util::ParallelFor(threads).
ProjectIndex BuildProjectIndex(const std::string& root, int threads = 0);

// Wraps already-loaded sources (path -> content) into a ProjectIndex; the
// corpus tests use this to index fixture trees without touching disk.
ProjectIndex IndexSources(
    const std::vector<std::pair<std::string, std::string>>& sources,
    int threads = 0);

}  // namespace atlas::lint
