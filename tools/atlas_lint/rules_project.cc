#include "atlas_lint/rules_project.h"

#include <algorithm>
#include <map>
#include <queue>
#include <regex>
#include <set>
#include <string>
#include <utility>

namespace atlas::lint {
namespace {

constexpr const char* kDagText =
    "util -> {stats, trace} -> synth -> {cdn, cluster} -> {analysis, energy} "
    "-> ckpt";

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

// "src/<layer>/..." -> "<layer>"; "" otherwise.
std::string LayerOf(const std::string& path) {
  if (!StartsWith(path, "src/")) return "";
  const std::size_t end = path.find('/', 4);
  if (end == std::string::npos) return "";
  return path.substr(4, end - 4);
}

// First component of an include target, with an optional "src/" prefix
// stripped: "util/par.h" -> "util", "src/util/par.h" -> "util".
std::string TargetLayer(const std::string& target) {
  std::string t = target;
  if (StartsWith(t, "src/")) t = t.substr(4);
  const std::size_t end = t.find('/');
  if (end == std::string::npos) return "";
  return t.substr(0, end);
}

// ---------------------------------------------------------------------------
// layer-dag
// ---------------------------------------------------------------------------

void CheckLayerDag(const ProjectIndex& index, std::vector<Sink>& sinks) {
  // Reverse include map (resolved within the project), for naming the
  // chain a violating header is reached through.
  std::map<std::string, std::set<std::string>> included_by;
  for (const FileIndex& f : index.files) {
    for (const IncludeEdge& inc : f.includes) {
      if (const FileIndex* target = index.Resolve(f.path, inc.target)) {
        included_by[target->path].insert(f.path);
      }
    }
  }
  for (std::size_t i = 0; i < index.files.size(); ++i) {
    const FileIndex& f = index.files[i];
    const std::string layer = LayerOf(f.path);
    const int rank = LayerRank(layer);
    if (rank < 0) continue;  // tools/ and bench/ may include anything
    for (const IncludeEdge& inc : f.includes) {
      const std::string target_layer = TargetLayer(inc.target);
      const int target_rank = LayerRank(target_layer);
      if (target_rank < 0) continue;      // not a layered include
      if (target_layer == layer) continue;  // intra-layer is fine
      if (target_rank < rank) continue;     // strictly downward is fine
      // The chain: who reaches this file, then the offending edge. A
      // violation inside a header names one includer so the report reads
      // as the path a consumer actually takes.
      std::string chain = f.path + " -> \"" + inc.target + "\"";
      const auto rev = included_by.find(f.path);
      if (rev != included_by.end() && !rev->second.empty()) {
        chain = *rev->second.begin() + " -> " + chain;
      }
      sinks[i].Report(
          inc.line, 1, "layer-dag",
          "include chain " + chain + " crosses the layer DAG upward: '" +
              layer + "' (rank " + std::to_string(rank) +
              ") must not depend on '" + target_layer + "' (rank " +
              std::to_string(target_rank) + "); the DAG is " + kDagText);
    }
  }
}

// ---------------------------------------------------------------------------
// lock-order
// ---------------------------------------------------------------------------

struct LockWitness {
  std::string file;
  std::size_t held_line = 0;
  std::size_t line = 0;
  std::size_t col = 0;
  std::string held_name;      // unqualified, as written at the site
  std::string acquired_name;
};

// Resolves a mutex name acquired in `from` to a stable global key: the
// declaring file (searched breadth-first through the include closure,
// nearest declaration wins) plus the name. Undeclared names fall back to
// the acquiring file so unrelated same-named locals never alias.
std::string MutexKey(const ProjectIndex& index, const FileIndex& from,
                     const std::string& name) {
  // Prefer the sibling header: a mutex declared there is one lock shared
  // by the .h and the .cc, and both must resolve to the same key.
  const std::size_t dot = from.path.find_last_of('.');
  if (dot != std::string::npos && from.path.substr(dot) != ".h" &&
      from.path.substr(dot) != ".hpp") {
    const FileIndex* header = index.Find(from.path.substr(0, dot) + ".h");
    if (header != nullptr && header->mutex_decls.count(name) > 0) {
      return header->path + "::" + name;
    }
  }
  std::queue<const FileIndex*> frontier;
  std::set<std::string> seen;
  frontier.push(&from);
  seen.insert(from.path);
  while (!frontier.empty()) {
    const FileIndex* f = frontier.front();
    frontier.pop();
    if (f->mutex_decls.count(name) > 0) return f->path + "::" + name;
    for (const IncludeEdge& inc : f->includes) {
      if (const FileIndex* target = index.Resolve(f->path, inc.target)) {
        if (seen.insert(target->path).second) frontier.push(target);
      }
    }
  }
  return from.path + "::" + name;
}

void CheckLockOrder(const ProjectIndex& index, std::vector<Sink>& sinks) {
  // Build the global acquired-while-held graph; keep the first witness per
  // edge (files are sorted and nestings appear in file order, so "first"
  // is deterministic).
  std::map<std::pair<std::string, std::string>, LockWitness> edges;
  std::map<std::string, std::size_t> anchor_sink;  // edge from-key -> file
  for (std::size_t i = 0; i < index.files.size(); ++i) {
    const FileIndex& f = index.files[i];
    for (const LockNesting& nest : f.lock_nestings) {
      const std::string from = MutexKey(index, f, nest.held);
      const std::string to = MutexKey(index, f, nest.acquired);
      const auto key = std::make_pair(from, to);
      if (edges.count(key) > 0) continue;
      edges[key] = {f.path, nest.held_line, nest.line, nest.col,
                    nest.held,  nest.acquired};
      anchor_sink[from + "\n" + to] = i;
    }
  }
  // Tarjan-free SCC via Kosaraju on the (small, sorted) key graph.
  std::set<std::string> nodes;
  std::map<std::string, std::set<std::string>> fwd, rev;
  for (const auto& [key, w] : edges) {
    nodes.insert(key.first);
    nodes.insert(key.second);
    fwd[key.first].insert(key.second);
    rev[key.second].insert(key.first);
  }
  const auto reach = [](const std::map<std::string, std::set<std::string>>& g,
                        const std::string& start) {
    std::set<std::string> out;
    std::queue<std::string> q;
    q.push(start);
    out.insert(start);
    while (!q.empty()) {
      const std::string n = q.front();
      q.pop();
      const auto it = g.find(n);
      if (it == g.end()) continue;
      for (const std::string& m : it->second) {
        if (out.insert(m).second) q.push(m);
      }
    }
    return out;
  };
  std::set<std::string> reported;
  for (const std::string& node : nodes) {
    if (reported.count(node) > 0) continue;
    std::set<std::string> scc;
    const std::set<std::string> down = reach(fwd, node);
    const std::set<std::string> up = reach(rev, node);
    for (const std::string& n : down) {
      if (up.count(n) > 0) scc.insert(n);
    }
    // A cycle needs either several mutually-reachable locks or a self-edge
    // (the same mutex re-acquired while already held).
    const bool self_loop =
        fwd.count(node) > 0 && fwd.at(node).count(node) > 0;
    if (scc.size() < 2 && !self_loop) continue;
    for (const std::string& n : scc) reported.insert(n);
    // Every edge inside the component, each with its witness path.
    std::string detail;
    const LockWitness* anchor = nullptr;
    std::size_t anchor_file = 0;
    for (const auto& [key, w] : edges) {
      if (scc.count(key.first) == 0 || scc.count(key.second) == 0) continue;
      if (!detail.empty()) detail += "; ";
      detail += key.first + " -> " + key.second + " witnessed at " + w.file +
                ":" + std::to_string(w.line) + " ('" + w.acquired_name +
                "' acquired while holding '" + w.held_name + "' from line " +
                std::to_string(w.held_line) + ")";
      if (anchor == nullptr) {
        anchor = &w;
        anchor_file = anchor_sink.at(key.first + "\n" + key.second);
      }
    }
    if (anchor == nullptr) continue;
    std::string members;
    for (const std::string& n : scc) {
      if (!members.empty()) members += ", ";
      members += n;
    }
    if (members.empty()) members = node;
    sinks[anchor_file].Report(
        anchor->line, anchor->col, "lock-order",
        "lock-acquisition-order cycle (potential deadlock) among {" +
            members + "}: " + detail +
            " — acquire these mutexes in one global order");
  }
}

// ---------------------------------------------------------------------------
// unguarded-parallel-write
// ---------------------------------------------------------------------------

void CheckUnguardedParallelWrite(const ProjectIndex& index,
                                 std::vector<Sink>& sinks) {
  static const std::regex kFieldWrite(
      R"re((?:^|[^\w.>:])([A-Za-z_]\w*_)\s*()re"
      R"re(\+=|-=|\*=|/=|%=|\|=|&=|\^=|<<=|>>=|\+\+|--|=[^=]))re");
  static const std::regex kPrefixIncDec(
      R"((?:\+\+|--)\s*([A-Za-z_]\w*_)\b)");
  for (std::size_t i = 0; i < index.files.size(); ++i) {
    const FileIndex& f = index.files[i];
    if (!StartsWith(f.path, "src/")) continue;
    if (f.parallel_regions.empty()) continue;
    const auto check = [&](std::size_t at, const std::string& name) {
      if (!f.InParallelRegion(at)) return;
      if (f.guarded_fields.count(name) > 0) return;
      if (f.atomic_fields.count(name) > 0) return;
      sinks[i].Report(
          f.line_of[at], f.col_of[at], "unguarded-parallel-write",
          "mutable field '" + name +
              "' is written inside a parallel-region lambda but carries no "
              "ATLAS_GUARDED_BY and is not atomic; guard it, make the slot "
              "shard-private, or justify with "
              "// atlas-lint: allow(unguarded-parallel-write)");
    };
    for (auto it = std::sregex_iterator(f.flat.begin(), f.flat.end(),
                                        kFieldWrite);
         it != std::sregex_iterator(); ++it) {
      check(static_cast<std::size_t>(it->position(1)), (*it)[1].str());
    }
    for (auto it = std::sregex_iterator(f.flat.begin(), f.flat.end(),
                                        kPrefixIncDec);
         it != std::sregex_iterator(); ++it) {
      check(static_cast<std::size_t>(it->position(1)), (*it)[1].str());
    }
  }
}

// ---------------------------------------------------------------------------
// fp-accumulation-order
// ---------------------------------------------------------------------------

void CheckFpAccumulationOrder(const ProjectIndex& index,
                              std::vector<Sink>& sinks) {
  static const std::regex kAccum(R"(([A-Za-z_]\w*)\s*(\+=|-=))");
  for (std::size_t i = 0; i < index.files.size(); ++i) {
    const FileIndex& f = index.files[i];
    if (!StartsWith(f.path, "src/")) continue;
    if (f.parallel_regions.empty() && f.foreach_regions.empty()) continue;
    for (auto it =
             std::sregex_iterator(f.flat.begin(), f.flat.end(), kAccum);
         it != std::sregex_iterator(); ++it) {
      const std::size_t at = static_cast<std::size_t>(it->position(1));
      const std::string name = (*it)[1].str();
      if (f.fp_names.count(name) == 0) continue;
      const bool parallel = f.InParallelRegion(at);
      const bool foreach = f.InForEachRegion(at);
      if (!parallel && !foreach) continue;
      const std::string where =
          parallel ? "a ParallelFor/ParallelReduce lambda"
                   : "a ForEach lambda (unordered-table iteration order)";
      sinks[i].Report(
          f.line_of[at], f.col_of[at], "fp-accumulation-order",
          "floating-point accumulation '" + name + " " + (*it)[2].str() +
              "' inside " + where +
              " folds in an execution-order-dependent sequence; FP addition "
              "does not commute bit-exactly, so this threatens the "
              "golden-digest determinism proofs — reduce into per-shard "
              "slots folded in index order (util::ParallelReduce), sort the "
              "keys first, or justify with "
              "// atlas-lint: allow(fp-accumulation-order)");
    }
  }
}

// ---------------------------------------------------------------------------
// unused-suppression
// ---------------------------------------------------------------------------

void CheckUnusedSuppressions(const ProjectIndex& index,
                             std::vector<Sink>& sinks) {
  for (std::size_t i = 0; i < index.files.size(); ++i) {
    const FileIndex& f = index.files[i];
    // Snapshot: reporting below may itself consume an
    // allow(unused-suppression) pragma, which is fine — but it must never
    // retroactively mark anything else used.
    const auto used = sinks[i].used_allows();
    for (const auto& [line, rules] : f.allows) {
      for (const std::string& rule : rules) {
        if (rule == "unused-suppression") continue;
        if (used.count({line, rule}) > 0) continue;
        const std::string why =
            IsKnownRule(rule)
                ? "no '" + rule +
                      "' finding is suppressed by this pragma anymore"
                : "'" + rule + "' is not a known rule";
        sinks[i].Report(line, 1, "unused-suppression",
                        "stale suppression: " + why +
                            "; delete the allow() (the finding it silenced "
                            "is gone, and a stale allow would mask a future "
                            "regression)");
      }
    }
  }
}

}  // namespace

int LayerRank(const std::string& layer) {
  if (layer == "util") return 0;
  if (layer == "stats" || layer == "trace") return 1;
  if (layer == "synth") return 2;
  if (layer == "cdn" || layer == "cluster") return 3;
  if (layer == "analysis" || layer == "energy") return 4;
  if (layer == "ckpt") return 5;
  return -1;
}

void RunProjectRules(const ProjectIndex& index, std::vector<Sink>& sinks) {
  CheckLayerDag(index, sinks);
  CheckLockOrder(index, sinks);
  CheckUnguardedParallelWrite(index, sinks);
  CheckFpAccumulationOrder(index, sinks);
  CheckUnusedSuppressions(index, sinks);  // must run last
}

}  // namespace atlas::lint
