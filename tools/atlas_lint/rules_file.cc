#include "atlas_lint/rules_file.h"

#include <algorithm>
#include <cctype>
#include <regex>
#include <set>
#include <string>

namespace atlas::lint {
namespace {

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsHeader(const std::string& path) {
  return EndsWith(path, ".h") || EndsWith(path, ".hpp");
}

bool InLibrary(const std::string& path) { return StartsWith(path, "src/"); }

bool InLibraryOrTools(const std::string& path) {
  return StartsWith(path, "src/") || StartsWith(path, "tools/");
}

class FileRules {
 public:
  FileRules(const FileIndex& f, Sink& sink) : f_(f), sink_(sink) {}

  void Run() {
    CheckNondeterminism();
    CheckRawNewDelete();
    CheckNarrowByteCounter();
    CheckRawStdMutex();
    CheckMutexAnnotations();
    CheckPragmaOnce();
    CheckUnorderedIteration();
    CheckUncheckedIndexCast();
    CheckTraceBufferInCdn();
    CheckPerRecordInHotPath();
    CheckCkptUnversionedBlob();
  }

 private:
  const std::string& path() const { return f_.path; }

  // Applies `re` to every code line, reporting `rule` on match.
  void ForbidPattern(const std::regex& re, const std::string& rule,
                     const std::string& message) {
    for (std::size_t i = 1; i < f_.scrubbed.code.size(); ++i) {
      std::smatch m;
      if (std::regex_search(f_.scrubbed.code[i], m, re)) {
        sink_.Report(i, static_cast<std::size_t>(m.position(0)) + 1, rule,
                     message);
      }
    }
  }

  void CheckNondeterminism();
  void CheckRawNewDelete();
  void CheckNarrowByteCounter();
  void CheckRawStdMutex();
  void CheckMutexAnnotations();
  void CheckPragmaOnce();
  void CheckUnorderedIteration();
  void CheckUncheckedIndexCast();
  void CheckTraceBufferInCdn();
  void CheckPerRecordInHotPath();
  void CheckCkptUnversionedBlob();

  const FileIndex& f_;
  Sink& sink_;
};

void FileRules::CheckNondeterminism() {
  if (!InLibrary(path())) return;
  static const std::regex kRandomDevice(R"(\brandom_device\b)");
  static const std::regex kRand(R"((^|[^\w:.>])s?rand\s*\()");
  static const std::regex kTime(R"(\btime\s*\(\s*(nullptr|NULL|0)\s*\))");
  static const std::regex kSystemClock(R"(\bsystem_clock\b)");
  ForbidPattern(kRandomDevice, "nondet-random-device",
                "std::random_device is nondeterministic; seed util::Rng / "
                "util::ShardedRng from an explicit seed");
  ForbidPattern(kRand, "nondet-rand",
                "rand()/srand() are banned; use util::Rng");
  ForbidPattern(kTime, "nondet-time",
                "wall-clock time() is banned in library code; timestamps "
                "come from the trace");
  if (path() != "src/util/time.h" && path() != "src/util/time.cc") {
    ForbidPattern(kSystemClock, "nondet-system-clock",
                  "std::chrono::system_clock is banned outside util/time; "
                  "library results must not depend on wall-clock reads");
  }
}

void FileRules::CheckRawNewDelete() {
  if (!InLibraryOrTools(path())) return;
  static const std::regex kNew(R"(\bnew\b)");
  static const std::regex kDelete(R"(\bdelete\b)");
  for (std::size_t i = 1; i < f_.scrubbed.code.size(); ++i) {
    const std::string& line = f_.scrubbed.code[i];
    std::smatch m;
    if (std::regex_search(line, m, kNew)) {
      sink_.Report(i, static_cast<std::size_t>(m.position(0)) + 1,
                   "raw-new-delete",
                   "raw new is banned; use std::make_unique or a container");
    }
    if (std::regex_search(line, m, kDelete)) {
      // `= delete` (deleted special members) is fine. The '=' may sit at
      // the end of the previous line.
      std::string before =
          line.substr(0, static_cast<std::size_t>(m.position(0)));
      if (before.find_last_not_of(" \t") == std::string::npos && i > 1) {
        before = f_.scrubbed.code[i - 1];
      }
      const std::size_t last_pos = before.find_last_not_of(" \t");
      const char last = last_pos == std::string::npos ? '\0' : before[last_pos];
      if (last != '=') {
        sink_.Report(i, static_cast<std::size_t>(m.position(0)) + 1,
                     "raw-new-delete",
                     "raw delete is banned; use std::unique_ptr or a "
                     "container");
      }
    }
  }
}

void FileRules::CheckNarrowByteCounter() {
  if (!StartsWith(path(), "src/cdn/") &&
      !StartsWith(path(), "src/analysis/")) {
    return;
  }
  // Narrow or signed arithmetic types followed by an identifier whose name
  // says it holds bytes or a size. 64-bit unsigned types (std::uint64_t,
  // std::size_t, unsigned long long) pass.
  static const std::regex kNarrowDecl(
      R"re((?:^|[^\w:])()re"
      R"re(unsigned\s+short|unsigned\s+char|unsigned\s+int|unsigned|signed|)re"
      R"re(short|long\s+long|long|int|)re"
      R"re((?:std::)?u?int(?:8|16|32)_t)re"
      R"re()\s+(?:const\s+)?([A-Za-z_]\w*)\s*(?=[;,=){\[]))re");
  static const std::regex kCounterName(R"([Bb]ytes|[Ss]ize)");
  for (std::size_t i = 1; i < f_.scrubbed.code.size(); ++i) {
    const std::string& line = f_.scrubbed.code[i];
    auto begin = std::sregex_iterator(line.begin(), line.end(), kNarrowDecl);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      const std::string type = (*it)[1].str();
      const std::string name = (*it)[2].str();
      // `unsigned long` / `unsigned long long` are 64-bit unsigned on LP64;
      // the regex can match their trailing `long (long)` alone, so check
      // the word right before the matched type.
      static const std::regex kUnsignedTail(R"(\bunsigned\s*$)");
      const std::string prefix =
          line.substr(0, static_cast<std::size_t>(it->position(1)));
      if (std::regex_search(prefix, kUnsignedTail)) continue;
      if (std::regex_search(name, kCounterName)) {
        sink_.Report(i, static_cast<std::size_t>(it->position(1)) + 1,
                     "narrow-byte-counter",
                     "byte/size counter '" + name + "' declared as '" + type +
                         "'; byte accounting must use std::uint64_t (or "
                         "std::size_t for in-memory sizes)");
      }
    }
  }
}

void FileRules::CheckRawStdMutex() {
  if (!InLibraryOrTools(path())) return;
  if (path() == "src/util/mutex.h") return;
  static const std::regex kStdSync(
      R"(std::(mutex|shared_mutex|recursive_mutex|timed_mutex|)"
      R"(condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock)\b)");
  ForbidPattern(kStdSync, "raw-std-mutex",
                "raw std synchronization types are invisible to Clang "
                "-Wthread-safety; use util::Mutex / util::MutexLock / "
                "util::CondVar from util/mutex.h");
}

void FileRules::CheckMutexAnnotations() {
  if (!InLibraryOrTools(path())) return;
  if (path() == "src/util/mutex.h") return;
  // A Mutex declaration (member or namespace-scope). `MutexLock lock(...)`
  // does not match: \b requires the token to be exactly `Mutex`.
  static const std::regex kMutexDecl(R"(\bMutex\s+([A-Za-z_]\w*)\s*[;={])");
  for (std::size_t i = 1; i < f_.scrubbed.code.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(f_.scrubbed.code[i], m, kMutexDecl)) continue;
    const std::string name = m[1].str();
    const std::regex annotated(
        R"(ATLAS_(GUARDED_BY|PT_GUARDED_BY|REQUIRES|ACQUIRE|RELEASE|)"
        R"(EXCLUDES)\s*\([^)]*\b)" +
        name + R"(\b[^)]*\))");
    if (!std::regex_search(f_.flat, annotated) &&
        !std::regex_search(f_.decl_flat, annotated)) {
      sink_.Report(i, static_cast<std::size_t>(m.position(0)) + 1,
                   "mutex-unannotated",
                   "Mutex '" + name +
                       "' guards nothing: annotate the state it protects "
                       "with ATLAS_GUARDED_BY(" +
                       name + ") (see util/thread_annotations.h)");
    }
  }
}

void FileRules::CheckPragmaOnce() {
  if (!IsHeader(path())) return;
  static const std::regex kPragmaOnce(R"(^\s*#\s*pragma\s+once\b)");
  for (std::size_t i = 1; i < f_.scrubbed.code.size(); ++i) {
    if (std::regex_search(f_.scrubbed.code[i], kPragmaOnce)) return;
  }
  sink_.Report(1, 1, "missing-pragma-once",
               "header is missing #pragma once");
}

void FileRules::CheckUncheckedIndexCast() {
  // Population sizes in src/synth/ are validated against the uint32 index
  // range, but intermediate products (shard offsets, scaled counts, sampled
  // indices) are 64-bit: a silent static_cast<uint32_t> truncates exactly
  // when a scale-up makes it matter. util::CheckedIndexU32 (util/checked.h)
  // is the loud equivalent.
  if (!StartsWith(path(), "src/synth/")) return;
  static const std::regex kNarrowCast(
      R"(static_cast<\s*(?:std::)?uint32_t\s*>)");
  ForbidPattern(kNarrowCast, "unchecked-index-cast",
                "silent narrowing cast to uint32_t in the synth layer; use "
                "util::CheckedIndexU32 (util/checked.h) so an over-scaled "
                "population throws instead of wrapping");
}

void FileRules::CheckTraceBufferInCdn() {
  if (!StartsWith(path(), "src/cdn/")) return;
  // A TraceBuffer declaration (member, local, global) or by-value return
  // type in the simulator materializes a whole trace in RAM — the sharded
  // engine's contract is that records stream through trace::RecordSink.
  // References and pointers (read-only views of caller-owned buffers) are
  // fine and do not match.
  static const std::regex kDeclOrReturn(
      R"(\bTraceBuffer\s+[A-Za-z_][A-Za-z0-9_:]*\s*[;={(])");
  ForbidPattern(kDeclOrReturn, "tracebuffer-in-cdn",
                "trace::TraceBuffer members/returns are banned in src/cdn/; "
                "emit records through trace::RecordSink (trace/sink.h) "
                "instead of materializing a buffer");
}

void FileRules::CheckUnorderedIteration() {
  if (!InLibrary(path())) return;
  // Pass 1: names declared with an unordered container type anywhere in
  // this file or its sibling header (members, locals, globals).
  std::set<std::string> unordered_names;
  static const std::regex kUnorderedType(
      R"(std::unordered_(map|set|multimap|multiset)\s*<)");
  for (const std::string* source : {&f_.flat, &f_.decl_flat}) {
    const std::string& text = *source;
    for (auto it =
             std::sregex_iterator(text.begin(), text.end(), kUnorderedType);
         it != std::sregex_iterator(); ++it) {
      // Balance the template angle brackets, then read the declared name.
      std::size_t pos = static_cast<std::size_t>(it->position(0)) +
                        static_cast<std::size_t>(it->length(0));
      int depth = 1;
      while (pos < text.size() && depth > 0) {
        if (text[pos] == '<') ++depth;
        if (text[pos] == '>') --depth;
        ++pos;
      }
      while (pos < text.size() &&
             (std::isspace(static_cast<unsigned char>(text[pos])) != 0 ||
              text[pos] == '&' || text[pos] == '*')) {
        ++pos;
      }
      if (text.compare(pos, 6, "const ") == 0) pos += 6;
      std::string name;
      while (pos < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[pos])) != 0 ||
              text[pos] == '_')) {
        name += text[pos++];
      }
      while (pos < text.size() &&
             std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
        ++pos;
      }
      // `std::unordered_map<...> Foo(` is a function decl, not state.
      if (!name.empty() && (pos >= text.size() || text[pos] != '(')) {
        unordered_names.insert(name);
      }
    }
  }
  if (unordered_names.empty()) return;

  // Pass 2: range-based for loops whose range resolves to one of those
  // names and whose body accumulates.
  static const std::regex kFor(R"(\bfor\s*\()");
  for (auto it = std::sregex_iterator(f_.flat.begin(), f_.flat.end(), kFor);
       it != std::sregex_iterator(); ++it) {
    std::size_t pos =
        static_cast<std::size_t>(it->position(0)) + it->length(0);
    const std::size_t at = static_cast<std::size_t>(it->position(0));
    // Find the range-for ':' at paren depth 1 (skipping '::').
    int depth = 1;
    std::size_t colon = std::string::npos;
    std::size_t close = std::string::npos;
    for (std::size_t p = pos; p < f_.flat.size(); ++p) {
      const char c = f_.flat[p];
      if (c == '(') ++depth;
      if (c == ')') {
        --depth;
        if (depth == 0) {
          close = p;
          break;
        }
      }
      if (c == ';') break;  // classic for loop
      if (c == ':' && depth == 1 && colon == std::string::npos &&
          (p + 1 >= f_.flat.size() || f_.flat[p + 1] != ':') &&
          (p == 0 || f_.flat[p - 1] != ':')) {
        colon = p;
      }
    }
    if (colon == std::string::npos || close == std::string::npos) continue;
    std::string range = f_.flat.substr(colon + 1, close - colon - 1);
    range.erase(
        std::remove_if(range.begin(), range.end(),
                       [](unsigned char c) { return std::isspace(c) != 0; }),
        range.end());
    if (range.empty() || range.back() == ')') continue;  // call expression
    // Last component of a member/scope chain.
    const std::size_t cut = range.find_last_of(".>:");
    const std::string base =
        cut == std::string::npos ? range : range.substr(cut + 1);
    if (unordered_names.count(base) == 0) continue;
    // Loop body: braces (or single statement) after the closing paren.
    std::size_t body_begin = close + 1;
    while (body_begin < f_.flat.size() &&
           std::isspace(static_cast<unsigned char>(f_.flat[body_begin])) !=
               0) {
      ++body_begin;
    }
    std::size_t body_end = body_begin;
    if (body_begin < f_.flat.size() && f_.flat[body_begin] == '{') {
      int braces = 1;
      for (body_end = body_begin + 1;
           body_end < f_.flat.size() && braces > 0; ++body_end) {
        if (f_.flat[body_end] == '{') ++braces;
        if (f_.flat[body_end] == '}') --braces;
      }
    } else {
      body_end = f_.flat.find(';', body_begin);
      if (body_end == std::string::npos) body_end = f_.flat.size();
    }
    const std::string body =
        f_.flat.substr(body_begin, body_end - body_begin);
    static const std::regex kAccumulate(
        R"(\+=|\bpush_back\s*\(|\bemplace_back\s*\()");
    if (std::regex_search(body, kAccumulate)) {
      sink_.Report(f_.line_of[at], f_.col_of[at], "unordered-iter",
                   "iteration over unordered container '" + base +
                       "' accumulates in implementation-defined order; sort "
                       "the keys first or prove order-insensitivity and "
                       "annotate with // atlas-lint: allow(unordered-iter)");
    }
  }
}

void FileRules::CheckPerRecordInHotPath() {
  if (!StartsWith(path(), "src/analysis/") &&
      !StartsWith(path(), "src/cdn/")) {
    return;
  }
  // A member call on the one-record-at-a-time adapters from trace/block.h.
  // Requiring `.` or `->` before the name keeps declarations and free
  // functions that merely share the name out of scope; matching on the
  // flattened view catches calls split across lines.
  static const std::regex kPerRecordCall(
      R"((\.|->)\s*(NextRecord|PushRecord)\s*\()");
  for (auto it = std::sregex_iterator(f_.flat.begin(), f_.flat.end(),
                                      kPerRecordCall);
       it != std::sregex_iterator(); ++it) {
    const std::size_t at = static_cast<std::size_t>(it->position(2));
    sink_.Report(f_.line_of[at], f_.col_of[at], "perrecord-in-hotpath",
                 "per-record adapter call '" + (*it)[2].str() +
                     "()' in a hot-path layer; stream whole SoA RecordBlocks "
                     "(BlockSource::NextBlock / BlockSink::WriteBlock, "
                     "trace/block.h) — compatibility shims annotate with "
                     "// atlas-lint: allow(perrecord-in-hotpath)");
  }
}

void FileRules::CheckCkptUnversionedBlob() {
  if (!InLibrary(path())) return;
  // The codec itself is the one place allowed to touch raw bytes.
  if (StartsWith(path(), "src/ckpt/")) return;
  // A SaveState-family *definition*: match the name, balance the parameter
  // list, then skip trailing specifiers (const/final/override/noexcept) to
  // the body '{'. Declarations and call sites end in ';', ',' or ')' and
  // are skipped. Raw stream writes inside the body bypass the Writer's
  // CRC-stamped, versioned section framing — a checkpoint written that way
  // restores wrong-but-plausible after any layout change.
  static const std::regex kSaveFn(R"(\bSave\w*State\s*\()");
  static const std::regex kRawWrite(R"((\.|->)\s*write\s*\(|\bfwrite\s*\()");
  for (auto it =
           std::sregex_iterator(f_.flat.begin(), f_.flat.end(), kSaveFn);
       it != std::sregex_iterator(); ++it) {
    std::size_t pos = static_cast<std::size_t>(it->position(0)) +
                      static_cast<std::size_t>(it->length(0));
    int depth = 1;
    while (pos < f_.flat.size() && depth > 0) {
      if (f_.flat[pos] == '(') ++depth;
      if (f_.flat[pos] == ')') --depth;
      ++pos;
    }
    while (pos < f_.flat.size() && f_.flat[pos] != '{' &&
           f_.flat[pos] != ';' && f_.flat[pos] != '=' &&
           f_.flat[pos] != ',' && f_.flat[pos] != ')') {
      ++pos;
    }
    if (pos >= f_.flat.size() || f_.flat[pos] != '{') continue;
    const std::size_t body_begin = pos + 1;
    int braces = 1;
    std::size_t body_end = body_begin;
    while (body_end < f_.flat.size() && braces > 0) {
      if (f_.flat[body_end] == '{') ++braces;
      if (f_.flat[body_end] == '}') --braces;
      ++body_end;
    }
    const std::string body =
        f_.flat.substr(body_begin, body_end - body_begin);
    for (auto w = std::sregex_iterator(body.begin(), body.end(), kRawWrite);
         w != std::sregex_iterator(); ++w) {
      const std::size_t at =
          body_begin + static_cast<std::size_t>(w->position(0));
      sink_.Report(f_.line_of[at], f_.col_of[at], "ckpt-unversioned-blob",
                   "raw stream write inside a SaveState implementation; "
                   "checkpoint blobs must go through ckpt::Writer's typed, "
                   "versioned section API (see ckpt/checkpoint.h)");
    }
  }
}

}  // namespace

void RunFileRules(const FileIndex& file, Sink& sink) {
  FileRules(file, sink).Run();
}

}  // namespace atlas::lint
