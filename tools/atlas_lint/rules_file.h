// atlas-lint per-file rules: every check that needs only one translation
// unit (plus its sibling-header declaration context). The cross-TU rules
// live in rules_project.h.
#pragma once

#include "atlas_lint/diagnostics.h"
#include "atlas_lint/index.h"

namespace atlas::lint {

// Runs the full per-file rule set for `file`, reporting through `sink`.
// Scoping (which path prefixes each rule applies to) is internal to the
// rules; callers always run the whole set.
void RunFileRules(const FileIndex& file, Sink& sink);

}  // namespace atlas::lint
