// atlas-lint phase-2 cross-TU rules. These see the whole ProjectIndex:
//
//   layer-dag                 include edges must follow the architectural
//                             DAG util -> {stats, trace} -> synth ->
//                             {cdn, cluster} -> {analysis, energy} -> ckpt;
//                             a violation names the offending include chain.
//   lock-order                the global lock-acquisition-order graph
//                             (built from observed MutexLock nestings,
//                             with mutexes resolved to their declaring
//                             file) must be acyclic; a cycle reports every
//                             edge with its witness path.
//   unguarded-parallel-write  a mutable field (trailing-underscore member)
//                             written inside a ParallelFor/ParallelReduce
//                             lambda must be ATLAS_GUARDED_BY, atomic, or
//                             carry a justified allow.
//   fp-accumulation-order     floating-point +=/-= inside ParallelFor/
//                             ParallelReduce or ForEach lambdas accumulates
//                             in a thread- or table-layout-dependent order
//                             and threatens the golden-digest determinism
//                             proofs.
//   unused-suppression        an allow() pragma that suppressed nothing in
//                             the whole run is stale and must be deleted
//                             (runs last; consumes the Sink usage record).
#pragma once

#include <vector>

#include "atlas_lint/diagnostics.h"
#include "atlas_lint/index.h"

namespace atlas::lint {

// Rank of a src/ layer in the architectural DAG, or -1 for unknown paths.
// util=0, stats=trace=1, synth=2, cdn=cluster=3, analysis=energy=4, ckpt=5.
int LayerRank(const std::string& layer);

// Runs every project rule. `sinks[i]` belongs to `index.files[i]` and must
// already contain the per-file rule results (unused-suppression needs the
// full suppression-usage record, so this is the last phase).
void RunProjectRules(const ProjectIndex& index, std::vector<Sink>& sinks);

}  // namespace atlas::lint
