// atlas_trace — command-line trace utility.
//
//   atlas_trace info   <trace.bin>                 summary + per-publisher stats
//   atlas_trace head   <trace.bin> [--n 20]        print the first records
//   atlas_trace tocsv  <trace.bin> <out.csv>       binary -> CSV
//   atlas_trace tobin  <trace.csv> <out.bin>       CSV -> binary
//   atlas_trace filter <in.bin> <out.bin> [--publisher N] [--class video]
//                      [--from-ms T] [--to-ms T]   subset a trace
//   atlas_trace gen    <out.bin> [--scale 0.05] [--seed 42] [--threads N]
//                                                  generate a fresh study trace
//
// The binary format is the library's versioned little-endian layout; CSV
// files are directly loadable in pandas/DuckDB.
#include <fstream>
#include <iostream>
#include <map>

#include "analysis/composition.h"
#include "cdn/scenario.h"
#include "trace/content_class.h"
#include "trace/trace_io.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/par.h"
#include "util/str.h"
#include "util/time.h"

namespace {

using namespace atlas;

int Usage(const char* prog) {
  std::cerr << "usage: " << prog
            << " <info|head|tocsv|tobin|filter|gen> <args...>\n"
               "  info   <trace.bin>\n"
               "  head   <trace.bin> [--n 20]\n"
               "  tocsv  <trace.bin> <out.csv>\n"
               "  tobin  <trace.csv> <out.bin>\n"
               "  filter <in.bin> <out.bin> [--publisher N] [--class C] "
               "[--from-ms T] [--to-ms T]\n"
               "  gen    <out.bin> [--scale 0.05] [--seed 42] [--threads N]\n";
  return 2;
}

int CmdInfo(const std::string& path) {
  const auto trace = trace::ReadBinaryFile(path);
  std::cout << path << ": " << trace.size() << " records, "
            << trace.UniqueUsers() << " users, " << trace.UniqueObjects()
            << " objects, "
            << util::FormatBytes(static_cast<double>(trace.TotalBytes()))
            << " delivered, span "
            << util::FormatDuration(trace.EndMs() - trace.StartMs()) << "\n\n";
  // Per-publisher breakdown.
  std::map<std::uint32_t, trace::TraceBuffer> by_pub;
  for (const auto& r : trace.records()) by_pub[r.publisher_id].Add(r);
  std::cout << util::PadRight("publisher", 11) << util::PadLeft("records", 10)
            << util::PadLeft("users", 9) << util::PadLeft("objects", 9)
            << util::PadLeft("bytes", 11) << util::PadLeft("video%", 8)
            << util::PadLeft("image%", 8) << '\n';
  std::cout << std::string(66, '-') << '\n';
  for (const auto& [pub, sub] : by_pub) {
    const auto comp =
        analysis::ComputeComposition(sub, std::to_string(pub));
    std::cout << util::PadRight(std::to_string(pub), 11)
              << util::PadLeft(util::FormatCount(static_cast<double>(sub.size())), 10)
              << util::PadLeft(
                     util::FormatCount(static_cast<double>(sub.UniqueUsers())), 9)
              << util::PadLeft(
                     util::FormatCount(static_cast<double>(sub.UniqueObjects())),
                     9)
              << util::PadLeft(
                     util::FormatBytes(static_cast<double>(sub.TotalBytes())), 11)
              << util::PadLeft(
                     util::FormatPercent(
                         comp.RequestShare(trace::ContentClass::kVideo), 1),
                     8)
              << util::PadLeft(
                     util::FormatPercent(
                         comp.RequestShare(trace::ContentClass::kImage), 1),
                     8)
              << '\n';
  }
  return 0;
}

int CmdHead(const std::string& path, int argc, char** argv) {
  util::Flags flags;
  flags.DefineInt("n", 20, "records to print");
  flags.Parse(argc, argv);
  const auto trace = trace::ReadBinaryFile(path);
  const auto n = std::min<std::size_t>(
      static_cast<std::size_t>(flags.GetInt("n")), trace.size());
  std::cout << util::PadRight("time", 14) << util::PadRight("pub", 5)
            << util::PadRight("type", 6) << util::PadLeft("size", 11)
            << util::PadLeft("sent", 11) << util::PadLeft("code", 6)
            << util::PadLeft("cache", 7) << "  url_hash\n";
  std::cout << std::string(78, '-') << '\n';
  for (std::size_t i = 0; i < n; ++i) {
    const auto& r = trace[i];
    char hash[20];
    std::snprintf(hash, sizeof(hash), "%016llx",
                  static_cast<unsigned long long>(r.url_hash));
    std::cout << util::PadRight(util::FormatTimestamp(r.timestamp_ms), 14)
              << util::PadRight(std::to_string(r.publisher_id), 5)
              << util::PadRight(trace::ToString(r.file_type), 6)
              << util::PadLeft(
                     util::FormatBytes(static_cast<double>(r.object_size)), 11)
              << util::PadLeft(
                     util::FormatBytes(static_cast<double>(r.response_bytes)),
                     11)
              << util::PadLeft(std::to_string(r.response_code), 6)
              << util::PadLeft(trace::ToString(r.cache_status), 7) << "  "
              << hash << '\n';
  }
  return 0;
}

int CmdToCsv(const std::string& in, const std::string& out) {
  const auto trace = trace::ReadBinaryFile(in);
  std::ofstream stream(out);
  if (!stream) {
    std::cerr << "cannot open " << out << '\n';
    return 1;
  }
  trace::WriteCsv(trace, stream);
  std::cout << "wrote " << trace.size() << " records to " << out << '\n';
  return 0;
}

int CmdToBin(const std::string& in, const std::string& out) {
  std::ifstream stream(in);
  if (!stream) {
    std::cerr << "cannot open " << in << '\n';
    return 1;
  }
  const auto trace = trace::ReadCsv(stream);
  trace::WriteBinaryFile(trace, out);
  std::cout << "wrote " << trace.size() << " records to " << out << '\n';
  return 0;
}

int CmdFilter(const std::string& in, const std::string& out, int argc,
              char** argv) {
  util::Flags flags;
  flags.DefineInt("publisher", -1, "keep only this publisher id");
  flags.DefineString("class", "", "keep only this class (video/image/other)");
  flags.DefineInt("from-ms", -1, "keep records at/after this timestamp");
  flags.DefineInt("to-ms", -1, "keep records before this timestamp");
  flags.Parse(argc, argv);
  auto trace = trace::ReadBinaryFile(in);
  const std::int64_t pub = flags.GetInt("publisher");
  const std::string cls_name = flags.GetString("class");
  const std::int64_t from = flags.GetInt("from-ms");
  const std::int64_t to = flags.GetInt("to-ms");
  const bool use_class = !cls_name.empty();
  const trace::ContentClass cls =
      use_class ? trace::ContentClassFromString(cls_name)
                : trace::ContentClass::kOther;
  const auto filtered = trace.Filter([&](const trace::LogRecord& r) {
    if (pub >= 0 && r.publisher_id != static_cast<std::uint32_t>(pub)) {
      return false;
    }
    if (use_class && trace::ClassOf(r.file_type) != cls) return false;
    if (from >= 0 && r.timestamp_ms < from) return false;
    if (to >= 0 && r.timestamp_ms >= to) return false;
    return true;
  });
  trace::WriteBinaryFile(filtered, out);
  std::cout << "kept " << filtered.size() << " / " << trace.size()
            << " records -> " << out << '\n';
  return 0;
}

int CmdGen(const std::string& out, int argc, char** argv) {
  util::Flags flags;
  flags.DefineDouble("scale", 0.05, "population scale");
  flags.DefineInt("seed", 42, "RNG seed");
  flags.DefineInt("threads", 0,
                  "worker threads (0 = hardware concurrency); the trace is "
                  "identical at any value");
  flags.Parse(argc, argv);
  util::SetLogLevel(util::LogLevel::kWarn);
  util::SetDefaultThreads(static_cast<int>(flags.GetInt("threads")));
  cdn::SimulatorConfig config;
  const auto scenario = cdn::Scenario::PaperStudy(
      flags.GetDouble("scale"), config,
      static_cast<std::uint64_t>(flags.GetInt("seed")));
  const auto merged = scenario.MergedTrace();
  trace::WriteBinaryFile(merged, out);
  std::cout << "generated " << merged.size() << " records -> " << out << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage(argv[0]);
  const std::string cmd = argv[1];
  try {
    if (cmd == "info") return CmdInfo(argv[2]);
    if (cmd == "head") return CmdHead(argv[2], argc - 2, argv + 2);
    if (cmd == "tocsv" && argc >= 4) return CmdToCsv(argv[2], argv[3]);
    if (cmd == "tobin" && argc >= 4) return CmdToBin(argv[2], argv[3]);
    if (cmd == "filter" && argc >= 4) {
      return CmdFilter(argv[2], argv[3], argc - 3, argv + 3);
    }
    if (cmd == "gen") return CmdGen(argv[2], argc - 2, argv + 2);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return Usage(argv[0]);
}
