// atlas_trace — command-line trace utility.
//
//   atlas_trace info    <trace.bin> [--stream]     summary + per-publisher stats
//   atlas_trace head    <trace.bin> [--n 20]       print the first records
//   atlas_trace tocsv   <trace.bin> <out.csv>      binary -> CSV
//   atlas_trace tobin   <trace.csv> <out.bin>      CSV -> binary
//   atlas_trace filter  <in.bin> <out.bin> [--publisher N] [--class video]
//                       [--from-ms T] [--to-ms T]  subset a trace
//   atlas_trace convert <in.bin> <out.bin> [--to v2] [--block-records N]
//                                                  rewrite between formats
//   atlas_trace gen     <out.bin> [--scale 0.05] [--seed 42] [--threads N]
//                       [--format v1]              generate a fresh study trace
//   atlas_trace simulate <out.v2> [--spec scenario.toml] [--scale 0.05]
//                       [--seed 42] [--threads N]
//                       [--peer-fill] [--epoch-min 60]
//                       [--energy-report]
//                       [--checkpoint-every N] [--checkpoint-file F]
//                       [--resume F]            run the paper study fully
//                                                  out-of-core: the sharded
//                                                  engine streams the merged
//                                                  trace straight to a v2
//                                                  file, so peak memory is
//                                                  independent of trace length.
//                                                  --spec runs a declarative
//                                                  scenario file instead
//                                                  (scenarios/*.toml);
//                                                  --scale/--seed override
//                                                  the spec's values, other
//                                                  config flags are rejected
//                                                  (the file owns the config)
//   atlas_trace verify  <trace.v2>                 walk every block CRC and
//                                                  report how much of the
//                                                  file is intact
//   atlas_trace analyze <trace.bin> [--spec scenario.toml] [--report F]
//                       [--threads N] [--no-trends]
//                       [--checkpoint-every N] [--checkpoint-file F]
//                       [--resume F]               stream the full analysis
//                                                  suite over a trace file;
//                                                  --spec takes the publisher
//                                                  registry from a scenario
//                                                  file instead of the
//                                                  default paper-study sites
//
// Every reading command accepts both the v1 flat format and the v2 block
// format (trace/stream.h). `info --stream`, v1->v2 `convert`, `simulate`,
// and `analyze` run in bounded memory — one block at a time — so they work
// on traces larger than RAM. CSV files are directly loadable in pandas/DuckDB.
//
// Crash recovery: `simulate --checkpoint-every N` snapshots the engine,
// generators, and the trace writer's partial tail block every N epoch
// barriers (atomic tmp+rename, see ckpt/checkpoint.h). After a crash,
// `simulate --resume <snapshot>` truncates the torn output back to the
// snapshot's flushed prefix and continues — the finished trace is
// byte-identical to an uninterrupted run. `analyze --checkpoint-every N`
// does the same for the analysis pass (cursor = records consumed).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <span>
#include <unordered_set>

#include "analysis/suite.h"
#include "cdn/scenario.h"
#include "cdn/scenario_spec.h"
#include "ckpt/checkpoint.h"
#include "energy/run.h"
#include "trace/content_class.h"
#include "trace/stream.h"
#include "trace/trace_io.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/par.h"
#include "util/str.h"
#include "util/time.h"

namespace {

using namespace atlas;

int Usage(const char* prog) {
  std::cerr << "usage: " << prog
            << " <info|head|tocsv|tobin|filter|convert|gen|simulate|verify|"
               "analyze> <args...>\n"
               "  info    <trace.bin> [--stream]\n"
               "  head    <trace.bin> [--n 20]\n"
               "  tocsv   <trace.bin> <out.csv>\n"
               "  tobin   <trace.csv> <out.bin>\n"
               "  filter  <in.bin> <out.bin> [--publisher N] [--class C] "
               "[--from-ms T] [--to-ms T]\n"
               "  convert <in.bin> <out.bin> [--to v2] [--block-records N]\n"
               "  gen     <out.bin> [--scale 0.05] [--seed 42] [--threads N] "
               "[--format v1]\n"
               "  simulate <out.v2> [--spec scenario.toml] [--scale 0.05] "
               "[--seed 42] [--threads N] [--peer-fill] [--epoch-min 60] "
               "[--energy-report] "
               "[--checkpoint-every N] [--checkpoint-file F] [--resume F]\n"
               "  verify  <trace.v2>\n"
               "  analyze <trace.bin> [--spec scenario.toml] [--report F] "
               "[--threads N] [--no-trends] [--checkpoint-every N] "
               "[--checkpoint-file F] [--resume F]\n";
  return 2;
}

// Everything `info` prints, gathered in one pass over a record stream. The
// per-user/object sets are O(distinct), not O(records), so the streaming
// path is bounded by the population, never the trace length.
struct InfoStats {
  struct PerPublisher {
    std::uint64_t records = 0;
    std::uint64_t bytes = 0;
    std::uint64_t video_requests = 0;
    std::uint64_t image_requests = 0;
    std::unordered_set<std::uint32_t> users;
    std::unordered_set<std::uint64_t> objects;
  };
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;
  std::int64_t start_ms = 0;
  std::int64_t end_ms = 0;
  std::unordered_set<std::uint32_t> users;
  std::unordered_set<std::uint64_t> objects;
  std::map<std::uint32_t, PerPublisher> by_publisher;  // ordered for output

  void Add(const trace::LogRecord& r) {
    if (records == 0) {
      start_ms = end_ms = r.timestamp_ms;
    } else {
      start_ms = std::min(start_ms, r.timestamp_ms);
      end_ms = std::max(end_ms, r.timestamp_ms);
    }
    ++records;
    bytes += r.response_bytes;
    users.insert(r.user_id);
    objects.insert(r.url_hash);
    auto& pub = by_publisher[r.publisher_id];
    ++pub.records;
    pub.bytes += r.response_bytes;
    pub.users.insert(r.user_id);
    pub.objects.insert(r.url_hash);
    const auto cls = trace::ClassOf(r.file_type);
    if (cls == trace::ContentClass::kVideo) ++pub.video_requests;
    if (cls == trace::ContentClass::kImage) ++pub.image_requests;
  }
};

int CmdInfo(const std::string& path, int argc, char** argv) {
  util::Flags flags;
  flags.DefineBool("stream", false,
                   "single-pass bounded-memory scan (works on traces larger "
                   "than RAM, v1 or v2)");
  flags.Parse(argc, argv);

  InfoStats stats;
  if (flags.GetBool("stream")) {
    trace::TraceFileReader source(path);
    for (auto chunk = source.NextChunk(); !chunk.empty();
         chunk = source.NextChunk()) {
      for (const auto& r : chunk) stats.Add(r);
    }
  } else {
    const auto trace = trace::ReadAnyBinaryFile(path);
    for (const auto& r : trace.records()) stats.Add(r);
  }

  std::cout << path << ": " << stats.records << " records, "
            << stats.users.size() << " users, " << stats.objects.size()
            << " objects, "
            << util::FormatBytes(static_cast<double>(stats.bytes))
            << " delivered, span "
            << util::FormatDuration(stats.end_ms - stats.start_ms) << "\n\n";
  std::cout << util::PadRight("publisher", 11) << util::PadLeft("records", 10)
            << util::PadLeft("users", 9) << util::PadLeft("objects", 9)
            << util::PadLeft("bytes", 11) << util::PadLeft("video%", 8)
            << util::PadLeft("image%", 8) << '\n';
  std::cout << std::string(66, '-') << '\n';
  for (const auto& [pub, sub] : stats.by_publisher) {
    const double n = static_cast<double>(sub.records);
    std::cout << util::PadRight(std::to_string(pub), 11)
              << util::PadLeft(util::FormatCount(static_cast<double>(sub.records)), 10)
              << util::PadLeft(
                     util::FormatCount(static_cast<double>(sub.users.size())), 9)
              << util::PadLeft(
                     util::FormatCount(static_cast<double>(sub.objects.size())),
                     9)
              << util::PadLeft(
                     util::FormatBytes(static_cast<double>(sub.bytes)), 11)
              << util::PadLeft(
                     util::FormatPercent(
                         n == 0.0 ? 0.0
                                  : static_cast<double>(sub.video_requests) / n,
                         1),
                     8)
              << util::PadLeft(
                     util::FormatPercent(
                         n == 0.0 ? 0.0
                                  : static_cast<double>(sub.image_requests) / n,
                         1),
                     8)
              << '\n';
  }
  return 0;
}

int CmdHead(const std::string& path, int argc, char** argv) {
  util::Flags flags;
  flags.DefineInt("n", 20, "records to print");
  flags.Parse(argc, argv);
  const auto trace = trace::ReadAnyBinaryFile(path);
  const auto n = std::min<std::size_t>(
      static_cast<std::size_t>(flags.GetInt("n")), trace.size());
  std::cout << util::PadRight("time", 14) << util::PadRight("pub", 5)
            << util::PadRight("type", 6) << util::PadLeft("size", 11)
            << util::PadLeft("sent", 11) << util::PadLeft("code", 6)
            << util::PadLeft("cache", 7) << "  url_hash\n";
  std::cout << std::string(78, '-') << '\n';
  for (std::size_t i = 0; i < n; ++i) {
    const auto& r = trace[i];
    char hash[20];
    std::snprintf(hash, sizeof(hash), "%016llx",
                  static_cast<unsigned long long>(r.url_hash));
    std::cout << util::PadRight(util::FormatTimestamp(r.timestamp_ms), 14)
              << util::PadRight(std::to_string(r.publisher_id), 5)
              << util::PadRight(trace::ToString(r.file_type), 6)
              << util::PadLeft(
                     util::FormatBytes(static_cast<double>(r.object_size)), 11)
              << util::PadLeft(
                     util::FormatBytes(static_cast<double>(r.response_bytes)),
                     11)
              << util::PadLeft(std::to_string(r.response_code), 6)
              << util::PadLeft(trace::ToString(r.cache_status), 7) << "  "
              << hash << '\n';
  }
  return 0;
}

int CmdToCsv(const std::string& in, const std::string& out) {
  const auto trace = trace::ReadAnyBinaryFile(in);
  std::ofstream stream(out);
  if (!stream) {
    std::cerr << "cannot open " << out << '\n';
    return 1;
  }
  trace::WriteCsv(trace, stream);
  std::cout << "wrote " << trace.size() << " records to " << out << '\n';
  return 0;
}

int CmdToBin(const std::string& in, const std::string& out) {
  std::ifstream stream(in);
  if (!stream) {
    std::cerr << "cannot open " << in << '\n';
    return 1;
  }
  const auto trace = trace::ReadCsv(stream);
  trace::WriteBinaryFile(trace, out);
  std::cout << "wrote " << trace.size() << " records to " << out << '\n';
  return 0;
}

int CmdFilter(const std::string& in, const std::string& out, int argc,
              char** argv) {
  util::Flags flags;
  flags.DefineInt("publisher", -1, "keep only this publisher id");
  flags.DefineString("class", "", "keep only this class (video/image/other)");
  flags.DefineInt("from-ms", -1, "keep records at/after this timestamp");
  flags.DefineInt("to-ms", -1, "keep records before this timestamp");
  flags.Parse(argc, argv);
  auto trace = trace::ReadAnyBinaryFile(in);
  const std::int64_t pub = flags.GetInt("publisher");
  const std::string cls_name = flags.GetString("class");
  const std::int64_t from = flags.GetInt("from-ms");
  const std::int64_t to = flags.GetInt("to-ms");
  const bool use_class = !cls_name.empty();
  const trace::ContentClass cls =
      use_class ? trace::ContentClassFromString(cls_name)
                : trace::ContentClass::kOther;
  const auto filtered = trace.Filter([&](const trace::LogRecord& r) {
    if (pub >= 0 && r.publisher_id != static_cast<std::uint32_t>(pub)) {
      return false;
    }
    if (use_class && trace::ClassOf(r.file_type) != cls) return false;
    if (from >= 0 && r.timestamp_ms < from) return false;
    if (to >= 0 && r.timestamp_ms >= to) return false;
    return true;
  });
  trace::WriteBinaryFile(filtered, out);
  std::cout << "kept " << filtered.size() << " / " << trace.size()
            << " records -> " << out << '\n';
  return 0;
}

int CmdConvert(const std::string& in, const std::string& out, int argc,
               char** argv) {
  util::Flags flags;
  flags.DefineString("to", "v2", "target format: v1 or v2");
  flags.DefineInt("block-records",
                  static_cast<std::int64_t>(trace::kDefaultBlockRecords),
                  "records per v2 block");
  flags.Parse(argc, argv);
  const std::string to = flags.GetString("to");
  const auto block_records =
      static_cast<std::size_t>(flags.GetInt("block-records"));
  if (to == "v2") {
    // Block-to-block streaming: bounded memory regardless of trace size.
    trace::TraceFileReader source(in, block_records);
    std::ofstream sink(out, std::ios::binary);
    if (!sink) {
      std::cerr << "cannot open " << out << '\n';
      return 1;
    }
    trace::TraceWriter writer(sink, block_records);
    for (auto chunk = source.NextChunk(); !chunk.empty();
         chunk = source.NextChunk()) {
      writer.Append(chunk);
    }
    writer.Finish();
    std::cout << "converted " << writer.written() << " records (v"
              << source.version() << " -> v2) -> " << out << '\n';
    return 0;
  }
  if (to == "v1") {
    // v1 needs its record count up front, so the trace is materialized.
    const auto trace = trace::ReadAnyBinaryFile(in);
    trace::WriteBinaryFile(trace, out);
    std::cout << "converted " << trace.size() << " records (-> v1) -> " << out
              << '\n';
    return 0;
  }
  std::cerr << "unknown --to format '" << to << "' (expected v1 or v2)\n";
  return 2;
}

int CmdGen(const std::string& out, int argc, char** argv) {
  util::Flags flags;
  flags.DefineDouble("scale", 0.05, "population scale");
  flags.DefineInt("seed", 42, "RNG seed");
  flags.DefineInt("threads", 0,
                  "worker threads (0 = hardware concurrency); the trace is "
                  "identical at any value");
  flags.DefineString("format", "v1", "output format: v1 (flat) or v2 (block)");
  flags.Parse(argc, argv);
  util::SetLogLevel(util::LogLevel::kWarn);
  util::SetDefaultThreads(static_cast<int>(flags.GetInt("threads")));
  const std::string format = flags.GetString("format");
  if (format != "v1" && format != "v2") {
    std::cerr << "unknown --format '" << format << "' (expected v1 or v2)\n";
    return 2;
  }
  cdn::SimulatorConfig config;
  auto profiles =
      synth::SiteProfile::PaperAdultSites(flags.GetDouble("scale"));
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed"));
  if (format == "v2") {
    // Fully out-of-core: the engine's merged stream goes straight to disk.
    std::ofstream stream(out, std::ios::binary);
    if (!stream) {
      std::cerr << "cannot open " << out << '\n';
      return 1;
    }
    trace::TraceWriter writer(stream);
    trace::WriterSink sink(writer);
    cdn::StreamScenario(std::move(profiles), config, seed, sink);
    writer.Finish();
    std::cout << "generated " << writer.written() << " records -> " << out
              << '\n';
    return 0;
  }
  // v1 needs its record count up front, so the merged trace is collected in
  // one buffer (still no second copy: the stream merges per-shard slices
  // directly into it).
  trace::TraceBuffer merged;
  trace::BufferSink sink(merged);
  cdn::StreamScenario(std::move(profiles), config, seed, sink);
  trace::WriteBinaryFile(merged, out);
  std::cout << "generated " << merged.size() << " records -> " << out << '\n';
  return 0;
}

int CmdSimulate(const std::string& out, int argc, char** argv) {
  util::Flags flags;
  flags.DefineString("spec", "",
                     "run this declarative scenario file (scenarios/*.toml) "
                     "instead of the paper study; --scale/--seed override "
                     "the spec, other config flags are rejected");
  flags.DefineDouble("scale", 0.05, "population scale");
  flags.DefineInt("seed", 42, "RNG seed");
  flags.DefineInt("threads", 0,
                  "worker threads (0 = hardware concurrency); the trace is "
                  "identical at any value");
  flags.DefineBool("peer-fill", false,
                   "serve edge misses from sibling data centers that hold "
                   "the object (epoch-snapshot lookups; see engine.h)");
  flags.DefineInt("epoch-min", 60,
                  "engine epoch length in minutes; trace-invariant, only "
                  "the peer-fill/origin split depends on it");
  flags.DefineInt("checkpoint-every", 0,
                  "snapshot the whole run every N epoch barriers (0 = off); "
                  "snapshots are trace-invariant and atomically committed");
  flags.DefineString("checkpoint-file", "",
                     "snapshot destination (default: <out>.ckpt)");
  flags.DefineString("resume", "",
                     "resume a killed run from this snapshot: the torn "
                     "output is truncated back to the snapshot's flushed "
                     "prefix and the run continues byte-identically");
  flags.DefineInt("synth-budget-mb", 0,
                  "per-site synth-table byte budget in MB (0 = profile "
                  "default, 256); catalogs/user tables past it switch to "
                  "lazy RNG-snapshot shards — trace-invariant");
  flags.DefineBool("energy-report", false,
                   "attach per-DC energy/dollar accounting ([energy] spec "
                   "table or defaults) and print the report after the run; "
                   "observation-only, the trace stays byte-identical");
  flags.Parse(argc, argv);
  util::SetLogLevel(util::LogLevel::kWarn);
  const std::int64_t epoch_min = flags.GetInt("epoch-min");
  if (epoch_min <= 0) {
    std::cerr << "--epoch-min must be > 0\n";
    return 2;
  }
  const std::int64_t every = flags.GetInt("checkpoint-every");
  if (every < 0) {
    std::cerr << "--checkpoint-every must be >= 0\n";
    return 2;
  }
  const std::string spec_path = flags.GetString("spec");
  std::optional<cdn::ScenarioSpec> spec;
  cdn::SimulatorConfig config;
  if (!spec_path.empty()) {
    // The scenario file owns the simulator config; only scale and seed may
    // be overridden from the command line (and the override feeds the spec
    // fingerprint, so a resume with different overrides fails loudly).
    for (const char* owned : {"peer-fill", "epoch-min", "synth-budget-mb"}) {
      if (flags.Provided(owned)) {
        std::cerr << "--" << owned
                  << " cannot be combined with --spec (the scenario file "
                     "owns the simulator config)\n";
        return 2;
      }
    }
    spec = cdn::ScenarioSpec::ParseFile(spec_path);
    if (flags.Provided("scale")) spec->scale = flags.GetDouble("scale");
    if (flags.Provided("seed")) {
      spec->seed = static_cast<std::uint64_t>(flags.GetInt("seed"));
    }
    spec->Validate();
    config = spec->BuildConfig();
  } else {
    config.peer_fill = flags.GetBool("peer-fill");
    config.epoch_ms = epoch_min * 60'000;
  }

  std::string ckpt_path = flags.GetString("checkpoint-file");
  if (ckpt_path.empty()) ckpt_path = out + ".ckpt";
  const std::string resume_path = flags.GetString("resume");

  // Fresh runs write `out` from scratch; resumed runs recover the torn v2
  // file (ResumedTraceFile truncates past the snapshot's flushed prefix)
  // and re-attach the writer with its saved partial tail block.
  std::ofstream stream;
  std::optional<trace::TraceWriter> fresh_writer;
  std::optional<ckpt::Reader> snapshot;
  std::optional<trace::ResumedTraceFile> resumed;
  cdn::CheckpointOptions ckpt_options;
  ckpt_options.every_epochs = static_cast<std::uint64_t>(every);
  ckpt_options.path = ckpt_path;
  trace::TraceWriter* writer = nullptr;
  if (!resume_path.empty()) {
    snapshot.emplace(ckpt::ReadCheckpointFile(resume_path));
    resumed.emplace(out, *snapshot);
    writer = &resumed->writer();
    ckpt_options.resume = &*snapshot;
    std::cout << "resuming " << out << " at " << writer->written()
              << " records\n";
  } else {
    stream.open(out, std::ios::binary);
    if (!stream) {
      std::cerr << "cannot open " << out << '\n';
      return 1;
    }
    fresh_writer.emplace(stream);
    writer = &*fresh_writer;
  }
  ckpt_options.save_extra = [&](ckpt::Writer& w) { writer->SaveState(w); };

  // Energy accounting rides the run as a pure observer: it joins the
  // checkpoint (its section is chained ahead of the writer state above) but
  // cannot shape a record, so the trace and its digests are unchanged.
  std::optional<energy::EnergyAccumulator> energy_acc;
  if (flags.GetBool("energy-report")) {
    energy_acc.emplace();
    ckpt_options = energy::AttachEnergy(*energy_acc, config, ckpt_options);
  }

  // Progress/ETA on the checkpoint cadence: each committed snapshot reports
  // how far into the simulated week the run is and extrapolates the wall
  // time remaining. Long scale>=1 runs are no longer silent.
  const std::uint64_t total_epochs = static_cast<std::uint64_t>(
      (util::kMillisPerWeek + config.epoch_ms - 1) / config.epoch_ms);
  const auto started = std::chrono::steady_clock::now();
  if (every > 0) {
    ckpt_options.after_save = [&](std::uint64_t barriers_done) {
      const double elapsed_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started)
              .count();
      const double frac = total_epochs == 0
                              ? 1.0
                              : static_cast<double>(barriers_done) /
                                    static_cast<double>(total_epochs);
      const double eta_s =
          frac > 0.0 ? elapsed_s * (1.0 - frac) / frac : 0.0;
      std::cerr << "checkpoint @ epoch " << barriers_done << "/"
                << total_epochs << " (" << util::FormatPercent(frac, 0)
                << "), " << writer->written() << " records, elapsed "
                << static_cast<std::uint64_t>(elapsed_s) << "s, eta "
                << static_cast<std::uint64_t>(eta_s) << "s\n";
      return true;
    };
  }

  trace::WriterSink sink(*writer);
  cdn::ScenarioStreamResult result;
  if (spec) {
    result = cdn::StreamScenario(*spec, config, sink,
                                 static_cast<int>(flags.GetInt("threads")),
                                 ckpt_options);
  } else {
    auto sites = synth::SiteProfile::PaperAdultSites(flags.GetDouble("scale"));
    const std::int64_t budget_mb = flags.GetInt("synth-budget-mb");
    if (budget_mb < 0) {
      std::cerr << "--synth-budget-mb must be >= 0\n";
      return 2;
    }
    if (budget_mb > 0) {
      for (auto& site : sites) {
        site.synth_table_budget_bytes =
            static_cast<std::uint64_t>(budget_mb) << 20;
      }
    }
    result = cdn::StreamScenario(
        sites, config, static_cast<std::uint64_t>(flags.GetInt("seed")), sink,
        static_cast<int>(flags.GetInt("threads")), ckpt_options);
  }
  writer->Finish();

  std::cout << "simulated " << writer->written() << " records -> " << out
            << " (v2)\n\n";
  std::cout << util::PadRight("site", 8) << util::PadLeft("records", 10)
            << util::PadLeft("edge-hit", 10) << util::PadLeft("origin", 11)
            << util::PadLeft("peer", 10) << '\n';
  std::cout << std::string(49, '-') << '\n';
  for (std::size_t i = 0; i < result.site_results.size(); ++i) {
    const auto& r = result.site_results[i];
    std::cout << util::PadRight(
                     result.registry.Get(static_cast<std::uint32_t>(i)).name,
                     8)
              << util::PadLeft(util::FormatCount(static_cast<double>(r.records)),
                               10)
              << util::PadLeft(util::FormatPercent(r.edge_stats.HitRatio(), 1),
                               10)
              << util::PadLeft(
                     util::FormatBytes(static_cast<double>(r.origin.bytes)), 11)
              << util::PadLeft(
                     util::FormatBytes(static_cast<double>(r.peer_bytes)), 10)
              << '\n';
  }
  const auto& t = result.totals;
  std::cout << "\ntotals: edge hit ratio "
            << util::FormatPercent(t.edge_stats.HitRatio(), 1)
            << ", origin "
            << util::FormatBytes(static_cast<double>(t.origin.bytes))
            << ", browser-absorbed " << t.browser_fresh_hits
            << " requests, " << t.revalidations << " revalidations\n";

  if (energy_acc) {
    const energy::EnergyModel model(spec ? spec->energy : cdn::EnergySpec{});
    const energy::EnergyReport report = energy_acc->Report(model);
    std::cout << "\nenergy (" << report.epochs << " epochs, "
              << (report.span_ms / 60'000) << " simulated minutes)\n";
    std::cout << util::PadRight("dc", 4) << util::PadLeft("served", 11)
              << util::PadLeft("duty", 7) << util::PadLeft("server", 10)
              << util::PadLeft("network", 10) << util::PadLeft("storage", 10)
              << util::PadLeft("kWh", 9) << util::PadLeft("USD", 9) << '\n';
    std::cout << std::string(70, '-') << '\n';
    for (const auto& dc : report.dcs) {
      const auto& e = dc.energy;
      std::cout << util::PadRight("dc" + std::to_string(dc.dc), 4)
                << util::PadLeft(util::FormatBytes(
                                     static_cast<double>(dc.served_bytes)),
                                 11)
                << util::PadLeft(util::FormatPercent(dc.duty, 1), 7)
                << util::PadLeft(util::FormatCount(e.server_j) + "J", 10)
                << util::PadLeft(util::FormatCount(e.network_j) + "J", 10)
                << util::PadLeft(util::FormatCount(e.storage_j) + "J", 10)
                << util::PadLeft(util::FormatCount(e.TotalKwh()), 9)
                << util::PadLeft(util::FormatCount(e.TotalUsd()), 9) << '\n';
    }
    const auto& te = report.total;
    std::cout << "total: " << util::FormatCount(te.TotalJoules())
              << "J = " << util::FormatCount(te.TotalKwh()) << " kWh, $"
              << util::FormatCount(te.TotalUsd()) << " ($"
              << util::FormatCount(te.electricity_usd) << " electricity + $"
              << util::FormatCount(te.transit_usd) << " transit)\n";
  }
  return 0;
}

int CmdVerify(const std::string& path) {
  // Never throws on corruption: the scan stops at the first defect and
  // reports the intact prefix — the same walk crash recovery truncates to.
  const auto scan = trace::ScanV2File(path);
  std::cout << path << ": " << scan.valid_records << " valid records in "
            << scan.valid_blocks << " intact blocks, data ends at byte "
            << scan.data_end_offset << '\n';
  if (scan.header_count) {
    std::cout << "header count: " << *scan.header_count << '\n';
  } else {
    std::cout << "header count: unknown (non-seekable writer)\n";
  }
  if (!scan.error.empty()) {
    std::cout << "CORRUPT: " << scan.error << '\n'
              << "last valid record ends at byte offset "
              << scan.data_end_offset << '\n';
    return 1;
  }
  if (!scan.terminated) {
    std::cout << "TRUNCATED: no terminator/trailer (writer crashed before "
                 "Finish, or the stream is still being written)\n";
    return 1;
  }
  std::cout << "OK: stream is intact and properly terminated\n";
  return 0;
}

// Section wrapping the StreamingAnalysis blob in an analyze checkpoint.
constexpr char kAnalysisSection[] = "analysis.suite";
constexpr std::uint32_t kAnalysisSectionVersion = 1;

int CmdAnalyze(const std::string& in, int argc, char** argv) {
  util::Flags flags;
  flags.DefineString("spec", "",
                     "take the publisher registry from this scenario file "
                     "(for traces produced by simulate --spec) instead of "
                     "the default paper-study sites");
  flags.DefineString("report", "", "write the report here instead of stdout");
  flags.DefineInt("threads", 0,
                  "worker threads for per-site finalization (0 = hardware "
                  "concurrency); the report is identical at any value");
  flags.DefineBool("no-trends", false,
                   "skip trend clustering (Figs. 8-10); it is O(n^2) in "
                   "qualifying objects");
  flags.DefineInt("checkpoint-every", 0,
                  "checkpoint the accumulator state every N record blocks "
                  "(0 = off); atomically committed");
  flags.DefineInt("block-records",
                  static_cast<std::int64_t>(trace::kDefaultBlockRecords),
                  "records per SoA batch fed to the analysis pipeline (v2 "
                  "inputs stream in their on-disk block size)");
  flags.DefineString("checkpoint-file", "",
                     "checkpoint destination (default: <trace>.analysis.ckpt)");
  flags.DefineString("resume", "",
                     "resume from this checkpoint: the trace is re-opened "
                     "and exactly records-consumed records are skipped");
  flags.Parse(argc, argv);
  util::SetLogLevel(util::LogLevel::kWarn);
  const std::int64_t every = flags.GetInt("checkpoint-every");
  if (every < 0) {
    std::cerr << "--checkpoint-every must be >= 0\n";
    return 2;
  }
  std::string ckpt_path = flags.GetString("checkpoint-file");
  if (ckpt_path.empty()) ckpt_path = in + ".analysis.ckpt";

  analysis::SuiteConfig config;
  config.run_trend_clusters = !flags.GetBool("no-trends");
  config.threads = static_cast<int>(flags.GetInt("threads"));

  // ATLAS traces carry the publisher ids their producer registered: the
  // paper-study sites in PaperSites order by default, or a scenario file's
  // sites in [[site]] order for simulate --spec output. Unknown ids are
  // counted by the cursor but not analyzed.
  trace::PublisherRegistry registry;
  const std::string spec_path = flags.GetString("spec");
  if (spec_path.empty()) {
    registry = trace::PublisherRegistry::PaperSites();
  } else {
    const auto spec = cdn::ScenarioSpec::ParseFile(spec_path);
    for (const auto& profile : spec.BuildProfiles()) {
      registry.Register(profile.name, profile.kind);
    }
  }
  analysis::StreamingAnalysis stream(registry, config);

  std::uint64_t skip = 0;
  const std::string resume_path = flags.GetString("resume");
  if (!resume_path.empty()) {
    auto snapshot = ckpt::ReadCheckpointFile(resume_path);
    snapshot.BeginSection(kAnalysisSection, kAnalysisSectionVersion);
    stream.RestoreState(snapshot);
    snapshot.EndSection();
    skip = stream.records_consumed();
    std::cout << "resuming analysis at record " << skip << '\n';
  }

  // SoA batch path: one decoded block at a time through the demultiplexer.
  trace::TraceFileReader source(
      in, static_cast<std::size_t>(flags.GetInt("block-records")));
  std::uint64_t blocks = 0;
  for (const auto* block = source.NextBlock(); block != nullptr;
       block = source.NextBlock()) {
    std::size_t first_row = 0;
    if (skip > 0) {
      // The cursor contract: records the checkpoint already consumed are
      // skipped, never re-added (re-adding would double-count). A resume
      // point inside a block consumes only the block's unseen suffix.
      const auto drop = std::min<std::uint64_t>(
          skip, static_cast<std::uint64_t>(block->size()));
      first_row = static_cast<std::size_t>(drop);
      skip -= drop;
      if (first_row >= block->size()) continue;
    }
    stream.AddBlock(*block, first_row);
    ++blocks;
    if (every > 0 && blocks % static_cast<std::uint64_t>(every) == 0) {
      ckpt::WriteCheckpointFile(ckpt_path, [&](ckpt::Writer& w) {
        w.BeginSection(kAnalysisSection, kAnalysisSectionVersion);
        stream.SaveState(w);
        w.EndSection();
      });
    }
  }
  if (skip > 0) {
    std::cerr << "error: " << in << " holds fewer records than the "
              << "checkpoint consumed (wrong trace for this checkpoint?)\n";
    return 1;
  }
  const std::uint64_t consumed = stream.records_consumed();

  analysis::AnalysisSuite suite(stream.Finalize());
  const std::string report_path = flags.GetString("report");
  if (report_path.empty()) {
    suite.Render(std::cout);
  } else {
    std::ofstream report(report_path);
    if (!report) {
      std::cerr << "cannot open " << report_path << '\n';
      return 1;
    }
    suite.Render(report);
    report.flush();
    if (!report) {
      std::cerr << "error writing " << report_path << '\n';
      return 1;
    }
    std::cout << "analyzed " << consumed << " records -> " << report_path
              << '\n';
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage(argv[0]);
  const std::string cmd = argv[1];
  try {
    if (cmd == "info") return CmdInfo(argv[2], argc - 2, argv + 2);
    if (cmd == "head") return CmdHead(argv[2], argc - 2, argv + 2);
    if (cmd == "tocsv" && argc >= 4) return CmdToCsv(argv[2], argv[3]);
    if (cmd == "tobin" && argc >= 4) return CmdToBin(argv[2], argv[3]);
    if (cmd == "filter" && argc >= 4) {
      return CmdFilter(argv[2], argv[3], argc - 3, argv + 3);
    }
    if (cmd == "convert" && argc >= 4) {
      return CmdConvert(argv[2], argv[3], argc - 3, argv + 3);
    }
    if (cmd == "gen") return CmdGen(argv[2], argc - 2, argv + 2);
    if (cmd == "simulate") return CmdSimulate(argv[2], argc - 2, argv + 2);
    if (cmd == "verify") return CmdVerify(argv[2]);
    if (cmd == "analyze") return CmdAnalyze(argv[2], argc - 2, argv + 2);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return Usage(argv[0]);
}
