// Popularity-trend exploration for one site.
//
// Walks the full Figs. 8-10 pipeline interactively: builds per-object hourly
// series, clusters them with DTW + agglomerative linkage, prints the
// dendrogram cluster shares, the silhouette across candidate k values, and
// each cluster's medoid as an ASCII sparkline with its shape label.
// Demonstrates: trend clustering, dendrogram cutting, shape classification.
//
//   ./popularity_explorer --site V-2 --class video --scale 0.05 --max-k 8
#include <iostream>

#include "analysis/report.h"
#include "analysis/trend_cluster.h"
#include "cdn/scenario.h"
#include "cluster/shape.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/par.h"
#include "util/str.h"

int main(int argc, char** argv) {
  using namespace atlas;
  util::Flags flags;
  flags.DefineString("site", "V-2", "site to explore (V-1, V-2, P-1, P-2, S-1)");
  flags.DefineString("class", "video", "content class: video or image");
  flags.DefineDouble("scale", 0.05, "population scale in (0, 1]");
  flags.DefineInt("seed", 42, "RNG seed");
  flags.DefineInt("threads", 0,
                  "worker threads (0 = hardware concurrency); output is "
                  "identical at any value");
  flags.DefineInt("max-k", 8, "largest k to evaluate");
  flags.DefineInt("min-requests", 30, "min requests per clustered object");
  try {
    flags.Parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n" << flags.Usage(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.Usage(argv[0]);
    return 0;
  }
  util::SetLogLevel(util::LogLevel::kWarn);
  util::SetDefaultThreads(static_cast<int>(flags.GetInt("threads")));

  cdn::SimulatorConfig config;
  cdn::Scenario scenario = cdn::Scenario::PaperStudy(
      flags.GetDouble("scale"), config,
      static_cast<std::uint64_t>(flags.GetInt("seed")));

  const std::string site = flags.GetString("site");
  const trace::TraceBuffer* site_trace = nullptr;
  for (const auto& run : scenario.runs()) {
    if (run.profile.name == site) site_trace = &run.result.trace;
  }
  if (site_trace == nullptr) {
    std::cerr << "unknown site: " << site << '\n';
    return 1;
  }

  analysis::TrendClusterConfig tc;
  tc.content_class = flags.GetString("class") == "image"
                         ? trace::ContentClass::kImage
                         : trace::ContentClass::kVideo;
  tc.min_requests = static_cast<std::uint64_t>(flags.GetInt("min-requests"));

  // Sweep k and report silhouettes, then show the best clustering in full.
  std::cout << "silhouette by k for " << site << " "
            << trace::ToString(tc.content_class) << " objects:\n";
  std::size_t best_k = 2;
  double best_sil = -2.0;
  for (std::size_t k = 2; k <= static_cast<std::size_t>(flags.GetInt("max-k"));
       ++k) {
    tc.k = k;
    const auto result = analysis::ComputeTrendClusters(*site_trace, site, tc);
    if (result.clustered_objects < k) break;
    std::cout << "  k=" << k << "  silhouette="
              << util::FormatDouble(result.silhouette, 3) << '\n';
    if (result.silhouette > best_sil) {
      best_sil = result.silhouette;
      best_k = k;
    }
  }

  tc.k = best_k;
  const auto result = analysis::ComputeTrendClusters(*site_trace, site, tc);
  std::cout << "\nbest k=" << best_k << ":\n";
  analysis::RenderTrendClusters(result, std::cout);
  std::cout << '\n';
  analysis::RenderClusterMedoids(result, std::cout);

  std::cout << "\nper-cluster medoid shape features:\n";
  for (const auto& c : result.clusters) {
    const auto f = cluster::ExtractShapeFeatures(c.medoid_series);
    std::cout << "  " << util::PadRight(synth::ToString(c.shape), 14)
              << cluster::DescribeShape(f) << '\n';
  }
  return 0;
}
