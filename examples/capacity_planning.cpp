// Capacity planning across the CDN footprint.
//
// Uses the temporal model and the simulator the way a network planner
// would: run the whole five-site study, break traffic down per continent
// and per local hour, find each data center's peak hour, and size edge
// caches by trading capacity against origin egress. Demonstrates: scenario
// orchestration, per-DC statistics, timezone-aware load analysis.
//
//   ./capacity_planning --scale 0.05
#include <array>
#include <iostream>

#include "analysis/geo.h"
#include "cdn/scenario.h"
#include "synth/user_model.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/par.h"
#include "util/str.h"
#include "util/time.h"

int main(int argc, char** argv) {
  using namespace atlas;
  util::Flags flags;
  flags.DefineDouble("scale", 0.05, "population scale in (0, 1]");
  flags.DefineInt("seed", 42, "RNG seed");
  flags.DefineInt("threads", 0,
                  "worker threads (0 = hardware concurrency); output is "
                  "identical at any value");
  try {
    flags.Parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n" << flags.Usage(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.Usage(argv[0]);
    return 0;
  }
  util::SetLogLevel(util::LogLevel::kWarn);
  util::SetDefaultThreads(static_cast<int>(flags.GetInt("threads")));
  const double scale = flags.GetDouble("scale");
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed"));

  cdn::SimulatorConfig config;
  config.topology.edge_capacity_bytes =
      static_cast<std::uint64_t>(48e9 * scale) + (512ULL << 20);
  cdn::Scenario scenario = cdn::Scenario::PaperStudy(scale, config, seed);

  // --- Per-continent load (analysis::geo) ---------------------------------
  // The merged trace is consumed as a stream (k-way merge over the per-site
  // traces) — no combined copy is ever materialized.
  cdn::MergedTraceSource merged_source(scenario);
  const auto geo = analysis::ComputeGeo(merged_source, "all-sites");
  std::cout << "=== Per-continent demand (week, scale=" << scale << ") ===\n";
  std::cout << util::PadRight("continent", 15) << util::PadLeft("requests", 11)
            << util::PadLeft("users", 9) << util::PadLeft("bytes", 11)
            << util::PadLeft("peak UTC hr", 13) << util::PadLeft("peak GB/h", 11)
            << '\n';
  std::cout << std::string(70, '-') << '\n';
  for (int c = 0; c < synth::kNumContinents; ++c) {
    const auto& stats = geo.of(static_cast<synth::Continent>(c));
    std::cout << util::PadRight(
                     synth::ToString(static_cast<synth::Continent>(c)), 15)
              << util::PadLeft(
                     util::FormatCount(static_cast<double>(stats.requests)), 11)
              << util::PadLeft(
                     util::FormatCount(static_cast<double>(stats.unique_users)),
                     9)
              << util::PadLeft(
                     util::FormatBytes(static_cast<double>(stats.bytes)), 11)
              << util::PadLeft(std::to_string(stats.PeakUtcHour()) + ":00", 13)
              << util::PadLeft(
                     util::FormatDouble(stats.PeakHourlyBytes(7) / 1e9, 2), 11)
              << '\n';
  }

  // --- Edge cache sizing --------------------------------------------------
  std::cout << "\n=== Edge sizing: capacity vs. origin egress ===\n";
  std::cout << util::PadRight("per-DC capacity", 17)
            << util::PadLeft("edge hit%", 11)
            << util::PadLeft("origin egress", 15)
            << util::PadLeft("egress saved", 14) << '\n';
  std::cout << std::string(57, '-') << '\n';
  std::uint64_t baseline_origin = 0;
  for (double gb_at_full : {8.0, 16.0, 32.0, 64.0, 128.0}) {
    cdn::SimulatorConfig sized = config;
    sized.topology.edge_capacity_bytes =
        static_cast<std::uint64_t>(gb_at_full * 1e9 * scale) + (64ULL << 20);
    cdn::Scenario sweep = cdn::Scenario::PaperStudy(scale, sized, seed);
    cdn::CacheStats edge;
    std::uint64_t origin_bytes = 0;
    for (const auto& run : sweep.runs()) {
      edge.Merge(run.result.edge_stats);
      origin_bytes += run.result.origin.bytes;
    }
    if (baseline_origin == 0) baseline_origin = origin_bytes;
    const double saved =
        1.0 - static_cast<double>(origin_bytes) /
                  static_cast<double>(baseline_origin);
    std::cout << util::PadRight(
                     util::FormatBytes(
                         static_cast<double>(sized.topology.edge_capacity_bytes)),
                     17)
              << util::PadLeft(util::FormatPercent(edge.HitRatio(), 1), 11)
              << util::PadLeft(
                     util::FormatBytes(static_cast<double>(origin_bytes)), 15)
              << util::PadLeft(util::FormatPercent(saved, 1), 14) << '\n';
  }
  std::cout << "\n(capacities shown are scaled stand-ins for the "
               "full-population figures at --scale 1.0)\n";
  return 0;
}
