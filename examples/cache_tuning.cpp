// Cache tuning for an adult-content operator.
//
// Uses the library the way a CDN capacity engineer would: pick a site
// profile, sweep cache policy and size for its actual workload, and print
// the operator-facing table (hit ratio, byte hit ratio, origin egress) plus
// a recommendation. Demonstrates: synth profiles, the delivery simulator,
// and the cache-policy zoo.
//
//   ./cache_tuning --site V-1 --scale 0.05
#include <cmath>
#include <iostream>
#include <limits>
#include <vector>

#include "cdn/simulator.h"
#include "synth/site_profile.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/par.h"
#include "util/str.h"

namespace {

atlas::synth::SiteProfile ProfileByName(const std::string& name, double scale) {
  using atlas::synth::SiteProfile;
  if (name == "V-1") return SiteProfile::V1(scale);
  if (name == "V-2") return SiteProfile::V2(scale);
  if (name == "P-1") return SiteProfile::P1(scale);
  if (name == "P-2") return SiteProfile::P2(scale);
  if (name == "S-1") return SiteProfile::S1(scale);
  if (name == "N-1") return SiteProfile::NonAdult(scale);
  throw std::invalid_argument("unknown site: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace atlas;
  util::Flags flags;
  flags.DefineString("site", "V-1", "site profile (V-1, V-2, P-1, P-2, S-1, N-1)");
  flags.DefineDouble("scale", 0.05, "population scale in (0, 1]");
  flags.DefineInt("seed", 42, "RNG seed");
  flags.DefineInt("threads", 0,
                  "worker threads (0 = hardware concurrency); output is "
                  "identical at any value");
  try {
    flags.Parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n" << flags.Usage(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.Usage(argv[0]);
    return 0;
  }
  util::SetLogLevel(util::LogLevel::kWarn);
  util::SetDefaultThreads(static_cast<int>(flags.GetInt("threads")));
  const double scale = flags.GetDouble("scale");
  const auto profile = ProfileByName(flags.GetString("site"), scale);
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed"));

  std::cout << "Cache tuning for " << profile.name << " ("
            << trace::ToString(profile.kind) << ", "
            << util::FormatCount(static_cast<double>(profile.total_requests))
            << " requests/week target)\n\n";
  std::cout << util::PadRight("policy", 9) << util::PadLeft("capacity", 11)
            << util::PadLeft("hit%", 8) << util::PadLeft("byte-hit%", 11)
            << util::PadLeft("origin egress", 15) << '\n';
  std::cout << std::string(54, '-') << '\n';

  double best_score = -1.0;
  std::string best_label;
  for (double cap_gb_at_full : {4.0, 16.0, 64.0}) {
    const auto capacity = static_cast<std::uint64_t>(cap_gb_at_full * 1e9 * scale);
    for (int k = 0; k < cdn::kNumPolicyKinds; ++k) {
      cdn::SimulatorConfig config;
      config.topology.edge_policy = static_cast<cdn::PolicyKind>(k);
      config.topology.edge_capacity_bytes = capacity;
      const auto result = cdn::SimulateSite(profile, 0, config, seed);
      const double hit = result.edge_stats.HitRatio();
      const double byte_hit = result.edge_stats.ByteHitRatio();
      std::cout << util::PadRight(
                       cdn::ToString(static_cast<cdn::PolicyKind>(k)), 9)
                << util::PadLeft(
                       util::FormatBytes(static_cast<double>(capacity)), 11)
                << util::PadLeft(util::FormatPercent(hit, 1), 8)
                << util::PadLeft(util::FormatPercent(byte_hit, 1), 11)
                << util::PadLeft(
                       util::FormatBytes(static_cast<double>(result.origin.bytes)),
                       15)
                << '\n';
      // Score: byte hit ratio per log-capacity (cheap configs preferred).
      const double score = byte_hit - 0.02 * std::log2(cap_gb_at_full);
      if (score > best_score) {
        best_score = score;
        best_label = std::string(cdn::ToString(static_cast<cdn::PolicyKind>(k))) +
                     " @ " + util::FormatBytes(static_cast<double>(capacity));
      }
    }
    std::cout << '\n';
  }
  std::cout << "recommended configuration: " << best_label << '\n';
  return 0;
}
