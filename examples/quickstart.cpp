// Quickstart: generate a small synthetic week of adult-CDN traffic for the
// paper's five sites, run the full analysis suite, and print the report.
//
//   ./quickstart --scale 0.02 --seed 42
//
// `--scale 1.0` reproduces the paper-sized study (~5M log records).
#include <fstream>
#include <iostream>

#include "analysis/suite.h"
#include "cdn/scenario.h"
#include "trace/sink.h"
#include "trace/stream.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/par.h"

int main(int argc, char** argv) {
  using namespace atlas;
  util::Flags flags;
  flags.DefineDouble("scale", 0.02, "population scale, (0, 1]");
  flags.DefineInt("seed", 42, "RNG seed");
  flags.DefineInt("threads", 0,
                  "worker threads (0 = hardware concurrency); output is "
                  "identical at any value");
  flags.DefineBool("clusters", true, "run DTW trend clustering (Figs. 8-10)");
  flags.DefineString("save-trace", "",
                     "optional path to dump the trace (v2 block format)");
  try {
    flags.Parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n" << flags.Usage(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.Usage(argv[0]);
    return 0;
  }
  util::SetDefaultThreads(static_cast<int>(flags.GetInt("threads")));

  cdn::SimulatorConfig config;
  // Edge capacity scales with the study so hit ratios stay in the paper's
  // 80-90% band at any --scale.
  config.topology.edge_capacity_bytes = static_cast<std::uint64_t>(
      64e9 * flags.GetDouble("scale")) + (1ULL << 30);

  cdn::Scenario scenario = cdn::Scenario::PaperStudy(
      flags.GetDouble("scale"), config,
      static_cast<std::uint64_t>(flags.GetInt("seed")));

  // The merged trace is consumed as a stream — the per-site traces are
  // k-way merged on the fly, never copied into one combined buffer.
  if (const std::string path = flags.GetString("save-trace"); !path.empty()) {
    std::ofstream stream(path, std::ios::binary);
    if (!stream) {
      std::cerr << "cannot open " << path << '\n';
      return 1;
    }
    trace::TraceWriter writer(stream);
    trace::WriterSink sink(writer);
    scenario.StreamMerged(sink);
    writer.Finish();
    std::cout << "trace written to " << path << " (" << writer.written()
              << " records, v2)\n";
  }

  analysis::SuiteConfig suite_config;
  suite_config.run_trend_clusters = flags.GetBool("clusters");
  cdn::MergedTraceSource source(scenario);
  analysis::AnalysisSuite suite(source, scenario.registry(), suite_config);
  suite.Render(std::cout);
  return 0;
}
