#!/usr/bin/env bash
# Full local verification matrix for ATLAS.
#
#   scripts/check.sh          # everything below, in order
#   scripts/check.sh quick    # default build + tests + lint only
#
# Matrix (one out-of-tree build dir per configuration):
#   build            default RelWithDebInfo, full ctest suite
#   build-warn       -DATLAS_EXTRA_WARNINGS=ON (-Wshadow -Wconversion
#                    -Wdouble-promotion -Wnon-virtual-dtor -Werror): the
#                    src/ library tree must compile clean
#   build-tsan       -DATLAS_SANITIZE=thread,    ctest -L sanitize
#   build-asan       -DATLAS_SANITIZE=address,   full ctest suite
#   build-ubsan      -DATLAS_SANITIZE=undefined, full ctest suite
#
# atlas-lint runs inside the default suite (`ctest -L lint`): the lint_tree
# test re-lints the live tree against the checked-in .lint-baseline and
# lint_test proves every rule — per-file and cross-TU — fires on its
# tests/lint_corpus/ fixture. The standalone invocation below also emits
# build/atlas-lint.sarif, the artifact CI uploads to GitHub code scanning.
# With a Clang toolchain
# (CC=clang CXX=clang++ scripts/check.sh) the default build also gets
# -DATLAS_WERROR_THREAD_SAFETY=ON and the thread_safety_compile_fail test.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}
MODE=${1:-full}

is_clang() {
  "${CXX:-c++}" --version 2>/dev/null | grep -qi clang
}

configure_and_test() {
  local dir=$1 label=$2
  shift 2
  echo "=== ${dir} ($*) ==="
  cmake -B "${dir}" -S . "$@" >/dev/null
  cmake --build "${dir}" -j "${JOBS}"
  if [[ -n "${label}" ]]; then
    ctest --test-dir "${dir}" -L "${label}" --output-on-failure -j "${JOBS}"
  else
    ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
  fi
}

DEFAULT_FLAGS=()
if is_clang; then
  DEFAULT_FLAGS+=(-DATLAS_WERROR_THREAD_SAFETY=ON)
fi

configure_and_test build "" "${DEFAULT_FLAGS[@]+"${DEFAULT_FLAGS[@]}"}"

echo "=== atlas-lint (standalone, baseline + SARIF) ==="
./build/tools/atlas_lint/atlas-lint --root . \
  --baseline .lint-baseline --sarif build/atlas-lint.sarif

if [[ "${MODE}" == quick ]]; then
  echo "check.sh quick: OK"
  exit 0
fi

configure_and_test build-warn "" -DATLAS_EXTRA_WARNINGS=ON
configure_and_test build-tsan sanitize -DATLAS_SANITIZE=thread
configure_and_test build-asan "" -DATLAS_SANITIZE=address
configure_and_test build-ubsan "" -DATLAS_SANITIZE=undefined

echo "check.sh: all configurations OK"
