#include "util/logging.h"

#include <atomic>
#include <iostream>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace atlas::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
// g_mutex serializes sink writes (interleaving-free lines from worker
// threads) and guards the sink pointer itself.
Mutex g_mutex;
std::ostream* g_sink ATLAS_GUARDED_BY(g_mutex) = nullptr;

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

void SetLogSink(std::ostream* sink) {
  MutexLock lock(g_mutex);
  g_sink = sink;
}

namespace internal {

void LogLine(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  MutexLock lock(g_mutex);
  std::ostream& out = g_sink != nullptr ? *g_sink : std::cerr;
  out << "[atlas " << LogLevelName(level) << "] " << message << '\n';
}

}  // namespace internal
}  // namespace atlas::util
