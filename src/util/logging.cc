#include "util/logging.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace atlas::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::ostream* g_sink = nullptr;
std::mutex g_mutex;

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

void SetLogSink(std::ostream* sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = sink;
}

namespace internal {

void LogLine(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::ostream& out = g_sink != nullptr ? *g_sink : std::cerr;
  out << "[atlas " << LogLevelName(level) << "] " << message << '\n';
}

}  // namespace internal
}  // namespace atlas::util
