#include "util/mem.h"

#include <cstdio>
#include <cstring>

namespace atlas::util {
namespace {

// Parses "<field>:   <n> kB" out of /proc/self/status; 0 if absent.
std::uint64_t StatusFieldKb(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  const std::size_t field_len = std::strlen(field);
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0 && line[field_len] == ':') {
      unsigned long long value = 0;
      if (std::sscanf(line + field_len + 1, "%llu", &value) == 1) {
        kb = value;
      }
      break;
    }
  }
  std::fclose(f);
  return kb;
}

}  // namespace

std::uint64_t CurrentRssBytes() { return StatusFieldKb("VmRSS") * 1024; }

std::uint64_t PeakRssBytes() { return StatusFieldKb("VmHWM") * 1024; }

bool ResetPeakRss() {
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return false;
  // "5" resets the peak-RSS watermark (Documentation/filesystems/proc.rst).
  const bool ok = std::fputs("5", f) >= 0;
  return (std::fclose(f) == 0) && ok;
}

}  // namespace atlas::util
