#include "util/rng.h"

#include <cmath>
#include <stdexcept>

namespace atlas::util {
namespace {

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64::Next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : state_) s = sm.Next();
  // xoshiro state must not be all-zero; SplitMix64 cannot produce four zero
  // outputs in a row, but guard anyway for belt and braces.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

Rng Rng::Fork(std::uint64_t tag) {
  // Mix the tag with fresh output so forks with equal tags taken at different
  // points in the parent stream still diverge.
  SplitMix64 sm(Next() ^ (tag * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL));
  return Rng(sm.Next());
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("NextBounded: bound must be > 0");
  // Lemire's method with rejection to remove modulo bias.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("NextInt: lo > hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(Next());  // full 64-bit range
  return lo + static_cast<std::int64_t>(NextBounded(span));
}

double Rng::NextRange(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double lambda) {
  if (lambda <= 0.0) {
    throw std::invalid_argument("NextExponential: lambda must be > 0");
  }
  // 1 - U is in (0, 1], so the log is finite.
  return -std::log1p(-NextDouble()) / lambda;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

double Rng::NextLogNormal(double mu, double sigma) {
  return std::exp(NextGaussian(mu, sigma));
}

double Rng::NextPareto(double x_m, double alpha) {
  if (x_m <= 0.0 || alpha <= 0.0) {
    throw std::invalid_argument("NextPareto: x_m and alpha must be > 0");
  }
  double u;
  do {
    u = NextDouble();
  } while (u == 0.0);
  return x_m / std::pow(u, 1.0 / alpha);
}

double Rng::NextWeibull(double lambda, double k) {
  if (lambda <= 0.0 || k <= 0.0) {
    throw std::invalid_argument("NextWeibull: lambda and k must be > 0");
  }
  return lambda * std::pow(-std::log1p(-NextDouble()), 1.0 / k);
}

std::uint64_t Rng::NextGeometric(double p) {
  if (p <= 0.0 || p > 1.0) {
    throw std::invalid_argument("NextGeometric: p must be in (0, 1]");
  }
  if (p == 1.0) return 0;
  double u;
  do {
    u = NextDouble();
  } while (u == 0.0);
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

std::uint64_t Rng::NextPoisson(double lambda) {
  if (lambda < 0.0) {
    throw std::invalid_argument("NextPoisson: lambda must be >= 0");
  }
  if (lambda == 0.0) return 0;
  if (lambda < 64.0) {
    const double l = std::exp(-lambda);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= NextDouble();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation, adequate for workload rates.
  const double x = NextGaussian(lambda, std::sqrt(lambda));
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

std::size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("NextWeighted: negative weight");
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("NextWeighted: weights must sum to > 0");
  }
  double target = NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numerical tail
}

}  // namespace atlas::util
