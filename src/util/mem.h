// Process memory introspection.
//
// Used by the streaming benches and the bounded-memory tests to show that
// the out-of-core trace pipeline actually holds its memory budget: peak
// resident set is read from /proc/self/status (VmHWM) and can be reset
// between measurement phases via /proc/self/clear_refs. On platforms
// without procfs every call degrades to 0/false so callers can gate on it.
#pragma once

#include <cstdint>

namespace atlas::util {

// Current resident set size in bytes (VmRSS); 0 if unavailable.
std::uint64_t CurrentRssBytes();

// Peak resident set size in bytes since process start or the last
// ResetPeakRss() (VmHWM); 0 if unavailable.
std::uint64_t PeakRssBytes();

// Resets the peak-RSS watermark to the current RSS. Best-effort: returns
// false where the kernel interface is missing (non-Linux, restricted
// procfs), in which case PeakRssBytes() keeps its lifetime semantics.
bool ResetPeakRss();

}  // namespace atlas::util
