// Hashing utilities.
//
// The paper's log schema stores *hashed* URLs (the CDN anonymizes them). We
// mirror that: object identity inside ATLAS is a 64-bit hash. These functions
// are deterministic across platforms so traces written on one machine parse
// identically on another.
#pragma once

#include <bit>
#include <cstdint>
#include <string_view>

namespace atlas::util {

// Raw IEEE-754 bits of a double, for hashing real-valued config knobs into
// fingerprints (bit equality is exactly the "same config" contract).
inline std::uint64_t DoubleBits(double v) {
  return std::bit_cast<std::uint64_t>(v);
}

// FNV-1a, 64-bit. Stable, fast for short keys (URLs, UA strings).
std::uint64_t Fnv1a64(std::string_view data);

// Finalizing mixer from MurmurHash3 / SplitMix64; turns a structured integer
// (e.g. an object index) into a well-distributed 64-bit identifier.
std::uint64_t Mix64(std::uint64_t x);

// Combines two 64-bit hashes (boost::hash_combine style, 64-bit constants).
std::uint64_t HashCombine(std::uint64_t seed, std::uint64_t value);

// Maps a hash onto [0, buckets) with multiply-shift (Lemire); used for
// consistent sharding of users onto data centers and similar assignments.
std::uint64_t HashToBucket(std::uint64_t hash, std::uint64_t buckets);

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum the
// v2 block trace format stamps on every payload. Incremental: pass the
// previous return value as `seed` to extend a running checksum.
std::uint32_t Crc32(const void* data, std::size_t size, std::uint32_t seed = 0);

}  // namespace atlas::util
