#include "util/str.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace atlas::util {

std::vector<std::string_view> Split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  const auto eq = [](unsigned char a, unsigned char b) {
    return std::tolower(a) == std::tolower(b);
  };
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    bool match = true;
    for (std::size_t j = 0; j < needle.size(); ++j) {
      if (!eq(haystack[i + j], needle[j])) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

std::string FormatBytes(double bytes) {
  static const char* const kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int unit = 0;
  double v = bytes;
  while (v >= 1024.0 && unit < 5) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f B", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, kUnits[unit]);
  }
  return buf;
}

std::string FormatCount(double count) {
  static const char* const kUnits[] = {"", "K", "M", "B", "T"};
  int unit = 0;
  double v = count;
  while (v >= 1000.0 && unit < 4) {
    v /= 1000.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f%s", v, kUnits[unit]);
  }
  return buf;
}

std::string FormatPercent(double fraction, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string FormatDouble(double value, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string PadRight(std::string_view s, std::size_t width) {
  std::string out(s.substr(0, width));
  out.resize(width, ' ');
  return out;
}

std::string PadLeft(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s.substr(0, width));
  std::string out(width - s.size(), ' ');
  out.append(s);
  return out;
}

std::uint64_t ParseUint64(std::string_view s) {
  s = Trim(s);
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::invalid_argument("ParseUint64: malformed integer: " +
                                std::string(s));
  }
  return value;
}

std::int64_t ParseInt64(std::string_view s) {
  s = Trim(s);
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::invalid_argument("ParseInt64: malformed integer: " +
                                std::string(s));
  }
  return value;
}

double ParseDouble(std::string_view s) {
  s = Trim(s);
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::invalid_argument("ParseDouble: malformed double: " +
                                std::string(s));
  }
  return value;
}

}  // namespace atlas::util
