// Annotated locking primitives.
//
// libstdc++'s std::mutex / std::lock_guard carry no Clang thread-safety
// attributes, so code locking through them is invisible to -Wthread-safety.
// These thin wrappers restore the analysis: Mutex is a std::mutex declared
// as a capability, MutexLock is an RAII scoped acquire, and CondVar is a
// condition variable that waits on a Mutex (std::condition_variable_any,
// so no unannotated unique_lock is needed). Library code must use these
// instead of the raw std types — atlas_lint rule `raw-std-mutex` enforces
// it, and rule `mutex-unannotated` requires every Mutex to be referenced
// by at least one ATLAS_GUARDED_BY / ATLAS_REQUIRES in its file.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace atlas::util {

class ATLAS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ATLAS_ACQUIRE() { mu_.lock(); }
  void unlock() ATLAS_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

// RAII: acquires on construction, releases on destruction.
class ATLAS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ATLAS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() ATLAS_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable bound to Mutex. Wait atomically releases `mu`, blocks,
// and reacquires before returning — callers hold `mu` on both sides, which
// is exactly what ATLAS_REQUIRES(mu) expresses. Spurious wakeups happen;
// always wait in a `while (!predicate)` loop.
class CondVar {
 public:
  void Wait(Mutex& mu) ATLAS_REQUIRES(mu) { cv_.wait(mu); }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace atlas::util
