// Simulation time.
//
// ATLAS models one week of wall-clock time, like the paper's trace. All
// timestamps are milliseconds since the (simulated) trace start, which is
// taken to be Saturday 00:00:00 UTC — the paper's medoid plots run
// Sat..Fri. The paper converts timestamps to the *user's local timezone*
// before computing hourly volumes (Fig. 3); TimeZone captures that.
#pragma once

#include <cstdint>
#include <string>

namespace atlas::util {

inline constexpr std::int64_t kMillisPerSecond = 1000;
inline constexpr std::int64_t kMillisPerMinute = 60 * kMillisPerSecond;
inline constexpr std::int64_t kMillisPerHour = 60 * kMillisPerMinute;
inline constexpr std::int64_t kMillisPerDay = 24 * kMillisPerHour;
inline constexpr std::int64_t kMillisPerWeek = 7 * kMillisPerDay;
inline constexpr int kHoursPerWeek = 7 * 24;

// Day index 0 == Saturday (trace starts Saturday, per the paper's figures).
extern const char* const kDayNames[7];

// A fixed UTC offset, in quarter-hours to cover :30/:45 zones compactly.
class TimeZone {
 public:
  constexpr TimeZone() = default;
  static TimeZone FromHours(double offset_hours);
  static constexpr TimeZone Utc() { return TimeZone(); }

  double offset_hours() const { return offset_quarter_hours_ / 4.0; }
  std::int64_t offset_millis() const {
    return static_cast<std::int64_t>(offset_quarter_hours_) * 15 *
           kMillisPerMinute;
  }

  // Converts a trace timestamp (ms since trace start, UTC) to local ms.
  std::int64_t ToLocal(std::int64_t utc_ms) const {
    return utc_ms + offset_millis();
  }

  bool operator==(const TimeZone&) const = default;

 private:
  std::int8_t offset_quarter_hours_ = 0;
};

// Hour-of-day in [0, 24) for a local timestamp. Timestamps before trace
// start (possible after tz shifts) are wrapped.
int HourOfDay(std::int64_t local_ms);

// Hour-of-week in [0, 168); hour 0 is Saturday 00:00 local.
int HourOfWeek(std::int64_t local_ms);

// Day-of-week index in [0, 7); 0 == Saturday.
int DayOfWeek(std::int64_t local_ms);

// Formats a trace timestamp as "Day HH:MM:SS" for reports.
std::string FormatTimestamp(std::int64_t ms);

// Formats a duration in a human-friendly unit ("850 ms", "3.2 min", ...).
std::string FormatDuration(std::int64_t ms);

}  // namespace atlas::util
