// Checked narrowing conversions.
//
// Object and user indices travel through the pipeline as uint32_t (half the
// footprint of size_t in the event arrays, which dominate generation
// memory). Populations are validated to fit 32 bits (SiteProfile::Validate),
// so a narrowing that would truncate is always a logic error upstream —
// these helpers turn the silent wrap the old static_casts allowed into an
// immediate, descriptive failure. atlas-lint's `unchecked-index-cast` rule
// keeps raw static_cast<uint32_t> out of src/synth.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace atlas::util {

// Narrows a 64-bit index to uint32_t, throwing std::overflow_error (with
// `what` naming the index) instead of wrapping when it does not fit.
inline std::uint32_t CheckedIndexU32(std::uint64_t v, const char* what) {
  if (v > std::numeric_limits<std::uint32_t>::max()) {
    throw std::overflow_error(std::string(what) + " index " +
                              std::to_string(v) + " exceeds uint32 range");
  }
  return static_cast<std::uint32_t>(v);
}

}  // namespace atlas::util
