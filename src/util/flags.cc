#include "util/flags.h"

#include <cstdio>
#include <stdexcept>

#include "util/str.h"

namespace atlas::util {
namespace {

std::string BoolToString(bool b) { return b ? "true" : "false"; }

bool ParseBoolValue(const std::string& s) {
  const std::string lower = ToLower(s);
  if (lower == "true" || lower == "1" || lower == "yes") return true;
  if (lower == "false" || lower == "0" || lower == "no") return false;
  throw std::invalid_argument("Flags: malformed bool: " + s);
}

}  // namespace

void Flags::DefineString(const std::string& name,
                         const std::string& default_value,
                         const std::string& help) {
  defs_[name] = Def{Type::kString, default_value, help};
}

void Flags::DefineInt(const std::string& name, std::int64_t default_value,
                      const std::string& help) {
  defs_[name] = Def{Type::kInt, std::to_string(default_value), help};
}

void Flags::DefineDouble(const std::string& name, double default_value,
                         const std::string& help) {
  defs_[name] = Def{Type::kDouble, FormatDouble(default_value, 6), help};
}

void Flags::DefineBool(const std::string& name, bool default_value,
                       const std::string& help) {
  defs_[name] = Def{Type::kBool, BoolToString(default_value), help};
}

void Flags::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (!StartsWith(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      Assign(body.substr(0, eq), body.substr(eq + 1));
      continue;
    }
    // "--no-name" for booleans.
    if (StartsWith(body, "no-")) {
      const std::string name = body.substr(3);
      auto it = defs_.find(name);
      if (it != defs_.end() && it->second.type == Type::kBool) {
        it->second.value = "false";
        provided_.insert(name);
        continue;
      }
    }
    auto it = defs_.find(body);
    if (it == defs_.end()) {
      throw std::invalid_argument("Flags: unknown flag --" + body);
    }
    if (it->second.type == Type::kBool) {
      it->second.value = "true";
      provided_.insert(body);
    } else {
      if (i + 1 >= argc) {
        throw std::invalid_argument("Flags: missing value for --" + body);
      }
      Assign(body, argv[++i]);
    }
  }
}

const Flags::Def& Flags::Lookup(const std::string& name, Type expected) const {
  auto it = defs_.find(name);
  if (it == defs_.end()) {
    throw std::invalid_argument("Flags: undefined flag: " + name);
  }
  if (it->second.type != expected) {
    throw std::invalid_argument("Flags: type mismatch for flag: " + name);
  }
  return it->second;
}

bool Flags::Provided(const std::string& name) const {
  return provided_.count(name) != 0;
}

void Flags::Assign(const std::string& name, const std::string& value) {
  auto it = defs_.find(name);
  if (it == defs_.end()) {
    throw std::invalid_argument("Flags: unknown flag --" + name);
  }
  provided_.insert(name);
  switch (it->second.type) {
    case Type::kString:
      it->second.value = value;
      break;
    case Type::kInt:
      it->second.value = std::to_string(
          static_cast<std::int64_t>(ParseDouble(value)));  // accepts "1e6"
      break;
    case Type::kDouble:
      it->second.value = FormatDouble(ParseDouble(value), 6);
      break;
    case Type::kBool:
      it->second.value = BoolToString(ParseBoolValue(value));
      break;
  }
}

std::string Flags::GetString(const std::string& name) const {
  return Lookup(name, Type::kString).value;
}

std::int64_t Flags::GetInt(const std::string& name) const {
  return static_cast<std::int64_t>(
      std::stoll(Lookup(name, Type::kInt).value));
}

double Flags::GetDouble(const std::string& name) const {
  return ParseDouble(Lookup(name, Type::kDouble).value);
}

bool Flags::GetBool(const std::string& name) const {
  return Lookup(name, Type::kBool).value == "true";
}

std::string Flags::Usage(const std::string& program) const {
  std::string out = "usage: " + program + " [flags]\n";
  for (const auto& [name, def] : defs_) {
    out += "  --" + name + " (default: " + def.value + ")\n      " + def.help +
           "\n";
  }
  return out;
}

}  // namespace atlas::util
