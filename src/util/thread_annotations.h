// Clang thread-safety-analysis annotations, ATLAS-prefixed.
//
// Under Clang with -Wthread-safety (CMake option ATLAS_WERROR_THREAD_SAFETY)
// these expand to the `thread_safety` attributes and the analysis proves, at
// compile time, that every access to an ATLAS_GUARDED_BY(mu) field happens
// with `mu` held. Under GCC (which has no such analysis) every macro expands
// to nothing, so annotated headers stay portable.
//
// Conventions (enforced by atlas_lint rule `mutex-unannotated`):
//  - Every std::mutex member or global must guard something: at least one
//    ATLAS_GUARDED_BY(<that mutex>) must reference it in the same file.
//  - Fields written by one thread and read by others without a lock must be
//    std::atomic, never bare + ATLAS_GUARDED_BY.
//  - Functions that take or require a lock internally document it with
//    ATLAS_ACQUIRE/ATLAS_REQUIRES/ATLAS_EXCLUDES so callers inherit the
//    contract.
#pragma once

#if defined(__clang__)
#define ATLAS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ATLAS_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

// Marks a type as lockable (std::mutex already is; custom wrappers need it).
#define ATLAS_CAPABILITY(x) ATLAS_THREAD_ANNOTATION(capability(x))

// Marks an RAII type whose constructor acquires and destructor releases.
#define ATLAS_SCOPED_CAPABILITY ATLAS_THREAD_ANNOTATION(scoped_lockable)

// Field/variable is protected by the given mutex.
#define ATLAS_GUARDED_BY(x) ATLAS_THREAD_ANNOTATION(guarded_by(x))

// Pointee (not the pointer itself) is protected by the given mutex.
#define ATLAS_PT_GUARDED_BY(x) ATLAS_THREAD_ANNOTATION(pt_guarded_by(x))

// Function must be called with the given mutex(es) held.
#define ATLAS_REQUIRES(...) \
  ATLAS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

// Function acquires the mutex(es) and returns with them held.
#define ATLAS_ACQUIRE(...) \
  ATLAS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

// Function releases the mutex(es).
#define ATLAS_RELEASE(...) \
  ATLAS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

// Function must NOT be called with the given mutex(es) held (deadlock guard).
#define ATLAS_EXCLUDES(...) ATLAS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Escape hatch for code the analysis cannot model (e.g. locking through an
// alias). Use sparingly and leave a comment explaining why.
#define ATLAS_NO_THREAD_SAFETY_ANALYSIS \
  ATLAS_THREAD_ANNOTATION(no_thread_safety_analysis)
