// Leveled logging for the library and tools.
//
// Kept deliberately simple: a global level, a single sink (stderr by
// default), printf-style formatting. Benchmarks run with the level raised to
// kWarn so log I/O never pollutes timing.
#pragma once

#include <sstream>
#include <string>

namespace atlas::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

const char* LogLevelName(LogLevel level);

// Global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Redirects log output (nullptr restores stderr). Not owned.
void SetLogSink(std::ostream* sink);

namespace internal {
void LogLine(LogLevel level, const std::string& message);
}

// Stream-style logger: ATLAS_LOG(kInfo) << "generated " << n << " records";
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { internal::LogLine(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace atlas::util

#define ATLAS_LOG(severity)                                           \
  if (::atlas::util::LogLevel::severity >= ::atlas::util::GetLogLevel()) \
  ::atlas::util::LogMessage(::atlas::util::LogLevel::severity)
