// Open-addressing hash containers for the streaming accumulators.
//
// The analysis suite performs a dozen hash-table operations per trace
// record (per-object counters, per-user state, dedup sets); with
// std::unordered_map each of those is a node allocation plus a pointer
// chase, and together they dominate suite throughput. FlatHashMap /
// FlatHashSet are linear-probing, power-of-two tables over parallel
// key/value arrays: one probe is one cache line, inserts never allocate
// per element, and clear() reuses capacity.
//
// Scope and contract:
//   - Insert/find only — no per-element erase (the accumulators never
//     erase; sessions close at Finalize, sets only grow).
//   - Iteration order is a deterministic function of the insertion
//     sequence (same keys in the same order -> same layout on every
//     platform; no libstdc++/libc++ divergence), but it is NOT sorted and
//     NOT insertion order. Order-sensitive consumers must use SortedKeys()
//     (the same rule util/sorted.h states for the std containers).
//   - Keys must be trivially copyable and equality-comparable. The default
//     hasher finalizes integral keys with a SplitMix64-style mixer, so
//     sequential ids and already-random url hashes both spread well under
//     the power-of-two mask.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

namespace atlas::util {

// SplitMix64 finalizer: full-avalanche mixing for 64-bit keys.
inline std::uint64_t MixU64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

template <typename K>
struct FlatHash {
  std::uint64_t operator()(const K& k) const {
    static_assert(std::is_integral_v<K> || std::is_enum_v<K>,
                  "provide a hasher for non-integral keys");
    return MixU64(static_cast<std::uint64_t>(k));
  }
};

// Hasher for pair keys (e.g. the (object, user) engagement pairs).
struct FlatPairHash {
  template <typename A, typename B>
  std::uint64_t operator()(const std::pair<A, B>& p) const {
    const std::uint64_t a = MixU64(static_cast<std::uint64_t>(p.first));
    return MixU64(a ^ static_cast<std::uint64_t>(p.second));
  }
};

namespace internal {

// Shared probing core. Slot metadata is one byte: 0 empty, 1 occupied.
template <typename K, typename Hash>
class FlatTableBase {
 public:
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 protected:
  static constexpr std::size_t kMinCapacity = 16;

  std::size_t Mask() const { return keys_.size() - 1; }

  bool NeedsGrowth() const {
    // Max load factor 3/4 keeps probe sequences short.
    return keys_.empty() || (size_ + 1) * 4 > keys_.size() * 3;
  }

  // Index of `k`'s slot, or the empty slot where it belongs.
  std::size_t Probe(const K& k) const {
    std::size_t i = static_cast<std::size_t>(Hash{}(k)) & Mask();
    while (used_[i] && !(keys_[i] == k)) i = (i + 1) & Mask();
    return i;
  }

  std::vector<K> keys_;
  std::vector<std::uint8_t> used_;
  std::size_t size_ = 0;
};

}  // namespace internal

template <typename K, typename V, typename Hash = FlatHash<K>>
class FlatHashMap : public internal::FlatTableBase<K, Hash> {
  using Base = internal::FlatTableBase<K, Hash>;

 public:
  void reserve(std::size_t n) {
    std::size_t cap = Base::kMinCapacity;
    while (cap * 3 < n * 4) cap <<= 1;
    if (cap > this->keys_.size()) Rehash(cap);
  }

  void clear() {
    std::fill(this->used_.begin(), this->used_.end(), std::uint8_t{0});
    for (auto& v : values_) v = V{};
    this->size_ = 0;
  }

  // Pointer to the mapped value, or nullptr when absent.
  V* Find(const K& k) {
    if (this->keys_.empty()) return nullptr;
    const std::size_t i = this->Probe(k);
    return this->used_[i] ? &values_[i] : nullptr;
  }
  const V* Find(const K& k) const {
    return const_cast<FlatHashMap*>(this)->Find(k);
  }

  // Value for `k`, value-initializing on first touch (like std::map's []).
  V& operator[](const K& k) { return *TryEmplace(k).first; }

  // (slot, inserted): the slot is value-initialized when inserted is true.
  std::pair<V*, bool> TryEmplace(const K& k) {
    if (this->NeedsGrowth()) Rehash(NextCapacity());
    const std::size_t i = this->Probe(k);
    if (this->used_[i]) return {&values_[i], false};
    this->used_[i] = 1;
    this->keys_[i] = k;
    values_[i] = V{};
    ++this->size_;
    return {&values_[i], true};
  }

  // Keep-first insert (std::unordered_map::emplace semantics).
  void InsertIfAbsent(const K& k, const V& v) {
    auto [slot, inserted] = TryEmplace(k);
    if (inserted) *slot = v;
  }

  const V& At(const K& k) const {
    const V* v = Find(k);
    if (!v) throw std::out_of_range("FlatHashMap::At: missing key");
    return *v;
  }

  // Visits every entry. Order is deterministic for a fixed insertion
  // sequence but unsorted — order-sensitive consumers use SortedKeys().
  template <typename F>
  void ForEach(F&& fn) const {
    for (std::size_t i = 0; i < this->keys_.size(); ++i) {
      if (this->used_[i]) fn(this->keys_[i], values_[i]);
    }
  }
  template <typename F>
  void ForEachMutable(F&& fn) {
    for (std::size_t i = 0; i < this->keys_.size(); ++i) {
      if (this->used_[i]) fn(this->keys_[i], values_[i]);
    }
  }

  std::vector<K> SortedKeys() const {
    std::vector<K> keys;
    keys.reserve(this->size_);
    ForEach([&](const K& k, const V&) { keys.push_back(k); });
    std::sort(keys.begin(), keys.end());
    return keys;
  }

 private:
  std::size_t NextCapacity() const {
    return this->keys_.empty() ? Base::kMinCapacity : this->keys_.size() * 2;
  }

  void Rehash(std::size_t cap) {
    std::vector<K> old_keys = std::move(this->keys_);
    std::vector<V> old_values = std::move(values_);
    std::vector<std::uint8_t> old_used = std::move(this->used_);
    this->keys_.assign(cap, K{});
    values_.assign(cap, V{});
    this->used_.assign(cap, 0);
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (!old_used[i]) continue;
      const std::size_t j = this->Probe(old_keys[i]);
      this->used_[j] = 1;
      this->keys_[j] = old_keys[i];
      values_[j] = std::move(old_values[i]);
    }
  }

  std::vector<V> values_;
};

template <typename K, typename Hash = FlatHash<K>>
class FlatHashSet : public internal::FlatTableBase<K, Hash> {
  using Base = internal::FlatTableBase<K, Hash>;

 public:
  void reserve(std::size_t n) {
    std::size_t cap = Base::kMinCapacity;
    while (cap * 3 < n * 4) cap <<= 1;
    if (cap > this->keys_.size()) Rehash(cap);
  }

  void clear() {
    std::fill(this->used_.begin(), this->used_.end(), std::uint8_t{0});
    this->size_ = 0;
  }

  // True when newly inserted.
  bool Insert(const K& k) {
    if (this->NeedsGrowth()) Rehash(NextCapacity());
    const std::size_t i = this->Probe(k);
    if (this->used_[i]) return false;
    this->used_[i] = 1;
    this->keys_[i] = k;
    ++this->size_;
    return true;
  }

  bool Contains(const K& k) const {
    if (this->keys_.empty()) return false;
    return this->used_[this->Probe(k)] != 0;
  }

  std::vector<K> SortedElements() const {
    std::vector<K> keys;
    keys.reserve(this->size_);
    for (std::size_t i = 0; i < this->keys_.size(); ++i) {
      if (this->used_[i]) keys.push_back(this->keys_[i]);
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  }

 private:
  std::size_t NextCapacity() const {
    return this->keys_.empty() ? Base::kMinCapacity : this->keys_.size() * 2;
  }

  void Rehash(std::size_t cap) {
    std::vector<K> old_keys = std::move(this->keys_);
    std::vector<std::uint8_t> old_used = std::move(this->used_);
    this->keys_.assign(cap, K{});
    this->used_.assign(cap, 0);
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (!old_used[i]) continue;
      const std::size_t j = this->Probe(old_keys[i]);
      this->used_[j] = 1;
      this->keys_[j] = old_keys[i];
    }
  }
};

}  // namespace atlas::util
