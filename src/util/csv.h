// Minimal CSV reading/writing with RFC-4180 quoting.
//
// Used to export traces and figure data (each bench binary can dump the
// series it prints, so plots can be regenerated outside C++).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace atlas::util {

// Streams rows to any std::ostream. Fields containing the delimiter, quotes,
// or newlines are quoted and inner quotes doubled.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out, char delim = ',')
      : out_(out), delim_(delim) {}

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  // Appends one field to the current row.
  CsvWriter& Field(std::string_view value);
  CsvWriter& Field(std::uint64_t value);
  CsvWriter& Field(std::int64_t value);
  CsvWriter& Field(double value, int decimals = 6);

  // Terminates the current row.
  void EndRow();

  // Convenience: writes an entire row of string fields.
  void Row(const std::vector<std::string>& fields);

  std::size_t rows_written() const { return rows_written_; }

 private:
  std::ostream& out_;
  char delim_;
  bool row_started_ = false;
  std::size_t rows_written_ = 0;
};

// Parses one CSV line into fields, honoring quotes. Throws on unterminated
// quotes. (Multi-line quoted fields are not supported; ATLAS never emits
// them.)
std::vector<std::string> ParseCsvLine(std::string_view line, char delim = ',');

}  // namespace atlas::util
