#include "util/time.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace atlas::util {

const char* const kDayNames[7] = {"Sat", "Sun", "Mon", "Tue",
                                  "Wed", "Thu", "Fri"};

TimeZone TimeZone::FromHours(double offset_hours) {
  const double q = offset_hours * 4.0;
  const double rounded = std::nearbyint(q);
  if (std::abs(q - rounded) > 1e-9) {
    throw std::invalid_argument(
        "TimeZone::FromHours: offset must be a multiple of 15 minutes");
  }
  if (rounded < -14 * 4 || rounded > 14 * 4) {
    throw std::invalid_argument("TimeZone::FromHours: offset out of range");
  }
  TimeZone tz;
  tz.offset_quarter_hours_ = static_cast<std::int8_t>(rounded);
  return tz;
}

namespace {

// Wraps a (possibly negative) local timestamp into [0, week).
std::int64_t WrapToWeek(std::int64_t local_ms) {
  std::int64_t m = local_ms % kMillisPerWeek;
  if (m < 0) m += kMillisPerWeek;
  return m;
}

}  // namespace

int HourOfDay(std::int64_t local_ms) {
  return static_cast<int>((WrapToWeek(local_ms) / kMillisPerHour) % 24);
}

int HourOfWeek(std::int64_t local_ms) {
  return static_cast<int>(WrapToWeek(local_ms) / kMillisPerHour);
}

int DayOfWeek(std::int64_t local_ms) {
  return static_cast<int>(WrapToWeek(local_ms) / kMillisPerDay);
}

std::string FormatTimestamp(std::int64_t ms) {
  const std::int64_t wrapped = WrapToWeek(ms);
  const int day = static_cast<int>(wrapped / kMillisPerDay);
  const std::int64_t in_day = wrapped % kMillisPerDay;
  const int h = static_cast<int>(in_day / kMillisPerHour);
  const int m = static_cast<int>((in_day / kMillisPerMinute) % 60);
  const int s = static_cast<int>((in_day / kMillisPerSecond) % 60);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s %02d:%02d:%02d", kDayNames[day], h, m, s);
  return buf;
}

std::string FormatDuration(std::int64_t ms) {
  char buf[48];
  if (ms < kMillisPerSecond) {
    std::snprintf(buf, sizeof(buf), "%lld ms", static_cast<long long>(ms));
  } else if (ms < kMillisPerMinute) {
    std::snprintf(buf, sizeof(buf), "%.1f s",
                  static_cast<double>(ms) / kMillisPerSecond);
  } else if (ms < kMillisPerHour) {
    std::snprintf(buf, sizeof(buf), "%.1f min",
                  static_cast<double>(ms) / kMillisPerMinute);
  } else if (ms < kMillisPerDay) {
    std::snprintf(buf, sizeof(buf), "%.1f h",
                  static_cast<double>(ms) / kMillisPerHour);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f d",
                  static_cast<double>(ms) / kMillisPerDay);
  }
  return buf;
}

}  // namespace atlas::util
