// Minimal dependency-free TOML reader for declarative scenario configs.
//
// Supports the subset the scenario engine needs, parsed loudly: bare keys,
// `key = value` pairs (strings, integers, floats, booleans, homogeneous
// arrays), `[table]` headers with dotted paths, and `[[array-of-tables]]`
// blocks. Everything else — inline tables, multiline strings, dates,
// duplicate keys — is a ConfigError that names the offending line and
// column. The reader never guesses: a malformed file fails to parse, it
// does not half-load.
//
// Consumers walk the parsed tree through TableView, which tracks which
// keys were read and rejects files containing keys nothing consumed
// (typos in a scenario file must fail, not silently fall back to
// defaults).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace atlas::util::config {

// Parse or schema error; the message always carries "<source>:line:col".
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

// One parsed value. Tables preserve insertion order (so canonical
// re-serialization is stable) and are represented as key/value pair lists —
// scenario files are small, linear lookup is fine.
class Value {
 public:
  enum class Kind : std::uint8_t {
    kBool = 0,
    kInt = 1,
    kFloat = 2,
    kString = 3,
    kArray = 4,
    kTable = 5,
  };

  Kind kind = Kind::kTable;
  int line = 0;
  int col = 0;

  bool bool_value = false;
  std::int64_t int_value = 0;
  double float_value = 0.0;
  std::string string_value;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> table;

  // Typed accessors; throw ConfigError naming the value's position when the
  // kind does not match. AsFloat accepts integers (TOML writes `1` for 1.0).
  bool AsBool(const std::string& source) const;
  std::int64_t AsInt(const std::string& source) const;
  double AsFloat(const std::string& source) const;
  const std::string& AsString(const std::string& source) const;

  // Table lookup; nullptr when absent.
  const Value* Find(const std::string& key) const;
};

const char* ToString(Value::Kind kind);

// Parses TOML text into a root table Value. `source` names the input in
// errors (a file path, or "<inline>").
Value ParseToml(std::string_view text, const std::string& source);

// Reads and parses a TOML file; file-open failures are ConfigErrors too.
Value ParseTomlFile(const std::string& path);

// Schema-walking view over a parsed table: every getter marks its key
// consumed, and RejectUnknownKeys() fails on the first key nothing read.
// `path` is the table's dotted position ("site[2]", "simulator.push") so
// schema errors read like the file.
class TableView {
 public:
  TableView(const Value& table, std::string path, std::string source);

  bool Has(const std::string& key) const;

  // Required getters: throw when the key is missing or mistyped.
  std::string GetString(const std::string& key);
  std::int64_t GetInt(const std::string& key);
  double GetFloat(const std::string& key);
  bool GetBool(const std::string& key);

  // Optional getters: return the default when the key is absent.
  std::string GetString(const std::string& key, const std::string& def);
  std::int64_t GetInt(const std::string& key, std::int64_t def);
  double GetFloat(const std::string& key, double def);
  bool GetBool(const std::string& key, bool def);

  // Marks `key` consumed and returns its value, or nullptr when absent.
  // For nested tables / arrays-of-tables the caller builds child
  // TableViews.
  const Value* Consume(const std::string& key);

  // Throws ConfigError on the first key no getter consumed.
  void RejectUnknownKeys() const;

  const std::string& path() const { return path_; }
  const std::string& source() const { return source_; }
  const Value& value() const { return table_; }

 private:
  const Value& Require(const std::string& key, Value::Kind kind);
  ConfigError MissingKey(const std::string& key) const;

  const Value& table_;
  std::string path_;
  std::string source_;
  std::vector<bool> consumed_;
};

// Serialization helpers for writing canonical TOML back out: quoted/escaped
// string literal, and a float form that round-trips exactly (shortest
// representation re-parsing to the same double).
std::string TomlString(const std::string& s);
std::string TomlFloat(double v);

}  // namespace atlas::util::config
