// Deterministic, fast pseudo-random number generation for simulation.
//
// All randomness in ATLAS flows through util::Rng so that every trace, every
// workload, and every simulation run is reproducible from a single 64-bit
// seed. The generator is xoshiro256** (Blackman & Vigna), seeded through
// SplitMix64 as its authors recommend. It satisfies the C++ named requirement
// UniformRandomBitGenerator, so it composes with <random> distributions, but
// the common draws (uniform, exponential, normal, etc.) are provided as
// members to keep call sites terse and allocation-free.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace atlas::util {

// SplitMix64: used to expand a single 64-bit seed into generator state and to
// derive independent child seeds. Passes BigCrush when used as a generator in
// its own right; here it is a seeding utility.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next();

 private:
  std::uint64_t state_;
};

// xoshiro256**: the project-wide PRNG. 256 bits of state, period 2^256 - 1.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return Next(); }
  std::uint64_t Next();

  // Derives an independently-seeded child generator. Children created with
  // distinct tags (or successive calls) have uncorrelated streams, which lets
  // each simulated site/user/module own its own stream without global locks.
  Rng Fork(std::uint64_t tag);

  // Uniform real in [0, 1).
  double NextDouble();

  // Uniform integer in [0, bound) using Lemire's multiply-shift rejection
  // method (unbiased). bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  // Uniform real in [lo, hi).
  double NextRange(double lo, double hi);

  // Bernoulli trial with success probability p (clamped to [0, 1]).
  bool NextBool(double p);

  // Exponential with rate lambda (> 0); mean 1/lambda.
  double NextExponential(double lambda);

  // Standard normal via Box-Muller (cached second variate).
  double NextGaussian();
  double NextGaussian(double mean, double stddev);

  // Lognormal: exp(N(mu, sigma)).
  double NextLogNormal(double mu, double sigma);

  // Pareto with scale x_m (> 0) and shape alpha (> 0).
  double NextPareto(double x_m, double alpha);

  // Weibull with scale lambda (> 0) and shape k (> 0).
  double NextWeibull(double lambda, double k);

  // Geometric: number of failures before first success, p in (0, 1].
  std::uint64_t NextGeometric(double p);

  // Poisson with mean lambda (>= 0). Uses Knuth for small lambda and a
  // normal approximation above 64 (adequate for workload synthesis).
  std::uint64_t NextPoisson(double lambda);

  // Picks an index in [0, weights.size()) proportionally to weights.
  // Weights must be non-negative and sum to > 0. O(n); for hot paths use
  // stats::AliasTable instead.
  std::size_t NextWeighted(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextBounded(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Full generator state as plain data, for checkpoint/restore. A restored
  // generator continues the exact stream (including the cached Box-Muller
  // variate) from where the snapshot was taken. util sits below ckpt in the
  // layering, so this is a POD handoff rather than a Checkpointable.
  struct Snapshot {
    std::array<std::uint64_t, 4> state{};
    double cached_gaussian = 0.0;
    bool has_cached_gaussian = false;
  };
  Snapshot TakeSnapshot() const {
    return {state_, cached_gaussian_, has_cached_gaussian_};
  }
  void RestoreSnapshot(const Snapshot& s) {
    state_ = s.state;
    cached_gaussian_ = s.cached_gaussian;
    has_cached_gaussian_ = s.has_cached_gaussian;
  }

 private:
  std::array<std::uint64_t, 4> state_;
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace atlas::util
