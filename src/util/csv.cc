#include "util/csv.h"

#include <cstdio>
#include <stdexcept>

namespace atlas::util {
namespace {

bool NeedsQuoting(std::string_view value, char delim) {
  for (char c : value) {
    if (c == delim || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

}  // namespace

CsvWriter& CsvWriter::Field(std::string_view value) {
  if (row_started_) out_ << delim_;
  row_started_ = true;
  if (NeedsQuoting(value, delim_)) {
    out_ << '"';
    for (char c : value) {
      if (c == '"') out_ << '"';
      out_ << c;
    }
    out_ << '"';
  } else {
    out_ << value;
  }
  return *this;
}

CsvWriter& CsvWriter::Field(std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(value));
  return Field(std::string_view(buf));
}

CsvWriter& CsvWriter::Field(std::int64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  return Field(std::string_view(buf));
}

CsvWriter& CsvWriter::Field(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return Field(std::string_view(buf));
}

void CsvWriter::EndRow() {
  out_ << '\n';
  row_started_ = false;
  ++rows_written_;
}

void CsvWriter::Row(const std::vector<std::string>& fields) {
  for (const auto& f : fields) Field(f);
  EndRow();
}

std::vector<std::string> ParseCsvLine(std::string_view line, char delim) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delim) {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
    ++i;
  }
  if (in_quotes) {
    throw std::invalid_argument("ParseCsvLine: unterminated quoted field");
  }
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace atlas::util
