#include "util/config.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace atlas::util::config {
namespace {

[[noreturn]] void Fail(const std::string& source, int line, int col,
                       const std::string& what) {
  std::ostringstream os;
  os << source << ":" << line << ":" << col << ": " << what;
  throw ConfigError(os.str());
}

bool IsBareKeyChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '-';
}

// Cursor over one line of input; the parser is line-oriented (no multiline
// constructs in the supported subset).
class LineCursor {
 public:
  LineCursor(std::string_view text, int line, const std::string& source)
      : text_(text), line_(line), source_(source) {}

  int col() const { return static_cast<int>(pos_) + 1; }
  int line() const { return line_; }

  void SkipSpace() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  // True when nothing but whitespace / a comment remains.
  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size() || text_[pos_] == '#';
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  char Next() { return text_[pos_++]; }

  bool Accept(char c) {
    if (Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void Expect(char c, const std::string& what) {
    if (!Accept(c)) {
      Fail(source_, line_, col(),
           "expected '" + std::string(1, c) + "' " + what);
    }
  }

  std::string ParseBareKey() {
    SkipSpace();
    std::size_t start = pos_;
    while (pos_ < text_.size() && IsBareKeyChar(text_[pos_])) ++pos_;
    if (pos_ == start) {
      Fail(source_, line_, col(),
           "expected a key ([A-Za-z0-9_-]+), found " + Describe());
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  std::string ParseBasicString() {
    Expect('"', "to open a string");
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        Fail(source_, line_, col(), "unterminated string");
      }
      char c = Next();
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          Fail(source_, line_, col(), "unterminated escape in string");
        }
        char e = Next();
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          default:
            Fail(source_, line_, col() - 1,
                 std::string("unsupported escape '\\") + e + "' in string");
        }
        continue;
      }
      out.push_back(c);
    }
  }

  Value ParseValue() {
    SkipSpace();
    Value v;
    v.line = line_;
    v.col = col();
    char c = Peek();
    if (c == '"') {
      v.kind = Value::Kind::kString;
      v.string_value = ParseBasicString();
      return v;
    }
    if (c == '[') {
      Next();
      v.kind = Value::Kind::kArray;
      SkipSpace();
      if (Accept(']')) return v;
      while (true) {
        v.array.push_back(ParseValue());
        SkipSpace();
        if (Accept(']')) return v;
        Expect(',', "between array elements");
        SkipSpace();
        if (Accept(']')) return v;  // tolerate a trailing comma
      }
    }
    if (c == 't' || c == 'f') {
      std::string word = ParseBareKey();
      if (word == "true" || word == "false") {
        v.kind = Value::Kind::kBool;
        v.bool_value = (word == "true");
        return v;
      }
      Fail(source_, line_, v.col, "unrecognized value '" + word + "'");
    }
    if (c == '+' || c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumber(v);
    }
    Fail(source_, line_, v.col, "expected a value, found " + Describe());
  }

 private:
  Value ParseNumber(Value v) {
    std::size_t start = pos_;
    bool is_float = false;
    if (Peek() == '+' || Peek() == '-') Next();
    auto digits = [&] {
      bool any = false;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(Peek())) != 0 ||
              Peek() == '_')) {
        any = any || Peek() != '_';
        Next();
      }
      return any;
    };
    if (!digits()) {
      Fail(source_, line_, col(), "expected digits in number");
    }
    if (Peek() == '.') {
      is_float = true;
      Next();
      if (!digits()) {
        Fail(source_, line_, col(), "expected digits after '.'");
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      is_float = true;
      Next();
      if (Peek() == '+' || Peek() == '-') Next();
      if (!digits()) {
        Fail(source_, line_, col(), "expected digits in exponent");
      }
    }
    std::string text(text_.substr(start, pos_ - start));
    std::erase(text, '_');
    if (is_float) {
      v.kind = Value::Kind::kFloat;
      double out = 0.0;
      auto [ptr, ec] =
          std::from_chars(text.data(), text.data() + text.size(), out);
      if (ec != std::errc() || ptr != text.data() + text.size()) {
        Fail(source_, line_, v.col, "malformed float '" + text + "'");
      }
      v.float_value = out;
    } else {
      v.kind = Value::Kind::kInt;
      std::int64_t out = 0;
      auto [ptr, ec] =
          std::from_chars(text.data(), text.data() + text.size(), out);
      if (ec != std::errc() || ptr != text.data() + text.size()) {
        Fail(source_, line_, v.col, "malformed integer '" + text + "'");
      }
      v.int_value = out;
    }
    return v;
  }

  std::string Describe() const {
    if (pos_ >= text_.size()) return "end of line";
    return "'" + std::string(1, text_[pos_]) + "'";
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_;
  const std::string& source_;
};

Value* FindMutable(Value& table, const std::string& key) {
  for (auto& [k, v] : table.table) {
    if (k == key) return &v;
  }
  return nullptr;
}

// Resolves a dotted header path ("a.b.c"), creating intermediate tables.
// `as_array` appends a fresh element to an array-of-tables at the leaf.
Value* ResolveHeader(Value& root, const std::vector<std::string>& path,
                     bool as_array, const std::string& source, int line,
                     int col) {
  Value* cur = &root;
  for (std::size_t i = 0; i < path.size(); ++i) {
    bool leaf = (i + 1 == path.size());
    Value* next = FindMutable(*cur, path[i]);
    if (next == nullptr) {
      Value fresh;
      fresh.kind = (leaf && as_array) ? Value::Kind::kArray
                                      : Value::Kind::kTable;
      fresh.line = line;
      fresh.col = col;
      cur->table.emplace_back(path[i], std::move(fresh));
      next = &cur->table.back().second;
    }
    if (leaf) {
      if (as_array) {
        if (next->kind != Value::Kind::kArray) {
          Fail(source, line, col,
               "[[" + path[i] + "]] conflicts with an earlier non-array key");
        }
        Value elem;
        elem.kind = Value::Kind::kTable;
        elem.line = line;
        elem.col = col;
        next->array.push_back(std::move(elem));
        return &next->array.back();
      }
      if (next->kind != Value::Kind::kTable) {
        Fail(source, line, col,
             "[" + path[i] + "] conflicts with an earlier non-table key");
      }
      return next;
    }
    // Descend: through a table directly, or into the last element of an
    // array-of-tables (standard TOML subtable-of-last-element semantics).
    if (next->kind == Value::Kind::kArray) {
      if (next->array.empty() || next->array.back().kind != Value::Kind::kTable) {
        Fail(source, line, col,
             "cannot descend into '" + path[i] + "': not a table array");
      }
      cur = &next->array.back();
    } else if (next->kind == Value::Kind::kTable) {
      cur = next;
    } else {
      Fail(source, line, col,
           "cannot descend into '" + path[i] + "': not a table");
    }
  }
  return cur;
}

}  // namespace

const char* ToString(Value::Kind kind) {
  switch (kind) {
    case Value::Kind::kBool: return "bool";
    case Value::Kind::kInt: return "integer";
    case Value::Kind::kFloat: return "float";
    case Value::Kind::kString: return "string";
    case Value::Kind::kArray: return "array";
    case Value::Kind::kTable: return "table";
  }
  return "?";
}

namespace {
[[noreturn]] void KindMismatch(const Value& v, const std::string& source,
                               const char* wanted) {
  Fail(source, v.line, v.col,
       std::string("expected ") + wanted + ", found " + ToString(v.kind));
}
}  // namespace

bool Value::AsBool(const std::string& source) const {
  if (kind != Kind::kBool) KindMismatch(*this, source, "bool");
  return bool_value;
}

std::int64_t Value::AsInt(const std::string& source) const {
  if (kind != Kind::kInt) KindMismatch(*this, source, "integer");
  return int_value;
}

double Value::AsFloat(const std::string& source) const {
  if (kind == Kind::kInt) return static_cast<double>(int_value);
  if (kind != Kind::kFloat) KindMismatch(*this, source, "float");
  return float_value;
}

const std::string& Value::AsString(const std::string& source) const {
  if (kind != Kind::kString) KindMismatch(*this, source, "string");
  return string_value;
}

const Value* Value::Find(const std::string& key) const {
  for (const auto& [k, v] : table) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value ParseToml(std::string_view text, const std::string& source) {
  Value root;
  root.kind = Value::Kind::kTable;
  root.line = 1;
  root.col = 1;
  Value* current = &root;

  int line_no = 0;
  std::size_t offset = 0;
  while (offset <= text.size()) {
    std::size_t nl = text.find('\n', offset);
    std::string_view line = text.substr(
        offset, nl == std::string_view::npos ? std::string_view::npos
                                             : nl - offset);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    ++line_no;

    LineCursor cur(line, line_no, source);
    if (!cur.AtEnd()) {
      if (cur.Peek() == '[') {
        cur.Next();
        bool as_array = cur.Accept('[');
        int hcol = cur.col();
        std::vector<std::string> path;
        path.push_back(cur.ParseBareKey());
        while (cur.Accept('.')) path.push_back(cur.ParseBareKey());
        cur.Expect(']', "to close the table header");
        if (as_array) cur.Expect(']', "to close the table-array header");
        if (!cur.AtEnd()) {
          Fail(source, line_no, cur.col(),
               "unexpected text after table header");
        }
        current = ResolveHeader(root, path, as_array, source, line_no, hcol);
      } else {
        int kcol = cur.col();
        std::string key = cur.ParseBareKey();
        cur.SkipSpace();
        cur.Expect('=', "after key '" + key + "'");
        Value v = cur.ParseValue();
        if (!cur.AtEnd()) {
          Fail(source, line_no, cur.col(), "unexpected text after value");
        }
        if (current->Find(key) != nullptr) {
          Fail(source, line_no, kcol, "duplicate key '" + key + "'");
        }
        current->table.emplace_back(std::move(key), std::move(v));
      }
    }

    if (nl == std::string_view::npos) break;
    offset = nl + 1;
  }
  return root;
}

Value ParseTomlFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw ConfigError(path + ": cannot open file");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseToml(buf.str(), path);
}

TableView::TableView(const Value& table, std::string path, std::string source)
    : table_(table), path_(std::move(path)), source_(std::move(source)) {
  if (table_.kind != Value::Kind::kTable) {
    Fail(source_, table_.line, table_.col,
         "expected a table at " + path_ + ", found " + ToString(table_.kind));
  }
  consumed_.assign(table_.table.size(), false);
}

bool TableView::Has(const std::string& key) const {
  return table_.Find(key) != nullptr;
}

const Value* TableView::Consume(const std::string& key) {
  for (std::size_t i = 0; i < table_.table.size(); ++i) {
    if (table_.table[i].first == key) {
      consumed_[i] = true;
      return &table_.table[i].second;
    }
  }
  return nullptr;
}

ConfigError TableView::MissingKey(const std::string& key) const {
  std::ostringstream os;
  os << source_ << ":" << table_.line << ":" << table_.col << ": " << path_
     << " is missing required key '" << key << "'";
  return ConfigError(os.str());
}

const Value& TableView::Require(const std::string& key, Value::Kind kind) {
  const Value* v = Consume(key);
  if (v == nullptr) throw MissingKey(key);
  if (v->kind != kind &&
      !(kind == Value::Kind::kFloat && v->kind == Value::Kind::kInt)) {
    Fail(source_, v->line, v->col,
         path_ + "." + key + ": expected " + ToString(kind) + ", found " +
             ToString(v->kind));
  }
  return *v;
}

std::string TableView::GetString(const std::string& key) {
  return Require(key, Value::Kind::kString).string_value;
}
std::int64_t TableView::GetInt(const std::string& key) {
  return Require(key, Value::Kind::kInt).int_value;
}
double TableView::GetFloat(const std::string& key) {
  return Require(key, Value::Kind::kFloat).AsFloat(source_);
}
bool TableView::GetBool(const std::string& key) {
  return Require(key, Value::Kind::kBool).bool_value;
}

std::string TableView::GetString(const std::string& key,
                                 const std::string& def) {
  return Has(key) ? GetString(key) : def;
}
std::int64_t TableView::GetInt(const std::string& key, std::int64_t def) {
  return Has(key) ? GetInt(key) : def;
}
double TableView::GetFloat(const std::string& key, double def) {
  return Has(key) ? GetFloat(key) : def;
}
bool TableView::GetBool(const std::string& key, bool def) {
  return Has(key) ? GetBool(key) : def;
}

void TableView::RejectUnknownKeys() const {
  for (std::size_t i = 0; i < table_.table.size(); ++i) {
    if (!consumed_[i]) {
      const auto& [key, v] = table_.table[i];
      Fail(source_, v.line, v.col,
           path_ + ": unknown key '" + key + "'");
    }
  }
}

std::string TomlString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

std::string TomlFloat(double v) {
  // Shortest decimal form that round-trips; force a '.' or exponent so the
  // value re-parses as a float, not an integer.
  char buf[64];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) break;
  }
  std::string out(buf);
  if (out.find('.') == std::string::npos &&
      out.find('e') == std::string::npos &&
      out.find("inf") == std::string::npos &&
      out.find("nan") == std::string::npos) {
    out += ".0";
  }
  return out;
}

}  // namespace atlas::util::config
