#include "util/par.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace atlas::util {
namespace {

int HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::atomic<int> g_default_threads{0};  // 0 = use HardwareThreads()

thread_local int tls_parallel_depth = 0;

// RAII depth marker for threads executing shards.
struct ParallelRegionGuard {
  ParallelRegionGuard() { ++tls_parallel_depth; }
  ~ParallelRegionGuard() { --tls_parallel_depth; }
};

}  // namespace

int DefaultThreads() {
  const int pinned = g_default_threads.load(std::memory_order_relaxed);
  return pinned > 0 ? pinned : HardwareThreads();
}

void SetDefaultThreads(int n) {
  g_default_threads.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

int ResolveThreads(int threads) {
  return threads > 0 ? threads : DefaultThreads();
}

bool InParallelRegion() { return tls_parallel_depth > 0; }

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, ResolveThreads(threads));
  workers_.reserve(static_cast<std::size_t>(n - 1));
  for (int i = 0; i < n - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
  }
  job_cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t shards = 0;
    {
      MutexLock lock(mutex_);
      while (!shutdown_ && generation_ == seen_generation) {
        job_cv_.Wait(mutex_);
      }
      if (shutdown_) return;
      seen_generation = generation_;
      fn = job_fn_;
      shards = job_shards_;
    }
    RunShards(*fn, shards);
    {
      MutexLock lock(mutex_);
      if (--pending_workers_ == 0) done_cv_.NotifyAll();
    }
  }
}

void ThreadPool::RunShards(const std::function<void(std::size_t)>& fn,
                           std::size_t shards) {
  ParallelRegionGuard guard;
  for (;;) {
    if (abort_job_.load(std::memory_order_relaxed)) return;
    const std::size_t shard =
        next_shard_.fetch_add(1, std::memory_order_relaxed);
    if (shard >= shards) return;
    try {
      fn(shard);
    } catch (...) {
      abort_job_.store(true, std::memory_order_relaxed);
      MutexLock lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void ThreadPool::Run(std::size_t shards,
                     const std::function<void(std::size_t)>& fn) {
  if (InParallelRegion()) {
    throw std::logic_error(
        "ThreadPool::Run called from inside a parallel region; run the "
        "nested work inline or via ParallelFor");
  }
  if (shards == 0) return;
  {
    MutexLock lock(mutex_);
    job_fn_ = &fn;
    job_shards_ = shards;
    next_shard_.store(0, std::memory_order_relaxed);
    abort_job_.store(false, std::memory_order_relaxed);
    first_error_ = nullptr;
    pending_workers_ = workers_.size();
    ++generation_;
  }
  job_cv_.NotifyAll();
  RunShards(fn, shards);  // the caller is the pool's final executor
  std::exception_ptr error;
  {
    MutexLock lock(mutex_);
    while (pending_workers_ != 0) done_cv_.Wait(mutex_);
    job_fn_ = nullptr;
    job_shards_ = 0;
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                 int threads) {
  if (n == 0) return;
  const int t = ResolveThreads(threads);
  if (t <= 1 || n == 1 || InParallelRegion()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t executors =
      std::min<std::size_t>(static_cast<std::size_t>(t), n);
  ThreadPool pool(static_cast<int>(executors));
  pool.Run(n, fn);
}

ShardedRng::ShardedRng(std::uint64_t seed, std::size_t shards) {
  SplitMix64 mixer(seed);
  seeds_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) seeds_.push_back(mixer.Next());
}

std::vector<std::uint64_t> ApportionByWeight(
    std::uint64_t total, const std::vector<double>& weights) {
  if (weights.empty()) return {};
  const std::size_t n = weights.size();
  const double mass = std::accumulate(weights.begin(), weights.end(), 0.0);
  std::vector<std::uint64_t> quota(n, 0);
  if (mass <= 0.0) {
    // Even split fallback.
    for (std::size_t i = 0; i < n; ++i) quota[i] = total / n;
    for (std::size_t i = 0; i < total % n; ++i) ++quota[i];
    return quota;
  }
  std::vector<std::pair<double, std::size_t>> remainders;
  remainders.reserve(n);
  std::uint64_t assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double exact =
        static_cast<double>(total) * (std::max(0.0, weights[i]) / mass);
    const auto floor_units = static_cast<std::uint64_t>(exact);
    quota[i] = floor_units;
    assigned += floor_units;
    remainders.emplace_back(exact - static_cast<double>(floor_units), i);
  }
  // Hand the leftover units to the largest fractional parts; ties go to the
  // lower index so the result is fully deterministic.
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (std::size_t k = 0; assigned < total; ++k) {
    ++quota[remainders[k % n].second];
    ++assigned;
  }
  return quota;
}

}  // namespace atlas::util
