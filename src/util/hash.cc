#include "util/hash.h"

#include <stdexcept>

namespace atlas::util {

std::uint64_t Fnv1a64(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t Mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

std::uint64_t HashCombine(std::uint64_t seed, std::uint64_t value) {
  return seed ^ (Mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 12) +
                 (seed >> 4));
}

std::uint64_t HashToBucket(std::uint64_t hash, std::uint64_t buckets) {
  if (buckets == 0) throw std::invalid_argument("HashToBucket: 0 buckets");
  return static_cast<std::uint64_t>(
      (static_cast<__uint128_t>(hash) * buckets) >> 64);
}

}  // namespace atlas::util
