#include "util/hash.h"

#include <stdexcept>

namespace atlas::util {

std::uint64_t Fnv1a64(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t Mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

std::uint64_t HashCombine(std::uint64_t seed, std::uint64_t value) {
  return seed ^ (Mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 12) +
                 (seed >> 4));
}

namespace {

struct Crc32Table {
  std::uint32_t entries[256];
  Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const Crc32Table table;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table.entries[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint64_t HashToBucket(std::uint64_t hash, std::uint64_t buckets) {
  if (buckets == 0) throw std::invalid_argument("HashToBucket: 0 buckets");
  return static_cast<std::uint64_t>(
      (static_cast<__uint128_t>(hash) * buckets) >> 64);
}

}  // namespace atlas::util
