#include "util/hash.h"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace atlas::util {

std::uint64_t Fnv1a64(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t Mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

std::uint64_t HashCombine(std::uint64_t seed, std::uint64_t value) {
  return seed ^ (Mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 12) +
                 (seed >> 4));
}

namespace {

// Slicing-by-8 CRC-32 (polynomial 0xEDB88320): table[0] is the classic
// byte-at-a-time table, tables 1..7 advance a byte through k extra zero
// bytes, so eight lookups retire eight input bytes per iteration. Produces
// bit-identical results to the one-table loop — every trace CRC on disk
// stays valid.
struct Crc32Tables {
  std::uint32_t t[8][256];
  Crc32Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (int k = 1; k < 8; ++k) {
      for (std::uint32_t i = 0; i < 256; ++i) {
        t[k][i] = t[0][t[k - 1][i] & 0xFFu] ^ (t[k - 1][i] >> 8);
      }
    }
  }
};

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const Crc32Tables table;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  if constexpr (std::endian::native == std::endian::little) {
    while (size >= 8) {
      std::uint32_t lo;
      std::uint32_t hi;
      std::memcpy(&lo, p, 4);
      std::memcpy(&hi, p + 4, 4);
      lo ^= c;
      c = table.t[7][lo & 0xFFu] ^ table.t[6][(lo >> 8) & 0xFFu] ^
          table.t[5][(lo >> 16) & 0xFFu] ^ table.t[4][lo >> 24] ^
          table.t[3][hi & 0xFFu] ^ table.t[2][(hi >> 8) & 0xFFu] ^
          table.t[1][(hi >> 16) & 0xFFu] ^ table.t[0][hi >> 24];
      p += 8;
      size -= 8;
    }
  }
  for (std::size_t i = 0; i < size; ++i) {
    c = table.t[0][(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint64_t HashToBucket(std::uint64_t hash, std::uint64_t buckets) {
  if (buckets == 0) throw std::invalid_argument("HashToBucket: 0 buckets");
  return static_cast<std::uint64_t>(
      (static_cast<__uint128_t>(hash) * buckets) >> 64);
}

}  // namespace atlas::util
