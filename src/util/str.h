// Small string helpers used across trace parsing and report rendering.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace atlas::util {

// Splits on a single-character delimiter. Empty fields are preserved
// ("a,,b" -> {"a", "", "b"}); an empty input yields one empty field.
std::vector<std::string_view> Split(std::string_view s, char delim);

// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

std::string ToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

// "1.5 KB", "258.0 GB" — powers of 1024, one decimal.
std::string FormatBytes(double bytes);

// "1.2K", "3.4M", "80.0M" — powers of 1000, one decimal.
std::string FormatCount(double count);

// "12.3%" with the given number of decimals.
std::string FormatPercent(double fraction, int decimals = 1);

// Fixed-decimal double formatting ("3.14").
std::string FormatDouble(double value, int decimals);

// Pads/truncates to an exact width (left- or right-aligned) for table output.
std::string PadRight(std::string_view s, std::size_t width);
std::string PadLeft(std::string_view s, std::size_t width);

// Parses a non-negative integer / double; throws std::invalid_argument on
// malformed input (trailing garbage included).
std::uint64_t ParseUint64(std::string_view s);
double ParseDouble(std::string_view s);

// Parses a (possibly negative) integer; throws std::invalid_argument on
// malformed input. Callers that need a narrower domain (e.g. non-negative
// timestamps) check the range themselves so they can report which field
// was out of range.
std::int64_t ParseInt64(std::string_view s);

}  // namespace atlas::util
