// Deterministic iteration over unordered containers.
//
// Hash-table iteration order is implementation-defined; any floating-point
// accumulation or output ordering derived from it is not reproducible across
// standard libraries. Where the consumer is order-sensitive, iterate via
// SortedKeys() instead of range-for over the container (the atlas-lint
// `unordered-iter` rule flags the latter).
#pragma once

#include <algorithm>
#include <vector>

namespace atlas::util {

// Keys of an (unordered) associative container in ascending order. O(n log n),
// intended for Finalize()-style paths where determinism matters more than the
// extra sort.
template <typename Map>
std::vector<typename Map::key_type> SortedKeys(const Map& m) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(m.size());
  for (const auto& kv : m) keys.push_back(kv.first);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace atlas::util
