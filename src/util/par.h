// Deterministic parallel execution primitives.
//
// Everything here is built around one contract: *running with T threads
// produces bit-identical results to running with 1 thread*. The primitives
// guarantee their half of that contract — shards are a pure function of the
// problem, never of the thread count, and reductions combine in index
// order — and callers guarantee the other half by giving each shard its own
// RNG stream (ShardedRng) and writing only to shard-private slots.
//
// Scheduling is dynamic (workers pull the next shard index from an atomic
// counter), which balances skewed shard costs without affecting results:
// shard `i` computes the same value no matter which worker runs it or when.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace atlas::util {

// Process-wide default worker count used when a `threads` argument is <= 0.
// Initialized to std::thread::hardware_concurrency(); tools plumb their
// --threads flag through SetDefaultThreads. Always >= 1.
int DefaultThreads();

// n >= 1 pins the default; n <= 0 restores the hardware default.
void SetDefaultThreads(int n);

// Resolves a caller-supplied thread count: <= 0 means DefaultThreads().
int ResolveThreads(int threads);

// True while the calling thread is executing inside a parallel region
// (a ThreadPool::Run worker or its participating caller). ParallelFor and
// ParallelReduce consult this to run nested calls inline instead of
// spawning a pool inside a pool.
bool InParallelRegion();

// A small fixed-size thread pool. The pool owns `threads - 1` workers; the
// thread calling Run() participates as the final executor, so `threads == 1`
// spawns nothing and runs inline.
class ThreadPool {
 public:
  // threads <= 0 means DefaultThreads().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total executor count (workers + the participating caller).
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  // Runs fn(shard) for every shard in [0, shards), distributing shards
  // dynamically across the pool and the calling thread. Blocks until every
  // shard ran (or was abandoned after a failure). If any shard throws, the
  // remaining shards are skipped and the first exception is rethrown here.
  //
  // Rejects nested use: calling Run from inside any parallel region (this
  // pool's or another's) throws std::logic_error — run the inner work
  // inline or via ParallelFor, which degrades gracefully.
  void Run(std::size_t shards, const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();
  // Executes shards of `fn` until the counter runs dry or the job aborts.
  // Workers snapshot (fn, shards) under mutex_ before calling; the job
  // outlives the call because Run() blocks until pending_workers_ hits zero.
  void RunShards(const std::function<void(std::size_t)>& fn,
                 std::size_t shards);

  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar job_cv_;
  CondVar done_cv_;
  // Current job: published under mutex_, snapshot by each worker when it
  // observes a new generation.
  const std::function<void(std::size_t)>* job_fn_ ATLAS_GUARDED_BY(mutex_) =
      nullptr;
  std::size_t job_shards_ ATLAS_GUARDED_BY(mutex_) = 0;
  std::uint64_t generation_ ATLAS_GUARDED_BY(mutex_) = 0;
  std::size_t pending_workers_ ATLAS_GUARDED_BY(mutex_) = 0;
  std::exception_ptr first_error_ ATLAS_GUARDED_BY(mutex_);
  bool shutdown_ ATLAS_GUARDED_BY(mutex_) = false;
  std::atomic<std::size_t> next_shard_{0};
  std::atomic<bool> abort_job_{false};
};

// Runs fn(i) for i in [0, n). With threads (resolved) > 1 and n > 1, shards
// are executed by a transient ThreadPool; results must therefore only
// depend on i, never on execution order. Nested calls (from inside another
// parallel region) execute inline on the calling thread, so parallel code
// can freely call parallel helpers. Rethrows the first exception.
void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                 int threads = 0);

// Computes map(i) for i in [0, n) in parallel, then folds the results in
// strict index order: combine(...combine(combine(init, r0), r1)..., rn-1).
// The fold is serial and ordered, so floating-point reductions are
// bit-identical regardless of thread count.
template <typename T>
T ParallelReduce(std::size_t n, T init,
                 const std::function<T(std::size_t)>& map,
                 const std::function<T(const T&, const T&)>& combine,
                 int threads = 0) {
  std::vector<T> slots(n);
  ParallelFor(
      n, [&](std::size_t i) { slots[i] = map(i); }, threads);
  T acc = init;
  for (std::size_t i = 0; i < n; ++i) acc = combine(acc, slots[i]);
  return acc;
}

// Derives one independent SplitMix64-seeded RNG stream per shard from a
// single base seed. The stream seeds are drawn once, in shard order, at
// construction — a pure function of (seed, shards) — so shard i sees the
// same stream whether the run uses 1 thread or 64.
class ShardedRng {
 public:
  ShardedRng(std::uint64_t seed, std::size_t shards);

  std::size_t shards() const { return seeds_.size(); }
  std::uint64_t seed(std::size_t shard) const { return seeds_.at(shard); }
  Rng MakeRng(std::size_t shard) const { return Rng(seeds_.at(shard)); }

 private:
  std::vector<std::uint64_t> seeds_;
};

// Splits `total` units across `shards` in proportion to `weights`
// (largest-remainder apportionment; ties resolved by lower index). The
// returned quotas sum to exactly `total`. Zero/empty weights fall back to
// an even split. Used to hand each generator shard its exact slice of a
// request budget.
std::vector<std::uint64_t> ApportionByWeight(std::uint64_t total,
                                             const std::vector<double>& weights);

}  // namespace atlas::util
