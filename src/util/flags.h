// A tiny command-line flag parser for examples and bench binaries.
//
// Supports "--name=value", "--name value", and boolean "--name" /
// "--no-name". Unknown flags are an error (catches typos in experiment
// scripts); positional arguments are collected in order.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace atlas::util {

class Flags {
 public:
  Flags() = default;

  // Registers a flag with its default value and help text. Must be called
  // before Parse().
  void DefineString(const std::string& name, const std::string& default_value,
                    const std::string& help);
  void DefineInt(const std::string& name, std::int64_t default_value,
                 const std::string& help);
  void DefineDouble(const std::string& name, double default_value,
                    const std::string& help);
  void DefineBool(const std::string& name, bool default_value,
                  const std::string& help);

  // Parses argv. Throws std::invalid_argument on unknown flags or malformed
  // values. Recognizes "--help" and sets help_requested().
  void Parse(int argc, const char* const* argv);

  std::string GetString(const std::string& name) const;
  std::int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }
  bool help_requested() const { return help_requested_; }

  // True when the flag was set on the command line (vs. left at its
  // default) — lets a command distinguish "--seed 42" from "no --seed".
  bool Provided(const std::string& name) const;

  // Renders "--name (default: ...)  help" lines.
  std::string Usage(const std::string& program) const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct Def {
    Type type;
    std::string value;  // canonical textual representation
    std::string help;
  };

  const Def& Lookup(const std::string& name, Type expected) const;
  void Assign(const std::string& name, const std::string& value);

  std::map<std::string, Def> defs_;
  std::vector<std::string> positional_;
  std::set<std::string> provided_;
  bool help_requested_ = false;
};

}  // namespace atlas::util
