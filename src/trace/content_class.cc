#include "trace/content_class.h"

#include "util/str.h"

namespace atlas::trace {

ContentClass ClassOf(FileType type) {
  switch (type) {
    case FileType::kFlv:
    case FileType::kMp4:
    case FileType::kMpg:
    case FileType::kAvi:
    case FileType::kWmv:
    case FileType::kWebm:
      return ContentClass::kVideo;
    case FileType::kJpg:
    case FileType::kPng:
    case FileType::kGif:
    case FileType::kTiff:
    case FileType::kBmp:
    case FileType::kWebp:
      return ContentClass::kImage;
    case FileType::kHtml:
    case FileType::kCss:
    case FileType::kJs:
    case FileType::kXml:
    case FileType::kTxt:
    case FileType::kJson:
    case FileType::kMp3:
    case FileType::kUnknown:
      return ContentClass::kOther;
  }
  return ContentClass::kOther;
}

FileType FileTypeFromExtension(std::string_view ext) {
  while (!ext.empty() && ext.front() == '.') ext.remove_prefix(1);
  const std::string lower = util::ToLower(ext);
  if (lower == "flv") return FileType::kFlv;
  if (lower == "mp4" || lower == "m4v") return FileType::kMp4;
  if (lower == "mpg" || lower == "mpeg") return FileType::kMpg;
  if (lower == "avi") return FileType::kAvi;
  if (lower == "wmv") return FileType::kWmv;
  if (lower == "webm") return FileType::kWebm;
  if (lower == "jpg" || lower == "jpeg") return FileType::kJpg;
  if (lower == "png") return FileType::kPng;
  if (lower == "gif") return FileType::kGif;
  if (lower == "tif" || lower == "tiff") return FileType::kTiff;
  if (lower == "bmp") return FileType::kBmp;
  if (lower == "webp") return FileType::kWebp;
  if (lower == "html" || lower == "htm") return FileType::kHtml;
  if (lower == "css") return FileType::kCss;
  if (lower == "js") return FileType::kJs;
  if (lower == "xml") return FileType::kXml;
  if (lower == "txt") return FileType::kTxt;
  if (lower == "json") return FileType::kJson;
  if (lower == "mp3") return FileType::kMp3;
  return FileType::kUnknown;
}

FileType FileTypeFromUrl(std::string_view url) {
  // Strip query and fragment.
  const std::size_t q = url.find_first_of("?#");
  if (q != std::string_view::npos) url = url.substr(0, q);
  // Last path segment.
  const std::size_t slash = url.rfind('/');
  if (slash != std::string_view::npos) url = url.substr(slash + 1);
  const std::size_t dot = url.rfind('.');
  if (dot == std::string_view::npos || dot + 1 >= url.size()) {
    return FileType::kUnknown;
  }
  return FileTypeFromExtension(url.substr(dot + 1));
}

}  // namespace atlas::trace
