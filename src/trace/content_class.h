// File-type classification.
//
// §IV-A: "we categorize objects based on their file types into video (e.g.,
// FLV, MP4, MPG, AVI, WMV), image (e.g., JPG, PNG, GIF, TIFF, BMP), and
// other (e.g., text, audio, HTML, CSS, XML, JS)".
#pragma once

#include <string_view>

#include "trace/record.h"

namespace atlas::trace {

// Maps a concrete file type to its content class.
ContentClass ClassOf(FileType type);

// Parses a file extension ("mp4", ".JPG", "jpeg") into a FileType; unknown
// extensions map to FileType::kUnknown (class kOther).
FileType FileTypeFromExtension(std::string_view ext);

// Extracts the extension from a URL path ("/a/b/clip.mp4?x=1" -> "mp4") and
// classifies it. URLs with no extension yield kUnknown.
FileType FileTypeFromUrl(std::string_view url);

}  // namespace atlas::trace
