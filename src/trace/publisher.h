// Publisher (website) registry.
//
// The paper separates adult from non-adult publishers "through an extensive
// manual analysis of publisher identifiers" and then studies five anonymized
// adult sites: V-1, V-2 (YouTube-style video), P-1, P-2 (image-heavy), and
// S-1 (adult social networking). The registry assigns stable ids and carries
// the per-site classification the analyses group by.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace atlas::trace {

enum class SiteKind : std::uint8_t {
  kAdultVideo = 0,     // V-1, V-2
  kAdultImage = 1,     // P-1, P-2
  kAdultSocial = 2,    // S-1
  kNonAdult = 3,       // control / background traffic
};

const char* ToString(SiteKind kind);

struct Publisher {
  std::uint32_t id = 0;
  std::string name;  // anonymized label, e.g. "V-1"
  SiteKind kind = SiteKind::kNonAdult;

  bool is_adult() const { return kind != SiteKind::kNonAdult; }
};

class PublisherRegistry {
 public:
  PublisherRegistry() = default;

  // Registers a publisher; names must be unique. Returns the assigned id.
  std::uint32_t Register(const std::string& name, SiteKind kind);

  const Publisher& Get(std::uint32_t id) const;
  std::optional<std::uint32_t> FindByName(const std::string& name) const;

  std::size_t size() const { return publishers_.size(); }
  const std::vector<Publisher>& all() const { return publishers_; }

  std::vector<std::uint32_t> AdultIds() const;

  // The paper's five-site study population: V-1, V-2, P-1, P-2, S-1 (in that
  // order), plus one non-adult control publisher "N-1".
  static PublisherRegistry PaperSites();

 private:
  std::vector<Publisher> publishers_;
};

}  // namespace atlas::trace
