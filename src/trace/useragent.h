// User-agent parsing and the user-agent bank.
//
// The paper (§III) uses "the user agent field to distinguish between
// different device types, operating systems, and web browsers" [RFC 2616].
// UaParser is a substring-rule classifier in the style of practical log
// pipelines; UaBank is a catalog of realistic UA strings with known ground
// truth, used by the synthesizer — so the generator emits real strings and
// the analysis re-parses them, exercising the same path a production
// pipeline would.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "trace/record.h"

namespace atlas::trace {

enum class OsFamily : std::uint8_t {
  kWindows = 0,
  kMacOs,
  kLinux,
  kAndroidOs,
  kIosOs,
  kOtherOs,
};
inline constexpr int kNumOsFamilies = 6;

enum class BrowserFamily : std::uint8_t {
  kChrome = 0,
  kFirefox,
  kSafari,
  kEdge,
  kIe,
  kOpera,
  kOtherBrowser,
};
inline constexpr int kNumBrowserFamilies = 7;

struct UaInfo {
  DeviceType device = DeviceType::kDesktop;
  OsFamily os = OsFamily::kOtherOs;
  BrowserFamily browser = BrowserFamily::kOtherBrowser;
  bool is_bot = false;

  bool operator==(const UaInfo&) const = default;
};

const char* ToString(OsFamily os);
const char* ToString(BrowserFamily browser);

// Classifies a raw User-Agent header. Order of rules matters (e.g. every
// Chrome UA also contains "Safari"); the implementation documents the
// precedence it uses.
UaInfo ParseUserAgent(std::string_view ua);

// A fixed catalog of user-agent strings with known classifications.
// Ids are stable: LogRecord::user_agent_id indexes this bank.
class UaBank {
 public:
  UaBank();

  std::uint16_t size() const { return static_cast<std::uint16_t>(strings_.size()); }
  const std::string& String(std::uint16_t id) const { return strings_.at(id); }
  const UaInfo& Info(std::uint16_t id) const { return infos_.at(id); }

  // All ids whose classified device matches `device`.
  std::vector<std::uint16_t> IdsForDevice(DeviceType device) const;

  // The process-wide immutable instance.
  static const UaBank& Instance();

 private:
  std::vector<std::string> strings_;
  std::vector<UaInfo> infos_;
};

}  // namespace atlas::trace
