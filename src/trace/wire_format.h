// On-the-wire encoding of a single LogRecord, shared by the v1 whole-file
// serializer (trace_io) and the v2 block stream (stream.h).
//
// Records are encoded field by field, little-endian, with no padding — 51
// bytes each — so files are identical across compilers and platforms.
// Decoding validates every enum field and rejects negative timestamps; a
// corrupt byte fails loudly instead of producing an out-of-range enum.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <type_traits>

#include "trace/record.h"

namespace atlas::trace::wire {

inline constexpr std::size_t kRecordWireSize =
    8 + 8 + 8 + 8 + 8 + 4 + 2 + 2 + 1 + 1 + 1;  // 51 bytes

// On little-endian targets the wire layout matches memory, so load/store is
// a plain memcpy (a single unaligned mov after inlining — the byte-by-byte
// fallback is an order of magnitude slower and dominates block decode). The
// big-endian path swaps via the same byte loop as before.

template <typename T>
inline void StoreLe(unsigned char* dst, T value) {
  static_assert(std::is_integral_v<T>);
  using U = std::make_unsigned_t<T>;
  auto u = static_cast<U>(value);
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(dst, &u, sizeof(T));
  } else {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      dst[i] = static_cast<unsigned char>(u & 0xff);
      u = static_cast<U>(u >> 8);
    }
  }
}

template <typename T>
inline T LoadLe(const unsigned char* src) {
  static_assert(std::is_integral_v<T>);
  using U = std::make_unsigned_t<T>;
  U u = 0;
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(&u, src, sizeof(T));
  } else {
    for (std::size_t i = sizeof(T); i > 0; --i) {
      u = static_cast<U>(u << 8) | src[i - 1];
    }
  }
  return static_cast<T>(u);
}

// Encodes `r` into exactly kRecordWireSize bytes at `dst`.
inline void EncodeRecord(const LogRecord& r, unsigned char* dst) {
  StoreLe(dst + 0, r.timestamp_ms);
  StoreLe(dst + 8, r.url_hash);
  StoreLe(dst + 16, r.user_id);
  StoreLe(dst + 24, r.object_size);
  StoreLe(dst + 32, r.response_bytes);
  StoreLe(dst + 40, r.publisher_id);
  StoreLe(dst + 44, r.user_agent_id);
  StoreLe(dst + 46, r.response_code);
  StoreLe(dst + 48, static_cast<std::uint8_t>(r.file_type));
  StoreLe(dst + 49, static_cast<std::uint8_t>(r.cache_status));
  StoreLe(dst + 50, r.tz_offset_quarter_hours);
}

// Decodes kRecordWireSize bytes at `src`; throws std::runtime_error on any
// field a valid writer could not have produced.
inline LogRecord DecodeRecord(const unsigned char* src) {
  LogRecord r;
  r.timestamp_ms = LoadLe<std::int64_t>(src + 0);
  if (r.timestamp_ms < 0) {
    throw std::runtime_error("trace_io: negative timestamp_ms");
  }
  r.url_hash = LoadLe<std::uint64_t>(src + 8);
  r.user_id = LoadLe<std::uint64_t>(src + 16);
  r.object_size = LoadLe<std::uint64_t>(src + 24);
  r.response_bytes = LoadLe<std::uint64_t>(src + 32);
  r.publisher_id = LoadLe<std::uint32_t>(src + 40);
  r.user_agent_id = LoadLe<std::uint16_t>(src + 44);
  r.response_code = LoadLe<std::uint16_t>(src + 46);
  const auto ft = LoadLe<std::uint8_t>(src + 48);
  if (ft >= kNumFileTypes) throw std::runtime_error("trace_io: bad file type");
  r.file_type = static_cast<FileType>(ft);
  const auto cs = LoadLe<std::uint8_t>(src + 49);
  if (cs > 1) throw std::runtime_error("trace_io: bad cache status");
  r.cache_status = static_cast<CacheStatus>(cs);
  r.tz_offset_quarter_hours = LoadLe<std::int8_t>(src + 50);
  return r;
}

}  // namespace atlas::trace::wire
