// Trace serialization: a versioned binary format plus CSV import/export.
//
// Binary layout (little-endian), format v1:
//   magic "ATLS" | u32 version | u64 record_count | records...
// Each record is written field-by-field (no struct memcpy), so the format is
// independent of compiler padding and stable across platforms. The block-
// based, checksummed v2 format and its streaming reader/writer live in
// stream.h; ReadAnyBinaryFile there accepts either version.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace_buffer.h"

namespace atlas::trace {

inline constexpr std::uint32_t kTraceFormatVersion = 1;

// Throws std::runtime_error on I/O failure.
void WriteBinary(const TraceBuffer& trace, std::ostream& out);
void WriteBinaryFile(const TraceBuffer& trace, const std::string& path);

// Throws std::runtime_error on I/O failure, bad magic, or version mismatch.
TraceBuffer ReadBinary(std::istream& in);
TraceBuffer ReadBinaryFile(const std::string& path);

// CSV with a header row; enums are written as their textual names so the
// files are directly consumable by pandas and friends. WriteCsv throws
// std::runtime_error if the stream fails (e.g. disk full at flush).
void WriteCsv(const TraceBuffer& trace, std::ostream& out);
TraceBuffer ReadCsv(std::istream& in);

}  // namespace atlas::trace
