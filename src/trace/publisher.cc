#include "trace/publisher.h"

#include <stdexcept>

namespace atlas::trace {

const char* ToString(SiteKind kind) {
  switch (kind) {
    case SiteKind::kAdultVideo:
      return "adult-video";
    case SiteKind::kAdultImage:
      return "adult-image";
    case SiteKind::kAdultSocial:
      return "adult-social";
    case SiteKind::kNonAdult:
      return "non-adult";
  }
  return "?";
}

std::uint32_t PublisherRegistry::Register(const std::string& name,
                                          SiteKind kind) {
  if (FindByName(name).has_value()) {
    throw std::invalid_argument("PublisherRegistry: duplicate name: " + name);
  }
  const auto id = static_cast<std::uint32_t>(publishers_.size());
  publishers_.push_back(Publisher{id, name, kind});
  return id;
}

const Publisher& PublisherRegistry::Get(std::uint32_t id) const {
  if (id >= publishers_.size()) {
    throw std::out_of_range("PublisherRegistry: unknown id");
  }
  return publishers_[id];
}

std::optional<std::uint32_t> PublisherRegistry::FindByName(
    const std::string& name) const {
  for (const auto& p : publishers_) {
    if (p.name == name) return p.id;
  }
  return std::nullopt;
}

std::vector<std::uint32_t> PublisherRegistry::AdultIds() const {
  std::vector<std::uint32_t> ids;
  for (const auto& p : publishers_) {
    if (p.is_adult()) ids.push_back(p.id);
  }
  return ids;
}

PublisherRegistry PublisherRegistry::PaperSites() {
  PublisherRegistry reg;
  reg.Register("V-1", SiteKind::kAdultVideo);
  reg.Register("V-2", SiteKind::kAdultVideo);
  reg.Register("P-1", SiteKind::kAdultImage);
  reg.Register("P-2", SiteKind::kAdultImage);
  reg.Register("S-1", SiteKind::kAdultSocial);
  reg.Register("N-1", SiteKind::kNonAdult);
  return reg;
}

}  // namespace atlas::trace
