// RecordSink: the push half of the streaming trace pipeline.
//
// RecordSource (stream.h) is how consumers *pull* records out of a trace;
// RecordSink is how producers *push* them in. The CDN simulation engine
// emits its merged, time-sorted record stream into a RecordSink, so the
// same run can fill an in-memory TraceBuffer (BufferSink), stream straight
// to a v2 block file through one block of memory (WriterSink), or just be
// counted (CountingSink) — the producer never decides where records live.
//
// Contract: Write() is called with batches of records in final stream
// order; a batch may be empty. Sinks must not assume any batch size.
#pragma once

#include <cstdint>
#include <span>

#include "trace/trace_buffer.h"

namespace atlas::trace {

class TraceWriter;

class RecordSink {
 public:
  virtual ~RecordSink() = default;
  virtual void Write(std::span<const LogRecord> records) = 0;
};

// Appends every record to a caller-owned TraceBuffer (the legacy in-memory
// path). The buffer is only borrowed; it is not cleared first.
class BufferSink final : public RecordSink {
 public:
  explicit BufferSink(TraceBuffer& out) : out_(&out) {}
  void Write(std::span<const LogRecord> records) override;

 private:
  TraceBuffer* out_;
};

// Forwards every record to a v2 TraceWriter (the out-of-core path). The
// caller still owns the writer and must call Finish() on it.
class WriterSink final : public RecordSink {
 public:
  explicit WriterSink(TraceWriter& writer) : writer_(&writer) {}
  void Write(std::span<const LogRecord> records) override;

 private:
  TraceWriter* writer_;
};

// Discards records, keeping only totals. Useful for benchmarks and for
// runs where only the simulator's delivery statistics matter.
class CountingSink final : public RecordSink {
 public:
  void Write(std::span<const LogRecord> records) override;

  std::uint64_t records() const { return records_; }
  std::uint64_t response_bytes() const { return response_bytes_; }

 private:
  std::uint64_t records_ = 0;
  std::uint64_t response_bytes_ = 0;
};

}  // namespace atlas::trace
