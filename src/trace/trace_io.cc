#include "trace/trace_io.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "trace/content_class.h"
#include "trace/wire_format.h"
#include "util/csv.h"
#include "util/str.h"

namespace atlas::trace {
namespace {

constexpr char kMagic[4] = {'A', 'T', 'L', 'S'};

// The header's record count is corruption-controlled until the records
// themselves parse; never pre-allocate more than this many on its say-so.
// (A genuine giant trace still loads fine — the vector just grows.)
constexpr std::uint64_t kMaxPreallocRecords = 1u << 20;

template <typename T>
void WriteLe(std::ostream& out, T value) {
  unsigned char bytes[sizeof(T)];
  wire::StoreLe(bytes, value);
  out.write(reinterpret_cast<const char*>(bytes), sizeof(T));
}

template <typename T>
T ReadLe(std::istream& in) {
  unsigned char bytes[sizeof(T)];
  in.read(reinterpret_cast<char*>(bytes), sizeof(T));
  if (!in) throw std::runtime_error("trace_io: truncated input");
  return wire::LoadLe<T>(bytes);
}

void WriteRecord(std::ostream& out, const LogRecord& r) {
  unsigned char buf[wire::kRecordWireSize];
  wire::EncodeRecord(r, buf);
  out.write(reinterpret_cast<const char*>(buf), sizeof(buf));
}

LogRecord ReadRecord(std::istream& in) {
  unsigned char buf[wire::kRecordWireSize];
  in.read(reinterpret_cast<char*>(buf), sizeof(buf));
  if (!in) throw std::runtime_error("trace_io: truncated input");
  return wire::DecodeRecord(buf);
}

// Parses a CSV field into a narrow record column, rejecting out-of-range
// values instead of silently wrapping (a publisher_id of 2^32 + 1 must not
// be attributed to publisher 1).
template <typename T>
T ParseNarrowField(const std::string& field, const char* name) {
  const std::uint64_t value = util::ParseUint64(field);
  if (value > std::numeric_limits<T>::max()) {
    throw std::runtime_error("trace_io: " + std::string(name) +
                             " out of range: " + field);
  }
  return static_cast<T>(value);
}

}  // namespace

void WriteBinary(const TraceBuffer& trace, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  WriteLe(out, kTraceFormatVersion);
  WriteLe(out, static_cast<std::uint64_t>(trace.size()));
  for (const auto& r : trace.records()) WriteRecord(out, r);
  // Flush before checking: a disk-full failure often only surfaces when the
  // buffered tail hits the OS, and an ofstream destructor swallows it.
  out.flush();
  if (!out) throw std::runtime_error("trace_io: write failed");
}

void WriteBinaryFile(const TraceBuffer& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("trace_io: cannot open " + path);
  WriteBinary(trace, out);
  out.close();
  if (out.fail()) throw std::runtime_error("trace_io: close failed: " + path);
}

TraceBuffer ReadBinary(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("trace_io: bad magic");
  }
  const auto version = ReadLe<std::uint32_t>(in);
  if (version != kTraceFormatVersion) {
    throw std::runtime_error("trace_io: unsupported version " +
                             std::to_string(version));
  }
  const auto count = ReadLe<std::uint64_t>(in);
  TraceBuffer trace;
  trace.Reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(count, kMaxPreallocRecords)));
  for (std::uint64_t i = 0; i < count; ++i) trace.Add(ReadRecord(in));
  return trace;
}

TraceBuffer ReadBinaryFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace_io: cannot open " + path);
  return ReadBinary(in);
}

void WriteCsv(const TraceBuffer& trace, std::ostream& out) {
  util::CsvWriter writer(out);
  writer.Row({"timestamp_ms", "url_hash", "user_id", "object_size",
              "response_bytes", "publisher_id", "user_agent_id",
              "response_code", "file_type", "content_class", "cache_status",
              "tz_offset_quarter_hours"});
  for (const auto& r : trace.records()) {
    writer.Field(r.timestamp_ms)
        .Field(r.url_hash)
        .Field(r.user_id)
        .Field(r.object_size)
        .Field(r.response_bytes)
        .Field(static_cast<std::uint64_t>(r.publisher_id))
        .Field(static_cast<std::uint64_t>(r.user_agent_id))
        .Field(static_cast<std::uint64_t>(r.response_code))
        .Field(ToString(r.file_type))
        .Field(ToString(ClassOf(r.file_type)))
        .Field(ToString(r.cache_status))
        .Field(static_cast<std::int64_t>(r.tz_offset_quarter_hours));
    writer.EndRow();
  }
  // CSV export used to return silently on a failed stream; surface it like
  // the binary writers do.
  out.flush();
  if (!out) throw std::runtime_error("trace_io: write failed (csv)");
}

TraceBuffer ReadCsv(std::istream& in) {
  TraceBuffer trace;
  std::string line;
  bool header = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (header) {
      header = false;
      continue;
    }
    const auto fields = util::ParseCsvLine(line);
    if (fields.size() != 12) {
      throw std::runtime_error("trace_io: bad CSV field count");
    }
    LogRecord r;
    r.timestamp_ms = util::ParseInt64(fields[0]);
    if (r.timestamp_ms < 0) {
      throw std::runtime_error("trace_io: negative timestamp_ms");
    }
    r.url_hash = util::ParseUint64(fields[1]);
    r.user_id = util::ParseUint64(fields[2]);
    r.object_size = util::ParseUint64(fields[3]);
    r.response_bytes = util::ParseUint64(fields[4]);
    r.publisher_id = ParseNarrowField<std::uint32_t>(fields[5], "publisher_id");
    r.user_agent_id =
        ParseNarrowField<std::uint16_t>(fields[6], "user_agent_id");
    r.response_code =
        ParseNarrowField<std::uint16_t>(fields[7], "response_code");
    r.file_type = FileTypeFromString(fields[8]);
    // fields[9] (content_class) is derived; validated but not stored.
    if (ContentClassFromString(fields[9]) != ClassOf(r.file_type)) {
      throw std::runtime_error("trace_io: content_class/file_type mismatch");
    }
    r.cache_status = CacheStatusFromString(fields[10]);
    const std::int64_t tz = util::ParseInt64(fields[11]);
    if (tz < std::numeric_limits<std::int8_t>::min() ||
        tz > std::numeric_limits<std::int8_t>::max()) {
      throw std::runtime_error(
          "trace_io: tz_offset_quarter_hours out of range: " + fields[11]);
    }
    r.tz_offset_quarter_hours = static_cast<std::int8_t>(tz);
    trace.Add(r);
  }
  return trace;
}

}  // namespace atlas::trace
