#include "trace/trace_io.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "trace/content_class.h"
#include "util/csv.h"
#include "util/str.h"

namespace atlas::trace {
namespace {

constexpr char kMagic[4] = {'A', 'T', 'L', 'S'};

template <typename T>
void WriteLe(std::ostream& out, T value) {
  static_assert(std::is_integral_v<T>);
  unsigned char bytes[sizeof(T)];
  using U = std::make_unsigned_t<T>;
  auto u = static_cast<U>(value);
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    bytes[i] = static_cast<unsigned char>(u & 0xff);
    u = static_cast<U>(u >> 8);
  }
  out.write(reinterpret_cast<const char*>(bytes), sizeof(T));
}

template <typename T>
T ReadLe(std::istream& in) {
  static_assert(std::is_integral_v<T>);
  unsigned char bytes[sizeof(T)];
  in.read(reinterpret_cast<char*>(bytes), sizeof(T));
  if (!in) throw std::runtime_error("trace_io: truncated input");
  using U = std::make_unsigned_t<T>;
  U u = 0;
  for (std::size_t i = sizeof(T); i > 0; --i) {
    u = static_cast<U>(u << 8) | bytes[i - 1];
  }
  return static_cast<T>(u);
}

void WriteRecord(std::ostream& out, const LogRecord& r) {
  WriteLe(out, r.timestamp_ms);
  WriteLe(out, r.url_hash);
  WriteLe(out, r.user_id);
  WriteLe(out, r.object_size);
  WriteLe(out, r.response_bytes);
  WriteLe(out, r.publisher_id);
  WriteLe(out, r.user_agent_id);
  WriteLe(out, r.response_code);
  WriteLe(out, static_cast<std::uint8_t>(r.file_type));
  WriteLe(out, static_cast<std::uint8_t>(r.cache_status));
  WriteLe(out, r.tz_offset_quarter_hours);
}

LogRecord ReadRecord(std::istream& in) {
  LogRecord r;
  r.timestamp_ms = ReadLe<std::int64_t>(in);
  r.url_hash = ReadLe<std::uint64_t>(in);
  r.user_id = ReadLe<std::uint64_t>(in);
  r.object_size = ReadLe<std::uint64_t>(in);
  r.response_bytes = ReadLe<std::uint64_t>(in);
  r.publisher_id = ReadLe<std::uint32_t>(in);
  r.user_agent_id = ReadLe<std::uint16_t>(in);
  r.response_code = ReadLe<std::uint16_t>(in);
  const auto ft = ReadLe<std::uint8_t>(in);
  if (ft >= kNumFileTypes) throw std::runtime_error("trace_io: bad file type");
  r.file_type = static_cast<FileType>(ft);
  const auto cs = ReadLe<std::uint8_t>(in);
  if (cs > 1) throw std::runtime_error("trace_io: bad cache status");
  r.cache_status = static_cast<CacheStatus>(cs);
  r.tz_offset_quarter_hours = ReadLe<std::int8_t>(in);
  return r;
}

}  // namespace

void WriteBinary(const TraceBuffer& trace, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  WriteLe(out, kTraceFormatVersion);
  WriteLe(out, static_cast<std::uint64_t>(trace.size()));
  for (const auto& r : trace.records()) WriteRecord(out, r);
  if (!out) throw std::runtime_error("trace_io: write failed");
}

void WriteBinaryFile(const TraceBuffer& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("trace_io: cannot open " + path);
  WriteBinary(trace, out);
}

TraceBuffer ReadBinary(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("trace_io: bad magic");
  }
  const auto version = ReadLe<std::uint32_t>(in);
  if (version != kTraceFormatVersion) {
    throw std::runtime_error("trace_io: unsupported version " +
                             std::to_string(version));
  }
  const auto count = ReadLe<std::uint64_t>(in);
  TraceBuffer trace;
  trace.Reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) trace.Add(ReadRecord(in));
  return trace;
}

TraceBuffer ReadBinaryFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace_io: cannot open " + path);
  return ReadBinary(in);
}

void WriteCsv(const TraceBuffer& trace, std::ostream& out) {
  util::CsvWriter writer(out);
  writer.Row({"timestamp_ms", "url_hash", "user_id", "object_size",
              "response_bytes", "publisher_id", "user_agent_id",
              "response_code", "file_type", "content_class", "cache_status",
              "tz_offset_quarter_hours"});
  for (const auto& r : trace.records()) {
    writer.Field(r.timestamp_ms)
        .Field(r.url_hash)
        .Field(r.user_id)
        .Field(r.object_size)
        .Field(r.response_bytes)
        .Field(static_cast<std::uint64_t>(r.publisher_id))
        .Field(static_cast<std::uint64_t>(r.user_agent_id))
        .Field(static_cast<std::uint64_t>(r.response_code))
        .Field(ToString(r.file_type))
        .Field(ToString(ClassOf(r.file_type)))
        .Field(ToString(r.cache_status))
        .Field(static_cast<std::int64_t>(r.tz_offset_quarter_hours));
    writer.EndRow();
  }
}

TraceBuffer ReadCsv(std::istream& in) {
  TraceBuffer trace;
  std::string line;
  bool header = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (header) {
      header = false;
      continue;
    }
    const auto fields = util::ParseCsvLine(line);
    if (fields.size() != 12) {
      throw std::runtime_error("trace_io: bad CSV field count");
    }
    LogRecord r;
    r.timestamp_ms = static_cast<std::int64_t>(util::ParseUint64(fields[0]));
    r.url_hash = util::ParseUint64(fields[1]);
    r.user_id = util::ParseUint64(fields[2]);
    r.object_size = util::ParseUint64(fields[3]);
    r.response_bytes = util::ParseUint64(fields[4]);
    r.publisher_id = static_cast<std::uint32_t>(util::ParseUint64(fields[5]));
    r.user_agent_id = static_cast<std::uint16_t>(util::ParseUint64(fields[6]));
    r.response_code = static_cast<std::uint16_t>(util::ParseUint64(fields[7]));
    r.file_type = FileTypeFromString(fields[8]);
    // fields[9] (content_class) is derived; validated but not stored.
    if (ContentClassFromString(fields[9]) != ClassOf(r.file_type)) {
      throw std::runtime_error("trace_io: content_class/file_type mismatch");
    }
    r.cache_status = CacheStatusFromString(fields[10]);
    r.tz_offset_quarter_hours = static_cast<std::int8_t>(
        std::stoi(fields[11]));
    trace.Add(r);
  }
  return trace;
}

}  // namespace atlas::trace
