// Streaming trace I/O: the v2 block format plus the RecordSource interface
// the analysis side consumes.
//
// Format v2 (little-endian):
//
//   magic "ATLS" | u32 version=2 | u64 total_count
//   blocks:  u32 nrec (> 0) | u32 payload_bytes | u32 crc32 | payload
//   end:     u32 0 | u32 0 | u32 0 | u64 total_count (trailer)
//
// Each payload holds `nrec` records at 51 bytes apiece (wire_format.h), so
// `payload_bytes` is redundant with `nrec` and both are validated, along
// with the payload CRC-32, before any record is decoded. The header count
// is patched in at Finish() when the sink is seekable; on a pipe it stays
// at the kUnknownCount sentinel and readers learn the count from the
// trailer. A trace of any length streams through one block of memory.
//
// RecordSource is the pull interface: NextChunk() yields a span of records
// valid until the next call, empty at end of stream. TraceReader implements
// it for v1 and v2 files alike, BufferSource for in-memory TraceBuffers —
// which is how the one-shot in-memory analysis path is built on top of the
// streaming one.
#pragma once

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "trace/block.h"
#include "trace/trace_buffer.h"

namespace atlas::ckpt {
class Reader;
class Writer;
}  // namespace atlas::ckpt

namespace atlas::trace {

inline constexpr std::uint32_t kBlockFormatVersion = 2;
// Header count sentinel for v2 streams written to non-seekable sinks.
inline constexpr std::uint64_t kUnknownCount = ~0ULL;

// Checkpoint section written by TraceWriter::SaveState().
inline constexpr char kTraceWriterSection[] = "trace.writer";
inline constexpr std::uint32_t kTraceWriterStateVersion = 1;

// Outcome of walking a v2 stream block by block (ScanV2Blocks): how much
// of the file is intact, where the intact prefix ends, and what (if
// anything) is wrong after it. Shared by `atlas-trace verify` and by
// crash recovery, which truncates a torn file back to `data_end_offset`.
struct ScanResult {
  std::uint64_t valid_records = 0;  // records inside intact blocks
  std::uint64_t valid_blocks = 0;
  std::uint64_t data_end_offset = 0;  // byte offset past the last intact block
  std::optional<std::uint64_t> header_count;  // nullopt if sentinel
  bool terminated = false;  // saw a valid terminator + matching trailer
  std::string error;        // empty when the whole stream is intact
};

// Validates a v2 stream's header and every block CRC without decoding
// records. Never throws on corruption: the scan stops at the first defect
// and reports it in `error`, leaving the intact-prefix fields set. Stops
// early (cleanly, error empty, terminated false) once `stop_after_records`
// records have been validated — crash recovery uses this to ignore blocks
// written after the snapshot being restored.
ScanResult ScanV2Blocks(std::istream& in,
                        std::uint64_t stop_after_records = kUnknownCount);
ScanResult ScanV2File(const std::string& path,
                      std::uint64_t stop_after_records = kUnknownCount);

// Pull-based record stream. Spans stay valid until the next NextChunk()
// call (or the source's destruction).
class RecordSource {
 public:
  virtual ~RecordSource() = default;
  // Next batch of records; empty span means end of stream.
  virtual std::span<const LogRecord> NextChunk() = 0;
};

// Streams an in-memory TraceBuffer, chunk_records at a time.
class BufferSource final : public RecordSource {
 public:
  explicit BufferSource(const TraceBuffer& buffer,
                        std::size_t chunk_records = kDefaultBlockRecords);
  std::span<const LogRecord> NextChunk() override;

 private:
  const TraceBuffer& buffer_;
  std::size_t chunk_records_;
  std::size_t pos_ = 0;
};

// Writes the v2 block format. Records accumulate into a block buffer that
// is flushed (with its CRC) whenever full; Finish() flushes the tail block,
// writes the terminator + trailer, and back-patches the header count when
// the sink is seekable. Finish() must be called — a stream abandoned
// without it has no terminator and readers will (correctly) report it as
// truncated.
class TraceWriter {
 public:
  explicit TraceWriter(std::ostream& out,
                       std::size_t block_records = kDefaultBlockRecords);
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void Add(const LogRecord& record);
  void Append(std::span<const LogRecord> records);
  // Batch push: encodes the SoA block straight into the wire payload. Block
  // framing on disk depends only on block_records_ and the cumulative record
  // count, never on the sizes of the appended blocks, so AppendBlock and
  // Add produce byte-identical files for the same record sequence.
  void AppendBlock(const RecordBlock& block);
  // Idempotent; throws std::runtime_error if the sink failed.
  void Finish();

  std::uint64_t written() const { return total_; }

  // State carried in a "trace.writer" checkpoint section: the counters plus
  // the encoded partial tail block. The tail rides in the snapshot rather
  // than being force-flushed, so block layout — and therefore the output
  // bytes — never depends on checkpoint cadence.
  struct ResumeState {
    std::size_t block_records = kDefaultBlockRecords;
    std::uint64_t total = 0;             // records accepted by Add()
    std::uint32_t block_nrec = 0;        // records in the partial tail block
    std::vector<unsigned char> payload;  // encoded tail-block bytes
    std::uint64_t file_bytes = 0;        // intact data bytes on disk at save

    // Reads and validates the section; throws on any inconsistency.
    static ResumeState Load(ckpt::Reader& r);
    std::uint64_t flushed_records() const { return total - block_nrec; }
  };

  // Checkpoint hook: flushes completed blocks to the sink (which must be
  // seekable), then writes the "trace.writer" section. Throws if the sink
  // failed — a checkpoint must not commit with unflushed trace data.
  void SaveState(ckpt::Writer& w);

  // Re-attaches to `out`, an existing v2 file already recovered (truncated
  // to resume.file_bytes) and positioned at its end. Most callers want
  // ResumedTraceFile, which performs the recovery too.
  TraceWriter(std::ostream& out, const ResumeState& resume);

 private:
  void FlushBlock();

  std::ostream& out_;
  std::size_t block_records_;
  std::vector<unsigned char> payload_;
  std::uint32_t block_nrec_ = 0;
  std::uint64_t total_ = 0;
  std::ostream::pos_type count_pos_;
  bool seekable_ = false;
  bool finished_ = false;
};

// Forwards every block to a v2 TraceWriter (the out-of-core push path). The
// caller still owns the writer and must call Finish() on it.
class WriterBlockSink final : public BlockSink {
 public:
  explicit WriterBlockSink(TraceWriter& writer) : writer_(&writer) {}
  void WriteBlock(const RecordBlock& block) override {
    writer_->AppendBlock(block);
  }

 private:
  TraceWriter* writer_;
};

// Reads v1 or v2 trace streams (dispatching on the header version) through
// bounded memory. For v2, every block's length fields and CRC are verified
// and the trailer count is cross-checked against the records actually
// delivered, so truncation and bit-rot surface as errors, not short reads.
class TraceReader final : public RecordSource, public BlockSource {
 public:
  // Throws std::runtime_error on bad magic or unsupported version.
  explicit TraceReader(std::istream& in,
                       std::size_t chunk_records = kDefaultBlockRecords);

  std::span<const LogRecord> NextChunk() override;
  // SoA pull path: one whole CRC block decoded column-wise per call (for
  // v1 streams, chunk_records rows at a time); nullptr at end of stream.
  // Framing, CRC, and trailer validation are identical to NextChunk — the
  // two entry points share one cursor, so use one or the other.
  const RecordBlock* NextBlock() override;

  std::uint32_t version() const { return version_; }
  // Count from the header; nullopt for a v2 stream whose writer could not
  // seek (the count is then only known from the trailer, at end of read).
  std::optional<std::uint64_t> declared_count() const;
  std::uint64_t records_read() const { return records_read_; }

 private:
  std::span<const LogRecord> NextChunkV1();
  std::span<const LogRecord> NextChunkV2();
  // Reads + validates the next raw payload into raw_ (v2: one CRC block,
  // v1: up to chunk_records records). Returns the record count, 0 at a
  // (validated) end of stream.
  std::size_t ReadRawV1();
  std::uint32_t ReadRawV2();

  std::istream& in_;
  std::size_t chunk_records_;
  std::uint32_t version_ = 0;
  std::uint64_t header_count_ = 0;
  std::uint64_t records_read_ = 0;
  bool done_ = false;
  std::vector<unsigned char> raw_;
  std::vector<LogRecord> records_;
  RecordBlock block_;
};

// TraceReader over a file it owns; the usual way to hand a trace file to
// the streaming analysis suite.
class TraceFileReader final : public RecordSource, public BlockSource {
 public:
  // Throws std::runtime_error if the file cannot be opened or parsed.
  explicit TraceFileReader(const std::string& path,
                           std::size_t chunk_records = kDefaultBlockRecords);
  std::span<const LogRecord> NextChunk() override { return reader_.NextChunk(); }
  const RecordBlock* NextBlock() override { return reader_.NextBlock(); }

  std::uint32_t version() const { return reader_.version(); }
  std::optional<std::uint64_t> declared_count() const {
    return reader_.declared_count();
  }

 private:
  static std::ifstream& Checked(std::ifstream& in, const std::string& path);

  std::ifstream in_;
  TraceReader reader_;
};

// Crash recovery for a torn simulate output. Reads the "trace.writer"
// section from `r`, validates `path`'s blocks up to the snapshot's
// flushed-record count, truncates anything beyond it (a torn tail block,
// or whole blocks written after the snapshot), and re-opens a TraceWriter
// positioned to continue the stream byte-for-byte. Throws if the file
// holds fewer intact records than the snapshot requires.
class ResumedTraceFile {
 public:
  ResumedTraceFile(const std::string& path, ckpt::Reader& r);
  TraceWriter& writer() { return *writer_; }

 private:
  std::fstream io_;
  std::unique_ptr<TraceWriter> writer_;
};

// Whole-buffer conveniences over the streaming primitives.
void WriteV2(const TraceBuffer& trace, std::ostream& out,
             std::size_t block_records = kDefaultBlockRecords);
void WriteV2File(const TraceBuffer& trace, const std::string& path,
                 std::size_t block_records = kDefaultBlockRecords);

// Drains a source into a TraceBuffer (the in-memory bridge).
TraceBuffer ReadAllRecords(RecordSource& source);
// Reads a v1 *or* v2 trace file into memory.
TraceBuffer ReadAnyBinaryFile(const std::string& path);

}  // namespace atlas::trace
