// In-memory trace with the grouped views the analyses need.
//
// A TraceBuffer owns a vector of LogRecords. Analyses need three access
// patterns: chronological scan, per-object grouping, and per-(user, site)
// grouping; the buffer provides each as an index built on demand.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "trace/record.h"

namespace atlas::trace {

class TraceBuffer {
 public:
  TraceBuffer() = default;
  explicit TraceBuffer(std::vector<LogRecord> records)
      : records_(std::move(records)) {}

  void Add(const LogRecord& record) { records_.push_back(record); }
  void Append(const TraceBuffer& other);
  void Reserve(std::size_t n) { records_.reserve(n); }

  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const LogRecord& operator[](std::size_t i) const { return records_[i]; }
  const std::vector<LogRecord>& records() const { return records_; }
  std::vector<LogRecord>& mutable_records() { return records_; }

  // Sorts by timestamp (stable, so equal-time records keep insert order).
  void SortByTime();
  bool IsSortedByTime() const;

  // First/last timestamps; 0 if empty.
  std::int64_t StartMs() const;
  std::int64_t EndMs() const;

  // Returns a new buffer containing records matching the predicate.
  TraceBuffer Filter(const std::function<bool(const LogRecord&)>& pred) const;
  TraceBuffer FilterByPublisher(std::uint32_t publisher_id) const;
  TraceBuffer FilterByClass(ContentClass content_class) const;

  // Record indices grouped by object (url_hash). Indices within each group
  // are in record order (chronological once SortByTime has run).
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> GroupByObject()
      const;
  // Grouped by user.
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> GroupByUser()
      const;

  // Distinct users / objects in the trace.
  std::size_t UniqueUsers() const;
  std::size_t UniqueObjects() const;

  // Total bytes delivered (sum of response_bytes).
  std::uint64_t TotalBytes() const;

 private:
  std::vector<LogRecord> records_;
};

}  // namespace atlas::trace
