#include "trace/trace_buffer.h"

#include <algorithm>
#include <unordered_set>

#include "trace/content_class.h"

namespace atlas::trace {

void TraceBuffer::Append(const TraceBuffer& other) {
  records_.insert(records_.end(), other.records_.begin(),
                  other.records_.end());
}

void TraceBuffer::SortByTime() {
  std::stable_sort(records_.begin(), records_.end(),
                   [](const LogRecord& a, const LogRecord& b) {
                     return a.timestamp_ms < b.timestamp_ms;
                   });
}

bool TraceBuffer::IsSortedByTime() const {
  return std::is_sorted(records_.begin(), records_.end(),
                        [](const LogRecord& a, const LogRecord& b) {
                          return a.timestamp_ms < b.timestamp_ms;
                        });
}

std::int64_t TraceBuffer::StartMs() const {
  if (records_.empty()) return 0;
  std::int64_t lo = records_.front().timestamp_ms;
  for (const auto& r : records_) lo = std::min(lo, r.timestamp_ms);
  return lo;
}

std::int64_t TraceBuffer::EndMs() const {
  if (records_.empty()) return 0;
  std::int64_t hi = records_.front().timestamp_ms;
  for (const auto& r : records_) hi = std::max(hi, r.timestamp_ms);
  return hi;
}

TraceBuffer TraceBuffer::Filter(
    const std::function<bool(const LogRecord&)>& pred) const {
  TraceBuffer out;
  for (const auto& r : records_) {
    if (pred(r)) out.Add(r);
  }
  return out;
}

TraceBuffer TraceBuffer::FilterByPublisher(std::uint32_t publisher_id) const {
  return Filter([publisher_id](const LogRecord& r) {
    return r.publisher_id == publisher_id;
  });
}

TraceBuffer TraceBuffer::FilterByClass(ContentClass content_class) const {
  return Filter([content_class](const LogRecord& r) {
    return ClassOf(r.file_type) == content_class;
  });
}

std::unordered_map<std::uint64_t, std::vector<std::uint32_t>>
TraceBuffer::GroupByObject() const {
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> groups;
  for (std::uint32_t i = 0; i < records_.size(); ++i) {
    groups[records_[i].url_hash].push_back(i);
  }
  return groups;
}

std::unordered_map<std::uint64_t, std::vector<std::uint32_t>>
TraceBuffer::GroupByUser() const {
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> groups;
  for (std::uint32_t i = 0; i < records_.size(); ++i) {
    groups[records_[i].user_id].push_back(i);
  }
  return groups;
}

std::size_t TraceBuffer::UniqueUsers() const {
  std::unordered_set<std::uint64_t> users;
  users.reserve(records_.size() / 4 + 1);
  for (const auto& r : records_) users.insert(r.user_id);
  return users.size();
}

std::size_t TraceBuffer::UniqueObjects() const {
  std::unordered_set<std::uint64_t> objects;
  objects.reserve(records_.size() / 4 + 1);
  for (const auto& r : records_) objects.insert(r.url_hash);
  return objects.size();
}

std::uint64_t TraceBuffer::TotalBytes() const {
  std::uint64_t total = 0;
  for (const auto& r : records_) total += r.response_bytes;
  return total;
}

}  // namespace atlas::trace
