// Struct-of-arrays record batches: the block-granular half of the streaming
// trace pipeline.
//
// The v2 trace format already moves data in CRC-framed blocks of a few
// thousand records; RecordBlock is that same unit decoded into column
// arrays instead of an array of LogRecord structs. Hot consumers (the
// analysis accumulators, the simulation push path) iterate one column at a
// time — contiguous, branch-light loops the compiler can vectorize — and
// hot interfaces move whole blocks through one virtual call instead of one
// call per record:
//
//   BlockSource::NextBlock()   pull side; nullptr at end of stream
//   BlockSink::WriteBlock()    push side
//
// The per-record world stays fully supported: PerRecordSource/PerRecordSink
// adapt a block stream to one-record-at-a-time callers (NextRecord /
// PushRecord), and every block carries enough to reconstruct exact
// LogRecords (Row()), so the two paths are interchangeable — the
// differential digest suite in tests/ pins them byte-identical.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "trace/record.h"
#include "trace/sink.h"
#include "trace/trace_buffer.h"

namespace atlas::trace {

class RecordSource;  // stream.h

// Records per block: 8192 * 51 B ≈ 408 KB payloads — big enough to
// amortize syscalls and virtual dispatch, small enough that a reader's
// working set is trivial.
inline constexpr std::size_t kDefaultBlockRecords = 8192;
// Upper bound a reader will accept for one block; anything larger is
// corruption, not a legitimate writer.
inline constexpr std::size_t kMaxBlockRecords = 1u << 20;

// One batch of records, one contiguous array per field. All columns always
// have identical length (size()); rows correspond across columns.
struct RecordBlock {
  std::vector<std::int64_t> timestamp_ms;
  std::vector<std::uint64_t> url_hash;
  std::vector<std::uint64_t> user_id;
  std::vector<std::uint64_t> object_size;
  std::vector<std::uint64_t> response_bytes;
  std::vector<std::uint32_t> publisher_id;
  std::vector<std::uint16_t> user_agent_id;
  std::vector<std::uint16_t> response_code;
  std::vector<FileType> file_type;
  std::vector<CacheStatus> cache_status;
  std::vector<std::int8_t> tz_offset_quarter_hours;

  std::size_t size() const { return timestamp_ms.size(); }
  bool empty() const { return timestamp_ms.empty(); }
  void clear();
  void reserve(std::size_t n);

  // Local-time timestamp of row i (same formula as LogRecord).
  std::int64_t LocalTimestampMs(std::size_t i) const {
    return timestamp_ms[i] +
           static_cast<std::int64_t>(tz_offset_quarter_hours[i]) * 15 * 60 *
               1000;
  }

  // Row i reassembled as a LogRecord (the AoS bridge).
  LogRecord Row(std::size_t i) const;
  void PushBack(const LogRecord& r);
  void Append(std::span<const LogRecord> records);

  // Decodes `n` wire-format records (wire_format.h, 51 bytes each) at `src`
  // into the columns, replacing current contents. Applies the same field
  // validation as wire::DecodeRecord and throws std::runtime_error with the
  // same messages on any field a valid writer could not have produced.
  void DecodeWire(const unsigned char* src, std::size_t n);

  // Appends rows [first, first + n) in wire format to `out`.
  void EncodeWire(std::size_t first, std::size_t n,
                  std::vector<unsigned char>& out) const;
};

// Pull interface of the block pipeline. Returned blocks stay valid until
// the next call (or the source's destruction); nullptr means end of stream.
class BlockSource {
 public:
  virtual ~BlockSource() = default;
  virtual const RecordBlock* NextBlock() = 0;
};

// Push interface of the block pipeline. Blocks arrive in final stream
// order; a sink must not assume any particular block size (producers may
// emit partial blocks, e.g. at end of stream).
class BlockSink {
 public:
  virtual ~BlockSink() = default;
  virtual void WriteBlock(const RecordBlock& block) = 0;
};

// Streams an in-memory TraceBuffer as SoA blocks, block_records at a time.
class BufferBlockSource final : public BlockSource {
 public:
  explicit BufferBlockSource(const TraceBuffer& buffer,
                             std::size_t block_records = kDefaultBlockRecords);
  const RecordBlock* NextBlock() override;

 private:
  const TraceBuffer& buffer_;
  std::size_t block_records_;
  std::size_t pos_ = 0;
  RecordBlock block_;
};

// Repacks any per-record RecordSource into SoA blocks of exactly
// block_records rows (except the final partial block). This is how v1
// traces and other legacy sources join the block pipeline.
class ChunkBlockSource final : public BlockSource {
 public:
  explicit ChunkBlockSource(RecordSource& source,
                            std::size_t block_records = kDefaultBlockRecords);
  const RecordBlock* NextBlock() override;

 private:
  RecordSource& source_;
  std::size_t block_records_;
  std::span<const LogRecord> pending_;  // unconsumed tail of the last chunk
  bool done_ = false;
  RecordBlock block_;
};

// Appends every block to a caller-owned TraceBuffer (the in-memory bridge).
class BlockBufferSink final : public BlockSink {
 public:
  explicit BlockBufferSink(TraceBuffer& out) : out_(&out) {}
  void WriteBlock(const RecordBlock& block) override;

 private:
  TraceBuffer* out_;
};

// Discards blocks, keeping only totals (column-wise reduction).
class BlockCountingSink final : public BlockSink {
 public:
  void WriteBlock(const RecordBlock& block) override;

  std::uint64_t records() const { return records_; }
  std::uint64_t response_bytes() const { return response_bytes_; }

 private:
  std::uint64_t records_ = 0;
  std::uint64_t response_bytes_ = 0;
};

// Per-record compatibility adapter, pull side: one record at a time off a
// block stream. Strictly for cold paths and interop — the atlas-lint rule
// `perrecord-in-hotpath` rejects NextRecord() calls inside src/analysis and
// src/cdn so hot loops stay on block spans.
class PerRecordSource {
 public:
  explicit PerRecordSource(BlockSource& blocks) : blocks_(&blocks) {}
  // Next record, or nullptr at end of stream. The pointer stays valid until
  // the next call.
  const LogRecord* NextRecord();

 private:
  BlockSource* blocks_;
  const RecordBlock* current_ = nullptr;
  std::size_t row_ = 0;
  bool done_ = false;
  LogRecord scratch_;
};

// Per-record compatibility adapter, push side: buffers pushed records into
// an SoA block and emits it whenever full. Also a RecordSink, so any
// span-based producer (e.g. the simulation engine) can feed a BlockSink.
// Flush() must be called after the last record to emit the partial tail
// block; like the sources, an unflushed adapter simply never delivers its
// tail. Subject to the same `perrecord-in-hotpath` lint rule as the pull
// side.
class PerRecordSink final : public RecordSink {
 public:
  explicit PerRecordSink(BlockSink& sink,
                         std::size_t block_records = kDefaultBlockRecords);
  void PushRecord(const LogRecord& r);
  void Write(std::span<const LogRecord> records) override;
  // Emits the partial tail block, if any. Idempotent.
  void Flush();

 private:
  BlockSink* sink_;
  std::size_t block_records_;
  RecordBlock block_;
};

}  // namespace atlas::trace
