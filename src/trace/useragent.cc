#include "trace/useragent.h"

#include <stdexcept>

#include "util/str.h"

namespace atlas::trace {

using util::ContainsIgnoreCase;

const char* ToString(OsFamily os) {
  switch (os) {
    case OsFamily::kWindows: return "Windows";
    case OsFamily::kMacOs: return "macOS";
    case OsFamily::kLinux: return "Linux";
    case OsFamily::kAndroidOs: return "Android";
    case OsFamily::kIosOs: return "iOS";
    case OsFamily::kOtherOs: return "Other";
  }
  return "?";
}

const char* ToString(BrowserFamily browser) {
  switch (browser) {
    case BrowserFamily::kChrome: return "Chrome";
    case BrowserFamily::kFirefox: return "Firefox";
    case BrowserFamily::kSafari: return "Safari";
    case BrowserFamily::kEdge: return "Edge";
    case BrowserFamily::kIe: return "IE";
    case BrowserFamily::kOpera: return "Opera";
    case BrowserFamily::kOtherBrowser: return "Other";
  }
  return "?";
}

UaInfo ParseUserAgent(std::string_view ua) {
  UaInfo info;

  // Bots first; they would otherwise classify as desktop Linux.
  if (ContainsIgnoreCase(ua, "bot") || ContainsIgnoreCase(ua, "crawler") ||
      ContainsIgnoreCase(ua, "spider")) {
    info.is_bot = true;
    info.device = DeviceType::kMisc;
    info.os = OsFamily::kOtherOs;
    info.browser = BrowserFamily::kOtherBrowser;
    return info;
  }

  // --- Operating system -----------------------------------------------
  // iOS devices carry "iPhone"/"iPad"/"iPod"; they must be checked before
  // "Mac OS X", which also appears in iOS UAs ("...like Mac OS X...").
  const bool iphone = ContainsIgnoreCase(ua, "iPhone");
  const bool ipad = ContainsIgnoreCase(ua, "iPad");
  const bool ipod = ContainsIgnoreCase(ua, "iPod");
  const bool android = ContainsIgnoreCase(ua, "Android");
  if (iphone || ipad || ipod) {
    info.os = OsFamily::kIosOs;
  } else if (android) {
    info.os = OsFamily::kAndroidOs;
  } else if (ContainsIgnoreCase(ua, "Windows")) {
    info.os = OsFamily::kWindows;
  } else if (ContainsIgnoreCase(ua, "Mac OS X") ||
             ContainsIgnoreCase(ua, "Macintosh")) {
    info.os = OsFamily::kMacOs;
  } else if (ContainsIgnoreCase(ua, "Linux") ||
             ContainsIgnoreCase(ua, "X11") ||
             ContainsIgnoreCase(ua, "CrOS")) {
    info.os = OsFamily::kLinux;
  }

  // --- Device type ------------------------------------------------------
  // Paper buckets: Desktop, Android (phones), iOS (phones), Misc (tablets
  // and other mobile devices). Android tablets lack "Mobile" in their UA.
  // Windows Phone UAs carry a compatibility "Android" token, so they must
  // be classified before the Android branch.
  if (ContainsIgnoreCase(ua, "Windows Phone")) {
    info.device = DeviceType::kMisc;
    info.os = OsFamily::kWindows;
  } else if (iphone || ipod) {
    info.device = DeviceType::kIos;
  } else if (ipad) {
    info.device = DeviceType::kMisc;  // tablet
  } else if (android) {
    info.device = ContainsIgnoreCase(ua, "Mobile") ? DeviceType::kAndroid
                                                   : DeviceType::kMisc;
  } else if (ContainsIgnoreCase(ua, "Windows Phone") ||
             ContainsIgnoreCase(ua, "BlackBerry") ||
             ContainsIgnoreCase(ua, "Opera Mini") ||
             ContainsIgnoreCase(ua, "Kindle") ||
             ContainsIgnoreCase(ua, "Silk") ||
             ContainsIgnoreCase(ua, "PlayStation") ||
             ContainsIgnoreCase(ua, "Nintendo") ||
             ContainsIgnoreCase(ua, "SmartTV") ||
             ContainsIgnoreCase(ua, "Mobile")) {
    info.device = DeviceType::kMisc;
  } else {
    info.device = DeviceType::kDesktop;
  }

  // --- Browser ------------------------------------------------------------
  // Precedence: Edge before Chrome (Edge UAs contain "Chrome"), Opera (OPR)
  // before Chrome, Chrome before Safari (Chrome UAs contain "Safari"),
  // CriOS/FxiOS are Chrome/Firefox on iOS.
  if (ContainsIgnoreCase(ua, "Edge/") || ContainsIgnoreCase(ua, "Edg/")) {
    info.browser = BrowserFamily::kEdge;
  } else if (ContainsIgnoreCase(ua, "OPR/") ||
             ContainsIgnoreCase(ua, "Opera")) {
    info.browser = BrowserFamily::kOpera;
  } else if (ContainsIgnoreCase(ua, "CriOS") ||
             ContainsIgnoreCase(ua, "Chrome/")) {
    info.browser = BrowserFamily::kChrome;
  } else if (ContainsIgnoreCase(ua, "FxiOS") ||
             ContainsIgnoreCase(ua, "Firefox/")) {
    info.browser = BrowserFamily::kFirefox;
  } else if (ContainsIgnoreCase(ua, "MSIE") ||
             ContainsIgnoreCase(ua, "Trident/")) {
    info.browser = BrowserFamily::kIe;
  } else if (ContainsIgnoreCase(ua, "Safari/")) {
    info.browser = BrowserFamily::kSafari;
  }

  return info;
}

namespace {

struct BankEntry {
  const char* ua;
};

// Realistic 2015-era UA strings, matching the paper's measurement window.
const BankEntry kBank[] = {
    // Desktop Windows / Chrome, Firefox, IE, Edge, Opera
    {"Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, "
     "like Gecko) Chrome/46.0.2490.86 Safari/537.36"},
    {"Mozilla/5.0 (Windows NT 6.1; WOW64) AppleWebKit/537.36 (KHTML, like "
     "Gecko) Chrome/45.0.2454.101 Safari/537.36"},
    {"Mozilla/5.0 (Windows NT 6.3; WOW64; rv:41.0) Gecko/20100101 "
     "Firefox/41.0"},
    {"Mozilla/5.0 (Windows NT 6.1; rv:40.0) Gecko/20100101 Firefox/40.0"},
    {"Mozilla/5.0 (Windows NT 6.1; Trident/7.0; rv:11.0) like Gecko"},
    {"Mozilla/5.0 (compatible; MSIE 10.0; Windows NT 6.2; WOW64; "
     "Trident/6.0)"},
    {"Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, "
     "like Gecko) Chrome/46.0.2486.0 Safari/537.36 Edge/13.10586"},
    {"Mozilla/5.0 (Windows NT 6.1; WOW64) AppleWebKit/537.36 (KHTML, like "
     "Gecko) Chrome/45.0.2454.85 Safari/537.36 OPR/32.0.1948.69"},
    // Desktop macOS
    {"Mozilla/5.0 (Macintosh; Intel Mac OS X 10_11_1) AppleWebKit/601.2.7 "
     "(KHTML, like Gecko) Version/9.0.1 Safari/601.2.7"},
    {"Mozilla/5.0 (Macintosh; Intel Mac OS X 10_10_5) AppleWebKit/537.36 "
     "(KHTML, like Gecko) Chrome/46.0.2490.80 Safari/537.36"},
    {"Mozilla/5.0 (Macintosh; Intel Mac OS X 10.11; rv:42.0) Gecko/20100101 "
     "Firefox/42.0"},
    // Desktop Linux
    {"Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) "
     "Chrome/45.0.2454.101 Safari/537.36"},
    {"Mozilla/5.0 (X11; Ubuntu; Linux x86_64; rv:41.0) Gecko/20100101 "
     "Firefox/41.0"},
    // Android phones
    {"Mozilla/5.0 (Linux; Android 5.1.1; SM-G920F Build/LMY47X) "
     "AppleWebKit/537.36 (KHTML, like Gecko) Chrome/46.0.2490.76 Mobile "
     "Safari/537.36"},
    {"Mozilla/5.0 (Linux; Android 5.0; Nexus 5 Build/LRX21O) "
     "AppleWebKit/537.36 (KHTML, like Gecko) Chrome/45.0.2454.94 Mobile "
     "Safari/537.36"},
    {"Mozilla/5.0 (Linux; U; Android 4.4.2; en-us; GT-I9505 Build/KOT49H) "
     "AppleWebKit/534.30 (KHTML, like Gecko) Version/4.0 Mobile "
     "Safari/534.30"},
    // iPhones
    {"Mozilla/5.0 (iPhone; CPU iPhone OS 9_1 like Mac OS X) "
     "AppleWebKit/601.1.46 (KHTML, like Gecko) Version/9.0 Mobile/13B143 "
     "Safari/601.1"},
    {"Mozilla/5.0 (iPhone; CPU iPhone OS 8_4 like Mac OS X) "
     "AppleWebKit/600.1.4 (KHTML, like Gecko) CriOS/45.0.2454.89 "
     "Mobile/12H143 Safari/600.1.4"},
    // Tablets and other mobile (Misc)
    {"Mozilla/5.0 (iPad; CPU OS 9_1 like Mac OS X) AppleWebKit/601.1.46 "
     "(KHTML, like Gecko) Version/9.0 Mobile/13B143 Safari/601.1"},
    {"Mozilla/5.0 (Linux; Android 5.0.2; SM-T530 Build/LRX22G) "
     "AppleWebKit/537.36 (KHTML, like Gecko) Chrome/46.0.2490.76 "
     "Safari/537.36"},
    {"Mozilla/5.0 (Windows Phone 10.0; Android 4.2.1; Microsoft; Lumia 950) "
     "AppleWebKit/537.36 (KHTML, like Gecko) Chrome/46.0.2486.0 Mobile "
     "Safari/537.36 Edge/13.10586"},
    {"Mozilla/5.0 (PlayStation 4 3.11) AppleWebKit/537.73 (KHTML, like "
     "Gecko)"},
    {"Mozilla/5.0 (Linux; U; Android 4.4.3; en-us; KFTHWI Build/KTU84M) "
     "AppleWebKit/537.36 (KHTML, like Gecko) Silk/3.68 like Chrome/39.0.2171"
     ".93 Safari/537.36"},
};

}  // namespace

UaBank::UaBank() {
  strings_.reserve(std::size(kBank));
  infos_.reserve(std::size(kBank));
  for (const auto& entry : kBank) {
    strings_.emplace_back(entry.ua);
    infos_.push_back(ParseUserAgent(entry.ua));
  }
}

std::vector<std::uint16_t> UaBank::IdsForDevice(DeviceType device) const {
  std::vector<std::uint16_t> ids;
  for (std::uint16_t i = 0; i < size(); ++i) {
    if (infos_[i].device == device && !infos_[i].is_bot) ids.push_back(i);
  }
  if (ids.empty()) {
    throw std::logic_error("UaBank: no UA strings for requested device type");
  }
  return ids;
}

const UaBank& UaBank::Instance() {
  static const UaBank bank;
  return bank;
}

}  // namespace atlas::trace
