#include "trace/block.h"

#include <algorithm>
#include <stdexcept>

#include "trace/stream.h"
#include "trace/wire_format.h"

namespace atlas::trace {

void RecordBlock::clear() {
  timestamp_ms.clear();
  url_hash.clear();
  user_id.clear();
  object_size.clear();
  response_bytes.clear();
  publisher_id.clear();
  user_agent_id.clear();
  response_code.clear();
  file_type.clear();
  cache_status.clear();
  tz_offset_quarter_hours.clear();
}

void RecordBlock::reserve(std::size_t n) {
  timestamp_ms.reserve(n);
  url_hash.reserve(n);
  user_id.reserve(n);
  object_size.reserve(n);
  response_bytes.reserve(n);
  publisher_id.reserve(n);
  user_agent_id.reserve(n);
  response_code.reserve(n);
  file_type.reserve(n);
  cache_status.reserve(n);
  tz_offset_quarter_hours.reserve(n);
}

LogRecord RecordBlock::Row(std::size_t i) const {
  LogRecord r;
  r.timestamp_ms = timestamp_ms[i];
  r.url_hash = url_hash[i];
  r.user_id = user_id[i];
  r.object_size = object_size[i];
  r.response_bytes = response_bytes[i];
  r.publisher_id = publisher_id[i];
  r.user_agent_id = user_agent_id[i];
  r.response_code = response_code[i];
  r.file_type = file_type[i];
  r.cache_status = cache_status[i];
  r.tz_offset_quarter_hours = tz_offset_quarter_hours[i];
  return r;
}

void RecordBlock::PushBack(const LogRecord& r) {
  timestamp_ms.push_back(r.timestamp_ms);
  url_hash.push_back(r.url_hash);
  user_id.push_back(r.user_id);
  object_size.push_back(r.object_size);
  response_bytes.push_back(r.response_bytes);
  publisher_id.push_back(r.publisher_id);
  user_agent_id.push_back(r.user_agent_id);
  response_code.push_back(r.response_code);
  file_type.push_back(r.file_type);
  cache_status.push_back(r.cache_status);
  tz_offset_quarter_hours.push_back(r.tz_offset_quarter_hours);
}

void RecordBlock::Append(std::span<const LogRecord> records) {
  reserve(size() + records.size());
  for (const auto& r : records) PushBack(r);
}

namespace {

// Loads one column out of the AoS wire layout: n values of type T at byte
// offset `off` inside consecutive 51-byte records.
template <typename T, typename Out>
void LoadColumn(const unsigned char* src, std::size_t n, std::size_t off,
                std::vector<Out>& col) {
  col.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    col[i] = static_cast<Out>(
        wire::LoadLe<T>(src + i * wire::kRecordWireSize + off));
  }
}

}  // namespace

void RecordBlock::DecodeWire(const unsigned char* src, std::size_t n) {
  LoadColumn<std::int64_t>(src, n, 0, timestamp_ms);
  LoadColumn<std::uint64_t>(src, n, 8, url_hash);
  LoadColumn<std::uint64_t>(src, n, 16, user_id);
  LoadColumn<std::uint64_t>(src, n, 24, object_size);
  LoadColumn<std::uint64_t>(src, n, 32, response_bytes);
  LoadColumn<std::uint32_t>(src, n, 40, publisher_id);
  LoadColumn<std::uint16_t>(src, n, 44, user_agent_id);
  LoadColumn<std::uint16_t>(src, n, 46, response_code);
  LoadColumn<std::uint8_t>(src, n, 48, file_type);
  LoadColumn<std::uint8_t>(src, n, 49, cache_status);
  LoadColumn<std::int8_t>(src, n, 50, tz_offset_quarter_hours);
  // Same rejections as wire::DecodeRecord, applied per column.
  for (std::size_t i = 0; i < n; ++i) {
    if (timestamp_ms[i] < 0) {
      throw std::runtime_error("trace_io: negative timestamp_ms");
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (static_cast<std::uint8_t>(file_type[i]) >= kNumFileTypes) {
      throw std::runtime_error("trace_io: bad file type");
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (static_cast<std::uint8_t>(cache_status[i]) > 1) {
      throw std::runtime_error("trace_io: bad cache status");
    }
  }
}

void RecordBlock::EncodeWire(std::size_t first, std::size_t n,
                             std::vector<unsigned char>& out) const {
  const std::size_t base = out.size();
  out.resize(base + n * wire::kRecordWireSize);
  unsigned char* dst = out.data() + base;
  for (std::size_t i = 0; i < n; ++i) {
    unsigned char* rec = dst + i * wire::kRecordWireSize;
    const std::size_t row = first + i;
    wire::StoreLe(rec + 0, timestamp_ms[row]);
    wire::StoreLe(rec + 8, url_hash[row]);
    wire::StoreLe(rec + 16, user_id[row]);
    wire::StoreLe(rec + 24, object_size[row]);
    wire::StoreLe(rec + 32, response_bytes[row]);
    wire::StoreLe(rec + 40, publisher_id[row]);
    wire::StoreLe(rec + 44, user_agent_id[row]);
    wire::StoreLe(rec + 46, response_code[row]);
    wire::StoreLe(rec + 48, static_cast<std::uint8_t>(file_type[row]));
    wire::StoreLe(rec + 49, static_cast<std::uint8_t>(cache_status[row]));
    wire::StoreLe(rec + 50, tz_offset_quarter_hours[row]);
  }
}

BufferBlockSource::BufferBlockSource(const TraceBuffer& buffer,
                                     std::size_t block_records)
    : buffer_(buffer),
      block_records_(std::max<std::size_t>(1, block_records)) {}

const RecordBlock* BufferBlockSource::NextBlock() {
  const auto& records = buffer_.records();
  if (pos_ >= records.size()) return nullptr;
  const std::size_t n = std::min(block_records_, records.size() - pos_);
  block_.clear();
  block_.Append({records.data() + pos_, n});
  pos_ += n;
  return &block_;
}

ChunkBlockSource::ChunkBlockSource(RecordSource& source,
                                   std::size_t block_records)
    : source_(source),
      block_records_(std::max<std::size_t>(1, block_records)) {}

const RecordBlock* ChunkBlockSource::NextBlock() {
  block_.clear();
  while (block_.size() < block_records_) {
    if (pending_.empty()) {
      if (done_) break;
      pending_ = source_.NextChunk();
      if (pending_.empty()) {
        done_ = true;
        break;
      }
    }
    const std::size_t take =
        std::min(pending_.size(), block_records_ - block_.size());
    block_.Append(pending_.first(take));
    pending_ = pending_.subspan(take);
  }
  return block_.empty() ? nullptr : &block_;
}

void BlockBufferSink::WriteBlock(const RecordBlock& block) {
  out_->Reserve(out_->size() + block.size());
  for (std::size_t i = 0; i < block.size(); ++i) out_->Add(block.Row(i));
}

void BlockCountingSink::WriteBlock(const RecordBlock& block) {
  records_ += block.size();
  std::uint64_t bytes = 0;
  for (const std::uint64_t b : block.response_bytes) bytes += b;
  response_bytes_ += bytes;
}

const LogRecord* PerRecordSource::NextRecord() {
  if (done_) return nullptr;
  if (current_ == nullptr || row_ >= current_->size()) {
    current_ = blocks_->NextBlock();
    row_ = 0;
    if (current_ == nullptr || current_->empty()) {
      done_ = true;
      return nullptr;
    }
  }
  scratch_ = current_->Row(row_++);
  return &scratch_;
}

PerRecordSink::PerRecordSink(BlockSink& sink, std::size_t block_records)
    : sink_(&sink), block_records_(std::max<std::size_t>(1, block_records)) {
  block_.reserve(block_records_);
}

void PerRecordSink::PushRecord(const LogRecord& r) {
  block_.PushBack(r);
  if (block_.size() == block_records_) Flush();
}

void PerRecordSink::Write(std::span<const LogRecord> records) {
  while (!records.empty()) {
    const std::size_t take =
        std::min(records.size(), block_records_ - block_.size());
    block_.Append(records.first(take));
    records = records.subspan(take);
    if (block_.size() == block_records_) Flush();
  }
}

void PerRecordSink::Flush() {
  if (block_.empty()) return;
  sink_->WriteBlock(block_);
  block_.clear();
}

}  // namespace atlas::trace
