#include "trace/sink.h"

#include "trace/stream.h"

namespace atlas::trace {

void BufferSink::Write(std::span<const LogRecord> records) {
  for (const auto& rec : records) out_->Add(rec);
}

void WriterSink::Write(std::span<const LogRecord> records) {
  writer_->Append(records);
}

void CountingSink::Write(std::span<const LogRecord> records) {
  records_ += records.size();
  for (const auto& rec : records) response_bytes_ += rec.response_bytes;
}

}  // namespace atlas::trace
