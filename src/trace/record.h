// The HTTP access-log schema.
//
// Mirrors the record described in the paper (§III): "publisher identifier,
// hashed URL, object file type, object size in bytes, user agent, and the
// timestamp when the request was received", plus the response side: "the
// HTTP response code and the cache status for the requested object". User
// identity is an anonymized 64-bit id (the paper anonymizes IP addresses).
#pragma once

#include <cstdint>
#include <string>

namespace atlas::trace {

// Content categories used throughout the paper's analysis.
enum class ContentClass : std::uint8_t { kVideo = 0, kImage = 1, kOther = 2 };
inline constexpr int kNumContentClasses = 3;

// Device categories of Fig. 4.
enum class DeviceType : std::uint8_t {
  kDesktop = 0,
  kAndroid = 1,
  kIos = 2,
  kMisc = 3,  // tablets and other mobile devices
};
inline constexpr int kNumDeviceTypes = 4;

// Concrete file types (the paper names these in §IV-A).
enum class FileType : std::uint8_t {
  // video
  kFlv, kMp4, kMpg, kAvi, kWmv, kWebm,
  // image
  kJpg, kPng, kGif, kTiff, kBmp, kWebp,
  // other
  kHtml, kCss, kJs, kXml, kTxt, kJson, kMp3, kUnknown,
};
inline constexpr int kNumFileTypes = 20;

// CDN edge cache status recorded with each response.
enum class CacheStatus : std::uint8_t { kHit = 0, kMiss = 1 };

// HTTP status codes the paper's Fig. 16 reports.
inline constexpr std::uint16_t kHttpOk = 200;
inline constexpr std::uint16_t kHttpNoContent = 204;
inline constexpr std::uint16_t kHttpPartialContent = 206;
inline constexpr std::uint16_t kHttpNotModified = 304;
inline constexpr std::uint16_t kHttpForbidden = 403;
inline constexpr std::uint16_t kHttpRangeNotSatisfiable = 416;

struct LogRecord {
  // Milliseconds since trace start (Saturday 00:00 UTC).
  std::int64_t timestamp_ms = 0;
  // Anonymized object identity (the CDN hashes URLs before export).
  std::uint64_t url_hash = 0;
  // Anonymized user identity.
  std::uint64_t user_id = 0;
  // Full size of the requested object, bytes.
  std::uint64_t object_size = 0;
  // Bytes actually delivered by this response (< object_size for 206;
  // 0 for 304/403/416).
  std::uint64_t response_bytes = 0;
  // Publisher (website) identifier; resolved via PublisherRegistry.
  std::uint32_t publisher_id = 0;
  // Index into the user-agent bank (the raw UA string of the request).
  std::uint16_t user_agent_id = 0;
  std::uint16_t response_code = kHttpOk;
  FileType file_type = FileType::kUnknown;
  CacheStatus cache_status = CacheStatus::kMiss;
  // The requesting user's UTC offset in quarter hours; the paper converts
  // timestamps to local timezones for the temporal analysis (Fig. 3).
  std::int8_t tz_offset_quarter_hours = 0;

  std::int64_t LocalTimestampMs() const {
    return timestamp_ms +
           static_cast<std::int64_t>(tz_offset_quarter_hours) * 15 * 60 * 1000;
  }

  bool operator==(const LogRecord&) const = default;
};

const char* ToString(ContentClass c);
const char* ToString(DeviceType d);
const char* ToString(FileType t);
const char* ToString(CacheStatus s);

// Parses the textual forms produced by ToString (used by the CSV reader).
// Throws std::invalid_argument on unknown names.
ContentClass ContentClassFromString(const std::string& s);
DeviceType DeviceTypeFromString(const std::string& s);
FileType FileTypeFromString(const std::string& s);
CacheStatus CacheStatusFromString(const std::string& s);

}  // namespace atlas::trace
