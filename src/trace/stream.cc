#include "trace/stream.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "ckpt/checkpoint.h"  // atlas-lint: allow(layer-dag) ckpt is the passive serialization substrate; consuming its codec interface does not invert control flow
#include "trace/wire_format.h"
#include "util/hash.h"

namespace atlas::trace {
namespace {

constexpr char kMagic[4] = {'A', 'T', 'L', 'S'};

template <typename T>
void WriteLe(std::ostream& out, T value) {
  unsigned char bytes[sizeof(T)];
  wire::StoreLe(bytes, value);
  out.write(reinterpret_cast<const char*>(bytes), sizeof(T));
}

template <typename T>
T ReadLe(std::istream& in) {
  unsigned char bytes[sizeof(T)];
  in.read(reinterpret_cast<char*>(bytes), sizeof(T));
  if (!in) throw std::runtime_error("trace_io: truncated input");
  return wire::LoadLe<T>(bytes);
}

// Non-throwing variant for the recovery scanner, which must report
// truncation as a finding rather than an exception.
template <typename T>
bool TryReadLe(std::istream& in, T* value) {
  unsigned char bytes[sizeof(T)];
  in.read(reinterpret_cast<char*>(bytes), sizeof(T));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(T))) return false;
  *value = wire::LoadLe<T>(bytes);
  return true;
}

}  // namespace

BufferSource::BufferSource(const TraceBuffer& buffer,
                           std::size_t chunk_records)
    : buffer_(buffer), chunk_records_(std::max<std::size_t>(1, chunk_records)) {}

std::span<const LogRecord> BufferSource::NextChunk() {
  const auto& records = buffer_.records();
  if (pos_ >= records.size()) return {};
  const std::size_t n = std::min(chunk_records_, records.size() - pos_);
  std::span<const LogRecord> chunk(records.data() + pos_, n);
  pos_ += n;
  return chunk;
}

TraceWriter::TraceWriter(std::ostream& out, std::size_t block_records)
    : out_(out),
      block_records_(
          std::clamp<std::size_t>(block_records, 1, kMaxBlockRecords)) {
  payload_.reserve(block_records_ * wire::kRecordWireSize);
  out_.write(kMagic, sizeof(kMagic));
  WriteLe(out_, kBlockFormatVersion);
  count_pos_ = out_.tellp();
  seekable_ = count_pos_ != std::ostream::pos_type(-1);
  WriteLe(out_, kUnknownCount);
  if (!out_) throw std::runtime_error("trace_io: write failed");
}

void TraceWriter::Add(const LogRecord& record) {
  if (finished_) throw std::logic_error("TraceWriter: Add after Finish");
  unsigned char buf[wire::kRecordWireSize];
  wire::EncodeRecord(record, buf);
  payload_.insert(payload_.end(), buf, buf + sizeof(buf));
  ++block_nrec_;
  ++total_;
  if (block_nrec_ == block_records_) FlushBlock();
}

void TraceWriter::Append(std::span<const LogRecord> records) {
  for (const auto& r : records) Add(r);
}

void TraceWriter::AppendBlock(const RecordBlock& block) {
  if (finished_) throw std::logic_error("TraceWriter: Add after Finish");
  std::size_t first = 0;
  while (first < block.size()) {
    const std::size_t n =
        std::min(block.size() - first, block_records_ - block_nrec_);
    block.EncodeWire(first, n, payload_);
    block_nrec_ += static_cast<std::uint32_t>(n);
    total_ += n;
    first += n;
    if (block_nrec_ == block_records_) FlushBlock();
  }
}

void TraceWriter::FlushBlock() {
  if (block_nrec_ == 0) return;
  WriteLe(out_, block_nrec_);
  WriteLe(out_, static_cast<std::uint32_t>(payload_.size()));
  WriteLe(out_, util::Crc32(payload_.data(), payload_.size()));
  out_.write(reinterpret_cast<const char*>(payload_.data()),
             static_cast<std::streamsize>(payload_.size()));
  if (!out_) throw std::runtime_error("trace_io: write failed");
  payload_.clear();
  block_nrec_ = 0;
}

void TraceWriter::Finish() {
  if (finished_) return;
  FlushBlock();
  // Terminator block, then the trailer count every reader can rely on.
  WriteLe(out_, std::uint32_t{0});
  WriteLe(out_, std::uint32_t{0});
  WriteLe(out_, std::uint32_t{0});
  WriteLe(out_, total_);
  if (seekable_) {
    const auto end_pos = out_.tellp();
    out_.seekp(count_pos_);
    WriteLe(out_, total_);
    out_.seekp(end_pos);
  }
  out_.flush();
  if (!out_) throw std::runtime_error("trace_io: write failed");
  finished_ = true;
}

ScanResult ScanV2Blocks(std::istream& in, std::uint64_t stop_after_records) {
  ScanResult result;
  char magic[4];
  in.read(magic, sizeof(magic));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    result.error = "bad magic";
    return result;
  }
  std::uint32_t version = 0;
  std::uint64_t header_count = 0;
  if (!TryReadLe(in, &version) || !TryReadLe(in, &header_count)) {
    result.error = "truncated header";
    return result;
  }
  if (version != kBlockFormatVersion) {
    result.error = "unsupported version " + std::to_string(version) +
                   " (the scanner walks v2 block streams)";
    return result;
  }
  if (header_count != kUnknownCount) result.header_count = header_count;
  result.data_end_offset = sizeof(magic) + sizeof(version) + sizeof(header_count);
  std::vector<unsigned char> payload;
  while (result.valid_records < stop_after_records) {
    std::uint32_t nrec = 0;
    if (!TryReadLe(in, &nrec)) {
      result.error = "missing terminator (stream ends at a block boundary)";
      return result;
    }
    std::uint32_t payload_bytes = 0;
    std::uint32_t crc = 0;
    if (!TryReadLe(in, &payload_bytes) || !TryReadLe(in, &crc)) {
      result.error = "truncated block header";
      return result;
    }
    if (nrec == 0) {
      if (payload_bytes != 0 || crc != 0) {
        result.error = "malformed terminator block";
        return result;
      }
      std::uint64_t trailer = 0;
      if (!TryReadLe(in, &trailer)) {
        result.error = "truncated trailer";
        return result;
      }
      if (trailer != result.valid_records) {
        result.error = "trailer count mismatch (trailer says " +
                       std::to_string(trailer) + ", blocks hold " +
                       std::to_string(result.valid_records) + ")";
        return result;
      }
      if (result.header_count && *result.header_count != result.valid_records) {
        result.error = "header count mismatch";
        return result;
      }
      result.terminated = true;
      return result;
    }
    if (nrec > kMaxBlockRecords ||
        payload_bytes != nrec * wire::kRecordWireSize) {
      result.error = "bad block header";
      return result;
    }
    payload.resize(payload_bytes);
    in.read(reinterpret_cast<char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
    if (static_cast<std::size_t>(in.gcount()) != payload.size()) {
      result.error = "truncated block payload";
      return result;
    }
    if (util::Crc32(payload.data(), payload.size()) != crc) {
      result.error = "block CRC mismatch";
      return result;
    }
    result.data_end_offset += 3 * sizeof(std::uint32_t) + payload_bytes;
    ++result.valid_blocks;
    result.valid_records += nrec;
  }
  return result;  // stop_after_records reached; tail intentionally unscanned
}

ScanResult ScanV2File(const std::string& path,
                      std::uint64_t stop_after_records) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace_io: cannot open " + path);
  return ScanV2Blocks(in, stop_after_records);
}

void TraceWriter::SaveState(ckpt::Writer& w) {
  if (finished_) throw std::logic_error("TraceWriter: SaveState after Finish");
  if (!seekable_) {
    throw std::runtime_error("trace_io: checkpointing requires a seekable sink");
  }
  out_.flush();
  const auto pos = out_.tellp();
  if (!out_ || pos == std::ostream::pos_type(-1)) {
    throw std::runtime_error("trace_io: flush failed before checkpoint");
  }
  w.BeginSection(kTraceWriterSection, kTraceWriterStateVersion);
  w.WriteU64(static_cast<std::uint64_t>(block_records_));
  w.WriteU64(total_);
  w.WriteU32(block_nrec_);
  w.WriteBytes(payload_.data(), payload_.size());
  w.WriteU64(static_cast<std::uint64_t>(static_cast<std::streamoff>(pos)));
  w.EndSection();
}

TraceWriter::ResumeState TraceWriter::ResumeState::Load(ckpt::Reader& r) {
  ResumeState s;
  r.BeginSection(kTraceWriterSection, kTraceWriterStateVersion);
  s.block_records = static_cast<std::size_t>(r.ReadU64());
  s.total = r.ReadU64();
  s.block_nrec = r.ReadU32();
  s.payload = r.ReadBytes();
  s.file_bytes = r.ReadU64();
  r.EndSection();
  constexpr std::uint64_t kHeaderBytes = 16;
  if (s.block_records == 0 || s.block_records > kMaxBlockRecords ||
      s.block_nrec >= s.block_records || s.total < s.block_nrec ||
      s.payload.size() != std::size_t{s.block_nrec} * wire::kRecordWireSize ||
      s.file_bytes < kHeaderBytes) {
    throw std::runtime_error("trace_io: corrupt writer snapshot");
  }
  return s;
}

TraceWriter::TraceWriter(std::ostream& out, const ResumeState& resume)
    : out_(out), block_records_(resume.block_records) {
  payload_ = resume.payload;
  payload_.reserve(block_records_ * wire::kRecordWireSize);
  block_nrec_ = resume.block_nrec;
  total_ = resume.total;
  // Resumed sinks are real files: the header count lives right after the
  // 4-byte magic and 4-byte version, and Finish() can patch it.
  count_pos_ = std::ostream::pos_type(std::streamoff{8});
  seekable_ = true;
  if (!out_) throw std::runtime_error("trace_io: write failed");
}

ResumedTraceFile::ResumedTraceFile(const std::string& path, ckpt::Reader& r) {
  const auto resume = TraceWriter::ResumeState::Load(r);
  const ScanResult scan = ScanV2File(path, resume.flushed_records());
  if (scan.valid_records != resume.flushed_records() ||
      scan.data_end_offset != resume.file_bytes) {
    std::string detail = scan.error.empty() ? "layout mismatch" : scan.error;
    throw std::runtime_error(
        "trace_io: recovery failed for " + path + ": checkpoint expects " +
        std::to_string(resume.flushed_records()) + " flushed records in " +
        std::to_string(resume.file_bytes) + " bytes, file has " +
        std::to_string(scan.valid_records) + " intact records in " +
        std::to_string(scan.data_end_offset) + " bytes (" + detail + ")");
  }
  // Drop the torn tail (or blocks written after this snapshot), then
  // reopen for in-place append.
  std::filesystem::resize_file(path, resume.file_bytes);
  io_.open(path, std::ios::in | std::ios::out | std::ios::binary);
  if (!io_) throw std::runtime_error("trace_io: cannot reopen " + path);
  io_.seekp(static_cast<std::streamoff>(resume.file_bytes), std::ios::beg);
  writer_ = std::make_unique<TraceWriter>(io_, resume);
}

TraceReader::TraceReader(std::istream& in, std::size_t chunk_records)
    : in_(in),
      chunk_records_(
          std::clamp<std::size_t>(chunk_records, 1, kMaxBlockRecords)) {
  char magic[4];
  in_.read(magic, sizeof(magic));
  if (!in_ || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("trace_io: bad magic");
  }
  version_ = ReadLe<std::uint32_t>(in_);
  if (version_ != 1 && version_ != kBlockFormatVersion) {
    throw std::runtime_error("trace_io: unsupported version " +
                             std::to_string(version_));
  }
  header_count_ = ReadLe<std::uint64_t>(in_);
  if (version_ == 1 && header_count_ == kUnknownCount) {
    throw std::runtime_error("trace_io: bad record count");
  }
}

std::optional<std::uint64_t> TraceReader::declared_count() const {
  if (header_count_ == kUnknownCount) return std::nullopt;
  return header_count_;
}

std::span<const LogRecord> TraceReader::NextChunk() {
  if (done_) return {};
  return version_ == 1 ? NextChunkV1() : NextChunkV2();
}

std::size_t TraceReader::ReadRawV1() {
  const std::uint64_t remaining = header_count_ - records_read_;
  if (remaining == 0) {
    done_ = true;
    return 0;
  }
  const auto n = static_cast<std::size_t>(
      std::min<std::uint64_t>(remaining, chunk_records_));
  raw_.resize(n * wire::kRecordWireSize);
  in_.read(reinterpret_cast<char*>(raw_.data()),
           static_cast<std::streamsize>(raw_.size()));
  if (static_cast<std::size_t>(in_.gcount()) != raw_.size()) {
    throw std::runtime_error("trace_io: truncated input");
  }
  records_read_ += n;
  return n;
}

std::uint32_t TraceReader::ReadRawV2() {
  const auto nrec = ReadLe<std::uint32_t>(in_);
  const auto payload_bytes = ReadLe<std::uint32_t>(in_);
  const auto crc = ReadLe<std::uint32_t>(in_);
  if (nrec == 0) {
    // Terminator. The trailer count must match what we handed out, and the
    // header count too when the writer was able to patch it in.
    if (payload_bytes != 0 || crc != 0) {
      throw std::runtime_error("trace_io: malformed terminator block");
    }
    const auto trailer = ReadLe<std::uint64_t>(in_);
    if (trailer != records_read_) {
      throw std::runtime_error("trace_io: trailer count mismatch");
    }
    if (header_count_ != kUnknownCount && header_count_ != records_read_) {
      throw std::runtime_error("trace_io: header count mismatch");
    }
    done_ = true;
    return 0;
  }
  if (nrec > kMaxBlockRecords ||
      payload_bytes != nrec * wire::kRecordWireSize) {
    throw std::runtime_error("trace_io: bad block header");
  }
  raw_.resize(payload_bytes);
  in_.read(reinterpret_cast<char*>(raw_.data()),
           static_cast<std::streamsize>(raw_.size()));
  if (static_cast<std::size_t>(in_.gcount()) != raw_.size()) {
    throw std::runtime_error("trace_io: truncated input");
  }
  if (util::Crc32(raw_.data(), raw_.size()) != crc) {
    throw std::runtime_error("trace_io: block CRC mismatch");
  }
  records_read_ += nrec;
  return nrec;
}

std::span<const LogRecord> TraceReader::NextChunkV1() {
  const std::size_t n = ReadRawV1();
  if (n == 0) return {};
  records_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    records_[i] = wire::DecodeRecord(raw_.data() + i * wire::kRecordWireSize);
  }
  return {records_.data(), n};
}

std::span<const LogRecord> TraceReader::NextChunkV2() {
  const std::uint32_t nrec = ReadRawV2();
  if (nrec == 0) return {};
  records_.resize(nrec);
  for (std::size_t i = 0; i < nrec; ++i) {
    records_[i] = wire::DecodeRecord(raw_.data() + i * wire::kRecordWireSize);
  }
  return {records_.data(), records_.size()};
}

const RecordBlock* TraceReader::NextBlock() {
  if (done_) return nullptr;
  const std::size_t n = version_ == 1 ? ReadRawV1() : ReadRawV2();
  if (n == 0) return nullptr;
  block_.DecodeWire(raw_.data(), n);
  return &block_;
}

std::ifstream& TraceFileReader::Checked(std::ifstream& in,
                                        const std::string& path) {
  if (!in) throw std::runtime_error("trace_io: cannot open " + path);
  return in;
}

TraceFileReader::TraceFileReader(const std::string& path,
                                 std::size_t chunk_records)
    : in_(path, std::ios::binary),
      reader_(Checked(in_, path), chunk_records) {}

void WriteV2(const TraceBuffer& trace, std::ostream& out,
             std::size_t block_records) {
  TraceWriter writer(out, block_records);
  writer.Append(trace.records());
  writer.Finish();
}

void WriteV2File(const TraceBuffer& trace, const std::string& path,
                 std::size_t block_records) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("trace_io: cannot open " + path);
  WriteV2(trace, out, block_records);
  out.close();
  if (out.fail()) throw std::runtime_error("trace_io: close failed: " + path);
}

TraceBuffer ReadAllRecords(RecordSource& source) {
  TraceBuffer trace;
  for (auto chunk = source.NextChunk(); !chunk.empty();
       chunk = source.NextChunk()) {
    for (const auto& r : chunk) trace.Add(r);
  }
  return trace;
}

TraceBuffer ReadAnyBinaryFile(const std::string& path) {
  TraceFileReader reader(path);
  return ReadAllRecords(reader);
}

}  // namespace atlas::trace
