#include "trace/stream.h"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "trace/wire_format.h"
#include "util/hash.h"

namespace atlas::trace {
namespace {

constexpr char kMagic[4] = {'A', 'T', 'L', 'S'};

template <typename T>
void WriteLe(std::ostream& out, T value) {
  unsigned char bytes[sizeof(T)];
  wire::StoreLe(bytes, value);
  out.write(reinterpret_cast<const char*>(bytes), sizeof(T));
}

template <typename T>
T ReadLe(std::istream& in) {
  unsigned char bytes[sizeof(T)];
  in.read(reinterpret_cast<char*>(bytes), sizeof(T));
  if (!in) throw std::runtime_error("trace_io: truncated input");
  return wire::LoadLe<T>(bytes);
}

}  // namespace

BufferSource::BufferSource(const TraceBuffer& buffer,
                           std::size_t chunk_records)
    : buffer_(buffer), chunk_records_(std::max<std::size_t>(1, chunk_records)) {}

std::span<const LogRecord> BufferSource::NextChunk() {
  const auto& records = buffer_.records();
  if (pos_ >= records.size()) return {};
  const std::size_t n = std::min(chunk_records_, records.size() - pos_);
  std::span<const LogRecord> chunk(records.data() + pos_, n);
  pos_ += n;
  return chunk;
}

TraceWriter::TraceWriter(std::ostream& out, std::size_t block_records)
    : out_(out),
      block_records_(
          std::clamp<std::size_t>(block_records, 1, kMaxBlockRecords)) {
  payload_.reserve(block_records_ * wire::kRecordWireSize);
  out_.write(kMagic, sizeof(kMagic));
  WriteLe(out_, kBlockFormatVersion);
  count_pos_ = out_.tellp();
  seekable_ = count_pos_ != std::ostream::pos_type(-1);
  WriteLe(out_, kUnknownCount);
  if (!out_) throw std::runtime_error("trace_io: write failed");
}

void TraceWriter::Add(const LogRecord& record) {
  if (finished_) throw std::logic_error("TraceWriter: Add after Finish");
  unsigned char buf[wire::kRecordWireSize];
  wire::EncodeRecord(record, buf);
  payload_.insert(payload_.end(), buf, buf + sizeof(buf));
  ++block_nrec_;
  ++total_;
  if (block_nrec_ == block_records_) FlushBlock();
}

void TraceWriter::Append(std::span<const LogRecord> records) {
  for (const auto& r : records) Add(r);
}

void TraceWriter::FlushBlock() {
  if (block_nrec_ == 0) return;
  WriteLe(out_, block_nrec_);
  WriteLe(out_, static_cast<std::uint32_t>(payload_.size()));
  WriteLe(out_, util::Crc32(payload_.data(), payload_.size()));
  out_.write(reinterpret_cast<const char*>(payload_.data()),
             static_cast<std::streamsize>(payload_.size()));
  if (!out_) throw std::runtime_error("trace_io: write failed");
  payload_.clear();
  block_nrec_ = 0;
}

void TraceWriter::Finish() {
  if (finished_) return;
  FlushBlock();
  // Terminator block, then the trailer count every reader can rely on.
  WriteLe(out_, std::uint32_t{0});
  WriteLe(out_, std::uint32_t{0});
  WriteLe(out_, std::uint32_t{0});
  WriteLe(out_, total_);
  if (seekable_) {
    const auto end_pos = out_.tellp();
    out_.seekp(count_pos_);
    WriteLe(out_, total_);
    out_.seekp(end_pos);
  }
  out_.flush();
  if (!out_) throw std::runtime_error("trace_io: write failed");
  finished_ = true;
}

TraceReader::TraceReader(std::istream& in, std::size_t chunk_records)
    : in_(in),
      chunk_records_(
          std::clamp<std::size_t>(chunk_records, 1, kMaxBlockRecords)) {
  char magic[4];
  in_.read(magic, sizeof(magic));
  if (!in_ || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("trace_io: bad magic");
  }
  version_ = ReadLe<std::uint32_t>(in_);
  if (version_ != 1 && version_ != kBlockFormatVersion) {
    throw std::runtime_error("trace_io: unsupported version " +
                             std::to_string(version_));
  }
  header_count_ = ReadLe<std::uint64_t>(in_);
  if (version_ == 1 && header_count_ == kUnknownCount) {
    throw std::runtime_error("trace_io: bad record count");
  }
}

std::optional<std::uint64_t> TraceReader::declared_count() const {
  if (header_count_ == kUnknownCount) return std::nullopt;
  return header_count_;
}

std::span<const LogRecord> TraceReader::NextChunk() {
  if (done_) return {};
  return version_ == 1 ? NextChunkV1() : NextChunkV2();
}

std::span<const LogRecord> TraceReader::NextChunkV1() {
  const std::uint64_t remaining = header_count_ - records_read_;
  if (remaining == 0) {
    done_ = true;
    return {};
  }
  const auto n = static_cast<std::size_t>(
      std::min<std::uint64_t>(remaining, chunk_records_));
  raw_.resize(n * wire::kRecordWireSize);
  in_.read(reinterpret_cast<char*>(raw_.data()),
           static_cast<std::streamsize>(raw_.size()));
  if (static_cast<std::size_t>(in_.gcount()) != raw_.size()) {
    throw std::runtime_error("trace_io: truncated input");
  }
  records_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    records_[i] = wire::DecodeRecord(raw_.data() + i * wire::kRecordWireSize);
  }
  records_read_ += n;
  return {records_.data(), n};
}

std::span<const LogRecord> TraceReader::NextChunkV2() {
  const auto nrec = ReadLe<std::uint32_t>(in_);
  const auto payload_bytes = ReadLe<std::uint32_t>(in_);
  const auto crc = ReadLe<std::uint32_t>(in_);
  if (nrec == 0) {
    // Terminator. The trailer count must match what we handed out, and the
    // header count too when the writer was able to patch it in.
    if (payload_bytes != 0 || crc != 0) {
      throw std::runtime_error("trace_io: malformed terminator block");
    }
    const auto trailer = ReadLe<std::uint64_t>(in_);
    if (trailer != records_read_) {
      throw std::runtime_error("trace_io: trailer count mismatch");
    }
    if (header_count_ != kUnknownCount && header_count_ != records_read_) {
      throw std::runtime_error("trace_io: header count mismatch");
    }
    done_ = true;
    return {};
  }
  if (nrec > kMaxBlockRecords ||
      payload_bytes != nrec * wire::kRecordWireSize) {
    throw std::runtime_error("trace_io: bad block header");
  }
  raw_.resize(payload_bytes);
  in_.read(reinterpret_cast<char*>(raw_.data()),
           static_cast<std::streamsize>(raw_.size()));
  if (static_cast<std::size_t>(in_.gcount()) != raw_.size()) {
    throw std::runtime_error("trace_io: truncated input");
  }
  if (util::Crc32(raw_.data(), raw_.size()) != crc) {
    throw std::runtime_error("trace_io: block CRC mismatch");
  }
  records_.resize(nrec);
  for (std::size_t i = 0; i < nrec; ++i) {
    records_[i] = wire::DecodeRecord(raw_.data() + i * wire::kRecordWireSize);
  }
  records_read_ += nrec;
  return {records_.data(), records_.size()};
}

std::ifstream& TraceFileReader::Checked(std::ifstream& in,
                                        const std::string& path) {
  if (!in) throw std::runtime_error("trace_io: cannot open " + path);
  return in;
}

TraceFileReader::TraceFileReader(const std::string& path,
                                 std::size_t chunk_records)
    : in_(path, std::ios::binary),
      reader_(Checked(in_, path), chunk_records) {}

void WriteV2(const TraceBuffer& trace, std::ostream& out,
             std::size_t block_records) {
  TraceWriter writer(out, block_records);
  writer.Append(trace.records());
  writer.Finish();
}

void WriteV2File(const TraceBuffer& trace, const std::string& path,
                 std::size_t block_records) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("trace_io: cannot open " + path);
  WriteV2(trace, out, block_records);
}

TraceBuffer ReadAllRecords(RecordSource& source) {
  TraceBuffer trace;
  for (auto chunk = source.NextChunk(); !chunk.empty();
       chunk = source.NextChunk()) {
    for (const auto& r : chunk) trace.Add(r);
  }
  return trace;
}

TraceBuffer ReadAnyBinaryFile(const std::string& path) {
  TraceFileReader reader(path);
  return ReadAllRecords(reader);
}

}  // namespace atlas::trace
