#include "trace/record.h"

#include <stdexcept>

namespace atlas::trace {

const char* ToString(ContentClass c) {
  switch (c) {
    case ContentClass::kVideo:
      return "video";
    case ContentClass::kImage:
      return "image";
    case ContentClass::kOther:
      return "other";
  }
  return "?";
}

const char* ToString(DeviceType d) {
  switch (d) {
    case DeviceType::kDesktop:
      return "Desktop";
    case DeviceType::kAndroid:
      return "Android";
    case DeviceType::kIos:
      return "iOS";
    case DeviceType::kMisc:
      return "Misc";
  }
  return "?";
}

const char* ToString(FileType t) {
  switch (t) {
    case FileType::kFlv: return "flv";
    case FileType::kMp4: return "mp4";
    case FileType::kMpg: return "mpg";
    case FileType::kAvi: return "avi";
    case FileType::kWmv: return "wmv";
    case FileType::kWebm: return "webm";
    case FileType::kJpg: return "jpg";
    case FileType::kPng: return "png";
    case FileType::kGif: return "gif";
    case FileType::kTiff: return "tiff";
    case FileType::kBmp: return "bmp";
    case FileType::kWebp: return "webp";
    case FileType::kHtml: return "html";
    case FileType::kCss: return "css";
    case FileType::kJs: return "js";
    case FileType::kXml: return "xml";
    case FileType::kTxt: return "txt";
    case FileType::kJson: return "json";
    case FileType::kMp3: return "mp3";
    case FileType::kUnknown: return "unknown";
  }
  return "?";
}

const char* ToString(CacheStatus s) {
  return s == CacheStatus::kHit ? "HIT" : "MISS";
}

ContentClass ContentClassFromString(const std::string& s) {
  if (s == "video") return ContentClass::kVideo;
  if (s == "image") return ContentClass::kImage;
  if (s == "other") return ContentClass::kOther;
  throw std::invalid_argument("unknown ContentClass: " + s);
}

DeviceType DeviceTypeFromString(const std::string& s) {
  if (s == "Desktop") return DeviceType::kDesktop;
  if (s == "Android") return DeviceType::kAndroid;
  if (s == "iOS") return DeviceType::kIos;
  if (s == "Misc") return DeviceType::kMisc;
  throw std::invalid_argument("unknown DeviceType: " + s);
}

FileType FileTypeFromString(const std::string& s) {
  for (int i = 0; i < kNumFileTypes; ++i) {
    const auto t = static_cast<FileType>(i);
    if (s == ToString(t)) return t;
  }
  throw std::invalid_argument("unknown FileType: " + s);
}

CacheStatus CacheStatusFromString(const std::string& s) {
  if (s == "HIT") return CacheStatus::kHit;
  if (s == "MISS") return CacheStatus::kMiss;
  throw std::invalid_argument("unknown CacheStatus: " + s);
}

}  // namespace atlas::trace
