#include "synth/temporal.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace atlas::synth {
namespace {

// Cosine bump centered on `peak` with the given amplitude; period 24h.
double DiurnalFactor(double hour, double peak, double amplitude) {
  return 1.0 + amplitude * std::cos(2.0 * M_PI * (hour - peak) / 24.0);
}

}  // namespace

double SiteHourlyDemand(const SiteProfile& profile, double local_hour) {
  double v = DiurnalFactor(local_hour, profile.peak_local_hour,
                           profile.diurnal_amplitude);
  if (profile.secondary_amplitude > 0.0) {
    v += profile.secondary_amplitude *
         std::cos(2.0 * M_PI * (local_hour - profile.secondary_peak_hour) /
                  24.0);
  }
  return std::max(v, 0.01);
}

WeekHourDistribution::WeekHourDistribution(const SiteProfile& profile) {
  // Weekend evenings carry slightly more adult traffic; weekday working
  // hours slightly less. Day 0 is Saturday.
  static constexpr std::array<double, 7> kDayWeight = {1.08, 1.06, 0.97, 0.96,
                                                       0.97, 0.97, 0.99};
  double total = 0.0;
  for (int h = 0; h < util::kHoursPerWeek; ++h) {
    const int day = h / 24;
    const double hour = static_cast<double>(h % 24) + 0.5;
    weights_[static_cast<std::size_t>(h)] =
        SiteHourlyDemand(profile, hour) * kDayWeight[static_cast<std::size_t>(day)];
    total += weights_[static_cast<std::size_t>(h)];
  }
  double cum = 0.0;
  for (int h = 0; h < util::kHoursPerWeek; ++h) {
    cum += weights_[static_cast<std::size_t>(h)] / total;
    cumulative_[static_cast<std::size_t>(h)] = cum;
  }
  cumulative_.back() = 1.0;
}

std::int64_t WeekHourDistribution::SampleLocalMs(util::Rng& rng) const {
  const double u = rng.NextDouble();
  // Binary search the cumulative distribution.
  int lo = 0, hi = util::kHoursPerWeek - 1;
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (cumulative_[static_cast<std::size_t>(mid)] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const std::int64_t hour_start =
      static_cast<std::int64_t>(lo) * util::kMillisPerHour;
  return hour_start +
         static_cast<std::int64_t>(rng.NextDouble() *
                                   static_cast<double>(util::kMillisPerHour));
}

PatternParams PatternParams::Sample(PatternType type,
                                    const SiteProfile& profile,
                                    util::Rng& rng) {
  PatternParams p;
  p.type = type;
  switch (type) {
    case PatternType::kDiurnal:
      // Front-page objects follow the site's own rhythm, with jitter. Two
      // sub-populations (the paper's Diurnal-A/Diurnal-B clusters) differ in
      // phase by several hours.
      p.peak_hour = profile.peak_local_hour +
                    (rng.NextBool(0.33) ? 6.0 : 0.0) + rng.NextGaussian(0, 1.0);
      p.amplitude = std::clamp(0.65 + rng.NextGaussian(0, 0.1), 0.3, 0.95);
      break;
    case PatternType::kLongLived:
      // Peaks day 1, decays over days, dead after ~3-5 days.
      p.decay_tau_hours = std::clamp(rng.NextLogNormal(std::log(26.0), 0.3),
                                     12.0, 60.0);
      p.peak_hour = profile.peak_local_hour + rng.NextGaussian(0, 2.0);
      p.amplitude = 0.4;  // decays "in a diurnal fashion" (paper Fig. 9b)
      break;
    case PatternType::kShortLived:
      // Dies within hours.
      p.decay_tau_hours =
          std::clamp(rng.NextLogNormal(std::log(3.0), 0.4), 1.0, 8.0);
      break;
    case PatternType::kFlashCrowd:
      // Dormant, then a spike somewhere in the remaining week.
      p.spike_offset_ms = static_cast<std::int64_t>(
          rng.NextRange(0.15, 0.85) * static_cast<double>(util::kMillisPerWeek));
      p.spike_width_hours = std::clamp(rng.NextLogNormal(std::log(5.0), 0.4),
                                       2.0, 16.0);
      break;
    case PatternType::kOutlier:
      // A few well-separated bursts at random points of the week — request
      // behaviour that is neither periodic nor a single clean decay.
      for (int i = 0; i < 3; ++i) {
        p.bump_pos_frac[static_cast<std::size_t>(i)] = rng.NextDouble();
        p.bump_width_h[static_cast<std::size_t>(i)] = rng.NextRange(2.0, 10.0);
      }
      break;
  }
  return p;
}

double ObjectDemandMultiplier(const PatternParams& params,
                              std::int64_t injected_at_ms, std::int64_t utc_ms,
                              double representative_tz_hours) {
  if (utc_ms < injected_at_ms) return 0.0;
  const double age_hours =
      static_cast<double>(utc_ms - injected_at_ms) /
      static_cast<double>(util::kMillisPerHour);
  const double local_hour = std::fmod(
      static_cast<double>(utc_ms) / static_cast<double>(util::kMillisPerHour) +
          representative_tz_hours + 24.0 * 14.0,
      24.0);
  // Amplitudes are normalized so every pattern integrates to roughly the
  // same weekly demand mass (~168 "hour-units"): an object's Zipf weight
  // decides HOW MUCH it is requested, the pattern only decides WHEN. This is
  // what lets short-lived objects "reach maximum popularity within the first
  // day" (paper Fig. 9c) yet still rank among the clustered objects.
  constexpr double kWeekHours = 168.0;
  switch (params.type) {
    case PatternType::kDiurnal:
      return DiurnalFactor(local_hour, params.peak_hour, params.amplitude);
    case PatternType::kLongLived: {
      const double amp = kWeekHours / params.decay_tau_hours;
      return amp * std::exp(-age_hours / params.decay_tau_hours) *
             DiurnalFactor(local_hour, params.peak_hour, params.amplitude);
    }
    case PatternType::kShortLived: {
      const double amp = kWeekHours / params.decay_tau_hours;
      return amp * std::exp(-age_hours / params.decay_tau_hours);
    }
    case PatternType::kFlashCrowd: {
      const double since_spike_h =
          (static_cast<double>(utc_ms - injected_at_ms) -
           static_cast<double>(params.spike_offset_ms)) /
          static_cast<double>(util::kMillisPerHour);
      if (since_spike_h < 0.0) return 0.02;  // dormant trickle
      // Sharp rise, exponential fall.
      const double amp = kWeekHours / params.spike_width_hours;
      return amp * std::exp(-since_spike_h / params.spike_width_hours);
    }
    case PatternType::kOutlier: {
      // Base trickle + three bursts, each amplitude-normalized so the whole
      // pattern integrates to ~kWeekHours like the others.
      double v = 0.3;
      const double week_frac =
          std::fmod(static_cast<double>(utc_ms) /
                        static_cast<double>(util::kMillisPerWeek),
                    1.0);
      for (std::size_t i = 0; i < params.bump_pos_frac.size(); ++i) {
        const double d_h = (week_frac - params.bump_pos_frac[i]) * 168.0;
        const double w = params.bump_width_h[i];
        v += (47.0 / w) * std::exp(-(d_h * d_h) / (2.0 * w * w / 9.0));
      }
      return v;
    }
  }
  return 1.0;
}

double ObjectDemandCeiling(const PatternParams& params) {
  constexpr double kWeekHours = 168.0;
  switch (params.type) {
    case PatternType::kDiurnal:
      return 1.0 + params.amplitude;
    case PatternType::kLongLived:
      return kWeekHours / params.decay_tau_hours * (1.0 + params.amplitude);
    case PatternType::kShortLived:
      return kWeekHours / params.decay_tau_hours;
    case PatternType::kFlashCrowd:
      return kWeekHours / params.spike_width_hours;
    case PatternType::kOutlier: {
      // Bumps can overlap; bound by the sum of individual peaks.
      double ceiling = 0.3;
      for (double w : params.bump_width_h) {
        ceiling += 47.0 / std::max(w, 1e-9);
      }
      return ceiling;
    }
  }
  return 1.0;
}

}  // namespace atlas::synth
