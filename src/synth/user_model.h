// User population model.
//
// Users carry the static attributes the paper measures or relies on:
// device (via a concrete user-agent string, Fig. 4), timezone (continent
// mix, Fig. 3's local-time analysis), a heavy-tailed activity level (how
// many sessions they generate), and whether they browse in incognito mode
// (§V: "users are known to browse adult content in incognito/private
// browsing modes", which defeats browser caching).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "stats/sampler.h"
#include "synth/shard_store.h"
#include "synth/site_profile.h"
#include "trace/record.h"
#include "trace/useragent.h"
#include "util/rng.h"

namespace atlas::synth {

// Continents, in SiteProfile::continent_mix order.
enum class Continent : std::uint8_t {
  kNorthAmerica = 0,
  kEurope = 1,
  kAsia = 2,
  kSouthAmerica = 3,
};
inline constexpr int kNumContinents = 4;
const char* ToString(Continent c);

// Continent inferred from a UTC offset (used by the CDN simulator to route
// requests to the nearest data center — the log schema carries only the
// timezone, just like an anonymized IP would only geolocate coarsely).
Continent ContinentFromTzQuarterHours(std::int8_t tz_quarter_hours);

struct UserInfo {
  std::uint64_t user_id = 0;
  trace::DeviceType device = trace::DeviceType::kDesktop;
  std::uint16_t user_agent_id = 0;
  Continent continent = Continent::kNorthAmerica;
  std::int8_t tz_offset_quarter_hours = 0;
  // Relative propensity to start sessions (heavy-tailed).
  double activity = 1.0;
  bool incognito = false;
};

// Users per lazy population shard (~1 MB of UserInfo per shard).
inline constexpr std::size_t kUserShardItems = 32768;

class UserPopulation {
 public:
  // All randomness comes from `rng`; the stream is consumed identically
  // whether the table stays resident (fits its half of the profile's
  // synth-table budget) or switches to lazily replayed RNG-snapshot shards.
  UserPopulation(const SiteProfile& profile, util::Rng& rng);

  std::size_t size() const { return store_.size(); }
  // By value: lazy shards are evictable, so references into them cannot be
  // handed out. `const auto& u = users.user(i)` stays valid through
  // lifetime extension.
  UserInfo user(std::size_t i) const { return store_.Get(i); }

  // Streams every user in index order as fn(index, const UserInfo&); peak
  // extra memory is one shard. This replaces handing out the whole table
  // (`users()`), which a lazy population cannot do.
  template <typename Fn>
  void ForEachUser(Fn&& fn) const {
    store_.ForEach(fn);
  }

  // Draws a user index proportionally to activity.
  std::size_t SampleUser(util::Rng& rng) const;

  // Fraction of users per device type (ground truth for Fig. 4 validation;
  // accumulated during the build pass).
  std::array<double, trace::kNumDeviceTypes> DeviceShares() const;

  // True when the table exceeded its budget and went lazy (scale tests).
  bool lazy() const { return store_.lazy(); }
  const ShardStore<UserInfo>& store() const { return store_; }

 private:
  UserInfo GenerateUser(util::Rng& rng) const;

  SiteProfile profile_;  // kept for lazy replay
  ShardStore<UserInfo> store_;
  // Resident regardless of mode: SampleUser must weight the whole
  // population (~24 bytes/user, counted against the budget in DESIGN.md).
  std::unique_ptr<stats::AliasTable> activity_alias_;
  std::array<std::size_t, trace::kNumDeviceTypes> device_counts_{};
};

}  // namespace atlas::synth
