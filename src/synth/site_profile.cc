#include "synth/site_profile.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace atlas::synth {
namespace {

// log of a lognormal's median gives mu directly: median = exp(mu).
double MuFromMedian(double median) { return std::log(median); }

// Scales a population count, clamping up to `floor_value` so tiny scales
// never truncate a population to zero, and failing loudly when the scaled
// count would overflow the uint32 index range the event arrays use.
std::uint64_t ScaleCount64(std::uint64_t n, double scale,
                           std::uint64_t floor_value, const char* what,
                           std::uint64_t cap) {
  const double scaled_d = std::llround(static_cast<double>(n) * scale);
  const auto scaled = static_cast<std::uint64_t>(std::max(0.0, scaled_d));
  if (scaled > cap) {
    throw std::overflow_error(std::string("SiteProfile: scaled ") + what +
                              " " + std::to_string(scaled) + " exceeds cap " +
                              std::to_string(cap));
  }
  return std::max(scaled, floor_value);
}

std::size_t ScaleCount(std::size_t n, double scale, std::size_t floor_value,
                       const char* what) {
  // Object/user indices are uint32 fields in RequestEvent; fail the
  // factory, not the first narrowing cast five layers down.
  return static_cast<std::size_t>(
      ScaleCount64(n, scale, floor_value, what,
                   std::numeric_limits<std::uint32_t>::max()));
}

void ApplyScale(SiteProfile& p, double scale) {
  if (!std::isfinite(scale) || scale <= 0.0 || scale > kMaxProfileScale) {
    throw std::invalid_argument(
        "SiteProfile: scale must be a finite value in (0, " +
        std::to_string(kMaxProfileScale) + "]");
  }
  p.num_objects = ScaleCount(p.num_objects, scale, 50, "num_objects");
  p.num_users = ScaleCount(p.num_users, scale, 20, "num_users");
  p.total_requests =
      ScaleCount64(p.total_requests, scale, 500, "total_requests",
                   std::numeric_limits<std::uint64_t>::max() / 2);
}

}  // namespace

const char* ToString(PatternType p) {
  switch (p) {
    case PatternType::kDiurnal:
      return "diurnal";
    case PatternType::kLongLived:
      return "long-lived";
    case PatternType::kShortLived:
      return "short-lived";
    case PatternType::kFlashCrowd:
      return "flash-crowd";
    case PatternType::kOutlier:
      return "outlier";
  }
  return "?";
}

const char* ToString(DemandEventKind k) {
  switch (k) {
    case DemandEventKind::kFlashCrowd:
      return "flash-crowd";
    case DemandEventKind::kTakedown:
      return "takedown";
  }
  return "?";
}

std::uint64_t SizeModel::Sample(util::Rng& rng) const {
  double v;
  if (rng.NextBool(bimodal_weight)) {
    v = rng.NextLogNormal(mu1, sigma1);
  } else {
    v = rng.NextLogNormal(mu2, sigma2);
  }
  v = std::clamp(v, lo_bytes, hi_bytes);
  return static_cast<std::uint64_t>(v);
}

SizeModel SizeModel::LogNormal(double median_bytes, double sigma, double lo,
                               double hi) {
  SizeModel m;
  m.mu1 = MuFromMedian(median_bytes);
  m.sigma1 = sigma;
  m.bimodal_weight = 1.0;
  m.lo_bytes = lo;
  m.hi_bytes = hi;
  return m;
}

SizeModel SizeModel::Bimodal(double median1, double sigma1, double median2,
                             double sigma2, double weight_first, double lo,
                             double hi) {
  SizeModel m;
  m.mu1 = MuFromMedian(median1);
  m.sigma1 = sigma1;
  m.mu2 = MuFromMedian(median2);
  m.sigma2 = sigma2;
  m.bimodal_weight = weight_first;
  m.lo_bytes = lo;
  m.hi_bytes = hi;
  return m;
}

PatternType PatternMix::Sample(util::Rng& rng) const {
  std::vector<double> w(fractions.begin(), fractions.end());
  return static_cast<PatternType>(rng.NextWeighted(w));
}

void PatternMix::Validate() const {
  double total = 0.0;
  for (double f : fractions) {
    if (f < 0.0) throw std::invalid_argument("PatternMix: negative fraction");
    total += f;
  }
  if (std::abs(total - 1.0) > 1e-6) {
    throw std::invalid_argument("PatternMix: fractions must sum to 1");
  }
}

void SiteProfile::Validate() const {
  if (name.empty()) throw std::invalid_argument("SiteProfile: empty name");
  if (num_objects == 0 || num_users == 0 || total_requests == 0) {
    throw std::invalid_argument("SiteProfile: zero-sized population");
  }
  // Hand-built profiles get the same index-range guarantee the scaled
  // factories enforce: every object/user index fits the events' uint32
  // fields, so the CheckedIndexU32 conversions downstream cannot fire.
  constexpr std::uint64_t kMaxPopulation =
      std::numeric_limits<std::uint32_t>::max();
  if (num_objects > kMaxPopulation || num_users > kMaxPopulation) {
    throw std::overflow_error(
        "SiteProfile: population exceeds the uint32 index range");
  }
  if (synth_table_budget_bytes == 0) {
    throw std::invalid_argument("SiteProfile: synth_table_budget_bytes == 0");
  }
  double mix = 0.0;
  for (double f : object_class_mix) {
    if (f < 0.0) throw std::invalid_argument("SiteProfile: negative class mix");
    mix += f;
  }
  if (std::abs(mix - 1.0) > 1e-6) {
    throw std::invalid_argument("SiteProfile: class mix must sum to 1");
  }
  double dev = 0.0;
  for (double f : device_mix) {
    if (f < 0.0) throw std::invalid_argument("SiteProfile: negative device mix");
    dev += f;
  }
  if (std::abs(dev - 1.0) > 1e-6) {
    throw std::invalid_argument("SiteProfile: device mix must sum to 1");
  }
  double cont = 0.0;
  for (double f : continent_mix) cont += f;
  if (std::abs(cont - 1.0) > 1e-6) {
    throw std::invalid_argument("SiteProfile: continent mix must sum to 1");
  }
  video_patterns.Validate();
  image_patterns.Validate();
  other_patterns.Validate();
  if (preexisting_fraction < 0.0 || preexisting_fraction > 1.0) {
    throw std::invalid_argument("SiteProfile: preexisting_fraction out of range");
  }
  if (diurnal_amplitude < 0.0 || diurnal_amplitude >= 1.0) {
    throw std::invalid_argument("SiteProfile: diurnal_amplitude out of [0,1)");
  }
  if (mean_requests_per_session < 1.0) {
    throw std::invalid_argument("SiteProfile: mean_requests_per_session < 1");
  }
  if (zipf_s < 0.0) throw std::invalid_argument("SiteProfile: zipf_s < 0");
  if (watch_fraction_mean <= 0.0 || watch_fraction_mean > 1.0) {
    throw std::invalid_argument("SiteProfile: watch_fraction_mean out of range");
  }
  for (const DemandEvent& e : demand_events) {
    if (e.end_ms <= e.start_ms || e.start_ms < 0) {
      throw std::invalid_argument(
          "SiteProfile: demand event window must satisfy 0 <= start < end");
    }
    if (e.object_index >= num_objects) {
      throw std::invalid_argument(
          "SiteProfile: demand event object_index " +
          std::to_string(e.object_index) + " outside catalog of " +
          std::to_string(num_objects));
    }
    if (e.kind == DemandEventKind::kFlashCrowd &&
        (!(e.share > 0.0) || e.share > 1.0)) {
      throw std::invalid_argument(
          "SiteProfile: flash-crowd share must be in (0, 1]");
    }
    if (e.kind == DemandEventKind::kTakedown && num_objects < 2) {
      throw std::invalid_argument(
          "SiteProfile: takedown needs a catalog of >= 2 objects");
    }
  }
  // Same-kind windows must not overlap: "the flash crowd's share" or "the
  // takedown's target" would be ambiguous where two windows intersect.
  for (std::size_t i = 0; i < demand_events.size(); ++i) {
    for (std::size_t j = i + 1; j < demand_events.size(); ++j) {
      const DemandEvent& a = demand_events[i];
      const DemandEvent& b = demand_events[j];
      if (a.kind == b.kind && a.start_ms < b.end_ms && b.start_ms < a.end_ms) {
        throw std::invalid_argument(
            "SiteProfile: overlapping " + std::string(ToString(a.kind)) +
            " event windows");
      }
    }
  }
}

// --- Calibrated profiles ------------------------------------------------------
//
// Counts come straight from the paper: Fig. 1 gives catalog sizes and object
// class mixes; Fig. 2(a) gives request counts; Fig. 3 gives the temporal
// phase; Fig. 4 the device mixes; Fig. 5 the size ranges; Fig. 8 the
// popularity-trend mixes (measured for V-2 video and P-2 image, extrapolated
// for the rest); §IV-C and Fig. 14 the engagement/addiction parameters.

SiteProfile SiteProfile::V1(double scale) {
  SiteProfile p;
  p.name = "V-1";
  p.kind = trace::SiteKind::kAdultVideo;
  // Fig. 1: 6.6K objects, 98% video.
  p.num_objects = 6600;
  p.object_class_mix = {0.98, 0.01, 0.01};
  // Fig. 2(a): 3.1M video requests, 99% of traffic.
  p.num_users = 200000;
  p.total_requests = 3100000;
  p.zipf_s = 0.95;
  // Fig. 5: most V-1 videos are > 1 MB; tens of MB typical.
  p.video_size = SizeModel::LogNormal(15e6, 1.0, 100e3, 500e6);
  p.image_size = SizeModel::Bimodal(8e3, 0.5, 250e3, 0.7, 0.6, 500, 1.5e6);
  p.other_size = SizeModel::LogNormal(20e3, 1.0, 200, 5e6);
  // Fig. 8 measured only V-2/P-2; V-1 gets a video-site mix with a strong
  // diurnal front-page component.
  p.video_patterns.fractions = {0.40, 0.24, 0.18, 0.03, 0.15};
  p.image_patterns.fractions = {0.55, 0.25, 0.10, 0.05, 0.05};
  p.other_patterns.fractions = {0.70, 0.15, 0.10, 0.00, 0.05};
  // Fig. 3: V-1 peaks late-night / early-morning — near-opposite of the
  // classic 7-11pm diurnal peak.
  p.peak_local_hour = 2.0;
  p.diurnal_amplitude = 0.35;
  // Fig. 4: predominantly desktop.
  p.device_mix = {0.85, 0.07, 0.04, 0.04};
  p.continent_mix = {0.45, 0.30, 0.15, 0.10};
  // Figs. 11-12: video sites have short IATs and ~minute sessions.
  p.mean_requests_per_session = 5.0;
  p.iat_median_s = 18.0;
  p.iat_sigma = 1.1;
  // Figs. 13-14: >=10% of video objects get >10 requests per user.
  p.repeat_request_prob = 0.35;
  p.favorite_adopt_prob = 0.40;
  p.incognito_rate = 0.75;
  ApplyScale(p, scale);
  return p;
}

SiteProfile SiteProfile::V2(double scale) {
  SiteProfile p;
  p.name = "V-2";
  p.kind = trace::SiteKind::kAdultVideo;
  // Fig. 1: 55.6K objects; 84% image (GIF hover summaries), 15% video.
  p.num_objects = 55600;
  p.object_class_mix = {0.15, 0.84, 0.01};
  // Fig. 2(a): 359K video + 657K image requests.
  p.num_users = 150000;
  p.total_requests = 1060000;
  p.zipf_s = 0.9;
  // Fig. 2(a) counts HTTP transactions, and every video *view* expands into
  // ~5-6 chunked transactions; to land at 359K video vs. 657K image records
  // the per-object logical view demand for video must sit below image
  // (0.55x), not above it.
  p.class_demand_bias = {0.55, 1.0, 0.3};
  p.video_size = SizeModel::LogNormal(8e6, 1.0, 100e3, 200e6);
  // V-2's GIF video summaries are large for "images".
  p.image_size = SizeModel::Bimodal(12e3, 0.5, 700e3, 0.7, 0.55, 500, 2e6);
  p.other_size = SizeModel::LogNormal(20e3, 1.0, 200, 5e6);
  // Fig. 8(a) measured for V-2 video: 22% diurnal-A + 11% diurnal-B, 20%
  // long-lived, 14% short-lived, 33% outliers.
  p.video_patterns.fractions = {0.33, 0.20, 0.14, 0.00, 0.33};
  p.image_patterns.fractions = {0.50, 0.25, 0.15, 0.05, 0.05};
  p.other_patterns.fractions = {0.70, 0.15, 0.10, 0.00, 0.05};
  p.peak_local_hour = 23.5;
  p.diurnal_amplitude = 0.18;  // "less pronounced variations than V-1"
  // Fig. 4: "more than 95% users accessing content from desktop".
  p.device_mix = {0.955, 0.02, 0.01, 0.015};
  p.continent_mix = {0.40, 0.35, 0.15, 0.10};
  p.mean_requests_per_session = 4.0;
  p.iat_median_s = 20.0;
  p.iat_sigma = 1.1;
  p.repeat_request_prob = 0.30;
  p.favorite_adopt_prob = 0.35;
  p.incognito_rate = 0.75;
  ApplyScale(p, scale);
  return p;
}

SiteProfile SiteProfile::P1(double scale) {
  SiteProfile p;
  p.name = "P-1";
  p.kind = trace::SiteKind::kAdultImage;
  // Fig. 1: 16.3K objects, 99% image.
  p.num_objects = 16300;
  p.object_class_mix = {0.005, 0.99, 0.005};
  // Fig. 2(a): 719K image requests.
  p.num_users = 140000;
  p.total_requests = 730000;
  p.zipf_s = 0.85;
  // Image-gallery browsing is spread thin across many casual visitors, so
  // the activity tail is lighter than on the video sites — this is what
  // pushes the median inter-request gap past an hour (Fig. 11).
  p.user_activity_alpha = 2.2;
  p.video_size = SizeModel::LogNormal(10e6, 0.9, 100e3, 200e6);
  p.image_size = SizeModel::Bimodal(10e3, 0.5, 350e3, 0.7, 0.6, 500, 1.5e6);
  p.other_size = SizeModel::LogNormal(15e3, 1.0, 200, 5e6);
  p.video_patterns.fractions = {0.35, 0.30, 0.20, 0.05, 0.10};
  p.image_patterns.fractions = {0.55, 0.27, 0.10, 0.05, 0.03};
  p.other_patterns.fractions = {0.70, 0.15, 0.10, 0.00, 0.05};
  p.peak_local_hour = 0.5;
  p.diurnal_amplitude = 0.22;
  p.device_mix = {0.78, 0.10, 0.05, 0.07};
  p.continent_mix = {0.40, 0.30, 0.20, 0.10};
  // Fig. 11: image-heavy sites have long IATs (median > 1h): sessions are
  // shallow, so most inter-request gaps are inter-session gaps.
  p.mean_requests_per_session = 1.7;
  p.iat_median_s = 35.0;
  p.iat_sigma = 1.0;
  // Fig. 14: <1% of image objects exceed 10 requests per user.
  p.repeat_request_prob = 0.08;
  p.favorite_adopt_prob = 0.12;
  p.incognito_rate = 0.70;
  ApplyScale(p, scale);
  return p;
}

SiteProfile SiteProfile::P2(double scale) {
  SiteProfile p;
  p.name = "P-2";
  p.kind = trace::SiteKind::kAdultImage;
  // Fig. 1: 29.6K objects, 99% image.
  p.num_objects = 29600;
  p.object_class_mix = {0.005, 0.99, 0.005};
  // Fig. 2(a): 175K image requests.
  p.num_users = 40000;
  p.total_requests = 180000;
  p.zipf_s = 0.85;
  p.user_activity_alpha = 2.2;
  // P-2's videos are huge (Fig. 5a) and chunk into many HTTP records, so
  // their logical view demand must stay small for the record mix to remain
  // ~97% image (Fig. 2a).
  p.class_demand_bias = {0.35, 1.0, 0.3};
  // Fig. 5(a): "P-2 has the largest video object sizes".
  p.video_size = SizeModel::LogNormal(40e6, 0.8, 1e6, 800e6);
  p.image_size = SizeModel::Bimodal(9e3, 0.5, 300e3, 0.7, 0.55, 500, 1.5e6);
  p.other_size = SizeModel::LogNormal(15e3, 1.0, 200, 5e6);
  p.video_patterns.fractions = {0.30, 0.35, 0.20, 0.05, 0.10};
  // Fig. 8(b) measured for P-2 image: 61% diurnal, 25% long-lived, 14%
  // flash-crowd.
  p.image_patterns.fractions = {0.61, 0.25, 0.00, 0.14, 0.00};
  p.other_patterns.fractions = {0.70, 0.15, 0.10, 0.00, 0.05};
  p.peak_local_hour = 23.0;
  p.diurnal_amplitude = 0.20;
  p.device_mix = {0.80, 0.09, 0.05, 0.06};
  p.continent_mix = {0.35, 0.35, 0.20, 0.10};
  p.mean_requests_per_session = 1.6;
  p.iat_median_s = 40.0;
  p.iat_sigma = 1.0;
  p.repeat_request_prob = 0.08;
  p.favorite_adopt_prob = 0.12;
  p.incognito_rate = 0.70;
  ApplyScale(p, scale);
  return p;
}

SiteProfile SiteProfile::S1(double scale) {
  SiteProfile p;
  p.name = "S-1";
  p.kind = trace::SiteKind::kAdultSocial;
  // Fig. 1: 22.9K objects, 99% image.
  p.num_objects = 22900;
  p.object_class_mix = {0.004, 0.99, 0.006};
  // Fig. 2(a): 231K image requests.
  p.num_users = 60000;
  p.total_requests = 240000;
  p.zipf_s = 0.8;
  p.user_activity_alpha = 2.0;
  p.video_size = SizeModel::LogNormal(6e6, 0.9, 100e3, 100e6);
  p.image_size = SizeModel::Bimodal(7e3, 0.5, 200e3, 0.7, 0.65, 500, 1.2e6);
  p.other_size = SizeModel::LogNormal(10e3, 1.0, 200, 5e6);
  p.video_patterns.fractions = {0.35, 0.30, 0.20, 0.05, 0.10};
  // Social feeds churn: more short-lived content than the galleries.
  p.image_patterns.fractions = {0.45, 0.30, 0.15, 0.05, 0.05};
  p.other_patterns.fractions = {0.70, 0.15, 0.10, 0.00, 0.05};
  p.peak_local_hour = 22.0;
  p.diurnal_amplitude = 0.20;
  // Fig. 4: "more than one-third of users access S-1 from smartphone and
  // miscellaneous device categories".
  p.device_mix = {0.63, 0.17, 0.09, 0.11};
  p.continent_mix = {0.40, 0.25, 0.25, 0.10};
  p.mean_requests_per_session = 2.0;
  p.iat_median_s = 30.0;
  p.iat_sigma = 1.0;
  p.repeat_request_prob = 0.12;
  p.favorite_adopt_prob = 0.18;
  p.incognito_rate = 0.60;  // profiles require login; less private browsing
  ApplyScale(p, scale);
  return p;
}

SiteProfile SiteProfile::NonAdult(double scale) {
  SiteProfile p;
  p.name = "N-1";
  p.kind = trace::SiteKind::kNonAdult;
  p.num_objects = 20000;
  p.object_class_mix = {0.10, 0.60, 0.30};
  p.num_users = 80000;
  p.total_requests = 600000;
  p.zipf_s = 1.0;  // viral word-of-mouth sharing concentrates demand
  p.video_size = SizeModel::LogNormal(12e6, 1.0, 100e3, 300e6);
  p.image_size = SizeModel::Bimodal(10e3, 0.5, 250e3, 0.7, 0.6, 500, 1.5e6);
  p.other_size = SizeModel::LogNormal(25e3, 1.0, 200, 5e6);
  p.video_patterns.fractions = {0.50, 0.25, 0.10, 0.10, 0.05};
  p.image_patterns.fractions = {0.55, 0.25, 0.10, 0.05, 0.05};
  p.other_patterns.fractions = {0.70, 0.15, 0.10, 0.00, 0.05};
  // Classic web diurnal pattern: 7-11pm peak (the contrast for Fig. 3).
  p.peak_local_hour = 21.0;
  p.diurnal_amplitude = 0.45;
  p.device_mix = {0.55, 0.22, 0.13, 0.10};
  p.continent_mix = {0.40, 0.30, 0.20, 0.10};
  p.mean_requests_per_session = 8.0;  // longer engagement than adult sites
  p.iat_median_s = 25.0;
  p.iat_sigma = 1.1;
  p.repeat_request_prob = 0.10;
  p.favorite_adopt_prob = 0.10;
  p.incognito_rate = 0.10;  // normal browsing: browser caches work (§V)
  ApplyScale(p, scale);
  return p;
}

SiteProfile SiteProfile::LiveStream(double scale) {
  SiteProfile p;
  p.name = "L-1";
  p.kind = trace::SiteKind::kAdultVideo;
  // A cam/live portal: few concurrent "streams" relative to a VoD catalog,
  // nearly all video, and almost nothing pre-recorded survives the day.
  p.num_objects = 900;
  p.object_class_mix = {0.95, 0.04, 0.01};
  p.num_users = 90000;
  p.total_requests = 800000;
  // Demand concentrates hard on the top streams.
  p.zipf_s = 1.1;
  // Streams are delivered as long chunked sessions; sizes model the bytes
  // a viewer pulls, not a file on disk.
  p.video_size = SizeModel::LogNormal(60e6, 0.7, 2e6, 1e9);
  p.image_size = SizeModel::Bimodal(10e3, 0.5, 250e3, 0.7, 0.6, 500, 1.5e6);
  p.other_size = SizeModel::LogNormal(15e3, 1.0, 200, 5e6);
  // A stream is alive while it is on the air: short-lived dominates, with
  // a flash-crowd slice for headline shows.
  p.video_patterns.fractions = {0.10, 0.15, 0.55, 0.15, 0.05};
  p.image_patterns.fractions = {0.30, 0.20, 0.40, 0.05, 0.05};
  p.other_patterns.fractions = {0.70, 0.15, 0.10, 0.00, 0.05};
  // Live content churns continuously; almost nothing predates the trace.
  p.preexisting_fraction = 0.15;
  // Shows cluster in the late evening and the site goes quiet off-air —
  // the deepest diurnal swing of any profile.
  p.peak_local_hour = 23.0;
  p.diurnal_amplitude = 0.7;
  p.device_mix = {0.70, 0.14, 0.08, 0.08};
  p.continent_mix = {0.40, 0.35, 0.15, 0.10};
  // Viewers settle into a stream: few distinct requests, long gaps while
  // they watch, near-complete watch fractions.
  p.mean_requests_per_session = 3.0;
  p.iat_median_s = 90.0;
  p.iat_sigma = 0.9;
  p.repeat_request_prob = 0.45;  // regulars return to the same performers
  p.favorite_adopt_prob = 0.50;
  p.max_favorites = 4;
  p.watch_fraction_mean = 0.85;
  p.incognito_rate = 0.80;
  ApplyScale(p, scale);
  return p;
}

std::vector<SiteProfile> SiteProfile::PaperAdultSites(double scale) {
  return {V1(scale), V2(scale), P1(scale), P2(scale), S1(scale)};
}

}  // namespace atlas::synth
