// Temporal demand shaping.
//
// Two layers, matching the paper's findings:
//   1. Site-level: the hour-of-day demand curve in *local* time (Fig. 3) —
//      where a session is likely to start.
//   2. Object-level: each object's request-intensity multiplier over the
//      week (Figs. 8-10) — diurnal objects stay warm all week, long-lived
//      objects decay over days, short-lived ones die within hours,
//      flash-crowd objects spike once.
#pragma once

#include <array>
#include <cstdint>

#include "synth/site_profile.h"
#include "util/rng.h"
#include "util/time.h"

namespace atlas::synth {

// Site-level relative demand at a local hour-of-day in [0, 24). Positive;
// mean over the day is ~1.
double SiteHourlyDemand(const SiteProfile& profile, double local_hour);

// A discrete distribution over the 168 hours of the week built from the
// site curve (weekday/weekend weighting handled here as well). Used to draw
// session start hours in the user's local time.
class WeekHourDistribution {
 public:
  explicit WeekHourDistribution(const SiteProfile& profile);

  // Draws a local timestamp (ms since local Saturday 00:00): an hour from
  // the weekly distribution plus a uniform offset inside the hour.
  std::int64_t SampleLocalMs(util::Rng& rng) const;

  double WeightOfHour(int hour_of_week) const {
    return weights_.at(static_cast<std::size_t>(hour_of_week));
  }

 private:
  std::array<double, util::kHoursPerWeek> weights_{};
  std::array<double, util::kHoursPerWeek> cumulative_{};
};

// Per-object temporal pattern parameters, drawn once at catalog build.
struct PatternParams {
  PatternType type = PatternType::kDiurnal;
  // Diurnal: local peak hour and modulation depth.
  double peak_hour = 22.0;
  double amplitude = 0.5;
  // Long-/short-lived: exponential decay time constant (hours).
  double decay_tau_hours = 36.0;
  // Flash-crowd: spike start (ms since injection) and spike width (hours).
  std::int64_t spike_offset_ms = 0;
  double spike_width_hours = 6.0;
  // Outliers: a handful of random bumps.
  std::array<double, 3> bump_pos_frac{};   // position in the week [0,1]
  std::array<double, 3> bump_width_h{};    // width in hours

  static PatternParams Sample(PatternType type, const SiteProfile& profile,
                              util::Rng& rng);
};

// The object's demand multiplier at absolute trace time `utc_ms`, given its
// injection time. Returns 0 before injection; otherwise a non-negative
// intensity (relative within the object's own lifetime).
//
// The multiplier is evaluated in *site-local* terms: object diurnality is
// expressed against the aggregated local-time behaviour of the site's users,
// so a caller-supplied representative timezone offset shifts the phase.
double ObjectDemandMultiplier(const PatternParams& params,
                              std::int64_t injected_at_ms,
                              std::int64_t utc_ms,
                              double representative_tz_hours);

// Upper bound of ObjectDemandMultiplier over all times for rejection
// sampling (exact for the implemented shapes).
double ObjectDemandCeiling(const PatternParams& params);

}  // namespace atlas::synth
