// Site profiles: the statistical fingerprints of the paper's five sites.
//
// Each profile encodes the published marginals for one site — catalog size
// and class mix (Fig. 1), request volume (Fig. 2), temporal phase (Fig. 3),
// device mix (Fig. 4), size models (Fig. 5), popularity skew (Fig. 6),
// popularity-trend mix (Fig. 8), engagement and addiction parameters
// (Figs. 11-14) and browsing-privacy behaviour (§V). The workload generator
// consumes a profile and emits a week of log records with those marginals.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/publisher.h"
#include "trace/record.h"
#include "util/rng.h"

namespace atlas::synth {

// Temporal request-pattern archetypes (paper Figs. 8-10).
enum class PatternType : std::uint8_t {
  kDiurnal = 0,     // requested all week with day/night periodicity
  kLongLived = 1,   // peaks on day 1, decays diurnally over several days
  kShortLived = 2,  // peaks within hours of injection, dies the same day
  kFlashCrowd = 3,  // dormant, then a sudden spike (P-2's "FlashCrowd")
  kOutlier = 4,     // irregular; no clean archetype
};
inline constexpr int kNumPatternTypes = 5;
const char* ToString(PatternType p);

// Size model for one content class: a (possibly bimodal) lognormal clamped
// to [lo_bytes, hi_bytes].
struct SizeModel {
  // First component (and only one when bimodal_weight == 1).
  double mu1 = 0.0;
  double sigma1 = 0.0;
  // Second component.
  double mu2 = 0.0;
  double sigma2 = 0.0;
  // Probability of drawing from the first component.
  double bimodal_weight = 1.0;
  double lo_bytes = 1.0;
  double hi_bytes = 1e12;

  std::uint64_t Sample(util::Rng& rng) const;

  static SizeModel LogNormal(double median_bytes, double sigma, double lo,
                             double hi);
  static SizeModel Bimodal(double median1, double sigma1, double median2,
                           double sigma2, double weight_first, double lo,
                           double hi);
};

// Mix over PatternType for a content class; fractions sum to ~1.
struct PatternMix {
  std::array<double, kNumPatternTypes> fractions{};

  PatternType Sample(util::Rng& rng) const;
  void Validate() const;
};

// Time-windowed demand modulation applied at request-generation time.
enum class DemandEventKind : std::uint8_t {
  // A burst of attention on one object: while the window is active, each
  // request redirects to `object_index` with probability `share` after its
  // organic draw (Grammenos et al.'s flash crowds on video portals).
  kFlashCrowd = 0,
  // The object is pulled from the catalog: while active, every request
  // that lands on `object_index` deterministically re-lands on its catalog
  // neighbour instead (churn: the demand moves, it does not vanish). The
  // window's end models the content being restored or replaced.
  kTakedown = 1,
};
const char* ToString(DemandEventKind k);

struct DemandEvent {
  DemandEventKind kind = DemandEventKind::kFlashCrowd;
  // Half-open active window [start_ms, end_ms) in trace time.
  std::int64_t start_ms = 0;
  std::int64_t end_ms = 0;
  // Target object (catalog index).
  std::uint32_t object_index = 0;
  // Flash crowd only: probability an in-window request redirects.
  double share = 0.5;

  bool Active(std::int64_t t) const { return t >= start_ms && t < end_ms; }
};

struct SiteProfile {
  std::string name;
  trace::SiteKind kind = trace::SiteKind::kNonAdult;

  // --- catalog ------------------------------------------------------------
  std::size_t num_objects = 1000;
  // Fraction of the catalog per class {video, image, other} (Fig. 1).
  std::array<double, trace::kNumContentClasses> object_class_mix{};
  SizeModel video_size;
  SizeModel image_size;
  SizeModel other_size;
  // Per-class popularity-trend mixes (Fig. 8: video and image clusters have
  // different compositions even within a site).
  PatternMix video_patterns;
  PatternMix image_patterns;
  PatternMix other_patterns;
  // Fraction of the catalog already live at trace start; the remainder is
  // injected uniformly across the week (Fig. 7).
  double preexisting_fraction = 0.6;

  // --- demand ---------------------------------------------------------------
  std::size_t num_users = 10000;
  std::uint64_t total_requests = 100000;
  // Zipf exponent over object ranks (Fig. 6 long tails).
  double zipf_s = 0.9;
  // Per-class relative demand multiplier {video, image, other}. Lets V-2
  // serve 84% image objects but still draw most *bytes* from video.
  std::array<double, trace::kNumContentClasses> class_demand_bias{1.0, 1.0,
                                                                  1.0};

  // --- temporal (Fig. 3) -----------------------------------------------------
  // Local hour of peak demand (V-1: ~2am — opposite of the classic 7-11pm
  // web peak) and the peak-to-trough modulation depth in [0, 1).
  double peak_local_hour = 22.0;
  double diurnal_amplitude = 0.3;
  // Optional secondary harmonic to flatten/shape the curve.
  double secondary_amplitude = 0.0;
  double secondary_peak_hour = 12.0;

  // --- users (Fig. 4, §III) ---------------------------------------------------
  // Device mix {Desktop, Android, iOS, Misc}.
  std::array<double, trace::kNumDeviceTypes> device_mix{1.0, 0.0, 0.0, 0.0};
  // Continent mix {North America, Europe, Asia, South America}; controls
  // the timezone distribution ("users in four different continents").
  std::array<double, 4> continent_mix{0.4, 0.3, 0.2, 0.1};
  // Pareto shape for user activity (how unequally sessions spread).
  double user_activity_alpha = 1.5;

  // --- sessions (Figs. 11-12) ---------------------------------------------------
  // Mean requests per session (geometric).
  double mean_requests_per_session = 6.0;
  // In-session inter-request gap: lognormal median and sigma, seconds.
  double iat_median_s = 15.0;
  double iat_sigma = 1.2;

  // --- engagement / addiction (Figs. 13-14) ---------------------------------
  // Probability a request is a *repeat* of an object in the user's personal
  // favorites rather than a fresh draw from the catalog.
  double repeat_request_prob = 0.2;
  // Probability a freshly-watched object enters the favorites set.
  double favorite_adopt_prob = 0.3;
  std::size_t max_favorites = 8;

  // --- video viewing -----------------------------------------------------------
  // Mean fraction of a video actually watched (drives 206 chunk counts and
  // delivered bytes).
  double watch_fraction_mean = 0.55;

  // --- privacy & protocol (§V, Fig. 16) ------------------------------------
  // Fraction of users browsing in incognito/private mode (browser cache is
  // discarded at session end).
  double incognito_rate = 0.75;
  // Rates of hotlinked (403), malformed-range (416), and beacon (204)
  // requests, as fractions of all requests.
  double hotlink_rate = 0.004;
  double bad_range_rate = 0.0015;
  double beacon_rate = 0.002;

  // --- operational demand events ---------------------------------------------
  // Time-windowed modulation of the request stream, applied inside
  // MakeRequest. Part of the workload's identity (hashed into the
  // generator fingerprint): a resume against different events fails.
  // Events of the same kind must not overlap in time (Validate enforces).
  std::vector<DemandEvent> demand_events;

  // --- memory (scale >= 1 runs) ---------------------------------------------
  // Byte budget for the resident synthetic tables, split evenly between the
  // object catalog and the user table. A population whose table would
  // exceed its half switches to lazily rematerialized RNG-snapshot shards
  // (synth/shard_store.h) with byte-identical output; the default keeps
  // every paper-scale run fully resident. Must be > 0.
  std::uint64_t synth_table_budget_bytes = 256ull << 20;

  void Validate() const;

  // The paper's five sites plus a non-adult control profile, calibrated to
  // the figures cited in each factory's comment. `scale` in
  // (0, kMaxProfileScale] scales objects/users/requests proportionally:
  // 1.0 = the paper-sized five-site study, > 1 extrapolates past it (the
  // ROADMAP's 80M-user direction), and tiny values are clamped to small
  // population floors instead of truncating to zero. Out-of-range,
  // non-finite, or uint32-overflowing results throw (std::invalid_argument
  // / std::overflow_error) — never silently wrap.
  static SiteProfile V1(double scale = 1.0);
  static SiteProfile V2(double scale = 1.0);
  static SiteProfile P1(double scale = 1.0);
  static SiteProfile P2(double scale = 1.0);
  static SiteProfile S1(double scale = 1.0);
  static SiteProfile NonAdult(double scale = 1.0);
  // A live-streaming-style adult video profile (not one of the paper's
  // five): small catalog of concurrent streams, hard evening peak, very
  // deep diurnal swing, long watch fractions, heavy repeat viewing.
  static SiteProfile LiveStream(double scale = 1.0);

  // All five adult sites, in paper order.
  static std::vector<SiteProfile> PaperAdultSites(double scale = 1.0);
};

// Largest supported population scale. 16x the paper's five-site study is
// ~150M logical requests/week — past that, object/user indices approach
// the uint32 event-field range and the floors/caps need re-auditing, so
// the factories fail loudly instead of extrapolating silently.
inline constexpr double kMaxProfileScale = 16.0;

}  // namespace atlas::synth
