// Object catalog generation.
//
// A Catalog is the synthetic equivalent of "the set of objects a publisher
// stores on the CDN" (Fig. 1 counts them). Each object carries everything
// the workload generator and the CDN simulator need: identity, class,
// concrete file type, size, static popularity weight, injection time, and a
// temporal pattern. The catalog also precomputes the per-pattern hourly
// demand masses used for time-aware object sampling.
//
// Storage is memory-bounded: object records live in a ShardStore that
// keeps the table resident while it fits the profile's synth-table budget
// and switches to lazily replayed RNG-snapshot shards past it (the
// sampling machinery — per-pattern alias tables, hourly masses, aggregate
// counts — stays resident in both modes; it is what SampleObject reads on
// every draw). object() therefore returns by value; stream the catalog
// with ForEachObject instead of holding the table.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "stats/sampler.h"
#include "synth/shard_store.h"
#include "synth/site_profile.h"
#include "synth/temporal.h"
#include "trace/record.h"
#include "util/rng.h"
#include "util/time.h"

namespace atlas::synth {

struct ObjectMeta {
  std::uint64_t url_hash = 0;
  trace::ContentClass content_class = trace::ContentClass::kOther;
  trace::FileType file_type = trace::FileType::kUnknown;
  std::uint64_t size_bytes = 0;
  // Static Zipf weight (time-invariant component of demand).
  double popularity_weight = 0.0;
  // <= 0 means live before the trace started (Fig. 7's "pre-existing" mass).
  std::int64_t injected_at_ms = 0;
  PatternParams pattern;
};

// Objects per lazy catalog shard (~1.1 MB of ObjectMeta per shard).
inline constexpr std::size_t kCatalogShardItems = 8192;

class Catalog {
 public:
  // Builds a catalog for `profile`. All randomness comes from `rng`; the
  // stream is consumed identically whether the store stays resident or
  // goes lazy, so everything downstream of the catalog is budget-invariant.
  Catalog(const SiteProfile& profile, util::Rng& rng);

  std::size_t size() const { return store_.size(); }
  // By value: lazy shards are evictable, so references into them cannot be
  // handed out. `const auto& obj = catalog.object(i)` stays valid through
  // lifetime extension.
  ObjectMeta object(std::size_t i) const { return store_.Get(i); }

  // Streams every object in index order as fn(index, const ObjectMeta&);
  // peak extra memory is one shard. This replaces handing out the whole
  // table (`objects()`), which a lazy catalog cannot do.
  template <typename Fn>
  void ForEachObject(Fn&& fn) const {
    store_.ForEach(fn);
  }

  // Draws an object index with probability proportional to
  //   popularity_weight * ObjectDemandMultiplier(t)
  // via two-stage sampling: pattern type by precomputed hourly mass, then
  // rejection within the type. O(1) expected.
  std::size_t SampleObject(std::int64_t utc_ms, util::Rng& rng) const;

  // Total demand mass at an hour (for calibration / debugging).
  double DemandMassAt(std::int64_t utc_ms) const;

  // Aggregate stats for reports (accumulated during the build pass).
  std::array<std::size_t, trace::kNumContentClasses> CountsByClass() const {
    return counts_by_class_;
  }
  std::array<std::size_t, kNumPatternTypes> CountsByPattern() const {
    return counts_by_pattern_;
  }

  // The timezone phase the catalog's diurnal patterns were generated
  // against (demand-weighted mean user offset).
  double representative_tz_hours() const { return representative_tz_hours_; }

  // True when the table exceeded its budget and went lazy (scale tests).
  bool lazy() const { return store_.lazy(); }
  const ShardStore<ObjectMeta>& store() const { return store_; }

 private:
  // Generates object `i` from `rng`: a pure function of the stream state,
  // profile, and the object's shuffled Zipf rank — both the build pass and
  // the lazy replay run exactly this.
  ObjectMeta GenerateObject(std::size_t i, util::Rng& rng) const;

  SiteProfile profile_;  // kept for lazy replay
  ShardStore<ObjectMeta> store_;
  // Shuffled Zipf rank per object; freed when the store stays resident
  // (replay is the only consumer after construction).
  std::vector<std::uint32_t> ranks_;
  // Per pattern type: member object indices plus an alias table over their
  // static weights.
  struct PatternGroup {
    std::vector<std::uint32_t> members;
    std::vector<double> weights;
    std::unique_ptr<stats::AliasTable> alias;
    double weight_total = 0.0;
  };
  std::array<PatternGroup, kNumPatternTypes> groups_;
  // Hourly demand mass per pattern group across the week.
  std::array<std::array<double, util::kHoursPerWeek>, kNumPatternTypes>
      hourly_mass_{};
  std::array<std::size_t, trace::kNumContentClasses> counts_by_class_{};
  std::array<std::size_t, kNumPatternTypes> counts_by_pattern_{};
  double representative_tz_hours_ = 0.0;
};

}  // namespace atlas::synth
