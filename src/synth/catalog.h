// Object catalog generation.
//
// A Catalog is the synthetic equivalent of "the set of objects a publisher
// stores on the CDN" (Fig. 1 counts them). Each object carries everything
// the workload generator and the CDN simulator need: identity, class,
// concrete file type, size, static popularity weight, injection time, and a
// temporal pattern. The catalog also precomputes the per-pattern hourly
// demand masses used for time-aware object sampling.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "stats/sampler.h"
#include "synth/site_profile.h"
#include "synth/temporal.h"
#include "trace/record.h"
#include "util/rng.h"
#include "util/time.h"

namespace atlas::synth {

struct ObjectMeta {
  std::uint64_t url_hash = 0;
  trace::ContentClass content_class = trace::ContentClass::kOther;
  trace::FileType file_type = trace::FileType::kUnknown;
  std::uint64_t size_bytes = 0;
  // Static Zipf weight (time-invariant component of demand).
  double popularity_weight = 0.0;
  // <= 0 means live before the trace started (Fig. 7's "pre-existing" mass).
  std::int64_t injected_at_ms = 0;
  PatternParams pattern;
};

class Catalog {
 public:
  // Builds a catalog for `profile`. All randomness comes from `rng`.
  Catalog(const SiteProfile& profile, util::Rng& rng);

  const std::vector<ObjectMeta>& objects() const { return objects_; }
  std::size_t size() const { return objects_.size(); }
  const ObjectMeta& object(std::size_t i) const { return objects_.at(i); }

  // Draws an object index with probability proportional to
  //   popularity_weight * ObjectDemandMultiplier(t)
  // via two-stage sampling: pattern type by precomputed hourly mass, then
  // rejection within the type. O(1) expected.
  std::size_t SampleObject(std::int64_t utc_ms, util::Rng& rng) const;

  // Total demand mass at an hour (for calibration / debugging).
  double DemandMassAt(std::int64_t utc_ms) const;

  // Aggregate stats for reports.
  std::array<std::size_t, trace::kNumContentClasses> CountsByClass() const;
  std::array<std::size_t, kNumPatternTypes> CountsByPattern() const;

  // The timezone phase the catalog's diurnal patterns were generated
  // against (demand-weighted mean user offset).
  double representative_tz_hours() const { return representative_tz_hours_; }

 private:
  std::vector<ObjectMeta> objects_;
  // Per pattern type: member object indices plus an alias table over their
  // static weights.
  struct PatternGroup {
    std::vector<std::uint32_t> members;
    std::vector<double> weights;
    std::unique_ptr<stats::AliasTable> alias;
    double weight_total = 0.0;
  };
  std::array<PatternGroup, kNumPatternTypes> groups_;
  // Hourly demand mass per pattern group across the week.
  std::array<std::array<double, util::kHoursPerWeek>, kNumPatternTypes>
      hourly_mass_{};
  double representative_tz_hours_ = 0.0;
};

}  // namespace atlas::synth
