#include "synth/catalog.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/checked.h"
#include "util/hash.h"

namespace atlas::synth {
namespace {

// Concrete file types per class, with realistic frequencies. V-2's GIF-heavy
// image catalog is approximated by weighting GIF higher for video sites.
trace::FileType SampleFileType(trace::ContentClass cls,
                               trace::SiteKind site_kind, util::Rng& rng) {
  using trace::FileType;
  switch (cls) {
    case trace::ContentClass::kVideo: {
      static const FileType kTypes[] = {FileType::kMp4, FileType::kFlv,
                                        FileType::kWebm, FileType::kWmv,
                                        FileType::kAvi, FileType::kMpg};
      const std::vector<double> w = {0.55, 0.25, 0.10, 0.05, 0.03, 0.02};
      return kTypes[rng.NextWeighted(w)];
    }
    case trace::ContentClass::kImage: {
      static const FileType kTypes[] = {FileType::kJpg, FileType::kGif,
                                        FileType::kPng, FileType::kWebp,
                                        FileType::kBmp, FileType::kTiff};
      const bool gif_heavy = site_kind == trace::SiteKind::kAdultVideo;
      const std::vector<double> w =
          gif_heavy ? std::vector<double>{0.30, 0.55, 0.10, 0.04, 0.005, 0.005}
                    : std::vector<double>{0.70, 0.12, 0.14, 0.03, 0.005, 0.005};
      return kTypes[rng.NextWeighted(w)];
    }
    case trace::ContentClass::kOther: {
      static const FileType kTypes[] = {FileType::kHtml, FileType::kCss,
                                        FileType::kJs, FileType::kXml,
                                        FileType::kTxt, FileType::kJson,
                                        FileType::kMp3};
      const std::vector<double> w = {0.25, 0.20, 0.30, 0.08, 0.05, 0.10, 0.02};
      return kTypes[rng.NextWeighted(w)];
    }
  }
  return trace::FileType::kUnknown;
}

const PatternMix& MixForClass(const SiteProfile& profile,
                              trace::ContentClass cls) {
  switch (cls) {
    case trace::ContentClass::kVideo:
      return profile.video_patterns;
    case trace::ContentClass::kImage:
      return profile.image_patterns;
    case trace::ContentClass::kOther:
      return profile.other_patterns;
  }
  return profile.other_patterns;
}

const SizeModel& SizeForClass(const SiteProfile& profile,
                              trace::ContentClass cls) {
  switch (cls) {
    case trace::ContentClass::kVideo:
      return profile.video_size;
    case trace::ContentClass::kImage:
      return profile.image_size;
    case trace::ContentClass::kOther:
      return profile.other_size;
  }
  return profile.other_size;
}

// Demand-weighted mean UTC offset of the site's users; continents are
// {NA, EU, AS, SA} with representative offsets {-6, +1, +7, -4}.
double RepresentativeTz(const SiteProfile& profile) {
  static constexpr std::array<double, 4> kOffsets = {-6.0, 1.0, 7.0, -4.0};
  double tz = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    tz += profile.continent_mix[i] * kOffsets[i];
  }
  return tz;
}

}  // namespace

ObjectMeta Catalog::GenerateObject(std::size_t i, util::Rng& rng) const {
  ObjectMeta obj;
  obj.url_hash = util::Mix64(rng.Next());
  const std::vector<double> class_weights(profile_.object_class_mix.begin(),
                                          profile_.object_class_mix.end());
  obj.content_class =
      static_cast<trace::ContentClass>(rng.NextWeighted(class_weights));
  obj.file_type = SampleFileType(obj.content_class, profile_.kind, rng);
  obj.size_bytes = SizeForClass(profile_, obj.content_class).Sample(rng);
  const PatternType type = MixForClass(profile_, obj.content_class).Sample(rng);
  obj.pattern = PatternParams::Sample(type, profile_, rng);

  // Paper §IV-B: diurnal videos are smaller than long-/short-lived ones;
  // long-lived videos are the largest. Apply mild size multipliers.
  if (obj.content_class == trace::ContentClass::kVideo) {
    if (type == PatternType::kDiurnal) {
      obj.size_bytes = static_cast<std::uint64_t>(
          static_cast<double>(obj.size_bytes) * 0.6);
    } else if (type == PatternType::kLongLived) {
      obj.size_bytes = static_cast<std::uint64_t>(
          static_cast<double>(obj.size_bytes) * 1.6);
    } else if (type == PatternType::kShortLived) {
      obj.size_bytes = static_cast<std::uint64_t>(
          static_cast<double>(obj.size_bytes) * 1.2);
    }
  }
  if (obj.size_bytes == 0) obj.size_bytes = 1;

  // Static popularity: Zipf over the shuffled rank, biased per class so
  // sites like V-2 can have per-object video demand exceed image demand.
  const double rank = static_cast<double>(ranks_[i]);
  obj.popularity_weight =
      std::pow(rank, -profile_.zipf_s) *
      profile_.class_demand_bias[static_cast<std::size_t>(obj.content_class)];

  // Injection: a `preexisting_fraction` share is live at trace start (with
  // negative ages so early decay is already over for some); the rest
  // arrives uniformly across the week.
  if (rng.NextBool(profile_.preexisting_fraction)) {
    obj.injected_at_ms = -static_cast<std::int64_t>(
        rng.NextDouble() * 3.0 * static_cast<double>(util::kMillisPerDay));
  } else {
    obj.injected_at_ms = static_cast<std::int64_t>(
        rng.NextDouble() * static_cast<double>(util::kMillisPerWeek));
  }
  return obj;
}

Catalog::Catalog(const SiteProfile& profile, util::Rng& rng)
    : profile_(profile) {
  profile.Validate();
  representative_tz_hours_ = RepresentativeTz(profile);
  const std::size_t n = profile.num_objects;

  // Zipf ranks are assigned to a random permutation of objects so that rank
  // does not correlate with class or pattern by construction.
  ranks_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    ranks_[i] = util::CheckedIndexU32(i + 1, "object rank");
  }
  rng.Shuffle(ranks_);

  // The catalog's half of the synth-table budget (the user table gets the
  // other half; see SiteProfile::synth_table_budget_bytes).
  store_.BeginBuild(n, kCatalogShardItems, profile.synth_table_budget_bytes / 2);

  // One sequential pass: generate each object from the shared stream and
  // fold it into the resident sampling machinery (groups, hourly masses,
  // counts). All accumulators receive contributions in object order, so the
  // floating-point sums are identical whether the store keeps the object or
  // drops it for lazy replay.
  for (std::size_t i = 0; i < n; ++i) {
    store_.BeforeItem(i, rng);
    const ObjectMeta obj = GenerateObject(i, rng);
    store_.Append(obj);

    const auto type = static_cast<std::size_t>(obj.pattern.type);
    groups_[type].members.push_back(util::CheckedIndexU32(i, "object"));
    groups_[type].weights.push_back(obj.popularity_weight);
    groups_[type].weight_total += obj.popularity_weight;
    ++counts_by_class_[static_cast<std::size_t>(obj.content_class)];
    ++counts_by_pattern_[type];
    for (int h = 0; h < util::kHoursPerWeek; ++h) {
      const std::int64_t t =
          static_cast<std::int64_t>(h) * util::kMillisPerHour +
          util::kMillisPerHour / 2;
      hourly_mass_[type][static_cast<std::size_t>(h)] +=
          obj.popularity_weight *
          ObjectDemandMultiplier(obj.pattern, obj.injected_at_ms, t,
                                 representative_tz_hours_);
    }
  }
  store_.EndBuild([this](std::size_t shard, util::Rng& replay_rng,
                         std::vector<ObjectMeta>& out) {
    for (std::size_t i = store_.ShardBegin(shard); i < store_.ShardEnd(shard);
         ++i) {
      out.push_back(GenerateObject(i, replay_rng));
    }
  });
  if (!store_.lazy()) {
    // Replay is the only consumer of the rank permutation after the build.
    ranks_.clear();
    ranks_.shrink_to_fit();
  }

  for (auto& group : groups_) {
    if (!group.members.empty()) {
      group.alias = std::make_unique<stats::AliasTable>(group.weights);
    }
  }
}

std::size_t Catalog::SampleObject(std::int64_t utc_ms, util::Rng& rng) const {
  std::int64_t hour = utc_ms / util::kMillisPerHour;
  hour = std::clamp<std::int64_t>(hour, 0, util::kHoursPerWeek - 1);

  // Stage 1: pick the pattern type by hourly mass.
  std::vector<double> masses(kNumPatternTypes);
  double total = 0.0;
  for (int p = 0; p < kNumPatternTypes; ++p) {
    masses[static_cast<std::size_t>(p)] =
        hourly_mass_[static_cast<std::size_t>(p)][static_cast<std::size_t>(hour)];
    total += masses[static_cast<std::size_t>(p)];
  }
  if (total <= 0.0) {
    // Degenerate (e.g. single-pattern catalog before any injection): fall
    // back to static weights over everything.
    return static_cast<std::size_t>(rng.NextBounded(store_.size()));
  }
  const auto type = rng.NextWeighted(masses);
  const PatternGroup& group = groups_[type];

  // Stage 2: rejection-sample within the group. Acceptance ratio is the
  // object's current multiplier over the group ceiling.
  std::uint32_t best_alive = std::numeric_limits<std::uint32_t>::max();
  double best_alive_mult = 0.0;
  for (int attempt = 0; attempt < 128; ++attempt) {
    const std::uint32_t idx = group.members[group.alias->Sample(rng)];
    const ObjectMeta obj = store_.Get(idx);
    const double mult = ObjectDemandMultiplier(
        obj.pattern, obj.injected_at_ms, utc_ms, representative_tz_hours_);
    if (mult > best_alive_mult) {
      best_alive_mult = mult;
      best_alive = idx;
    }
    const double ceiling = ObjectDemandCeiling(obj.pattern);
    if (ceiling <= 0.0) continue;
    if (rng.NextDouble() < mult / ceiling) return idx;
  }
  // Tail fallback: the liveliest object seen during rejection (never an
  // uninjected or dead one), else a linear scan for anything alive.
  if (best_alive != std::numeric_limits<std::uint32_t>::max() &&
      best_alive_mult > 0.0) {
    return best_alive;
  }
  for (const std::uint32_t idx : group.members) {
    const ObjectMeta obj = store_.Get(idx);
    if (ObjectDemandMultiplier(obj.pattern, obj.injected_at_ms, utc_ms,
                               representative_tz_hours_) > 0.0) {
      return idx;
    }
  }
  // The whole group is dead despite positive hourly mass (cannot happen,
  // but the sampler must return something valid).
  return group.members.front();
}

double Catalog::DemandMassAt(std::int64_t utc_ms) const {
  std::int64_t hour = utc_ms / util::kMillisPerHour;
  hour = std::clamp<std::int64_t>(hour, 0, util::kHoursPerWeek - 1);
  double total = 0.0;
  for (int p = 0; p < kNumPatternTypes; ++p) {
    total += hourly_mass_[static_cast<std::size_t>(p)]
                         [static_cast<std::size_t>(hour)];
  }
  return total;
}

}  // namespace atlas::synth
