#include "synth/user_model.h"

#include <algorithm>
#include <stdexcept>

#include "util/hash.h"

namespace atlas::synth {
namespace {

// Candidate UTC offsets (in quarter hours) per continent, with weights.
struct TzChoice {
  std::int8_t quarter_hours;
  double weight;
};

const std::vector<TzChoice>& TzChoicesFor(Continent c) {
  static const std::vector<TzChoice> kNa = {
      {-8 * 4, 0.25}, {-7 * 4, 0.15}, {-6 * 4, 0.3}, {-5 * 4, 0.3}};
  static const std::vector<TzChoice> kEu = {
      {0 * 4, 0.3}, {1 * 4, 0.4}, {2 * 4, 0.2}, {3 * 4, 0.1}};
  static const std::vector<TzChoice> kAs = {
      {22, 0.2},  // +5:30 (India)
      {7 * 4, 0.25},
      {8 * 4, 0.35},
      {9 * 4, 0.2}};
  static const std::vector<TzChoice> kSa = {
      {-18, 0.2},  // -4:30 (Venezuela, 2015)
      {-4 * 4, 0.35},
      {-3 * 4, 0.45}};
  switch (c) {
    case Continent::kNorthAmerica:
      return kNa;
    case Continent::kEurope:
      return kEu;
    case Continent::kAsia:
      return kAs;
    case Continent::kSouthAmerica:
      return kSa;
  }
  return kNa;
}

}  // namespace

const char* ToString(Continent c) {
  switch (c) {
    case Continent::kNorthAmerica:
      return "North America";
    case Continent::kEurope:
      return "Europe";
    case Continent::kAsia:
      return "Asia";
    case Continent::kSouthAmerica:
      return "South America";
  }
  return "?";
}

Continent ContinentFromTzQuarterHours(std::int8_t tz_quarter_hours) {
  const double h = tz_quarter_hours / 4.0;
  if (h >= 4.5) return Continent::kAsia;
  if (h >= -2.0) return Continent::kEurope;
  if (h >= -4.8 && h <= -3.0) {
    // The generator places SA users at -4:30 and east (NA stops at -5:00).
    return Continent::kSouthAmerica;
  }
  return Continent::kNorthAmerica;
}

UserInfo UserPopulation::GenerateUser(util::Rng& rng) const {
  const auto& bank = trace::UaBank::Instance();
  const std::vector<double> device_weights(profile_.device_mix.begin(),
                                           profile_.device_mix.end());
  const std::vector<double> continent_weights(profile_.continent_mix.begin(),
                                              profile_.continent_mix.end());
  UserInfo u;
  u.user_id = util::Mix64(rng.Next() | 1);
  u.device = static_cast<trace::DeviceType>(rng.NextWeighted(device_weights));
  const auto ua_ids = bank.IdsForDevice(u.device);
  u.user_agent_id = ua_ids[rng.NextBounded(ua_ids.size())];
  u.continent = static_cast<Continent>(rng.NextWeighted(continent_weights));
  const auto& tz_choices = TzChoicesFor(u.continent);
  std::vector<double> tz_w;
  tz_w.reserve(tz_choices.size());
  for (const auto& c : tz_choices) tz_w.push_back(c.weight);
  u.tz_offset_quarter_hours = tz_choices[rng.NextWeighted(tz_w)].quarter_hours;
  u.activity = rng.NextPareto(1.0, profile_.user_activity_alpha);
  u.incognito = rng.NextBool(profile_.incognito_rate);
  return u;
}

UserPopulation::UserPopulation(const SiteProfile& profile, util::Rng& rng)
    : profile_(profile) {
  profile.Validate();
  const std::size_t n = profile.num_users;

  // The user table's half of the synth-table budget (the catalog gets the
  // other half; see SiteProfile::synth_table_budget_bytes).
  store_.BeginBuild(n, kUserShardItems, profile.synth_table_budget_bytes / 2);

  std::vector<double> activities;
  activities.reserve(std::min(n, kMaxPreallocItems));
  for (std::size_t i = 0; i < n; ++i) {
    store_.BeforeItem(i, rng);
    const UserInfo u = GenerateUser(rng);
    store_.Append(u);
    activities.push_back(u.activity);
    ++device_counts_[static_cast<std::size_t>(u.device)];
  }
  store_.EndBuild([this](std::size_t shard, util::Rng& replay_rng,
                         std::vector<UserInfo>& out) {
    const std::size_t count =
        store_.ShardEnd(shard) - store_.ShardBegin(shard);
    for (std::size_t i = 0; i < count; ++i) {
      out.push_back(GenerateUser(replay_rng));
    }
  });
  activity_alias_ = std::make_unique<stats::AliasTable>(activities);
}

std::size_t UserPopulation::SampleUser(util::Rng& rng) const {
  return activity_alias_->Sample(rng);
}

std::array<double, trace::kNumDeviceTypes> UserPopulation::DeviceShares()
    const {
  std::array<double, trace::kNumDeviceTypes> shares{};
  if (store_.size() == 0) return shares;
  for (std::size_t d = 0; d < shares.size(); ++d) {
    shares[d] = static_cast<double>(device_counts_[d]) /
                static_cast<double>(store_.size());
  }
  return shares;
}

}  // namespace atlas::synth
