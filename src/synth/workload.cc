#include "synth/workload.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/logging.h"

namespace atlas::synth {

WorkloadGenerator::WorkloadGenerator(const SiteProfile& profile,
                                     std::uint64_t seed)
    : profile_(profile),
      rng_(seed),
      catalog_(profile_, rng_),
      users_(profile_, rng_),
      week_hours_(profile_) {}

RequestEvent WorkloadGenerator::MakeRequest(
    std::int64_t t, std::uint32_t user_index,
    std::vector<std::uint32_t>& favorites, bool session_start) {
  RequestEvent ev;
  ev.timestamp_ms = t;
  ev.user_index = user_index;
  ev.session_start = session_start;

  // Repeat access: re-request a favorite (the addiction mechanism). The
  // re-watch is gated by the object's own temporal pattern — users rewatch
  // content while it is alive on the site (front page, feeds); once a
  // short-lived object disappears, so do its repeats. Without this gate,
  // favorites would smear every pattern into a week-long plateau.
  bool repeated = false;
  if (!favorites.empty() && rng_.NextBool(profile_.repeat_request_prob)) {
    const std::uint32_t fav = favorites[rng_.NextBounded(favorites.size())];
    const auto& fav_obj = catalog_.object(fav);
    const double mult =
        ObjectDemandMultiplier(fav_obj.pattern, fav_obj.injected_at_ms, t,
                               catalog_.representative_tz_hours());
    const double ceiling = ObjectDemandCeiling(fav_obj.pattern);
    if (ceiling > 0.0 && rng_.NextDouble() < mult / ceiling) {
      ev.object_index = fav;
      ev.is_repeat = true;
      repeated = true;
    }
  }
  if (!repeated) {
    ev.object_index = static_cast<std::uint32_t>(catalog_.SampleObject(t, rng_));
    // Only video content is sticky enough to adopt (Fig. 14: image objects
    // rarely exceed 10 requests per user; video objects frequently do).
    const auto& obj = catalog_.object(ev.object_index);
    const double adopt =
        obj.content_class == trace::ContentClass::kVideo
            ? profile_.favorite_adopt_prob
            : profile_.favorite_adopt_prob * 0.25;
    if (rng_.NextBool(adopt)) {
      if (favorites.size() >= profile_.max_favorites) {
        favorites[rng_.NextBounded(favorites.size())] = ev.object_index;
      } else {
        favorites.push_back(ev.object_index);
      }
    }
  }

  // Video watch fraction: lognormal around the profile mean, capped at 1.
  const auto& obj = catalog_.object(ev.object_index);
  if (obj.content_class == trace::ContentClass::kVideo) {
    ev.watch_fraction = std::clamp(
        rng_.NextLogNormal(std::log(profile_.watch_fraction_mean), 0.5), 0.05,
        1.0);
  }

  // Anomalies (mutually exclusive, rare).
  const double u = rng_.NextDouble();
  if (u < profile_.hotlink_rate) {
    ev.anomaly = Anomaly::kHotlink;
  } else if (u < profile_.hotlink_rate + profile_.bad_range_rate) {
    ev.anomaly = Anomaly::kBadRange;
  } else if (u < profile_.hotlink_rate + profile_.bad_range_rate +
                     profile_.beacon_rate) {
    ev.anomaly = Anomaly::kBeacon;
  }
  return ev;
}

std::vector<RequestEvent> WorkloadGenerator::Generate(
    std::uint64_t logical_requests) {
  const std::uint64_t budget =
      logical_requests > 0 ? logical_requests : profile_.total_requests;

  // Per-user favorite sets persist across sessions for the whole week —
  // that persistence is what produces "some users repeatedly access certain
  // content" at the week scale.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> favorites;

  std::vector<RequestEvent> events;
  events.reserve(budget + budget / 8);

  const double geom_p = 1.0 / profile_.mean_requests_per_session;
  const double iat_mu = std::log(profile_.iat_median_s);

  while (events.size() < budget) {
    const auto user_index =
        static_cast<std::uint32_t>(users_.SampleUser(rng_));
    const UserInfo& user = users_.user(user_index);

    // Session start: local-time draw from the site curve, converted to UTC.
    const std::int64_t local_ms = week_hours_.SampleLocalMs(rng_);
    std::int64_t t = local_ms - static_cast<std::int64_t>(
                                    user.tz_offset_quarter_hours) *
                                    15 * util::kMillisPerMinute;
    // Steady-state wrap: a local Saturday 01:00 in Tokyo corresponds to a
    // UTC time before the trace started; fold it into the observed week.
    t = ((t % util::kMillisPerWeek) + util::kMillisPerWeek) %
        util::kMillisPerWeek;

    const std::uint64_t session_requests = 1 + rng_.NextGeometric(geom_p);
    auto& favs = favorites[user_index];
    for (std::uint64_t r = 0; r < session_requests && events.size() < budget;
         ++r) {
      if (r > 0) {
        const double gap_s = rng_.NextLogNormal(iat_mu, profile_.iat_sigma);
        t += static_cast<std::int64_t>(gap_s * 1000.0);
        if (t >= util::kMillisPerWeek) break;  // session ran past the trace
      }
      events.push_back(MakeRequest(t, user_index, favs, r == 0));
    }
  }

  std::sort(events.begin(), events.end(),
            [](const RequestEvent& a, const RequestEvent& b) {
              return a.timestamp_ms < b.timestamp_ms;
            });
  ATLAS_LOG(kInfo) << profile_.name << ": generated " << events.size()
                   << " logical requests (" << users_.size() << " users, "
                   << catalog_.size() << " objects)";
  return events;
}

double WorkloadGenerator::EstimateRecordsPerRequest(
    std::uint64_t chunk_bytes) const {
  if (chunk_bytes == 0) return 1.0;
  // Demand-weighted expectation over the catalog: video views expand into
  // ceil(watched_bytes / chunk) records; everything else stays one record.
  double weight_total = 0.0;
  double records = 0.0;
  for (const auto& obj : catalog_.objects()) {
    const double w = obj.popularity_weight;
    weight_total += w;
    if (obj.content_class == trace::ContentClass::kVideo) {
      const double watched = profile_.watch_fraction_mean *
                             static_cast<double>(obj.size_bytes);
      records += w * std::max(1.0, std::ceil(watched /
                                             static_cast<double>(chunk_bytes)));
    } else {
      records += w;
    }
  }
  return weight_total > 0.0 ? records / weight_total : 1.0;
}

}  // namespace atlas::synth
