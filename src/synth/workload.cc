#include "synth/workload.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "util/checked.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/par.h"

namespace atlas::synth {

namespace {
// Layout of the generator's checkpoint blob (fingerprint + RNG stream).
constexpr std::uint32_t kWorkloadStateVersion = 1;

// Event-buffer preallocation clamp (the PR 2 trace_io idiom): a hostile or
// huge logical budget must not OOM on reserve() before generation starts.
constexpr std::uint64_t kMaxPreallocEvents = 1u << 20;
}  // namespace

WorkloadGenerator::WorkloadGenerator(const SiteProfile& profile,
                                     std::uint64_t seed)
    : profile_(profile),
      rng_(seed),
      catalog_(profile_, rng_),
      users_(profile_, rng_),
      week_hours_(profile_) {
  BuildShards();
}

void WorkloadGenerator::BuildShards() {
  // Contiguous user ranges; every user (and their favorite set) lives in
  // exactly one shard, so repeat-access behaviour is untouched by sharding.
  const std::size_t n = users_.size();
  const std::size_t shard_count = std::min<std::size_t>(kGenerateShards, n);
  shards_.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    GenShard shard;
    shard.user_lo = util::CheckedIndexU32(s * n / shard_count, "user");
    shard.user_hi = util::CheckedIndexU32((s + 1) * n / shard_count, "user");
    std::vector<double> activities;
    activities.reserve(shard.user_hi - shard.user_lo);
    for (std::uint32_t u = shard.user_lo; u < shard.user_hi; ++u) {
      const double a = users_.user(u).activity;
      activities.push_back(a);
      shard.activity_mass += a;
    }
    shard.user_alias = std::make_unique<stats::AliasTable>(activities);
    shards_.push_back(std::move(shard));
  }
}

RequestEvent WorkloadGenerator::MakeRequest(
    std::int64_t t, std::uint32_t user_index,
    std::vector<std::uint32_t>& favorites, bool session_start,
    util::Rng& rng) const {
  RequestEvent ev;
  ev.timestamp_ms = t;
  ev.user_index = user_index;
  ev.session_start = session_start;

  // Repeat access: re-request a favorite (the addiction mechanism). The
  // re-watch is gated by the object's own temporal pattern — users rewatch
  // content while it is alive on the site (front page, feeds); once a
  // short-lived object disappears, so do its repeats. Without this gate,
  // favorites would smear every pattern into a week-long plateau.
  bool repeated = false;
  if (!favorites.empty() && rng.NextBool(profile_.repeat_request_prob)) {
    const std::uint32_t fav = favorites[rng.NextBounded(favorites.size())];
    const auto& fav_obj = catalog_.object(fav);
    const double mult =
        ObjectDemandMultiplier(fav_obj.pattern, fav_obj.injected_at_ms, t,
                               catalog_.representative_tz_hours());
    const double ceiling = ObjectDemandCeiling(fav_obj.pattern);
    if (ceiling > 0.0 && rng.NextDouble() < mult / ceiling) {
      ev.object_index = fav;
      ev.is_repeat = true;
      repeated = true;
    }
  }
  if (!repeated) {
    ev.object_index = util::CheckedIndexU32(catalog_.SampleObject(t, rng),
                                            "object");
    // Only video content is sticky enough to adopt (Fig. 14: image objects
    // rarely exceed 10 requests per user; video objects frequently do).
    const auto& obj = catalog_.object(ev.object_index);
    const double adopt =
        obj.content_class == trace::ContentClass::kVideo
            ? profile_.favorite_adopt_prob
            : profile_.favorite_adopt_prob * 0.25;
    if (rng.NextBool(adopt)) {
      if (favorites.size() >= profile_.max_favorites) {
        favorites[rng.NextBounded(favorites.size())] = ev.object_index;
      } else {
        favorites.push_back(ev.object_index);
      }
    }
  }

  // Operational demand events, applied on top of the organic draw (the
  // adoption above intentionally keeps the organic object: a flash crowd
  // rides over steady interest, it does not rewrite it). Out-of-window
  // events draw no RNG, so a profile with no events generates the exact
  // byte stream it did before events existed.
  for (const DemandEvent& de : profile_.demand_events) {
    if (!de.Active(t)) continue;
    if (de.kind == DemandEventKind::kFlashCrowd) {
      if (rng.NextBool(de.share)) {
        ev.object_index = de.object_index;
        ev.is_repeat = false;
      }
    } else if (ev.object_index == de.object_index) {
      // Takedown: demand deterministically lands on the catalog neighbour
      // while the object is down.
      ev.object_index = util::CheckedIndexU32(
          (static_cast<std::size_t>(de.object_index) + 1) % catalog_.size(),
          "object");
      ev.is_repeat = false;
    }
  }

  // Video watch fraction: lognormal around the profile mean, capped at 1.
  const auto& obj = catalog_.object(ev.object_index);
  if (obj.content_class == trace::ContentClass::kVideo) {
    ev.watch_fraction = std::clamp(
        rng.NextLogNormal(std::log(profile_.watch_fraction_mean), 0.5), 0.05,
        1.0);
  }

  // Anomalies (mutually exclusive, rare).
  const double u = rng.NextDouble();
  if (u < profile_.hotlink_rate) {
    ev.anomaly = Anomaly::kHotlink;
  } else if (u < profile_.hotlink_rate + profile_.bad_range_rate) {
    ev.anomaly = Anomaly::kBadRange;
  } else if (u < profile_.hotlink_rate + profile_.bad_range_rate +
                     profile_.beacon_rate) {
    ev.anomaly = Anomaly::kBeacon;
  }
  return ev;
}

std::vector<RequestEvent> WorkloadGenerator::GenerateShard(
    const GenShard& shard, std::uint64_t budget,
    std::uint64_t stream_seed) const {
  util::Rng rng(stream_seed);

  // Per-user favorite sets persist across sessions for the whole week —
  // that persistence is what produces "some users repeatedly access certain
  // content" at the week scale. Users never leave their shard, so the map
  // is shard-private.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> favorites;

  std::vector<RequestEvent> events;
  events.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(budget + budget / 8, kMaxPreallocEvents)));

  const double geom_p = 1.0 / profile_.mean_requests_per_session;
  const double iat_mu = std::log(profile_.iat_median_s);

  while (events.size() < budget) {
    const std::uint32_t user_index =
        shard.user_lo +
        util::CheckedIndexU32(shard.user_alias->Sample(rng), "user");
    const UserInfo& user = users_.user(user_index);

    // Session start: local-time draw from the site curve, converted to UTC.
    const std::int64_t local_ms = week_hours_.SampleLocalMs(rng);
    std::int64_t t = local_ms - static_cast<std::int64_t>(
                                    user.tz_offset_quarter_hours) *
                                    15 * util::kMillisPerMinute;
    // Steady-state wrap: a local Saturday 01:00 in Tokyo corresponds to a
    // UTC time before the trace started; fold it into the observed week.
    t = ((t % util::kMillisPerWeek) + util::kMillisPerWeek) %
        util::kMillisPerWeek;

    const std::uint64_t session_requests = 1 + rng.NextGeometric(geom_p);
    auto& favs = favorites[user_index];
    for (std::uint64_t r = 0; r < session_requests && events.size() < budget;
         ++r) {
      if (r > 0) {
        const double gap_s = rng.NextLogNormal(iat_mu, profile_.iat_sigma);
        t += static_cast<std::int64_t>(gap_s * 1000.0);
        if (t >= util::kMillisPerWeek) break;  // session ran past the trace
      }
      events.push_back(MakeRequest(t, user_index, favs, r == 0, rng));
    }
  }
  return events;
}

std::vector<RequestEvent> WorkloadGenerator::Generate(
    std::uint64_t logical_requests, int threads) {
  const std::uint64_t budget =
      logical_requests > 0 ? logical_requests : profile_.total_requests;

  // Everything downstream is a pure function of these two draws-at-rest:
  // the stream base advances rng_ exactly once per Generate call (so
  // successive calls produce fresh weeks), and from it every shard derives
  // its own independent stream before any parallel work starts.
  const std::uint64_t stream_base = rng_.Next();
  const util::ShardedRng streams(stream_base, shards_.size());

  // Each shard gets the exact slice of the budget its users' activity mass
  // claims (largest-remainder, so the quotas sum to `budget`).
  std::vector<double> masses;
  masses.reserve(shards_.size());
  for (const auto& s : shards_) masses.push_back(s.activity_mass);
  const std::vector<std::uint64_t> quotas =
      util::ApportionByWeight(budget, masses);

  std::vector<std::vector<RequestEvent>> per_shard(shards_.size());
  util::ParallelFor(
      shards_.size(),
      [&](std::size_t s) {
        per_shard[s] = GenerateShard(shards_[s], quotas[s], streams.seed(s));
      },
      threads);

  // Deterministic merge: concatenate in shard order, then stable-sort by
  // timestamp. Both steps are independent of the thread count.
  std::vector<RequestEvent> events;
  events.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(budget, kMaxPreallocEvents)));
  for (auto& shard_events : per_shard) {
    events.insert(events.end(), shard_events.begin(), shard_events.end());
    shard_events.clear();
    shard_events.shrink_to_fit();
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const RequestEvent& a, const RequestEvent& b) {
                     return a.timestamp_ms < b.timestamp_ms;
                   });
  ATLAS_LOG(kInfo) << profile_.name << ": generated " << events.size()
                   << " logical requests (" << users_.size() << " users, "
                   << catalog_.size() << " objects, " << shards_.size()
                   << " shards)";
  return events;
}

double WorkloadGenerator::EstimateRecordsPerRequest(
    std::uint64_t chunk_bytes) const {
  if (chunk_bytes == 0) return 1.0;
  // Demand-weighted expectation over the catalog: video views expand into
  // ceil(watched_bytes / chunk) records; everything else stays one record.
  double weight_total = 0.0;
  double records = 0.0;
  catalog_.ForEachObject([&](std::size_t, const ObjectMeta& obj) {
    const double w = obj.popularity_weight;
    weight_total += w;
    if (obj.content_class == trace::ContentClass::kVideo) {
      const double watched = profile_.watch_fraction_mean *
                             static_cast<double>(obj.size_bytes);
      records += w * std::max(1.0, std::ceil(watched /
                                             static_cast<double>(chunk_bytes)));
    } else {
      records += w;
    }
  });
  return weight_total > 0.0 ? records / weight_total : 1.0;
}

std::uint64_t WorkloadGenerator::Fingerprint() const {
  std::uint64_t h = util::Fnv1a64(profile_.name);
  h = util::HashCombine(h, static_cast<std::uint64_t>(profile_.kind));
  h = util::HashCombine(h, profile_.total_requests);
  h = util::HashCombine(h, static_cast<std::uint64_t>(catalog_.size()));
  h = util::HashCombine(h, static_cast<std::uint64_t>(users_.size()));
  h = util::HashCombine(h, static_cast<std::uint64_t>(shards_.size()));
  // Demand events shape the request stream, so they are part of the
  // generator's identity: a resume against an edited event timeline must
  // fail the fingerprint check, not silently splice two different weeks.
  for (const DemandEvent& de : profile_.demand_events) {
    h = util::HashCombine(h, static_cast<std::uint64_t>(de.kind));
    h = util::HashCombine(h, static_cast<std::uint64_t>(de.start_ms));
    h = util::HashCombine(h, static_cast<std::uint64_t>(de.end_ms));
    h = util::HashCombine(h, de.object_index);
    h = util::HashCombine(h, util::DoubleBits(de.share));
  }
  return h;
}

void WorkloadGenerator::SaveState(ckpt::Writer& w) const {
  w.WriteVersion(kWorkloadStateVersion);
  w.WriteU64(Fingerprint());
  const util::Rng::Snapshot rng = rng_.TakeSnapshot();
  for (std::uint64_t word : rng.state) w.WriteU64(word);
  w.WriteDouble(rng.cached_gaussian);
  w.WriteBool(rng.has_cached_gaussian);
}

void WorkloadGenerator::RestoreState(ckpt::Reader& r) {
  r.ExpectVersion("workload generator", kWorkloadStateVersion);
  const std::uint64_t fp = r.ReadU64();
  if (fp != Fingerprint()) {
    throw std::runtime_error(
        "ckpt: workload fingerprint mismatch for profile '" + profile_.name +
        "' (checkpoint was taken against a different profile or seed plan)");
  }
  util::Rng::Snapshot rng;
  for (std::uint64_t& word : rng.state) word = r.ReadU64();
  rng.cached_gaussian = r.ReadDouble();
  rng.has_cached_gaussian = r.ReadBool();
  rng_.RestoreSnapshot(rng);
}

}  // namespace atlas::synth
