// The workload generator: profile -> a week of logical request events.
//
// Generation is session-structured (the unit the paper's user analysis is
// built around): sessions arrive according to the site's local-hour demand
// curve, heavy-tailed across users; each session issues a geometric number
// of requests separated by lognormal think times; each request picks an
// object either from the user's favorites (repeat access / "addiction",
// Figs. 13-14) or from the time-varying catalog demand (Figs. 6-10).
//
// Events are *logical* requests; the CDN simulator expands video views into
// chunked HTTP transactions and assigns response codes / cache status.
//
// Parallelism and determinism: the user population is split into a fixed
// number of contiguous shards (kGenerateShards, independent of the thread
// count). Each shard owns its users outright — their favorite sets, their
// sessions, their share of the request budget (apportioned by activity
// mass) — and draws from its own SplitMix64-derived RNG stream. Shards are
// generated independently (ParallelFor) and merged with a stable sort, so
// Generate(seed, T threads) is bit-identical for every T.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ckpt/checkpoint.h"  // atlas-lint: allow(layer-dag) ckpt is the passive serialization substrate; consuming its codec interface does not invert control flow
#include "synth/catalog.h"
#include "synth/site_profile.h"
#include "synth/user_model.h"
#include "util/rng.h"

namespace atlas::synth {

enum class Anomaly : std::uint8_t {
  kNone = 0,
  kHotlink = 1,   // request from a scraper / hotlinking site -> 403
  kBadRange = 2,  // malformed range request -> 416
  kBeacon = 3,    // tracking beacon -> 204
};

struct RequestEvent {
  std::int64_t timestamp_ms = 0;
  std::uint32_t user_index = 0;
  std::uint32_t object_index = 0;
  bool is_repeat = false;      // drawn from the user's favorites
  bool session_start = false;  // first request of its session
  double watch_fraction = 1.0; // video only: fraction of the file viewed
  Anomaly anomaly = Anomaly::kNone;
};

// Fixed shard count for parallel generation. Part of the output contract:
// changing it reshuffles RNG streams and therefore every generated trace.
inline constexpr std::size_t kGenerateShards = 32;

class WorkloadGenerator {
 public:
  WorkloadGenerator(const SiteProfile& profile, std::uint64_t seed);

  const SiteProfile& profile() const { return profile_; }
  const Catalog& catalog() const { return catalog_; }
  const UserPopulation& users() const { return users_; }

  // Generates the full week of logical request events, sorted by timestamp.
  // `logical_requests` == 0 means "use profile.total_requests"; `threads`
  // <= 0 means util::DefaultThreads(). The result depends only on the
  // construction seed and the budget, never on `threads`.
  std::vector<RequestEvent> Generate(std::uint64_t logical_requests = 0,
                                     int threads = 0);

  // Expected log records per logical request once the CDN simulator expands
  // video views into `chunk_bytes`-sized transactions. Used to calibrate the
  // logical budget so the final trace hits the profile's record target.
  double EstimateRecordsPerRequest(std::uint64_t chunk_bytes) const;

  // Digest of the generator's immutable identity (profile shape, catalog /
  // population sizes, shard plan). Stored in checkpoints so a resume
  // against a different profile fails clearly instead of replaying a
  // mismatched workload.
  std::uint64_t Fingerprint() const;

  // Checkpoints the RNG stream position (the only mutable state: events
  // are regenerated, not serialized — Generate() is a pure function of the
  // seed and the stream base drawn per call). RestoreState verifies the
  // fingerprint and rewinds/advances the stream to the saved position.
  void SaveState(ckpt::Writer& w) const;
  void RestoreState(ckpt::Reader& r);

 private:
  // One contiguous slice [user_lo, user_hi) of the population, with its own
  // activity-weighted sampler. Built once at construction; a pure function
  // of the profile + seed.
  struct GenShard {
    std::uint32_t user_lo = 0;
    std::uint32_t user_hi = 0;
    std::unique_ptr<stats::AliasTable> user_alias;
    double activity_mass = 0.0;
  };

  void BuildShards();

  RequestEvent MakeRequest(std::int64_t t, std::uint32_t user_index,
                           std::vector<std::uint32_t>& favorites,
                           bool session_start, util::Rng& rng) const;

  // Generates exactly `budget` events for one shard from its own stream.
  std::vector<RequestEvent> GenerateShard(const GenShard& shard,
                                          std::uint64_t budget,
                                          std::uint64_t stream_seed) const;

  SiteProfile profile_;
  util::Rng rng_;
  Catalog catalog_;
  UserPopulation users_;
  WeekHourDistribution week_hours_;
  std::vector<GenShard> shards_;
};

}  // namespace atlas::synth
