// Memory-bounded storage for deterministically generated record tables.
//
// The object catalog and the user table are pure functions of (profile,
// RNG stream): every record is produced by a fixed draw sequence. Below a
// byte budget a ShardStore keeps the whole table resident — the layout the
// pipeline always had, zero overhead. Above the budget it keeps only the
// RNG snapshot taken at each shard boundary during the one sequential
// build pass, and rematerializes a shard's records on demand by replaying
// the generation code from that snapshot (util::Rng::Snapshot captures the
// complete stream state, including the cached Box-Muller variate, so the
// replay is draw-for-draw identical). Peak memory is then bounded by the
// LRU cache of active shards instead of the total population.
//
// Determinism contract: the build pass consumes the owning RNG identically
// in both modes (BeforeItem only *reads* the stream state), and a replayed
// record is bit-identical to the one the build pass produced — so traces,
// reports, and checkpoints never depend on the budget. tests/scale_test.cc
// proves both properties against the pinned golden digests.
//
// Thread safety: Get() and ForEach() are safe to call concurrently after
// EndBuild — the lazy cache is mutex-guarded; resident reads are lock-free.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "util/mutex.h"
#include "util/rng.h"

namespace atlas::synth {

// Preallocation clamp for the build pass (same idiom as the trace reader's
// header-count clamp): a hostile or huge population must not OOM on
// reserve() before generation starts — the vector still grows to the real
// size, it just does so incrementally past the clamp.
inline constexpr std::size_t kMaxPreallocItems = 1u << 20;

template <typename T>
class ShardStore {
 public:
  // Regenerates shard `shard`'s records into `out` (in index order) from
  // `rng`, which has been restored to the snapshot taken when the build
  // pass reached the shard's first item.
  using ReplayFn =
      std::function<void(std::size_t shard, util::Rng& rng, std::vector<T>& out)>;

  ShardStore() = default;
  ShardStore(const ShardStore&) = delete;
  ShardStore& operator=(const ShardStore&) = delete;

  // Starts a build of `total` items in shards of `shard_items`. The store
  // goes lazy when the resident table would exceed `budget_bytes`; the lazy
  // cache then holds at most max(2, budget_bytes / shard_bytes) shards.
  void BeginBuild(std::size_t total, std::size_t shard_items,
                  std::uint64_t budget_bytes) {
    total_ = total;
    shard_items_ = std::max<std::size_t>(1, shard_items);
    lazy_ = static_cast<std::uint64_t>(total) * sizeof(T) > budget_bytes;
    if (lazy_) {
      const std::uint64_t shard_bytes =
          static_cast<std::uint64_t>(shard_items_) * sizeof(T);
      max_cached_shards_ = std::max<std::size_t>(
          2, static_cast<std::size_t>(budget_bytes / std::max<std::uint64_t>(
                                                         1, shard_bytes)));
      snapshots_.reserve(
          std::min((total_ + shard_items_ - 1) / shard_items_,
                   kMaxPreallocItems));
    } else {
      items_.reserve(std::min(total_, kMaxPreallocItems));
    }
  }

  // Called with the owning RNG immediately before item `i` is generated;
  // records the shard-boundary snapshots the lazy replay starts from. Reads
  // the stream state only — the build consumes `rng` identically whether or
  // not the store is lazy.
  void BeforeItem(std::size_t i, const util::Rng& rng) {
    if (lazy_ && i % shard_items_ == 0) {
      snapshots_.push_back(rng.TakeSnapshot());
    }
  }

  void Append(const T& item) {
    if (!lazy_) items_.push_back(item);
  }

  void EndBuild(ReplayFn replay) { replay_ = std::move(replay); }

  std::size_t size() const { return total_; }
  bool lazy() const { return lazy_; }
  std::size_t shard_items() const { return shard_items_; }
  std::size_t shard_count() const {
    return total_ == 0 ? 0 : (total_ + shard_items_ - 1) / shard_items_;
  }
  std::size_t max_cached_shards() const { return max_cached_shards_; }

  // First item index of `shard` / one past its last item.
  std::size_t ShardBegin(std::size_t shard) const {
    return shard * shard_items_;
  }
  std::size_t ShardEnd(std::size_t shard) const {
    return std::min(total_, (shard + 1) * shard_items_);
  }

  // Returns item `i` by value: lazy shards are evictable, so references
  // into them cannot outlive the call. `const T& x = store.Get(i)` remains
  // valid through lifetime extension of the returned temporary.
  T Get(std::size_t i) const {
    if (!lazy_) return items_[i];
    const std::size_t shard = i / shard_items_;
    util::MutexLock lock(mu_);
    return CachedShardLocked(shard)[i - shard * shard_items_];
  }

  // Streams every item in index order — the bounded-memory replacement for
  // handing out the whole table. `fn(index, item)` sees each shard
  // materialized at most once; peak extra memory is one shard.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (!lazy_) {
      for (std::size_t i = 0; i < items_.size(); ++i) fn(i, items_[i]);
      return;
    }
    std::vector<T> scratch;
    for (std::size_t s = 0; s < shard_count(); ++s) {
      scratch.clear();
      Replay(s, scratch);
      const std::size_t base = ShardBegin(s);
      for (std::size_t j = 0; j < scratch.size(); ++j) fn(base + j, scratch[j]);
    }
  }

  // Observability for the bounded-memory tests.
  std::size_t cached_shards() const {
    util::MutexLock lock(mu_);
    return cache_.size();
  }
  std::uint64_t materializations() const {
    util::MutexLock lock(mu_);
    return materializations_;
  }

 private:
  void Replay(std::size_t shard, std::vector<T>& out) const {
    util::Rng rng;
    rng.RestoreSnapshot(snapshots_[shard]);
    out.reserve(ShardEnd(shard) - ShardBegin(shard));
    replay_(shard, rng, out);
  }

  const std::vector<T>& CachedShardLocked(std::size_t shard) const
      ATLAS_REQUIRES(mu_) {
    auto it = cache_.find(shard);
    if (it != cache_.end()) {
      it->second.last_used = ++use_clock_;
      return it->second.items;
    }
    if (cache_.size() >= max_cached_shards_) {
      // Evict the least recently used shard. The cache is a handful of
      // entries, so a linear scan beats maintaining an intrusive list.
      auto lru = cache_.begin();
      for (auto c = cache_.begin(); c != cache_.end(); ++c) {
        if (c->second.last_used < lru->second.last_used) lru = c;
      }
      cache_.erase(lru);
    }
    CacheEntry entry;
    entry.last_used = ++use_clock_;
    Replay(shard, entry.items);
    ++materializations_;
    return cache_.emplace(shard, std::move(entry)).first->second.items;
  }

  std::size_t total_ = 0;
  std::size_t shard_items_ = 1;
  bool lazy_ = false;
  std::size_t max_cached_shards_ = 0;
  // Resident mode: the whole table. Lazy mode: empty.
  std::vector<T> items_;
  // Lazy mode: one RNG snapshot per shard; immutable after the build pass.
  std::vector<util::Rng::Snapshot> snapshots_;
  ReplayFn replay_;

  struct CacheEntry {
    std::vector<T> items;
    std::uint64_t last_used = 0;
  };
  mutable util::Mutex mu_;
  mutable std::unordered_map<std::size_t, CacheEntry> cache_
      ATLAS_GUARDED_BY(mu_);
  mutable std::uint64_t use_clock_ ATLAS_GUARDED_BY(mu_) = 0;
  mutable std::uint64_t materializations_ ATLAS_GUARDED_BY(mu_) = 0;
};

}  // namespace atlas::synth
