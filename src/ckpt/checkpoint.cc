#include "ckpt/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "util/hash.h"

namespace atlas::ckpt {
namespace {

constexpr char kMagic[4] = {'A', 'C', 'K', 'P'};
// Sanity bounds: a single section name or payload larger than these is a
// corrupted length field, not a real checkpoint.
constexpr std::uint32_t kMaxSectionName = 1u << 10;
constexpr std::uint64_t kMaxSectionBytes = 1ull << 34;  // 16 GiB

[[noreturn]] void Fail(const std::string& message) {
  throw std::runtime_error("ckpt: " + message);
}

template <typename T>
void StoreLe(unsigned char* dst, T value) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    dst[i] = static_cast<unsigned char>((value >> (8 * i)) & 0xffu);
  }
}

template <typename T>
T LoadLe(const unsigned char* src) {
  T value = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    value = static_cast<T>(value | (static_cast<T>(src[i]) << (8 * i)));
  }
  return value;
}

template <typename T>
void WriteLe(std::ostream& out, T value) {
  unsigned char buf[sizeof(T)];
  StoreLe(buf, value);
  out.write(reinterpret_cast<const char*>(buf), sizeof(T));
}

template <typename T>
bool ReadLe(std::istream& in, T* value) {
  unsigned char buf[sizeof(T)];
  in.read(reinterpret_cast<char*>(buf), sizeof(T));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(T))) return false;
  *value = LoadLe<T>(buf);
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Writer

Writer::Writer(std::ostream& out) : out_(out) {
  out_.write(kMagic, sizeof(kMagic));
  WriteLe<std::uint32_t>(out_, kFormatVersion);
  if (!out_) Fail("write failed (header)");
}

void Writer::BeginSection(const std::string& name, std::uint32_t version) {
  if (finished_) Fail("BeginSection after Finish");
  if (in_section_) Fail("BeginSection inside open section '" + section_name_ + "'");
  if (name.empty()) Fail("section name must be non-empty");
  if (name.size() >= kMaxSectionName) Fail("section name too long");
  section_name_ = name;
  section_version_ = version;
  payload_.clear();
  in_section_ = true;
}

void Writer::EndSection() {
  if (!in_section_) Fail("EndSection without open section");
  WriteLe<std::uint32_t>(out_, static_cast<std::uint32_t>(section_name_.size()));
  out_.write(section_name_.data(),
             static_cast<std::streamsize>(section_name_.size()));
  WriteLe<std::uint32_t>(out_, section_version_);
  WriteLe<std::uint64_t>(out_, static_cast<std::uint64_t>(payload_.size()));
  WriteLe<std::uint32_t>(out_, util::Crc32(payload_.data(), payload_.size()));
  out_.write(reinterpret_cast<const char*>(payload_.data()),
             static_cast<std::streamsize>(payload_.size()));
  if (!out_) Fail("write failed (section '" + section_name_ + "')");
  payload_.clear();
  in_section_ = false;
  ++sections_;
}

void Writer::Finish() {
  if (finished_) return;
  if (in_section_) Fail("Finish inside open section '" + section_name_ + "'");
  WriteLe<std::uint32_t>(out_, 0);  // end marker: zero-length name
  WriteLe<std::uint64_t>(out_, sections_);
  out_.flush();
  if (!out_) Fail("write failed (trailer)");
  finished_ = true;
}

void Writer::Put(const void* data, std::size_t size) {
  if (!in_section_) Fail("write outside section");
  const auto* bytes = static_cast<const unsigned char*>(data);
  payload_.insert(payload_.end(), bytes, bytes + size);
}

void Writer::WriteU8(std::uint8_t v) { Put(&v, 1); }

void Writer::WriteU16(std::uint16_t v) {
  unsigned char buf[2];
  StoreLe(buf, v);
  Put(buf, sizeof(buf));
}

void Writer::WriteU32(std::uint32_t v) {
  unsigned char buf[4];
  StoreLe(buf, v);
  Put(buf, sizeof(buf));
}

void Writer::WriteU64(std::uint64_t v) {
  unsigned char buf[8];
  StoreLe(buf, v);
  Put(buf, sizeof(buf));
}

void Writer::WriteI64(std::int64_t v) {
  WriteU64(static_cast<std::uint64_t>(v));
}

void Writer::WriteDouble(double v) {
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void Writer::WriteBool(bool v) { WriteU8(v ? 1 : 0); }

void Writer::WriteString(const std::string& v) {
  if (v.size() > std::numeric_limits<std::uint32_t>::max()) {
    Fail("string too long");
  }
  WriteU32(static_cast<std::uint32_t>(v.size()));
  Put(v.data(), v.size());
}

void Writer::WriteBytes(const void* data, std::size_t size) {
  WriteU64(static_cast<std::uint64_t>(size));
  Put(data, size);
}

void Writer::WriteVecU64(const std::vector<std::uint64_t>& v) {
  WriteU64(static_cast<std::uint64_t>(v.size()));
  for (std::uint64_t x : v) WriteU64(x);
}

void Writer::WriteVecDouble(const std::vector<double>& v) {
  WriteU64(static_cast<std::uint64_t>(v.size()));
  for (double x : v) WriteDouble(x);
}

// ---------------------------------------------------------------------------
// Reader

Reader::Reader(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(magic)) != 0) {
    Fail("bad magic (not a checkpoint file)");
  }
  std::uint32_t format = 0;
  if (!ReadLe(in, &format)) Fail("truncated checkpoint (no format version)");
  if (format != kFormatVersion) {
    Fail("unsupported format version " + std::to_string(format) +
         " (this build reads version " + std::to_string(kFormatVersion) + ")");
  }
  bool terminated = false;
  while (true) {
    std::uint32_t name_len = 0;
    if (!ReadLe(in, &name_len)) break;  // truncated: no end marker seen
    if (name_len == 0) {
      std::uint64_t declared = 0;
      if (!ReadLe(in, &declared)) Fail("truncated checkpoint (no trailer)");
      if (declared != sections_.size()) {
        Fail("section count mismatch (trailer says " + std::to_string(declared) +
             ", file has " + std::to_string(sections_.size()) + ")");
      }
      terminated = true;
      break;
    }
    if (name_len >= kMaxSectionName) Fail("corrupt section name length");
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    if (in.gcount() != static_cast<std::streamsize>(name_len)) {
      Fail("truncated checkpoint (section name)");
    }
    Section section;
    std::uint64_t payload_bytes = 0;
    std::uint32_t crc = 0;
    if (!ReadLe(in, &section.version) || !ReadLe(in, &payload_bytes) ||
        !ReadLe(in, &crc)) {
      Fail("truncated checkpoint (section header for '" + name + "')");
    }
    if (payload_bytes > kMaxSectionBytes) Fail("corrupt section length");
    section.payload.resize(static_cast<std::size_t>(payload_bytes));
    in.read(reinterpret_cast<char*>(section.payload.data()),
            static_cast<std::streamsize>(payload_bytes));
    if (in.gcount() != static_cast<std::streamsize>(payload_bytes)) {
      Fail("truncated checkpoint (payload of '" + name + "')");
    }
    if (util::Crc32(section.payload.data(), section.payload.size()) != crc) {
      Fail("section CRC mismatch in '" + name + "'");
    }
    if (!sections_.emplace(std::move(name), std::move(section)).second) {
      Fail("duplicate section");
    }
  }
  if (!terminated) Fail("truncated checkpoint (no end marker)");
}

bool Reader::HasSection(const std::string& name) const {
  return sections_.count(name) != 0;
}

std::uint32_t Reader::BeginSection(const std::string& name) {
  if (cur_ != nullptr) {
    Fail("BeginSection('" + name + "') inside open section '" + cur_name_ + "'");
  }
  auto it = sections_.find(name);
  if (it == sections_.end()) Fail("missing section '" + name + "'");
  cur_ = &it->second;
  cur_name_ = name;
  pos_ = 0;
  return it->second.version;
}

void Reader::BeginSection(const std::string& name, std::uint32_t expected) {
  const std::uint32_t got = BeginSection(name);
  if (got != expected) {
    cur_ = nullptr;
    Fail("section '" + name + "' version mismatch (file v" +
         std::to_string(got) + ", code expects v" + std::to_string(expected) +
         ")");
  }
}

void Reader::EndSection() {
  if (cur_ == nullptr) Fail("EndSection without open section");
  if (pos_ != cur_->payload.size()) {
    Fail("section '" + cur_name_ + "' has " +
         std::to_string(cur_->payload.size() - pos_) +
         " unread bytes (layout mismatch)");
  }
  cur_ = nullptr;
}

const unsigned char* Reader::Take(std::size_t size) {
  if (cur_ == nullptr) Fail("read outside section");
  if (cur_->payload.size() - pos_ < size) {
    Fail("read past end of section '" + cur_name_ + "'");
  }
  const unsigned char* p = cur_->payload.data() + pos_;
  pos_ += size;
  return p;
}

std::uint8_t Reader::ReadU8() { return *Take(1); }
std::uint16_t Reader::ReadU16() { return LoadLe<std::uint16_t>(Take(2)); }
std::uint32_t Reader::ReadU32() { return LoadLe<std::uint32_t>(Take(4)); }
std::uint64_t Reader::ReadU64() { return LoadLe<std::uint64_t>(Take(8)); }

std::int64_t Reader::ReadI64() {
  return static_cast<std::int64_t>(ReadU64());
}

double Reader::ReadDouble() {
  const std::uint64_t bits = ReadU64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

bool Reader::ReadBool() {
  const std::uint8_t v = ReadU8();
  if (v > 1) Fail("corrupt bool in section '" + cur_name_ + "'");
  return v == 1;
}

std::string Reader::ReadString() {
  const std::uint32_t size = ReadU32();
  const unsigned char* p = Take(size);
  return std::string(reinterpret_cast<const char*>(p), size);
}

std::vector<unsigned char> Reader::ReadBytes() {
  const std::uint64_t size = ReadU64();
  const unsigned char* p = Take(static_cast<std::size_t>(size));
  return std::vector<unsigned char>(p, p + size);
}

std::vector<std::uint64_t> Reader::ReadVecU64() {
  const std::uint64_t count = ReadU64();
  if (cur_ != nullptr && count * 8 > cur_->payload.size() - pos_) {
    Fail("corrupt vector length in section '" + cur_name_ + "'");
  }
  std::vector<std::uint64_t> v;
  v.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) v.push_back(ReadU64());
  return v;
}

std::vector<double> Reader::ReadVecDouble() {
  const std::uint64_t count = ReadU64();
  if (cur_ != nullptr && count * 8 > cur_->payload.size() - pos_) {
    Fail("corrupt vector length in section '" + cur_name_ + "'");
  }
  std::vector<double> v;
  v.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) v.push_back(ReadDouble());
  return v;
}

void Reader::ExpectVersion(const std::string& what, std::uint32_t expected) {
  const std::uint32_t got = ReadU32();
  if (got != expected) {
    Fail(what + " state version mismatch (file v" + std::to_string(got) +
         ", code expects v" + std::to_string(expected) + ")");
  }
}

std::vector<std::string> Reader::SectionNames() const {
  std::vector<std::string> names;
  names.reserve(sections_.size());
  for (const auto& [name, section] : sections_) names.push_back(name);
  return names;
}

// ---------------------------------------------------------------------------
// File helpers

void WriteCheckpointFile(const std::string& path,
                         const std::function<void(Writer&)>& fill) {
  const std::string tmp = path + ".tmp";
  try {
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) Fail("cannot open '" + tmp + "' for writing");
      Writer writer(out);
      fill(writer);
      writer.Finish();
      out.close();
      if (out.fail()) Fail("close failed for '" + tmp + "'");
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) Fail("rename '" + tmp + "' -> '" + path + "': " + ec.message());
  } catch (...) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw;
  }
}

Reader ReadCheckpointFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) Fail("cannot open '" + path + "' for reading");
  return Reader(in);
}

}  // namespace atlas::ckpt
