// atlas::ckpt — crash-consistent checkpoint/restore for pipeline state.
//
// A checkpoint is a flat file of named, versioned, CRC-checked sections:
//
//   magic "ACKP" | u32 format_version
//   section*:  u32 name_len | name bytes | u32 section_version
//              | u64 payload_bytes | u32 crc32(payload) | payload
//   end:       u32 0 | u64 section_count
//
// All integers are little-endian. The Writer buffers one section at a time
// and stamps its CRC on EndSection(); the Reader scans the whole file up
// front, validating the magic, format version, every section CRC, and the
// trailing section count before any state is handed out. A truncated,
// corrupted, or version-bumped checkpoint therefore fails loudly at open
// time — never with a wrong-but-plausible restore.
//
// Convention: every object's SaveState() writes its own u32 state-version
// as the first field of its blob (WriteVersion), and RestoreState() checks
// it first (ExpectVersion). Orchestrators that own several objects open one
// named section per object (or group) so blobs stay independently versioned
// and discoverable. Raw ostream writes are forbidden in SaveState
// implementations outside this directory (lint rule `ckpt-unversioned-blob`).
//
// Checkpoint files are committed atomically: WriteCheckpointFile() writes
// "<path>.tmp", flushes, then renames over <path>, so a crash mid-save
// leaves the previous checkpoint intact.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace atlas::ckpt {

// Bumped when the container layout above changes shape.
inline constexpr std::uint32_t kFormatVersion = 1;

// Serializes named sections of typed primitives to a stream.
class Writer {
 public:
  explicit Writer(std::ostream& out);

  // Starts a named section. Names must be unique within a checkpoint and
  // non-empty; `version` stamps the section layout.
  void BeginSection(const std::string& name, std::uint32_t version);
  // Stamps the CRC and writes the buffered section to the stream.
  void EndSection();
  // Writes the end marker and trailing section count. Idempotent.
  void Finish();

  // Typed primitives; all require an open section.
  void WriteU8(std::uint8_t v);
  void WriteU16(std::uint16_t v);
  void WriteU32(std::uint32_t v);
  void WriteU64(std::uint64_t v);
  void WriteI64(std::int64_t v);
  void WriteDouble(double v);
  void WriteBool(bool v);
  void WriteString(const std::string& v);
  void WriteBytes(const void* data, std::size_t size);
  void WriteVecU64(const std::vector<std::uint64_t>& v);
  void WriteVecDouble(const std::vector<double>& v);

  // First field of every Checkpointable blob (see header comment).
  void WriteVersion(std::uint32_t v) { WriteU32(v); }

  std::uint64_t sections_written() const { return sections_; }

 private:
  void Put(const void* data, std::size_t size);

  std::ostream& out_;
  std::vector<unsigned char> payload_;
  std::string section_name_;
  std::uint32_t section_version_ = 0;
  std::uint64_t sections_ = 0;
  bool in_section_ = false;
  bool finished_ = false;
};

// Parses and fully validates a checkpoint, then serves sections by name.
class Reader {
 public:
  // Scans `in` to the end marker, validating magic, format version, every
  // section CRC, and the section count. Throws std::runtime_error with a
  // "ckpt: ..." message on any defect.
  explicit Reader(std::istream& in);

  bool HasSection(const std::string& name) const;
  // Opens a section for reading and returns its stamped version.
  std::uint32_t BeginSection(const std::string& name);
  // Opens a section and requires its version to equal `expected`.
  void BeginSection(const std::string& name, std::uint32_t expected);
  // Closes the open section; throws if unread bytes remain (a layout
  // mismatch restore must not paper over).
  void EndSection();

  std::uint8_t ReadU8();
  std::uint16_t ReadU16();
  std::uint32_t ReadU32();
  std::uint64_t ReadU64();
  std::int64_t ReadI64();
  double ReadDouble();
  bool ReadBool();
  std::string ReadString();
  std::vector<unsigned char> ReadBytes();
  std::vector<std::uint64_t> ReadVecU64();
  std::vector<double> ReadVecDouble();

  // Reads a blob's leading state-version and throws a clear error naming
  // `what` if it differs from `expected`.
  void ExpectVersion(const std::string& what, std::uint32_t expected);

  std::size_t section_count() const { return sections_.size(); }
  // Names in lexicographic order (deterministic).
  std::vector<std::string> SectionNames() const;

 private:
  struct Section {
    std::uint32_t version = 0;
    std::vector<unsigned char> payload;
  };

  const unsigned char* Take(std::size_t size);

  std::map<std::string, Section> sections_;
  const Section* cur_ = nullptr;
  std::string cur_name_;
  std::size_t pos_ = 0;
};

// Anything that can snapshot its mutable state into a checkpoint and later
// restore it exactly. Implementations must write only through the Writer's
// typed, versioned API and must begin their blob with WriteVersion().
class Checkpointable {
 public:
  virtual ~Checkpointable() = default;
  virtual void SaveState(Writer& w) const = 0;
  virtual void RestoreState(Reader& r) = 0;
};

// Writes a checkpoint atomically: `fill` populates sections on a Writer
// bound to "<path>.tmp"; on success the temp file is flushed, closed, and
// renamed over `path`. Throws on any I/O failure (temp file removed).
void WriteCheckpointFile(const std::string& path,
                         const std::function<void(Writer&)>& fill);

// Opens and fully validates `path` (see Reader). The returned Reader holds
// all section payloads in memory; the file is not needed afterwards.
Reader ReadCheckpointFile(const std::string& path);

}  // namespace atlas::ckpt
