#include "cdn/chunking.h"

#include <algorithm>
#include <cmath>

#include "util/hash.h"

namespace atlas::cdn {

ChunkPlan PlanChunks(std::uint64_t object_bytes, double watch_fraction,
                     std::uint64_t chunk_bytes) {
  ChunkPlan plan;
  watch_fraction = std::clamp(watch_fraction, 1e-6, 1.0);
  if (object_bytes == 0) object_bytes = 1;
  if (chunk_bytes == 0 || object_bytes <= chunk_bytes) {
    // Single transaction. A partial watch of a single-chunk object is still
    // delivered as one (range) response when truncated.
    const auto bytes = static_cast<std::uint64_t>(std::ceil(
        static_cast<double>(object_bytes) * watch_fraction));
    plan.num_chunks = 1;
    plan.chunk_bytes = std::max<std::uint64_t>(bytes, 1);
    plan.last_chunk_bytes = plan.chunk_bytes;
    plan.partial = bytes < object_bytes;
    return plan;
  }
  const auto watched_bytes = static_cast<std::uint64_t>(std::ceil(
      static_cast<double>(object_bytes) * watch_fraction));
  const std::uint64_t chunks =
      std::max<std::uint64_t>(1, (watched_bytes + chunk_bytes - 1) / chunk_bytes);
  plan.num_chunks = chunks;
  plan.chunk_bytes = chunk_bytes;
  const std::uint64_t tail = watched_bytes - (chunks - 1) * chunk_bytes;
  plan.last_chunk_bytes = std::max<std::uint64_t>(tail, 1);
  plan.partial = true;  // multi-chunk transfers are range requests
  return plan;
}

std::uint64_t ChunkKey(std::uint64_t url_hash, std::uint64_t index) {
  if (index == 0) return url_hash;
  return util::HashCombine(url_hash, index);
}

}  // namespace atlas::cdn
