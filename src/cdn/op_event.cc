#include "cdn/op_event.h"

namespace atlas::cdn {

const char* ToString(OpEventKind k) {
  switch (k) {
    case OpEventKind::kDcOutage:
      return "dc-outage";
    case OpEventKind::kCacheFlush:
      return "cache-flush";
  }
  return "?";
}

}  // namespace atlas::cdn
