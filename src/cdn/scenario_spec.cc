#include "cdn/scenario_spec.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "cdn/cache.h"
#include "ckpt/checkpoint.h"  // atlas-lint: allow(layer-dag) ckpt is the passive serialization substrate; consuming its codec interface does not invert control flow
#include "util/config.h"
#include "util/hash.h"

namespace atlas::cdn {
namespace {

using util::config::ConfigError;
using util::config::TableView;
using util::config::TomlFloat;
using util::config::TomlString;
using util::config::Value;

// Checkpoint section carrying the spec fingerprint.
constexpr std::uint32_t kScenarioSpecVersion = 1;

constexpr double kMillisPerHour = 3600.0 * 1000.0;

std::int64_t HoursToMs(double hours) {
  return static_cast<std::int64_t>(std::llround(hours * kMillisPerHour));
}

synth::SiteProfile BaseProfile(const std::string& base, double scale) {
  if (base == "V-1") return synth::SiteProfile::V1(scale);
  if (base == "V-2") return synth::SiteProfile::V2(scale);
  if (base == "P-1") return synth::SiteProfile::P1(scale);
  if (base == "P-2") return synth::SiteProfile::P2(scale);
  if (base == "S-1") return synth::SiteProfile::S1(scale);
  if (base == "N-1") return synth::SiteProfile::NonAdult(scale);
  if (base == "L-1") return synth::SiteProfile::LiveStream(scale);
  throw std::invalid_argument(
      "ScenarioSpec: unknown base profile '" + base +
      "' (expected V-1, V-2, P-1, P-2, S-1, N-1, or L-1)");
}

SpecEventKind ParseEventKind(const std::string& kind) {
  if (kind == "flash-crowd") return SpecEventKind::kFlashCrowd;
  if (kind == "takedown") return SpecEventKind::kTakedown;
  if (kind == "dc-outage") return SpecEventKind::kDcOutage;
  if (kind == "cache-flush") return SpecEventKind::kCacheFlush;
  throw std::invalid_argument(
      "ScenarioSpec: unknown event kind '" + kind +
      "' (expected flash-crowd, takedown, dc-outage, or cache-flush)");
}

bool IsDemandKind(SpecEventKind k) {
  return k == SpecEventKind::kFlashCrowd || k == SpecEventKind::kTakedown;
}

PolicyKind ParsePolicy(const std::string& name) {
  for (int i = 0; i < kNumPolicyKinds; ++i) {
    const auto kind = static_cast<PolicyKind>(i);
    if (name == ToString(kind)) return kind;
  }
  throw std::invalid_argument("ScenarioSpec: unknown edge_policy '" + name +
                              "' (expected LRU, FIFO, LFU, GDSF, S4LRU, or "
                              "TTL-LRU)");
}

std::uint64_t NonNegative(std::int64_t v, const char* key) {
  if (v < 0) {
    throw std::invalid_argument(std::string("ScenarioSpec: ") + key +
                                " must be >= 0");
  }
  return static_cast<std::uint64_t>(v);
}

const std::string& EffectiveName(const SiteSpec& site) {
  return site.name.empty() ? site.profile : site.name;
}

SiteSpec ParseSite(const Value& v, std::size_t index,
                   const std::string& source) {
  TableView t(v, "site[" + std::to_string(index) + "]", source);
  SiteSpec s;
  s.profile = t.GetString("profile");
  s.name = t.GetString("name", s.profile);
  if (t.Has("total_requests")) {
    s.total_requests = NonNegative(t.GetInt("total_requests"), "total_requests");
  }
  if (t.Has("num_objects")) {
    s.num_objects = NonNegative(t.GetInt("num_objects"), "num_objects");
  }
  if (t.Has("num_users")) {
    s.num_users = NonNegative(t.GetInt("num_users"), "num_users");
  }
  if (t.Has("zipf_s")) s.zipf_s = t.GetFloat("zipf_s");
  if (t.Has("repeat_request_prob")) {
    s.repeat_request_prob = t.GetFloat("repeat_request_prob");
  }
  if (t.Has("incognito_rate")) s.incognito_rate = t.GetFloat("incognito_rate");
  if (t.Has("peak_local_hour")) {
    s.peak_local_hour = t.GetFloat("peak_local_hour");
  }
  if (t.Has("diurnal_amplitude")) {
    s.diurnal_amplitude = t.GetFloat("diurnal_amplitude");
  }
  if (t.Has("watch_fraction_mean")) {
    s.watch_fraction_mean = t.GetFloat("watch_fraction_mean");
  }
  t.RejectUnknownKeys();
  return s;
}

EventSpec ParseEvent(const Value& v, std::size_t index,
                     const std::string& source) {
  TableView t(v, "event[" + std::to_string(index) + "]", source);
  EventSpec e;
  e.kind = ParseEventKind(t.GetString("kind"));
  switch (e.kind) {
    case SpecEventKind::kFlashCrowd:
      e.site = t.GetString("site");
      e.start_hours = t.GetFloat("start_hours");
      e.end_hours = t.GetFloat("end_hours");
      e.object = t.GetInt("object");
      e.share = t.GetFloat("share");
      break;
    case SpecEventKind::kTakedown:
      e.site = t.GetString("site");
      e.start_hours = t.GetFloat("start_hours");
      e.end_hours = t.GetFloat("end_hours");
      e.object = t.GetInt("object");
      break;
    case SpecEventKind::kDcOutage:
      e.start_hours = t.GetFloat("start_hours");
      e.end_hours = t.GetFloat("end_hours");
      e.dc = t.GetInt("dc");
      break;
    case SpecEventKind::kCacheFlush:
      e.start_hours = t.GetFloat("at_hours");
      e.dc = t.GetInt("dc", OpEvent::kAllDcs);
      break;
  }
  t.RejectUnknownKeys();
  return e;
}

void ParseSimulator(const Value& v, SimulatorConfig& sim,
                    const std::string& source) {
  TableView t(v, "simulator", source);
  sim.chunk_bytes = NonNegative(
      t.GetInt("chunk_bytes", static_cast<std::int64_t>(sim.chunk_bytes)),
      "chunk_bytes");
  sim.playback_bytes_per_s =
      t.GetFloat("playback_bytes_per_s", sim.playback_bytes_per_s);
  sim.browser_capacity_bytes = NonNegative(
      t.GetInt("browser_capacity_bytes",
               static_cast<std::int64_t>(sim.browser_capacity_bytes)),
      "browser_capacity_bytes");
  sim.browser_freshness_ms =
      t.GetInt("browser_freshness_ms", sim.browser_freshness_ms);
  sim.browser_max_object_bytes = NonNegative(
      t.GetInt("browser_max_object_bytes",
               static_cast<std::int64_t>(sim.browser_max_object_bytes)),
      "browser_max_object_bytes");
  sim.peer_fill = t.GetBool("peer_fill", sim.peer_fill);
  sim.epoch_ms = t.GetInt("epoch_ms", sim.epoch_ms);
  if (const Value* push = t.Consume("push")) {
    TableView p(*push, "simulator.push", source);
    sim.push.enabled = p.GetBool("enabled", sim.push.enabled);
    sim.push.top_n = static_cast<std::size_t>(NonNegative(
        p.GetInt("top_n", static_cast<std::int64_t>(sim.push.top_n)),
        "top_n"));
    sim.push.include_diurnal =
        p.GetBool("include_diurnal", sim.push.include_diurnal);
    sim.push.include_long_lived =
        p.GetBool("include_long_lived", sim.push.include_long_lived);
    sim.push.include_short_lived =
        p.GetBool("include_short_lived", sim.push.include_short_lived);
    sim.push.include_flash = p.GetBool("include_flash", sim.push.include_flash);
    sim.push.include_outlier =
        p.GetBool("include_outlier", sim.push.include_outlier);
    sim.push.video_prefix_chunks = NonNegative(
        p.GetInt("video_prefix_chunks",
                 static_cast<std::int64_t>(sim.push.video_prefix_chunks)),
        "video_prefix_chunks");
    p.RejectUnknownKeys();
  }
  if (const Value* topo = t.Consume("topology")) {
    TableView tp(*topo, "simulator.topology", source);
    sim.topology.edge_policy = ParsePolicy(
        tp.GetString("edge_policy", ToString(sim.topology.edge_policy)));
    sim.topology.edge_capacity_bytes = NonNegative(
        tp.GetInt("edge_capacity_bytes",
                  static_cast<std::int64_t>(sim.topology.edge_capacity_bytes)),
        "edge_capacity_bytes");
    sim.topology.edge_ttl_ms =
        tp.GetInt("edge_ttl_ms", sim.topology.edge_ttl_ms);
    sim.topology.dcs_per_continent = static_cast<int>(
        tp.GetInt("dcs_per_continent", sim.topology.dcs_per_continent));
    tp.RejectUnknownKeys();
  }
  t.RejectUnknownKeys();
}

void ParseEnergy(const Value& v, EnergySpec& energy,
                 const std::string& source) {
  TableView t(v, "energy", source);
  energy.server_idle_watts =
      t.GetFloat("server_idle_watts", energy.server_idle_watts);
  energy.server_busy_watts =
      t.GetFloat("server_busy_watts", energy.server_busy_watts);
  energy.server_capacity_gbps =
      t.GetFloat("server_capacity_gbps", energy.server_capacity_gbps);
  energy.storage_watts_per_gb =
      t.GetFloat("storage_watts_per_gb", energy.storage_watts_per_gb);
  energy.edge_hit_j_per_gb =
      t.GetFloat("edge_hit_j_per_gb", energy.edge_hit_j_per_gb);
  energy.peer_fill_j_per_gb =
      t.GetFloat("peer_fill_j_per_gb", energy.peer_fill_j_per_gb);
  energy.origin_fetch_j_per_gb =
      t.GetFloat("origin_fetch_j_per_gb", energy.origin_fetch_j_per_gb);
  energy.push_j_per_gb = t.GetFloat("push_j_per_gb", energy.push_j_per_gb);
  energy.electricity_usd_per_kwh =
      t.GetFloat("electricity_usd_per_kwh", energy.electricity_usd_per_kwh);
  energy.edge_hit_usd_per_gb =
      t.GetFloat("edge_hit_usd_per_gb", energy.edge_hit_usd_per_gb);
  energy.peer_fill_usd_per_gb =
      t.GetFloat("peer_fill_usd_per_gb", energy.peer_fill_usd_per_gb);
  energy.origin_fetch_usd_per_gb =
      t.GetFloat("origin_fetch_usd_per_gb", energy.origin_fetch_usd_per_gb);
  energy.push_usd_per_gb =
      t.GetFloat("push_usd_per_gb", energy.push_usd_per_gb);
  t.RejectUnknownKeys();
}

void RequireFiniteNonNegative(double v, const char* key) {
  if (!std::isfinite(v) || v < 0.0) {
    throw std::invalid_argument(std::string("ScenarioSpec: energy.") + key +
                                " must be finite and >= 0");
  }
}

}  // namespace

const char* ToString(SpecEventKind k) {
  switch (k) {
    case SpecEventKind::kFlashCrowd:
      return "flash-crowd";
    case SpecEventKind::kTakedown:
      return "takedown";
    case SpecEventKind::kDcOutage:
      return "dc-outage";
    case SpecEventKind::kCacheFlush:
      return "cache-flush";
  }
  return "?";
}

ScenarioSpec ScenarioSpec::Parse(std::string_view text,
                                 const std::string& source) {
  const Value root = util::config::ParseToml(text, source);
  TableView t(root, "scenario", source);
  ScenarioSpec spec;
  try {
    spec.name = t.GetString("name");
    spec.description = t.GetString("description", "");
    spec.scale = t.GetFloat("scale", 1.0);
    spec.seed = NonNegative(t.GetInt("seed", 42), "seed");
    if (const Value* sites = t.Consume("site")) {
      if (sites->kind != Value::Kind::kArray) {
        throw ConfigError(source + ": 'site' must be an array of [[site]] "
                          "tables");
      }
      for (std::size_t i = 0; i < sites->array.size(); ++i) {
        spec.sites.push_back(ParseSite(sites->array[i], i, source));
      }
    }
    if (const Value* events = t.Consume("event")) {
      if (events->kind != Value::Kind::kArray) {
        throw ConfigError(source + ": 'event' must be an array of [[event]] "
                          "tables");
      }
      for (std::size_t i = 0; i < events->array.size(); ++i) {
        spec.events.push_back(ParseEvent(events->array[i], i, source));
      }
    }
    if (const Value* sim = t.Consume("simulator")) {
      ParseSimulator(*sim, spec.sim, source);
    }
    if (const Value* energy = t.Consume("energy")) {
      ParseEnergy(*energy, spec.energy, source);
    }
    t.RejectUnknownKeys();
    spec.Validate();
  } catch (const std::invalid_argument& e) {
    // Semantic defects (unknown profile, bad ranges, overlapping windows)
    // get the file name; structural ones already carry line/column.
    throw ConfigError(source + ": " + e.what());
  }
  return spec;
}

ScenarioSpec ScenarioSpec::ParseFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ConfigError(path + ": cannot open file");
  std::ostringstream buf;
  buf << in.rdbuf();
  return Parse(buf.str(), path);
}

void ScenarioSpec::Validate() const {
  if (name.empty()) {
    throw std::invalid_argument("ScenarioSpec: 'name' must be non-empty");
  }
  if (!std::isfinite(scale) || scale <= 0.0 ||
      scale > synth::kMaxProfileScale) {
    throw std::invalid_argument(
        "ScenarioSpec: scale must be a finite value in (0, " +
        std::to_string(synth::kMaxProfileScale) + "]");
  }
  if (sites.empty()) {
    throw std::invalid_argument(
        "ScenarioSpec: at least one [[site]] is required");
  }
  for (const SiteSpec& s : sites) {
    BaseProfile(s.profile, 1.0);  // throws on unknown base
    if (EffectiveName(s).empty()) {
      throw std::invalid_argument("ScenarioSpec: site name must be non-empty");
    }
  }
  for (std::size_t i = 0; i < sites.size(); ++i) {
    for (std::size_t j = i + 1; j < sites.size(); ++j) {
      if (EffectiveName(sites[i]) == EffectiveName(sites[j])) {
        throw std::invalid_argument("ScenarioSpec: duplicate site name '" +
                                    EffectiveName(sites[i]) + "'");
      }
    }
  }
  for (const EventSpec& e : events) {
    if (IsDemandKind(e.kind)) {
      bool found = false;
      for (const SiteSpec& s : sites) found = found || EffectiveName(s) == e.site;
      if (!found) {
        throw std::invalid_argument("ScenarioSpec: event targets unknown site '" +
                                    e.site + "'");
      }
      if (e.object < 0) {
        throw std::invalid_argument(
            "ScenarioSpec: event 'object' must be >= 0");
      }
    }
    const bool windowed = e.kind != SpecEventKind::kCacheFlush;
    if (e.start_hours < 0.0 ||
        (windowed && e.end_hours <= e.start_hours)) {
      throw std::invalid_argument(
          "ScenarioSpec: event window must satisfy 0 <= start < end (hours)");
    }
    if (e.kind == SpecEventKind::kFlashCrowd &&
        (!(e.share > 0.0) || e.share > 1.0)) {
      throw std::invalid_argument(
          "ScenarioSpec: flash-crowd 'share' must be in (0, 1]");
    }
    if (!IsDemandKind(e.kind) && e.dc < OpEvent::kAllDcs) {
      throw std::invalid_argument("ScenarioSpec: event 'dc' must be >= -1");
    }
  }
  RequireFiniteNonNegative(energy.server_idle_watts, "server_idle_watts");
  RequireFiniteNonNegative(energy.server_busy_watts, "server_busy_watts");
  if (energy.server_busy_watts < energy.server_idle_watts) {
    throw std::invalid_argument(
        "ScenarioSpec: energy.server_busy_watts must be >= "
        "energy.server_idle_watts");
  }
  if (!std::isfinite(energy.server_capacity_gbps) ||
      energy.server_capacity_gbps <= 0.0) {
    throw std::invalid_argument(
        "ScenarioSpec: energy.server_capacity_gbps must be finite and > 0");
  }
  RequireFiniteNonNegative(energy.storage_watts_per_gb, "storage_watts_per_gb");
  RequireFiniteNonNegative(energy.edge_hit_j_per_gb, "edge_hit_j_per_gb");
  RequireFiniteNonNegative(energy.peer_fill_j_per_gb, "peer_fill_j_per_gb");
  RequireFiniteNonNegative(energy.origin_fetch_j_per_gb,
                           "origin_fetch_j_per_gb");
  RequireFiniteNonNegative(energy.push_j_per_gb, "push_j_per_gb");
  RequireFiniteNonNegative(energy.electricity_usd_per_kwh,
                           "electricity_usd_per_kwh");
  RequireFiniteNonNegative(energy.edge_hit_usd_per_gb, "edge_hit_usd_per_gb");
  RequireFiniteNonNegative(energy.peer_fill_usd_per_gb, "peer_fill_usd_per_gb");
  RequireFiniteNonNegative(energy.origin_fetch_usd_per_gb,
                           "origin_fetch_usd_per_gb");
  RequireFiniteNonNegative(energy.push_usd_per_gb, "push_usd_per_gb");
  // Same-kind events on the same target must not overlap: inside the
  // intersection, "the" active share/takedown/failover would be ambiguous.
  for (std::size_t i = 0; i < events.size(); ++i) {
    for (std::size_t j = i + 1; j < events.size(); ++j) {
      const EventSpec& a = events[i];
      const EventSpec& b = events[j];
      if (a.kind != b.kind || a.kind == SpecEventKind::kCacheFlush) continue;
      const bool same_target =
          IsDemandKind(a.kind) ? a.site == b.site : a.dc == b.dc;
      if (same_target && a.start_hours < b.end_hours &&
          b.start_hours < a.end_hours) {
        throw std::invalid_argument(
            std::string("ScenarioSpec: overlapping ") + ToString(a.kind) +
            " event windows" +
            (IsDemandKind(a.kind) ? " for site '" + a.site + "'"
                                  : " for dc " + std::to_string(a.dc)));
      }
    }
  }
}

std::string ScenarioSpec::CanonicalToml() const {
  std::ostringstream out;
  out << "name = " << TomlString(name) << "\n";
  out << "description = " << TomlString(description) << "\n";
  out << "scale = " << TomlFloat(scale) << "\n";
  out << "seed = " << seed << "\n";
  for (const SiteSpec& s : sites) {
    out << "\n[[site]]\n";
    out << "profile = " << TomlString(s.profile) << "\n";
    out << "name = " << TomlString(EffectiveName(s)) << "\n";
    if (s.total_requests) out << "total_requests = " << *s.total_requests << "\n";
    if (s.num_objects) out << "num_objects = " << *s.num_objects << "\n";
    if (s.num_users) out << "num_users = " << *s.num_users << "\n";
    if (s.zipf_s) out << "zipf_s = " << TomlFloat(*s.zipf_s) << "\n";
    if (s.repeat_request_prob) {
      out << "repeat_request_prob = " << TomlFloat(*s.repeat_request_prob)
          << "\n";
    }
    if (s.incognito_rate) {
      out << "incognito_rate = " << TomlFloat(*s.incognito_rate) << "\n";
    }
    if (s.peak_local_hour) {
      out << "peak_local_hour = " << TomlFloat(*s.peak_local_hour) << "\n";
    }
    if (s.diurnal_amplitude) {
      out << "diurnal_amplitude = " << TomlFloat(*s.diurnal_amplitude) << "\n";
    }
    if (s.watch_fraction_mean) {
      out << "watch_fraction_mean = " << TomlFloat(*s.watch_fraction_mean)
          << "\n";
    }
  }
  for (const EventSpec& e : events) {
    out << "\n[[event]]\n";
    out << "kind = " << TomlString(ToString(e.kind)) << "\n";
    switch (e.kind) {
      case SpecEventKind::kFlashCrowd:
        out << "site = " << TomlString(e.site) << "\n";
        out << "start_hours = " << TomlFloat(e.start_hours) << "\n";
        out << "end_hours = " << TomlFloat(e.end_hours) << "\n";
        out << "object = " << e.object << "\n";
        out << "share = " << TomlFloat(e.share) << "\n";
        break;
      case SpecEventKind::kTakedown:
        out << "site = " << TomlString(e.site) << "\n";
        out << "start_hours = " << TomlFloat(e.start_hours) << "\n";
        out << "end_hours = " << TomlFloat(e.end_hours) << "\n";
        out << "object = " << e.object << "\n";
        break;
      case SpecEventKind::kDcOutage:
        out << "start_hours = " << TomlFloat(e.start_hours) << "\n";
        out << "end_hours = " << TomlFloat(e.end_hours) << "\n";
        out << "dc = " << e.dc << "\n";
        break;
      case SpecEventKind::kCacheFlush:
        out << "at_hours = " << TomlFloat(e.start_hours) << "\n";
        out << "dc = " << e.dc << "\n";
        break;
    }
  }
  out << "\n[simulator]\n";
  out << "chunk_bytes = " << sim.chunk_bytes << "\n";
  out << "playback_bytes_per_s = " << TomlFloat(sim.playback_bytes_per_s)
      << "\n";
  out << "browser_capacity_bytes = " << sim.browser_capacity_bytes << "\n";
  out << "browser_freshness_ms = " << sim.browser_freshness_ms << "\n";
  out << "browser_max_object_bytes = " << sim.browser_max_object_bytes << "\n";
  out << "peer_fill = " << (sim.peer_fill ? "true" : "false") << "\n";
  out << "epoch_ms = " << sim.epoch_ms << "\n";
  out << "\n[simulator.push]\n";
  out << "enabled = " << (sim.push.enabled ? "true" : "false") << "\n";
  out << "top_n = " << sim.push.top_n << "\n";
  out << "include_diurnal = " << (sim.push.include_diurnal ? "true" : "false")
      << "\n";
  out << "include_long_lived = "
      << (sim.push.include_long_lived ? "true" : "false") << "\n";
  out << "include_short_lived = "
      << (sim.push.include_short_lived ? "true" : "false") << "\n";
  out << "include_flash = " << (sim.push.include_flash ? "true" : "false")
      << "\n";
  out << "include_outlier = " << (sim.push.include_outlier ? "true" : "false")
      << "\n";
  out << "video_prefix_chunks = " << sim.push.video_prefix_chunks << "\n";
  out << "\n[simulator.topology]\n";
  out << "edge_policy = " << TomlString(ToString(sim.topology.edge_policy))
      << "\n";
  out << "edge_capacity_bytes = " << sim.topology.edge_capacity_bytes << "\n";
  out << "edge_ttl_ms = " << sim.topology.edge_ttl_ms << "\n";
  out << "dcs_per_continent = " << sim.topology.dcs_per_continent << "\n";
  out << "\n[energy]\n";
  out << "server_idle_watts = " << TomlFloat(energy.server_idle_watts) << "\n";
  out << "server_busy_watts = " << TomlFloat(energy.server_busy_watts) << "\n";
  out << "server_capacity_gbps = " << TomlFloat(energy.server_capacity_gbps)
      << "\n";
  out << "storage_watts_per_gb = " << TomlFloat(energy.storage_watts_per_gb)
      << "\n";
  out << "edge_hit_j_per_gb = " << TomlFloat(energy.edge_hit_j_per_gb) << "\n";
  out << "peer_fill_j_per_gb = " << TomlFloat(energy.peer_fill_j_per_gb)
      << "\n";
  out << "origin_fetch_j_per_gb = " << TomlFloat(energy.origin_fetch_j_per_gb)
      << "\n";
  out << "push_j_per_gb = " << TomlFloat(energy.push_j_per_gb) << "\n";
  out << "electricity_usd_per_kwh = "
      << TomlFloat(energy.electricity_usd_per_kwh) << "\n";
  out << "edge_hit_usd_per_gb = " << TomlFloat(energy.edge_hit_usd_per_gb)
      << "\n";
  out << "peer_fill_usd_per_gb = " << TomlFloat(energy.peer_fill_usd_per_gb)
      << "\n";
  out << "origin_fetch_usd_per_gb = "
      << TomlFloat(energy.origin_fetch_usd_per_gb) << "\n";
  out << "push_usd_per_gb = " << TomlFloat(energy.push_usd_per_gb) << "\n";
  return out.str();
}

std::uint64_t ScenarioSpec::Fingerprint() const {
  return util::Fnv1a64(CanonicalToml());
}

std::vector<synth::SiteProfile> ScenarioSpec::BuildProfiles() const {
  Validate();
  std::vector<synth::SiteProfile> profiles;
  profiles.reserve(sites.size());
  for (const SiteSpec& s : sites) {
    synth::SiteProfile p = BaseProfile(s.profile, scale);
    p.name = EffectiveName(s);
    if (s.total_requests) p.total_requests = *s.total_requests;
    if (s.num_objects) p.num_objects = static_cast<std::size_t>(*s.num_objects);
    if (s.num_users) p.num_users = static_cast<std::size_t>(*s.num_users);
    if (s.zipf_s) p.zipf_s = *s.zipf_s;
    if (s.repeat_request_prob) p.repeat_request_prob = *s.repeat_request_prob;
    if (s.incognito_rate) p.incognito_rate = *s.incognito_rate;
    if (s.peak_local_hour) p.peak_local_hour = *s.peak_local_hour;
    if (s.diurnal_amplitude) p.diurnal_amplitude = *s.diurnal_amplitude;
    if (s.watch_fraction_mean) p.watch_fraction_mean = *s.watch_fraction_mean;
    for (const EventSpec& e : events) {
      if (!IsDemandKind(e.kind) || e.site != p.name) continue;
      synth::DemandEvent de;
      de.kind = e.kind == SpecEventKind::kFlashCrowd
                    ? synth::DemandEventKind::kFlashCrowd
                    : synth::DemandEventKind::kTakedown;
      de.start_ms = HoursToMs(e.start_hours);
      de.end_ms = HoursToMs(e.end_hours);
      if (e.object > std::numeric_limits<std::uint32_t>::max()) {
        throw std::invalid_argument(
            "ScenarioSpec: event 'object' exceeds the uint32 index range");
      }
      de.object_index = static_cast<std::uint32_t>(e.object);
      de.share = e.share;
      p.demand_events.push_back(de);
    }
    p.Validate();
    profiles.push_back(std::move(p));
  }
  return profiles;
}

SimulatorConfig ScenarioSpec::BuildConfig() const {
  Validate();
  SimulatorConfig config = sim;
  config.op_events.clear();
  for (const EventSpec& e : events) {
    if (IsDemandKind(e.kind)) continue;
    OpEvent op;
    op.kind = e.kind == SpecEventKind::kDcOutage ? OpEventKind::kDcOutage
                                                 : OpEventKind::kCacheFlush;
    op.start_ms = HoursToMs(e.start_hours);
    op.end_ms = e.kind == SpecEventKind::kDcOutage ? HoursToMs(e.end_hours)
                                                   : op.start_ms;
    if (e.dc > std::numeric_limits<std::int32_t>::max()) {
      throw std::invalid_argument("ScenarioSpec: event 'dc' out of range");
    }
    op.dc = static_cast<std::int32_t>(e.dc);
    config.op_events.push_back(op);
  }
  return config;
}

Scenario::Scenario(const ScenarioSpec& spec, int threads)
    : Scenario(spec.BuildProfiles(), spec.BuildConfig(), spec.seed, threads) {}

ScenarioStreamResult StreamScenario(const ScenarioSpec& spec,
                                    trace::RecordSink& sink, int threads) {
  return StreamScenario(spec, sink, threads, CheckpointOptions{});
}

ScenarioStreamResult StreamScenario(const ScenarioSpec& spec,
                                    trace::RecordSink& sink, int threads,
                                    const CheckpointOptions& ckpt_options) {
  return StreamScenario(spec, spec.BuildConfig(), sink, threads, ckpt_options);
}

ScenarioStreamResult StreamScenario(const ScenarioSpec& spec,
                                    const SimulatorConfig& config,
                                    trace::RecordSink& sink, int threads,
                                    const CheckpointOptions& ckpt_options) {
  const std::uint64_t fp = spec.Fingerprint();
  CheckpointOptions opts = ckpt_options;
  opts.save_extra = [fp, &spec,
                     saved = ckpt_options.save_extra](ckpt::Writer& w) {
    w.BeginSection("scenario.spec", kScenarioSpecVersion);
    w.WriteU64(fp);
    w.WriteString(spec.name);
    w.EndSection();
    if (saved) saved(w);
  };
  if (ckpt_options.resume != nullptr) {
    // Sections are name-addressed, so the spec check runs before any other
    // state is touched regardless of where the section sits in the file.
    ckpt::Reader& r = *ckpt_options.resume;
    if (!r.HasSection("scenario.spec")) {
      throw std::runtime_error(
          "ckpt: checkpoint was not written by a spec-driven run (no "
          "scenario.spec section); cannot resume it against a spec");
    }
    r.BeginSection("scenario.spec", kScenarioSpecVersion);
    const std::uint64_t saved_fp = r.ReadU64();
    const std::string saved_name = r.ReadString();
    r.EndSection();
    if (saved_fp != fp) {
      throw std::runtime_error(
          "ckpt: scenario spec fingerprint mismatch (checkpoint was taken "
          "with spec '" + saved_name +
          "', and the spec or its overrides changed since)");
    }
  }
  return StreamScenario(spec.BuildProfiles(), config, spec.seed, sink, threads,
                        opts);
}

}  // namespace atlas::cdn
