// Concrete cache eviction policies.
//
//  - LruCache:    classic least-recently-used; the baseline edge policy.
//  - FifoCache:   insertion-order eviction; no recency update on hit.
//  - LfuCache:    least-frequently-used with LRU tie-breaking within a
//                 frequency bucket (in-cache frequency, resets on eviction).
//  - GdsfCache:   Greedy-Dual-Size-Frequency — priority L + freq/size;
//                 strongly favors small objects, the classic web-cache
//                 answer to mixed image/video workloads (§V's "separate
//                 platforms for small and large objects" intuition).
//  - S4LruCache:  four-segment segmented LRU (Facebook photo-cache paper),
//                 scan-resistant.
//  - TtlLruCache: LRU plus per-entry freshness lifetime; stale entries
//                 count as misses (models the revalidation schedules the
//                 paper proposes for diurnal vs. short-lived objects).
#pragma once

#include <array>
#include <cstdint>
#include <list>
#include <map>
#include <queue>
#include <unordered_map>
#include <vector>

#include "cdn/cache.h"

namespace atlas::cdn {

class LruCache : public Cache {
 public:
  explicit LruCache(std::uint64_t capacity_bytes) : Cache(capacity_bytes) {}

  bool Contains(std::uint64_t key) const override {
    return entries_.count(key) > 0;
  }
  void CollectKeys(std::vector<std::uint64_t>& out) const override {
    // atlas-lint: allow(unordered-iter) snapshot is sorted by the caller
    for (const auto& kv : entries_) out.push_back(kv.first);
  }
  std::string name() const override { return "LRU"; }

 protected:
  bool Lookup(std::uint64_t key, std::int64_t now_ms) override;
  void Insert(std::uint64_t key, std::uint64_t size_bytes,
              std::int64_t now_ms) override;
  void SavePolicyState(ckpt::Writer& w) const override;
  void RestorePolicyState(ckpt::Reader& r) override;

 private:
  struct Entry {
    std::uint64_t size;
    std::list<std::uint64_t>::iterator lru_it;
  };
  bool EvictOne();  // false when there is nothing left to evict

  std::list<std::uint64_t> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, Entry> entries_;
};

class FifoCache : public Cache {
 public:
  explicit FifoCache(std::uint64_t capacity_bytes) : Cache(capacity_bytes) {}

  bool Contains(std::uint64_t key) const override {
    return entries_.count(key) > 0;
  }
  void CollectKeys(std::vector<std::uint64_t>& out) const override {
    // atlas-lint: allow(unordered-iter) snapshot is sorted by the caller
    for (const auto& kv : entries_) out.push_back(kv.first);
  }
  std::string name() const override { return "FIFO"; }

 protected:
  bool Lookup(std::uint64_t key, std::int64_t now_ms) override;
  void Insert(std::uint64_t key, std::uint64_t size_bytes,
              std::int64_t now_ms) override;
  void SavePolicyState(ckpt::Writer& w) const override;
  void RestorePolicyState(ckpt::Reader& r) override;

 private:
  bool EvictOne();  // false when there is nothing left to evict

  std::list<std::uint64_t> queue_;  // front = oldest
  std::unordered_map<std::uint64_t, std::uint64_t> entries_;  // key -> size
};

class LfuCache : public Cache {
 public:
  explicit LfuCache(std::uint64_t capacity_bytes) : Cache(capacity_bytes) {}

  bool Contains(std::uint64_t key) const override {
    return entries_.count(key) > 0;
  }
  void CollectKeys(std::vector<std::uint64_t>& out) const override {
    // atlas-lint: allow(unordered-iter) snapshot is sorted by the caller
    for (const auto& kv : entries_) out.push_back(kv.first);
  }
  std::string name() const override { return "LFU"; }

 protected:
  bool Lookup(std::uint64_t key, std::int64_t now_ms) override;
  void Insert(std::uint64_t key, std::uint64_t size_bytes,
              std::int64_t now_ms) override;
  void SavePolicyState(ckpt::Writer& w) const override;
  void RestorePolicyState(ckpt::Reader& r) override;

 private:
  struct Entry {
    std::uint64_t size;
    std::uint64_t freq;
    std::list<std::uint64_t>::iterator bucket_it;
  };
  void Touch(std::uint64_t key, Entry& entry);
  bool EvictOne();  // false when there is nothing left to evict

  // freq -> LRU list of keys at that frequency (front = most recent).
  std::map<std::uint64_t, std::list<std::uint64_t>> buckets_;
  std::unordered_map<std::uint64_t, Entry> entries_;
};

class GdsfCache : public Cache {
 public:
  explicit GdsfCache(std::uint64_t capacity_bytes) : Cache(capacity_bytes) {}

  bool Contains(std::uint64_t key) const override {
    return entries_.count(key) > 0;
  }
  void CollectKeys(std::vector<std::uint64_t>& out) const override {
    // atlas-lint: allow(unordered-iter) snapshot is sorted by the caller
    for (const auto& kv : entries_) out.push_back(kv.first);
  }
  std::string name() const override { return "GDSF"; }
  // Lazy-invalidation heap size, stale entries included. Compaction keeps
  // this bounded by a small multiple of the live entry count (exposed so
  // tests can assert the bound).
  std::size_t heap_size() const { return heap_.size(); }

 protected:
  bool Lookup(std::uint64_t key, std::int64_t now_ms) override;
  void Insert(std::uint64_t key, std::uint64_t size_bytes,
              std::int64_t now_ms) override;
  void SavePolicyState(ckpt::Writer& w) const override;
  void RestorePolicyState(ckpt::Reader& r) override;

 private:
  struct Entry {
    std::uint64_t size;
    std::uint64_t freq;
    double priority;
  };
  struct HeapItem {
    double priority;
    std::uint64_t key;
    // Total order (priority, then key): with no distinct ties, the pop
    // sequence is a pure function of the heap's contents, so equal-priority
    // evictions never depend on heap layout or hash-table iteration order.
    bool operator>(const HeapItem& other) const {
      if (priority != other.priority) return priority > other.priority;
      return key > other.key;
    }
  };
  double PriorityOf(const Entry& e) const;
  void PushHeap(std::uint64_t key, const Entry& e);
  bool EvictOne();  // false when there is nothing left to evict
  // Rebuilds the heap from live entries when stale items dominate; without
  // it every hit leaves a dead heap item behind and the heap grows with the
  // access count instead of the resident set.
  void CompactHeap();

  double inflation_ = 0.0;  // "L": priority of the last evicted entry
  std::unordered_map<std::uint64_t, Entry> entries_;
  // Min-heap with lazy invalidation (stale priorities are skipped on pop).
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap_;
};

class S4LruCache : public Cache {
 public:
  explicit S4LruCache(std::uint64_t capacity_bytes);

  bool Contains(std::uint64_t key) const override {
    return entries_.count(key) > 0;
  }
  void CollectKeys(std::vector<std::uint64_t>& out) const override {
    // atlas-lint: allow(unordered-iter) snapshot is sorted by the caller
    for (const auto& kv : entries_) out.push_back(kv.first);
  }
  std::string name() const override { return "S4LRU"; }

 protected:
  bool Lookup(std::uint64_t key, std::int64_t now_ms) override;
  void Insert(std::uint64_t key, std::uint64_t size_bytes,
              std::int64_t now_ms) override;
  void SavePolicyState(ckpt::Writer& w) const override;
  void RestorePolicyState(ckpt::Reader& r) override;

 private:
  static constexpr int kSegments = 4;
  struct Entry {
    std::uint64_t size;
    int segment;
    std::list<std::uint64_t>::iterator it;
  };
  // Moves overflowing tails down; evicts from segment 0.
  void Rebalance();

  std::uint64_t segment_capacity_;
  std::array<std::list<std::uint64_t>, kSegments> lists_;  // front = recent
  std::array<std::uint64_t, kSegments> seg_bytes_{};
  std::unordered_map<std::uint64_t, Entry> entries_;
};

class TtlLruCache : public Cache {
 public:
  TtlLruCache(std::uint64_t capacity_bytes, std::int64_t ttl_ms);

  bool Contains(std::uint64_t key) const override {
    return entries_.count(key) > 0;
  }
  void CollectKeys(std::vector<std::uint64_t>& out) const override {
    // atlas-lint: allow(unordered-iter) snapshot is sorted by the caller
    for (const auto& kv : entries_) out.push_back(kv.first);
  }
  std::string name() const override { return "TTL-LRU"; }
  std::int64_t ttl_ms() const { return ttl_ms_; }

 protected:
  bool Lookup(std::uint64_t key, std::int64_t now_ms) override;
  void Insert(std::uint64_t key, std::uint64_t size_bytes,
              std::int64_t now_ms) override;
  void SavePolicyState(ckpt::Writer& w) const override;
  void RestorePolicyState(ckpt::Reader& r) override;

 private:
  struct Entry {
    std::uint64_t size;
    std::int64_t expires_ms;
    std::list<std::uint64_t>::iterator lru_it;
  };
  void Erase(std::uint64_t key);
  bool EvictOne();  // false when there is nothing left to evict

  std::int64_t ttl_ms_;
  std::list<std::uint64_t> lru_;
  std::unordered_map<std::uint64_t, Entry> entries_;
};

}  // namespace atlas::cdn
