#include "cdn/scenario.h"

#include <cmath>
#include <unordered_map>
#include <utility>

#include "cdn/engine.h"
#include "util/rng.h"

namespace atlas::cdn {
namespace {

// Routes each merged record back to its site's buffer. Records arrive in
// merged order, and the merged order restricted to one site is that site's
// own time-sorted order, so the per-site buffers come out exactly as the
// legacy per-site simulations produced them.
class DemuxSink final : public trace::RecordSink {
 public:
  explicit DemuxSink(std::vector<SiteRun>& runs) {
    for (auto& run : runs) {
      by_publisher_.emplace(run.publisher_id, &run.result.trace);
    }
  }

  void Write(std::span<const trace::LogRecord> records) override {
    for (const auto& rec : records) {
      by_publisher_.at(rec.publisher_id)->Add(rec);
    }
  }

 private:
  std::unordered_map<std::uint32_t, trace::TraceBuffer*> by_publisher_;
};

std::uint64_t LogicalBudget(const synth::WorkloadGenerator& gen,
                            const synth::SiteProfile& profile,
                            const SimulatorConfig& config) {
  const double inflation = gen.EstimateRecordsPerRequest(config.chunk_bytes);
  return static_cast<std::uint64_t>(std::max(
      1.0, static_cast<double>(profile.total_requests) / inflation));
}

}  // namespace

Scenario::Scenario(std::vector<synth::SiteProfile> profiles,
                   const SimulatorConfig& config, std::uint64_t seed,
                   int threads) {
  util::Rng seeder(seed);
  std::vector<std::vector<synth::RequestEvent>> events;
  events.reserve(profiles.size());
  for (auto& profile : profiles) {
    const std::uint32_t id = registry_.Register(profile.name, profile.kind);
    SiteRun run;
    run.profile = profile;
    run.publisher_id = id;
    const std::uint64_t site_seed = seeder.Next();
    run.generator =
        std::make_unique<synth::WorkloadGenerator>(profile, site_seed);
    events.push_back(
        run.generator->Generate(LogicalBudget(*run.generator, profile, config)));
    run.result.trace.Reserve(events.back().size() + events.back().size() / 2);
    runs_.push_back(std::move(run));
  }

  std::vector<SiteJob> jobs;
  jobs.reserve(runs_.size());
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    jobs.push_back(
        {runs_[i].generator.get(), &events[i], runs_[i].publisher_id});
  }
  DemuxSink sink(runs_);
  auto results = RunSharded(jobs, config, sink, threads);
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    static_cast<SimulatorResult&>(runs_[i].result) = std::move(results[i]);
  }
}

Scenario Scenario::PaperStudy(double scale, const SimulatorConfig& config,
                              std::uint64_t seed, int threads) {
  return Scenario(synth::SiteProfile::PaperAdultSites(scale), config, seed,
                  threads);
}

void Scenario::StreamMerged(trace::RecordSink& sink) const {
  MergedTraceSource source(*this);
  for (auto chunk = source.NextChunk(); !chunk.empty();
       chunk = source.NextChunk()) {
    sink.Write(chunk);
  }
}

SimulatorResult Scenario::Totals() const {
  SimulatorResult totals;
  for (const auto& run : runs_) totals.Merge(run.result);
  return totals;
}

// atlas-lint: allow(tracebuffer-in-cdn) legacy in-memory convenience
trace::TraceBuffer Scenario::MergedTrace() const {
  trace::TraceBuffer merged;  // atlas-lint: allow(tracebuffer-in-cdn) (above)
  std::size_t total = 0;
  for (const auto& run : runs_) total += run.result.trace.size();
  merged.Reserve(total);
  trace::BufferSink sink(merged);
  StreamMerged(sink);
  return merged;
}

MergedTraceSource::MergedTraceSource(const Scenario& scenario) {
  cursors_.reserve(scenario.site_count());
  for (const auto& run : scenario.runs()) {
    cursors_.push_back({&run.result.trace, 0});
  }
  chunk_.reserve(trace::kDefaultBlockRecords);
}

std::span<const trace::LogRecord> MergedTraceSource::NextChunk() {
  chunk_.clear();
  while (chunk_.size() < trace::kDefaultBlockRecords) {
    // Pick the earliest record; ties go to the lowest site index, matching
    // the stable concatenate-then-sort order of the legacy merge.
    const trace::LogRecord* best = nullptr;
    std::size_t best_site = 0;
    for (std::size_t s = 0; s < cursors_.size(); ++s) {
      const Cursor& cur = cursors_[s];
      if (cur.pos >= cur.buf->size()) continue;
      const trace::LogRecord& rec = cur.buf->records()[cur.pos];
      if (best == nullptr || rec.timestamp_ms < best->timestamp_ms) {
        best = &rec;
        best_site = s;
      }
    }
    if (best == nullptr) break;
    chunk_.push_back(*best);
    ++cursors_[best_site].pos;
  }
  return chunk_;
}

ScenarioStreamResult StreamScenario(std::vector<synth::SiteProfile> profiles,
                                    const SimulatorConfig& config,
                                    std::uint64_t seed,
                                    trace::RecordSink& sink, int threads) {
  ScenarioStreamResult out;
  util::Rng seeder(seed);
  std::vector<std::unique_ptr<synth::WorkloadGenerator>> generators;
  std::vector<std::vector<synth::RequestEvent>> events;
  std::vector<SiteJob> jobs;
  generators.reserve(profiles.size());
  events.reserve(profiles.size());
  jobs.reserve(profiles.size());
  for (auto& profile : profiles) {
    const std::uint32_t id = out.registry.Register(profile.name, profile.kind);
    const std::uint64_t site_seed = seeder.Next();
    generators.push_back(
        std::make_unique<synth::WorkloadGenerator>(profile, site_seed));
    events.push_back(generators.back()->Generate(
        LogicalBudget(*generators.back(), profile, config)));
    jobs.push_back({generators.back().get(), &events.back(), id});
  }
  out.site_results = RunSharded(jobs, config, sink, threads);
  for (const auto& r : out.site_results) out.totals.Merge(r);
  return out;
}

}  // namespace atlas::cdn
