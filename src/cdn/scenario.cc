#include "cdn/scenario.h"

#include <cmath>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

#include "cdn/engine.h"
#include "util/rng.h"

namespace atlas::cdn {
namespace {

// Routes each merged record back to its site's buffer. Records arrive in
// merged order, and the merged order restricted to one site is that site's
// own time-sorted order, so the per-site buffers come out exactly as the
// legacy per-site simulations produced them.
class DemuxSink final : public trace::RecordSink {
 public:
  explicit DemuxSink(std::vector<SiteRun>& runs) {
    for (auto& run : runs) {
      by_publisher_.emplace(run.publisher_id, &run.result.trace);
    }
  }

  void Write(std::span<const trace::LogRecord> records) override {
    for (const auto& rec : records) {
      by_publisher_.at(rec.publisher_id)->Add(rec);
    }
  }

 private:
  std::unordered_map<std::uint32_t, trace::TraceBuffer*> by_publisher_;
};

std::uint64_t LogicalBudget(const synth::WorkloadGenerator& gen,
                            const synth::SiteProfile& profile,
                            const SimulatorConfig& config) {
  const double inflation = gen.EstimateRecordsPerRequest(config.chunk_bytes);
  return static_cast<std::uint64_t>(std::max(
      1.0, static_cast<double>(profile.total_requests) / inflation));
}

// Checkpoint section layouts owned by the scenario layer.
constexpr std::uint32_t kScenarioMetaVersion = 1;
constexpr std::uint32_t kScenarioGeneratorVersion = 1;
constexpr std::uint32_t kMergeCursorStateVersion = 1;

std::string GeneratorSectionName(std::size_t i) {
  return "synth.generator." + std::to_string(i);
}

// Site names key publisher-registry entries, spec event routing, and
// analysis breakdowns; two sites sharing one is always a config bug. The
// registry would also throw, but without saying which layer misconfigured
// what — fail here with the scenario's own words.
void RejectDuplicateSiteNames(const std::vector<synth::SiteProfile>& profiles) {
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    for (std::size_t j = i + 1; j < profiles.size(); ++j) {
      if (profiles[i].name == profiles[j].name) {
        throw std::invalid_argument("Scenario: duplicate site name '" +
                                    profiles[i].name + "'");
      }
    }
  }
}

}  // namespace

Scenario::Scenario(std::vector<synth::SiteProfile> profiles,
                   const SimulatorConfig& config, std::uint64_t seed,
                   int threads) {
  RejectDuplicateSiteNames(profiles);
  util::Rng seeder(seed);
  std::vector<std::vector<synth::RequestEvent>> events;
  events.reserve(profiles.size());
  for (auto& profile : profiles) {
    const std::uint32_t id = registry_.Register(profile.name, profile.kind);
    SiteRun run;
    run.profile = profile;
    run.publisher_id = id;
    const std::uint64_t site_seed = seeder.Next();
    run.generator =
        std::make_unique<synth::WorkloadGenerator>(profile, site_seed);
    events.push_back(
        run.generator->Generate(LogicalBudget(*run.generator, profile, config)));
    run.result.trace.Reserve(events.back().size() + events.back().size() / 2);
    runs_.push_back(std::move(run));
  }

  std::vector<SiteJob> jobs;
  jobs.reserve(runs_.size());
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    jobs.push_back(
        {runs_[i].generator.get(), &events[i], runs_[i].publisher_id});
  }
  DemuxSink sink(runs_);
  auto results = RunSharded(jobs, config, sink, threads);
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    static_cast<SimulatorResult&>(runs_[i].result) = std::move(results[i]);
  }
}

Scenario Scenario::PaperStudy(double scale, const SimulatorConfig& config,
                              std::uint64_t seed, int threads) {
  return Scenario(synth::SiteProfile::PaperAdultSites(scale), config, seed,
                  threads);
}

void Scenario::StreamMerged(trace::RecordSink& sink) const {
  MergedTraceSource source(*this);
  for (auto chunk = source.NextChunk(); !chunk.empty();
       chunk = source.NextChunk()) {
    sink.Write(chunk);
  }
}

SimulatorResult Scenario::Totals() const {
  SimulatorResult totals;
  for (const auto& run : runs_) totals.Merge(run.result);
  return totals;
}

MergedTraceSource::MergedTraceSource(const Scenario& scenario) {
  cursors_.reserve(scenario.site_count());
  for (const auto& run : scenario.runs()) {
    cursors_.push_back({&run.result.trace, 0});
  }
  chunk_.reserve(trace::kDefaultBlockRecords);
}

std::span<const trace::LogRecord> MergedTraceSource::NextChunk() {
  chunk_.clear();
  while (chunk_.size() < trace::kDefaultBlockRecords) {
    // Pick the earliest record; ties go to the lowest site index, matching
    // the stable concatenate-then-sort order of the legacy merge.
    const trace::LogRecord* best = nullptr;
    std::size_t best_site = 0;
    for (std::size_t s = 0; s < cursors_.size(); ++s) {
      const Cursor& cur = cursors_[s];
      if (cur.pos >= cur.buf->size()) continue;
      const trace::LogRecord& rec = cur.buf->records()[cur.pos];
      if (best == nullptr || rec.timestamp_ms < best->timestamp_ms) {
        best = &rec;
        best_site = s;
      }
    }
    if (best == nullptr) break;
    chunk_.push_back(*best);
    ++cursors_[best_site].pos;
  }
  return chunk_;
}

void MergedTraceSource::SaveState(ckpt::Writer& w) const {
  w.WriteVersion(kMergeCursorStateVersion);
  w.WriteU64(static_cast<std::uint64_t>(cursors_.size()));
  for (const Cursor& cur : cursors_) {
    w.WriteU64(static_cast<std::uint64_t>(cur.pos));
  }
}

void MergedTraceSource::RestoreState(ckpt::Reader& r) {
  r.ExpectVersion("merged trace cursor", kMergeCursorStateVersion);
  const std::uint64_t n = r.ReadU64();
  if (n != cursors_.size()) {
    throw std::runtime_error("ckpt: merged trace cursor count mismatch");
  }
  for (Cursor& cur : cursors_) {
    cur.pos = static_cast<std::size_t>(r.ReadU64());
    if (cur.pos > cur.buf->size()) {
      throw std::runtime_error("ckpt: merged trace cursor out of range");
    }
  }
}

ScenarioStreamResult StreamScenario(std::vector<synth::SiteProfile> profiles,
                                    const SimulatorConfig& config,
                                    std::uint64_t seed,
                                    trace::RecordSink& sink, int threads) {
  return StreamScenario(std::move(profiles), config, seed, sink, threads,
                        CheckpointOptions{});
}

ScenarioStreamResult StreamScenario(std::vector<synth::SiteProfile> profiles,
                                    const SimulatorConfig& config,
                                    std::uint64_t seed, trace::RecordSink& sink,
                                    int threads,
                                    const CheckpointOptions& ckpt_options) {
  RejectDuplicateSiteNames(profiles);
  ScenarioStreamResult out;
  util::Rng seeder(seed);
  std::vector<std::unique_ptr<synth::WorkloadGenerator>> generators;
  std::vector<std::vector<synth::RequestEvent>> events;
  std::vector<SiteJob> jobs;
  generators.reserve(profiles.size());
  events.reserve(profiles.size());
  jobs.reserve(profiles.size());
  for (auto& profile : profiles) {
    const std::uint32_t id = out.registry.Register(profile.name, profile.kind);
    const std::uint64_t site_seed = seeder.Next();
    generators.push_back(
        std::make_unique<synth::WorkloadGenerator>(profile, site_seed));
    events.push_back(generators.back()->Generate(
        LogicalBudget(*generators.back(), profile, config)));
    jobs.push_back({generators.back().get(), &events.back(), id});
  }

  // Layer the scenario's own sections onto every engine snapshot: the seed
  // plan (so a resume against the wrong seed fails loud, not with a
  // fingerprint puzzle) and each generator's RNG position.
  CheckpointOptions opts = ckpt_options;
  opts.save_extra = [&](ckpt::Writer& w) {
    w.BeginSection("scenario.meta", kScenarioMetaVersion);
    w.WriteU64(seed);
    w.WriteU64(static_cast<std::uint64_t>(generators.size()));
    w.EndSection();
    for (std::size_t i = 0; i < generators.size(); ++i) {
      w.BeginSection(GeneratorSectionName(i), kScenarioGeneratorVersion);
      generators[i]->SaveState(w);
      w.EndSection();
    }
    if (ckpt_options.save_extra) ckpt_options.save_extra(w);
  };
  if (ckpt_options.resume != nullptr) {
    ckpt::Reader& r = *ckpt_options.resume;
    r.BeginSection("scenario.meta", kScenarioMetaVersion);
    const std::uint64_t saved_seed = r.ReadU64();
    const std::uint64_t saved_sites = r.ReadU64();
    r.EndSection();
    if (saved_seed != seed || saved_sites != generators.size()) {
      throw std::runtime_error(
          "ckpt: scenario mismatch (checkpoint has seed " +
          std::to_string(saved_seed) + " with " +
          std::to_string(saved_sites) + " sites, this run asks for seed " +
          std::to_string(seed) + " with " +
          std::to_string(generators.size()) + ")");
    }
    for (std::size_t i = 0; i < generators.size(); ++i) {
      r.BeginSection(GeneratorSectionName(i), kScenarioGeneratorVersion);
      generators[i]->RestoreState(r);
      r.EndSection();
    }
  }

  out.site_results = RunSharded(jobs, config, sink, threads, opts);
  for (const auto& r : out.site_results) out.totals.Merge(r);
  return out;
}

}  // namespace atlas::cdn
