#include "cdn/scenario.h"

#include <cmath>

#include "util/rng.h"

namespace atlas::cdn {

Scenario::Scenario(std::vector<synth::SiteProfile> profiles,
                   const SimulatorConfig& config, std::uint64_t seed) {
  util::Rng seeder(seed);
  for (auto& profile : profiles) {
    const std::uint32_t id = registry_.Register(profile.name, profile.kind);
    SiteRun run;
    run.profile = profile;
    run.publisher_id = id;
    const std::uint64_t site_seed = seeder.Next();
    run.generator =
        std::make_unique<synth::WorkloadGenerator>(profile, site_seed);
    const double inflation =
        run.generator->EstimateRecordsPerRequest(config.chunk_bytes);
    const auto logical = static_cast<std::uint64_t>(std::max(
        1.0, static_cast<double>(profile.total_requests) / inflation));
    const auto events = run.generator->Generate(logical);
    Simulator sim(config, id);
    run.result = sim.Run(*run.generator, events);
    runs_.push_back(std::move(run));
  }
}

Scenario Scenario::PaperStudy(double scale, const SimulatorConfig& config,
                              std::uint64_t seed) {
  return Scenario(synth::SiteProfile::PaperAdultSites(scale), config, seed);
}

trace::TraceBuffer Scenario::MergedTrace() const {
  trace::TraceBuffer merged;
  std::size_t total = 0;
  for (const auto& run : runs_) total += run.result.trace.size();
  merged.Reserve(total);
  for (const auto& run : runs_) merged.Append(run.result.trace);
  merged.SortByTime();
  return merged;
}

}  // namespace atlas::cdn
