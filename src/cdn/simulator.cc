#include "cdn/simulator.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>
#include <utility>

#include "cdn/engine.h"

namespace atlas::cdn {

void SimulatorResult::Merge(const SimulatorResult& other) {
  edge_stats.Merge(other.edge_stats);
  if (per_dc_stats.size() < other.per_dc_stats.size()) {
    per_dc_stats.resize(other.per_dc_stats.size());
  }
  for (std::size_t i = 0; i < other.per_dc_stats.size(); ++i) {
    per_dc_stats[i].Merge(other.per_dc_stats[i]);
  }
  origin.fetches += other.origin.fetches;
  origin.bytes += other.origin.bytes;
  records += other.records;
  peer_fetches += other.peer_fetches;
  peer_bytes += other.peer_bytes;
  browser_fresh_hits += other.browser_fresh_hits;
  revalidations += other.revalidations;
  pushed_objects += other.pushed_objects;
  pushed_bytes += other.pushed_bytes;
}

Simulator::Simulator(const SimulatorConfig& config, std::uint32_t publisher_id)
    : config_(config), publisher_id_(publisher_id) {
  if (config.playback_bytes_per_s <= 0.0) {
    throw std::invalid_argument("Simulator: playback rate must be > 0");
  }
}

SimulatorResult Simulator::Run(const synth::WorkloadGenerator& gen,
                               const std::vector<synth::RequestEvent>& events,
                               trace::RecordSink& sink, int threads) {
  const SiteJob job{&gen, &events, publisher_id_};
  auto results = RunSharded(std::span<const SiteJob>(&job, 1), config_, sink,
                            threads);
  return std::move(results.front());
}

SiteSimulation Simulator::Run(const synth::WorkloadGenerator& gen,
                              const std::vector<synth::RequestEvent>& events) {
  SiteSimulation out;
  out.trace.Reserve(events.size() + events.size() / 2);
  trace::BufferSink sink(out.trace);
  static_cast<SimulatorResult&>(out) = Run(gen, events, sink);
  return out;
}

SiteSimulation SimulateSite(const synth::SiteProfile& profile,
                            std::uint32_t publisher_id,
                            const SimulatorConfig& config, std::uint64_t seed) {
  synth::WorkloadGenerator gen(profile, seed);
  const double inflation = gen.EstimateRecordsPerRequest(config.chunk_bytes);
  const auto logical = static_cast<std::uint64_t>(std::max(
      1.0, static_cast<double>(profile.total_requests) / inflation));
  const auto events = gen.Generate(logical);
  Simulator sim(config, publisher_id);
  return sim.Run(gen, events);
}

SimulatorResult SimulateSiteTo(const synth::SiteProfile& profile,
                               std::uint32_t publisher_id,
                               const SimulatorConfig& config,
                               std::uint64_t seed, trace::RecordSink& sink,
                               int threads) {
  synth::WorkloadGenerator gen(profile, seed);
  const double inflation = gen.EstimateRecordsPerRequest(config.chunk_bytes);
  const auto logical = static_cast<std::uint64_t>(std::max(
      1.0, static_cast<double>(profile.total_requests) / inflation));
  const auto events = gen.Generate(logical);
  Simulator sim(config, publisher_id);
  return sim.Run(gen, events, sink, threads);
}

}  // namespace atlas::cdn
