#include "cdn/simulator.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>
#include <utility>

#include "cdn/engine.h"

namespace atlas::cdn {

void SimulatorResult::Merge(const SimulatorResult& other) {
  edge_stats.Merge(other.edge_stats);
  if (per_dc_stats.size() < other.per_dc_stats.size()) {
    per_dc_stats.resize(other.per_dc_stats.size());
  }
  for (std::size_t i = 0; i < other.per_dc_stats.size(); ++i) {
    per_dc_stats[i].Merge(other.per_dc_stats[i]);
  }
  origin.fetches += other.origin.fetches;
  origin.bytes += other.origin.bytes;
  records += other.records;
  peer_fetches += other.peer_fetches;
  peer_bytes += other.peer_bytes;
  browser_fresh_hits += other.browser_fresh_hits;
  revalidations += other.revalidations;
  pushed_objects += other.pushed_objects;
  pushed_bytes += other.pushed_bytes;
}

namespace {

constexpr std::uint32_t kSimulatorResultStateVersion = 1;

void SaveCacheStats(ckpt::Writer& w, const CacheStats& s) {
  w.WriteU64(s.hits);
  w.WriteU64(s.misses);
  w.WriteU64(s.inserts);
  w.WriteU64(s.evictions);
  w.WriteU64(s.rejected);
  w.WriteU64(s.hit_bytes);
  w.WriteU64(s.miss_bytes);
}

CacheStats ReadCacheStats(ckpt::Reader& r) {
  CacheStats s;
  s.hits = r.ReadU64();
  s.misses = r.ReadU64();
  s.inserts = r.ReadU64();
  s.evictions = r.ReadU64();
  s.rejected = r.ReadU64();
  s.hit_bytes = r.ReadU64();
  s.miss_bytes = r.ReadU64();
  return s;
}

}  // namespace

void SimulatorResult::SaveState(ckpt::Writer& w) const {
  w.WriteVersion(kSimulatorResultStateVersion);
  SaveCacheStats(w, edge_stats);
  w.WriteU64(static_cast<std::uint64_t>(per_dc_stats.size()));
  for (const CacheStats& s : per_dc_stats) SaveCacheStats(w, s);
  w.WriteU64(origin.fetches);
  w.WriteU64(origin.bytes);
  w.WriteU64(records);
  w.WriteU64(peer_fetches);
  w.WriteU64(peer_bytes);
  w.WriteU64(browser_fresh_hits);
  w.WriteU64(revalidations);
  w.WriteU64(pushed_objects);
  w.WriteU64(pushed_bytes);
}

void SimulatorResult::RestoreState(ckpt::Reader& r) {
  r.ExpectVersion("simulator result", kSimulatorResultStateVersion);
  edge_stats = ReadCacheStats(r);
  per_dc_stats.clear();
  const std::uint64_t ndc = r.ReadU64();
  per_dc_stats.reserve(static_cast<std::size_t>(ndc));
  for (std::uint64_t i = 0; i < ndc; ++i) {
    per_dc_stats.push_back(ReadCacheStats(r));
  }
  origin.fetches = r.ReadU64();
  origin.bytes = r.ReadU64();
  records = r.ReadU64();
  peer_fetches = r.ReadU64();
  peer_bytes = r.ReadU64();
  browser_fresh_hits = r.ReadU64();
  revalidations = r.ReadU64();
  pushed_objects = r.ReadU64();
  pushed_bytes = r.ReadU64();
}

Simulator::Simulator(const SimulatorConfig& config, std::uint32_t publisher_id)
    : config_(config), publisher_id_(publisher_id) {
  if (config.playback_bytes_per_s <= 0.0) {
    throw std::invalid_argument("Simulator: playback rate must be > 0");
  }
}

SimulatorResult Simulator::Run(const synth::WorkloadGenerator& gen,
                               const std::vector<synth::RequestEvent>& events,
                               trace::RecordSink& sink, int threads) {
  const SiteJob job{&gen, &events, publisher_id_};
  auto results = RunSharded(std::span<const SiteJob>(&job, 1), config_, sink,
                            threads);
  return std::move(results.front());
}

SiteSimulation Simulator::Run(const synth::WorkloadGenerator& gen,
                              const std::vector<synth::RequestEvent>& events) {
  SiteSimulation out;
  out.trace.Reserve(events.size() + events.size() / 2);
  trace::BufferSink sink(out.trace);
  static_cast<SimulatorResult&>(out) = Run(gen, events, sink);
  return out;
}

SiteSimulation SimulateSite(const synth::SiteProfile& profile,
                            std::uint32_t publisher_id,
                            const SimulatorConfig& config, std::uint64_t seed) {
  synth::WorkloadGenerator gen(profile, seed);
  const double inflation = gen.EstimateRecordsPerRequest(config.chunk_bytes);
  const auto logical = static_cast<std::uint64_t>(std::max(
      1.0, static_cast<double>(profile.total_requests) / inflation));
  const auto events = gen.Generate(logical);
  Simulator sim(config, publisher_id);
  return sim.Run(gen, events);
}

SimulatorResult SimulateSiteTo(const synth::SiteProfile& profile,
                               std::uint32_t publisher_id,
                               const SimulatorConfig& config,
                               std::uint64_t seed, trace::RecordSink& sink,
                               int threads) {
  synth::WorkloadGenerator gen(profile, seed);
  const double inflation = gen.EstimateRecordsPerRequest(config.chunk_bytes);
  const auto logical = static_cast<std::uint64_t>(std::max(
      1.0, static_cast<double>(profile.total_requests) / inflation));
  const auto events = gen.Generate(logical);
  Simulator sim(config, publisher_id);
  return sim.Run(gen, events, sink, threads);
}

}  // namespace atlas::cdn
