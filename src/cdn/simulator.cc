#include "cdn/simulator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "trace/content_class.h"
#include "util/logging.h"
#include "util/time.h"

namespace atlas::cdn {
namespace {

trace::LogRecord BaseRecord(const synth::RequestEvent& ev,
                            const synth::UserInfo& user,
                            const synth::ObjectMeta& obj,
                            std::uint32_t publisher_id) {
  trace::LogRecord rec;
  rec.timestamp_ms = ev.timestamp_ms;
  rec.url_hash = obj.url_hash;
  rec.user_id = user.user_id;
  rec.object_size = obj.size_bytes;
  rec.publisher_id = publisher_id;
  rec.user_agent_id = user.user_agent_id;
  rec.file_type = obj.file_type;
  rec.tz_offset_quarter_hours = user.tz_offset_quarter_hours;
  return rec;
}

}  // namespace

Simulator::Simulator(const SimulatorConfig& config, std::uint32_t publisher_id)
    : config_(config), publisher_id_(publisher_id) {
  if (config.playback_bytes_per_s <= 0.0) {
    throw std::invalid_argument("Simulator: playback rate must be > 0");
  }
}

void Simulator::ApplyPushUpTo(std::int64_t now_ms,
                              const synth::Catalog& catalog,
                              Topology& topology,
                              const std::vector<PushItem>& plan,
                              std::size_t& cursor, SimulatorResult& result) {
  while (cursor < plan.size() && plan[cursor].push_at_ms <= now_ms) {
    const auto& item = plan[cursor];
    const auto& obj = catalog.object(item.object_index);
    // Push the object (or its leading chunks) into every edge DC. When the
    // prefix reaches the end of the file the final chunk is pushed at its
    // actual (possibly short) size, matching what a viewer fetch would
    // insert — otherwise pushed and fetched copies of the same chunk key
    // disagree on occupancy.
    std::uint64_t chunks = 1;
    std::uint64_t chunk_size = obj.size_bytes;
    std::uint64_t last_size = obj.size_bytes;
    if (obj.content_class == trace::ContentClass::kVideo &&
        config_.chunk_bytes > 0 && obj.size_bytes > config_.chunk_bytes) {
      const std::uint64_t total_chunks =
          (obj.size_bytes + config_.chunk_bytes - 1) / config_.chunk_bytes;
      chunks = std::min<std::uint64_t>(config_.push.video_prefix_chunks,
                                       total_chunks);
      chunk_size = config_.chunk_bytes;
      last_size = chunks == total_chunks
                      ? obj.size_bytes - (total_chunks - 1) * config_.chunk_bytes
                      : config_.chunk_bytes;
    }
    for (std::size_t d = 0; d < topology.dc_count(); ++d) {
      for (std::uint64_t c = 0; c < chunks; ++c) {
        const std::uint64_t push_bytes = c + 1 == chunks ? last_size
                                                         : chunk_size;
        if (topology.mutable_dc(d).cache->Admit(ChunkKey(obj.url_hash, c),
                                                push_bytes, item.push_at_ms)) {
          result.pushed_bytes += push_bytes;
        }
      }
    }
    ++result.pushed_objects;
    ++cursor;
  }
}

SimulatorResult Simulator::Run(const synth::WorkloadGenerator& gen,
                               const std::vector<synth::RequestEvent>& events) {
  const synth::Catalog& catalog = gen.catalog();
  const synth::UserPopulation& users = gen.users();

  SimulatorResult result;
  result.trace.Reserve(events.size() + events.size() / 2);

  Topology topology(config_.topology);
  const std::vector<PushItem> push_plan =
      BuildPushPlan(catalog, config_.push);
  std::size_t push_cursor = 0;

  // Browser caches materialize lazily per user.
  std::unordered_map<std::uint32_t, BrowserCache> browsers;
  const auto browser_for = [&](std::uint32_t user_index) -> BrowserCache& {
    auto it = browsers.find(user_index);
    if (it == browsers.end()) {
      it = browsers
               .emplace(user_index,
                        BrowserCache(config_.browser_capacity_bytes,
                                     config_.browser_freshness_ms))
               .first;
    }
    return it->second;
  };

  // Miss fill: from a sibling DC holding the object when peer_fill is on,
  // otherwise from the origin.
  const auto fill = [&](const DataCenter& dc, std::uint64_t key,
                        std::uint64_t bytes) {
    if (config_.peer_fill && topology.AnyPeerContains(dc, key)) {
      ++result.peer_fetches;
      result.peer_bytes += bytes;
      return;
    }
    topology.FetchFromOrigin(bytes);
  };

  std::int64_t last_ts = std::numeric_limits<std::int64_t>::min();
  for (const auto& ev : events) {
    if (ev.timestamp_ms < last_ts) {
      throw std::invalid_argument("Simulator: events must be time-sorted");
    }
    last_ts = ev.timestamp_ms;

    const synth::UserInfo& user = users.user(ev.user_index);
    const synth::ObjectMeta& obj = catalog.object(ev.object_index);
    ApplyPushUpTo(ev.timestamp_ms, catalog, topology, push_plan, push_cursor,
                  result);
    DataCenter& dc = topology.Route(user.continent, user.user_id);
    BrowserCache& browser = browser_for(ev.user_index);

    // Incognito: the private window from the previous session was closed;
    // its cache is gone when a new session starts.
    if (ev.session_start && user.incognito) browser.Clear();

    // --- anomalies -----------------------------------------------------
    if (ev.anomaly != synth::Anomaly::kNone) {
      trace::LogRecord rec = BaseRecord(ev, user, obj, publisher_id_);
      rec.cache_status = trace::CacheStatus::kMiss;
      rec.response_bytes = 0;
      switch (ev.anomaly) {
        case synth::Anomaly::kHotlink:
          rec.response_code = trace::kHttpForbidden;  // 403
          break;
        case synth::Anomaly::kBadRange:
          rec.response_code = trace::kHttpRangeNotSatisfiable;  // 416
          break;
        case synth::Anomaly::kBeacon:
          rec.response_code = trace::kHttpNoContent;  // 204
          break;
        case synth::Anomaly::kNone:
          break;
      }
      result.trace.Add(rec);
      continue;
    }

    // --- video: chunked transfer ------------------------------------------
    if (obj.content_class == trace::ContentClass::kVideo &&
        config_.chunk_bytes > 0) {
      const ChunkPlan plan =
          PlanChunks(obj.size_bytes, ev.watch_fraction, config_.chunk_bytes);
      std::int64_t t = ev.timestamp_ms;
      const auto gap_ms = static_cast<std::int64_t>(
          static_cast<double>(plan.chunk_bytes) /
          config_.playback_bytes_per_s * 1000.0);
      for (std::uint64_t c = 0; c < plan.num_chunks; ++c) {
        const std::uint64_t bytes =
            c + 1 == plan.num_chunks ? plan.last_chunk_bytes : plan.chunk_bytes;
        const std::uint64_t key = ChunkKey(obj.url_hash, c);
        // The final chunk is usually short; cache and origin accounting must
        // use its actual size or every non-multiple video inflates edge
        // occupancy and origin bytes by up to chunk_bytes - 1.
        const trace::CacheStatus status = dc.cache->Access(key, bytes, t);
        if (status == trace::CacheStatus::kMiss) {
          fill(dc, key, bytes);
        }
        trace::LogRecord rec = BaseRecord(ev, user, obj, publisher_id_);
        rec.timestamp_ms = t;
        rec.response_bytes = bytes;
        rec.cache_status = status;
        rec.response_code =
            plan.partial ? trace::kHttpPartialContent : trace::kHttpOk;
        result.trace.Add(rec);
        t += std::max<std::int64_t>(gap_ms, 1);
      }
      continue;
    }

    // --- image / other / unchunked video ----------------------------------
    const bool cacheable = obj.size_bytes <= config_.browser_max_object_bytes &&
                           obj.content_class != trace::ContentClass::kVideo;
    if (cacheable) {
      const BrowserLookup lookup =
          browser.Lookup(obj.url_hash, ev.timestamp_ms);
      if (lookup == BrowserLookup::kFresh) {
        // Served entirely from the local cache: the CDN never sees this
        // request, so no record is emitted.
        ++result.browser_fresh_hits;
        continue;
      }
      if (lookup == BrowserLookup::kStale) {
        // Conditional GET. Content is immutable in this model, so the edge
        // always answers 304 (headers only). The edge still consults its
        // cache; validators for uncached objects pull the object in.
        const trace::CacheStatus status =
            dc.cache->Access(obj.url_hash, obj.size_bytes, ev.timestamp_ms);
        if (status == trace::CacheStatus::kMiss) {
          fill(dc, obj.url_hash, obj.size_bytes);
        }
        browser.Renew(obj.url_hash, ev.timestamp_ms);
        trace::LogRecord rec = BaseRecord(ev, user, obj, publisher_id_);
        rec.response_bytes = 0;
        rec.cache_status = status;
        rec.response_code = trace::kHttpNotModified;  // 304
        result.trace.Add(rec);
        ++result.revalidations;
        continue;
      }
    }

    const trace::CacheStatus status =
        dc.cache->Access(obj.url_hash, obj.size_bytes, ev.timestamp_ms);
    if (status == trace::CacheStatus::kMiss) {
      fill(dc, obj.url_hash, obj.size_bytes);
    }
    if (cacheable) {
      browser.Store(obj.url_hash, obj.size_bytes, ev.timestamp_ms);
    }
    trace::LogRecord rec = BaseRecord(ev, user, obj, publisher_id_);
    rec.response_bytes = obj.size_bytes;
    rec.cache_status = status;
    rec.response_code = trace::kHttpOk;
    result.trace.Add(rec);
  }

  // Flush any pushes scheduled after the last request.
  ApplyPushUpTo(util::kMillisPerWeek, catalog, topology, push_plan,
                push_cursor, result);

  result.trace.SortByTime();  // chunk pacing can interleave across events
  result.edge_stats = topology.TotalEdgeStats();
  result.per_dc_stats.reserve(topology.dc_count());
  for (std::size_t d = 0; d < topology.dc_count(); ++d) {
    result.per_dc_stats.push_back(topology.dc(d).cache->stats());
  }
  result.origin = topology.origin();
  ATLAS_LOG(kInfo) << "simulated " << result.trace.size() << " records, edge "
                   << "hit ratio " << result.edge_stats.HitRatio();
  return result;
}

SimulatorResult SimulateSite(const synth::SiteProfile& profile,
                             std::uint32_t publisher_id,
                             const SimulatorConfig& config,
                             std::uint64_t seed) {
  synth::WorkloadGenerator gen(profile, seed);
  const double inflation = gen.EstimateRecordsPerRequest(config.chunk_bytes);
  const auto logical = static_cast<std::uint64_t>(std::max(
      1.0, static_cast<double>(profile.total_requests) / inflation));
  const auto events = gen.Generate(logical);
  Simulator sim(config, publisher_id);
  return sim.Run(gen, events);
}

}  // namespace atlas::cdn
