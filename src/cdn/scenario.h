// Scenario: the paper's whole five-site study as one object.
//
// Runs every site profile through its own generator + the shared simulator
// configuration, tags records with registry publisher ids, and exposes both
// the per-site results (with ground-truth generators for closed-loop
// validation) and the merged, time-sorted trace — the synthetic stand-in
// for the paper's week of CDN logs.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cdn/simulator.h"
#include "synth/site_profile.h"
#include "trace/publisher.h"

namespace atlas::cdn {

struct SiteRun {
  synth::SiteProfile profile;
  std::uint32_t publisher_id = 0;
  // Kept alive so analyses can compare against generator ground truth.
  std::unique_ptr<synth::WorkloadGenerator> generator;
  SimulatorResult result;
};

class Scenario {
 public:
  // `scale` shrinks every profile (1.0 = paper-sized). Each site draws its
  // own deterministic seed from `seed`.
  Scenario(std::vector<synth::SiteProfile> profiles,
           const SimulatorConfig& config, std::uint64_t seed);

  // Convenience: the paper's five adult sites.
  static Scenario PaperStudy(double scale, const SimulatorConfig& config,
                             std::uint64_t seed);

  const trace::PublisherRegistry& registry() const { return registry_; }
  const std::vector<SiteRun>& runs() const { return runs_; }
  const SiteRun& run(std::size_t i) const { return runs_.at(i); }
  std::size_t site_count() const { return runs_.size(); }

  // Merged time-sorted trace across all sites.
  trace::TraceBuffer MergedTrace() const;

 private:
  trace::PublisherRegistry registry_;
  std::vector<SiteRun> runs_;
};

}  // namespace atlas::cdn
