// Scenario: the paper's whole five-site study as one object.
//
// Runs every site profile through its own generator and the shared sharded
// simulation engine (all sites concurrently — see engine.h), tags records
// with registry publisher ids, and exposes both the per-site results (with
// ground-truth generators for closed-loop validation) and the merged,
// time-sorted trace — the synthetic stand-in for the paper's week of CDN
// logs. The merged trace is served as a stream (StreamMerged /
// MergedTraceSource): the per-site buffers are k-way merged on the fly, so
// no call site pays an O(total records) combined copy.
//
// StreamScenario is the fully out-of-core variant: the merged trace goes
// straight into a RecordSink (e.g. a v2 TraceWriter) and is never
// materialized at all.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cdn/engine.h"
#include "cdn/simulator.h"
#include "synth/site_profile.h"
#include "trace/publisher.h"
#include "trace/stream.h"

namespace atlas::cdn {

class ScenarioSpec;

struct SiteRun {
  synth::SiteProfile profile;
  std::uint32_t publisher_id = 0;
  // Kept alive so analyses can compare against generator ground truth.
  std::unique_ptr<synth::WorkloadGenerator> generator;
  SiteSimulation result;
};

class Scenario {
 public:
  // `scale` shrinks every profile (1.0 = paper-sized). Each site draws its
  // own deterministic seed from `seed`. `threads <= 0` means
  // util::DefaultThreads(); every result is identical at any thread count.
  Scenario(std::vector<synth::SiteProfile> profiles,
           const SimulatorConfig& config, std::uint64_t seed,
           int threads = 0);

  // Spec-driven construction: profiles, config, and seed all come from the
  // spec (see scenario_spec.h). Defined in scenario_spec.cc.
  explicit Scenario(const ScenarioSpec& spec, int threads = 0);

  // Convenience: the paper's five adult sites.
  static Scenario PaperStudy(double scale, const SimulatorConfig& config,
                             std::uint64_t seed, int threads = 0);

  const trace::PublisherRegistry& registry() const { return registry_; }
  const std::vector<SiteRun>& runs() const { return runs_; }
  const SiteRun& run(std::size_t i) const { return runs_.at(i); }
  std::size_t site_count() const { return runs_.size(); }

  // Streams the merged, time-sorted trace across all sites into `sink`
  // without building a combined copy (per-site traces are k-way merged on
  // the fly, ties broken by site registration order — byte-identical to
  // the legacy materialized merge).
  void StreamMerged(trace::RecordSink& sink) const;

  // Merged delivery counters across all sites.
  SimulatorResult Totals() const;

 private:
  trace::PublisherRegistry registry_;
  std::vector<SiteRun> runs_;
};

// Pull-interface view of a scenario's merged trace: yields the k-way merge
// of the per-site traces chunk by chunk, so AnalysisSuite and Replay-style
// consumers read the merged stream through one chunk of memory. The
// scenario must outlive the source.
class MergedTraceSource final : public trace::RecordSource {
 public:
  explicit MergedTraceSource(const Scenario& scenario);
  std::span<const trace::LogRecord> NextChunk() override;

  // Checkpoints the per-site merge cursors so a consumer can resume the
  // merged stream mid-way (records already handed out are not replayed).
  // Restore requires a source built over the same scenario shape.
  void SaveState(ckpt::Writer& w) const;
  void RestoreState(ckpt::Reader& r);

 private:
  struct Cursor {
    const trace::TraceBuffer* buf;
    std::size_t pos = 0;
  };
  std::vector<Cursor> cursors_;
  std::vector<trace::LogRecord> chunk_;
};

// Fully streaming scenario run: generates each profile, simulates all of
// them concurrently on the sharded engine, and streams the merged trace
// into `sink`. Only counters and the registry are kept — peak memory is
// the events + catalogs + caches, independent of how many records the
// simulation emits.
struct ScenarioStreamResult {
  trace::PublisherRegistry registry;
  std::vector<SimulatorResult> site_results;  // in profile order
  SimulatorResult totals;
};

ScenarioStreamResult StreamScenario(std::vector<synth::SiteProfile> profiles,
                                    const SimulatorConfig& config,
                                    std::uint64_t seed,
                                    trace::RecordSink& sink, int threads = 0);

// As above, with checkpoint/restore armed. On top of the engine's own
// sections, every snapshot carries a "scenario.meta" section (seed +
// profile count, verified on resume) and one "synth.generator.<i>" section
// per site with the generator's RNG position; the caller's save_extra (if
// any) still runs last. `ckpt_options.resume` restores the scenario and
// delegates engine state to RunSharded.
ScenarioStreamResult StreamScenario(std::vector<synth::SiteProfile> profiles,
                                    const SimulatorConfig& config,
                                    std::uint64_t seed, trace::RecordSink& sink,
                                    int threads,
                                    const CheckpointOptions& ckpt_options);

}  // namespace atlas::cdn
