// Pattern-aware cache revalidation (§V implication).
//
// "CDNs can utilize this information to optimize cache control by
// re-validating diurnal objects less frequently and other objects more
// frequently, for example, hourly for objects with short-lived access
// patterns and daily for objects with long-lived access patterns. This can
// also be achieved by setting longer expire times for objects with diurnal
// and long-lived access patterns."
//
// RevalidationOracle maps an object (by url hash) to a freshness lifetime
// derived from its classified temporal pattern — typically built from a
// TrendClusterResult, i.e. the *analysis output drives the cache config*.
// OracleTtlCache is a TTL-LRU whose per-entry lifetime comes from the
// oracle instead of one global knob.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>

#include "cdn/cache.h"
#include "synth/site_profile.h"  // PatternType

namespace atlas::cdn {

class RevalidationOracle {
 public:
  // Lifetimes per pattern, following the paper's prescription: long expiry
  // for diurnal/long-lived, hourly-scale for short-lived, a default for
  // everything unknown.
  struct Policy {
    std::int64_t diurnal_ttl_ms = 24 * 3600 * 1000LL;
    std::int64_t long_lived_ttl_ms = 24 * 3600 * 1000LL;
    std::int64_t short_lived_ttl_ms = 3600 * 1000LL;
    std::int64_t flash_ttl_ms = 3600 * 1000LL;
    std::int64_t outlier_ttl_ms = 4 * 3600 * 1000LL;
    std::int64_t default_ttl_ms = 6 * 3600 * 1000LL;
  };

  RevalidationOracle();  // default Policy
  explicit RevalidationOracle(Policy policy) : policy_(policy) {}

  // Registers a classified object.
  void Classify(std::uint64_t url_hash, synth::PatternType pattern);
  std::size_t classified_count() const { return patterns_.size(); }

  // Freshness lifetime for an object (default for unclassified ones).
  std::int64_t TtlFor(std::uint64_t url_hash) const;
  std::int64_t TtlForPattern(synth::PatternType pattern) const;

  const Policy& policy() const { return policy_; }

 private:
  Policy policy_;
  std::unordered_map<std::uint64_t, synth::PatternType> patterns_;
};

// TTL-LRU with per-object lifetimes from a ttl function. The function is
// called once per insert (lifetimes are latched with the entry).
class OracleTtlCache : public Cache {
 public:
  using TtlFn = std::function<std::int64_t(std::uint64_t key)>;

  OracleTtlCache(std::uint64_t capacity_bytes, TtlFn ttl_fn);

  bool Contains(std::uint64_t key) const override {
    return entries_.count(key) > 0;
  }
  void CollectKeys(std::vector<std::uint64_t>& out) const override {
    // atlas-lint: allow(unordered-iter) snapshot is sorted by the caller
    for (const auto& kv : entries_) out.push_back(kv.first);
  }
  std::string name() const override { return "Oracle-TTL"; }

  // Expired lookups observed so far (misses caused by staleness rather than
  // absence — the revalidation cost the oracle tunes).
  std::uint64_t expired_lookups() const { return expired_lookups_; }

 protected:
  bool Lookup(std::uint64_t key, std::int64_t now_ms) override;
  void Insert(std::uint64_t key, std::uint64_t size_bytes,
              std::int64_t now_ms) override;
  // Expiry times are latched per entry at insert, so the snapshot carries
  // them verbatim; the ttl function itself is not serialized — a restore
  // must be constructed with the same oracle (the scenario fingerprint
  // guards this at the engine level).
  void SavePolicyState(ckpt::Writer& w) const override;
  void RestorePolicyState(ckpt::Reader& r) override;

 private:
  struct Entry {
    std::uint64_t size;
    std::int64_t expires_ms;
    std::list<std::uint64_t>::iterator lru_it;
  };
  void Erase(std::uint64_t key);
  void EvictOne();

  TtlFn ttl_fn_;
  std::uint64_t expired_lookups_ = 0;
  std::list<std::uint64_t> lru_;
  std::unordered_map<std::uint64_t, Entry> entries_;
};

}  // namespace atlas::cdn
