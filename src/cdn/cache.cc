#include "cdn/cache.h"

#include <stdexcept>

#include "cdn/policies.h"

namespace atlas::cdn {

const char* ToString(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kLru:
      return "LRU";
    case PolicyKind::kFifo:
      return "FIFO";
    case PolicyKind::kLfu:
      return "LFU";
    case PolicyKind::kGdsf:
      return "GDSF";
    case PolicyKind::kS4Lru:
      return "S4LRU";
    case PolicyKind::kTtlLru:
      return "TTL-LRU";
  }
  return "?";
}

void CacheStats::Merge(const CacheStats& other) {
  hits += other.hits;
  misses += other.misses;
  inserts += other.inserts;
  evictions += other.evictions;
  rejected += other.rejected;
  hit_bytes += other.hit_bytes;
  miss_bytes += other.miss_bytes;
}

Cache::Cache(std::uint64_t capacity_bytes) : capacity_bytes_(capacity_bytes) {
  if (capacity_bytes == 0) {
    throw std::invalid_argument("Cache: capacity must be > 0");
  }
}

trace::CacheStatus Cache::Access(std::uint64_t key, std::uint64_t size_bytes,
                                 std::int64_t now_ms) {
  if (Lookup(key, now_ms)) {
    ++stats_.hits;
    stats_.hit_bytes += size_bytes;
    return trace::CacheStatus::kHit;
  }
  ++stats_.misses;
  stats_.miss_bytes += size_bytes;
  if (size_bytes > capacity_bytes_) {
    ++stats_.rejected;
    return trace::CacheStatus::kMiss;
  }
  Insert(key, size_bytes, now_ms);
  return trace::CacheStatus::kMiss;
}

bool Cache::Admit(std::uint64_t key, std::uint64_t size_bytes,
                  std::int64_t now_ms) {
  if (size_bytes > capacity_bytes_) return false;
  if (Lookup(key, now_ms)) return true;  // already resident
  Insert(key, size_bytes, now_ms);
  return true;
}

namespace {
// Layout of the shared Cache blob prefix (identity + counters); the policy
// state that follows is versioned by each policy's own leading u32.
constexpr std::uint32_t kCacheStateVersion = 1;
}  // namespace

void Cache::SaveState(ckpt::Writer& w) const {
  w.WriteVersion(kCacheStateVersion);
  w.WriteString(name());
  w.WriteU64(capacity_bytes_);
  w.WriteU64(used_bytes_);
  w.WriteU64(stats_.hits);
  w.WriteU64(stats_.misses);
  w.WriteU64(stats_.inserts);
  w.WriteU64(stats_.evictions);
  w.WriteU64(stats_.rejected);
  w.WriteU64(stats_.hit_bytes);
  w.WriteU64(stats_.miss_bytes);
  SavePolicyState(w);
}

void Cache::RestoreState(ckpt::Reader& r) {
  r.ExpectVersion("cache", kCacheStateVersion);
  const std::string saved_name = r.ReadString();
  if (saved_name != name()) {
    throw std::runtime_error("ckpt: cache policy mismatch (checkpoint has " +
                             saved_name + ", this run built " + name() + ")");
  }
  const std::uint64_t saved_capacity = r.ReadU64();
  if (saved_capacity != capacity_bytes_) {
    throw std::runtime_error(
        "ckpt: cache capacity mismatch (checkpoint has " +
        std::to_string(saved_capacity) + " bytes, this run built " +
        std::to_string(capacity_bytes_) + ")");
  }
  used_bytes_ = r.ReadU64();
  stats_.hits = r.ReadU64();
  stats_.misses = r.ReadU64();
  stats_.inserts = r.ReadU64();
  stats_.evictions = r.ReadU64();
  stats_.rejected = r.ReadU64();
  stats_.hit_bytes = r.ReadU64();
  stats_.miss_bytes = r.ReadU64();
  RestorePolicyState(r);
}

std::unique_ptr<Cache> CreateCache(PolicyKind kind,
                                   std::uint64_t capacity_bytes,
                                   std::int64_t ttl_ms) {
  switch (kind) {
    case PolicyKind::kLru:
      return std::make_unique<LruCache>(capacity_bytes);
    case PolicyKind::kFifo:
      return std::make_unique<FifoCache>(capacity_bytes);
    case PolicyKind::kLfu:
      return std::make_unique<LfuCache>(capacity_bytes);
    case PolicyKind::kGdsf:
      return std::make_unique<GdsfCache>(capacity_bytes);
    case PolicyKind::kS4Lru:
      return std::make_unique<S4LruCache>(capacity_bytes);
    case PolicyKind::kTtlLru:
      return std::make_unique<TtlLruCache>(capacity_bytes, ttl_ms);
  }
  throw std::invalid_argument("CreateCache: unknown policy");
}

}  // namespace atlas::cdn
