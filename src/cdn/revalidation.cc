#include "cdn/revalidation.h"

#include <stdexcept>

namespace atlas::cdn {

RevalidationOracle::RevalidationOracle() : policy_(Policy()) {}

void RevalidationOracle::Classify(std::uint64_t url_hash,
                                  synth::PatternType pattern) {
  patterns_[url_hash] = pattern;
}

std::int64_t RevalidationOracle::TtlForPattern(
    synth::PatternType pattern) const {
  switch (pattern) {
    case synth::PatternType::kDiurnal:
      return policy_.diurnal_ttl_ms;
    case synth::PatternType::kLongLived:
      return policy_.long_lived_ttl_ms;
    case synth::PatternType::kShortLived:
      return policy_.short_lived_ttl_ms;
    case synth::PatternType::kFlashCrowd:
      return policy_.flash_ttl_ms;
    case synth::PatternType::kOutlier:
      return policy_.outlier_ttl_ms;
  }
  return policy_.default_ttl_ms;
}

std::int64_t RevalidationOracle::TtlFor(std::uint64_t url_hash) const {
  const auto it = patterns_.find(url_hash);
  if (it == patterns_.end()) return policy_.default_ttl_ms;
  return TtlForPattern(it->second);
}

OracleTtlCache::OracleTtlCache(std::uint64_t capacity_bytes, TtlFn ttl_fn)
    : Cache(capacity_bytes), ttl_fn_(std::move(ttl_fn)) {
  if (!ttl_fn_) throw std::invalid_argument("OracleTtlCache: null ttl fn");
}

void OracleTtlCache::Erase(std::uint64_t key) {
  auto it = entries_.find(key);
  lru_.erase(it->second.lru_it);
  OnEvictBytes(it->second.size);
  entries_.erase(it);
}

bool OracleTtlCache::Lookup(std::uint64_t key, std::int64_t now_ms) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  if (now_ms >= it->second.expires_ms) {
    ++expired_lookups_;
    Erase(key);
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return true;
}

void OracleTtlCache::Insert(std::uint64_t key, std::uint64_t size_bytes,
                            std::int64_t now_ms) {
  while (used_bytes() + size_bytes > capacity_bytes()) EvictOne();
  const std::int64_t ttl = ttl_fn_(key);
  if (ttl <= 0) throw std::logic_error("OracleTtlCache: non-positive ttl");
  lru_.push_front(key);
  entries_[key] = Entry{size_bytes, now_ms + ttl, lru_.begin()};
  OnInsertBytes(size_bytes);
}

void OracleTtlCache::EvictOne() {
  if (lru_.empty()) throw std::logic_error("OracleTtlCache: evict from empty");
  Erase(lru_.back());
}

namespace {
constexpr std::uint32_t kOracleTtlStateVersion = 1;
}  // namespace

void OracleTtlCache::SavePolicyState(ckpt::Writer& w) const {
  w.WriteVersion(kOracleTtlStateVersion);
  w.WriteU64(expired_lookups_);
  w.WriteU64(static_cast<std::uint64_t>(lru_.size()));
  for (std::uint64_t key : lru_) {
    const Entry& e = entries_.at(key);
    w.WriteU64(key);
    w.WriteU64(e.size);
    w.WriteI64(e.expires_ms);
  }
}

void OracleTtlCache::RestorePolicyState(ckpt::Reader& r) {
  r.ExpectVersion("Oracle-TTL policy", kOracleTtlStateVersion);
  expired_lookups_ = r.ReadU64();
  lru_.clear();
  entries_.clear();
  const std::uint64_t n = r.ReadU64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t key = r.ReadU64();
    Entry e;
    e.size = r.ReadU64();
    e.expires_ms = r.ReadI64();
    lru_.push_back(key);
    e.lru_it = std::prev(lru_.end());
    entries_[key] = e;
  }
}

}  // namespace atlas::cdn
