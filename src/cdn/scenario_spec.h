// ScenarioSpec: the scenario layer as data.
//
// A scenario file is a TOML description of everything a run needs — which
// site profiles to instantiate (base factory + curated overrides), the
// simulator/topology configuration, and a timeline of operational events
// (flash crowds, takedowns, DC outages, cache flushes). The spec replaces
// the hardcoded five-site constructor pipeline: Scenario / StreamScenario
// accept a spec directly, the CLI runs any spec file end-to-end, and every
// shipped spec under scenarios/ carries its own pinned golden digest.
//
// Parsing is loud: unknown keys, wrong types, out-of-range values, and
// overlapping event windows all fail with the file's line and column —
// a typo in a scenario file must never silently fall back to a default.
//
// Identity: CanonicalToml() renders the spec in one fixed, explicit form
// (every simulator knob spelled out, keys in schema order), and
// Fingerprint() is the FNV-1a of those bytes. The fingerprint rides in
// every checkpoint a spec-driven run writes ("scenario.spec" section), so
// resuming against an edited spec fails before any state is spliced.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cdn/scenario.h"
#include "cdn/simulator.h"
#include "synth/site_profile.h"

namespace atlas::cdn {

// One site: a named base profile plus curated overrides. Overrides are
// absolute values applied after the base factory ran at the spec's scale.
struct SiteSpec {
  // Base factory: "V-1", "V-2", "P-1", "P-2", "S-1", "N-1", or "L-1".
  std::string profile;
  // Effective site name; defaults to the base profile's name.
  std::string name;
  std::optional<std::uint64_t> total_requests;
  std::optional<std::uint64_t> num_objects;
  std::optional<std::uint64_t> num_users;
  std::optional<double> zipf_s;
  std::optional<double> repeat_request_prob;
  std::optional<double> incognito_rate;
  std::optional<double> peak_local_hour;
  std::optional<double> diurnal_amplitude;
  std::optional<double> watch_fraction_mean;
};

// One timeline entry. Demand-side kinds (flash-crowd, takedown) target one
// site's catalog; delivery-side kinds (dc-outage, cache-flush) target DCs.
enum class SpecEventKind : std::uint8_t {
  kFlashCrowd = 0,
  kTakedown = 1,
  kDcOutage = 2,
  kCacheFlush = 3,
};
const char* ToString(SpecEventKind k);

struct EventSpec {
  SpecEventKind kind = SpecEventKind::kFlashCrowd;
  // Demand events: the target site's effective name.
  std::string site;
  // Window in hours from trace start; flushes fire at start_hours and
  // ignore end_hours.
  double start_hours = 0.0;
  double end_hours = 0.0;
  // Demand events: target object (catalog index).
  std::int64_t object = 0;
  // Flash crowd: probability an in-window request redirects to the target.
  double share = 0.5;
  // Delivery events: target DC index; -1 = every DC (flush only).
  std::int64_t dc = 0;
};

class ScenarioSpec {
 public:
  std::string name;
  std::string description;
  double scale = 1.0;
  std::uint64_t seed = 42;
  std::vector<SiteSpec> sites;
  std::vector<EventSpec> events;
  // Effective simulator configuration, minus op_events (those come from
  // `events` via BuildConfig). Defaults match SimulatorConfig's.
  SimulatorConfig sim;

  // Parses + validates; throws util::config::ConfigError with line/column
  // on any defect. `source` names the input in errors.
  static ScenarioSpec Parse(std::string_view text, const std::string& source);
  static ScenarioSpec ParseFile(const std::string& path);

  // Structural validation of the in-memory spec (also called by Parse);
  // throws std::invalid_argument. Covers everything that can go wrong
  // after programmatic edits (e.g. CLI --scale/--seed overrides).
  void Validate() const;

  // The one fixed, explicit rendering of this spec. Parse(CanonicalToml())
  // reproduces the spec exactly (round-trip identity), and two specs are
  // equivalent iff their canonical forms are byte-equal.
  std::string CanonicalToml() const;

  // FNV-1a of CanonicalToml(); the spec's checkpoint identity.
  std::uint64_t Fingerprint() const;

  // Materializes the site profiles (base factory at `scale`, overrides,
  // demand events routed to their sites) and the simulator config
  // (sim + op_events). Both validate what they build.
  std::vector<synth::SiteProfile> BuildProfiles() const;
  SimulatorConfig BuildConfig() const;
};

// Spec-driven streaming run: exactly StreamScenario(BuildProfiles(),
// BuildConfig(), spec.seed, ...) plus a "scenario.spec" checkpoint section
// carrying the spec fingerprint — a resume against a mutated spec fails
// with a clear error before any engine state is restored.
ScenarioStreamResult StreamScenario(const ScenarioSpec& spec,
                                    trace::RecordSink& sink, int threads = 0);
ScenarioStreamResult StreamScenario(const ScenarioSpec& spec,
                                    trace::RecordSink& sink, int threads,
                                    const CheckpointOptions& ckpt_options);

}  // namespace atlas::cdn
