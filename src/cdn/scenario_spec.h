// ScenarioSpec: the scenario layer as data.
//
// A scenario file is a TOML description of everything a run needs — which
// site profiles to instantiate (base factory + curated overrides), the
// simulator/topology configuration, and a timeline of operational events
// (flash crowds, takedowns, DC outages, cache flushes). The spec replaces
// the hardcoded five-site constructor pipeline: Scenario / StreamScenario
// accept a spec directly, the CLI runs any spec file end-to-end, and every
// shipped spec under scenarios/ carries its own pinned golden digest.
//
// Parsing is loud: unknown keys, wrong types, out-of-range values, and
// overlapping event windows all fail with the file's line and column —
// a typo in a scenario file must never silently fall back to a default.
//
// Identity: CanonicalToml() renders the spec in one fixed, explicit form
// (every simulator knob spelled out, keys in schema order), and
// Fingerprint() is the FNV-1a of those bytes. The fingerprint rides in
// every checkpoint a spec-driven run writes ("scenario.spec" section), so
// resuming against an edited spec fails before any state is spliced.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cdn/scenario.h"
#include "cdn/simulator.h"
#include "synth/site_profile.h"

namespace atlas::cdn {

// One site: a named base profile plus curated overrides. Overrides are
// absolute values applied after the base factory ran at the spec's scale.
struct SiteSpec {
  // Base factory: "V-1", "V-2", "P-1", "P-2", "S-1", "N-1", or "L-1".
  std::string profile;
  // Effective site name; defaults to the base profile's name.
  std::string name;
  std::optional<std::uint64_t> total_requests;
  std::optional<std::uint64_t> num_objects;
  std::optional<std::uint64_t> num_users;
  std::optional<double> zipf_s;
  std::optional<double> repeat_request_prob;
  std::optional<double> incognito_rate;
  std::optional<double> peak_local_hour;
  std::optional<double> diurnal_amplitude;
  std::optional<double> watch_fraction_mean;
};

// Parameters of the per-DC energy & dollar-cost model ([energy] table).
// Plain data by design: the cdn layer owns parsing/validation/canonical
// form, while the math that turns counters into joules lives one layer up
// in atlas::energy (energy includes cdn, never the reverse). Defaults are
// paper-plausible CDN numbers; every shipped scenario documents them in a
// commented [energy] block.
struct EnergySpec {
  // Server power per DC: idle floor plus a busy delta scaled by duty
  // cycle, where duty = bytes served / (egress capacity * wall span).
  double server_idle_watts = 150.0;
  double server_busy_watts = 350.0;
  double server_capacity_gbps = 10.0;
  // Storage power for cache-resident bytes (10 W per resident TB).
  double storage_watts_per_gb = 0.01;
  // Network energy per GB moved, tiered by delivery path.
  double edge_hit_j_per_gb = 25000.0;
  double peer_fill_j_per_gb = 60000.0;
  double origin_fetch_j_per_gb = 140000.0;
  double push_j_per_gb = 60000.0;
  // Dollar costs: electricity for the joules above, transit per GB by
  // tier (edge hits stay inside the DC and are free).
  double electricity_usd_per_kwh = 0.11;
  double edge_hit_usd_per_gb = 0.0;
  double peer_fill_usd_per_gb = 0.02;
  double origin_fetch_usd_per_gb = 0.08;
  double push_usd_per_gb = 0.02;
};

// One timeline entry. Demand-side kinds (flash-crowd, takedown) target one
// site's catalog; delivery-side kinds (dc-outage, cache-flush) target DCs.
enum class SpecEventKind : std::uint8_t {
  kFlashCrowd = 0,
  kTakedown = 1,
  kDcOutage = 2,
  kCacheFlush = 3,
};
const char* ToString(SpecEventKind k);

struct EventSpec {
  SpecEventKind kind = SpecEventKind::kFlashCrowd;
  // Demand events: the target site's effective name.
  std::string site;
  // Window in hours from trace start; flushes fire at start_hours and
  // ignore end_hours.
  double start_hours = 0.0;
  double end_hours = 0.0;
  // Demand events: target object (catalog index).
  std::int64_t object = 0;
  // Flash crowd: probability an in-window request redirects to the target.
  double share = 0.5;
  // Delivery events: target DC index; -1 = every DC (flush only).
  std::int64_t dc = 0;
};

class ScenarioSpec {
 public:
  std::string name;
  std::string description;
  double scale = 1.0;
  std::uint64_t seed = 42;
  std::vector<SiteSpec> sites;
  std::vector<EventSpec> events;
  // Effective simulator configuration, minus op_events (those come from
  // `events` via BuildConfig). Defaults match SimulatorConfig's.
  SimulatorConfig sim;
  // Energy/cost model parameters ([energy] table; defaults when absent).
  EnergySpec energy;

  // Parses + validates; throws util::config::ConfigError with line/column
  // on any defect. `source` names the input in errors.
  static ScenarioSpec Parse(std::string_view text, const std::string& source);
  static ScenarioSpec ParseFile(const std::string& path);

  // Structural validation of the in-memory spec (also called by Parse);
  // throws std::invalid_argument. Covers everything that can go wrong
  // after programmatic edits (e.g. CLI --scale/--seed overrides).
  void Validate() const;

  // The one fixed, explicit rendering of this spec. Parse(CanonicalToml())
  // reproduces the spec exactly (round-trip identity), and two specs are
  // equivalent iff their canonical forms are byte-equal.
  std::string CanonicalToml() const;

  // FNV-1a of CanonicalToml(); the spec's checkpoint identity.
  std::uint64_t Fingerprint() const;

  // Materializes the site profiles (base factory at `scale`, overrides,
  // demand events routed to their sites) and the simulator config
  // (sim + op_events). Both validate what they build.
  std::vector<synth::SiteProfile> BuildProfiles() const;
  SimulatorConfig BuildConfig() const;
};

// Spec-driven streaming run: exactly StreamScenario(BuildProfiles(),
// BuildConfig(), spec.seed, ...) plus a "scenario.spec" checkpoint section
// carrying the spec fingerprint — a resume against a mutated spec fails
// with a clear error before any engine state is restored.
ScenarioStreamResult StreamScenario(const ScenarioSpec& spec,
                                    trace::RecordSink& sink, int threads = 0);
ScenarioStreamResult StreamScenario(const ScenarioSpec& spec,
                                    trace::RecordSink& sink, int threads,
                                    const CheckpointOptions& ckpt_options);

// Spec-driven run with an explicit simulator config. `config` must be
// spec.BuildConfig() plus execution-only knobs (epoch_observer, thread
// placement) — anything record-shaping would silently diverge from the
// fingerprint the checkpoint pins. This is the hook atlas::energy uses to
// attach its epoch observer without duplicating the scenario.spec
// fingerprint-guard logic.
ScenarioStreamResult StreamScenario(const ScenarioSpec& spec,
                                    const SimulatorConfig& config,
                                    trace::RecordSink& sink, int threads,
                                    const CheckpointOptions& ckpt_options);

}  // namespace atlas::cdn
