// Push / prefetch planning.
//
// The paper's headline delivery recommendation (§I, §V): "content delivery
// networks can improve performance and reduce network traffic by pushing
// copies of popular adult objects to locations closer to their end-users",
// and specifically objects with diurnal and long-lived request
// patterns. A PushPlan selects those objects from a catalog; the simulator
// warms every edge cache with them at injection time. The ablation bench
// quantifies the hit-ratio / origin-traffic effect.
#pragma once

#include <cstdint>
#include <vector>

#include "synth/catalog.h"

namespace atlas::cdn {

struct PushConfig {
  bool enabled = false;
  // How many top-weight objects to push.
  std::size_t top_n = 200;
  // Push only these patterns (the paper's recommendation). When false for
  // all patterns, popularity alone decides.
  bool include_diurnal = true;
  bool include_long_lived = true;
  bool include_short_lived = false;
  bool include_flash = false;
  bool include_outlier = false;
  // Leading chunks of each video to pre-position (images are pushed whole).
  std::uint64_t video_prefix_chunks = 4;
};

struct PushItem {
  std::uint32_t object_index = 0;
  std::int64_t push_at_ms = 0;  // injection time, clamped to >= 0
};

// Builds the push schedule (sorted by push_at_ms) for a catalog.
std::vector<PushItem> BuildPushPlan(const synth::Catalog& catalog,
                                    const PushConfig& config);

}  // namespace atlas::cdn
