// Video chunking.
//
// §V: "the CDN treats video chunks as separate objects for the sake of
// caching". A video view fetches consecutive fixed-size chunks until the
// viewer stops; each chunk is an HTTP transaction (206 Partial Content
// unless the whole file fits in one response) and a separate cache key.
#pragma once

#include <cstdint>

namespace atlas::cdn {

struct ChunkPlan {
  std::uint64_t num_chunks = 1;     // transactions for this view
  std::uint64_t chunk_bytes = 0;    // full chunk size
  std::uint64_t last_chunk_bytes = 0;  // possibly-short final chunk
  bool partial = false;             // true -> 206 responses, else 200
};

// Plans the transactions for watching `watch_fraction` of an object of
// `object_bytes`, with `chunk_bytes`-sized chunks. watch_fraction is clamped
// to (0, 1]. chunk_bytes == 0 disables chunking (single 200 response).
ChunkPlan PlanChunks(std::uint64_t object_bytes, double watch_fraction,
                     std::uint64_t chunk_bytes);

// Cache key of chunk `index` of the object identified by `url_hash`.
// Chunk 0 of an unchunked transfer is the object itself.
std::uint64_t ChunkKey(std::uint64_t url_hash, std::uint64_t index);

}  // namespace atlas::cdn
