// End-to-end delivery simulation: logical request events -> HTTP log records.
//
// For each logical request the simulator walks the delivery path the paper's
// logs were produced by:
//
//   anomaly?      -> 403 (hotlink), 416 (bad range), 204 (beacon)
//   browser cache -> fresh: served locally, NO log record (the CDN never
//                    sees it — exactly why Fig. 16 shows so few 304s for
//                    incognito-heavy adult sites);
//                    stale: conditional GET -> 304 + freshness renewal
//   edge cache    -> HIT, or MISS + origin fetch + admission
//   chunking      -> video views expand into 206 chunk transactions paced
//                    at playback speed
//
// The output is a TraceBuffer in exactly the paper's log schema, plus
// delivery-side statistics the logs alone cannot show (origin load,
// browser-cache absorption) used by the ablation benches.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "cdn/browser_cache.h"
#include "cdn/chunking.h"
#include "cdn/push.h"
#include "cdn/topology.h"
#include "synth/workload.h"
#include "trace/trace_buffer.h"

namespace atlas::cdn {

struct SimulatorConfig {
  TopologyConfig topology;
  // Video chunk size; 0 disables chunking.
  std::uint64_t chunk_bytes = 2ULL << 20;
  // Playback bytes-per-second: spaces chunk requests in time.
  double playback_bytes_per_s = 600e3;
  // Browser cache per user.
  std::uint64_t browser_capacity_bytes = 50ULL << 20;
  std::int64_t browser_freshness_ms = 24 * 3600 * 1000LL;
  // Only objects up to this size are browser-cacheable (videos stream via
  // range requests and bypass the cache).
  std::uint64_t browser_max_object_bytes = 4ULL << 20;
  // Cooperative fill: on an edge miss, fetch from a sibling data center
  // that holds the object instead of the origin (cheaper transit; the
  // "copies closer to users" idea extended across the footprint).
  bool peer_fill = false;
  PushConfig push;
};

struct SimulatorResult {
  trace::TraceBuffer trace;
  CacheStats edge_stats;                  // aggregated over DCs
  std::vector<CacheStats> per_dc_stats;   // indexed like Topology
  OriginStats origin;
  // Cooperative fills served by sibling DCs instead of the origin.
  std::uint64_t peer_fetches = 0;
  std::uint64_t peer_bytes = 0;
  // Requests absorbed by browser caches (served fresh, never logged).
  std::uint64_t browser_fresh_hits = 0;
  // Conditional GETs answered 304.
  std::uint64_t revalidations = 0;
  std::uint64_t pushed_objects = 0;
  std::uint64_t pushed_bytes = 0;
};

class Simulator {
 public:
  Simulator(const SimulatorConfig& config, std::uint32_t publisher_id);

  // Consumes the generator's events (must be time-sorted) and produces the
  // log trace. The generator provides object/user lookup tables.
  SimulatorResult Run(const synth::WorkloadGenerator& gen,
                      const std::vector<synth::RequestEvent>& events);

  const SimulatorConfig& config() const { return config_; }

 private:
  void ApplyPushUpTo(std::int64_t now_ms, const synth::Catalog& catalog,
                     Topology& topology, const std::vector<PushItem>& plan,
                     std::size_t& cursor, SimulatorResult& result);

  SimulatorConfig config_;
  std::uint32_t publisher_id_;
};

// Convenience: generate + simulate one site profile in one call, with the
// logical budget calibrated so the final record count approximates
// profile.total_requests despite video chunk expansion.
SimulatorResult SimulateSite(const synth::SiteProfile& profile,
                             std::uint32_t publisher_id,
                             const SimulatorConfig& config, std::uint64_t seed);

}  // namespace atlas::cdn
