// End-to-end delivery simulation: logical request events -> HTTP log records.
//
// For each logical request the simulator walks the delivery path the paper's
// logs were produced by:
//
//   anomaly?      -> 403 (hotlink), 416 (bad range), 204 (beacon)
//   browser cache -> fresh: served locally, NO log record (the CDN never
//                    sees it — exactly why Fig. 16 shows so few 304s for
//                    incognito-heavy adult sites);
//                    stale: conditional GET -> 304 + freshness renewal
//   edge cache    -> HIT, or MISS + origin fetch + admission
//   chunking      -> video views expand into 206 chunk transactions paced
//                    at playback speed
//
// The output is a time-sorted record stream in exactly the paper's log
// schema, emitted into a trace::RecordSink (in-memory buffer or v2 file —
// the simulation never needs the whole trace resident), plus delivery-side
// statistics the logs alone cannot show (origin load, browser-cache
// absorption) used by the ablation benches.
//
// Execution is sharded by edge data center (see engine.h): each user is
// pinned to one DC, so each shard owns its edge cache, its users' browser
// caches, and its slice of events. Thread count never changes a single
// output byte.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cdn/browser_cache.h"
#include "cdn/chunking.h"
#include "cdn/op_event.h"
#include "cdn/push.h"
#include "cdn/topology.h"
#include "synth/workload.h"
#include "trace/sink.h"
#include "trace/trace_buffer.h"

namespace atlas::cdn {

// One DC's delivery activity over one engine epoch, reported to an
// EpochObserver as deltas since the previous barrier. Everything here is a
// 64-bit counter already maintained by the engine — observers see the
// simulation, they never steer it.
struct EpochDcSample {
  int dc = 0;
  CacheStats edge;               // hit/miss/byte deltas this epoch
  OriginStats origin;            // origin fetches attributed to this DC
  std::uint64_t peer_fetches = 0;
  std::uint64_t peer_bytes = 0;
  std::uint64_t revalidations = 0;
  std::uint64_t pushed_bytes = 0;
  // Edge-cache occupancy at the barrier (not a delta).
  std::uint64_t resident_bytes = 0;
};

// One engine barrier: the epoch window [start_ms, end_ms) and every DC's
// delta sample, in DC index order. Fired serially on the coordinating
// thread, after shard merge and before any checkpoint for that barrier, so
// an observer's own state can ride the same checkpoint atomically.
struct EpochSample {
  std::int64_t start_ms = 0;
  std::int64_t end_ms = 0;
  std::vector<EpochDcSample> dcs;
};

using EpochObserver = std::function<void(const EpochSample&)>;

struct SimulatorConfig {
  TopologyConfig topology;
  // Video chunk size; 0 disables chunking.
  std::uint64_t chunk_bytes = 2ULL << 20;
  // Playback bytes-per-second: spaces chunk requests in time.
  double playback_bytes_per_s = 600e3;
  // Browser cache per user.
  std::uint64_t browser_capacity_bytes = 50ULL << 20;
  std::int64_t browser_freshness_ms = 24 * 3600 * 1000LL;
  // Only objects up to this size are browser-cacheable (videos stream via
  // range requests and bypass the cache).
  std::uint64_t browser_max_object_bytes = 4ULL << 20;
  // Cooperative fill: on an edge miss, fetch from a sibling data center
  // that holds the object instead of the origin (cheaper transit; the
  // "copies closer to users" idea extended across the footprint).
  bool peer_fill = false;
  // Epoch length of the sharded engine. Shards synchronize at fixed
  // multiples of this interval to flush finalized records downstream and —
  // when peer_fill is on — exchange immutable snapshots of their cache
  // holdings, which is what sibling-DC lookups consult during the next
  // epoch (a miss can only be served by a peer copy that existed at the
  // last boundary). The trace is a pure function of config + seed and is
  // identical for any epoch length and any thread count; only the
  // peer-fill/origin split of miss traffic depends on this knob.
  std::int64_t epoch_ms = 3600 * 1000LL;
  PushConfig push;
  // Operational events (DC outages, cache flushes), applied by the sharded
  // engine as pure functions of the workload timestamps — see op_event.h.
  // Part of the engine fingerprint: resuming against an edited timeline
  // fails instead of splicing two different deliveries.
  std::vector<OpEvent> op_events;
  // Execution-only observation hook: fired once per epoch barrier with
  // per-DC counter deltas. Like the thread count, it can never shape a
  // record, so it is deliberately EXCLUDED from Engine::Fingerprint() and
  // from the scenario canonical form — attaching or detaching an observer
  // must not invalidate checkpoints or golden digests.
  EpochObserver epoch_observer;
};

// Delivery-side counters for one simulation (or one shard of one): a
// mergeable accumulator, all 64-bit, so per-shard results fold
// associatively into site and scenario totals.
struct SimulatorResult {
  CacheStats edge_stats;                 // aggregated over DCs
  std::vector<CacheStats> per_dc_stats;  // indexed like Topology
  OriginStats origin;
  // Log records emitted into the sink.
  std::uint64_t records = 0;
  // Cooperative fills served by sibling DCs instead of the origin.
  std::uint64_t peer_fetches = 0;
  std::uint64_t peer_bytes = 0;
  // Requests absorbed by browser caches (served fresh, never logged).
  std::uint64_t browser_fresh_hits = 0;
  // Conditional GETs answered 304.
  std::uint64_t revalidations = 0;
  std::uint64_t pushed_objects = 0;
  std::uint64_t pushed_bytes = 0;

  // Folds `other` into this accumulator (counters add, cache stats merge,
  // per-DC slots merge index-wise).
  void Merge(const SimulatorResult& other);

  // Checkpoints every counter (and the per-DC breakdown) so a resumed run
  // can continue accumulating from where the interrupted one stopped.
  void SaveState(ckpt::Writer& w) const;
  void RestoreState(ckpt::Reader& r);
};

// Legacy in-memory convenience: the counters plus the fully materialized,
// time-sorted trace. Only for traces known to fit in RAM — the streaming
// sink API is the primary interface.
struct SiteSimulation : SimulatorResult {
  // atlas-lint: allow(tracebuffer-in-cdn) legacy in-memory API; new code
  // streams through trace::RecordSink instead of materializing.
  trace::TraceBuffer trace;
};

class Simulator {
 public:
  Simulator(const SimulatorConfig& config, std::uint32_t publisher_id);

  // Consumes the generator's events (must be time-sorted) and streams the
  // log records into `sink` in final time-sorted order. `threads <= 0`
  // means util::DefaultThreads(); the emitted bytes are identical at any
  // thread count. The generator provides object/user lookup tables.
  SimulatorResult Run(const synth::WorkloadGenerator& gen,
                      const std::vector<synth::RequestEvent>& events,
                      trace::RecordSink& sink, int threads = 0);

  // Legacy in-memory path: same simulation, trace buffered and returned.
  SiteSimulation Run(const synth::WorkloadGenerator& gen,
                     const std::vector<synth::RequestEvent>& events);

  const SimulatorConfig& config() const { return config_; }

 private:
  SimulatorConfig config_;
  std::uint32_t publisher_id_;
};

// Convenience: generate + simulate one site profile in one call, with the
// logical budget calibrated so the final record count approximates
// profile.total_requests despite video chunk expansion.
SiteSimulation SimulateSite(const synth::SiteProfile& profile,
                            std::uint32_t publisher_id,
                            const SimulatorConfig& config, std::uint64_t seed);

// Streaming variant: records go to `sink`, only counters are returned.
SimulatorResult SimulateSiteTo(const synth::SiteProfile& profile,
                               std::uint32_t publisher_id,
                               const SimulatorConfig& config,
                               std::uint64_t seed, trace::RecordSink& sink,
                               int threads = 0);

}  // namespace atlas::cdn
