// Operational events applied inside the delivery simulation.
//
// Demand-side events (flash crowds, takedowns) live in synth::DemandEvent
// and reshape the request stream; the events here reshape the *delivery
// infrastructure* while the request stream stays fixed: a regional DC goes
// dark and its pinned users fail over to the next surviving DC, or an edge
// cache is wiped cold (upgrade, crash, config rollout).
//
// Determinism contract: both kinds are pure functions of the workload's
// event timestamps and the config — never of thread count, epoch length,
// or checkpoint cadence. Outage re-homing is resolved per request at
// routing time (engine BuildShards); flushes are applied through a
// per-shard cursor interleaved with the push plan in time order, exactly
// the way scheduled pushes already land between a DC's own requests.
#pragma once

#include <cstdint>
#include <vector>

namespace atlas::cdn {

enum class OpEventKind : std::uint8_t {
  // The DC serves nothing during [start_ms, end_ms): every request whose
  // user is homed there re-routes to the next DC index (mod DC count) that
  // is up at the request's timestamp. Routing is per request, so a user's
  // traffic returns home the instant the window closes. Re-homed users'
  // browser caches are per-(site, DC) shard state, so a failover looks to
  // the surviving DC like a cold new client — intended: a different edge
  // POP has never seen them.
  kDcOutage = 0,
  // The DC's edge cache for every site is dropped cold at start_ms
  // (end_ms is unused): resident bytes vanish, cumulative hit/miss
  // counters survive. dc == kAllDcs wipes every DC.
  kCacheFlush = 1,
};
const char* ToString(OpEventKind k);

struct OpEvent {
  OpEventKind kind = OpEventKind::kDcOutage;
  // Outage window [start_ms, end_ms); flushes fire at start_ms.
  std::int64_t start_ms = 0;
  std::int64_t end_ms = 0;
  // Target DC index; kAllDcs (flush only) targets every DC.
  std::int32_t dc = 0;

  static constexpr std::int32_t kAllDcs = -1;

  bool Active(std::int64_t t) const { return t >= start_ms && t < end_ms; }
};

}  // namespace atlas::cdn
