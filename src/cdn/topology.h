// CDN topology: geographically distributed edge data centers plus an origin.
//
// §III: "A CDN operator typically places content at multiple geographically
// distributed data centers. A user's request ... is redirected to the
// closest data center via DNS redirection, anycast, or other CDN-specific
// methods." The model: one (or more) edge DCs per continent; users route to
// their continent's DC (round-robin by user hash when a continent has
// several); every edge miss is an origin fetch.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cdn/cache.h"
#include "synth/user_model.h"

namespace atlas::cdn {

struct OriginStats {
  std::uint64_t fetches = 0;
  std::uint64_t bytes = 0;
};

struct DataCenter {
  std::string name;
  synth::Continent continent;
  std::unique_ptr<Cache> cache;
};

struct TopologyConfig {
  PolicyKind edge_policy = PolicyKind::kLru;
  std::uint64_t edge_capacity_bytes = 8ULL << 30;  // per DC
  std::int64_t edge_ttl_ms = 6 * 3600 * 1000LL;    // for TTL policies
  int dcs_per_continent = 1;
};

class Topology {
 public:
  explicit Topology(const TopologyConfig& config);

  // The edge DC serving a user, chosen by continent and sharded by user id
  // when the continent has multiple DCs.
  DataCenter& Route(synth::Continent continent, std::uint64_t user_id);

  // Index (into DC order) of the DC serving a user: Route(c, u) is
  // dc(RouteIndex(config, c, u)) for the same config. Static so the sharded
  // simulation engine can pin users to shards without building a Topology.
  static std::size_t RouteIndex(const TopologyConfig& config,
                                synth::Continent continent,
                                std::uint64_t user_id);

  // Number of edge DCs a config produces (continents x dcs_per_continent).
  static std::size_t DcCount(const TopologyConfig& config);

  // Records an origin fetch of `bytes` (every edge miss).
  void FetchFromOrigin(std::uint64_t bytes);

  // True if any data center other than `self` currently holds `key`
  // (cooperative cache fill: a peer copy is cheaper than an origin fetch).
  bool AnyPeerContains(const DataCenter& self, std::uint64_t key) const;

  std::size_t dc_count() const { return dcs_.size(); }
  const DataCenter& dc(std::size_t i) const { return dcs_.at(i); }
  DataCenter& mutable_dc(std::size_t i) { return dcs_.at(i); }
  const OriginStats& origin() const { return origin_; }

  // Aggregated edge stats across all DCs.
  CacheStats TotalEdgeStats() const;

 private:
  TopologyConfig config_;
  std::vector<DataCenter> dcs_;
  OriginStats origin_;
};

}  // namespace atlas::cdn
