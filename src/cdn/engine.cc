#include "cdn/engine.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "cdn/browser_cache.h"
#include "cdn/chunking.h"
#include "cdn/push.h"
#include "ckpt/checkpoint.h"  // atlas-lint: allow(layer-dag) ckpt is the passive serialization substrate; consuming its codec interface does not invert control flow
#include "trace/content_class.h"
#include "trace/wire_format.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/par.h"
#include "util/sorted.h"
#include "util/time.h"

namespace atlas::cdn {
namespace {

constexpr std::size_t kMergeBatchRecords = 8192;

// Checkpoint section layouts ("engine.meta" + one "engine.shard.<i>" each).
constexpr std::uint32_t kEngineMetaVersion = 1;
// v2: adds the cache-flush cursor and the pre-flush stats accumulator.
constexpr std::uint32_t kEngineShardVersion = 2;

// A record plus its provenance. The sequential simulator appended records
// in (event order, chunk order) and then ran a *stable* sort on timestamp,
// so its output order is exactly (timestamp, event_seq, sub_seq); the
// merged scenario trace concatenated sites in registration order before
// the stable sort, i.e. (timestamp, site, event_seq, sub_seq). Tagging
// every record with that provenance lets shards emit in any decomposition
// and still merge back to the identical byte stream.
struct TaggedRecord {
  trace::LogRecord rec;
  std::uint64_t event_seq = 0;  // index into the site's event vector
  std::uint32_t sub_seq = 0;    // chunk index within the event
};

bool TagLess(const TaggedRecord& a, const TaggedRecord& b) {
  if (a.rec.timestamp_ms != b.rec.timestamp_ms) {
    return a.rec.timestamp_ms < b.rec.timestamp_ms;
  }
  if (a.event_seq != b.event_seq) return a.event_seq < b.event_seq;
  return a.sub_seq < b.sub_seq;
}

trace::LogRecord BaseRecord(const synth::RequestEvent& ev,
                            const synth::UserInfo& user,
                            const synth::ObjectMeta& obj,
                            std::uint32_t publisher_id) {
  trace::LogRecord rec;
  rec.timestamp_ms = ev.timestamp_ms;
  rec.url_hash = obj.url_hash;
  rec.user_id = user.user_id;
  rec.object_size = obj.size_bytes;
  rec.publisher_id = publisher_id;
  rec.user_agent_id = user.user_agent_id;
  rec.file_type = obj.file_type;
  rec.tz_offset_quarter_hours = user.tz_offset_quarter_hours;
  return rec;
}

// One (site, DC) shard. Everything mutable here is touched by exactly one
// worker at a time; the only cross-shard reads during an epoch are the
// immutable `snapshot` vectors of sibling shards, rebuilt at barriers.
struct Shard {
  std::size_t site = 0;
  std::size_t dc = 0;
  std::unique_ptr<Cache> cache;
  std::unordered_map<std::uint32_t, BrowserCache> browsers;
  // Indices (ascending) into the site's event vector of the events whose
  // user routes to this DC.
  std::vector<std::uint64_t> event_indices;
  std::size_t next_event = 0;
  // Private cursor into the site's shared push plan: push writes to every
  // DC independently, so each shard applies the plan to its own cache.
  std::size_t push_cursor = 0;
  // Private cursor into this DC's flush schedule (op_events), interleaved
  // with the push plan in time order.
  std::size_t flush_cursor = 0;
  // Stats of cache generations dropped by flushes: the counters survive a
  // wipe (an operational flush is not an eviction storm), so reporting
  // merges this with the live cache's stats.
  CacheStats flushed_stats;
  std::vector<TaggedRecord> pending;    // records not yet past a barrier
  std::vector<TaggedRecord> finalized;  // this epoch's merge input, sorted
  // Keys resident in `cache` at the last epoch boundary, sorted.
  std::vector<std::uint64_t> snapshot;
  // Per-shard counters, folded into the site's SimulatorResult at the end.
  OriginStats origin;
  std::uint64_t records = 0;
  std::uint64_t peer_fetches = 0;
  std::uint64_t peer_bytes = 0;
  std::uint64_t browser_fresh_hits = 0;
  std::uint64_t revalidations = 0;
  std::uint64_t pushed_bytes = 0;
};

// Cumulative per-shard delivery totals at the last observed barrier; the
// epoch observer reports deltas against these. Derived state only — it is
// re-synced from the shards after a checkpoint restore, never serialized.
struct ShardTotals {
  CacheStats edge;
  OriginStats origin;
  std::uint64_t peer_fetches = 0;
  std::uint64_t peer_bytes = 0;
  std::uint64_t revalidations = 0;
  std::uint64_t pushed_bytes = 0;
};

ShardTotals CurrentTotals(const Shard& sh) {
  ShardTotals t;
  t.edge = sh.flushed_stats;  // generations dropped by flushes still count
  t.edge.Merge(sh.cache->stats());
  t.origin = sh.origin;
  t.peer_fetches = sh.peer_fetches;
  t.peer_bytes = sh.peer_bytes;
  t.revalidations = sh.revalidations;
  t.pushed_bytes = sh.pushed_bytes;
  return t;
}

class Engine {
 public:
  Engine(std::span<const SiteJob> jobs, const SimulatorConfig& config,
         trace::RecordSink& sink, int threads,
         const CheckpointOptions& opts)
      : jobs_(jobs), config_(config), sink_(sink), opts_(opts) {
    if (opts_.every_epochs > 0 && opts_.path.empty()) {
      throw std::invalid_argument(
          "RunSharded: checkpointing enabled without a path");
    }
    if (config.playback_bytes_per_s <= 0.0) {
      throw std::invalid_argument("Simulator: playback rate must be > 0");
    }
    if (config.epoch_ms <= 0) {
      throw std::invalid_argument("Simulator: epoch_ms must be > 0");
    }
    if (config.topology.dcs_per_continent <= 0) {
      throw std::invalid_argument("Topology: dcs_per_continent must be > 0");
    }
    threads_ = util::ResolveThreads(threads);
    dcs_per_site_ = Topology::DcCount(config.topology);
    Validate();
    BuildShards();
  }

  std::vector<SimulatorResult> Run();

 private:
  Shard& shard(std::size_t site, std::size_t dc) {
    return shards_[site * dcs_per_site_ + dc];
  }

  void Validate() const;
  void BuildShards();
  void ForEachShard(const std::function<void(std::size_t)>& fn);
  void ProcessEpoch(Shard& shard, std::int64_t epoch_end_ms, bool last);
  void ProcessEvent(Shard& shard, std::uint64_t event_seq);
  void ApplyOpsUpTo(Shard& shard, std::int64_t now_ms);
  void ApplyOnePush(Shard& shard);
  void FlushCache(Shard& shard);
  bool DcDown(std::size_t dc, std::int64_t t) const;
  std::size_t RouteForTime(std::size_t home_dc, std::int64_t t) const;
  void Fill(Shard& shard, std::uint64_t key, std::uint64_t bytes);
  BrowserCache& BrowserFor(Shard& shard, std::uint32_t user_index);
  void MergeFinalized();
  void RebuildSnapshots();
  // Fires config_.epoch_observer with this barrier's per-DC deltas. Runs
  // serially on the coordinating thread after MergeFinalized and before
  // SaveCheckpoint, so observer state can join the same atomic commit.
  void NotifyObserver(std::int64_t epoch_end);
  // Re-bases the observer's delta baselines on the shards' current
  // counters (used after a checkpoint restore: already-reported activity
  // must not be re-reported on resume).
  void SyncObserverBaseline();
  std::vector<SimulatorResult> Assemble() const;

  // Digest of everything a checkpoint assumes immutable: job identities,
  // event counts, and every config knob that shapes the record stream.
  std::uint64_t Fingerprint() const;
  void SaveCheckpoint(std::int64_t epoch_end, std::uint64_t barriers_done);
  void SaveShard(ckpt::Writer& w, const Shard& sh) const;
  // Returns the epoch_end of the barrier the checkpoint was taken at and
  // the barriers completed; shard state is overwritten in place.
  void RestoreFromCheckpoint(ckpt::Reader& r, std::int64_t* epoch_end,
                             std::uint64_t* barriers_done);
  void RestoreShard(ckpt::Reader& r, Shard& sh);

  std::span<const SiteJob> jobs_;
  const SimulatorConfig& config_;
  trace::RecordSink& sink_;
  const CheckpointOptions& opts_;
  int threads_ = 1;
  std::size_t dcs_per_site_ = 0;
  std::vector<Shard> shards_;
  // Per-shard totals at the last observed barrier (empty when no observer).
  std::vector<ShardTotals> observer_prev_;
  std::vector<std::vector<PushItem>> push_plans_;  // per site
  // Sorted flush instants per DC, expanded from config_.op_events.
  std::vector<std::vector<std::int64_t>> dc_flush_times_;
  bool has_outages_ = false;
  std::vector<trace::LogRecord> batch_;            // merge output staging
  std::unique_ptr<util::ThreadPool> pool_;
};

std::vector<SimulatorResult> Engine::Run() {
  if (threads_ > 1 && shards_.size() > 1 && !util::InParallelRegion()) {
    pool_ = std::make_unique<util::ThreadPool>(
        static_cast<int>(std::min<std::size_t>(
            static_cast<std::size_t>(threads_), shards_.size())));
  }
  std::int64_t min_ts = std::numeric_limits<std::int64_t>::max();
  std::int64_t max_ts = std::numeric_limits<std::int64_t>::min();
  for (const auto& job : jobs_) {
    if (!job.events->empty()) {
      min_ts = std::min(min_ts, job.events->front().timestamp_ms);
      max_ts = std::max(max_ts, job.events->back().timestamp_ms);
    }
  }
  // Epoch boundaries are fixed multiples of epoch_ms — a pure function of
  // the workload and config, never of thread count. Leading empty epochs
  // are skipped (caches are empty, so their snapshots would be too).
  std::int64_t epoch_end =
      max_ts == std::numeric_limits<std::int64_t>::min()
          ? std::numeric_limits<std::int64_t>::max()
          : (min_ts / config_.epoch_ms + 1) * config_.epoch_ms;
  std::uint64_t barriers_done = 0;
  if (opts_.resume != nullptr) {
    // Mutable state comes back from the snapshot; the boundary schedule is
    // recomputed identically (it is a pure function of the workload), and
    // the run continues with the epoch after the checkpointed barrier.
    std::int64_t saved_epoch_end = 0;
    RestoreFromCheckpoint(*opts_.resume, &saved_epoch_end, &barriers_done);
    epoch_end = saved_epoch_end + config_.epoch_ms;
    SyncObserverBaseline();
  }
  for (;;) {
    const bool last = epoch_end > max_ts;
    const std::int64_t bound =
        last ? std::numeric_limits<std::int64_t>::max() : epoch_end;
    ForEachShard(
        [&](std::size_t i) { ProcessEpoch(shards_[i], bound, last); });
    MergeFinalized();
    NotifyObserver(epoch_end);
    if (last) break;
    if (config_.peer_fill) RebuildSnapshots();
    ++barriers_done;
    if (opts_.every_epochs > 0 && barriers_done % opts_.every_epochs == 0) {
      SaveCheckpoint(epoch_end, barriers_done);
      if (opts_.after_save && !opts_.after_save(barriers_done)) {
        // In-process "kill": stop here. Partial results; a resumed run
        // picks up from the snapshot just committed.
        pool_.reset();
        return Assemble();
      }
    }
    epoch_end += config_.epoch_ms;
  }
  pool_.reset();
  return Assemble();
}

std::uint64_t Engine::Fingerprint() const {
  std::uint64_t h = util::Fnv1a64("atlas.engine.v1");
  h = util::HashCombine(h, static_cast<std::uint64_t>(jobs_.size()));
  h = util::HashCombine(h, static_cast<std::uint64_t>(dcs_per_site_));
  for (const auto& job : jobs_) {
    h = util::HashCombine(h, job.generator->Fingerprint());
    h = util::HashCombine(h, job.publisher_id);
    h = util::HashCombine(h, static_cast<std::uint64_t>(job.events->size()));
  }
  h = util::HashCombine(h, static_cast<std::uint64_t>(config_.epoch_ms));
  h = util::HashCombine(h, config_.chunk_bytes);
  std::uint64_t playback_bits = 0;
  static_assert(sizeof(playback_bits) == sizeof(config_.playback_bytes_per_s));
  std::memcpy(&playback_bits, &config_.playback_bytes_per_s,
              sizeof(playback_bits));
  h = util::HashCombine(h, playback_bits);
  h = util::HashCombine(h, config_.browser_capacity_bytes);
  h = util::HashCombine(h, static_cast<std::uint64_t>(config_.browser_freshness_ms));
  h = util::HashCombine(h, config_.browser_max_object_bytes);
  h = util::HashCombine(h, config_.peer_fill ? 1 : 0);
  h = util::HashCombine(h, config_.push.enabled ? 1 : 0);
  h = util::HashCombine(h, static_cast<std::uint64_t>(config_.push.top_n));
  const std::uint64_t push_pattern_bits =
      (config_.push.include_diurnal ? 1u : 0u) |
      (config_.push.include_long_lived ? 2u : 0u) |
      (config_.push.include_short_lived ? 4u : 0u) |
      (config_.push.include_flash ? 8u : 0u) |
      (config_.push.include_outlier ? 16u : 0u);
  h = util::HashCombine(h, push_pattern_bits);
  h = util::HashCombine(h, config_.push.video_prefix_chunks);
  h = util::HashCombine(h,
                        static_cast<std::uint64_t>(config_.topology.edge_policy));
  h = util::HashCombine(h, config_.topology.edge_capacity_bytes);
  h = util::HashCombine(h, static_cast<std::uint64_t>(config_.topology.edge_ttl_ms));
  h = util::HashCombine(
      h, static_cast<std::uint64_t>(config_.topology.dcs_per_continent));
  // Operational events re-route and wipe caches, so they shape the record
  // stream exactly like any other config knob.
  h = util::HashCombine(h, static_cast<std::uint64_t>(config_.op_events.size()));
  for (const OpEvent& e : config_.op_events) {
    h = util::HashCombine(h, static_cast<std::uint64_t>(e.kind));
    h = util::HashCombine(h, static_cast<std::uint64_t>(e.start_ms));
    h = util::HashCombine(h, static_cast<std::uint64_t>(e.end_ms));
    h = util::HashCombine(h, static_cast<std::uint64_t>(
                                 static_cast<std::int64_t>(e.dc)));
  }
  for (const auto& plan : push_plans_) {
    h = util::HashCombine(h, static_cast<std::uint64_t>(plan.size()));
  }
  return h;
}

void Engine::SaveShard(ckpt::Writer& w, const Shard& sh) const {
  w.WriteU64(static_cast<std::uint64_t>(sh.next_event));
  w.WriteU64(static_cast<std::uint64_t>(sh.push_cursor));
  w.WriteU64(static_cast<std::uint64_t>(sh.flush_cursor));
  w.WriteU64(sh.flushed_stats.hits);
  w.WriteU64(sh.flushed_stats.misses);
  w.WriteU64(sh.flushed_stats.inserts);
  w.WriteU64(sh.flushed_stats.evictions);
  w.WriteU64(sh.flushed_stats.rejected);
  w.WriteU64(sh.flushed_stats.hit_bytes);
  w.WriteU64(sh.flushed_stats.miss_bytes);
  w.WriteU64(sh.origin.fetches);
  w.WriteU64(sh.origin.bytes);
  w.WriteU64(sh.records);
  w.WriteU64(sh.peer_fetches);
  w.WriteU64(sh.peer_bytes);
  w.WriteU64(sh.browser_fresh_hits);
  w.WriteU64(sh.revalidations);
  w.WriteU64(sh.pushed_bytes);
  sh.cache->SaveState(w);
  // Browser caches, keyed by user index; sorted so the section bytes are a
  // pure function of state, not of hash-table layout.
  w.WriteU64(static_cast<std::uint64_t>(sh.browsers.size()));
  for (std::uint32_t user_index : util::SortedKeys(sh.browsers)) {
    w.WriteU32(user_index);
    sh.browsers.at(user_index).SaveState(w);
  }
  // Records emitted but not yet past a barrier (timestamps >= the
  // checkpointed boundary). `finalized` is always merged by save time.
  w.WriteU64(static_cast<std::uint64_t>(sh.pending.size()));
  for (const TaggedRecord& tr : sh.pending) {
    unsigned char buf[trace::wire::kRecordWireSize];
    trace::wire::EncodeRecord(tr.rec, buf);
    w.WriteBytes(buf, sizeof(buf));
    w.WriteU64(tr.event_seq);
    w.WriteU32(tr.sub_seq);
  }
  // `snapshot` is derivable (RebuildSnapshots) and not serialized.
}

void Engine::SaveCheckpoint(std::int64_t epoch_end,
                            std::uint64_t barriers_done) {
  ckpt::WriteCheckpointFile(opts_.path, [&](ckpt::Writer& w) {
    w.BeginSection("engine.meta", kEngineMetaVersion);
    w.WriteU64(Fingerprint());
    w.WriteI64(epoch_end);
    w.WriteU64(barriers_done);
    w.WriteU64(static_cast<std::uint64_t>(shards_.size()));
    w.EndSection();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      w.BeginSection("engine.shard." + std::to_string(i),
                     kEngineShardVersion);
      SaveShard(w, shards_[i]);
      w.EndSection();
    }
    // Caller-owned state (e.g. the output TraceWriter) joins the same
    // atomic commit so trace and engine can never disagree on progress.
    if (opts_.save_extra) opts_.save_extra(w);
  });
}

void Engine::RestoreShard(ckpt::Reader& r, Shard& sh) {
  sh.next_event = static_cast<std::size_t>(r.ReadU64());
  sh.push_cursor = static_cast<std::size_t>(r.ReadU64());
  sh.flush_cursor = static_cast<std::size_t>(r.ReadU64());
  if (sh.next_event > sh.event_indices.size() ||
      sh.push_cursor > push_plans_[sh.site].size() ||
      sh.flush_cursor > dc_flush_times_[sh.dc].size()) {
    throw std::runtime_error("ckpt: shard cursor out of range");
  }
  sh.flushed_stats = CacheStats{};
  sh.flushed_stats.hits = r.ReadU64();
  sh.flushed_stats.misses = r.ReadU64();
  sh.flushed_stats.inserts = r.ReadU64();
  sh.flushed_stats.evictions = r.ReadU64();
  sh.flushed_stats.rejected = r.ReadU64();
  sh.flushed_stats.hit_bytes = r.ReadU64();
  sh.flushed_stats.miss_bytes = r.ReadU64();
  sh.origin.fetches = r.ReadU64();
  sh.origin.bytes = r.ReadU64();
  sh.records = r.ReadU64();
  sh.peer_fetches = r.ReadU64();
  sh.peer_bytes = r.ReadU64();
  sh.browser_fresh_hits = r.ReadU64();
  sh.revalidations = r.ReadU64();
  sh.pushed_bytes = r.ReadU64();
  sh.cache->RestoreState(r);
  sh.browsers.clear();
  const std::uint64_t nbrowsers = r.ReadU64();
  for (std::uint64_t i = 0; i < nbrowsers; ++i) {
    const std::uint32_t user_index = r.ReadU32();
    BrowserFor(sh, user_index).RestoreState(r);
  }
  sh.pending.clear();
  sh.finalized.clear();
  const std::uint64_t npending = r.ReadU64();
  sh.pending.reserve(static_cast<std::size_t>(npending));
  for (std::uint64_t i = 0; i < npending; ++i) {
    const std::vector<unsigned char> buf = r.ReadBytes();
    if (buf.size() != trace::wire::kRecordWireSize) {
      throw std::runtime_error("ckpt: bad pending record size");
    }
    TaggedRecord tr;
    tr.rec = trace::wire::DecodeRecord(buf.data());
    tr.event_seq = r.ReadU64();
    tr.sub_seq = r.ReadU32();
    sh.pending.push_back(tr);
  }
}

void Engine::RestoreFromCheckpoint(ckpt::Reader& r, std::int64_t* epoch_end,
                                   std::uint64_t* barriers_done) {
  r.BeginSection("engine.meta", kEngineMetaVersion);
  const std::uint64_t fp = r.ReadU64();
  if (fp != Fingerprint()) {
    throw std::runtime_error(
        "ckpt: engine fingerprint mismatch — the checkpoint was taken with "
        "a different workload, seed, or simulator configuration");
  }
  *epoch_end = r.ReadI64();
  *barriers_done = r.ReadU64();
  const std::uint64_t nshards = r.ReadU64();
  r.EndSection();
  if (nshards != shards_.size()) {
    throw std::runtime_error("ckpt: shard count mismatch");
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    r.BeginSection("engine.shard." + std::to_string(i), kEngineShardVersion);
    RestoreShard(r, shards_[i]);
    r.EndSection();
  }
  // Peer-fill snapshots are a pure function of the restored caches.
  if (config_.peer_fill) RebuildSnapshots();
}

void Engine::Validate() const {
  for (const OpEvent& e : config_.op_events) {
    if (e.kind == OpEventKind::kDcOutage) {
      if (e.start_ms < 0 || e.end_ms <= e.start_ms) {
        throw std::invalid_argument(
            "Simulator: outage window must satisfy 0 <= start < end");
      }
      if (e.dc < 0 || static_cast<std::size_t>(e.dc) >= dcs_per_site_) {
        throw std::invalid_argument("Simulator: outage dc out of range");
      }
      if (dcs_per_site_ < 2) {
        throw std::invalid_argument(
            "Simulator: a DC outage needs >= 2 DCs to fail over to");
      }
    } else {
      if (e.start_ms < 0) {
        throw std::invalid_argument("Simulator: flush time must be >= 0");
      }
      if (e.dc < OpEvent::kAllDcs ||
          (e.dc >= 0 && static_cast<std::size_t>(e.dc) >= dcs_per_site_)) {
        throw std::invalid_argument("Simulator: flush dc out of range");
      }
    }
  }
  // Overlapping outages of the same DC would make "the" failover target
  // ambiguous to reason about; reject rather than define an ordering.
  for (std::size_t i = 0; i < config_.op_events.size(); ++i) {
    for (std::size_t j = i + 1; j < config_.op_events.size(); ++j) {
      const OpEvent& a = config_.op_events[i];
      const OpEvent& b = config_.op_events[j];
      if (a.kind == OpEventKind::kDcOutage &&
          b.kind == OpEventKind::kDcOutage && a.dc == b.dc &&
          a.start_ms < b.end_ms && b.start_ms < a.end_ms) {
        throw std::invalid_argument(
            "Simulator: overlapping outage windows for the same DC");
      }
    }
  }
  for (const auto& job : jobs_) {
    if (job.generator == nullptr || job.events == nullptr) {
      throw std::invalid_argument("RunSharded: job missing generator/events");
    }
    std::int64_t last_ts = std::numeric_limits<std::int64_t>::min();
    for (const auto& ev : *job.events) {
      if (ev.timestamp_ms < last_ts) {
        throw std::invalid_argument("Simulator: events must be time-sorted");
      }
      last_ts = ev.timestamp_ms;
    }
  }
}

bool Engine::DcDown(std::size_t dc, std::int64_t t) const {
  for (const OpEvent& e : config_.op_events) {
    if (e.kind == OpEventKind::kDcOutage &&
        static_cast<std::size_t>(e.dc) == dc && e.Active(t)) {
      return true;
    }
  }
  return false;
}

std::size_t Engine::RouteForTime(std::size_t home_dc, std::int64_t t) const {
  if (!has_outages_) return home_dc;
  std::size_t d = home_dc;
  for (std::size_t hop = 0; hop < dcs_per_site_; ++hop) {
    if (!DcDown(d, t)) return d;
    d = (d + 1) % dcs_per_site_;
  }
  throw std::runtime_error("Simulator: every DC is down at t=" +
                           std::to_string(t) + "ms — nothing can serve");
}

void Engine::BuildShards() {
  for (const OpEvent& e : config_.op_events) {
    if (e.kind == OpEventKind::kDcOutage) has_outages_ = true;
  }
  dc_flush_times_.resize(dcs_per_site_);
  for (const OpEvent& e : config_.op_events) {
    if (e.kind != OpEventKind::kCacheFlush) continue;
    for (std::size_t d = 0; d < dcs_per_site_; ++d) {
      if (e.dc == OpEvent::kAllDcs || static_cast<std::size_t>(e.dc) == d) {
        dc_flush_times_[d].push_back(e.start_ms);
      }
    }
  }
  for (auto& times : dc_flush_times_) {
    std::sort(times.begin(), times.end());
  }

  shards_.resize(jobs_.size() * dcs_per_site_);
  push_plans_.reserve(jobs_.size());
  for (std::size_t s = 0; s < jobs_.size(); ++s) {
    push_plans_.push_back(
        BuildPushPlan(jobs_[s].generator->catalog(), config_.push));
    for (std::size_t d = 0; d < dcs_per_site_; ++d) {
      Shard& sh = shard(s, d);
      sh.site = s;
      sh.dc = d;
      sh.cache = CreateCache(config_.topology.edge_policy,
                             config_.topology.edge_capacity_bytes,
                             config_.topology.edge_ttl_ms);
    }
    // Pin every event to its user's home DC. The pinning is a pure
    // function of the user, so the per-shard event slices — and therefore
    // every cache's operation sequence — never depend on thread count.
    // Routes are precomputed in one streaming pass over the population
    // (event order is random, which would thrash a lazy user table).
    const synth::UserPopulation& users = jobs_[s].generator->users();
    std::vector<std::uint8_t> user_dc(users.size(), 0);
    users.ForEachUser([&](std::size_t u, const synth::UserInfo& user) {
      user_dc[u] = static_cast<std::uint8_t>(
          Topology::RouteIndex(config_.topology, user.continent, user.user_id));
    });
    const auto& events = *jobs_[s].events;
    for (std::size_t i = 0; i < events.size(); ++i) {
      // Outage failover happens here: routing consults the event's own
      // timestamp, so a pinned user serves from their home DC before and
      // after the window and from the failover DC inside it. Still a pure
      // function of (workload, config) — thread count cannot touch it.
      const std::size_t d = RouteForTime(user_dc[events[i].user_index],
                                         events[i].timestamp_ms);
      shard(s, d).event_indices.push_back(i);
    }
  }
}

void Engine::ForEachShard(const std::function<void(std::size_t)>& fn) {
  // One persistent pool for the whole run (rebuilding it every epoch would
  // pay thread spawns per barrier); inline when serial or already nested.
  if (pool_ != nullptr) {
    pool_->Run(shards_.size(), fn);
  } else {
    for (std::size_t i = 0; i < shards_.size(); ++i) fn(i);
  }
}

BrowserCache& Engine::BrowserFor(Shard& sh, std::uint32_t user_index) {
  auto it = sh.browsers.find(user_index);
  if (it == sh.browsers.end()) {
    it = sh.browsers
             .emplace(user_index,
                      BrowserCache(config_.browser_capacity_bytes,
                                   config_.browser_freshness_ms))
             .first;
  }
  return it->second;
}

void Engine::Fill(Shard& sh, std::uint64_t key, std::uint64_t bytes) {
  if (config_.peer_fill) {
    // Peer holdings are the epoch-snapshotted ones: what sibling DCs held
    // at the last barrier, not what they hold "now" — live peeks would
    // race and make the answer depend on cross-shard timing.
    for (std::size_t d = 0; d < dcs_per_site_; ++d) {
      if (d == sh.dc) continue;
      const auto& snap = shard(sh.site, d).snapshot;
      if (std::binary_search(snap.begin(), snap.end(), key)) {
        ++sh.peer_fetches;
        sh.peer_bytes += bytes;
        return;
      }
    }
  }
  ++sh.origin.fetches;
  sh.origin.bytes += bytes;
}

void Engine::FlushCache(Shard& sh) {
  // The wipe drops resident bytes, not history: the dead generation's
  // counters move to the accumulator and a fresh cache (same policy,
  // capacity, TTL) takes over. The stale peer-fill snapshot stays up until
  // the next barrier — siblings consulting it see the same staleness any
  // mid-epoch eviction produces.
  sh.flushed_stats.Merge(sh.cache->stats());
  sh.cache = CreateCache(config_.topology.edge_policy,
                         config_.topology.edge_capacity_bytes,
                         config_.topology.edge_ttl_ms);
}

void Engine::ApplyOpsUpTo(Shard& sh, std::int64_t now_ms) {
  // Interleave scheduled pushes and cache flushes in time order, so a
  // flush wipes exactly the pushes that preceded it. At a tie the flush
  // lands first: a push scheduled for the same instant re-warms the cold
  // cache. Both cursors advance on event timestamps only — epoch length
  // and thread count never reorder them.
  const std::vector<PushItem>& plan = push_plans_[sh.site];
  const std::vector<std::int64_t>& flushes = dc_flush_times_[sh.dc];
  for (;;) {
    const bool push_due = sh.push_cursor < plan.size() &&
                          plan[sh.push_cursor].push_at_ms <= now_ms;
    const bool flush_due = sh.flush_cursor < flushes.size() &&
                           flushes[sh.flush_cursor] <= now_ms;
    if (!push_due && !flush_due) return;
    if (flush_due && (!push_due || flushes[sh.flush_cursor] <=
                                       plan[sh.push_cursor].push_at_ms)) {
      FlushCache(sh);
      ++sh.flush_cursor;
    } else {
      ApplyOnePush(sh);
    }
  }
}

void Engine::ApplyOnePush(Shard& sh) {
  const std::vector<PushItem>& plan = push_plans_[sh.site];
  const synth::Catalog& catalog = jobs_[sh.site].generator->catalog();
  {
    const auto& item = plan[sh.push_cursor];
    const auto& obj = catalog.object(item.object_index);
    // Push the object (or its leading chunks) into this shard's edge DC.
    // When the prefix reaches the end of the file the final chunk is
    // pushed at its actual (possibly short) size, matching what a viewer
    // fetch would insert — otherwise pushed and fetched copies of the same
    // chunk key disagree on occupancy.
    std::uint64_t chunks = 1;
    std::uint64_t chunk_size = obj.size_bytes;
    std::uint64_t last_size = obj.size_bytes;
    if (obj.content_class == trace::ContentClass::kVideo &&
        config_.chunk_bytes > 0 && obj.size_bytes > config_.chunk_bytes) {
      const std::uint64_t total_chunks =
          (obj.size_bytes + config_.chunk_bytes - 1) / config_.chunk_bytes;
      chunks = std::min<std::uint64_t>(config_.push.video_prefix_chunks,
                                       total_chunks);
      chunk_size = config_.chunk_bytes;
      last_size = chunks == total_chunks
                      ? obj.size_bytes - (total_chunks - 1) * config_.chunk_bytes
                      : config_.chunk_bytes;
    }
    for (std::uint64_t c = 0; c < chunks; ++c) {
      const std::uint64_t push_bytes = c + 1 == chunks ? last_size : chunk_size;
      if (sh.cache->Admit(ChunkKey(obj.url_hash, c), push_bytes,
                          item.push_at_ms)) {
        sh.pushed_bytes += push_bytes;
      }
    }
    ++sh.push_cursor;
  }
}

void Engine::ProcessEvent(Shard& sh, std::uint64_t event_seq) {
  const SiteJob& job = jobs_[sh.site];
  const synth::RequestEvent& ev = (*job.events)[event_seq];
  const synth::UserInfo& user = job.generator->users().user(ev.user_index);
  const synth::ObjectMeta& obj = job.generator->catalog().object(ev.object_index);
  const std::uint32_t publisher_id = job.publisher_id;
  BrowserCache& browser = BrowserFor(sh, ev.user_index);

  // Incognito: the private window from the previous session was closed;
  // its cache is gone when a new session starts.
  if (ev.session_start && user.incognito) browser.Clear();

  // --- anomalies -----------------------------------------------------
  if (ev.anomaly != synth::Anomaly::kNone) {
    trace::LogRecord rec = BaseRecord(ev, user, obj, publisher_id);
    rec.cache_status = trace::CacheStatus::kMiss;
    rec.response_bytes = 0;
    switch (ev.anomaly) {
      case synth::Anomaly::kHotlink:
        rec.response_code = trace::kHttpForbidden;  // 403
        break;
      case synth::Anomaly::kBadRange:
        rec.response_code = trace::kHttpRangeNotSatisfiable;  // 416
        break;
      case synth::Anomaly::kBeacon:
        rec.response_code = trace::kHttpNoContent;  // 204
        break;
      case synth::Anomaly::kNone:
        break;
    }
    sh.pending.push_back({rec, event_seq, 0});
    return;
  }

  // --- video: chunked transfer ------------------------------------------
  if (obj.content_class == trace::ContentClass::kVideo &&
      config_.chunk_bytes > 0) {
    const ChunkPlan plan =
        PlanChunks(obj.size_bytes, ev.watch_fraction, config_.chunk_bytes);
    std::int64_t t = ev.timestamp_ms;
    const auto gap_ms = static_cast<std::int64_t>(
        static_cast<double>(plan.chunk_bytes) /
        config_.playback_bytes_per_s * 1000.0);
    for (std::uint64_t c = 0; c < plan.num_chunks; ++c) {
      const std::uint64_t bytes =
          c + 1 == plan.num_chunks ? plan.last_chunk_bytes : plan.chunk_bytes;
      const std::uint64_t key = ChunkKey(obj.url_hash, c);
      // The final chunk is usually short; cache and origin accounting must
      // use its actual size or every non-multiple video inflates edge
      // occupancy and origin bytes by up to chunk_bytes - 1.
      const trace::CacheStatus status = sh.cache->Access(key, bytes, t);
      if (status == trace::CacheStatus::kMiss) {
        Fill(sh, key, bytes);
      }
      trace::LogRecord rec = BaseRecord(ev, user, obj, publisher_id);
      rec.timestamp_ms = t;
      rec.response_bytes = bytes;
      rec.cache_status = status;
      rec.response_code =
          plan.partial ? trace::kHttpPartialContent : trace::kHttpOk;
      sh.pending.push_back({rec, event_seq, static_cast<std::uint32_t>(c)});
      t += std::max<std::int64_t>(gap_ms, 1);
    }
    return;
  }

  // --- image / other / unchunked video ----------------------------------
  const bool cacheable = obj.size_bytes <= config_.browser_max_object_bytes &&
                         obj.content_class != trace::ContentClass::kVideo;
  if (cacheable) {
    const BrowserLookup lookup = browser.Lookup(obj.url_hash, ev.timestamp_ms);
    if (lookup == BrowserLookup::kFresh) {
      // Served entirely from the local cache: the CDN never sees this
      // request, so no record is emitted.
      ++sh.browser_fresh_hits;
      return;
    }
    if (lookup == BrowserLookup::kStale) {
      // Conditional GET. Content is immutable in this model, so the edge
      // always answers 304 (headers only). The edge still consults its
      // cache; validators for uncached objects pull the object in.
      const trace::CacheStatus status =
          sh.cache->Access(obj.url_hash, obj.size_bytes, ev.timestamp_ms);
      if (status == trace::CacheStatus::kMiss) {
        Fill(sh, obj.url_hash, obj.size_bytes);
      }
      browser.Renew(obj.url_hash, ev.timestamp_ms);
      trace::LogRecord rec = BaseRecord(ev, user, obj, publisher_id);
      rec.response_bytes = 0;
      rec.cache_status = status;
      rec.response_code = trace::kHttpNotModified;  // 304
      sh.pending.push_back({rec, event_seq, 0});
      ++sh.revalidations;
      return;
    }
  }

  const trace::CacheStatus status =
      sh.cache->Access(obj.url_hash, obj.size_bytes, ev.timestamp_ms);
  if (status == trace::CacheStatus::kMiss) {
    Fill(sh, obj.url_hash, obj.size_bytes);
  }
  if (cacheable) {
    browser.Store(obj.url_hash, obj.size_bytes, ev.timestamp_ms);
  }
  trace::LogRecord rec = BaseRecord(ev, user, obj, publisher_id);
  rec.response_bytes = obj.size_bytes;
  rec.cache_status = status;
  rec.response_code = trace::kHttpOk;
  sh.pending.push_back({rec, event_seq, 0});
}

void Engine::ProcessEpoch(Shard& sh, std::int64_t epoch_end_ms, bool last) {
  const auto& events = *jobs_[sh.site].events;
  while (sh.next_event < sh.event_indices.size()) {
    const std::uint64_t ei = sh.event_indices[sh.next_event];
    const synth::RequestEvent& ev = events[ei];
    if (ev.timestamp_ms >= epoch_end_ms) break;
    // Scheduled pushes and cache flushes land between a DC's own requests
    // in exactly the order the sequential simulator applied them (time
    // order, before the first request at or after their instant), so cache
    // state evolution per DC is identical.
    ApplyOpsUpTo(sh, ev.timestamp_ms);
    ProcessEvent(sh, ei);
    ++sh.next_event;
  }
  if (last) ApplyOpsUpTo(sh, util::kMillisPerWeek);

  // Finalize records with timestamps before the boundary: every event in a
  // later epoch starts at ts >= epoch_end, and chunk pacing only moves
  // timestamps forward, so no future record can sort before these.
  sh.finalized.clear();
  auto keep_end = std::partition(
      sh.pending.begin(), sh.pending.end(), [&](const TaggedRecord& r) {
        return !last && r.rec.timestamp_ms >= epoch_end_ms;
      });
  sh.finalized.assign(std::make_move_iterator(keep_end),
                      std::make_move_iterator(sh.pending.end()));
  sh.pending.erase(keep_end, sh.pending.end());
  // (timestamp, event, chunk) is a strict total order within a shard, so a
  // plain sort is deterministic.
  std::sort(sh.finalized.begin(), sh.finalized.end(), TagLess);
  sh.records += sh.finalized.size();
}

void Engine::MergeFinalized() {
  // Serial k-way merge of the shards' finalized runs into the sink by
  // (timestamp, site, event, chunk). Ties are impossible: event_seq is
  // unique within a site and sites are disambiguated explicitly.
  struct Cursor {
    const std::vector<TaggedRecord>* run;
    std::size_t pos;
    std::size_t site;
  };
  const auto greater = [](const Cursor& a, const Cursor& b) {
    const TaggedRecord& x = (*a.run)[a.pos];
    const TaggedRecord& y = (*b.run)[b.pos];
    if (x.rec.timestamp_ms != y.rec.timestamp_ms) {
      return x.rec.timestamp_ms > y.rec.timestamp_ms;
    }
    if (a.site != b.site) return a.site > b.site;
    if (x.event_seq != y.event_seq) return x.event_seq > y.event_seq;
    return x.sub_seq > y.sub_seq;
  };
  std::vector<Cursor> heap;
  heap.reserve(shards_.size());
  for (const Shard& sh : shards_) {
    if (!sh.finalized.empty()) heap.push_back({&sh.finalized, 0, sh.site});
  }
  std::make_heap(heap.begin(), heap.end(), greater);
  batch_.clear();
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), greater);
    Cursor& top = heap.back();
    batch_.push_back((*top.run)[top.pos].rec);
    if (batch_.size() >= kMergeBatchRecords) {
      sink_.Write(batch_);
      batch_.clear();
    }
    if (++top.pos < top.run->size()) {
      std::push_heap(heap.begin(), heap.end(), greater);
    } else {
      heap.pop_back();
    }
  }
  if (!batch_.empty()) {
    sink_.Write(batch_);
    batch_.clear();
  }
}

void Engine::RebuildSnapshots() {
  ForEachShard([&](std::size_t i) {
    Shard& sh = shards_[i];
    sh.snapshot.clear();
    sh.cache->CollectKeys(sh.snapshot);
    // Sorted: makes sibling lookups O(log n) and order-normalizes the
    // cache's unordered enumeration.
    std::sort(sh.snapshot.begin(), sh.snapshot.end());
  });
}

void Engine::NotifyObserver(std::int64_t epoch_end) {
  if (!config_.epoch_observer) return;
  // Empty workload: the sentinel boundary never names a real epoch window.
  if (epoch_end == std::numeric_limits<std::int64_t>::max()) return;
  if (observer_prev_.empty()) observer_prev_.resize(shards_.size());
  EpochSample sample;
  sample.start_ms = epoch_end - config_.epoch_ms;
  sample.end_ms = epoch_end;
  sample.dcs.resize(dcs_per_site_);
  // DC-major, site-minor: samples aggregate sites per DC in site index
  // order, a fixed iteration independent of thread count.
  for (std::size_t d = 0; d < dcs_per_site_; ++d) {
    EpochDcSample& out = sample.dcs[d];
    out.dc = static_cast<int>(d);
    for (std::size_t s = 0; s < jobs_.size(); ++s) {
      const Shard& sh = shards_[s * dcs_per_site_ + d];
      ShardTotals& prev = observer_prev_[s * dcs_per_site_ + d];
      const ShardTotals now = CurrentTotals(sh);
      out.edge.hits += now.edge.hits - prev.edge.hits;
      out.edge.misses += now.edge.misses - prev.edge.misses;
      out.edge.inserts += now.edge.inserts - prev.edge.inserts;
      out.edge.evictions += now.edge.evictions - prev.edge.evictions;
      out.edge.rejected += now.edge.rejected - prev.edge.rejected;
      out.edge.hit_bytes += now.edge.hit_bytes - prev.edge.hit_bytes;
      out.edge.miss_bytes += now.edge.miss_bytes - prev.edge.miss_bytes;
      out.origin.fetches += now.origin.fetches - prev.origin.fetches;
      out.origin.bytes += now.origin.bytes - prev.origin.bytes;
      out.peer_fetches += now.peer_fetches - prev.peer_fetches;
      out.peer_bytes += now.peer_bytes - prev.peer_bytes;
      out.revalidations += now.revalidations - prev.revalidations;
      out.pushed_bytes += now.pushed_bytes - prev.pushed_bytes;
      out.resident_bytes += sh.cache->used_bytes();
      prev = now;
    }
  }
  config_.epoch_observer(sample);
}

void Engine::SyncObserverBaseline() {
  if (!config_.epoch_observer) return;
  observer_prev_.resize(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    observer_prev_[i] = CurrentTotals(shards_[i]);
  }
}

std::vector<SimulatorResult> Engine::Assemble() const {
  std::vector<SimulatorResult> results(jobs_.size());
  for (std::size_t s = 0; s < jobs_.size(); ++s) {
    SimulatorResult& r = results[s];
    r.per_dc_stats.reserve(dcs_per_site_);
    for (std::size_t d = 0; d < dcs_per_site_; ++d) {
      const Shard& sh = shards_[s * dcs_per_site_ + d];
      CacheStats stats = sh.flushed_stats;  // generations dropped by flushes
      stats.Merge(sh.cache->stats());
      r.per_dc_stats.push_back(stats);
      r.edge_stats.Merge(stats);
      r.origin.fetches += sh.origin.fetches;
      r.origin.bytes += sh.origin.bytes;
      r.records += sh.records;
      r.peer_fetches += sh.peer_fetches;
      r.peer_bytes += sh.peer_bytes;
      r.browser_fresh_hits += sh.browser_fresh_hits;
      r.revalidations += sh.revalidations;
      r.pushed_bytes += sh.pushed_bytes;
    }
    // Every shard walks the whole plan, but a pushed object is one object
    // regardless of how many DCs received it.
    for (const PushItem& item : push_plans_[s]) {
      if (item.push_at_ms <= util::kMillisPerWeek) ++r.pushed_objects;
    }
    ATLAS_LOG(kInfo) << "simulated " << r.records << " records, edge "
                     << "hit ratio " << r.edge_stats.HitRatio();
  }
  return results;
}

}  // namespace

std::vector<SimulatorResult> RunSharded(std::span<const SiteJob> jobs,
                                        const SimulatorConfig& config,
                                        trace::RecordSink& sink, int threads) {
  const CheckpointOptions no_checkpoint;
  return RunSharded(jobs, config, sink, threads, no_checkpoint);
}

std::vector<SimulatorResult> RunSharded(std::span<const SiteJob> jobs,
                                        const SimulatorConfig& config,
                                        trace::RecordSink& sink, int threads,
                                        const CheckpointOptions& ckpt_options) {
  Engine engine(jobs, config, sink, threads, ckpt_options);
  return engine.Run();
}

std::vector<SimulatorResult> RunSharded(std::span<const SiteJob> jobs,
                                        const SimulatorConfig& config,
                                        trace::BlockSink& sink, int threads) {
  trace::PerRecordSink packer(sink);
  const CheckpointOptions no_checkpoint;
  auto results = RunSharded(jobs, config, packer, threads, no_checkpoint);
  packer.Flush();
  return results;
}

std::vector<SimulatorResult> RunSharded(std::span<const SiteJob> jobs,
                                        const SimulatorConfig& config,
                                        trace::BlockSink& sink, int threads,
                                        const CheckpointOptions& ckpt_options) {
  trace::PerRecordSink packer(sink);
  CheckpointOptions opts = ckpt_options;
  // Flush inside the snapshot commit, before the caller captures its own
  // sink state, so no already-merged record is buffered outside the
  // checkpoint. Downstream framing must not (and per the BlockSink
  // contract does not) depend on block sizes, so the flush cadence never
  // changes what the sink ultimately produces.
  opts.save_extra = [&packer,
                     saved = ckpt_options.save_extra](ckpt::Writer& w) {
    packer.Flush();
    if (saved) saved(w);
  };
  auto results = RunSharded(jobs, config, packer, threads, opts);
  packer.Flush();
  return results;
}

}  // namespace atlas::cdn
