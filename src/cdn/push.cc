#include "cdn/push.h"

#include <algorithm>

namespace atlas::cdn {
namespace {

bool PatternSelected(synth::PatternType type, const PushConfig& config) {
  switch (type) {
    case synth::PatternType::kDiurnal:
      return config.include_diurnal;
    case synth::PatternType::kLongLived:
      return config.include_long_lived;
    case synth::PatternType::kShortLived:
      return config.include_short_lived;
    case synth::PatternType::kFlashCrowd:
      return config.include_flash;
    case synth::PatternType::kOutlier:
      return config.include_outlier;
  }
  return false;
}

}  // namespace

std::vector<PushItem> BuildPushPlan(const synth::Catalog& catalog,
                                    const PushConfig& config) {
  std::vector<PushItem> plan;
  if (!config.enabled) return plan;

  // Rank eligible objects by static popularity weight. One streaming pass
  // collects eligibility and the weights keyed by object index, so a lazy
  // catalog materializes each shard once here instead of thrashing its
  // cache inside the comparator.
  std::vector<std::uint32_t> eligible;
  std::vector<double> weights(catalog.size(), 0.0);
  catalog.ForEachObject([&](std::size_t i, const synth::ObjectMeta& obj) {
    if (PatternSelected(obj.pattern.type, config)) {
      eligible.push_back(static_cast<std::uint32_t>(i));
      weights[i] = obj.popularity_weight;
    }
  });
  std::sort(eligible.begin(), eligible.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return weights[a] > weights[b];
            });
  if (eligible.size() > config.top_n) eligible.resize(config.top_n);

  plan.reserve(eligible.size());
  for (std::uint32_t idx : eligible) {
    PushItem item;
    item.object_index = idx;
    item.push_at_ms = std::max<std::int64_t>(
        catalog.object(idx).injected_at_ms, 0);
    plan.push_back(item);
  }
  std::sort(plan.begin(), plan.end(), [](const PushItem& a, const PushItem& b) {
    return a.push_at_ms < b.push_at_ms;
  });
  return plan;
}

}  // namespace atlas::cdn
