#include "cdn/topology.h"

#include <stdexcept>

#include "util/hash.h"

namespace atlas::cdn {
namespace {

const char* ContinentCode(synth::Continent c) {
  switch (c) {
    case synth::Continent::kNorthAmerica:
      return "na";
    case synth::Continent::kEurope:
      return "eu";
    case synth::Continent::kAsia:
      return "as";
    case synth::Continent::kSouthAmerica:
      return "sa";
  }
  return "??";
}

}  // namespace

Topology::Topology(const TopologyConfig& config) : config_(config) {
  if (config.dcs_per_continent <= 0) {
    throw std::invalid_argument("Topology: dcs_per_continent must be > 0");
  }
  for (int c = 0; c < synth::kNumContinents; ++c) {
    for (int i = 0; i < config.dcs_per_continent; ++i) {
      DataCenter dc;
      dc.continent = static_cast<synth::Continent>(c);
      dc.name = std::string(ContinentCode(dc.continent)) + "-" +
                std::to_string(i + 1);
      dc.cache = CreateCache(config.edge_policy, config.edge_capacity_bytes,
                             config.edge_ttl_ms);
      dcs_.push_back(std::move(dc));
    }
  }
}

DataCenter& Topology::Route(synth::Continent continent,
                            std::uint64_t user_id) {
  return dcs_.at(RouteIndex(config_, continent, user_id));
}

std::size_t Topology::RouteIndex(const TopologyConfig& config,
                                 synth::Continent continent,
                                 std::uint64_t user_id) {
  const auto base = static_cast<std::size_t>(continent) *
                    static_cast<std::size_t>(config.dcs_per_continent);
  const auto shard = static_cast<std::size_t>(util::HashToBucket(
      util::Mix64(user_id),
      static_cast<std::uint64_t>(config.dcs_per_continent)));
  return base + shard;
}

std::size_t Topology::DcCount(const TopologyConfig& config) {
  return static_cast<std::size_t>(synth::kNumContinents) *
         static_cast<std::size_t>(config.dcs_per_continent);
}

void Topology::FetchFromOrigin(std::uint64_t bytes) {
  ++origin_.fetches;
  origin_.bytes += bytes;
}

bool Topology::AnyPeerContains(const DataCenter& self,
                               std::uint64_t key) const {
  for (const auto& dc : dcs_) {
    if (&dc != &self && dc.cache->Contains(key)) return true;
  }
  return false;
}

CacheStats Topology::TotalEdgeStats() const {
  CacheStats total;
  for (const auto& dc : dcs_) total.Merge(dc.cache->stats());
  return total;
}

}  // namespace atlas::cdn
