// Cache abstraction for CDN edge servers.
//
// The paper's §V studies CDN cache hit ratios under adult workloads and
// proposes policy/configuration changes (separate small/large object
// platforms, revalidation schedules, push). To make those claims testable
// the simulator accepts any byte-capacity cache policy behind this
// interface. Concrete policies: LRU, FIFO, LFU, GDSF, S4LRU, and TTL-LRU.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"  // atlas-lint: allow(layer-dag) ckpt is the passive serialization substrate; consuming its codec interface does not invert control flow
#include "trace/record.h"

namespace atlas::cdn {

enum class PolicyKind : std::uint8_t {
  kLru = 0,
  kFifo = 1,
  kLfu = 2,
  kGdsf = 3,
  kS4Lru = 4,
  kTtlLru = 5,
};
inline constexpr int kNumPolicyKinds = 6;
const char* ToString(PolicyKind kind);

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  std::uint64_t rejected = 0;  // objects larger than the whole cache
  std::uint64_t hit_bytes = 0;
  std::uint64_t miss_bytes = 0;

  std::uint64_t accesses() const { return hits + misses; }
  double HitRatio() const {
    const std::uint64_t n = accesses();
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
  double ByteHitRatio() const {
    const std::uint64_t b = hit_bytes + miss_bytes;
    return b == 0 ? 0.0 : static_cast<double>(hit_bytes) / static_cast<double>(b);
  }
  void Merge(const CacheStats& other);
};

class Cache : public ckpt::Checkpointable {
 public:
  explicit Cache(std::uint64_t capacity_bytes);
  ~Cache() override = default;

  Cache(const Cache&) = delete;
  Cache& operator=(const Cache&) = delete;

  // One access: returns kHit if `key` is resident (and fresh, for TTL
  // policies); otherwise records a miss and admits the object, evicting
  // until it fits. Objects larger than the total capacity are never
  // admitted. `now_ms` drives TTL policies; others ignore it.
  trace::CacheStatus Access(std::uint64_t key, std::uint64_t size_bytes,
                            std::int64_t now_ms);

  // Warms the cache without touching hit/miss stats (push/prefetch path).
  // Returns false if the object cannot fit.
  bool Admit(std::uint64_t key, std::uint64_t size_bytes, std::int64_t now_ms);

  virtual bool Contains(std::uint64_t key) const = 0;

  // Appends every resident key to `out` (freshness is ignored, matching
  // Contains()). Enumeration order is unspecified — callers must sort or
  // otherwise order-normalize the result before it can influence any
  // output. The sharded simulation engine uses this to build the sorted
  // peer-holdings snapshots exchanged at epoch boundaries.
  virtual void CollectKeys(std::vector<std::uint64_t>& out) const = 0;

  std::uint64_t capacity_bytes() const { return capacity_bytes_; }
  std::uint64_t used_bytes() const { return used_bytes_; }
  const CacheStats& stats() const { return stats_; }
  virtual std::string name() const = 0;

  // Checkpoints the policy name, capacity, byte/stat counters, and the
  // policy's full eviction state (recency lists, frequencies, priorities),
  // so a restored cache makes byte-identical hit/evict decisions from the
  // snapshot point on. Restore must target a cache constructed with the
  // same policy and capacity; anything else fails with a clear error.
  void SaveState(ckpt::Writer& w) const final;
  void RestoreState(ckpt::Reader& r) final;

 protected:
  // Policy-specific halves of SaveState/RestoreState. RestorePolicyState
  // rebuilds containers directly — it must not route through Insert()/
  // OnInsertBytes(), which would double-count stats the base just restored.
  virtual void SavePolicyState(ckpt::Writer& w) const = 0;
  virtual void RestorePolicyState(ckpt::Reader& r) = 0;

  // Returns true and updates recency metadata if `key` is resident+fresh.
  virtual bool Lookup(std::uint64_t key, std::int64_t now_ms) = 0;
  // Inserts `key`; callee must evict enough to fit (capacity is already
  // checked to be sufficient). Must update used_bytes_ via OnInsert/OnEvict.
  virtual void Insert(std::uint64_t key, std::uint64_t size_bytes,
                      std::int64_t now_ms) = 0;

  // Bookkeeping helpers for subclasses.
  void OnInsertBytes(std::uint64_t size) {
    used_bytes_ += size;
    ++stats_.inserts;
  }
  void OnEvictBytes(std::uint64_t size) {
    used_bytes_ -= size;
    ++stats_.evictions;
  }
  // Shared guard every Insert path must call first: an object larger than
  // the whole cache can never fit no matter how much is evicted, so it is
  // counted as rejected and the insert is skipped. Without this, policy
  // eviction loops drain the cache and then fail hunting for a victim that
  // cannot exist.
  bool RejectOversized(std::uint64_t size_bytes) {
    if (size_bytes <= capacity_bytes_) return false;
    ++stats_.rejected;
    return true;
  }

 private:
  std::uint64_t capacity_bytes_;
  std::uint64_t used_bytes_ = 0;
  CacheStats stats_;
};

// Factory. `ttl_ms` only applies to kTtlLru (default 6h).
std::unique_ptr<Cache> CreateCache(PolicyKind kind,
                                   std::uint64_t capacity_bytes,
                                   std::int64_t ttl_ms = 6 * 3600 * 1000LL);

}  // namespace atlas::cdn
