#include "cdn/browser_cache.h"

#include <iterator>
#include <stdexcept>

namespace atlas::cdn {

BrowserCache::BrowserCache(std::uint64_t capacity_bytes,
                           std::int64_t freshness_ms)
    : capacity_bytes_(capacity_bytes), freshness_ms_(freshness_ms) {
  if (capacity_bytes == 0 || freshness_ms <= 0) {
    throw std::invalid_argument("BrowserCache: bad capacity or freshness");
  }
}

BrowserLookup BrowserCache::Lookup(std::uint64_t key, std::int64_t now_ms) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return BrowserLookup::kAbsent;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return now_ms < it->second.fresh_until_ms ? BrowserLookup::kFresh
                                            : BrowserLookup::kStale;
}

void BrowserCache::Store(std::uint64_t key, std::uint64_t size_bytes,
                         std::int64_t now_ms) {
  if (size_bytes > capacity_bytes_) return;  // uncacheable
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Refresh in place.
    used_bytes_ -= it->second.size;
    it->second.size = size_bytes;
    it->second.fresh_until_ms = now_ms + freshness_ms_;
    used_bytes_ += size_bytes;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  while (used_bytes_ + size_bytes > capacity_bytes_) EvictOne();
  lru_.push_front(key);
  entries_[key] = Entry{size_bytes, now_ms + freshness_ms_, lru_.begin()};
  used_bytes_ += size_bytes;
}

void BrowserCache::Renew(std::uint64_t key, std::int64_t now_ms) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  it->second.fresh_until_ms = now_ms + freshness_ms_;
}

void BrowserCache::Clear() {
  lru_.clear();
  entries_.clear();
  used_bytes_ = 0;
}

namespace {
constexpr std::uint32_t kBrowserStateVersion = 1;
}  // namespace

void BrowserCache::SaveState(ckpt::Writer& w) const {
  w.WriteVersion(kBrowserStateVersion);
  w.WriteU64(capacity_bytes_);
  w.WriteI64(freshness_ms_);
  w.WriteU64(static_cast<std::uint64_t>(lru_.size()));
  for (std::uint64_t key : lru_) {  // front = most recent
    const Entry& e = entries_.at(key);
    w.WriteU64(key);
    w.WriteU64(e.size);
    w.WriteI64(e.fresh_until_ms);
  }
}

void BrowserCache::RestoreState(ckpt::Reader& r) {
  r.ExpectVersion("browser cache", kBrowserStateVersion);
  const std::uint64_t saved_capacity = r.ReadU64();
  const std::int64_t saved_freshness = r.ReadI64();
  if (saved_capacity != capacity_bytes_ || saved_freshness != freshness_ms_) {
    throw std::runtime_error(
        "ckpt: browser cache configuration mismatch (checkpoint has " +
        std::to_string(saved_capacity) + " bytes / " +
        std::to_string(saved_freshness) + " ms)");
  }
  Clear();
  const std::uint64_t n = r.ReadU64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t key = r.ReadU64();
    Entry e;
    e.size = r.ReadU64();
    e.fresh_until_ms = r.ReadI64();
    lru_.push_back(key);
    e.lru_it = std::prev(lru_.end());
    entries_[key] = e;
    used_bytes_ += e.size;
  }
}

void BrowserCache::EvictOne() {
  if (lru_.empty()) throw std::logic_error("BrowserCache: evict from empty");
  const std::uint64_t victim = lru_.back();
  lru_.pop_back();
  auto it = entries_.find(victim);
  used_bytes_ -= it->second.size;
  entries_.erase(it);
}

}  // namespace atlas::cdn
