// The sharded, streaming, deterministic simulation engine.
//
// One engine run drives any number of sites through the delivery
// simulation concurrently. Work is sharded **by edge data center**: the
// geo mapping pins every user to one home DC (Topology::RouteIndex), so a
// shard = (site, DC) owns its edge cache, the browser caches of the users
// routed there, its slice of the site's time-sorted events, and a private
// cursor into the site's push plan. Shards never share mutable state, so
// they run freely on util::par's pool — and because the decomposition is a
// pure function of the workload (never of the thread count), the output is
// byte-identical at any `threads` value.
//
// Time advances in fixed epochs (SimulatorConfig::epoch_ms). Within an
// epoch every shard processes its events independently; at the epoch
// barrier each shard (a) finalizes the records whose timestamps fall
// before the boundary — no future event can emit an earlier record — and
// (b) when peer_fill is on, publishes an immutable, sorted snapshot of its
// cache holdings for sibling DCs to consult during the next epoch. The
// finalized shard streams are then k-way merged by
// (timestamp, site, event, chunk) into the RecordSink, which reproduces
// the legacy sequential simulator's stable time-sort byte for byte while
// holding only one epoch of records in memory.
// Checkpointing: at an epoch barrier every record with a timestamp before
// the boundary has already been merged into the sink and every cache/cursor
// is quiescent, so a snapshot taken there is both crash-consistent and
// trace-invariant — the barriers are fixed multiples of epoch_ms whether or
// not snapshots happen, so checkpoint cadence never changes the output
// stream. CheckpointOptions arms the trigger; a resumed run rebuilds the
// immutable structures (event routing, push plans) from the regenerated
// workload and restores only mutable state from the snapshot.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "cdn/simulator.h"
#include "ckpt/checkpoint.h"  // atlas-lint: allow(layer-dag) ckpt is the passive serialization substrate; consuming its codec interface does not invert control flow
#include "synth/workload.h"
#include "trace/block.h"
#include "trace/sink.h"

namespace atlas::cdn {

// One site's input to the engine. The generator supplies the object
// catalog and user population; `events` must be time-sorted (the engine
// throws std::invalid_argument otherwise). Records are tagged with
// `publisher_id`. Sites are merged in job order on timestamp ties.
struct SiteJob {
  const synth::WorkloadGenerator* generator = nullptr;
  const std::vector<synth::RequestEvent>* events = nullptr;
  std::uint32_t publisher_id = 0;
};

// Epoch-aligned checkpoint/restore policy for RunSharded.
struct CheckpointOptions {
  // Snapshot every N epoch barriers; 0 disables saving.
  std::uint64_t every_epochs = 0;
  // Snapshot destination; each save commits atomically (tmp + rename), so
  // a crash mid-save leaves the previous snapshot usable.
  std::string path;
  // Appends caller-owned sections (e.g. the TraceWriter's partial-block
  // state via SaveState) to every snapshot, after the engine's sections.
  // Runs inside the atomic commit, before the rename.
  std::function<void(ckpt::Writer&)> save_extra;
  // Called after each committed snapshot with the number of barriers
  // completed; return false to stop the run immediately (the in-process
  // "kill" the crash tests use). A stopped run's results are partial —
  // resume from the snapshot instead of using them.
  std::function<bool(std::uint64_t barriers_done)> after_save;
  // Restore engine state from this checkpoint before the first epoch. The
  // jobs/config must match the checkpointed run (verified by fingerprint).
  ckpt::Reader* resume = nullptr;
};

// Runs every job through the sharded engine, streaming the merged,
// time-sorted record stream of all sites into `sink`, and returns one
// counter accumulator per job (in job order). `threads <= 0` means
// util::DefaultThreads().
std::vector<SimulatorResult> RunSharded(std::span<const SiteJob> jobs,
                                        const SimulatorConfig& config,
                                        trace::RecordSink& sink,
                                        int threads = 0);

// As above, with checkpoint/restore armed per `ckpt_options`.
std::vector<SimulatorResult> RunSharded(std::span<const SiteJob> jobs,
                                        const SimulatorConfig& config,
                                        trace::RecordSink& sink, int threads,
                                        const CheckpointOptions& ckpt_options);

// Block-sink variants: the merged stream leaves the engine as SoA
// RecordBlocks (packed by a PerRecordSink adapter and flushed at the end of
// the run). The record sequence is identical to the RecordSink overloads —
// only the framing handed to `sink` differs, and BlockSink consumers must
// not depend on block sizes.
std::vector<SimulatorResult> RunSharded(std::span<const SiteJob> jobs,
                                        const SimulatorConfig& config,
                                        trace::BlockSink& sink,
                                        int threads = 0);

// With checkpointing, the packer also flushes inside every snapshot commit
// so no already-merged record is buffered outside the captured state;
// checkpoint cadence still never changes the record stream.
std::vector<SimulatorResult> RunSharded(std::span<const SiteJob> jobs,
                                        const SimulatorConfig& config,
                                        trace::BlockSink& sink, int threads,
                                        const CheckpointOptions& ckpt_options);

}  // namespace atlas::cdn
