// The sharded, streaming, deterministic simulation engine.
//
// One engine run drives any number of sites through the delivery
// simulation concurrently. Work is sharded **by edge data center**: the
// geo mapping pins every user to one home DC (Topology::RouteIndex), so a
// shard = (site, DC) owns its edge cache, the browser caches of the users
// routed there, its slice of the site's time-sorted events, and a private
// cursor into the site's push plan. Shards never share mutable state, so
// they run freely on util::par's pool — and because the decomposition is a
// pure function of the workload (never of the thread count), the output is
// byte-identical at any `threads` value.
//
// Time advances in fixed epochs (SimulatorConfig::epoch_ms). Within an
// epoch every shard processes its events independently; at the epoch
// barrier each shard (a) finalizes the records whose timestamps fall
// before the boundary — no future event can emit an earlier record — and
// (b) when peer_fill is on, publishes an immutable, sorted snapshot of its
// cache holdings for sibling DCs to consult during the next epoch. The
// finalized shard streams are then k-way merged by
// (timestamp, site, event, chunk) into the RecordSink, which reproduces
// the legacy sequential simulator's stable time-sort byte for byte while
// holding only one epoch of records in memory.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cdn/simulator.h"
#include "synth/workload.h"
#include "trace/sink.h"

namespace atlas::cdn {

// One site's input to the engine. The generator supplies the object
// catalog and user population; `events` must be time-sorted (the engine
// throws std::invalid_argument otherwise). Records are tagged with
// `publisher_id`. Sites are merged in job order on timestamp ties.
struct SiteJob {
  const synth::WorkloadGenerator* generator = nullptr;
  const std::vector<synth::RequestEvent>* events = nullptr;
  std::uint32_t publisher_id = 0;
};

// Runs every job through the sharded engine, streaming the merged,
// time-sorted record stream of all sites into `sink`, and returns one
// counter accumulator per job (in job order). `threads <= 0` means
// util::DefaultThreads().
std::vector<SimulatorResult> RunSharded(std::span<const SiteJob> jobs,
                                        const SimulatorConfig& config,
                                        trace::RecordSink& sink,
                                        int threads = 0);

}  // namespace atlas::cdn
