#include "cdn/policies.h"

#include <iterator>
#include <stdexcept>

#include "util/sorted.h"

namespace atlas::cdn {

// --- LruCache ---------------------------------------------------------------

bool LruCache::Lookup(std::uint64_t key, std::int64_t /*now_ms*/) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return true;
}

void LruCache::Insert(std::uint64_t key, std::uint64_t size_bytes,
                      std::int64_t /*now_ms*/) {
  if (RejectOversized(size_bytes)) return;
  while (used_bytes() + size_bytes > capacity_bytes()) {
    if (!EvictOne()) return;
  }
  lru_.push_front(key);
  entries_[key] = Entry{size_bytes, lru_.begin()};
  OnInsertBytes(size_bytes);
}

bool LruCache::EvictOne() {
  if (lru_.empty()) return false;
  const std::uint64_t victim = lru_.back();
  lru_.pop_back();
  auto it = entries_.find(victim);
  OnEvictBytes(it->second.size);
  entries_.erase(it);
  return true;
}

// --- FifoCache ---------------------------------------------------------------

bool FifoCache::Lookup(std::uint64_t key, std::int64_t /*now_ms*/) {
  return entries_.count(key) > 0;
}

void FifoCache::Insert(std::uint64_t key, std::uint64_t size_bytes,
                       std::int64_t /*now_ms*/) {
  if (RejectOversized(size_bytes)) return;
  while (used_bytes() + size_bytes > capacity_bytes()) {
    if (!EvictOne()) return;
  }
  queue_.push_back(key);
  entries_[key] = size_bytes;
  OnInsertBytes(size_bytes);
}

bool FifoCache::EvictOne() {
  if (queue_.empty()) return false;
  const std::uint64_t victim = queue_.front();
  queue_.pop_front();
  auto it = entries_.find(victim);
  OnEvictBytes(it->second);
  entries_.erase(it);
  return true;
}

// --- LfuCache ---------------------------------------------------------------

void LfuCache::Touch(std::uint64_t key, Entry& entry) {
  auto& old_bucket = buckets_[entry.freq];
  old_bucket.erase(entry.bucket_it);
  if (old_bucket.empty()) buckets_.erase(entry.freq);
  ++entry.freq;
  auto& new_bucket = buckets_[entry.freq];
  new_bucket.push_front(key);
  entry.bucket_it = new_bucket.begin();
}

bool LfuCache::Lookup(std::uint64_t key, std::int64_t /*now_ms*/) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  Touch(key, it->second);
  return true;
}

void LfuCache::Insert(std::uint64_t key, std::uint64_t size_bytes,
                      std::int64_t /*now_ms*/) {
  if (RejectOversized(size_bytes)) return;
  while (used_bytes() + size_bytes > capacity_bytes()) {
    if (!EvictOne()) return;
  }
  auto& bucket = buckets_[1];
  bucket.push_front(key);
  entries_[key] = Entry{size_bytes, 1, bucket.begin()};
  OnInsertBytes(size_bytes);
}

bool LfuCache::EvictOne() {
  if (buckets_.empty()) return false;
  auto bucket_it = buckets_.begin();  // lowest frequency
  auto& lru_list = bucket_it->second;
  const std::uint64_t victim = lru_list.back();  // least recent within bucket
  lru_list.pop_back();
  if (lru_list.empty()) buckets_.erase(bucket_it);
  auto it = entries_.find(victim);
  OnEvictBytes(it->second.size);
  entries_.erase(it);
  return true;
}

// --- GdsfCache ---------------------------------------------------------------

double GdsfCache::PriorityOf(const Entry& e) const {
  // cost = 1 per miss; size in KB so priorities stay in a sane range.
  const double size_kb = static_cast<double>(e.size) / 1024.0 + 1e-9;
  return inflation_ + static_cast<double>(e.freq) / size_kb;
}

void GdsfCache::PushHeap(std::uint64_t key, const Entry& e) {
  heap_.push(HeapItem{e.priority, key});
  // Every hit strands the key's previous heap item, so without compaction
  // the heap grows with accesses, not residents. Rebuild once stale items
  // outnumber live ones (the +16 keeps tiny caches from recompacting on
  // every push).
  if (heap_.size() > 2 * entries_.size() + 16) CompactHeap();
}

void GdsfCache::CompactHeap() {
  std::vector<HeapItem> live;
  live.reserve(entries_.size());
  // atlas-lint: allow(unordered-iter)  HeapItem's total order makes the pop
  // sequence a pure function of the heap's contents, so the rebuild order is
  // irrelevant.
  for (const auto& [key, e] : entries_) {
    live.push_back(HeapItem{e.priority, key});
  }
  heap_ = decltype(heap_)(std::greater<>(), std::move(live));
}

bool GdsfCache::Lookup(std::uint64_t key, std::int64_t /*now_ms*/) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  ++it->second.freq;
  it->second.priority = PriorityOf(it->second);
  PushHeap(key, it->second);  // lazy: old heap entry becomes stale
  return true;
}

void GdsfCache::Insert(std::uint64_t key, std::uint64_t size_bytes,
                       std::int64_t /*now_ms*/) {
  if (RejectOversized(size_bytes)) return;
  while (used_bytes() + size_bytes > capacity_bytes()) {
    if (!EvictOne()) return;
  }
  Entry e{size_bytes, 1, 0.0};
  e.priority = PriorityOf(e);
  entries_[key] = e;
  PushHeap(key, e);
  OnInsertBytes(size_bytes);
}

bool GdsfCache::EvictOne() {
  while (!heap_.empty()) {
    const HeapItem item = heap_.top();
    heap_.pop();
    auto it = entries_.find(item.key);
    // Skip stale heap entries (evicted keys or outdated priorities).
    if (it == entries_.end() || it->second.priority != item.priority) continue;
    inflation_ = item.priority;
    OnEvictBytes(it->second.size);
    entries_.erase(it);
    return true;
  }
  return false;
}

// --- S4LruCache ---------------------------------------------------------------

S4LruCache::S4LruCache(std::uint64_t capacity_bytes)
    : Cache(capacity_bytes),
      segment_capacity_(capacity_bytes / kSegments) {
  if (segment_capacity_ == 0) {
    throw std::invalid_argument("S4LruCache: capacity too small for segments");
  }
}

bool S4LruCache::Lookup(std::uint64_t key, std::int64_t /*now_ms*/) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  Entry& e = it->second;
  const int target = std::min(e.segment + 1, kSegments - 1);
  lists_[static_cast<std::size_t>(e.segment)].erase(e.it);
  seg_bytes_[static_cast<std::size_t>(e.segment)] -= e.size;
  lists_[static_cast<std::size_t>(target)].push_front(key);
  seg_bytes_[static_cast<std::size_t>(target)] += e.size;
  e.segment = target;
  e.it = lists_[static_cast<std::size_t>(target)].begin();
  Rebalance();
  return true;
}

void S4LruCache::Insert(std::uint64_t key, std::uint64_t size_bytes,
                        std::int64_t /*now_ms*/) {
  if (RejectOversized(size_bytes)) return;
  lists_[0].push_front(key);
  seg_bytes_[0] += size_bytes;
  entries_[key] = Entry{size_bytes, 0, lists_[0].begin()};
  OnInsertBytes(size_bytes);
  Rebalance();
}

void S4LruCache::Rebalance() {
  // Overflow cascades down: tail of segment i moves to head of i-1; tail of
  // segment 0 is evicted. Total capacity is enforced via the per-segment
  // budgets.
  for (int s = kSegments - 1; s >= 1; --s) {
    auto si = static_cast<std::size_t>(s);
    while (seg_bytes_[si] > segment_capacity_ && !lists_[si].empty()) {
      const std::uint64_t key = lists_[si].back();
      lists_[si].pop_back();
      Entry& e = entries_.at(key);
      seg_bytes_[si] -= e.size;
      const auto below = static_cast<std::size_t>(s - 1);
      lists_[below].push_front(key);
      seg_bytes_[below] += e.size;
      e.segment = s - 1;
      e.it = lists_[below].begin();
    }
  }
  while (seg_bytes_[0] > segment_capacity_ && !lists_[0].empty()) {
    const std::uint64_t victim = lists_[0].back();
    lists_[0].pop_back();
    auto it = entries_.find(victim);
    seg_bytes_[0] -= it->second.size;
    OnEvictBytes(it->second.size);
    entries_.erase(it);
  }
}

// --- TtlLruCache ---------------------------------------------------------------

TtlLruCache::TtlLruCache(std::uint64_t capacity_bytes, std::int64_t ttl_ms)
    : Cache(capacity_bytes), ttl_ms_(ttl_ms) {
  if (ttl_ms <= 0) throw std::invalid_argument("TtlLruCache: ttl must be > 0");
}

void TtlLruCache::Erase(std::uint64_t key) {
  auto it = entries_.find(key);
  lru_.erase(it->second.lru_it);
  OnEvictBytes(it->second.size);
  entries_.erase(it);
}

bool TtlLruCache::Lookup(std::uint64_t key, std::int64_t now_ms) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  if (now_ms >= it->second.expires_ms) {
    // Stale content must be refetched; the entry is dropped and the caller
    // records a miss followed by a fresh insert.
    Erase(key);
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return true;
}

void TtlLruCache::Insert(std::uint64_t key, std::uint64_t size_bytes,
                         std::int64_t now_ms) {
  if (RejectOversized(size_bytes)) return;
  while (used_bytes() + size_bytes > capacity_bytes()) {
    if (!EvictOne()) return;
  }
  lru_.push_front(key);
  entries_[key] = Entry{size_bytes, now_ms + ttl_ms_, lru_.begin()};
  OnInsertBytes(size_bytes);
}

bool TtlLruCache::EvictOne() {
  if (lru_.empty()) return false;
  Erase(lru_.back());
  return true;
}

// --- Checkpoint state (SavePolicyState / RestorePolicyState) ----------------
//
// Each policy serializes its containers in an order that reconstructs both
// membership and tie-breaking structure exactly: recency lists are written
// front (most recent) to back, LFU buckets in ascending frequency, GDSF
// entries with their stored priorities (computed against historic inflation
// values, so they cannot be recomputed). A restored cache therefore picks
// the same victims in the same order as one that never stopped.

namespace {
constexpr std::uint32_t kLruStateVersion = 1;
constexpr std::uint32_t kFifoStateVersion = 1;
constexpr std::uint32_t kLfuStateVersion = 1;
constexpr std::uint32_t kGdsfStateVersion = 1;
constexpr std::uint32_t kS4LruStateVersion = 1;
constexpr std::uint32_t kTtlLruStateVersion = 1;
}  // namespace

void LruCache::SavePolicyState(ckpt::Writer& w) const {
  w.WriteVersion(kLruStateVersion);
  w.WriteU64(static_cast<std::uint64_t>(lru_.size()));
  for (std::uint64_t key : lru_) {
    w.WriteU64(key);
    w.WriteU64(entries_.at(key).size);
  }
}

void LruCache::RestorePolicyState(ckpt::Reader& r) {
  r.ExpectVersion("LRU policy", kLruStateVersion);
  lru_.clear();
  entries_.clear();
  const std::uint64_t n = r.ReadU64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t key = r.ReadU64();
    const std::uint64_t size = r.ReadU64();
    lru_.push_back(key);
    entries_[key] = Entry{size, std::prev(lru_.end())};
  }
}

void FifoCache::SavePolicyState(ckpt::Writer& w) const {
  w.WriteVersion(kFifoStateVersion);
  w.WriteU64(static_cast<std::uint64_t>(queue_.size()));
  for (std::uint64_t key : queue_) {
    w.WriteU64(key);
    w.WriteU64(entries_.at(key));
  }
}

void FifoCache::RestorePolicyState(ckpt::Reader& r) {
  r.ExpectVersion("FIFO policy", kFifoStateVersion);
  queue_.clear();
  entries_.clear();
  const std::uint64_t n = r.ReadU64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t key = r.ReadU64();
    queue_.push_back(key);
    entries_[key] = r.ReadU64();
  }
}

void LfuCache::SavePolicyState(ckpt::Writer& w) const {
  w.WriteVersion(kLfuStateVersion);
  w.WriteU64(static_cast<std::uint64_t>(buckets_.size()));
  for (const auto& [freq, bucket] : buckets_) {  // std::map: ascending freq
    w.WriteU64(freq);
    w.WriteU64(static_cast<std::uint64_t>(bucket.size()));
    for (std::uint64_t key : bucket) {
      w.WriteU64(key);
      w.WriteU64(entries_.at(key).size);
    }
  }
}

void LfuCache::RestorePolicyState(ckpt::Reader& r) {
  r.ExpectVersion("LFU policy", kLfuStateVersion);
  buckets_.clear();
  entries_.clear();
  const std::uint64_t nbuckets = r.ReadU64();
  for (std::uint64_t b = 0; b < nbuckets; ++b) {
    const std::uint64_t freq = r.ReadU64();
    const std::uint64_t len = r.ReadU64();
    auto& bucket = buckets_[freq];
    for (std::uint64_t i = 0; i < len; ++i) {
      const std::uint64_t key = r.ReadU64();
      const std::uint64_t size = r.ReadU64();
      bucket.push_back(key);
      entries_[key] = Entry{size, freq, std::prev(bucket.end())};
    }
  }
}

void GdsfCache::SavePolicyState(ckpt::Writer& w) const {
  w.WriteVersion(kGdsfStateVersion);
  w.WriteDouble(inflation_);
  w.WriteU64(static_cast<std::uint64_t>(entries_.size()));
  for (std::uint64_t key : util::SortedKeys(entries_)) {
    const Entry& e = entries_.at(key);
    w.WriteU64(key);
    w.WriteU64(e.size);
    w.WriteU64(e.freq);
    w.WriteDouble(e.priority);
  }
}

void GdsfCache::RestorePolicyState(ckpt::Reader& r) {
  r.ExpectVersion("GDSF policy", kGdsfStateVersion);
  inflation_ = r.ReadDouble();
  entries_.clear();
  // Rebuild the heap from live entries only, dropping any stale
  // lazy-invalidation items the original heap carried. That is safe for
  // determinism: pops follow the (priority, key) total order over live
  // entries either way, so the restored cache picks the same victims.
  heap_ = decltype(heap_){};
  const std::uint64_t n = r.ReadU64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t key = r.ReadU64();
    Entry e;
    e.size = r.ReadU64();
    e.freq = r.ReadU64();
    e.priority = r.ReadDouble();
    entries_[key] = e;
    PushHeap(key, e);
  }
}

void S4LruCache::SavePolicyState(ckpt::Writer& w) const {
  w.WriteVersion(kS4LruStateVersion);
  for (const auto& list : lists_) {
    w.WriteU64(static_cast<std::uint64_t>(list.size()));
    for (std::uint64_t key : list) {
      w.WriteU64(key);
      w.WriteU64(entries_.at(key).size);
    }
  }
}

void S4LruCache::RestorePolicyState(ckpt::Reader& r) {
  r.ExpectVersion("S4LRU policy", kS4LruStateVersion);
  entries_.clear();
  for (int seg = 0; seg < kSegments; ++seg) {
    lists_[static_cast<std::size_t>(seg)].clear();
    seg_bytes_[static_cast<std::size_t>(seg)] = 0;
  }
  for (int seg = 0; seg < kSegments; ++seg) {
    auto& list = lists_[static_cast<std::size_t>(seg)];
    const std::uint64_t n = r.ReadU64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t key = r.ReadU64();
      const std::uint64_t size = r.ReadU64();
      list.push_back(key);
      seg_bytes_[static_cast<std::size_t>(seg)] += size;
      entries_[key] = Entry{size, seg, std::prev(list.end())};
    }
  }
}

void TtlLruCache::SavePolicyState(ckpt::Writer& w) const {
  w.WriteVersion(kTtlLruStateVersion);
  w.WriteI64(ttl_ms_);
  w.WriteU64(static_cast<std::uint64_t>(lru_.size()));
  for (std::uint64_t key : lru_) {
    const Entry& e = entries_.at(key);
    w.WriteU64(key);
    w.WriteU64(e.size);
    w.WriteI64(e.expires_ms);
  }
}

void TtlLruCache::RestorePolicyState(ckpt::Reader& r) {
  r.ExpectVersion("TTL-LRU policy", kTtlLruStateVersion);
  const std::int64_t saved_ttl = r.ReadI64();
  if (saved_ttl != ttl_ms_) {
    throw std::runtime_error("ckpt: TTL mismatch (checkpoint has " +
                             std::to_string(saved_ttl) + " ms, this run uses " +
                             std::to_string(ttl_ms_) + ")");
  }
  lru_.clear();
  entries_.clear();
  const std::uint64_t n = r.ReadU64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t key = r.ReadU64();
    Entry e;
    e.size = r.ReadU64();
    e.expires_ms = r.ReadI64();
    lru_.push_back(key);
    e.lru_it = std::prev(lru_.end());
    entries_[key] = e;
  }
}

}  // namespace atlas::cdn
