// Per-user browser cache model.
//
// §V: "adult content providers cannot rely on browser cache to store
// locally popular content because of prevalent use of incognito/private
// web browsing" — private windows discard the cache when the session ends,
// and the paper contrasts this with Facebook serving >65% of photo requests
// from browser caches. The model: a small LRU with HTTP-style freshness.
// A lookup yields one of:
//   kFresh  — served locally, no CDN request at all (no log record);
//   kStale  — resident but expired: conditional GET, 304 if unchanged;
//   kAbsent — full fetch.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "ckpt/checkpoint.h"  // atlas-lint: allow(layer-dag) ckpt is the passive serialization substrate; consuming its codec interface does not invert control flow
#include "trace/record.h"

namespace atlas::cdn {

enum class BrowserLookup : std::uint8_t { kFresh = 0, kStale = 1, kAbsent = 2 };

class BrowserCache {
 public:
  BrowserCache(std::uint64_t capacity_bytes, std::int64_t freshness_ms);

  // Checks `key`; fresh hits refresh recency. Stale entries stay resident
  // (a 304 revalidation renews them via Renew()).
  BrowserLookup Lookup(std::uint64_t key, std::int64_t now_ms);

  // Stores an object (called after a 200 response for cacheable content).
  void Store(std::uint64_t key, std::uint64_t size_bytes, std::int64_t now_ms);

  // Renews freshness after a 304 revalidation.
  void Renew(std::uint64_t key, std::int64_t now_ms);

  // Discards everything — the incognito-window-closed event.
  void Clear();

  std::uint64_t used_bytes() const { return used_bytes_; }
  std::size_t entry_count() const { return entries_.size(); }

  // Checkpoints the LRU order and per-entry freshness so a restored
  // browser cache serves the same fresh/stale/absent verdicts. Restore
  // requires matching capacity/freshness configuration.
  void SaveState(ckpt::Writer& w) const;
  void RestoreState(ckpt::Reader& r);

 private:
  struct Entry {
    std::uint64_t size;
    std::int64_t fresh_until_ms;
    std::list<std::uint64_t>::iterator lru_it;
  };
  void EvictOne();

  std::uint64_t capacity_bytes_;
  std::int64_t freshness_ms_;
  std::uint64_t used_bytes_ = 0;
  std::list<std::uint64_t> lru_;
  std::unordered_map<std::uint64_t, Entry> entries_;
};

}  // namespace atlas::cdn
