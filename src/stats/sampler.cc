#include "stats/sampler.h"

#include <cmath>
#include <deque>
#include <stdexcept>

namespace atlas::stats {

// --- ZipfSampler -----------------------------------------------------------
//
// Rejection-inversion after Hörmann & Derflinger, "Rejection-inversion to
// generate variates from monotone discrete distributions" (1996), the same
// scheme used by std::discrete-free Zipf samplers in several mature
// simulators. H is the integral of the (continuous) density x^-s.

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : n_(n), s_(s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be > 0");
  if (s < 0.0) throw std::invalid_argument("ZipfSampler: s must be >= 0");
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  threshold_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -s_));
}

double ZipfSampler::H(double x) const {
  if (s_ == 1.0) return std::log(x);
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfSampler::HInverse(double u) const {
  if (s_ == 1.0) return std::exp(u);
  return std::pow(1.0 + u * (1.0 - s_), 1.0 / (1.0 - s_));
}

std::uint64_t ZipfSampler::Sample(util::Rng& rng) const {
  while (true) {
    const double u = h_x1_ + rng.NextDouble() * (h_n_ - h_x1_);
    const double x = HInverse(u);
    const auto k = static_cast<std::uint64_t>(x + 0.5);
    const double kd = static_cast<double>(k);
    if (kd - x <= threshold_) {
      return std::min<std::uint64_t>(std::max<std::uint64_t>(k, 1), n_);
    }
    if (u >= H(kd + 0.5) - std::pow(kd, -s_)) {
      return std::min<std::uint64_t>(std::max<std::uint64_t>(k, 1), n_);
    }
  }
}

double ZipfSampler::Pmf(std::uint64_t k) const {
  if (k == 0 || k > n_) return 0.0;
  if (normalizer_ == 0.0) {
    double z = 0.0;
    for (std::uint64_t i = 1; i <= n_; ++i) {
      z += std::pow(static_cast<double>(i), -s_);
    }
    normalizer_ = z;
  }
  return std::pow(static_cast<double>(k), -s_) / normalizer_;
}

// --- BimodalLogNormal ------------------------------------------------------

BimodalLogNormal::BimodalLogNormal(double mu1, double sigma1, double mu2,
                                   double sigma2, double weight_first)
    : mu1_(mu1), sigma1_(sigma1), mu2_(mu2), sigma2_(sigma2), w1_(weight_first) {
  if (sigma1 < 0.0 || sigma2 < 0.0) {
    throw std::invalid_argument("BimodalLogNormal: sigma must be >= 0");
  }
  if (weight_first < 0.0 || weight_first > 1.0) {
    throw std::invalid_argument("BimodalLogNormal: weight must be in [0,1]");
  }
}

double BimodalLogNormal::Sample(util::Rng& rng) const {
  if (rng.NextBool(w1_)) return rng.NextLogNormal(mu1_, sigma1_);
  return rng.NextLogNormal(mu2_, sigma2_);
}

// --- AliasTable -------------------------------------------------------------

AliasTable::AliasTable(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  if (n == 0) throw std::invalid_argument("AliasTable: empty weights");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("AliasTable: negative weight");
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("AliasTable: weights must sum to > 0");
  }
  normalized_.resize(n);
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::deque<std::size_t> small, large;
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    normalized_[i] = weights[i] / total;
    scaled[i] = normalized_[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.front();
    small.pop_front();
    const std::size_t l = large.front();
    large.pop_front();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  while (!large.empty()) {
    prob_[large.front()] = 1.0;
    large.pop_front();
  }
  while (!small.empty()) {  // numerical leftovers
    prob_[small.front()] = 1.0;
    small.pop_front();
  }
}

std::size_t AliasTable::Sample(util::Rng& rng) const {
  const std::size_t i =
      static_cast<std::size_t>(rng.NextBounded(prob_.size()));
  return rng.NextDouble() < prob_[i] ? i : alias_[i];
}

double AliasTable::Probability(std::size_t i) const {
  return normalized_.at(i);
}

// --- TruncatedLogNormal -----------------------------------------------------

TruncatedLogNormal::TruncatedLogNormal(double mu, double sigma, double lo,
                                       double hi)
    : mu_(mu), sigma_(sigma), lo_(lo), hi_(hi) {
  if (!(lo < hi)) throw std::invalid_argument("TruncatedLogNormal: lo >= hi");
}

double TruncatedLogNormal::Sample(util::Rng& rng) const {
  for (int attempt = 0; attempt < 4096; ++attempt) {
    const double x = rng.NextLogNormal(mu_, sigma_);
    if (x >= lo_ && x <= hi_) return x;
  }
  throw std::runtime_error(
      "TruncatedLogNormal: acceptance region too small; check parameters");
}

}  // namespace atlas::stats
