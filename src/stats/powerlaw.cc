#include "stats/powerlaw.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace atlas::stats {

PowerLawFit FitPowerLaw(const std::vector<double>& samples, double x_min) {
  if (x_min <= 0.0) throw std::invalid_argument("FitPowerLaw: x_min <= 0");
  std::vector<double> tail;
  for (double x : samples) {
    if (x >= x_min) tail.push_back(x);
  }
  if (tail.empty()) {
    throw std::invalid_argument("FitPowerLaw: no samples at or above x_min");
  }
  double log_sum = 0.0;
  for (double x : tail) log_sum += std::log(x / x_min);
  PowerLawFit fit;
  fit.x_min = x_min;
  fit.tail_n = tail.size();
  if (log_sum <= 0.0) {
    // All tail samples equal x_min: degenerate, report a steep exponent.
    fit.alpha = std::numeric_limits<double>::infinity();
    fit.ks = 0.0;
    return fit;
  }
  fit.alpha = 1.0 + static_cast<double>(tail.size()) / log_sum;

  // KS distance between the empirical tail CDF and the fitted CDF
  // F(x) = 1 - (x / x_min)^(1 - alpha).
  std::sort(tail.begin(), tail.end());
  double ks = 0.0;
  const double n = static_cast<double>(tail.size());
  for (std::size_t i = 0; i < tail.size(); ++i) {
    const double model = 1.0 - std::pow(tail[i] / x_min, 1.0 - fit.alpha);
    const double emp_hi = static_cast<double>(i + 1) / n;
    const double emp_lo = static_cast<double>(i) / n;
    ks = std::max({ks, std::abs(emp_hi - model), std::abs(emp_lo - model)});
  }
  fit.ks = ks;
  return fit;
}

PowerLawFit FitPowerLawAuto(const std::vector<double>& samples,
                            std::size_t max_candidates) {
  std::vector<double> distinct(samples);
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()), distinct.end());
  distinct.erase(std::remove_if(distinct.begin(), distinct.end(),
                                [](double x) { return x <= 0.0; }),
                 distinct.end());
  if (distinct.empty()) {
    throw std::invalid_argument("FitPowerLawAuto: no positive samples");
  }
  // Never let the candidate x_min exceed the point where the tail would have
  // fewer than 10 samples (the fit becomes meaningless).
  PowerLawFit best;
  best.ks = std::numeric_limits<double>::infinity();
  const std::size_t stride =
      std::max<std::size_t>(1, distinct.size() / max_candidates);
  for (std::size_t i = 0; i < distinct.size(); i += stride) {
    const double x_min = distinct[i];
    std::size_t tail_n = 0;
    for (double x : samples) {
      if (x >= x_min) ++tail_n;
    }
    if (tail_n < 10) break;
    const PowerLawFit fit = FitPowerLaw(samples, x_min);
    if (fit.ks < best.ks) best = fit;
  }
  if (!std::isfinite(best.ks)) return FitPowerLaw(samples, distinct.front());
  return best;
}

double TopShare(std::vector<double> values, double fraction) {
  if (values.empty()) return 0.0;
  if (fraction <= 0.0) return 0.0;
  if (fraction >= 1.0) return 1.0;
  std::sort(values.begin(), values.end(), std::greater<>());
  const double total = std::accumulate(values.begin(), values.end(), 0.0);
  if (total <= 0.0) return 0.0;
  const auto k = std::max<std::size_t>(
      1, static_cast<std::size_t>(fraction * static_cast<double>(values.size())));
  const double top =
      std::accumulate(values.begin(), values.begin() + static_cast<long>(k), 0.0);
  return top / total;
}

double Gini(std::vector<double> values) {
  if (values.size() < 2) return 0.0;
  std::sort(values.begin(), values.end());
  const double n = static_cast<double>(values.size());
  double cum = 0.0, weighted = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    cum += values[i];
    weighted += static_cast<double>(i + 1) * values[i];
  }
  if (cum <= 0.0) return 0.0;
  return (2.0 * weighted) / (n * cum) - (n + 1.0) / n;
}

}  // namespace atlas::stats
