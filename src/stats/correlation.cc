#include "stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace atlas::stats {

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("PearsonCorrelation: length mismatch");
  }
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  const double nx = static_cast<double>(n);
  const double mx = std::accumulate(x.begin(), x.end(), 0.0) / nx;
  const double my = std::accumulate(y.begin(), y.end(), 0.0) / nx;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> MidRanks(const std::vector<double>& v) {
  const std::size_t n = v.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && v[order[j + 1]] == v[order[i]]) ++j;
    // Average rank for the tie group [i, j], 1-based.
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("SpearmanCorrelation: length mismatch");
  }
  return PearsonCorrelation(MidRanks(x), MidRanks(y));
}

}  // namespace atlas::stats
