// Pearson and Spearman correlation.
//
// The paper reports ">0.9 correlation between hit ratio and popularity"
// (§V); analysis::caching reproduces that number with these functions.
#pragma once

#include <vector>

namespace atlas::stats {

// Pearson product-moment correlation. Returns 0 when either side has zero
// variance or the vectors are shorter than 2. Throws on length mismatch.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

// Spearman rank correlation (Pearson on mid-ranks; ties get averaged ranks).
double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y);

// Mid-ranks of v (1-based; ties averaged), the building block of Spearman.
std::vector<double> MidRanks(const std::vector<double>& v);

}  // namespace atlas::stats
