// Fixed-interval time series.
//
// Per-object hourly request-count series are the input to the paper's DTW
// clustering (Figs. 8-10); site-level hourly volume series are Fig. 3.
// A TimeSeries is a dense vector of values at a fixed bucket width, with the
// transforms the analyses need: normalization, smoothing, autocorrelation,
// and shape features (peak position, decay).
#pragma once

#include <cstdint>
#include <vector>

namespace atlas::stats {

class TimeSeries {
 public:
  TimeSeries() = default;
  // `bucket_ms` is the width of one sample; `buckets` the fixed length.
  TimeSeries(std::int64_t bucket_ms, std::size_t buckets);
  TimeSeries(std::int64_t bucket_ms, std::vector<double> values);

  // Accumulates `weight` into the bucket containing `timestamp_ms`.
  // Timestamps outside [0, buckets*bucket_ms) are ignored (they fall outside
  // the observation window, as in the paper's one-week trace).
  void Accumulate(std::int64_t timestamp_ms, double weight = 1.0);

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  std::int64_t bucket_ms() const { return bucket_ms_; }
  double operator[](std::size_t i) const { return values_[i]; }
  double& operator[](std::size_t i) { return values_[i]; }
  const std::vector<double>& values() const { return values_; }

  double Total() const;
  double Max() const;
  double Mean() const;
  // Index of the maximum (first on tie); 0 if empty.
  std::size_t ArgMax() const;

  // Sum-normalized copy (series sums to 1; zero series stays zero). This is
  // the "normalized request count" of the paper's medoid plots.
  TimeSeries SumNormalized() const;
  // Z-score normalized copy (zero mean, unit variance; constant series
  // becomes all-zero).
  TimeSeries ZNormalized() const;

  // Centered moving average with the given full window (odd preferred).
  TimeSeries Smoothed(std::size_t window) const;

  // Autocorrelation at integer lag (biased estimator). Lag >= size gives 0.
  double Autocorrelation(std::size_t lag) const;

  // Fraction of total mass inside [start, end) bucket indices.
  double MassIn(std::size_t start, std::size_t end) const;

  // Element-wise mean / standard deviation across a set of equal-length
  // series — used for medoid plots' shaded +-sigma regions.
  static TimeSeries PointwiseMean(const std::vector<TimeSeries>& group);
  static TimeSeries PointwiseStddev(const std::vector<TimeSeries>& group);

 private:
  std::int64_t bucket_ms_ = 1;
  std::vector<double> values_;
};

}  // namespace atlas::stats
