#include "stats/timeseries.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace atlas::stats {

TimeSeries::TimeSeries(std::int64_t bucket_ms, std::size_t buckets)
    : bucket_ms_(bucket_ms), values_(buckets, 0.0) {
  if (bucket_ms <= 0) throw std::invalid_argument("TimeSeries: bucket_ms <= 0");
}

TimeSeries::TimeSeries(std::int64_t bucket_ms, std::vector<double> values)
    : bucket_ms_(bucket_ms), values_(std::move(values)) {
  if (bucket_ms <= 0) throw std::invalid_argument("TimeSeries: bucket_ms <= 0");
}

void TimeSeries::Accumulate(std::int64_t timestamp_ms, double weight) {
  if (timestamp_ms < 0) return;
  const auto idx = static_cast<std::size_t>(timestamp_ms / bucket_ms_);
  if (idx >= values_.size()) return;
  values_[idx] += weight;
}

double TimeSeries::Total() const {
  return std::accumulate(values_.begin(), values_.end(), 0.0);
}

double TimeSeries::Max() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

double TimeSeries::Mean() const {
  if (values_.empty()) return 0.0;
  return Total() / static_cast<double>(values_.size());
}

std::size_t TimeSeries::ArgMax() const {
  if (values_.empty()) return 0;
  return static_cast<std::size_t>(
      std::max_element(values_.begin(), values_.end()) - values_.begin());
}

TimeSeries TimeSeries::SumNormalized() const {
  TimeSeries out = *this;
  const double total = Total();
  if (total > 0.0) {
    for (double& v : out.values_) v /= total;
  }
  return out;
}

TimeSeries TimeSeries::ZNormalized() const {
  TimeSeries out = *this;
  const double mean = Mean();
  double var = 0.0;
  for (double v : values_) var += (v - mean) * (v - mean);
  var /= static_cast<double>(std::max<std::size_t>(values_.size(), 1));
  const double sd = std::sqrt(var);
  for (double& v : out.values_) {
    v = sd > 0.0 ? (v - mean) / sd : 0.0;
  }
  return out;
}

TimeSeries TimeSeries::Smoothed(std::size_t window) const {
  if (window <= 1 || values_.empty()) return *this;
  TimeSeries out(bucket_ms_, values_.size());
  const std::size_t half = window / 2;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    const std::size_t lo = i >= half ? i - half : 0;
    const std::size_t hi = std::min(values_.size(), i + half + 1);
    double sum = 0.0;
    for (std::size_t j = lo; j < hi; ++j) sum += values_[j];
    out.values_[i] = sum / static_cast<double>(hi - lo);
  }
  return out;
}

double TimeSeries::Autocorrelation(std::size_t lag) const {
  const std::size_t n = values_.size();
  if (lag >= n || n < 2) return 0.0;
  const double mean = Mean();
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    den += (values_[i] - mean) * (values_[i] - mean);
  }
  if (den == 0.0) return 0.0;
  for (std::size_t i = 0; i + lag < n; ++i) {
    num += (values_[i] - mean) * (values_[i + lag] - mean);
  }
  return num / den;
}

double TimeSeries::MassIn(std::size_t start, std::size_t end) const {
  const double total = Total();
  if (total <= 0.0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = start; i < std::min(end, values_.size()); ++i) {
    sum += values_[i];
  }
  return sum / total;
}

TimeSeries TimeSeries::PointwiseMean(const std::vector<TimeSeries>& group) {
  if (group.empty()) return TimeSeries();
  const std::size_t n = group.front().size();
  TimeSeries out(group.front().bucket_ms(), n);
  for (const auto& ts : group) {
    if (ts.size() != n) {
      throw std::invalid_argument("PointwiseMean: length mismatch");
    }
    for (std::size_t i = 0; i < n; ++i) out.values_[i] += ts.values_[i];
  }
  for (double& v : out.values_) v /= static_cast<double>(group.size());
  return out;
}

TimeSeries TimeSeries::PointwiseStddev(const std::vector<TimeSeries>& group) {
  if (group.empty()) return TimeSeries();
  const TimeSeries mean = PointwiseMean(group);
  const std::size_t n = mean.size();
  TimeSeries out(mean.bucket_ms(), n);
  for (const auto& ts : group) {
    for (std::size_t i = 0; i < n; ++i) {
      const double d = ts.values_[i] - mean.values_[i];
      out.values_[i] += d * d;
    }
  }
  for (double& v : out.values_) {
    v = std::sqrt(v / static_cast<double>(group.size()));
  }
  return out;
}

}  // namespace atlas::stats
