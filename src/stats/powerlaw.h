// Power-law tail fitting.
//
// Used to quantify the "expected skewness" of content popularity (Fig. 6):
// the analysis fits a discrete power law to per-object request counts and
// reports the exponent plus a goodness-of-fit (KS) distance.
#pragma once

#include <cstdint>
#include <vector>

namespace atlas::stats {

struct PowerLawFit {
  double alpha = 0.0;   // fitted exponent (alpha > 1 for a proper tail)
  double x_min = 1.0;   // tail cutoff used for the fit
  double ks = 1.0;      // KS distance between data tail and fitted CDF
  std::uint64_t tail_n = 0;  // samples at or above x_min
};

// Continuous MLE (Clauset-Shalizi-Newman eq. 3.1) for the tail x >= x_min.
// Values below x_min are ignored. Throws if no samples reach x_min.
PowerLawFit FitPowerLaw(const std::vector<double>& samples, double x_min);

// Scans candidate x_min values (the distinct sample values, capped at
// `max_candidates` evenly chosen ones) and returns the fit minimizing the KS
// distance — the standard CSN procedure.
PowerLawFit FitPowerLawAuto(const std::vector<double>& samples,
                            std::size_t max_candidates = 64);

// Top-`fraction` share: fraction of total mass owned by the most popular
// `fraction` of items (e.g. "top 10% of objects receive 80% of requests").
double TopShare(std::vector<double> values, double fraction);

// Gini coefficient of the value distribution, in [0, 1); another skewness
// summary reported alongside the popularity CDFs.
double Gini(std::vector<double> values);

}  // namespace atlas::stats
