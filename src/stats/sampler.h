// Distribution samplers for workload synthesis.
//
// ZipfSampler drives content popularity (the paper's long-tailed request
// distributions, Fig. 6); BimodalLogNormal drives image sizes (the bimodal
// CDFs of Fig. 5b); AliasTable provides O(1) sampling from arbitrary
// discrete distributions (device mixes, response-code priors, ...).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace atlas::stats {

// Zipf(s) over ranks {1..n}: P[k] proportional to k^-s.
// Uses Hörmann & Derflinger's rejection-inversion, O(1) per sample with no
// per-rank tables, valid for any s >= 0 (s == 1 handled via the limit form).
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double s);

  // Returns a rank in [1, n].
  std::uint64_t Sample(util::Rng& rng) const;

  std::uint64_t n() const { return n_; }
  double s() const { return s_; }

  // Exact probability mass of rank k (computes the normalization on first
  // use; O(n) once).
  double Pmf(std::uint64_t k) const;

 private:
  double H(double x) const;
  double HInverse(double u) const;

  std::uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double threshold_;
  mutable double normalizer_ = 0.0;  // lazily computed for Pmf
};

// Mixture of two lognormals; weight is the probability of the first
// component. Models "thumbnail vs. full-resolution image" sizes.
class BimodalLogNormal {
 public:
  BimodalLogNormal(double mu1, double sigma1, double mu2, double sigma2,
                   double weight_first);

  double Sample(util::Rng& rng) const;

 private:
  double mu1_, sigma1_, mu2_, sigma2_, w1_;
};

// Walker alias method: O(n) build, O(1) sample from a fixed discrete
// distribution.
class AliasTable {
 public:
  explicit AliasTable(const std::vector<double>& weights);

  std::size_t Sample(util::Rng& rng) const;
  std::size_t size() const { return prob_.size(); }
  // Exact normalized probability of index i (for testing).
  double Probability(std::size_t i) const;

 private:
  std::vector<double> prob_;
  std::vector<std::size_t> alias_;
  std::vector<double> normalized_;
};

// Truncated lognormal: resamples until the value lands in [lo, hi].
// Throws if the acceptance region is implausibly small (> 64 rejections
// on average would be a configuration bug).
class TruncatedLogNormal {
 public:
  TruncatedLogNormal(double mu, double sigma, double lo, double hi);

  double Sample(util::Rng& rng) const;

 private:
  double mu_, sigma_, lo_, hi_;
};

}  // namespace atlas::stats
