#include "stats/ecdf.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace atlas::stats {

Ecdf::Ecdf(std::vector<double> samples) : samples_(std::move(samples)) {
  Finalize();
}

void Ecdf::Add(double x) {
  samples_.push_back(x);
  finalized_ = false;
}

void Ecdf::Finalize() {
  if (!finalized_) {
    std::sort(samples_.begin(), samples_.end());
    finalized_ = true;
  }
}

void Ecdf::RequireFinalized() const {
  if (!finalized_) throw std::logic_error("Ecdf: not finalized");
  if (samples_.empty()) throw std::logic_error("Ecdf: empty");
}

double Ecdf::Evaluate(double x) const {
  RequireFinalized();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Ecdf::Quantile(double q) const {
  RequireFinalized();
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("Ecdf: q out of [0,1]");
  if (samples_.size() == 1) return samples_[0];
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= samples_.size()) return samples_.back();
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[lo + 1] - samples_[lo]);
}

double Ecdf::Min() const {
  RequireFinalized();
  return samples_.front();
}

double Ecdf::Max() const {
  RequireFinalized();
  return samples_.back();
}

double Ecdf::Mean() const {
  RequireFinalized();
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> Ecdf::LogGrid(std::size_t points,
                                                     double lo_clamp) const {
  RequireFinalized();
  if (points < 2) throw std::invalid_argument("Ecdf::LogGrid: points < 2");
  std::vector<std::pair<double, double>> grid;
  grid.reserve(points);
  const double lo = std::max(samples_.front(), lo_clamp);
  const double hi = std::max(samples_.back(), lo * (1.0 + 1e-12));
  const double llo = std::log10(lo);
  const double lhi = std::log10(hi);
  for (std::size_t i = 0; i < points; ++i) {
    // Pin the endpoints exactly: pow/log round-tripping can land a hair
    // below the true max, which would leave the final CDF value below 1.
    const double x =
        i == 0 ? lo
        : i == points - 1
            ? hi
            : std::pow(10.0, llo + (lhi - llo) * static_cast<double>(i) /
                                       static_cast<double>(points - 1));
    grid.emplace_back(x, Evaluate(x));
  }
  return grid;
}

std::vector<std::pair<double, double>> Ecdf::LinearGrid(
    std::size_t points) const {
  RequireFinalized();
  if (points < 2) throw std::invalid_argument("Ecdf::LinearGrid: points < 2");
  std::vector<std::pair<double, double>> grid;
  grid.reserve(points);
  const double lo = samples_.front();
  const double hi = samples_.back();
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) /
                              static_cast<double>(points - 1);
    grid.emplace_back(x, Evaluate(x));
  }
  return grid;
}

double Ecdf::KsDistance(const Ecdf& a, const Ecdf& b) {
  a.RequireFinalized();
  b.RequireFinalized();
  double d = 0.0;
  for (double x : a.samples_) d = std::max(d, std::abs(a.Evaluate(x) - b.Evaluate(x)));
  for (double x : b.samples_) d = std::max(d, std::abs(a.Evaluate(x) - b.Evaluate(x)));
  return d;
}

}  // namespace atlas::stats
