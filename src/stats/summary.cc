#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace atlas::stats {

void Summary::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Summary::Merge(const Summary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double Summary::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
}

double Summary::sample_variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::min() const { return count_ == 0 ? 0.0 : min_; }
double Summary::max() const { return count_ == 0 ? 0.0 : max_; }

std::string Summary::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.4g sd=%.4g min=%.4g max=%.4g",
                static_cast<unsigned long long>(count_), mean(), stddev(),
                min(), max());
  return buf;
}

}  // namespace atlas::stats
