// Empirical cumulative distribution functions.
//
// The paper's figures 5, 6, 11, 12, 14 and 15 are all CDFs; Ecdf is the type
// every analysis returns for them, and it knows how to evaluate itself at
// arbitrary points, extract quantiles, and print itself as a fixed grid of
// (x, F(x)) rows so bench binaries can emit figure series.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace atlas::stats {

class Ecdf {
 public:
  Ecdf() = default;
  // Takes ownership of samples; sorts once.
  explicit Ecdf(std::vector<double> samples);

  void Add(double x);
  // Must be called after the last Add and before evaluation (constructor
  // from samples does this automatically). Idempotent.
  void Finalize();

  std::uint64_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  // F(x) = P[X <= x]. Requires a finalized, non-empty ECDF.
  double Evaluate(double x) const;

  // Quantile q in [0, 1]; linear interpolation between order statistics.
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }

  double Min() const;
  double Max() const;
  double Mean() const;

  // Evaluation grid: `points` log-spaced x values spanning [max(min, lo_clamp),
  // max]. Suitable for the log-x CDF plots in the paper.
  std::vector<std::pair<double, double>> LogGrid(std::size_t points,
                                                 double lo_clamp = 1e-12) const;
  // `points` evenly spaced x values spanning [min, max].
  std::vector<std::pair<double, double>> LinearGrid(std::size_t points) const;

  // Two-sample Kolmogorov-Smirnov distance: sup |F1 - F2|.
  static double KsDistance(const Ecdf& a, const Ecdf& b);

  const std::vector<double>& sorted_samples() const { return samples_; }

 private:
  void RequireFinalized() const;

  std::vector<double> samples_;
  bool finalized_ = false;
};

}  // namespace atlas::stats
