// Streaming summary statistics (Welford / one-pass moments).
//
// Every analysis in ATLAS reports at least count/mean/median-ish summaries;
// this accumulator provides numerically stable mean and variance in a single
// pass, plus min/max/sum, without storing samples.
#pragma once

#include <cstdint>
#include <string>

namespace atlas::stats {

class Summary {
 public:
  Summary() = default;

  void Add(double x);
  void Merge(const Summary& other);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  // Population variance (division by n). Zero for fewer than 2 samples.
  double variance() const;
  // Sample variance (division by n-1). Zero for fewer than 2 samples.
  double sample_variance() const;
  double stddev() const;
  double min() const;
  double max() const;

  // "n=12 mean=3.4 sd=1.1 min=0 max=9" — for log lines and reports.
  std::string ToString() const;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace atlas::stats
