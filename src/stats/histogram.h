// Linear- and log-binned histograms.
//
// LogHistogram is the workhorse for size and popularity data, which span
// many decades (bytes .. hundreds of MB; 1 .. 10^5 requests). It mirrors the
// log-scale x-axes of the paper's Figures 1, 2, 5, 6, 13 and 16.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace atlas::stats {

// Fixed-width bins over [lo, hi); values outside are counted in underflow /
// overflow.
class LinearHistogram {
 public:
  LinearHistogram(double lo, double hi, std::size_t bins);

  void Add(double x, std::uint64_t weight = 1);

  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }

  // Index of the most populated bin (first on tie); 0 if empty.
  std::size_t ModeBin() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

// Logarithmic bins: bins_per_decade bins per power of ten, starting at `lo`
// (> 0). Values below lo go to underflow.
class LogHistogram {
 public:
  LogHistogram(double lo, double hi, std::size_t bins_per_decade);

  void Add(double x, std::uint64_t weight = 1);

  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  // Geometric midpoint of bin i.
  double bin_mid(std::size_t i) const;
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }

  // Detects modes: bins that are local maxima with at least `min_fraction`
  // of the total mass. Returns midpoints, ascending. Used to verify the
  // bimodal image-size distributions of Fig. 5(b).
  std::vector<double> Modes(double min_fraction = 0.02) const;

  // ASCII rendering for reports: one line per non-empty bin.
  std::string Render(std::size_t width = 50) const;

 private:
  double log_lo_;
  double step_;  // log10 width of one bin
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace atlas::stats
