#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/str.h"

namespace atlas::stats {

LinearHistogram::LinearHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi) || bins == 0) {
    throw std::invalid_argument("LinearHistogram: need lo < hi and bins > 0");
  }
}

void LinearHistogram::Add(double x, std::uint64_t weight) {
  total_ += weight;
  if (x < lo_) {
    underflow_ += weight;
    return;
  }
  if (x >= hi_) {
    overflow_ += weight;
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // x == hi - epsilon
  counts_[idx] += weight;
}

double LinearHistogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double LinearHistogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

std::size_t LinearHistogram::ModeBin() const {
  return static_cast<std::size_t>(
      std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

LogHistogram::LogHistogram(double lo, double hi, std::size_t bins_per_decade) {
  if (!(lo > 0.0) || !(hi > lo) || bins_per_decade == 0) {
    throw std::invalid_argument(
        "LogHistogram: need 0 < lo < hi and bins_per_decade > 0");
  }
  log_lo_ = std::log10(lo);
  step_ = 1.0 / static_cast<double>(bins_per_decade);
  const double decades = std::log10(hi) - log_lo_;
  const auto bins =
      static_cast<std::size_t>(std::ceil(decades / step_ - 1e-12));
  counts_.assign(std::max<std::size_t>(bins, 1), 0);
}

void LogHistogram::Add(double x, std::uint64_t weight) {
  total_ += weight;
  if (!(x > 0.0) || std::log10(x) < log_lo_) {
    underflow_ += weight;
    return;
  }
  const double pos = (std::log10(x) - log_lo_) / step_;
  const auto idx = static_cast<std::size_t>(pos);
  if (idx >= counts_.size()) {
    overflow_ += weight;
    return;
  }
  counts_[idx] += weight;
}

double LogHistogram::bin_lo(std::size_t i) const {
  return std::pow(10.0, log_lo_ + step_ * static_cast<double>(i));
}

double LogHistogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

double LogHistogram::bin_mid(std::size_t i) const {
  return std::pow(10.0, log_lo_ + step_ * (static_cast<double>(i) + 0.5));
}

std::vector<double> LogHistogram::Modes(double min_fraction) const {
  std::vector<double> modes;
  if (total_ == 0) return modes;
  const auto threshold =
      static_cast<double>(total_) * min_fraction;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t c = counts_[i];
    if (static_cast<double>(c) < threshold) continue;
    const std::uint64_t left = i == 0 ? 0 : counts_[i - 1];
    const std::uint64_t right = i + 1 == counts_.size() ? 0 : counts_[i + 1];
    if (c >= left && c > right) modes.push_back(bin_mid(i));
  }
  return modes;
}

std::string LogHistogram::Render(std::size_t width) const {
  std::string out;
  const std::uint64_t peak =
      counts_.empty() ? 0 : *std::max_element(counts_.begin(), counts_.end());
  if (peak == 0) return "(empty histogram)\n";
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    char label[64];
    std::snprintf(label, sizeof(label), "[%10.3g, %10.3g) ", bin_lo(i),
                  bin_hi(i));
    out += label;
    out.append(std::max<std::size_t>(bar, 1), '#');
    out += "  " + util::FormatCount(static_cast<double>(counts_[i]));
    out += '\n';
  }
  return out;
}

}  // namespace atlas::stats
