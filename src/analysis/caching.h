// CDN caching implications (Figs. 15, 16 / §V).
//
// Fig. 15: per-object cache hit ratios (the CDN treats video chunks as
// separate objects for caching, but the figure is per URL — chunk records
// aggregate into their parent object here too).
// Fig. 16: HTTP response-code counts for video and image objects.
// Plus the §V headline: popularity/hit-ratio correlation (> 0.9 in the
// paper) and the aggregate 80-90% hit-ratio range.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"  // atlas-lint: allow(layer-dag) ckpt is the passive serialization substrate; consuming its codec interface does not invert control flow
#include "stats/ecdf.h"
#include "trace/block.h"
#include "trace/record.h"
#include "trace/trace_buffer.h"
#include "util/flat_hash.h"

namespace atlas::analysis {

struct CachingResult {
  std::string site;
  // Fig. 15 CDFs of per-object hit ratio, by class.
  stats::Ecdf video_hit_ratio;
  stats::Ecdf image_hit_ratio;
  // Aggregate request-weighted hit ratio.
  double overall_hit_ratio = 0.0;
  double video_overall_hit_ratio = 0.0;
  double image_overall_hit_ratio = 0.0;
  // Spearman correlation between per-object popularity (requests) and hit
  // ratio (the paper reports > 0.9).
  double popularity_hit_correlation = 0.0;
  // Fig. 16: response-code -> request count, by class.
  std::map<std::uint16_t, std::uint64_t> video_response_codes;
  std::map<std::uint16_t, std::uint64_t> image_response_codes;
  std::map<std::uint16_t, std::uint64_t> all_response_codes;

  // Fraction of all responses that are 304 (the incognito-browsing signal:
  // low for adult sites).
  double NotModifiedShare() const;
};

// Single-pass accumulator behind ComputeCaching; O(distinct objects) state.
class CachingAccumulator {
 public:
  explicit CachingAccumulator(std::size_t size_hint = 0);
  void Add(const trace::LogRecord& r);
  // Rows rows[0..n) of b (all of [0, n) when rows is null), in stream
  // order — equivalent to n Add() calls.
  void AddBatch(const trace::RecordBlock& b, const std::uint32_t* rows,
                std::size_t n);
  CachingResult Finalize(const std::string& site_name);

  void SaveState(ckpt::Writer& w) const;
  void RestoreState(ckpt::Reader& r);

 private:
  struct ObjAcc {
    trace::ContentClass cls = trace::ContentClass::kOther;
    std::uint64_t cacheable = 0;  // content-bearing responses (200/206/304)
    std::uint64_t hits = 0;
  };

  void AddOne(std::uint64_t url, trace::ContentClass cls,
              std::uint16_t response_code, trace::CacheStatus cache_status);

  CachingResult result_;
  util::FlatHashMap<std::uint64_t, ObjAcc> per_object_;
  std::uint64_t total_cacheable_ = 0, total_hits_ = 0;
  std::uint64_t video_cacheable_ = 0, video_hits_ = 0;
  std::uint64_t image_cacheable_ = 0, image_hits_ = 0;
};

CachingResult ComputeCaching(const trace::TraceBuffer& trace,
                             const std::string& site_name);

}  // namespace atlas::analysis
