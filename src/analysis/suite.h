// AnalysisSuite: run the paper's entire analysis over a multi-site trace.
//
// The one-call public API: hand it the (merged or per-site) trace plus the
// publisher registry and it computes every per-site result the figures
// need; Render() prints the full report in paper order.
#pragma once

#include <memory>
#include <optional>
#include <ostream>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "analysis/aging.h"
#include "analysis/caching.h"
#include "analysis/composition.h"
#include "analysis/devices.h"
#include "analysis/engagement.h"
#include "analysis/popularity.h"
#include "analysis/sessions.h"
#include "analysis/sizes.h"
#include "analysis/temporal.h"
#include "analysis/trend_cluster.h"
#include "trace/block.h"
#include "trace/publisher.h"
#include "trace/stream.h"
#include "trace/trace_buffer.h"
#include "util/flat_hash.h"

namespace atlas::analysis {

struct SuiteConfig {
  // Trend clustering is O(n^2)-O(n^3); disable for huge traces or tests
  // that don't need Figs. 8-10.
  bool run_trend_clusters = true;
  TrendClusterConfig trend;
  // Worker threads for per-site analysis; <= 0 means util::DefaultThreads().
  // Sites are analyzed concurrently, each into its own result slot, so the
  // suite (and its rendered report) is identical at any thread count.
  int threads = 0;
};

struct SiteAnalysis {
  std::string site;
  trace::SiteKind kind = trace::SiteKind::kNonAdult;
  DatasetSummary summary;
  CompositionResult composition;
  HourlyVolume hourly;
  DeviceComposition devices;
  SizeDistributions sizes;
  PopularityResult popularity;
  AgingResult aging;
  SessionResult sessions;
  EngagementResult engagement;
  CachingResult caching;
  // Only when SuiteConfig.run_trend_clusters; video panel first.
  std::optional<TrendClusterResult> video_trends;
  std::optional<TrendClusterResult> image_trends;
};

// Every per-site analysis folded into one single-pass consumer: feed it a
// site's records (in trace order) and Finalize into the SiteAnalysis the
// report renders. This is the unit the streaming suite demultiplexes a
// record stream into; aggregate state is O(users + objects + pairs), never
// O(records), so traces far beyond RAM stream through.
class SiteAccumulator {
 public:
  SiteAccumulator(const trace::Publisher& publisher,
                  const SuiteConfig& config);
  void Add(const trace::LogRecord& r);
  // Rows rows[0..n) of b (all of [0, n) when rows is null), in stream
  // order — equivalent to n Add() calls, sub-accumulator by
  // sub-accumulator. Reordering across accumulators is safe because their
  // states are independent.
  void AddBatch(const trace::RecordBlock& b, const std::uint32_t* rows,
                std::size_t n);
  SiteAnalysis Finalize();

  std::uint64_t records() const { return records_; }

  // Checkpoints every sub-accumulator's mid-stream state. Restore requires
  // an accumulator built with the same publisher and suite config.
  void SaveState(ckpt::Writer& w) const;
  void RestoreState(ckpt::Reader& r);

 private:
  trace::Publisher publisher_;
  bool run_trend_clusters_;
  TrendClusterConfig video_trend_config_;
  TrendClusterConfig image_trend_config_;
  std::uint64_t records_ = 0;

  DatasetSummaryAccumulator summary_;
  CompositionAccumulator composition_;
  HourlyVolumeAccumulator hourly_;
  DeviceCompositionAccumulator devices_;
  SizeDistributionsAccumulator sizes_;
  PopularityAccumulator popularity_;
  AgingAccumulator aging_;
  SessionAccumulator sessions_;
  EngagementAccumulator engagement_;
  CachingAccumulator caching_;
  std::optional<TrendSeriesAccumulator> video_series_;
  std::optional<TrendSeriesAccumulator> image_series_;
};

// The checkpointable core of the streaming suite: demultiplexes a record
// stream into one SiteAccumulator per registered publisher and tracks how
// many records it has consumed. AnalysisSuite is a thin drive-to-completion
// wrapper; tools that checkpoint an analysis pass feed chunks here and
// save/restore between them. The record cursor is the contract with the
// producer: a resumed analysis must skip exactly records_consumed() records
// before feeding the rest.
class StreamingAnalysis {
 public:
  // The registry reference must outlive the analysis.
  StreamingAnalysis(const trace::PublisherRegistry& registry,
                    const SuiteConfig& config = {});

  void Add(const trace::LogRecord& r);
  void AddChunk(std::span<const trace::LogRecord> records);
  // Batch path: consumes rows [first_row, size) of `block`, demultiplexing
  // to per-site AddBatch calls that preserve stream order per site — the
  // results are identical to per-record Add() calls. `first_row` lets a
  // resumed analysis skip the already-consumed prefix of a partial block.
  void AddBlock(const trace::RecordBlock& block, std::size_t first_row = 0);

  // Records consumed so far (including ones from unregistered publishers,
  // which are counted but not analyzed — the cursor tracks stream position,
  // not analysis membership).
  std::uint64_t records_consumed() const { return records_consumed_; }

  // Finalizes sites in parallel (per SuiteConfig::threads), registry order.
  // Call at most once; the accumulators are consumed.
  std::vector<SiteAnalysis> Finalize();

  // Blob layout: cursor + one presence-flagged SiteAccumulator blob per
  // registered publisher, in registry order.
  void SaveState(ckpt::Writer& w) const;
  void RestoreState(ckpt::Reader& r);

 private:
  SiteAccumulator& AccumulatorFor(std::size_t index);

  // Accumulator index for a publisher id, or -1 if unregistered. Registry
  // ids are small and dense in practice, so the hot paths resolve through a
  // direct-indexed table; pub_index_ stays as the fallback for sparse or
  // large id spaces. Both honor keep-first on duplicate ids.
  std::int64_t IndexFor(std::uint32_t publisher_id) const {
    if (!dense_index_.empty()) {
      return publisher_id < dense_index_.size() ? dense_index_[publisher_id]
                                                : -1;
    }
    const std::size_t* idx = pub_index_.Find(publisher_id);
    return idx ? static_cast<std::int64_t>(*idx) : -1;
  }

  SuiteConfig config_;
  std::vector<trace::Publisher> publishers_;
  util::FlatHashMap<std::uint32_t, std::size_t> pub_index_;
  std::vector<std::int32_t> dense_index_;
  std::vector<std::unique_ptr<SiteAccumulator>> accumulators_;
  std::uint64_t records_consumed_ = 0;
  // Per-publisher row-index scratch for demultiplexing mixed blocks
  // (cleared after every block; kept here to reuse capacity).
  std::vector<std::vector<std::uint32_t>> demux_rows_;
  std::vector<std::size_t> touched_;
};

class AnalysisSuite {
 public:
  // Analyzes each registered publisher found in `full_trace`. Implemented
  // on top of the streaming constructor via BufferSource; if the buffer is
  // not time-sorted a sorted copy is streamed (all ATLAS producers emit
  // sorted traces, so this is a compatibility path, not a hot one).
  AnalysisSuite(const trace::TraceBuffer& full_trace,
                const trace::PublisherRegistry& registry,
                const SuiteConfig& config = {});

  // Single-pass streaming analysis: demultiplexes `source` (which must
  // yield records in non-decreasing timestamp order, as TraceWriter files
  // and merged scenario traces do) into one SiteAccumulator per registered
  // publisher, then finalizes sites in parallel. Peak memory is the
  // accumulator state plus one stream chunk — independent of trace length.
  AnalysisSuite(trace::RecordSource& source,
                const trace::PublisherRegistry& registry,
                const SuiteConfig& config = {});

  // Batch streaming analysis: like the RecordSource overload but moves
  // whole SoA blocks through StreamingAnalysis::AddBlock. Produces
  // byte-identical reports to the per-record path (the batch differential
  // suite pins this).
  AnalysisSuite(trace::BlockSource& source,
                const trace::PublisherRegistry& registry,
                const SuiteConfig& config = {});

  // Wraps already-finalized per-site results — the hand-off from an
  // externally driven StreamingAnalysis (e.g. the checkpointed
  // `atlas-trace analyze` pass) to the report renderer.
  explicit AnalysisSuite(std::vector<SiteAnalysis> sites)
      : sites_(std::move(sites)) {}

  const std::vector<SiteAnalysis>& sites() const { return sites_; }
  const SiteAnalysis& site(const std::string& name) const;

  // Full paper-order report.
  void Render(std::ostream& out) const;

 private:
  void Run(trace::RecordSource& source,
           const trace::PublisherRegistry& registry,
           const SuiteConfig& config);
  void RunBlocks(trace::BlockSource& source,
                 const trace::PublisherRegistry& registry,
                 const SuiteConfig& config);

  std::vector<SiteAnalysis> sites_;
};

}  // namespace atlas::analysis
