// AnalysisSuite: run the paper's entire analysis over a multi-site trace.
//
// The one-call public API: hand it the (merged or per-site) trace plus the
// publisher registry and it computes every per-site result the figures
// need; Render() prints the full report in paper order.
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "analysis/aging.h"
#include "analysis/caching.h"
#include "analysis/composition.h"
#include "analysis/devices.h"
#include "analysis/engagement.h"
#include "analysis/popularity.h"
#include "analysis/sessions.h"
#include "analysis/sizes.h"
#include "analysis/temporal.h"
#include "analysis/trend_cluster.h"
#include "trace/publisher.h"
#include "trace/trace_buffer.h"

namespace atlas::analysis {

struct SuiteConfig {
  // Trend clustering is O(n^2)-O(n^3); disable for huge traces or tests
  // that don't need Figs. 8-10.
  bool run_trend_clusters = true;
  TrendClusterConfig trend;
  // Worker threads for per-site analysis; <= 0 means util::DefaultThreads().
  // Sites are analyzed concurrently, each into its own result slot, so the
  // suite (and its rendered report) is identical at any thread count.
  int threads = 0;
};

struct SiteAnalysis {
  std::string site;
  trace::SiteKind kind = trace::SiteKind::kNonAdult;
  DatasetSummary summary;
  CompositionResult composition;
  HourlyVolume hourly;
  DeviceComposition devices;
  SizeDistributions sizes;
  PopularityResult popularity;
  AgingResult aging;
  SessionResult sessions;
  EngagementResult engagement;
  CachingResult caching;
  // Only when SuiteConfig.run_trend_clusters; video panel first.
  std::optional<TrendClusterResult> video_trends;
  std::optional<TrendClusterResult> image_trends;
};

class AnalysisSuite {
 public:
  // Analyzes each registered publisher found in `full_trace`.
  AnalysisSuite(const trace::TraceBuffer& full_trace,
                const trace::PublisherRegistry& registry,
                const SuiteConfig& config = {});

  const std::vector<SiteAnalysis>& sites() const { return sites_; }
  const SiteAnalysis& site(const std::string& name) const;

  // Full paper-order report.
  void Render(std::ostream& out) const;

 private:
  std::vector<SiteAnalysis> sites_;
};

}  // namespace atlas::analysis
