// Content injection & aging (Fig. 7).
//
// "we plot the fraction of adult objects requested at different ages ... a
// declining fraction of objects are requested as their age increases. In
// particular, about 20% of objects are not requested after 3 days ... Only
// about 10% of objects are requested throughout the trace duration."
//
// An object's age-d bucket (d = 1..7) covers its d-th day of life, counted
// from its first appearance in the trace (the observable proxy for its
// injection time). Only objects whose day d is observable (first_seen +
// d days <= trace end) enter the denominator for day d.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "ckpt/checkpoint.h"  // atlas-lint: allow(layer-dag) ckpt is the passive serialization substrate; consuming its codec interface does not invert control flow
#include "trace/block.h"
#include "trace/trace_buffer.h"
#include "util/flat_hash.h"

namespace atlas::analysis {

inline constexpr int kMaxAgeDays = 7;

struct AgingResult {
  std::string site;
  // fraction_requested[d-1]: of objects with at least d observable days,
  // the fraction requested at least once during their day d.
  std::array<double, kMaxAgeDays> fraction_requested{};
  // The paper's raw variant: requested-at-day-d over ALL objects, with no
  // observability correction — late-injected objects mechanically depress
  // the tail, which is part of why Fig. 7 falls so steeply.
  std::array<double, kMaxAgeDays> fraction_requested_uncorrected{};
  std::array<std::uint64_t, kMaxAgeDays> observable_objects{};

  // Fraction of objects (with a full week observable) requested in *every*
  // observable day — the "requested throughout the trace" number.
  double requested_all_days = 0.0;
  // Fraction of objects with >= 4 observable days that receive no request
  // after their day 3 — the "not requested after 3 days" number.
  double silent_after_3_days = 0.0;
};

// Single-pass accumulator behind ComputeAging. Requires records in
// non-decreasing timestamp order (throws std::invalid_argument otherwise):
// with sorted input an object's first occurrence IS its earliest, so one
// pass suffices where the random-access path needed two. The result is
// input-order independent, so ComputeAging feeds a sorted permutation when
// handed an unsorted buffer and matches the historical output exactly.
class AgingAccumulator {
 public:
  explicit AgingAccumulator(std::size_t size_hint = 0);
  void Add(const trace::LogRecord& r);
  // Rows rows[0..n) of b (all of [0, n) when rows is null), in stream
  // order — equivalent to n Add() calls, including the sorted-input check.
  void AddBatch(const trace::RecordBlock& b, const std::uint32_t* rows,
                std::size_t n);
  AgingResult Finalize(const std::string& site_name);

  void SaveState(ckpt::Writer& w) const;
  void RestoreState(ckpt::Reader& r);

 private:
  void AddOne(std::int64_t ts, std::uint64_t url);

  struct ObjectLife {
    std::int64_t first_seen = 0;
    // Bitmask of life-days (day 1 = bit 0) with at least one request.
    std::uint32_t active_days = 0;
  };
  util::FlatHashMap<std::uint64_t, ObjectLife> lives_;
  std::int64_t last_ts_ = 0;
  std::int64_t end_ms_ = 0;
  bool any_ = false;
};

AgingResult ComputeAging(const trace::TraceBuffer& trace,
                         const std::string& site_name);

}  // namespace atlas::analysis
