#include "analysis/caching.h"

#include <unordered_map>

#include "stats/correlation.h"
#include "trace/content_class.h"

namespace atlas::analysis {

double CachingResult::NotModifiedShare() const {
  std::uint64_t total = 0, not_modified = 0;
  for (const auto& [code, count] : all_response_codes) {
    total += count;
    if (code == trace::kHttpNotModified) not_modified += count;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(not_modified) /
                          static_cast<double>(total);
}

CachingResult ComputeCaching(const trace::TraceBuffer& trace,
                             const std::string& site_name) {
  CachingResult result;
  result.site = site_name;

  struct ObjAcc {
    trace::ContentClass cls = trace::ContentClass::kOther;
    std::uint64_t cacheable = 0;  // content-bearing responses (200/206/304)
    std::uint64_t hits = 0;
  };
  std::unordered_map<std::uint64_t, ObjAcc> per_object;
  per_object.reserve(trace.size() / 4 + 1);

  std::uint64_t total_cacheable = 0, total_hits = 0;
  std::uint64_t video_cacheable = 0, video_hits = 0;
  std::uint64_t image_cacheable = 0, image_hits = 0;

  for (const auto& r : trace.records()) {
    const auto cls = trace::ClassOf(r.file_type);
    // Fig. 16 counts every response.
    ++result.all_response_codes[r.response_code];
    if (cls == trace::ContentClass::kVideo) {
      ++result.video_response_codes[r.response_code];
    } else if (cls == trace::ContentClass::kImage) {
      ++result.image_response_codes[r.response_code];
    }
    // Hit-ratio accounting only covers responses the cache could answer
    // (errors like 403/416 and beacons say nothing about cache state).
    if (r.response_code != trace::kHttpOk &&
        r.response_code != trace::kHttpPartialContent &&
        r.response_code != trace::kHttpNotModified) {
      continue;
    }
    auto& acc = per_object[r.url_hash];
    acc.cls = cls;
    ++acc.cacheable;
    ++total_cacheable;
    const bool hit = r.cache_status == trace::CacheStatus::kHit;
    if (hit) {
      ++acc.hits;
      ++total_hits;
    }
    if (cls == trace::ContentClass::kVideo) {
      ++video_cacheable;
      if (hit) ++video_hits;
    } else if (cls == trace::ContentClass::kImage) {
      ++image_cacheable;
      if (hit) ++image_hits;
    }
  }

  std::vector<double> popularity, hit_ratio;
  popularity.reserve(per_object.size());
  hit_ratio.reserve(per_object.size());
  for (const auto& [hash, acc] : per_object) {
    (void)hash;
    if (acc.cacheable == 0) continue;
    const double ratio = static_cast<double>(acc.hits) /
                         static_cast<double>(acc.cacheable);
    if (acc.cls == trace::ContentClass::kVideo) {
      result.video_hit_ratio.Add(ratio);
    } else if (acc.cls == trace::ContentClass::kImage) {
      result.image_hit_ratio.Add(ratio);
    }
    popularity.push_back(static_cast<double>(acc.cacheable));
    hit_ratio.push_back(ratio);
  }
  result.video_hit_ratio.Finalize();
  result.image_hit_ratio.Finalize();

  result.overall_hit_ratio =
      total_cacheable == 0 ? 0.0
                           : static_cast<double>(total_hits) /
                                 static_cast<double>(total_cacheable);
  result.video_overall_hit_ratio =
      video_cacheable == 0 ? 0.0
                           : static_cast<double>(video_hits) /
                                 static_cast<double>(video_cacheable);
  result.image_overall_hit_ratio =
      image_cacheable == 0 ? 0.0
                           : static_cast<double>(image_hits) /
                                 static_cast<double>(image_cacheable);
  if (popularity.size() >= 2) {
    result.popularity_hit_correlation =
        stats::SpearmanCorrelation(popularity, hit_ratio);
  }
  return result;
}

}  // namespace atlas::analysis
