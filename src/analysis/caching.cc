#include "analysis/caching.h"

#include <utility>

#include "stats/correlation.h"
#include "trace/content_class.h"

namespace atlas::analysis {

double CachingResult::NotModifiedShare() const {
  std::uint64_t total = 0, not_modified = 0;
  for (const auto& [code, count] : all_response_codes) {
    total += count;
    if (code == trace::kHttpNotModified) not_modified += count;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(not_modified) /
                          static_cast<double>(total);
}

CachingAccumulator::CachingAccumulator(std::size_t size_hint) {
  per_object_.reserve(size_hint / 4 + 1);
}

void CachingAccumulator::Add(const trace::LogRecord& r) {
  AddOne(r.url_hash, trace::ClassOf(r.file_type), r.response_code,
         r.cache_status);
}

void CachingAccumulator::AddOne(std::uint64_t url, trace::ContentClass cls,
                                std::uint16_t response_code,
                                trace::CacheStatus cache_status) {
  // Fig. 16 counts every response.
  ++result_.all_response_codes[response_code];
  if (cls == trace::ContentClass::kVideo) {
    ++result_.video_response_codes[response_code];
  } else if (cls == trace::ContentClass::kImage) {
    ++result_.image_response_codes[response_code];
  }
  // Hit-ratio accounting only covers responses the cache could answer
  // (errors like 403/416 and beacons say nothing about cache state).
  if (response_code != trace::kHttpOk &&
      response_code != trace::kHttpPartialContent &&
      response_code != trace::kHttpNotModified) {
    return;
  }
  auto& acc = per_object_[url];
  acc.cls = cls;
  ++acc.cacheable;
  ++total_cacheable_;
  const bool hit = cache_status == trace::CacheStatus::kHit;
  if (hit) {
    ++acc.hits;
    ++total_hits_;
  }
  if (cls == trace::ContentClass::kVideo) {
    ++video_cacheable_;
    if (hit) ++video_hits_;
  } else if (cls == trace::ContentClass::kImage) {
    ++image_cacheable_;
    if (hit) ++image_hits_;
  }
}

void CachingAccumulator::AddBatch(const trace::RecordBlock& b,
                                  const std::uint32_t* rows, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = rows ? rows[k] : k;
    AddOne(b.url_hash[i], trace::ClassOf(b.file_type[i]), b.response_code[i],
           b.cache_status[i]);
  }
}

CachingResult CachingAccumulator::Finalize(const std::string& site_name) {
  CachingResult result = std::move(result_);
  result.site = site_name;
  const std::uint64_t total_cacheable = total_cacheable_;
  const std::uint64_t total_hits = total_hits_;
  const std::uint64_t video_cacheable = video_cacheable_;
  const std::uint64_t video_hits = video_hits_;
  const std::uint64_t image_cacheable = image_cacheable_;
  const std::uint64_t image_hits = image_hits_;

  std::vector<double> popularity, hit_ratio;
  popularity.reserve(per_object_.size());
  hit_ratio.reserve(per_object_.size());
  // Sorted-hash order: the Spearman correlation below sums floating-point
  // ranks in sample order, so the order must not depend on hash-table layout.
  for (const auto hash : per_object_.SortedKeys()) {
    const auto& acc = per_object_.At(hash);
    if (acc.cacheable == 0) continue;
    const double ratio = static_cast<double>(acc.hits) /
                         static_cast<double>(acc.cacheable);
    if (acc.cls == trace::ContentClass::kVideo) {
      result.video_hit_ratio.Add(ratio);
    } else if (acc.cls == trace::ContentClass::kImage) {
      result.image_hit_ratio.Add(ratio);
    }
    popularity.push_back(static_cast<double>(acc.cacheable));
    hit_ratio.push_back(ratio);
  }
  result.video_hit_ratio.Finalize();
  result.image_hit_ratio.Finalize();

  result.overall_hit_ratio =
      total_cacheable == 0 ? 0.0
                           : static_cast<double>(total_hits) /
                                 static_cast<double>(total_cacheable);
  result.video_overall_hit_ratio =
      video_cacheable == 0 ? 0.0
                           : static_cast<double>(video_hits) /
                                 static_cast<double>(video_cacheable);
  result.image_overall_hit_ratio =
      image_cacheable == 0 ? 0.0
                           : static_cast<double>(image_hits) /
                                 static_cast<double>(image_cacheable);
  if (popularity.size() >= 2) {
    result.popularity_hit_correlation =
        stats::SpearmanCorrelation(popularity, hit_ratio);
  }
  return result;
}

CachingResult ComputeCaching(const trace::TraceBuffer& trace,
                             const std::string& site_name) {
  CachingAccumulator acc(trace.size());
  for (const auto& r : trace.records()) acc.Add(r);
  return acc.Finalize(site_name);
}

namespace {

constexpr std::uint32_t kCachingStateVersion = 1;

void SaveCodeMap(ckpt::Writer& w,
                 const std::map<std::uint16_t, std::uint64_t>& m) {
  w.WriteU64(m.size());
  for (const auto& [code, count] : m) {
    w.WriteU16(code);
    w.WriteU64(count);
  }
}

std::map<std::uint16_t, std::uint64_t> ReadCodeMap(ckpt::Reader& r) {
  std::map<std::uint16_t, std::uint64_t> m;
  const std::uint64_t n = r.ReadU64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint16_t code = r.ReadU16();
    m[code] = r.ReadU64();
  }
  return m;
}

}  // namespace

void CachingAccumulator::SaveState(ckpt::Writer& w) const {
  w.WriteVersion(kCachingStateVersion);
  SaveCodeMap(w, result_.video_response_codes);
  SaveCodeMap(w, result_.image_response_codes);
  SaveCodeMap(w, result_.all_response_codes);
  w.WriteU64(per_object_.size());
  for (const std::uint64_t hash : per_object_.SortedKeys()) {
    const ObjAcc& acc = per_object_.At(hash);
    w.WriteU64(hash);
    w.WriteU8(static_cast<std::uint8_t>(acc.cls));
    w.WriteU64(acc.cacheable);
    w.WriteU64(acc.hits);
  }
  w.WriteU64(total_cacheable_);
  w.WriteU64(total_hits_);
  w.WriteU64(video_cacheable_);
  w.WriteU64(video_hits_);
  w.WriteU64(image_cacheable_);
  w.WriteU64(image_hits_);
}

void CachingAccumulator::RestoreState(ckpt::Reader& r) {
  r.ExpectVersion("caching accumulator", kCachingStateVersion);
  result_ = CachingResult{};
  result_.video_response_codes = ReadCodeMap(r);
  result_.image_response_codes = ReadCodeMap(r);
  result_.all_response_codes = ReadCodeMap(r);
  per_object_.clear();
  const std::uint64_t n = r.ReadU64();
  per_object_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t hash = r.ReadU64();
    ObjAcc acc;
    acc.cls = static_cast<trace::ContentClass>(r.ReadU8());
    acc.cacheable = r.ReadU64();
    acc.hits = r.ReadU64();
    per_object_[hash] = acc;
  }
  total_cacheable_ = r.ReadU64();
  total_hits_ = r.ReadU64();
  video_cacheable_ = r.ReadU64();
  video_hits_ = r.ReadU64();
  image_cacheable_ = r.ReadU64();
  image_hits_ = r.ReadU64();
}

}  // namespace atlas::analysis
