#include "analysis/popularity.h"

#include "trace/content_class.h"

namespace atlas::analysis {

double PopularityResult::SingletonFraction() const {
  if (all_counts.empty()) return 0.0;
  return all_counts.Evaluate(1.0);
}

std::unordered_map<std::uint64_t, std::uint64_t> RequestCountsByObject(
    const trace::TraceBuffer& trace) {
  std::unordered_map<std::uint64_t, std::uint64_t> counts;
  counts.reserve(trace.size() / 4 + 1);
  for (const auto& r : trace.records()) ++counts[r.url_hash];
  return counts;
}

PopularityAccumulator::PopularityAccumulator(std::size_t size_hint) {
  counts_.reserve(size_hint / 4 + 1);
}

void PopularityAccumulator::Add(const trace::LogRecord& r) {
  // One probe for the common repeat case: the class only needs storing the
  // first time an object appears.
  auto [slot, inserted] = counts_.TryEmplace(r.url_hash);
  ++*slot;
  if (inserted) classes_[r.url_hash] = trace::ClassOf(r.file_type);
}

void PopularityAccumulator::AddBatch(const trace::RecordBlock& b,
                                     const std::uint32_t* rows,
                                     std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = rows ? rows[k] : k;
    const std::uint64_t url = b.url_hash[i];
    auto [slot, inserted] = counts_.TryEmplace(url);
    ++*slot;
    if (inserted) classes_[url] = trace::ClassOf(b.file_type[i]);
  }
}

PopularityResult PopularityAccumulator::Finalize(
    const std::string& site_name) {
  PopularityResult result;
  result.site = site_name;

  // Sorted-hash order: FitPowerLaw accumulates log-sums in sample order, so
  // the order must not depend on hash-table layout.
  std::vector<double> all;
  all.reserve(counts_.size());
  for (const auto hash : counts_.SortedKeys()) {
    const auto c = static_cast<double>(counts_.At(hash));
    all.push_back(c);
    switch (classes_.At(hash)) {
      case trace::ContentClass::kVideo:
        result.video_counts.Add(c);
        break;
      case trace::ContentClass::kImage:
        result.image_counts.Add(c);
        break;
      case trace::ContentClass::kOther:
        break;
    }
    result.all_counts.Add(c);
  }
  result.video_counts.Finalize();
  result.image_counts.Finalize();
  result.all_counts.Finalize();

  if (!all.empty()) {
    result.top10_share = stats::TopShare(all, 0.10);
    result.gini = stats::Gini(all);
    result.power_law = stats::FitPowerLawAuto(all);
  }
  return result;
}

PopularityResult ComputePopularity(const trace::TraceBuffer& trace,
                                   const std::string& site_name) {
  PopularityAccumulator acc(trace.size());
  for (const auto& r : trace.records()) acc.Add(r);
  return acc.Finalize(site_name);
}

namespace {
constexpr std::uint32_t kPopularityStateVersion = 1;
}  // namespace

void PopularityAccumulator::SaveState(ckpt::Writer& w) const {
  w.WriteVersion(kPopularityStateVersion);
  w.WriteU64(counts_.size());
  for (const std::uint64_t hash : counts_.SortedKeys()) {
    w.WriteU64(hash);
    w.WriteU64(counts_.At(hash));
    w.WriteU8(static_cast<std::uint8_t>(classes_.At(hash)));
  }
}

void PopularityAccumulator::RestoreState(ckpt::Reader& r) {
  r.ExpectVersion("popularity accumulator", kPopularityStateVersion);
  counts_.clear();
  classes_.clear();
  const std::uint64_t n = r.ReadU64();
  counts_.reserve(static_cast<std::size_t>(n));
  classes_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t hash = r.ReadU64();
    counts_[hash] = r.ReadU64();
    classes_[hash] = static_cast<trace::ContentClass>(r.ReadU8());
  }
}

}  // namespace atlas::analysis
