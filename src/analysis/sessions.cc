#include "analysis/sessions.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "analysis/state_codec.h"
#include "util/sorted.h"

namespace atlas::analysis {

double SessionResult::MedianIatSeconds() const {
  return iat_seconds.empty() ? 0.0 : iat_seconds.Median();
}

double SessionResult::MedianSessionSeconds() const {
  return session_length_seconds.empty() ? 0.0
                                        : session_length_seconds.Median();
}

std::vector<Session> Sessionize(const trace::TraceBuffer& trace,
                                std::int64_t timeout_ms) {
  if (timeout_ms <= 0) throw std::invalid_argument("Sessionize: bad timeout");

  // Per-user chronological timestamps.
  std::unordered_map<std::uint64_t, std::vector<std::int64_t>> per_user;
  per_user.reserve(trace.size() / 4 + 1);
  for (const auto& r : trace.records()) {
    per_user[r.user_id].push_back(r.timestamp_ms);
  }

  // Sorted-user order: the returned vector's order must not depend on
  // hash-table layout.
  std::vector<Session> sessions;
  for (const auto user : util::SortedKeys(per_user)) {
    auto& times = per_user.at(user);
    std::sort(times.begin(), times.end());
    Session current;
    current.user_id = user;
    current.start_ms = times.front();
    current.end_ms = times.front();
    current.requests = 1;
    for (std::size_t i = 1; i < times.size(); ++i) {
      if (times[i] - current.end_ms > timeout_ms) {
        sessions.push_back(current);
        current.start_ms = times[i];
        current.requests = 0;
      }
      current.end_ms = times[i];
      ++current.requests;
    }
    sessions.push_back(current);
  }
  return sessions;
}

SessionAccumulator::SessionAccumulator(std::int64_t timeout_ms,
                                       std::size_t size_hint)
    : timeout_ms_(timeout_ms) {
  if (timeout_ms <= 0) {
    throw std::invalid_argument("SessionAccumulator: bad timeout");
  }
  open_.reserve(size_hint / 4 + 1);
}

void SessionAccumulator::CloseSession(const Session& s) {
  result_.session_length_seconds.Add(static_cast<double>(s.LengthMs()) /
                                     1000.0);
  result_.requests_per_session.Add(static_cast<double>(s.requests));
  ++result_.session_count;
}

void SessionAccumulator::Add(const trace::LogRecord& r) {
  AddOne(r.timestamp_ms, r.user_id);
}

void SessionAccumulator::AddOne(std::int64_t ts, std::uint64_t user) {
  if (any_ && ts < last_ts_) {
    throw std::invalid_argument(
        "SessionAccumulator: input not sorted by time");
  }
  any_ = true;
  last_ts_ = ts;

  auto [current, inserted] = open_.TryEmplace(user);
  if (inserted) {
    current->user_id = user;
    current->start_ms = ts;
    current->end_ms = ts;
    current->requests = 1;
    return;
  }
  // Every consecutive same-user gap feeds the IAT CDF, in or out of
  // session (Fig. 11 plots all gaps).
  result_.iat_seconds.Add(static_cast<double>(ts - current->end_ms) / 1000.0);
  if (ts - current->end_ms > timeout_ms_) {
    CloseSession(*current);
    current->start_ms = ts;
    current->requests = 0;
  }
  current->end_ms = ts;
  ++current->requests;
}

void SessionAccumulator::AddBatch(const trace::RecordBlock& b,
                                  const std::uint32_t* rows, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = rows ? rows[k] : k;
    AddOne(b.timestamp_ms[i], b.user_id[i]);
  }
}

SessionResult SessionAccumulator::Finalize(const std::string& site_name) {
  result_.site = site_name;
  // The Ecdfs sort on Finalize and the count commutes, so table layout
  // order is fine here.
  open_.ForEach(
      [&](std::uint64_t, const Session& session) { CloseSession(session); });
  open_.clear();
  result_.iat_seconds.Finalize();
  result_.session_length_seconds.Finalize();
  result_.requests_per_session.Finalize();
  return std::move(result_);
}

namespace {
constexpr std::uint32_t kSessionsStateVersion = 1;
}  // namespace

void SessionAccumulator::SaveState(ckpt::Writer& w) const {
  w.WriteVersion(kSessionsStateVersion);
  w.WriteI64(timeout_ms_);
  w.WriteU64(open_.size());
  for (const std::uint64_t user : open_.SortedKeys()) {
    const Session& s = open_.At(user);
    w.WriteU64(s.user_id);
    w.WriteI64(s.start_ms);
    w.WriteI64(s.end_ms);
    w.WriteU32(s.requests);
  }
  w.WriteI64(last_ts_);
  w.WriteBool(any_);
  SaveEcdf(w, result_.iat_seconds);
  SaveEcdf(w, result_.session_length_seconds);
  SaveEcdf(w, result_.requests_per_session);
  w.WriteU64(result_.session_count);
}

void SessionAccumulator::RestoreState(ckpt::Reader& r) {
  r.ExpectVersion("session accumulator", kSessionsStateVersion);
  const std::int64_t saved_timeout = r.ReadI64();
  if (saved_timeout != timeout_ms_) {
    throw std::runtime_error(
        "ckpt: session timeout mismatch (checkpoint has " +
        std::to_string(saved_timeout) + " ms, this run uses " +
        std::to_string(timeout_ms_) + " ms)");
  }
  open_.clear();
  const std::uint64_t n = r.ReadU64();
  open_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    Session s;
    s.user_id = r.ReadU64();
    s.start_ms = r.ReadI64();
    s.end_ms = r.ReadI64();
    s.requests = r.ReadU32();
    open_[s.user_id] = s;
  }
  last_ts_ = r.ReadI64();
  any_ = r.ReadBool();
  result_ = SessionResult{};
  result_.iat_seconds = LoadEcdf(r);
  result_.session_length_seconds = LoadEcdf(r);
  result_.requests_per_session = LoadEcdf(r);
  result_.session_count = r.ReadU64();
}

SessionResult ComputeSessions(const trace::TraceBuffer& trace,
                              const std::string& site_name,
                              std::int64_t timeout_ms) {
  SessionAccumulator acc(timeout_ms, trace.size());
  if (trace.IsSortedByTime()) {
    for (const auto& r : trace.records()) acc.Add(r);
  } else {
    // The Ecdf-based result only depends on each user's sorted timestamps,
    // so feeding a time-sorted view reproduces the historical
    // sort-per-user output exactly.
    std::vector<std::uint32_t> order(trace.size());
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return trace[a].timestamp_ms < trace[b].timestamp_ms;
                     });
    for (const auto i : order) acc.Add(trace[i]);
  }
  return acc.Finalize(site_name);
}

}  // namespace atlas::analysis
