#include "analysis/sessions.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace atlas::analysis {

double SessionResult::MedianIatSeconds() const {
  return iat_seconds.empty() ? 0.0 : iat_seconds.Median();
}

double SessionResult::MedianSessionSeconds() const {
  return session_length_seconds.empty() ? 0.0
                                        : session_length_seconds.Median();
}

std::vector<Session> Sessionize(const trace::TraceBuffer& trace,
                                std::int64_t timeout_ms) {
  if (timeout_ms <= 0) throw std::invalid_argument("Sessionize: bad timeout");

  // Per-user chronological timestamps.
  std::unordered_map<std::uint64_t, std::vector<std::int64_t>> per_user;
  per_user.reserve(trace.size() / 4 + 1);
  for (const auto& r : trace.records()) {
    per_user[r.user_id].push_back(r.timestamp_ms);
  }

  std::vector<Session> sessions;
  for (auto& [user, times] : per_user) {
    std::sort(times.begin(), times.end());
    Session current;
    current.user_id = user;
    current.start_ms = times.front();
    current.end_ms = times.front();
    current.requests = 1;
    for (std::size_t i = 1; i < times.size(); ++i) {
      if (times[i] - current.end_ms > timeout_ms) {
        sessions.push_back(current);
        current.start_ms = times[i];
        current.requests = 0;
      }
      current.end_ms = times[i];
      ++current.requests;
    }
    sessions.push_back(current);
  }
  return sessions;
}

SessionResult ComputeSessions(const trace::TraceBuffer& trace,
                              const std::string& site_name,
                              std::int64_t timeout_ms) {
  SessionResult result;
  result.site = site_name;

  // IATs: all consecutive same-user gaps.
  std::unordered_map<std::uint64_t, std::vector<std::int64_t>> per_user;
  per_user.reserve(trace.size() / 4 + 1);
  for (const auto& r : trace.records()) {
    per_user[r.user_id].push_back(r.timestamp_ms);
  }
  for (auto& [user, times] : per_user) {
    (void)user;
    std::sort(times.begin(), times.end());
    for (std::size_t i = 1; i < times.size(); ++i) {
      result.iat_seconds.Add(
          static_cast<double>(times[i] - times[i - 1]) / 1000.0);
    }
  }
  result.iat_seconds.Finalize();

  const auto sessions = Sessionize(trace, timeout_ms);
  result.session_count = sessions.size();
  for (const auto& s : sessions) {
    result.session_length_seconds.Add(static_cast<double>(s.LengthMs()) /
                                      1000.0);
    result.requests_per_session.Add(static_cast<double>(s.requests));
  }
  result.session_length_seconds.Finalize();
  result.requests_per_session.Finalize();
  return result;
}

}  // namespace atlas::analysis
