#include "analysis/engagement.h"

#include <algorithm>
#include <stdexcept>

#include "trace/content_class.h"

namespace atlas::analysis {

EngagementAccumulator::EngagementAccumulator(double addicted_ratio,
                                             std::size_t size_hint)
    : addicted_ratio_(addicted_ratio) {
  pair_counts_.reserve(size_hint);
}

void EngagementAccumulator::Add(const trace::LogRecord& r) {
  // A repeat (object, user) pair implies the object's class is already
  // stored, so the common case is a single probe.
  auto [slot, inserted] = pair_counts_.TryEmplace({r.url_hash, r.user_id});
  ++*slot;
  if (inserted) {
    classes_.InsertIfAbsent(r.url_hash, trace::ClassOf(r.file_type));
  }
}

void EngagementAccumulator::AddBatch(const trace::RecordBlock& b,
                                     const std::uint32_t* rows,
                                     std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = rows ? rows[k] : k;
    const std::uint64_t url = b.url_hash[i];
    auto [slot, inserted] = pair_counts_.TryEmplace({url, b.user_id[i]});
    ++*slot;
    if (inserted) {
      classes_.InsertIfAbsent(url, trace::ClassOf(b.file_type[i]));
    }
  }
}

EngagementResult EngagementAccumulator::Finalize(
    const std::string& site_name) {
  EngagementResult result;
  result.site = site_name;
  const double addicted_ratio = addicted_ratio_;

  util::FlatHashMap<std::uint64_t, ObjectEngagement> per_object;
  per_object.reserve(classes_.size());
  // Per-key integer sums/max commute, so table layout order is fine here.
  pair_counts_.ForEach([&](const std::pair<std::uint64_t, std::uint64_t>& key,
                           std::uint64_t count) {
    auto& obj = per_object[key.first];
    obj.url_hash = key.first;
    obj.content_class = classes_.At(key.first);
    obj.requests += count;
    obj.unique_users += 1;
    obj.max_requests_per_user = std::max(obj.max_requests_per_user, count);
  });

  result.objects.reserve(per_object.size());
  std::uint64_t video_over_10 = 0, video_total = 0;
  std::uint64_t image_over_10 = 0, image_total = 0;
  // Ecdf adds and integer counters commute; result.objects is explicitly
  // sorted below.
  per_object.ForEach([&](std::uint64_t, const ObjectEngagement& obj) {
    const double rpu = obj.RequestsPerUser();
    if (obj.content_class == trace::ContentClass::kVideo) {
      result.video_requests_per_user.Add(rpu);
      ++video_total;
      if (obj.max_requests_per_user > 10) ++video_over_10;
    } else if (obj.content_class == trace::ContentClass::kImage) {
      result.image_requests_per_user.Add(rpu);
      ++image_total;
      if (obj.max_requests_per_user > 10) ++image_over_10;
    }
    if (rpu >= addicted_ratio) {
      ++result.addicted_objects;
    } else {
      ++result.viral_objects;
    }
    result.objects.push_back(obj);
  });
  // Deterministic order for downstream output.
  std::sort(result.objects.begin(), result.objects.end(),
            [](const ObjectEngagement& a, const ObjectEngagement& b) {
              if (a.requests != b.requests) return a.requests > b.requests;
              return a.url_hash < b.url_hash;
            });
  result.video_requests_per_user.Finalize();
  result.image_requests_per_user.Finalize();
  result.video_frac_over_10 =
      video_total == 0 ? 0.0
                       : static_cast<double>(video_over_10) /
                             static_cast<double>(video_total);
  result.image_frac_over_10 =
      image_total == 0 ? 0.0
                       : static_cast<double>(image_over_10) /
                             static_cast<double>(image_total);
  return result;
}

EngagementResult ComputeEngagement(const trace::TraceBuffer& trace,
                                   const std::string& site_name,
                                   double addicted_ratio) {
  EngagementAccumulator acc(addicted_ratio, trace.size());
  for (const auto& r : trace.records()) acc.Add(r);
  return acc.Finalize(site_name);
}

namespace {
constexpr std::uint32_t kEngagementStateVersion = 1;
}  // namespace

void EngagementAccumulator::SaveState(ckpt::Writer& w) const {
  w.WriteVersion(kEngagementStateVersion);
  w.WriteDouble(addicted_ratio_);
  w.WriteU64(pair_counts_.size());
  for (const auto& key : pair_counts_.SortedKeys()) {
    w.WriteU64(key.first);
    w.WriteU64(key.second);
    w.WriteU64(pair_counts_.At(key));
  }
  w.WriteU64(classes_.size());
  for (const std::uint64_t hash : classes_.SortedKeys()) {
    w.WriteU64(hash);
    w.WriteU8(static_cast<std::uint8_t>(classes_.At(hash)));
  }
}

void EngagementAccumulator::RestoreState(ckpt::Reader& r) {
  r.ExpectVersion("engagement accumulator", kEngagementStateVersion);
  const double saved_ratio = r.ReadDouble();
  if (saved_ratio != addicted_ratio_) {
    throw std::runtime_error(
        "ckpt: engagement addicted-ratio mismatch (checkpoint has " +
        std::to_string(saved_ratio) + ", this run uses " +
        std::to_string(addicted_ratio_) + ")");
  }
  pair_counts_.clear();
  const std::uint64_t npairs = r.ReadU64();
  pair_counts_.reserve(static_cast<std::size_t>(npairs));
  for (std::uint64_t i = 0; i < npairs; ++i) {
    const std::uint64_t object = r.ReadU64();
    const std::uint64_t user = r.ReadU64();
    pair_counts_[{object, user}] = r.ReadU64();
  }
  classes_.clear();
  const std::uint64_t nclasses = r.ReadU64();
  classes_.reserve(static_cast<std::size_t>(nclasses));
  for (std::uint64_t i = 0; i < nclasses; ++i) {
    const std::uint64_t hash = r.ReadU64();
    classes_[hash] = static_cast<trace::ContentClass>(r.ReadU8());
  }
}

}  // namespace atlas::analysis
