#include "analysis/csv_export.h"

#include <algorithm>
#include <cmath>

#include "trace/record.h"
#include "util/csv.h"

namespace atlas::analysis {

void WriteCompositionCsv(const std::vector<CompositionResult>& sites,
                         std::ostream& out) {
  util::CsvWriter csv(out);
  csv.Row({"site", "class", "objects", "requests", "bytes"});
  for (const auto& s : sites) {
    for (int c = 0; c < trace::kNumContentClasses; ++c) {
      const auto i = static_cast<std::size_t>(c);
      csv.Field(s.site)
          .Field(trace::ToString(static_cast<trace::ContentClass>(c)))
          .Field(s.objects[i])
          .Field(s.requests[i])
          .Field(s.bytes[i]);
      csv.EndRow();
    }
  }
}

void WriteHourlyVolumeCsv(const std::vector<HourlyVolume>& sites,
                          std::ostream& out) {
  util::CsvWriter csv(out);
  std::vector<std::string> header = {"hour"};
  for (const auto& s : sites) header.push_back(s.site);
  csv.Row(header);
  for (int h = 0; h < 24; ++h) {
    csv.Field(static_cast<std::int64_t>(h));
    for (const auto& s : sites) {
      csv.Field(s.percent_by_hour[static_cast<std::size_t>(h)], 4);
    }
    csv.EndRow();
  }
}

void WriteCdfCsv(
    const std::vector<std::pair<std::string, const stats::Ecdf*>>& named,
    std::ostream& out, std::size_t points) {
  util::CsvWriter csv(out);
  csv.Row({"series", "x", "cdf"});
  for (const auto& [name, ecdf] : named) {
    if (ecdf == nullptr || ecdf->empty()) continue;
    for (const auto& [x, y] : ecdf->LogGrid(std::max<std::size_t>(points, 2))) {
      csv.Field(name).Field(x, 6).Field(y, 6);
      csv.EndRow();
    }
  }
}

void WriteAgingCsv(const std::vector<AgingResult>& sites, std::ostream& out) {
  util::CsvWriter csv(out);
  csv.Row({"site", "age_days", "fraction_requested",
           "fraction_requested_uncorrected"});
  for (const auto& s : sites) {
    for (int d = 0; d < kMaxAgeDays; ++d) {
      const auto i = static_cast<std::size_t>(d);
      csv.Field(s.site)
          .Field(static_cast<std::int64_t>(d + 1))
          .Field(s.fraction_requested[i], 6)
          .Field(s.fraction_requested_uncorrected[i], 6);
      csv.EndRow();
    }
  }
}

void WriteResponseCodesCsv(const std::vector<CachingResult>& sites,
                           std::ostream& out) {
  util::CsvWriter csv(out);
  csv.Row({"site", "class", "code", "count"});
  for (const auto& s : sites) {
    for (const auto& [code, count] : s.video_response_codes) {
      csv.Field(s.site).Field("video").Field(
          static_cast<std::uint64_t>(code));
      csv.Field(count);
      csv.EndRow();
    }
    for (const auto& [code, count] : s.image_response_codes) {
      csv.Field(s.site).Field("image").Field(
          static_cast<std::uint64_t>(code));
      csv.Field(count);
      csv.EndRow();
    }
  }
}

}  // namespace atlas::analysis
