// Content size distributions (Fig. 5).
//
// "Figure 5 plots the Cumulative Distribution Functions (CDFs) of content
// sizes ... majority of requested video objects have sizes greater than
// 1 MB and image objects are less than 1 MB ... multiple adult websites
// have bi-modal [image] distributions". Sizes are per *object* (each
// distinct object contributes once, at its full size).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"  // atlas-lint: allow(layer-dag) ckpt is the passive serialization substrate; consuming its codec interface does not invert control flow
#include "stats/ecdf.h"
#include "trace/block.h"
#include "trace/trace_buffer.h"
#include "util/flat_hash.h"

namespace atlas::analysis {

struct SizeDistributions {
  std::string site;
  stats::Ecdf video;  // may be empty for image-only sites
  stats::Ecdf image;
  stats::Ecdf other;

  // Fraction of video objects above 1 MB / image objects below 1 MB — the
  // two headline claims of §IV-B.
  double VideoAboveMb() const;
  double ImageBelowMb() const;
};

// Single-pass accumulator behind ComputeSizeDistributions. Keeps the size
// and type of each object's first-seen record (by value — records are not
// retained, so the input may be a transient stream chunk).
class SizeDistributionsAccumulator {
 public:
  explicit SizeDistributionsAccumulator(std::size_t size_hint = 0);
  void Add(const trace::LogRecord& r);
  // Rows rows[0..n) of b (all of [0, n) when rows is null), in stream
  // order — equivalent to n Add() calls.
  void AddBatch(const trace::RecordBlock& b, const std::uint32_t* rows,
                std::size_t n);
  SizeDistributions Finalize(const std::string& site_name);

  void SaveState(ckpt::Writer& w) const;
  void RestoreState(ckpt::Reader& r);

 private:
  struct FirstSeen {
    std::uint64_t object_size = 0;
    trace::FileType file_type{};
  };
  util::FlatHashMap<std::uint64_t, FirstSeen> firsts_;
};

SizeDistributions ComputeSizeDistributions(const trace::TraceBuffer& trace,
                                           const std::string& site_name);

// Detects bimodality of the image-size distribution via log-histogram modes
// (>= 2 well-separated modes). Exposed for tests and reports.
bool ImageSizesAreBimodal(const stats::Ecdf& image_sizes);

}  // namespace atlas::analysis
