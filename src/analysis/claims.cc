#include "analysis/claims.h"

#include <cmath>
#include <cstdio>

#include "util/str.h"

namespace atlas::analysis {
namespace {

using trace::ContentClass;

std::string Fmt(const char* format, double a, double b = 0.0) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), format, a, b);
  return buf;
}

const SiteAnalysis* Find(const AnalysisSuite& suite, const std::string& name) {
  for (const auto& s : suite.sites()) {
    if (s.site == name) return &s;
  }
  return nullptr;
}

class ClaimList {
 public:
  explicit ClaimList(std::size_t min_class_objects)
      : min_class_objects_(min_class_objects) {}

  void Add(const std::string& id, const std::string& description, bool pass,
           std::string detail) {
    results_.push_back(ClaimResult{id, description, pass, std::move(detail)});
  }

  // Skips (auto-passes with a note) when the population is too small to
  // judge.
  bool Sufficient(std::uint64_t n, const std::string& id,
                  const std::string& description) {
    if (n >= min_class_objects_) return true;
    Add(id, description, true,
        "skipped: only " + std::to_string(n) + " objects in class");
    return false;
  }

  std::vector<ClaimResult> Take() { return std::move(results_); }

 private:
  std::size_t min_class_objects_;
  std::vector<ClaimResult> results_;
};

}  // namespace

std::vector<ClaimResult> VerifyPaperClaims(const AnalysisSuite& suite,
                                           std::size_t min_class_objects) {
  ClaimList claims(min_class_objects);

  const auto* v1 = Find(suite, "V-1");
  const auto* v2 = Find(suite, "V-2");
  const auto* p1 = Find(suite, "P-1");
  const auto* s1 = Find(suite, "S-1");
  if (v1 == nullptr || v2 == nullptr || p1 == nullptr || s1 == nullptr) {
    claims.Add("setup", "all five paper sites present", false,
               "missing one of V-1/V-2/P-1/S-1");
    return claims.Take();
  }

  // --- Fig. 1 / 2: composition ------------------------------------------------
  claims.Add("F1.v1-video-objects", "V-1 catalog is ~98% video objects",
             v1->composition.ObjectShare(ContentClass::kVideo) > 0.90,
             Fmt("video object share %.1f%%",
                 v1->composition.ObjectShare(ContentClass::kVideo) * 100));
  claims.Add("F1.v2-image-objects", "V-2 catalog is ~84% image objects",
             v2->composition.ObjectShare(ContentClass::kImage) > 0.75 &&
                 v2->composition.ObjectShare(ContentClass::kImage) < 0.92,
             Fmt("image object share %.1f%%",
                 v2->composition.ObjectShare(ContentClass::kImage) * 100));
  for (const char* name : {"P-1", "P-2", "S-1"}) {
    const auto* site = Find(suite, name);
    if (site == nullptr) continue;
    claims.Add(std::string("F1.") + name + "-image-objects",
               std::string(name) + " catalog is ~99% image objects",
               site->composition.ObjectShare(ContentClass::kImage) > 0.95,
               Fmt("image object share %.1f%%",
                   site->composition.ObjectShare(ContentClass::kImage) * 100));
  }
  claims.Add("F2a.v1-video-requests", "99% of V-1 requests are video",
             v1->composition.RequestShare(ContentClass::kVideo) > 0.90,
             Fmt("video request share %.1f%%",
                 v1->composition.RequestShare(ContentClass::kVideo) * 100));
  claims.Add("F2a.v2-image-over-video",
             "V-2 serves more image requests than video (657K vs 359K)",
             v2->composition.requests[1] > v2->composition.requests[0],
             Fmt("image %.0f vs video %.0f",
                 static_cast<double>(v2->composition.requests[1]),
                 static_cast<double>(v2->composition.requests[0])));
  // The paper's wording: "video content accounts for disproportionately
  // more traffic volume" — i.e. its byte share far exceeds its request
  // share.
  claims.Add("F2b.video-dominates-bytes",
             "V-2 video bytes are disproportionate to its request share",
             v2->composition.ByteShare(ContentClass::kVideo) >
                 1.2 * v2->composition.RequestShare(ContentClass::kVideo),
             Fmt("video: %.1f%% of bytes vs %.1f%% of requests",
                 v2->composition.ByteShare(ContentClass::kVideo) * 100,
                 v2->composition.RequestShare(ContentClass::kVideo) * 100));

  // --- Fig. 3: temporal phase ---------------------------------------------------
  const int peak = v1->hourly.PeakHour();
  claims.Add("F3.v1-late-night-peak",
             "V-1 peaks late-night/early-morning (not the 7-11pm web peak)",
             peak >= 22 || peak <= 8, Fmt("peak hour %.0f:00 local", peak));

  // --- Fig. 4: devices ---------------------------------------------------------
  bool desktop_everywhere = true;
  for (const auto& site : suite.sites()) {
    desktop_everywhere &= site.devices.user_share[0] > 0.5;
  }
  claims.Add("F4.desktop-dominates", "desktop dominates on every site",
             desktop_everywhere, "");
  claims.Add("F4.v2-desktop", "V-2 has >95% desktop users",
             v2->devices.user_share[0] > 0.92,
             Fmt("desktop share %.1f%%", v2->devices.user_share[0] * 100));
  claims.Add("F4.s1-mobile", "S-1 has >1/3 smartphone+misc users",
             s1->devices.MobileShare() > 1.0 / 3.0 - 0.05,
             Fmt("mobile share %.1f%%", s1->devices.MobileShare() * 100));

  // --- Fig. 5: sizes -------------------------------------------------------------
  for (const auto& site : suite.sites()) {
    if (claims.Sufficient(site.sizes.video.count(),
                          "F5a." + site.site + "-video-size",
                          site.site + " video objects are mostly > 1 MB")) {
      claims.Add("F5a." + site.site + "-video-size",
                 site.site + " video objects are mostly > 1 MB",
                 site.sizes.VideoAboveMb() > 0.7,
                 Fmt(">1MB: %.1f%%", site.sizes.VideoAboveMb() * 100));
    }
    if (claims.Sufficient(site.sizes.image.count(),
                          "F5b." + site.site + "-image-size",
                          site.site + " image objects are mostly < 1 MB")) {
      claims.Add("F5b." + site.site + "-image-size",
                 site.site + " image objects are mostly < 1 MB",
                 site.sizes.ImageBelowMb() > 0.8,
                 Fmt("<1MB: %.1f%%", site.sizes.ImageBelowMb() * 100));
    }
  }
  if (claims.Sufficient(v2->sizes.image.count(), "F5b.bimodal",
                        "image sizes are bimodal (thumbnails vs full-res)")) {
    claims.Add("F5b.bimodal",
               "image sizes are bimodal (thumbnails vs full-res)",
               ImageSizesAreBimodal(v2->sizes.image), "checked on V-2");
  }

  // --- Fig. 6: popularity skew ----------------------------------------------------
  for (const auto& site : suite.sites()) {
    claims.Add("F6." + site.site + "-long-tail",
               site.site + " request counts are long-tailed",
               site.popularity.top10_share > 0.3 && site.popularity.gini > 0.4,
               Fmt("top10%% share %.1f%%, gini %.2f",
                   site.popularity.top10_share * 100, site.popularity.gini));
  }

  // --- Fig. 7: aging ---------------------------------------------------------------
  for (const auto& site : suite.sites()) {
    claims.Add(
        "F7." + site.site + "-aging",
        site.site + ": fraction of objects requested declines with age",
        site.aging.fraction_requested_uncorrected[0] >
                site.aging.fraction_requested_uncorrected[6] &&
            site.aging.fraction_requested_uncorrected[6] < 0.6,
        Fmt("day1 %.2f -> day7 %.2f",
            site.aging.fraction_requested_uncorrected[0],
            site.aging.fraction_requested_uncorrected[6]));
  }

  // --- Figs. 11-12: sessions -----------------------------------------------------
  const double v1_iat = v1->sessions.MedianIatSeconds();
  const double p1_iat = p1->sessions.MedianIatSeconds();
  claims.Add("F11.video-short-iat", "video-site median IAT < 10 min",
             v1_iat < 600.0, Fmt("V-1 median IAT %.1f s", v1_iat));
  claims.Add("F11.image-long-iat",
             "image-site IATs are orders of magnitude longer than video",
             p1_iat > v1_iat * 10.0,
             Fmt("P-1 %.0f s vs V-1 %.1f s", p1_iat, v1_iat));
  claims.Add("F12.short-sessions",
             "video-site median session is on the order of a minute",
             v1->sessions.MedianSessionSeconds() > 10.0 &&
                 v1->sessions.MedianSessionSeconds() < 600.0,
             Fmt("V-1 median session %.0f s",
                 v1->sessions.MedianSessionSeconds()));

  // --- Figs. 13-14: addiction -----------------------------------------------------
  if (claims.Sufficient(v1->engagement.video_requests_per_user.count(),
                        "F14.video-addiction",
                        ">=10% of video objects exceed 10 req/user")) {
    claims.Add("F14.video-addiction",
               ">=10% of video objects exceed 10 req/user",
               v1->engagement.video_frac_over_10 > 0.08,
               Fmt("V-1: %.1f%%", v1->engagement.video_frac_over_10 * 100));
  }
  if (claims.Sufficient(p1->engagement.image_requests_per_user.count(),
                        "F14.image-no-addiction",
                        "<1% of image objects exceed 10 req/user")) {
    claims.Add("F14.image-no-addiction",
               "<1% of image objects exceed 10 req/user",
               p1->engagement.image_frac_over_10 < 0.05,
               Fmt("P-1: %.2f%%", p1->engagement.image_frac_over_10 * 100));
  }

  // --- Figs. 15-16: caching -------------------------------------------------------
  for (const auto& site : suite.sites()) {
    claims.Add("F15." + site.site + "-pop-corr",
               site.site + ": popularity correlates with hit ratio",
               site.caching.popularity_hit_correlation > 0.2,
               Fmt("spearman %.2f", site.caching.popularity_hit_correlation));
    claims.Add("F16." + site.site + "-304-rare",
               site.site + ": 304s are rare (incognito browsing)",
               site.caching.NotModifiedShare() < 0.10,
               Fmt("304 share %.2f%%", site.caching.NotModifiedShare() * 100));
  }
  const auto& v1_codes = v1->caching.video_response_codes;
  const auto it206 = v1_codes.find(trace::kHttpPartialContent);
  const auto it200 = v1_codes.find(trace::kHttpOk);
  const std::uint64_t c206 = it206 == v1_codes.end() ? 0 : it206->second;
  const std::uint64_t c200 = it200 == v1_codes.end() ? 0 : it200->second;
  claims.Add("F16.v1-206-dominates",
             "V-1 video responses are dominated by 206 Partial Content",
             c206 > c200,
             Fmt("206: %.0f vs 200: %.0f", static_cast<double>(c206),
                 static_cast<double>(c200)));

  return claims.Take();
}

int RenderClaims(const std::vector<ClaimResult>& claims, std::ostream& out) {
  int failed = 0;
  for (const auto& c : claims) {
    out << (c.pass ? "[PASS] " : "[FAIL] ") << util::PadRight(c.id, 26)
        << c.description;
    if (!c.detail.empty()) out << "  (" << c.detail << ")";
    out << '\n';
    if (!c.pass) ++failed;
  }
  out << '\n'
      << (claims.size() - static_cast<std::size_t>(failed)) << "/"
      << claims.size() << " claims reproduced";
  if (failed > 0) out << " — " << failed << " FAILED";
  out << '\n';
  return failed;
}

}  // namespace atlas::analysis
