// Temporal access patterns (Fig. 3).
//
// "Figure 3 plots the normalized hourly timeseries of traffic volume across
// the day. We converted the timestamps to local timezones to calculate
// hourly traffic volumes." Volume here is request count (the paper's
// 'traffic volume' series is normalized, so count vs. bytes only changes
// the units; both are provided).
#pragma once

#include <array>
#include <string>

#include "ckpt/checkpoint.h"  // atlas-lint: allow(layer-dag) ckpt is the passive serialization substrate; consuming its codec interface does not invert control flow
#include "stats/timeseries.h"
#include "trace/block.h"
#include "trace/trace_buffer.h"

namespace atlas::analysis {

struct HourlyVolume {
  std::string site;
  // Percentage of the site's weekly volume falling in each local
  // hour-of-day (sums to 100).
  std::array<double, 24> percent_by_hour{};
  std::array<double, 24> percent_bytes_by_hour{};
  // Full 168-hour local-time series (request counts) for weekly views.
  stats::TimeSeries week_series;

  int PeakHour() const;
  int TroughHour() const;
  // Peak-to-mean ratio: how pronounced the daily cycle is.
  double PeakToMean() const;
};

// Single-pass accumulator behind ComputeHourlyVolume. Records must be fed
// in trace order for bit-identical float sums between the streaming and
// in-memory paths (both feed chronological order).
class HourlyVolumeAccumulator {
 public:
  HourlyVolumeAccumulator();
  void Add(const trace::LogRecord& r);
  // Rows rows[0..n) of b (all of [0, n) when rows is null), in stream
  // order. The float sums accumulate in exactly the per-record sequence so
  // the result is bit-identical to n Add() calls.
  void AddBatch(const trace::RecordBlock& b, const std::uint32_t* rows,
                std::size_t n);
  HourlyVolume Finalize(const std::string& site_name);

  void SaveState(ckpt::Writer& w) const;
  void RestoreState(ckpt::Reader& r);

 private:
  HourlyVolume result_;
  std::array<double, 24> counts_{};
  std::array<double, 24> bytes_{};
  double total_count_ = 0.0;
  double total_bytes_ = 0.0;
};

HourlyVolume ComputeHourlyVolume(const trace::TraceBuffer& site_trace,
                                 const std::string& site_name);

// Phase distance in hours between two sites' peak hours (0..12); used to
// quantify "V-1 is almost opposite to typical diurnal" (6-12h apart).
int PeakHourDistance(const HourlyVolume& a, const HourlyVolume& b);

}  // namespace atlas::analysis
