// Device/OS composition (Fig. 4).
//
// "Recall that we extract user agent information from HTTP headers to
// identify device/OS of a user" — shares are computed over *users* (each
// unique user counted once), by re-parsing the raw user-agent strings the
// generator emitted, i.e. the same pipeline a production log system runs.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"  // atlas-lint: allow(layer-dag) ckpt is the passive serialization substrate; consuming its codec interface does not invert control flow
#include "trace/block.h"
#include "trace/trace_buffer.h"
#include "trace/useragent.h"
#include "util/flat_hash.h"

namespace atlas::analysis {

struct DeviceComposition {
  std::string site;
  // Fraction of unique users per device type {Desktop, Android, iOS, Misc}.
  std::array<double, trace::kNumDeviceTypes> user_share{};
  // Fraction of requests per device type.
  std::array<double, trace::kNumDeviceTypes> request_share{};
  // OS and browser breakdowns over users.
  std::array<double, trace::kNumOsFamilies> os_share{};
  std::array<double, trace::kNumBrowserFamilies> browser_share{};
  std::uint64_t unique_users = 0;

  // Fraction of users on anything other than a desktop.
  double MobileShare() const {
    return 1.0 - user_share[static_cast<std::size_t>(
                     trace::DeviceType::kDesktop)];
  }
};

// Single-pass accumulator behind ComputeDeviceComposition. State is one
// entry per unique user plus the (tiny) parsed-UA cache.
class DeviceCompositionAccumulator {
 public:
  explicit DeviceCompositionAccumulator(std::size_t size_hint = 0);
  void Add(const trace::LogRecord& r);
  void AddBatch(const trace::RecordBlock& b, const std::uint32_t* rows,
                std::size_t n);
  DeviceComposition Finalize(const std::string& site_name);

  // The parsed-UA cache is not serialized: it is a pure function of the
  // ua ids and repopulates lazily after restore.
  void SaveState(ckpt::Writer& w) const;
  void RestoreState(ckpt::Reader& r);

 private:
  const trace::UaInfo& InfoFor(std::uint16_t ua_id);

  // Dense parsed-UA cache indexed by ua id (the bank is small and ids are
  // u16, so a flat array beats a hash probe per record).
  std::vector<trace::UaInfo> parsed_;
  std::vector<std::uint8_t> parsed_valid_;
  util::FlatHashMap<std::uint64_t, std::uint16_t> user_ua_;
  std::array<std::uint64_t, trace::kNumDeviceTypes> request_counts_{};
  std::uint64_t requests_ = 0;
};

DeviceComposition ComputeDeviceComposition(const trace::TraceBuffer& trace,
                                           const std::string& site_name);

}  // namespace atlas::analysis
