// Shared checkpoint encoders for the stats value types the analysis
// accumulators carry mid-stream.
//
// stats:: stays independent of ckpt:: (it is a leaf math library), so the
// serialization lives here with its only consumers. Ecdf samples are saved
// in their current (insertion) order and re-Add()ed on restore; a restored
// Ecdf is un-finalized, exactly like one rebuilt by replaying the stream.
#pragma once

#include "ckpt/checkpoint.h"  // atlas-lint: allow(layer-dag) ckpt is the passive serialization substrate; consuming its codec interface does not invert control flow
#include "stats/ecdf.h"
#include "stats/timeseries.h"

namespace atlas::analysis {

inline void SaveEcdf(ckpt::Writer& w, const stats::Ecdf& e) {
  w.WriteVecDouble(e.sorted_samples());
}

inline stats::Ecdf LoadEcdf(ckpt::Reader& r) {
  stats::Ecdf e;
  for (const double x : r.ReadVecDouble()) e.Add(x);
  return e;
}

inline void SaveTimeSeries(ckpt::Writer& w, const stats::TimeSeries& ts) {
  w.WriteI64(ts.bucket_ms());
  w.WriteVecDouble(ts.values());
}

inline stats::TimeSeries LoadTimeSeries(ckpt::Reader& r) {
  const std::int64_t bucket_ms = r.ReadI64();
  return stats::TimeSeries(bucket_ms, r.ReadVecDouble());
}

}  // namespace atlas::analysis
