#include "analysis/composition.h"

#include <algorithm>
#include <vector>

#include "trace/content_class.h"
#include "util/sorted.h"

namespace atlas::analysis {

std::uint64_t CompositionResult::TotalObjects() const {
  std::uint64_t t = 0;
  for (auto v : objects) t += v;
  return t;
}

std::uint64_t CompositionResult::TotalRequests() const {
  std::uint64_t t = 0;
  for (auto v : requests) t += v;
  return t;
}

std::uint64_t CompositionResult::TotalBytes() const {
  std::uint64_t t = 0;
  for (auto v : bytes) t += v;
  return t;
}

double CompositionResult::ObjectShare(trace::ContentClass c) const {
  const auto total = TotalObjects();
  return total == 0
             ? 0.0
             : static_cast<double>(objects[static_cast<std::size_t>(c)]) /
                   static_cast<double>(total);
}

double CompositionResult::RequestShare(trace::ContentClass c) const {
  const auto total = TotalRequests();
  return total == 0
             ? 0.0
             : static_cast<double>(requests[static_cast<std::size_t>(c)]) /
                   static_cast<double>(total);
}

double CompositionResult::ByteShare(trace::ContentClass c) const {
  const auto total = TotalBytes();
  return total == 0 ? 0.0
                    : static_cast<double>(bytes[static_cast<std::size_t>(c)]) /
                          static_cast<double>(total);
}

CompositionAccumulator::CompositionAccumulator(std::size_t size_hint) {
  seen_.reserve(size_hint / 4 + 1);
}

void CompositionAccumulator::Add(const trace::LogRecord& r) {
  const auto cls = trace::ClassOf(r.file_type);
  const auto c = static_cast<std::size_t>(cls);
  ++result_.requests[c];
  result_.bytes[c] += r.response_bytes;
  seen_.InsertIfAbsent(r.url_hash, cls);
}

void CompositionAccumulator::AddBatch(const trace::RecordBlock& b,
                                      const std::uint32_t* rows,
                                      std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = rows ? rows[k] : k;
    const auto cls = trace::ClassOf(b.file_type[i]);
    const auto c = static_cast<std::size_t>(cls);
    ++result_.requests[c];
    result_.bytes[c] += b.response_bytes[i];
    seen_.InsertIfAbsent(b.url_hash[i], cls);
  }
}

CompositionResult CompositionAccumulator::Finalize(
    const std::string& site_name) {
  result_.site = site_name;
  // Per-class object tallies commute, so layout order is fine here.
  seen_.ForEach([&](std::uint64_t, trace::ContentClass cls) {
    ++result_.objects[static_cast<std::size_t>(cls)];
  });
  return std::move(result_);
}

CompositionResult ComputeComposition(const trace::TraceBuffer& site_trace,
                                     const std::string& site_name) {
  CompositionAccumulator acc(site_trace.size());
  for (const auto& r : site_trace.records()) acc.Add(r);
  return acc.Finalize(site_name);
}

DatasetSummaryAccumulator::DatasetSummaryAccumulator(std::size_t size_hint) {
  users_.reserve(size_hint / 4 + 1);
  objects_.reserve(size_hint / 4 + 1);
}

void DatasetSummaryAccumulator::Add(const trace::LogRecord& r) {
  if (records_ == 0) {
    start_ms_ = r.timestamp_ms;
    end_ms_ = r.timestamp_ms;
  } else {
    start_ms_ = std::min(start_ms_, r.timestamp_ms);
    end_ms_ = std::max(end_ms_, r.timestamp_ms);
  }
  ++records_;
  bytes_ += r.response_bytes;
  users_.Insert(r.user_id);
  objects_.Insert(r.url_hash);
}

void DatasetSummaryAccumulator::AddBatch(const trace::RecordBlock& b,
                                         const std::uint32_t* rows,
                                         std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = rows ? rows[k] : k;
    const std::int64_t ts = b.timestamp_ms[i];
    if (records_ == 0) {
      start_ms_ = ts;
      end_ms_ = ts;
    } else {
      start_ms_ = std::min(start_ms_, ts);
      end_ms_ = std::max(end_ms_, ts);
    }
    ++records_;
    bytes_ += b.response_bytes[i];
    users_.Insert(b.user_id[i]);
    objects_.Insert(b.url_hash[i]);
  }
}

DatasetSummary DatasetSummaryAccumulator::Finalize(const std::string& label) {
  DatasetSummary s;
  s.label = label;
  s.records = records_;
  s.users = users_.size();
  s.objects = objects_.size();
  s.bytes = bytes_;
  s.start_ms = start_ms_;
  s.end_ms = end_ms_;
  return s;
}

DatasetSummary ComputeDatasetSummary(const trace::TraceBuffer& trace,
                                     const std::string& label) {
  DatasetSummaryAccumulator acc(trace.size());
  for (const auto& r : trace.records()) acc.Add(r);
  return acc.Finalize(label);
}

namespace {

constexpr std::uint32_t kCompositionStateVersion = 1;
constexpr std::uint32_t kDatasetSummaryStateVersion = 1;

}  // namespace

void CompositionAccumulator::SaveState(ckpt::Writer& w) const {
  w.WriteVersion(kCompositionStateVersion);
  for (std::size_t c = 0; c < trace::kNumContentClasses; ++c) {
    w.WriteU64(result_.objects[c]);
    w.WriteU64(result_.requests[c]);
    w.WriteU64(result_.bytes[c]);
  }
  w.WriteU64(seen_.size());
  for (const std::uint64_t hash : seen_.SortedKeys()) {
    w.WriteU64(hash);
    w.WriteU8(static_cast<std::uint8_t>(seen_.At(hash)));
  }
}

void CompositionAccumulator::RestoreState(ckpt::Reader& r) {
  r.ExpectVersion("composition accumulator", kCompositionStateVersion);
  for (std::size_t c = 0; c < trace::kNumContentClasses; ++c) {
    result_.objects[c] = r.ReadU64();
    result_.requests[c] = r.ReadU64();
    result_.bytes[c] = r.ReadU64();
  }
  seen_.clear();
  const std::uint64_t n = r.ReadU64();
  seen_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t hash = r.ReadU64();
    seen_[hash] = static_cast<trace::ContentClass>(r.ReadU8());
  }
}

void DatasetSummaryAccumulator::SaveState(ckpt::Writer& w) const {
  w.WriteVersion(kDatasetSummaryStateVersion);
  w.WriteU64(records_);
  w.WriteU64(bytes_);
  w.WriteI64(start_ms_);
  w.WriteI64(end_ms_);
  w.WriteVecU64(users_.SortedElements());
  w.WriteVecU64(objects_.SortedElements());
}

void DatasetSummaryAccumulator::RestoreState(ckpt::Reader& r) {
  r.ExpectVersion("dataset summary accumulator", kDatasetSummaryStateVersion);
  records_ = r.ReadU64();
  bytes_ = r.ReadU64();
  start_ms_ = r.ReadI64();
  end_ms_ = r.ReadI64();
  users_.clear();
  for (const std::uint64_t u : r.ReadVecU64()) users_.Insert(u);
  objects_.clear();
  for (const std::uint64_t o : r.ReadVecU64()) objects_.Insert(o);
}

}  // namespace atlas::analysis
