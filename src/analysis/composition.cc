#include "analysis/composition.h"

#include <algorithm>
#include <vector>

#include "trace/content_class.h"
#include "util/sorted.h"

namespace atlas::analysis {

std::uint64_t CompositionResult::TotalObjects() const {
  std::uint64_t t = 0;
  for (auto v : objects) t += v;
  return t;
}

std::uint64_t CompositionResult::TotalRequests() const {
  std::uint64_t t = 0;
  for (auto v : requests) t += v;
  return t;
}

std::uint64_t CompositionResult::TotalBytes() const {
  std::uint64_t t = 0;
  for (auto v : bytes) t += v;
  return t;
}

double CompositionResult::ObjectShare(trace::ContentClass c) const {
  const auto total = TotalObjects();
  return total == 0
             ? 0.0
             : static_cast<double>(objects[static_cast<std::size_t>(c)]) /
                   static_cast<double>(total);
}

double CompositionResult::RequestShare(trace::ContentClass c) const {
  const auto total = TotalRequests();
  return total == 0
             ? 0.0
             : static_cast<double>(requests[static_cast<std::size_t>(c)]) /
                   static_cast<double>(total);
}

double CompositionResult::ByteShare(trace::ContentClass c) const {
  const auto total = TotalBytes();
  return total == 0 ? 0.0
                    : static_cast<double>(bytes[static_cast<std::size_t>(c)]) /
                          static_cast<double>(total);
}

CompositionAccumulator::CompositionAccumulator(std::size_t size_hint) {
  seen_.reserve(size_hint / 4 + 1);
}

void CompositionAccumulator::Add(const trace::LogRecord& r) {
  const auto cls = trace::ClassOf(r.file_type);
  const auto c = static_cast<std::size_t>(cls);
  ++result_.requests[c];
  result_.bytes[c] += r.response_bytes;
  seen_.emplace(r.url_hash, cls);
}

CompositionResult CompositionAccumulator::Finalize(
    const std::string& site_name) {
  result_.site = site_name;
  for (const auto& [hash, cls] : seen_) {
    (void)hash;
    ++result_.objects[static_cast<std::size_t>(cls)];
  }
  return std::move(result_);
}

CompositionResult ComputeComposition(const trace::TraceBuffer& site_trace,
                                     const std::string& site_name) {
  CompositionAccumulator acc(site_trace.size());
  for (const auto& r : site_trace.records()) acc.Add(r);
  return acc.Finalize(site_name);
}

DatasetSummaryAccumulator::DatasetSummaryAccumulator(std::size_t size_hint) {
  users_.reserve(size_hint / 4 + 1);
  objects_.reserve(size_hint / 4 + 1);
}

void DatasetSummaryAccumulator::Add(const trace::LogRecord& r) {
  if (records_ == 0) {
    start_ms_ = r.timestamp_ms;
    end_ms_ = r.timestamp_ms;
  } else {
    start_ms_ = std::min(start_ms_, r.timestamp_ms);
    end_ms_ = std::max(end_ms_, r.timestamp_ms);
  }
  ++records_;
  bytes_ += r.response_bytes;
  users_.insert(r.user_id);
  objects_.insert(r.url_hash);
}

DatasetSummary DatasetSummaryAccumulator::Finalize(const std::string& label) {
  DatasetSummary s;
  s.label = label;
  s.records = records_;
  s.users = users_.size();
  s.objects = objects_.size();
  s.bytes = bytes_;
  s.start_ms = start_ms_;
  s.end_ms = end_ms_;
  return s;
}

DatasetSummary ComputeDatasetSummary(const trace::TraceBuffer& trace,
                                     const std::string& label) {
  DatasetSummaryAccumulator acc(trace.size());
  for (const auto& r : trace.records()) acc.Add(r);
  return acc.Finalize(label);
}

namespace {

constexpr std::uint32_t kCompositionStateVersion = 1;
constexpr std::uint32_t kDatasetSummaryStateVersion = 1;

std::vector<std::uint64_t> SortedElements(
    const std::unordered_set<std::uint64_t>& s) {
  std::vector<std::uint64_t> v(s.begin(), s.end());
  std::sort(v.begin(), v.end());
  return v;
}

}  // namespace

void CompositionAccumulator::SaveState(ckpt::Writer& w) const {
  w.WriteVersion(kCompositionStateVersion);
  for (std::size_t c = 0; c < trace::kNumContentClasses; ++c) {
    w.WriteU64(result_.objects[c]);
    w.WriteU64(result_.requests[c]);
    w.WriteU64(result_.bytes[c]);
  }
  w.WriteU64(seen_.size());
  for (const std::uint64_t hash : util::SortedKeys(seen_)) {
    w.WriteU64(hash);
    w.WriteU8(static_cast<std::uint8_t>(seen_.at(hash)));
  }
}

void CompositionAccumulator::RestoreState(ckpt::Reader& r) {
  r.ExpectVersion("composition accumulator", kCompositionStateVersion);
  for (std::size_t c = 0; c < trace::kNumContentClasses; ++c) {
    result_.objects[c] = r.ReadU64();
    result_.requests[c] = r.ReadU64();
    result_.bytes[c] = r.ReadU64();
  }
  seen_.clear();
  const std::uint64_t n = r.ReadU64();
  seen_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t hash = r.ReadU64();
    seen_[hash] = static_cast<trace::ContentClass>(r.ReadU8());
  }
}

void DatasetSummaryAccumulator::SaveState(ckpt::Writer& w) const {
  w.WriteVersion(kDatasetSummaryStateVersion);
  w.WriteU64(records_);
  w.WriteU64(bytes_);
  w.WriteI64(start_ms_);
  w.WriteI64(end_ms_);
  w.WriteVecU64(SortedElements(users_));
  w.WriteVecU64(SortedElements(objects_));
}

void DatasetSummaryAccumulator::RestoreState(ckpt::Reader& r) {
  r.ExpectVersion("dataset summary accumulator", kDatasetSummaryStateVersion);
  records_ = r.ReadU64();
  bytes_ = r.ReadU64();
  start_ms_ = r.ReadI64();
  end_ms_ = r.ReadI64();
  const std::vector<std::uint64_t> users = r.ReadVecU64();
  const std::vector<std::uint64_t> objects = r.ReadVecU64();
  users_ = std::unordered_set<std::uint64_t>(users.begin(), users.end());
  objects_ = std::unordered_set<std::uint64_t>(objects.begin(), objects.end());
}

}  // namespace atlas::analysis
