#include "analysis/composition.h"

#include <unordered_map>

#include "trace/content_class.h"

namespace atlas::analysis {

std::uint64_t CompositionResult::TotalObjects() const {
  std::uint64_t t = 0;
  for (auto v : objects) t += v;
  return t;
}

std::uint64_t CompositionResult::TotalRequests() const {
  std::uint64_t t = 0;
  for (auto v : requests) t += v;
  return t;
}

std::uint64_t CompositionResult::TotalBytes() const {
  std::uint64_t t = 0;
  for (auto v : bytes) t += v;
  return t;
}

double CompositionResult::ObjectShare(trace::ContentClass c) const {
  const auto total = TotalObjects();
  return total == 0
             ? 0.0
             : static_cast<double>(objects[static_cast<std::size_t>(c)]) /
                   static_cast<double>(total);
}

double CompositionResult::RequestShare(trace::ContentClass c) const {
  const auto total = TotalRequests();
  return total == 0
             ? 0.0
             : static_cast<double>(requests[static_cast<std::size_t>(c)]) /
                   static_cast<double>(total);
}

double CompositionResult::ByteShare(trace::ContentClass c) const {
  const auto total = TotalBytes();
  return total == 0 ? 0.0
                    : static_cast<double>(bytes[static_cast<std::size_t>(c)]) /
                          static_cast<double>(total);
}

CompositionResult ComputeComposition(const trace::TraceBuffer& site_trace,
                                     const std::string& site_name) {
  CompositionResult result;
  result.site = site_name;
  std::unordered_map<std::uint64_t, trace::ContentClass> seen;
  seen.reserve(site_trace.size() / 4 + 1);
  for (const auto& r : site_trace.records()) {
    const auto cls = trace::ClassOf(r.file_type);
    const auto c = static_cast<std::size_t>(cls);
    ++result.requests[c];
    result.bytes[c] += r.response_bytes;
    seen.emplace(r.url_hash, cls);
  }
  for (const auto& [hash, cls] : seen) {
    (void)hash;
    ++result.objects[static_cast<std::size_t>(cls)];
  }
  return result;
}

DatasetSummary ComputeDatasetSummary(const trace::TraceBuffer& trace,
                                     const std::string& label) {
  DatasetSummary s;
  s.label = label;
  s.records = trace.size();
  s.users = trace.UniqueUsers();
  s.objects = trace.UniqueObjects();
  s.bytes = trace.TotalBytes();
  s.start_ms = trace.StartMs();
  s.end_ms = trace.EndMs();
  return s;
}

}  // namespace atlas::analysis
