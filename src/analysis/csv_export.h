// CSV emitters for figure data.
//
// Each Render* function in report.h has a CSV twin here so the bench
// binaries can dump machine-readable series (--csv flag) for gnuplot /
// matplotlib / pandas, alongside the human-readable tables.
#pragma once

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/aging.h"
#include "analysis/caching.h"
#include "analysis/composition.h"
#include "analysis/temporal.h"
#include "stats/ecdf.h"

namespace atlas::analysis {

// site,class,objects,requests,bytes — Figs. 1-2 in one long table.
void WriteCompositionCsv(const std::vector<CompositionResult>& sites,
                         std::ostream& out);

// hour,site1,site2,... percentages — Fig. 3.
void WriteHourlyVolumeCsv(const std::vector<HourlyVolume>& sites,
                          std::ostream& out);

// series,x,cdf rows over a shared log grid — Figs. 5, 6, 11, 12, 14, 15.
// Each named ECDF becomes one `series` value.
void WriteCdfCsv(
    const std::vector<std::pair<std::string, const stats::Ecdf*>>& named,
    std::ostream& out, std::size_t points = 64);

// site,age_days,fraction,fraction_uncorrected — Fig. 7.
void WriteAgingCsv(const std::vector<AgingResult>& sites, std::ostream& out);

// site,class,code,count — Fig. 16.
void WriteResponseCodesCsv(const std::vector<CachingResult>& sites,
                           std::ostream& out);

}  // namespace atlas::analysis
