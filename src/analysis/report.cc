#include "analysis/report.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <set>

#include "cluster/medoid.h"
#include "util/str.h"
#include "util/time.h"

namespace atlas::analysis {
namespace {

using util::FormatBytes;
using util::FormatCount;
using util::FormatPercent;
using util::PadLeft;
using util::PadRight;

constexpr std::size_t kSiteCol = 7;
constexpr std::size_t kNumCol = 12;

void Rule(std::ostream& out, std::size_t width) {
  out << std::string(width, '-') << '\n';
}

}  // namespace

void RenderDatasetSummaries(const std::vector<DatasetSummary>& summaries,
                            std::ostream& out) {
  out << PadRight("site", kSiteCol) << PadLeft("records", kNumCol)
      << PadLeft("users", kNumCol) << PadLeft("objects", kNumCol)
      << PadLeft("bytes", kNumCol) << PadLeft("span", kNumCol) << '\n';
  Rule(out, kSiteCol + 5 * kNumCol);
  for (const auto& s : summaries) {
    out << PadRight(s.label, kSiteCol)
        << PadLeft(FormatCount(static_cast<double>(s.records)), kNumCol)
        << PadLeft(FormatCount(static_cast<double>(s.users)), kNumCol)
        << PadLeft(FormatCount(static_cast<double>(s.objects)), kNumCol)
        << PadLeft(FormatBytes(static_cast<double>(s.bytes)), kNumCol)
        << PadLeft(util::FormatDuration(s.end_ms - s.start_ms), kNumCol)
        << '\n';
  }
}

void RenderContentComposition(const std::vector<CompositionResult>& sites,
                              std::ostream& out) {
  out << PadRight("site", kSiteCol) << PadLeft("objects", kNumCol)
      << PadLeft("video", kNumCol) << PadLeft("image", kNumCol)
      << PadLeft("other", kNumCol) << '\n';
  Rule(out, kSiteCol + 4 * kNumCol);
  for (const auto& s : sites) {
    out << PadRight(s.site, kSiteCol)
        << PadLeft(FormatCount(static_cast<double>(s.TotalObjects())), kNumCol);
    for (int c = 0; c < trace::kNumContentClasses; ++c) {
      out << PadLeft(
          FormatPercent(s.ObjectShare(static_cast<trace::ContentClass>(c)), 1),
          kNumCol);
    }
    out << '\n';
  }
}

void RenderTrafficComposition(const std::vector<CompositionResult>& sites,
                              std::ostream& out) {
  out << "(a) request count\n";
  out << PadRight("site", kSiteCol) << PadLeft("requests", kNumCol)
      << PadLeft("video", kNumCol) << PadLeft("image", kNumCol)
      << PadLeft("other", kNumCol) << '\n';
  Rule(out, kSiteCol + 4 * kNumCol);
  for (const auto& s : sites) {
    out << PadRight(s.site, kSiteCol)
        << PadLeft(FormatCount(static_cast<double>(s.TotalRequests())),
                   kNumCol);
    for (int c = 0; c < trace::kNumContentClasses; ++c) {
      out << PadLeft(
          FormatPercent(s.RequestShare(static_cast<trace::ContentClass>(c)), 1),
          kNumCol);
    }
    out << '\n';
  }
  out << "\n(b) request size (delivered bytes)\n";
  out << PadRight("site", kSiteCol) << PadLeft("bytes", kNumCol)
      << PadLeft("video", kNumCol) << PadLeft("image", kNumCol)
      << PadLeft("other", kNumCol) << '\n';
  Rule(out, kSiteCol + 4 * kNumCol);
  for (const auto& s : sites) {
    out << PadRight(s.site, kSiteCol)
        << PadLeft(FormatBytes(static_cast<double>(s.TotalBytes())), kNumCol);
    for (int c = 0; c < trace::kNumContentClasses; ++c) {
      out << PadLeft(
          FormatPercent(s.ByteShare(static_cast<trace::ContentClass>(c)), 1),
          kNumCol);
    }
    out << '\n';
  }
}

void RenderHourlyVolume(const std::vector<HourlyVolume>& sites,
                        std::ostream& out) {
  out << PadRight("hour", 6);
  for (const auto& s : sites) out << PadLeft(s.site, 8);
  out << '\n';
  Rule(out, 6 + sites.size() * 8);
  for (int h = 0; h < 24; ++h) {
    out << PadRight(std::to_string(h), 6);
    for (const auto& s : sites) {
      out << PadLeft(
          util::FormatDouble(s.percent_by_hour[static_cast<std::size_t>(h)], 2),
          8);
    }
    out << '\n';
  }
  out << '\n';
  for (const auto& s : sites) {
    out << PadRight(s.site, kSiteCol) << " peak hour "
        << PadLeft(std::to_string(s.PeakHour()), 2) << ":00 local, trough "
        << PadLeft(std::to_string(s.TroughHour()), 2)
        << ":00, peak/mean=" << util::FormatDouble(s.PeakToMean(), 2) << '\n';
  }
}

void RenderDeviceComposition(const std::vector<DeviceComposition>& sites,
                             std::ostream& out) {
  out << PadRight("site", kSiteCol) << PadLeft("users", kNumCol);
  for (int d = 0; d < trace::kNumDeviceTypes; ++d) {
    out << PadLeft(trace::ToString(static_cast<trace::DeviceType>(d)), 10);
  }
  out << PadLeft("mobile", 10) << '\n';
  Rule(out, kSiteCol + kNumCol + 5 * 10);
  for (const auto& s : sites) {
    out << PadRight(s.site, kSiteCol)
        << PadLeft(FormatCount(static_cast<double>(s.unique_users)), kNumCol);
    for (int d = 0; d < trace::kNumDeviceTypes; ++d) {
      out << PadLeft(FormatPercent(s.user_share[static_cast<std::size_t>(d)], 1),
                     10);
    }
    out << PadLeft(FormatPercent(s.MobileShare(), 1), 10) << '\n';
  }
}

namespace {

void RenderCdfGrid(std::ostream& out, const std::string& title,
                   const std::vector<std::pair<std::string, const stats::Ecdf*>>&
                       named_cdfs,
                   std::size_t points) {
  out << title << '\n';
  out << PadRight("x", 14);
  for (const auto& [name, cdf] : named_cdfs) {
    (void)cdf;
    out << PadLeft(name, 9);
  }
  out << '\n';
  Rule(out, 14 + named_cdfs.size() * 9);
  // Shared log grid spanning all series.
  double lo = 0.0, hi = 0.0;
  bool first = true;
  for (const auto& [name, cdf] : named_cdfs) {
    (void)name;
    if (cdf->empty()) continue;
    const double c_lo = std::max(cdf->Min(), 1e-9);
    if (first) {
      lo = c_lo;
      hi = cdf->Max();
      first = false;
    } else {
      lo = std::min(lo, c_lo);
      hi = std::max(hi, cdf->Max());
    }
  }
  if (first) {
    out << "(no data)\n";
    return;
  }
  hi = std::max(hi, lo * 1.0000001);
  const double llo = std::log10(lo), lhi = std::log10(hi);
  for (std::size_t i = 0; i < points; ++i) {
    const double x = std::pow(
        10.0, llo + (lhi - llo) * static_cast<double>(i) /
                        static_cast<double>(points - 1));
    out << PadRight(util::FormatDouble(x, x < 10 ? 2 : 0), 14);
    for (const auto& [name, cdf] : named_cdfs) {
      (void)name;
      out << PadLeft(
          cdf->empty() ? "-" : util::FormatDouble(cdf->Evaluate(x), 3), 9);
    }
    out << '\n';
  }
}

}  // namespace

void RenderSizeDistributions(const std::vector<SizeDistributions>& sites,
                             std::ostream& out, std::size_t grid_points) {
  std::vector<std::pair<std::string, const stats::Ecdf*>> video, image;
  for (const auto& s : sites) {
    video.emplace_back(s.site, &s.video);
    image.emplace_back(s.site, &s.image);
  }
  RenderCdfGrid(out, "(a) video object sizes (bytes): CDF", video, grid_points);
  out << '\n';
  RenderCdfGrid(out, "(b) image object sizes (bytes): CDF", image, grid_points);
  out << '\n';
  for (const auto& s : sites) {
    out << PadRight(s.site, kSiteCol) << " video>1MB "
        << PadLeft(FormatPercent(s.VideoAboveMb(), 1), 7) << "   image<1MB "
        << PadLeft(FormatPercent(s.ImageBelowMb(), 1), 7) << "   image bimodal: "
        << (ImageSizesAreBimodal(s.image) ? "yes" : "no") << '\n';
  }
}

void RenderPopularity(const std::vector<PopularityResult>& sites,
                      std::ostream& out, std::size_t grid_points) {
  std::vector<std::pair<std::string, const stats::Ecdf*>> video, image;
  for (const auto& s : sites) {
    video.emplace_back(s.site, &s.video_counts);
    image.emplace_back(s.site, &s.image_counts);
  }
  RenderCdfGrid(out, "(a) video object request counts: CDF", video,
                grid_points);
  out << '\n';
  RenderCdfGrid(out, "(b) image object request counts: CDF", image,
                grid_points);
  out << '\n';
  for (const auto& s : sites) {
    out << PadRight(s.site, kSiteCol) << " top10% share "
        << PadLeft(FormatPercent(s.top10_share, 1), 7) << "  gini "
        << util::FormatDouble(s.gini, 3) << "  power-law alpha "
        << util::FormatDouble(s.power_law.alpha, 2) << " (x_min="
        << util::FormatDouble(s.power_law.x_min, 0)
        << ", ks=" << util::FormatDouble(s.power_law.ks, 3) << ")\n";
  }
}

void RenderAging(const std::vector<AgingResult>& sites, std::ostream& out) {
  out << "(observability-corrected: of objects with >= d observable days)\n";
  out << PadRight("age(d)", 8);
  for (const auto& s : sites) out << PadLeft(s.site, 8);
  out << '\n';
  Rule(out, 8 + sites.size() * 8);
  for (int d = 0; d < kMaxAgeDays; ++d) {
    out << PadRight(std::to_string(d + 1), 8);
    for (const auto& s : sites) {
      out << PadLeft(util::FormatDouble(
                         s.fraction_requested[static_cast<std::size_t>(d)], 3),
                     8);
    }
    out << '\n';
  }
  out << "\n(paper's raw variant: requested-at-day-d over all objects)\n";
  out << PadRight("age(d)", 8);
  for (const auto& s : sites) out << PadLeft(s.site, 8);
  out << '\n';
  Rule(out, 8 + sites.size() * 8);
  for (int d = 0; d < kMaxAgeDays; ++d) {
    out << PadRight(std::to_string(d + 1), 8);
    for (const auto& s : sites) {
      out << PadLeft(
          util::FormatDouble(
              s.fraction_requested_uncorrected[static_cast<std::size_t>(d)], 3),
          8);
    }
    out << '\n';
  }
  out << '\n';
  for (const auto& s : sites) {
    out << PadRight(s.site, kSiteCol) << " silent after day 3: "
        << PadLeft(FormatPercent(s.silent_after_3_days, 1), 7)
        << "   requested all 7 days: "
        << PadLeft(FormatPercent(s.requested_all_days, 1), 7) << '\n';
  }
}

void RenderTrendClusters(const TrendClusterResult& result, std::ostream& out) {
  out << result.site << " " << trace::ToString(result.content_class)
      << " objects: " << result.clustered_objects
      << " clustered, k=" << result.clusters.size()
      << ", silhouette=" << util::FormatDouble(result.silhouette, 3) << '\n';
  Rule(out, 64);
  for (const auto& c : result.clusters) {
    out << PadRight(synth::ToString(c.shape), 14)
        << PadLeft(FormatPercent(c.share, 0), 6) << "  ("
        << c.member_count << " objects)\n";
  }
}

void RenderClusterMedoids(const TrendClusterResult& result, std::ostream& out,
                          std::size_t width) {
  out << result.site << " " << trace::ToString(result.content_class)
      << " cluster medoids (Sat..Fri, normalized request count):\n";
  for (const auto& c : result.clusters) {
    double mean_sigma = 0.0;
    for (double s : c.pointwise_stddev) mean_sigma += s;
    if (!c.pointwise_stddev.empty()) {
      mean_sigma /= static_cast<double>(c.pointwise_stddev.size());
    }
    out << PadRight(synth::ToString(c.shape), 14)
        << PadLeft(FormatPercent(c.share, 0), 5) << " |"
        << cluster::Sparkline(c.medoid_series, width) << "| sigma~"
        << util::FormatDouble(mean_sigma, 4) << '\n';
  }
}

void RenderSessions(const std::vector<SessionResult>& sites,
                    std::ostream& out) {
  // The paper's x-axis points for Figs. 11/12.
  struct Point {
    const char* label;
    double seconds;
  };
  static constexpr Point kIatPoints[] = {
      {"1 sec", 1},      {"5 sec", 5},       {"1 min", 60},
      {"10 min", 600},   {"1 hr", 3600},     {"1 day", 86400},
      {"1 week", 604800}};
  static constexpr Point kSessionPoints[] = {{"1 sec", 1},
                                             {"5 sec", 5},
                                             {"1 min", 60},
                                             {"10 min", 600},
                                             {"1 hr", 3600}};
  out << "(Fig. 11) user request inter-arrival time CDF\n";
  out << PadRight("IAT", 8);
  for (const auto& s : sites) out << PadLeft(s.site, 8);
  out << '\n';
  Rule(out, 8 + sites.size() * 8);
  for (const auto& p : kIatPoints) {
    out << PadRight(p.label, 8);
    for (const auto& s : sites) {
      out << PadLeft(s.iat_seconds.empty()
                         ? "-"
                         : util::FormatDouble(s.iat_seconds.Evaluate(p.seconds), 3),
                     8);
    }
    out << '\n';
  }
  out << "\n(Fig. 12) user session length CDF (10 min timeout)\n";
  out << PadRight("len", 8);
  for (const auto& s : sites) out << PadLeft(s.site, 8);
  out << '\n';
  Rule(out, 8 + sites.size() * 8);
  for (const auto& p : kSessionPoints) {
    out << PadRight(p.label, 8);
    for (const auto& s : sites) {
      out << PadLeft(
          s.session_length_seconds.empty()
              ? "-"
              : util::FormatDouble(s.session_length_seconds.Evaluate(p.seconds),
                                   3),
          8);
    }
    out << '\n';
  }
  out << '\n';
  for (const auto& s : sites) {
    out << PadRight(s.site, kSiteCol) << " median IAT "
        << PadLeft(util::FormatDuration(
                       static_cast<std::int64_t>(s.MedianIatSeconds() * 1000)),
                   10)
        << "   median session "
        << PadLeft(util::FormatDuration(static_cast<std::int64_t>(
                       s.MedianSessionSeconds() * 1000)),
                   10)
        << "   sessions " << FormatCount(static_cast<double>(s.session_count))
        << '\n';
  }
}

void RenderRepeatedAccess(const EngagementResult& result, std::ostream& out) {
  // Log-binned 2D summary of the Fig. 13 scatter: rows = unique-user decade,
  // columns = requests/user bands.
  out << result.site << " repeated access (objects by users x requests/user):\n";
  static constexpr double kUserEdges[] = {1, 10, 100, 1000, 10000, 1e9};
  static constexpr double kRpuEdges[] = {1.5, 3, 10, 1e9};
  static const char* const kRpuLabels[] = {"~1x", "1.5-3x", "3-10x", ">10x"};
  out << PadRight("users", 12);
  for (const char* l : kRpuLabels) out << PadLeft(l, 9);
  out << '\n';
  Rule(out, 12 + 4 * 9);
  for (std::size_t u = 0; u + 1 < std::size(kUserEdges); ++u) {
    std::array<std::uint64_t, 4> row{};
    for (const auto& obj : result.objects) {
      const auto users = static_cast<double>(obj.unique_users);
      if (users < kUserEdges[u] || users >= kUserEdges[u + 1]) continue;
      const double rpu = obj.RequestsPerUser();
      std::size_t band = 0;
      while (band < 3 && rpu >= kRpuEdges[band]) ++band;
      ++row[band];
    }
    char label[32];
    std::snprintf(label, sizeof(label), "[%g,%g)", kUserEdges[u],
                  kUserEdges[u + 1]);
    out << PadRight(label, 12);
    for (auto v : row) out << PadLeft(FormatCount(static_cast<double>(v)), 9);
    out << '\n';
  }
  out << "addicted objects (>=3 req/user): " << result.addicted_objects
      << ", viral: " << result.viral_objects << '\n';
}

void RenderEngagement(const std::vector<EngagementResult>& sites,
                      std::ostream& out) {
  static constexpr double kPoints[] = {1, 2, 5, 10, 20, 50, 100};
  out << "(a) video: CDF of requests per user\n";
  out << PadRight("req/user", 10);
  for (const auto& s : sites) out << PadLeft(s.site, 8);
  out << '\n';
  Rule(out, 10 + sites.size() * 8);
  for (double p : kPoints) {
    out << PadRight(util::FormatDouble(p, 0), 10);
    for (const auto& s : sites) {
      out << PadLeft(s.video_requests_per_user.empty()
                         ? "-"
                         : util::FormatDouble(
                               s.video_requests_per_user.Evaluate(p), 3),
                     8);
    }
    out << '\n';
  }
  out << "\n(b) image: CDF of requests per user\n";
  out << PadRight("req/user", 10);
  for (const auto& s : sites) out << PadLeft(s.site, 8);
  out << '\n';
  Rule(out, 10 + sites.size() * 8);
  for (double p : kPoints) {
    out << PadRight(util::FormatDouble(p, 0), 10);
    for (const auto& s : sites) {
      out << PadLeft(s.image_requests_per_user.empty()
                         ? "-"
                         : util::FormatDouble(
                               s.image_requests_per_user.Evaluate(p), 3),
                     8);
    }
    out << '\n';
  }
  out << '\n';
  for (const auto& s : sites) {
    out << PadRight(s.site, kSiteCol) << " video objects >10 req/user: "
        << PadLeft(FormatPercent(s.video_frac_over_10, 1), 7)
        << "   image objects >10 req/user: "
        << PadLeft(FormatPercent(s.image_frac_over_10, 1), 7) << '\n';
  }
}

void RenderCaching(const std::vector<CachingResult>& sites,
                   std::ostream& out) {
  static constexpr double kRatios[] = {0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.99};
  out << "(a) image: CDF of per-object hit ratio\n";
  out << PadRight("ratio", 8);
  for (const auto& s : sites) out << PadLeft(s.site, 8);
  out << '\n';
  Rule(out, 8 + sites.size() * 8);
  for (double r : kRatios) {
    out << PadRight(util::FormatDouble(r, 2), 8);
    for (const auto& s : sites) {
      out << PadLeft(s.image_hit_ratio.empty()
                         ? "-"
                         : util::FormatDouble(s.image_hit_ratio.Evaluate(r), 3),
                     8);
    }
    out << '\n';
  }
  out << "\n(b) video: CDF of per-object hit ratio\n";
  out << PadRight("ratio", 8);
  for (const auto& s : sites) out << PadLeft(s.site, 8);
  out << '\n';
  Rule(out, 8 + sites.size() * 8);
  for (double r : kRatios) {
    out << PadRight(util::FormatDouble(r, 2), 8);
    for (const auto& s : sites) {
      out << PadLeft(s.video_hit_ratio.empty()
                         ? "-"
                         : util::FormatDouble(s.video_hit_ratio.Evaluate(r), 3),
                     8);
    }
    out << '\n';
  }
  out << '\n';
  for (const auto& s : sites) {
    out << PadRight(s.site, kSiteCol) << " overall hit ratio "
        << PadLeft(FormatPercent(s.overall_hit_ratio, 1), 7) << " (video "
        << FormatPercent(s.video_overall_hit_ratio, 1) << ", image "
        << FormatPercent(s.image_overall_hit_ratio, 1)
        << "), popularity corr " << util::FormatDouble(
               s.popularity_hit_correlation, 3)
        << ", 304 share " << FormatPercent(s.NotModifiedShare(), 2) << '\n';
  }
}

void RenderResponseCodes(const std::vector<CachingResult>& sites,
                         std::ostream& out) {
  // Collect the union of codes, keeping the paper's order first.
  std::vector<std::uint16_t> codes = {200, 204, 206, 304, 403, 416};
  std::set<std::uint16_t> known(codes.begin(), codes.end());
  for (const auto& s : sites) {
    for (const auto& [code, count] : s.all_response_codes) {
      (void)count;
      if (known.insert(code).second) codes.push_back(code);
    }
  }
  const auto render_panel =
      [&](const char* title,
          const std::map<std::uint16_t, std::uint64_t> CachingResult::*field) {
        out << title << '\n';
        out << PadRight("code", 8);
        for (const auto& s : sites) out << PadLeft(s.site, 10);
        out << '\n';
        Rule(out, 8 + sites.size() * 10);
        for (const auto code : codes) {
          out << PadRight(std::to_string(code), 8);
          for (const auto& s : sites) {
            const auto& m = s.*field;
            const auto it = m.find(code);
            out << PadLeft(
                it == m.end() ? "0"
                              : FormatCount(static_cast<double>(it->second)),
                10);
          }
          out << '\n';
        }
      };
  render_panel("(a) video response codes", &CachingResult::video_response_codes);
  out << '\n';
  render_panel("(b) image response codes", &CachingResult::image_response_codes);
}

}  // namespace atlas::analysis
