#include "analysis/geo.h"

#include <algorithm>
#include <unordered_set>

#include "util/hash.h"
#include "util/time.h"

namespace atlas::analysis {

int ContinentStats::PeakUtcHour() const {
  return static_cast<int>(std::max_element(utc_hourly_requests.begin(),
                                           utc_hourly_requests.end()) -
                          utc_hourly_requests.begin());
}

double ContinentStats::PeakHourlyBytes(int days) const {
  if (days <= 0) return 0.0;
  const double peak =
      *std::max_element(utc_hourly_bytes.begin(), utc_hourly_bytes.end());
  return peak / static_cast<double>(days);
}

std::uint64_t GeoResult::TotalRequests() const {
  std::uint64_t total = 0;
  for (const auto& c : continents) total += c.requests;
  return total;
}

double GeoResult::RequestShare(synth::Continent c) const {
  const auto total = TotalRequests();
  return total == 0 ? 0.0
                    : static_cast<double>(of(c).requests) /
                          static_cast<double>(total);
}

GeoResult ComputeGeo(trace::RecordSource& source,
                     const std::string& site_name) {
  GeoResult result;
  result.site = site_name;

  std::array<std::unordered_set<std::uint64_t>, synth::kNumContinents> users;
  std::int64_t start_ms = 0;
  std::int64_t end_ms = 0;
  bool any = false;
  for (auto chunk = source.NextChunk(); !chunk.empty();
       chunk = source.NextChunk()) {
    for (const auto& r : chunk) {
      if (!any) {
        start_ms = end_ms = r.timestamp_ms;
        any = true;
      } else {
        start_ms = std::min(start_ms, r.timestamp_ms);
        end_ms = std::max(end_ms, r.timestamp_ms);
      }
      const auto c = static_cast<std::size_t>(
          synth::ContinentFromTzQuarterHours(r.tz_offset_quarter_hours));
      auto& stats = result.continents[c];
      ++stats.requests;
      stats.bytes += r.response_bytes;
      users[c].insert(r.user_id);
      const auto hour = static_cast<std::size_t>(
          ((r.timestamp_ms / util::kMillisPerHour) % 24 + 24) % 24);
      stats.utc_hourly_requests[hour] += 1.0;
      stats.utc_hourly_bytes[hour] += static_cast<double>(r.response_bytes);
    }
  }
  result.span_ms = end_ms - start_ms;
  for (std::size_t c = 0; c < users.size(); ++c) {
    result.continents[c].unique_users = users[c].size();
  }
  return result;
}

GeoResult ComputeGeo(const trace::TraceBuffer& trace,
                     const std::string& site_name) {
  trace::BufferSource source(trace);
  return ComputeGeo(source, site_name);
}

}  // namespace atlas::analysis
