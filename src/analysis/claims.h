// Paper-claim verification.
//
// Encodes every headline finding of the paper as a machine-checkable claim
// over an AnalysisSuite, so one binary (bench/claims_check) — or a CI job —
// can answer "does this build still reproduce the paper?" The same checks
// run in the integration tests; this is the user-facing form.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "analysis/suite.h"

namespace atlas::analysis {

struct ClaimResult {
  std::string id;           // e.g. "F2.video-bytes"
  std::string description;  // the paper's sentence, abbreviated
  bool pass = false;
  std::string detail;       // measured values backing the verdict
};

// Evaluates all claims against an analyzed five-site study. Sites are
// looked up by their paper names (V-1, V-2, P-1, P-2, S-1); claims whose
// site is missing fail with a note. Claims over classes with fewer than
// `min_class_objects` objects are skipped (reported as pass with a
// "too few objects" note) — minority-class cells are pure noise at small
// scales.
std::vector<ClaimResult> VerifyPaperClaims(const AnalysisSuite& suite,
                                           std::size_t min_class_objects = 20);

// Renders one line per claim plus a PASS/FAIL summary; returns the number
// of failed claims.
int RenderClaims(const std::vector<ClaimResult>& claims, std::ostream& out);

}  // namespace atlas::analysis
