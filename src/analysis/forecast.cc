#include "analysis/forecast.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace atlas::analysis {
namespace {

void FillErrors(const stats::TimeSeries& series, std::size_t train_buckets,
                ForecastResult& result) {
  const std::size_t horizon = series.size() - train_buckets;
  double abs_sum = 0.0, sq_sum = 0.0, pct_sum = 0.0;
  std::size_t pct_n = 0;
  for (std::size_t h = 0; h < horizon; ++h) {
    const double actual = series[train_buckets + h];
    const double err = result.predictions[h] - actual;
    abs_sum += std::abs(err);
    sq_sum += err * err;
    if (actual > 0.0) {
      pct_sum += std::abs(err) / actual;
      ++pct_n;
    }
  }
  const double n = static_cast<double>(horizon);
  result.mae = abs_sum / n;
  result.rmse = std::sqrt(sq_sum / n);
  result.mape = pct_n == 0 ? 0.0 : pct_sum / static_cast<double>(pct_n);
}

void ValidateWindow(const stats::TimeSeries& series, std::size_t train_buckets,
                    std::size_t season) {
  if (season == 0) throw std::invalid_argument("forecast: season == 0");
  if (train_buckets < season) {
    throw std::invalid_argument("forecast: training window < one season");
  }
  if (train_buckets >= series.size()) {
    throw std::invalid_argument("forecast: nothing to hold out");
  }
}

}  // namespace

ForecastResult SeasonalNaiveForecast(const stats::TimeSeries& series,
                                     std::size_t train_buckets,
                                     std::size_t season) {
  ValidateWindow(series, train_buckets, season);
  ForecastResult result;
  const std::size_t horizon = series.size() - train_buckets;
  result.predictions.reserve(horizon);
  // Last full season of the training window.
  const std::size_t base = train_buckets - season;
  for (std::size_t h = 0; h < horizon; ++h) {
    result.predictions.push_back(series[base + (h % season)]);
  }
  FillErrors(series, train_buckets, result);
  return result;
}

ForecastResult HoltWintersForecast(const stats::TimeSeries& series,
                                   std::size_t train_buckets,
                                   std::size_t season, double alpha,
                                   double beta, double gamma) {
  ValidateWindow(series, train_buckets, season);
  if (train_buckets < 2 * season) {
    throw std::invalid_argument(
        "HoltWintersForecast: need >= 2 seasons of training data");
  }
  // Initialization: level = mean of season 1; trend = mean per-bucket change
  // between seasons 1 and 2; seasonal = season-1 deviations from its mean.
  double season1_mean = 0.0, season2_mean = 0.0;
  for (std::size_t i = 0; i < season; ++i) {
    season1_mean += series[i];
    season2_mean += series[season + i];
  }
  season1_mean /= static_cast<double>(season);
  season2_mean /= static_cast<double>(season);

  double level = season1_mean;
  double trend = (season2_mean - season1_mean) / static_cast<double>(season);
  std::vector<double> seasonal(season);
  for (std::size_t i = 0; i < season; ++i) {
    seasonal[i] = series[i] - season1_mean;
  }

  for (std::size_t t = season; t < train_buckets; ++t) {
    const double value = series[t];
    const std::size_t s = t % season;
    const double last_level = level;
    level = alpha * (value - seasonal[s]) + (1.0 - alpha) * (level + trend);
    trend = beta * (level - last_level) + (1.0 - beta) * trend;
    seasonal[s] = gamma * (value - level) + (1.0 - gamma) * seasonal[s];
  }

  ForecastResult result;
  const std::size_t horizon = series.size() - train_buckets;
  result.predictions.reserve(horizon);
  for (std::size_t h = 0; h < horizon; ++h) {
    const std::size_t s = (train_buckets + h) % season;
    const double pred =
        level + trend * static_cast<double>(h + 1) + seasonal[s];
    result.predictions.push_back(std::max(pred, 0.0));
  }
  FillErrors(series, train_buckets, result);
  return result;
}

ForecastResult HoltWintersAutoForecast(const stats::TimeSeries& series,
                                       std::size_t train_buckets,
                                       std::size_t season) {
  ValidateWindow(series, train_buckets, season);
  if (train_buckets < 3 * season) {
    throw std::invalid_argument(
        "HoltWintersAutoForecast: need >= 3 seasons (one held out)");
  }
  // Validation split: fit on train - season, score on the final season.
  stats::TimeSeries train_view(series.bucket_ms(),
                               std::vector<double>(series.values().begin(),
                                                   series.values().begin() +
                                                       static_cast<long>(
                                                           train_buckets)));
  static constexpr double kAlphas[] = {0.05, 0.1, 0.2, 0.35, 0.5};
  static constexpr double kGammas[] = {0.05, 0.15, 0.3, 0.5};
  double best_mae = std::numeric_limits<double>::infinity();
  double best_alpha = 0.25, best_gamma = 0.3;
  for (double alpha : kAlphas) {
    for (double gamma : kGammas) {
      const auto fit = HoltWintersForecast(train_view, train_buckets - season,
                                           season, alpha, 0.02, gamma);
      if (fit.mae < best_mae) {
        best_mae = fit.mae;
        best_alpha = alpha;
        best_gamma = gamma;
      }
    }
  }
  return HoltWintersForecast(series, train_buckets, season, best_alpha, 0.02,
                             best_gamma);
}

std::array<double, 24> HourProfile(const stats::TimeSeries& series,
                                   std::size_t buckets) {
  buckets = std::min(buckets, series.size());
  std::array<double, 24> profile{};
  double total = 0.0;
  for (std::size_t i = 0; i < buckets; ++i) {
    profile[i % 24] += series[i];
    total += series[i];
  }
  if (total > 0.0) {
    for (double& p : profile) p /= total;
  } else {
    profile.fill(1.0 / 24.0);
  }
  return profile;
}

ForecastResult TemplateForecast(const stats::TimeSeries& series,
                                std::size_t train_buckets,
                                const std::array<double, 24>& hour_profile) {
  ValidateWindow(series, train_buckets, 24);
  // Daily level: total volume over the last full training day.
  double level = 0.0;
  for (std::size_t i = train_buckets - 24; i < train_buckets; ++i) {
    level += series[i];
  }
  ForecastResult result;
  const std::size_t horizon = series.size() - train_buckets;
  result.predictions.reserve(horizon);
  for (std::size_t h = 0; h < horizon; ++h) {
    result.predictions.push_back(level *
                                 hour_profile[(train_buckets + h) % 24]);
  }
  FillErrors(series, train_buckets, result);
  return result;
}

PooledVsSeparated ComparePooledVsSeparated(
    const std::vector<stats::TimeSeries>& components,
    std::size_t train_buckets, std::size_t season) {
  if (components.empty()) {
    throw std::invalid_argument("ComparePooledVsSeparated: no components");
  }
  const std::size_t n = components.front().size();
  for (const auto& c : components) {
    if (c.size() != n) {
      throw std::invalid_argument("ComparePooledVsSeparated: length mismatch");
    }
  }
  stats::TimeSeries pooled(components.front().bucket_ms(), n);
  for (const auto& c : components) {
    for (std::size_t i = 0; i < n; ++i) pooled[i] += c[i];
  }

  PooledVsSeparated result;
  result.pooled = HoltWintersAutoForecast(pooled, train_buckets, season);

  // Separated: per-component forecasts (each with its own fitted
  // parameters), summed predictions, scored against the pooled actuals.
  result.separated.predictions.assign(n - train_buckets, 0.0);
  for (const auto& c : components) {
    const auto f = HoltWintersAutoForecast(c, train_buckets, season);
    for (std::size_t h = 0; h < f.predictions.size(); ++h) {
      result.separated.predictions[h] += f.predictions[h];
    }
  }
  double abs_sum = 0.0, sq_sum = 0.0, pct_sum = 0.0;
  std::size_t pct_n = 0;
  for (std::size_t h = 0; h < result.separated.predictions.size(); ++h) {
    const double actual = pooled[train_buckets + h];
    const double err = result.separated.predictions[h] - actual;
    abs_sum += std::abs(err);
    sq_sum += err * err;
    if (actual > 0.0) {
      pct_sum += std::abs(err) / actual;
      ++pct_n;
    }
  }
  const auto horizon = static_cast<double>(result.separated.predictions.size());
  result.separated.mae = abs_sum / horizon;
  result.separated.rmse = std::sqrt(sq_sum / horizon);
  result.separated.mape =
      pct_n == 0 ? 0.0 : pct_sum / static_cast<double>(pct_n);
  return result;
}

}  // namespace atlas::analysis
