// User request inter-arrival times and session lengths (Figs. 11, 12).
//
// "a session consists of consecutive user requests within a timeout
// interval. We set the timeout value for user sessions at 10 minutes based
// on our earlier analysis of user request IAT distributions." Session
// length is last-request minus first-request inside the session — "a
// strictly lower-bound of traditional bounce time".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"  // atlas-lint: allow(layer-dag) ckpt is the passive serialization substrate; consuming its codec interface does not invert control flow
#include "stats/ecdf.h"
#include "trace/block.h"
#include "trace/trace_buffer.h"
#include "util/flat_hash.h"

namespace atlas::analysis {

inline constexpr std::int64_t kSessionTimeoutMs = 10 * 60 * 1000;

struct Session {
  std::uint64_t user_id = 0;
  std::int64_t start_ms = 0;
  std::int64_t end_ms = 0;
  std::uint32_t requests = 0;

  std::int64_t LengthMs() const { return end_ms - start_ms; }
};

struct SessionResult {
  std::string site;
  // Fig. 11: consecutive same-user request gaps, in seconds (all gaps, not
  // just in-session ones).
  stats::Ecdf iat_seconds;
  // Fig. 12: session lengths in seconds.
  stats::Ecdf session_length_seconds;
  stats::Ecdf requests_per_session;
  std::uint64_t session_count = 0;

  double MedianIatSeconds() const;
  double MedianSessionSeconds() const;
};

// Single-pass accumulator behind ComputeSessions. Requires records in
// non-decreasing timestamp order (throws std::invalid_argument otherwise);
// state is one open session per user, not the full timestamp list, so
// arbitrarily long traces stream through. The Ecdf-based result is
// independent of cross-user interleaving, so it matches the historical
// sort-per-user implementation exactly on sorted input.
class SessionAccumulator {
 public:
  explicit SessionAccumulator(std::int64_t timeout_ms = kSessionTimeoutMs,
                              std::size_t size_hint = 0);
  void Add(const trace::LogRecord& r);
  // Rows rows[0..n) of b (all of [0, n) when rows is null), in stream
  // order — equivalent to n Add() calls, including the sorted-input check.
  void AddBatch(const trace::RecordBlock& b, const std::uint32_t* rows,
                std::size_t n);
  SessionResult Finalize(const std::string& site_name);

  // Restore requires the same sessionization timeout the state was saved
  // with (changing it mid-stream would produce neither run's sessions).
  void SaveState(ckpt::Writer& w) const;
  void RestoreState(ckpt::Reader& r);

 private:
  void CloseSession(const Session& s);
  void AddOne(std::int64_t ts, std::uint64_t user);

  std::int64_t timeout_ms_;
  util::FlatHashMap<std::uint64_t, Session> open_;
  std::int64_t last_ts_ = 0;
  bool any_ = false;
  SessionResult result_;
};

// `timeout_ms` parameterizes the sessionization (the paper uses 10 min).
SessionResult ComputeSessions(const trace::TraceBuffer& trace,
                              const std::string& site_name,
                              std::int64_t timeout_ms = kSessionTimeoutMs);

// The raw sessions (for engagement analyses and tests).
std::vector<Session> Sessionize(const trace::TraceBuffer& trace,
                                std::int64_t timeout_ms = kSessionTimeoutMs);

}  // namespace atlas::analysis
