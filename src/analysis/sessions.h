// User request inter-arrival times and session lengths (Figs. 11, 12).
//
// "a session consists of consecutive user requests within a timeout
// interval. We set the timeout value for user sessions at 10 minutes based
// on our earlier analysis of user request IAT distributions." Session
// length is last-request minus first-request inside the session — "a
// strictly lower-bound of traditional bounce time".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stats/ecdf.h"
#include "trace/trace_buffer.h"

namespace atlas::analysis {

inline constexpr std::int64_t kSessionTimeoutMs = 10 * 60 * 1000;

struct Session {
  std::uint64_t user_id = 0;
  std::int64_t start_ms = 0;
  std::int64_t end_ms = 0;
  std::uint32_t requests = 0;

  std::int64_t LengthMs() const { return end_ms - start_ms; }
};

struct SessionResult {
  std::string site;
  // Fig. 11: consecutive same-user request gaps, in seconds (all gaps, not
  // just in-session ones).
  stats::Ecdf iat_seconds;
  // Fig. 12: session lengths in seconds.
  stats::Ecdf session_length_seconds;
  stats::Ecdf requests_per_session;
  std::uint64_t session_count = 0;

  double MedianIatSeconds() const;
  double MedianSessionSeconds() const;
};

// `timeout_ms` parameterizes the sessionization (the paper uses 10 min).
SessionResult ComputeSessions(const trace::TraceBuffer& trace,
                              const std::string& site_name,
                              std::int64_t timeout_ms = kSessionTimeoutMs);

// The raw sessions (for engagement analyses and tests).
std::vector<Session> Sessionize(const trace::TraceBuffer& trace,
                                std::int64_t timeout_ms = kSessionTimeoutMs);

}  // namespace atlas::analysis
