#include "analysis/temporal.h"

#include <algorithm>
#include <cmath>

#include "util/time.h"

namespace atlas::analysis {

int HourlyVolume::PeakHour() const {
  return static_cast<int>(std::max_element(percent_by_hour.begin(),
                                           percent_by_hour.end()) -
                          percent_by_hour.begin());
}

int HourlyVolume::TroughHour() const {
  return static_cast<int>(std::min_element(percent_by_hour.begin(),
                                           percent_by_hour.end()) -
                          percent_by_hour.begin());
}

double HourlyVolume::PeakToMean() const {
  const double peak =
      *std::max_element(percent_by_hour.begin(), percent_by_hour.end());
  const double mean = 100.0 / 24.0;
  return peak / mean;
}

HourlyVolume ComputeHourlyVolume(const trace::TraceBuffer& site_trace,
                                 const std::string& site_name) {
  HourlyVolume result;
  result.site = site_name;
  result.week_series =
      stats::TimeSeries(util::kMillisPerHour, util::kHoursPerWeek);

  std::array<double, 24> counts{};
  std::array<double, 24> bytes{};
  double total_count = 0.0;
  double total_bytes = 0.0;
  for (const auto& r : site_trace.records()) {
    const std::int64_t local = r.LocalTimestampMs();
    const int hour = util::HourOfDay(local);
    counts[static_cast<std::size_t>(hour)] += 1.0;
    bytes[static_cast<std::size_t>(hour)] +=
        static_cast<double>(r.response_bytes);
    total_count += 1.0;
    total_bytes += static_cast<double>(r.response_bytes);
    // Weekly series folds local time into the observed week.
    const std::int64_t wrapped =
        ((local % util::kMillisPerWeek) + util::kMillisPerWeek) %
        util::kMillisPerWeek;
    result.week_series.Accumulate(wrapped, 1.0);
  }
  for (int h = 0; h < 24; ++h) {
    const auto i = static_cast<std::size_t>(h);
    result.percent_by_hour[i] =
        total_count > 0.0 ? counts[i] / total_count * 100.0 : 0.0;
    result.percent_bytes_by_hour[i] =
        total_bytes > 0.0 ? bytes[i] / total_bytes * 100.0 : 0.0;
  }
  return result;
}

int PeakHourDistance(const HourlyVolume& a, const HourlyVolume& b) {
  const int d = std::abs(a.PeakHour() - b.PeakHour());
  return std::min(d, 24 - d);
}

}  // namespace atlas::analysis
