#include "analysis/temporal.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "analysis/state_codec.h"
#include "util/time.h"

namespace atlas::analysis {

int HourlyVolume::PeakHour() const {
  return static_cast<int>(std::max_element(percent_by_hour.begin(),
                                           percent_by_hour.end()) -
                          percent_by_hour.begin());
}

int HourlyVolume::TroughHour() const {
  return static_cast<int>(std::min_element(percent_by_hour.begin(),
                                           percent_by_hour.end()) -
                          percent_by_hour.begin());
}

double HourlyVolume::PeakToMean() const {
  const double peak =
      *std::max_element(percent_by_hour.begin(), percent_by_hour.end());
  const double mean = 100.0 / 24.0;
  return peak / mean;
}

HourlyVolumeAccumulator::HourlyVolumeAccumulator() {
  result_.week_series =
      stats::TimeSeries(util::kMillisPerHour, util::kHoursPerWeek);
}

void HourlyVolumeAccumulator::Add(const trace::LogRecord& r) {
  const std::int64_t local = r.LocalTimestampMs();
  const int hour = util::HourOfDay(local);
  counts_[static_cast<std::size_t>(hour)] += 1.0;
  bytes_[static_cast<std::size_t>(hour)] +=
      static_cast<double>(r.response_bytes);
  total_count_ += 1.0;
  total_bytes_ += static_cast<double>(r.response_bytes);
  // Weekly series folds local time into the observed week.
  const std::int64_t wrapped =
      ((local % util::kMillisPerWeek) + util::kMillisPerWeek) %
      util::kMillisPerWeek;
  result_.week_series.Accumulate(wrapped, 1.0);
}

void HourlyVolumeAccumulator::AddBatch(const trace::RecordBlock& b,
                                       const std::uint32_t* rows,
                                       std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = rows ? rows[k] : k;
    const std::int64_t local = b.LocalTimestampMs(i);
    const int hour = util::HourOfDay(local);
    const auto bytes = static_cast<double>(b.response_bytes[i]);
    counts_[static_cast<std::size_t>(hour)] += 1.0;
    bytes_[static_cast<std::size_t>(hour)] += bytes;
    total_count_ += 1.0;
    total_bytes_ += bytes;
    const std::int64_t wrapped =
        ((local % util::kMillisPerWeek) + util::kMillisPerWeek) %
        util::kMillisPerWeek;
    result_.week_series.Accumulate(wrapped, 1.0);
  }
}

HourlyVolume HourlyVolumeAccumulator::Finalize(const std::string& site_name) {
  result_.site = site_name;
  for (int h = 0; h < 24; ++h) {
    const auto i = static_cast<std::size_t>(h);
    result_.percent_by_hour[i] =
        total_count_ > 0.0 ? counts_[i] / total_count_ * 100.0 : 0.0;
    result_.percent_bytes_by_hour[i] =
        total_bytes_ > 0.0 ? bytes_[i] / total_bytes_ * 100.0 : 0.0;
  }
  return std::move(result_);
}

HourlyVolume ComputeHourlyVolume(const trace::TraceBuffer& site_trace,
                                 const std::string& site_name) {
  HourlyVolumeAccumulator acc;
  for (const auto& r : site_trace.records()) acc.Add(r);
  return acc.Finalize(site_name);
}

namespace {
constexpr std::uint32_t kHourlyVolumeStateVersion = 1;
}  // namespace

void HourlyVolumeAccumulator::SaveState(ckpt::Writer& w) const {
  w.WriteVersion(kHourlyVolumeStateVersion);
  for (const double c : counts_) w.WriteDouble(c);
  for (const double b : bytes_) w.WriteDouble(b);
  w.WriteDouble(total_count_);
  w.WriteDouble(total_bytes_);
  SaveTimeSeries(w, result_.week_series);
}

void HourlyVolumeAccumulator::RestoreState(ckpt::Reader& r) {
  r.ExpectVersion("hourly volume accumulator", kHourlyVolumeStateVersion);
  for (double& c : counts_) c = r.ReadDouble();
  for (double& b : bytes_) b = r.ReadDouble();
  total_count_ = r.ReadDouble();
  total_bytes_ = r.ReadDouble();
  result_.week_series = LoadTimeSeries(r);
}

int PeakHourDistance(const HourlyVolume& a, const HourlyVolume& b) {
  const int d = std::abs(a.PeakHour() - b.PeakHour());
  return std::min(d, 24 - d);
}

}  // namespace atlas::analysis
